package load

import (
	"strings"
	"testing"
	"time"
)

// TestSoakSchedule pins the sample-interval accounting: explicit intervals
// pass through untouched, derived intervals are one sixteenth of the window
// clamped to [250ms, 5s].
func TestSoakSchedule(t *testing.T) {
	cases := []struct {
		duration, every, want time.Duration
	}{
		{30 * time.Second, time.Second, time.Second},        // explicit wins
		{time.Second, 3 * time.Second, 3 * time.Second},     // even past the window
		{32 * time.Second, 0, 2 * time.Second},              // duration/16
		{time.Second, 0, 250 * time.Millisecond},            // clamp low
		{100 * time.Millisecond, 0, 250 * time.Millisecond}, // clamp low, tiny window
		{10 * time.Minute, 0, 5 * time.Second},              // clamp high
		{80 * time.Second, -time.Second, 5 * time.Second},   // negative = derive
	}
	for _, tc := range cases {
		if got := soakSchedule(tc.duration, tc.every); got != tc.want {
			t.Errorf("soakSchedule(%v, %v) = %v, want %v", tc.duration, tc.every, got, tc.want)
		}
	}
}

// TestLeakGrowth pins the growth accounting: baseline is the sample one
// quarter into the series (past warmup), compared against the final sample;
// degenerate series report zero.
func TestLeakGrowth(t *testing.T) {
	s := func(g int, h uint64) SoakSample { return SoakSample{Goroutines: g, HeapBytes: h} }

	if g, h := leakGrowth(nil); g != 0 || h != 0 {
		t.Errorf("empty series: growth = %d/%d, want 0/0", g, h)
	}
	if g, h := leakGrowth([]SoakSample{s(100, 1<<20)}); g != 0 || h != 0 {
		t.Errorf("single sample: growth = %d/%d, want 0/0", g, h)
	}
	// 8 samples: baseline index 2, final index 7. The warmup spike at index
	// 0-1 must not count as growth.
	series := []SoakSample{
		s(500, 64<<20), s(400, 48<<20), // warmup transient
		s(300, 32<<20), // baseline (index 8/4 = 2)
		s(300, 32<<20), s(305, 33<<20), s(302, 32<<20), s(310, 34<<20),
		s(320, 40<<20), // final
	}
	g, h := leakGrowth(series)
	if g != 20 {
		t.Errorf("goroutine growth = %d, want 20", g)
	}
	if h != 8<<20 {
		t.Errorf("heap growth = %d, want %d", h, 8<<20)
	}
	// Shrinkage is negative growth, never a gate trip.
	g, h = leakGrowth([]SoakSample{s(10, 1000), s(10, 1000), s(8, 900), s(5, 500)})
	if g != -5 || h != -500 {
		t.Errorf("shrinking series: growth = %d/%d, want -5/-500", g, h)
	}
}

// TestLeakCheck pins the gate semantics: growth within bounds passes, either
// bound trips independently, non-positive bounds disable the gate.
func TestLeakCheck(t *testing.T) {
	r := &SoakReport{GoroutineGrowth: 50, HeapGrowthBytes: 10 << 20}
	if err := r.LeakCheck(64, 16<<20); err != nil {
		t.Errorf("within bounds: %v", err)
	}
	if err := r.LeakCheck(49, 16<<20); err == nil || !strings.Contains(err.Error(), "goroutines") {
		t.Errorf("goroutine gate did not trip: %v", err)
	}
	if err := r.LeakCheck(64, 10<<20-1); err == nil || !strings.Contains(err.Error(), "heap") {
		t.Errorf("heap gate did not trip: %v", err)
	}
	if err := r.LeakCheck(0, 0); err != nil {
		t.Errorf("disabled gates tripped: %v", err)
	}
	if err := (&SoakReport{GoroutineGrowth: -3, HeapGrowthBytes: -1}).LeakCheck(1, 1); err != nil {
		t.Errorf("negative growth tripped a gate: %v", err)
	}
}

// TestRunSoakShort end-to-ends a sub-second soak and checks the duration
// accounting: the configured window is honoured (wall time covers it, plus
// the in-flight drain), samples bracket the window under load, and the
// completed-action count reconciles with the outcome tally.
func TestRunSoakShort(t *testing.T) {
	cfg := SoakConfig{
		Config:      Config{Concurrency: 16, Roles: 2, Seed: 5},
		Duration:    400 * time.Millisecond,
		SampleEvery: 50 * time.Millisecond,
	}
	if testing.Short() {
		cfg.Duration = 200 * time.Millisecond
	}
	rep, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnexpectedCount > 0 {
		t.Fatalf("%d unexpected outcomes, e.g. %v", rep.UnexpectedCount, rep.Unexpected)
	}
	if rep.DurationSecs != cfg.Duration.Seconds() {
		t.Errorf("DurationSecs = %v, want %v", rep.DurationSecs, cfg.Duration.Seconds())
	}
	if rep.WallSecs < rep.DurationSecs {
		t.Errorf("WallSecs %v shorter than the configured window %v", rep.WallSecs, rep.DurationSecs)
	}
	if rep.Actions <= 0 {
		t.Fatalf("soak completed no actions")
	}
	total := int64(0)
	for _, n := range rep.Outcomes {
		total += int64(n)
	}
	if total != rep.Actions {
		t.Errorf("outcome tally %d != completed actions %d", total, rep.Actions)
	}
	if want := float64(rep.Actions) / rep.WallSecs; rep.Throughput != want {
		t.Errorf("Throughput = %v, want actions/wall = %v", rep.Throughput, want)
	}
	// The t=0 baseline plus the window-close sample always exist; interval
	// ticks add more. Samples are timestamped within the run and ordered.
	if len(rep.Samples) < 2 {
		t.Fatalf("got %d samples, want at least the baseline and window-close pair", len(rep.Samples))
	}
	last := rep.Samples[len(rep.Samples)-1]
	if last.AtSecs < rep.DurationSecs || last.AtSecs > rep.WallSecs {
		t.Errorf("final sample at %vs outside [window %vs, wall %vs]", last.AtSecs, rep.DurationSecs, rep.WallSecs)
	}
	for i := 1; i < len(rep.Samples); i++ {
		if rep.Samples[i].AtSecs < rep.Samples[i-1].AtSecs {
			t.Fatalf("samples out of order: %v after %v", rep.Samples[i].AtSecs, rep.Samples[i-1].AtSecs)
		}
		if rep.Samples[i].Actions < rep.Samples[i-1].Actions {
			t.Fatalf("action counter went backwards between samples")
		}
	}
	if last.Goroutines <= 0 || last.HeapBytes == 0 {
		t.Errorf("final sample missing watermarks: %+v", last)
	}

	if _, err := RunSoak(SoakConfig{Config: Config{}}); err == nil {
		t.Error("zero-duration soak accepted")
	}
}
