package load

import (
	"testing"
	"time"
)

// TestArrivalDueIsAbsolute pins the open-loop pacing contract: arrival i's
// release time is start + i/rate computed from the run origin, so the
// schedule cannot drift. A per-arrival-sleep scheme would push every later
// arrival back by however late each dispatch ran, silently lowering the
// offered rate — exactly the bug class this helper makes untestable to
// reintroduce.
func TestArrivalDueIsAbsolute(t *testing.T) {
	start := time.Unix(1_000_000, 0)

	// Exact schedule points, independent of any dispatch history.
	cases := []struct {
		i    int
		rate float64
		want time.Duration // offset from start
	}{
		{0, 1000, 0},
		{1, 1000, time.Millisecond},
		{100, 1000, 100 * time.Millisecond},
		{5000, 1000, 5 * time.Second},
		{3, 2, 1500 * time.Millisecond},
		{7, 0.5, 14 * time.Second},
	}
	for _, c := range cases {
		if got := arrivalDue(start, c.i, c.rate).Sub(start); got != c.want {
			t.Errorf("arrivalDue(start, %d, %v) = start+%v, want start+%v", c.i, c.rate, got, c.want)
		}
	}

	// No accumulated drift: the due time of arrival N equals N single
	// steps' worth of offset to within float rounding (<1µs over 10k
	// arrivals at an awkward non-divisor rate).
	var n, rate = 10_000, 333.0
	got := arrivalDue(start, n, rate).Sub(start)
	want := time.Duration(float64(n) / rate * float64(time.Second))
	if diff := (got - want).Abs(); diff > time.Microsecond {
		t.Fatalf("arrival %d at rate %v drifted %v from the absolute schedule", n, rate, diff)
	}

	// Monotonic: later arrivals are never due earlier.
	prev := arrivalDue(start, 0, rate)
	for i := 1; i < 1000; i++ {
		due := arrivalDue(start, i, rate)
		if due.Before(prev) {
			t.Fatalf("arrival %d due %v before arrival %d (%v)", i, due, i-1, prev)
		}
		prev = due
	}
}
