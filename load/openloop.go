package load

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"caaction"
)

// OpenLoopConfig parameterises an open-loop run: arrivals are driven by a
// clock, not by completions. Where the closed-loop Run backs off whenever
// all of its driver goroutines are busy — so a slow system is offered
// less — the open loop keeps offering at the configured rate regardless,
// which is what production traffic does. Combined with an admission
// budget (MaxInFlight → caaction.WithMaxInFlight) it measures the
// overload contract: past saturation, goodput must hold and the excess
// must surface as fast typed rejections instead of unbounded queueing and
// collapsing tail latency.
type OpenLoopConfig struct {
	// Config supplies the workload shape (roles, mix, seed, resolver,
	// transport, workers, GC pacing). Actions and Concurrency are ignored:
	// the offered count is Rate×Duration and concurrency is whatever the
	// arrival process produces.
	Config
	// Rates are the offered arrival rates (actions/second); one
	// measurement point runs per rate, each on a fresh System.
	Rates []float64
	// Duration is the offering window per rate. Zero means 5s.
	Duration time.Duration
	// MaxInFlight is the System's admission budget
	// (caaction.WithMaxInFlight). Zero means 256; negative disables the
	// budget (every arrival is admitted — the collapse the budget
	// prevents, measurable for comparison).
	MaxInFlight int
}

// OpenLoopPoint is one offered-rate measurement: the offered-vs-goodput
// curve the perf gate compares, plus the admission outcome counts.
type OpenLoopPoint struct {
	// OfferedRate is the configured arrival rate, actions/second.
	OfferedRate float64 `json:"offered_rate"`
	// Offered is the number of arrivals the window produced.
	Offered int `json:"offered"`
	// Started is the number of arrivals admitted past the budget.
	Started int `json:"started"`
	// Rejected counts typed admission refusals (caaction.ErrOverloaded).
	Rejected int `json:"rejected"`
	// Errors counts arrivals that failed to start for any other reason; a
	// healthy run has none.
	Errors int `json:"errors"`
	// Completed counts admitted actions that finished with their kind's
	// expected outcome.
	Completed int `json:"completed"`
	// Goodput is Completed divided by the wall clock from first arrival
	// to last completion, actions/second.
	Goodput float64 `json:"goodput_actions_per_second"`
	// P50Ms/P99Ms summarise completed-action latency. Under overload the
	// admission budget must keep these bounded: rejected arrivals never
	// queue, so the tail reflects only admitted work.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// MaxInFlight echoes the budget the point ran under.
	MaxInFlight int `json:"max_inflight"`
}

// defaultOpenLoopInFlight is the admission budget when
// OpenLoopConfig.MaxInFlight is zero.
const defaultOpenLoopInFlight = 256

// RunOpenLoop measures one OpenLoopPoint per configured rate. Arrival i of
// rate r is released at start + i/r — when the dispatcher falls behind it
// releases the backlog as a burst, preserving the offered count — and
// every release calls StartAction immediately, concurrent with however
// many admitted actions are still running.
func RunOpenLoop(cfg OpenLoopConfig) ([]OpenLoopPoint, error) {
	if len(cfg.Rates) == 0 {
		return nil, fmt.Errorf("load: open loop needs at least one rate")
	}
	for _, r := range cfg.Rates {
		if r <= 0 {
			return nil, fmt.Errorf("load: open loop rate %v must be positive", r)
		}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = defaultOpenLoopInFlight
	}
	points := make([]OpenLoopPoint, 0, len(cfg.Rates))
	for _, rate := range cfg.Rates {
		p, err := runOpenLoopPoint(cfg, rate)
		if err != nil {
			return nil, fmt.Errorf("load: open loop at %v actions/s: %w", rate, err)
		}
		points = append(points, p)
	}
	return points, nil
}

func runOpenLoopPoint(cfg OpenLoopConfig, rate float64) (OpenLoopPoint, error) {
	offered := int(rate * cfg.Duration.Seconds())
	if offered < 1 {
		offered = 1
	}
	base := cfg.Config
	base.Actions = offered
	// Size the worker pool for the admitted population, not the offered
	// one: the budget caps in-flight actions at MaxInFlight.
	base.Concurrency = cfg.MaxInFlight
	if base.Concurrency <= 0 {
		base.Concurrency = defaultOpenLoopInFlight
	}
	base = base.withDefaults()

	metrics := &caaction.Metrics{}
	opts := []caaction.Option{
		caaction.WithRealTime(),
		caaction.WithMetrics(metrics),
	}
	switch base.Transport {
	case "sim":
		opts = append(opts, caaction.WithSimTransport(base.Latency))
	default:
		opts = append(opts, caaction.WithTransport(base.Transport))
	}
	opts = append(opts, caaction.WithResolver(base.Resolver))
	if base.Workers > 0 {
		opts = append(opts, caaction.WithWorkers(base.Workers))
	}
	if cfg.MaxInFlight > 0 {
		opts = append(opts, caaction.WithMaxInFlight(cfg.MaxInFlight))
	}
	if base.GCPercent > 0 {
		defer debug.SetGCPercent(debug.SetGCPercent(base.GCPercent))
	}
	sys, err := caaction.New(opts...)
	if err != nil {
		return OpenLoopPoint{}, err
	}
	defer func() { _ = sys.Close() }()

	w, err := newWorkload(base)
	if err != nil {
		return OpenLoopPoint{}, err
	}

	var rejected, startErrs, badOutcome, completed atomic.Int64
	latencies := make([]time.Duration, offered) // >0 only for completions
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < offered; i++ {
		// Open-loop pacing: arrival i is due at start+i/rate; a dispatcher
		// running late releases the backlog immediately.
		due := arrivalDue(start, i, rate)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			kind := w.kindOf(idx)
			spec, progs := w.action(kind)
			t0 := time.Now()
			h, err := sys.StartAction(context.Background(), spec, progs)
			switch {
			case errors.Is(err, caaction.ErrOverloaded):
				rejected.Add(1)
				return
			case err != nil:
				startErrs.Add(1)
				return
			}
			h.WaitDone()
			if classify(h) == w.expect(kind) {
				completed.Add(1)
				latencies[idx] = time.Since(t0)
			} else {
				badOutcome.Add(1)
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	done := make([]time.Duration, 0, completed.Load())
	for _, d := range latencies {
		if d > 0 {
			done = append(done, d)
		}
	}
	pct := percentiles(done)
	return OpenLoopPoint{
		OfferedRate: rate,
		Offered:     offered,
		Started:     offered - int(rejected.Load()) - int(startErrs.Load()),
		Rejected:    int(rejected.Load()),
		Errors:      int(startErrs.Load()) + int(badOutcome.Load()),
		Completed:   int(completed.Load()),
		Goodput:     float64(completed.Load()) / wall.Seconds(),
		P50Ms:       pct.P50,
		P99Ms:       pct.P99,
		MaxInFlight: cfg.MaxInFlight,
	}, nil
}

// arrivalDue gives the release time of arrival i in an open loop offering
// rate actions/second: start + i/rate, always computed from the run origin
// so late dispatches cannot push later arrivals back — the schedule is
// absolute, not a chain of per-arrival sleeps, and therefore drift-free.
func arrivalDue(start time.Time, i int, rate float64) time.Time {
	return start.Add(time.Duration(float64(i) / rate * float64(time.Second)))
}
