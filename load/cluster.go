package load

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// ClusterOps is the injected control surface RunCluster drives a real
// multi-process cluster through. The load package deliberately knows
// nothing about process spawning or the control protocol — the
// cluster/testnet harness (which imports load, so load cannot import it
// back) supplies these callbacks over its booted canode fleet, and a test
// can supply fakes.
type ClusterOps struct {
	// Start begins one tagged round of the given workload kind with the
	// given role count on every node hosting a role. It returns once every
	// node has admitted its local roles.
	Start func(tag, kind string, roles int) error
	// Await blocks until the tagged round has finished on every node and
	// returns the cluster-wide merged outcome (see MergeOutcomes).
	Await func(tag string) (outcome string, err error)
	// Counters, when non-nil, returns the cluster-wide aggregated counter
	// snapshot (every node's metrics summed); RunCluster records the
	// per-run deltas of the transport fast-path counters from it.
	Counters func() (map[string]int64, error)
}

// ClusterConfig parameterises one RunCluster measurement.
type ClusterConfig struct {
	// Label names the measurement in the report (e.g. "batched").
	Label string `json:"label,omitempty"`
	// Rounds is the number of shared action rounds to drive; default 64.
	Rounds int `json:"rounds"`
	// Roles is the role count per round (one role per node); required.
	Roles int `json:"roles"`
	// Concurrency is how many rounds are kept in flight at once; default 8.
	// Cross-node protocol hops are latency-bound, so round throughput —
	// and with it the batched-path win, which is per-message CPU — only
	// shows under pipelining.
	Concurrency int `json:"concurrency"`
	// Kinds cycles the workload kinds across rounds; default interleaves
	// data-plane-heavy chatter rounds with the full control-plane mix
	// (commit, signal, abort, storm), so the measurement spans both the
	// cross-node wire path and the resolution protocol.
	Kinds []string `json:"kinds,omitempty"`
	// TagPrefix namespaces the round tags so repeated runs against one
	// cluster never collide; default "bench".
	TagPrefix string `json:"-"`
}

// ClusterReport is the outcome of one RunCluster measurement: round
// throughput and latency percentiles over a real multi-process cluster,
// the driver's own allocation cost per round, and the transport fast-path
// counter deltas (batched frames flushed, credit stalls) aggregated across
// the nodes.
type ClusterReport struct {
	Config     ClusterConfig  `json:"config"`
	WallSecs   float64        `json:"wall_seconds"`
	Throughput float64        `json:"rounds_per_second"`
	Latency    Percentiles    `json:"latency"`
	Outcomes   map[string]int `json:"outcomes"`
	// Unexpected lists rounds whose merged outcome differed from the
	// kind's deterministic expectation; a benchmark with unexpected
	// outcomes measured a broken cluster, not a fast one.
	Unexpected []string `json:"unexpected,omitempty"`
	// DriverAllocsPerRound is the driving process's heap allocations per
	// round (control protocol, polling) — node-side allocation ceilings
	// are asserted in-process by the transport tests instead.
	DriverAllocsPerRound float64 `json:"driver_allocs_per_round"`
	// BatchFrames and CreditStalls are the cluster-wide deltas of the
	// tcp.batch_frames / tcp.credit_stalls counters over the run (zero
	// when Counters is nil or the fast path is disabled).
	BatchFrames  int64 `json:"batch_frames"`
	CreditStalls int64 `json:"credit_stalls"`
}

func (c ClusterConfig) withDefaults() (ClusterConfig, error) {
	if c.Roles < 2 {
		return c, fmt.Errorf("load: RunCluster needs at least 2 roles, got %d", c.Roles)
	}
	if c.Rounds <= 0 {
		c.Rounds = 64
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Concurrency > c.Rounds {
		c.Concurrency = c.Rounds
	}
	if len(c.Kinds) == 0 {
		c.Kinds = []string{
			KindChatter, KindChatter, KindCommit, KindChatter, KindChatter, KindSignal,
			KindChatter, KindChatter, KindAbort, KindChatter, KindChatter, KindStorm,
		}
	}
	if c.TagPrefix == "" {
		c.TagPrefix = "bench"
	}
	return c, nil
}

// RunCluster drives cfg.Rounds shared action rounds through a live cluster
// via ops, keeping cfg.Concurrency rounds in flight, and reports round
// throughput, latency percentiles and the fast-path counter deltas. It is
// the cluster-mode counterpart of Run: same closed-loop shape, but the
// actions span real OS processes, so what it measures is the cross-node
// wire path.
func RunCluster(cfg ClusterConfig, ops ClusterOps) (*ClusterReport, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if ops.Start == nil || ops.Await == nil {
		return nil, fmt.Errorf("load: RunCluster needs ClusterOps.Start and Await")
	}
	var before map[string]int64
	if ops.Counters != nil {
		if before, err = ops.Counters(); err != nil {
			return nil, fmt.Errorf("load: cluster counters before run: %w", err)
		}
	}

	var (
		mu         sync.Mutex
		latencies  = make([]time.Duration, 0, cfg.Rounds)
		outcomes   = make(map[string]int)
		unexpected []string
		firstErr   error
	)
	next := make(chan int)
	var wg sync.WaitGroup

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range next {
				kind := cfg.Kinds[r%len(cfg.Kinds)]
				tag := fmt.Sprintf("%s-%s-%d", cfg.TagPrefix, cfg.Label, r)
				t0 := time.Now()
				err := ops.Start(tag, kind, cfg.Roles)
				var outcome string
				if err == nil {
					outcome, err = ops.Await(tag)
				}
				elapsed := time.Since(t0)
				mu.Lock()
				switch {
				case err != nil:
					if firstErr == nil {
						firstErr = fmt.Errorf("load: cluster round %s (%s): %w", tag, kind, err)
					}
				default:
					latencies = append(latencies, elapsed)
					outcomes[outcome]++
					if want := Expect(kind); outcome != want {
						unexpected = append(unexpected,
							fmt.Sprintf("round %s (%s): outcome %q, want %q", tag, kind, outcome, want))
					}
				}
				mu.Unlock()
			}
		}()
	}
	for r := 0; r < cfg.Rounds; r++ {
		next <- r
	}
	close(next)
	wg.Wait()
	wall := time.Since(start)
	runtime.ReadMemStats(&ms1)
	if firstErr != nil {
		return nil, firstErr
	}

	rep := &ClusterReport{
		Config:               cfg,
		WallSecs:             wall.Seconds(),
		Throughput:           float64(len(latencies)) / wall.Seconds(),
		Latency:              percentiles(latencies),
		Outcomes:             outcomes,
		Unexpected:           unexpected,
		DriverAllocsPerRound: float64(ms1.Mallocs-ms0.Mallocs) / float64(cfg.Rounds),
	}
	if ops.Counters != nil {
		after, err := ops.Counters()
		if err != nil {
			return nil, fmt.Errorf("load: cluster counters after run: %w", err)
		}
		rep.BatchFrames = after["tcp.batch_frames"] - before["tcp.batch_frames"]
		rep.CreditStalls = after["tcp.credit_stalls"] - before["tcp.credit_stalls"]
	}
	return rep, nil
}
