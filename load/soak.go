package load

import (
	"context"
	"fmt"
	"runtime/debug"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"caaction"
)

// SoakConfig parameterises RunSoak: a duration-bounded endurance run whose
// point is not throughput but stability — drivers keep starting actions
// until the window elapses while a sampler records the process's goroutine
// count and live heap at a fixed interval, so a leak (workers that never
// return to the pool, endpoints that never recycle, buffers that only grow)
// shows up as monotonic growth across the samples even when every
// fixed-action run looks healthy.
type SoakConfig struct {
	Config
	// Duration is the soak window: drivers stop claiming new actions once it
	// elapses and in-flight instances drain, so the measured wall time is
	// slightly longer than the window (see SoakReport.WallSecs).
	Duration time.Duration
	// SampleEvery is the leak-sample interval. Zero derives Duration/16,
	// clamped to [250ms, 5s].
	SampleEvery time.Duration
}

// SoakSample is one leak-detector reading: cumulative completed actions and
// the process-wide goroutine count and live-heap bytes at AtSecs into the
// soak window.
type SoakSample struct {
	AtSecs     float64 `json:"at_seconds"`
	Actions    int64   `json:"actions"`
	Goroutines int     `json:"goroutines"`
	HeapBytes  uint64  `json:"heap_bytes"`
}

// SoakReport is the outcome of one soak run. The leak gates are the growth
// fields: steady-state goroutine and heap growth between a post-warmup
// baseline sample (one quarter into the window) and the final sample, taken
// at window close while load is still applied — a healthy run holds both
// near zero no matter how long the window is.
type SoakReport struct {
	Config       Config       `json:"config"`
	DurationSecs float64      `json:"duration_seconds"` // the configured window
	WallSecs     float64      `json:"wall_seconds"`     // window + in-flight drain
	Actions      int64        `json:"actions"`
	Throughput   float64      `json:"actions_per_second"`
	Samples      []SoakSample `json:"samples"`
	// GoroutineGrowth and HeapGrowthBytes compare the final sample against
	// the post-warmup baseline; see LeakCheck.
	GoroutineGrowth int            `json:"goroutine_growth"`
	HeapGrowthBytes int64          `json:"heap_growth_bytes"`
	Outcomes        map[string]int `json:"outcomes"`
	// UnexpectedCount counts every outcome that did not match its kind's
	// expectation; Unexpected retains only the first few as diagnostics.
	UnexpectedCount int      `json:"unexpected_count,omitempty"`
	Unexpected      []string `json:"unexpected,omitempty"`
}

// maxSoakDiagnostics bounds the retained Unexpected examples: a soak that
// misbehaves for minutes must not grow an unbounded diagnostic slice.
const maxSoakDiagnostics = 16

// soakSchedule normalises the sample interval: an explicit interval is taken
// as given, zero derives one sixteenth of the window clamped to [250ms, 5s]
// — frequent enough that a 30s smoke soak yields a usable growth series,
// coarse enough that an hours-long soak doesn't accumulate thousands of
// samples.
func soakSchedule(duration, every time.Duration) time.Duration {
	if every > 0 {
		return every
	}
	every = duration / 16
	if every < 250*time.Millisecond {
		every = 250 * time.Millisecond
	}
	if every > 5*time.Second {
		every = 5 * time.Second
	}
	return every
}

// leakGrowth computes the goroutine and heap growth between the post-warmup
// baseline sample — one quarter into the series, past pool fill and first-GC
// transients — and the final sample. Fewer than two samples (a window
// shorter than the interval) reports zero growth: there is no steady state
// to compare.
func leakGrowth(samples []SoakSample) (goroutines int, heapBytes int64) {
	if len(samples) < 2 {
		return 0, 0
	}
	base := samples[len(samples)/4]
	last := samples[len(samples)-1]
	return last.Goroutines - base.Goroutines,
		int64(last.HeapBytes) - int64(base.HeapBytes)
}

// LeakCheck applies the soak's leak gates: it returns a non-nil error when
// steady-state goroutine growth exceeds maxGoroutines or steady-state heap
// growth exceeds maxHeapBytes. Non-positive bounds disable the respective
// gate.
func (r *SoakReport) LeakCheck(maxGoroutines int, maxHeapBytes int64) error {
	if maxGoroutines > 0 && r.GoroutineGrowth > maxGoroutines {
		return fmt.Errorf("load: soak leaked goroutines: steady-state growth %d > %d",
			r.GoroutineGrowth, maxGoroutines)
	}
	if maxHeapBytes > 0 && r.HeapGrowthBytes > maxHeapBytes {
		return fmt.Errorf("load: soak leaked heap: steady-state growth %d bytes > %d",
			r.HeapGrowthBytes, maxHeapBytes)
	}
	return nil
}

// RunSoak executes one duration-bounded soak run. It is synchronous: when it
// returns, the window has elapsed, every in-flight instance has completed
// and the System is closed. The workload cycles through the same
// deterministic kind sequence a fixed-action run of cfg.Config would use.
func RunSoak(cfg SoakConfig) (*SoakReport, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("load: RunSoak needs a positive duration, got %v", cfg.Duration)
	}
	c := cfg.Config.withDefaults()
	every := soakSchedule(cfg.Duration, cfg.SampleEvery)

	sysMetrics := &caaction.Metrics{}
	opts := []caaction.Option{
		caaction.WithRealTime(),
		caaction.WithMetrics(sysMetrics),
	}
	switch c.Transport {
	case "sim":
		opts = append(opts, caaction.WithSimTransport(c.Latency))
	default:
		opts = append(opts, caaction.WithTransport(c.Transport))
	}
	if c.Resolver != "" {
		opts = append(opts, caaction.WithResolver(c.Resolver))
	}
	if c.Workers > 0 {
		opts = append(opts, caaction.WithWorkers(c.Workers))
	}
	if c.GCPercent > 0 {
		defer debug.SetGCPercent(debug.SetGCPercent(c.GCPercent))
	}
	sys, err := caaction.New(opts...)
	if err != nil {
		return nil, err
	}
	defer func() { _ = sys.Close() }()

	w, err := newWorkload(c)
	if err != nil {
		return nil, err
	}

	rep := &SoakReport{
		Config:       c,
		DurationSecs: cfg.Duration.Seconds(),
		Outcomes:     make(map[string]int),
	}
	var (
		next, done atomic.Int64
		stop       atomic.Bool
		mu         sync.Mutex // guards rep.Outcomes / Unexpected*
		wg         sync.WaitGroup
	)

	// The sampler runs on an untracked goroutine (wall-clock ticks, like
	// Run's peakSampler) and takes its final sample when the window closes —
	// before the in-flight drain, so the leak gates see the process under
	// load, not after it has wound down.
	samplerDone := make(chan struct{})
	samplerStop := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(samplerDone)
		samples := []metrics.Sample{
			{Name: "/sched/goroutines:goroutines"},
			{Name: "/memory/classes/heap/objects:bytes"},
		}
		take := func() {
			metrics.Read(samples)
			rep.Samples = append(rep.Samples, SoakSample{
				AtSecs:     time.Since(start).Seconds(),
				Actions:    done.Load(),
				Goroutines: int(samples[0].Value.Uint64()),
				HeapBytes:  samples[1].Value.Uint64(),
			})
		}
		tick := time.NewTicker(every)
		defer tick.Stop()
		take() // t=0 baseline
		for {
			select {
			case <-tick.C:
				take()
			case <-samplerStop:
				take() // window-close sample, still under load
				return
			}
		}
	}()

	for i := 0; i < c.Concurrency; i++ {
		wg.Add(1)
		sys.Go(func() {
			defer wg.Done()
			for !stop.Load() {
				idx := int((next.Add(1) - 1) % int64(c.Actions))
				kind := w.kindOf(idx)
				spec, progs := w.action(kind)
				h, err := sys.StartAction(context.Background(), spec, progs)
				var outcome string
				if err != nil {
					outcome = "error: " + err.Error()
				} else {
					h.WaitDone()
					outcome = classify(h)
				}
				done.Add(1)
				mu.Lock()
				rep.Outcomes[outcome]++
				if want := w.expect(kind); outcome != want {
					rep.UnexpectedCount++
					if len(rep.Unexpected) < maxSoakDiagnostics {
						rep.Unexpected = append(rep.Unexpected,
							fmt.Sprintf("action %d (%s): outcome %q, want %q", idx, kind, outcome, want))
					}
				}
				mu.Unlock()
			}
		})
	}

	time.Sleep(cfg.Duration)
	stop.Store(true)
	close(samplerStop)
	<-samplerDone
	wg.Wait()

	rep.WallSecs = time.Since(start).Seconds()
	rep.Actions = done.Load()
	if rep.WallSecs > 0 {
		rep.Throughput = float64(rep.Actions) / rep.WallSecs
	}
	rep.GoroutineGrowth, rep.HeapGrowthBytes = leakGrowth(rep.Samples)
	return rep, nil
}
