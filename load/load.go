// Package load is the CA-action runtime's load harness: it drives thousands
// of concurrent action instances through one System over a shared transport
// (the concurrent multi-action runtime behind System.StartAction) with a
// configurable mix of outcomes — clean commits, exceptional exits through
// the signalling protocol, abort cascades through nested actions, and
// resolution storms where every role raises at once — and reports wall-clock
// throughput, per-action latency percentiles and per-kind protocol message
// counts.
//
// The harness runs on the real clock: unlike the chaos engine (which proves
// protocol properties in deterministic virtual time), load measures what the
// hardware actually does. The workload composition is still deterministic in
// Config.Seed, so runs are comparable across commits; cmd/caload records
// them as BENCH_load.json.
package load

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"caaction"
)

// Action kinds the mix is drawn from.
const (
	// KindCommit: every role computes briefly and the action exits cleanly.
	KindCommit = "commit"
	// KindSignal: one role raises a declared exception with no handler; the
	// action exits exceptionally, signalling it as ε to every caller.
	KindSignal = "signal"
	// KindAbort: every role but one descends into a nested action; the
	// remaining role raises in the enclosing action, forcing the §3.3.2
	// abort cascade and a coordinated undo (µ).
	KindAbort = "abort"
	// KindStorm: every role raises its own exception concurrently — a
	// resolution storm — and handles the resolved cover, committing.
	KindStorm = "storm"
	// KindChatter: every role streams a burst of application payloads to
	// every other role and drains the bursts addressed to it, then commits.
	// Where the other kinds are control-plane heavy (barriers, votes,
	// resolution), chatter rounds are dominated by App frames — the
	// cluster benchmark's probe of the cross-node wire path.
	KindChatter = "chatter"
)

// ChatterBurst is how many payloads each chatter role sends to each of
// its peers per round. With r roles a round moves r·(r−1)·ChatterBurst
// cross-node messages, enough for per-message wire cost to dominate the
// round's protocol overhead. A cluster driver keeping C chatter rounds in
// flight puts up to C·ChatterBurst messages in flight per node pair, so
// it must size the transport's per-peer credit window accordingly
// (testnet's bench does) or the window's bounded backpressure throttles
// the measurement.
const ChatterBurst = 512

// Mix weights the action kinds in the generated workload. The zero value
// (all weights zero) means DefaultMix.
type Mix struct {
	Commit int `json:"commit"`
	Signal int `json:"signal"`
	Abort  int `json:"abort"`
	Storm  int `json:"storm"`
}

// DefaultMix is commit-heavy with a steady trickle of every failure shape.
var DefaultMix = Mix{Commit: 6, Signal: 2, Abort: 1, Storm: 1}

func (m Mix) total() int { return m.Commit + m.Signal + m.Abort + m.Storm }

// ParseMix parses the command-line mix syntax "commit:6,signal:2,abort:1,
// storm:1". Kinds may appear in any order; omitted kinds weigh zero. An
// empty string parses to the zero Mix (meaning DefaultMix).
func ParseMix(s string) (Mix, error) {
	var m Mix
	if strings.TrimSpace(s) == "" {
		return m, nil
	}
	for _, part := range strings.Split(s, ",") {
		kind, val, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return Mix{}, fmt.Errorf("load: mix entry %q: want kind:weight", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 0 {
			return Mix{}, fmt.Errorf("load: mix entry %q: bad weight", part)
		}
		switch strings.TrimSpace(kind) {
		case KindCommit:
			m.Commit = w
		case KindSignal:
			m.Signal = w
		case KindAbort:
			m.Abort = w
		case KindStorm:
			m.Storm = w
		default:
			return Mix{}, fmt.Errorf("load: mix entry %q: unknown kind (want commit, signal, abort or storm)", part)
		}
	}
	if m.total() <= 0 {
		return Mix{}, fmt.Errorf("load: mix %q has zero total weight", s)
	}
	return m, nil
}

// pick draws a kind from the mix with one rng roll.
func (m Mix) pick(rng *rand.Rand) string {
	n := rng.Intn(m.total())
	switch {
	case n < m.Commit:
		return KindCommit
	case n < m.Commit+m.Signal:
		return KindSignal
	case n < m.Commit+m.Signal+m.Abort:
		return KindAbort
	default:
		return KindStorm
	}
}

// Config parameterises one load run. The zero value is usable: 500 actions,
// 64 in flight, 3 roles, the coordinated resolver over the sim transport.
type Config struct {
	// Actions is the total number of action instances to run.
	Actions int `json:"actions"`
	// Concurrency is the number of driver goroutines, i.e. the maximum
	// number of instances in flight at once.
	Concurrency int `json:"concurrency"`
	// Roles is the number of participating roles (and threads) per action.
	Roles int `json:"roles"`
	// Resolver is the resolution-protocol registry name.
	Resolver string `json:"resolver"`
	// Transport is the transport registry name ("sim" or "tcp").
	Transport string `json:"transport"`
	// Latency is the sim transport's modelled one-way delay.
	Latency time.Duration `json:"latency_ns"`
	// Seed makes the workload composition deterministic.
	Seed int64 `json:"seed"`
	// Mix weights the action kinds; the zero Mix means DefaultMix.
	Mix Mix `json:"mix"`
	// Workers sizes the System's role-worker pool (caaction.WithWorkers).
	// Zero sizes it automatically at Concurrency x Roles (every in-flight
	// role gets a resident worker, bounded by maxAutoWorkers); negative
	// disables the pool, restoring the goroutine-per-role lifecycle.
	Workers int `json:"workers,omitempty"`
	// GCPercent pins the garbage collector's pacing (runtime/debug.
	// SetGCPercent) for the duration of the run, restoring the previous
	// value afterwards. Measurement methodology, recorded in the report:
	// at thousands of in-flight actions the default GOGC=100 collects so
	// often that every sync.Pool in the runtime is flushed mid-flight, and
	// the harness measures GC thrash instead of the runtime's capacity —
	// exactly the knob a production deployment of this load would tune.
	// Zero means defaultGCPercent; negative inherits the process setting.
	GCPercent int `json:"gc_percent,omitempty"`
}

// defaultGCPercent is the harness's pinned GC pacing (Config.GCPercent 0).
const defaultGCPercent = 400

// maxAutoWorkers caps the automatic pool sizing; explicit Workers values
// are taken as given.
const maxAutoWorkers = 8192

func (c Config) withDefaults() Config {
	if c.Actions <= 0 {
		c.Actions = 500
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 64
	}
	if c.Roles < 2 {
		c.Roles = 3
	}
	if c.Resolver == "" {
		c.Resolver = "coordinated"
	}
	if c.Transport == "" {
		c.Transport = "sim"
	}
	if c.Mix.total() <= 0 {
		c.Mix = DefaultMix
	}
	if c.Workers == 0 {
		c.Workers = c.Concurrency * c.Roles
		if c.Workers > maxAutoWorkers {
			c.Workers = maxAutoWorkers
		}
	}
	if c.GCPercent == 0 {
		c.GCPercent = defaultGCPercent
	}
	return c
}

// Percentiles summarises a latency distribution in milliseconds.
type Percentiles struct {
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

func percentiles(durations []time.Duration) Percentiles {
	if len(durations) == 0 {
		return Percentiles{}
	}
	sorted := append([]time.Duration(nil), durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return float64(sorted[i]) / float64(time.Millisecond)
	}
	return Percentiles{
		P50: at(0.50),
		P90: at(0.90),
		P99: at(0.99),
		Max: float64(sorted[len(sorted)-1]) / float64(time.Millisecond),
	}
}

// KindStats aggregates the instances of one action kind.
type KindStats struct {
	Actions int         `json:"actions"`
	Latency Percentiles `json:"latency"`
}

// Report is the outcome of one load run.
type Report struct {
	Config     Config  `json:"config"`
	WallSecs   float64 `json:"wall_seconds"`
	Throughput float64 `json:"actions_per_second"`
	// AllocsPerAction and BytesPerAction are process-wide heap allocation
	// counts divided by the number of actions — the load harness's
	// equivalent of the benchmarks' allocs/op, watched by the perf gate.
	AllocsPerAction float64 `json:"allocs_per_action"`
	BytesPerAction  float64 `json:"bytes_per_action"`
	// GoroutineHighWater and PeakHeapBytes are sampled maxima over the run
	// (process-wide). They make scalability regressions — leaked workers,
	// unbounded pools, runaway buffering — visible in BENCH_load.json even
	// when throughput still looks healthy.
	GoroutineHighWater int         `json:"goroutine_high_water"`
	PeakHeapBytes      uint64      `json:"peak_heap_bytes"`
	Latency            Percentiles `json:"latency"`
	// Outcomes counts per-action classifications: "ok", "undone", "failed",
	// "signalled:<exc>" or "error:<msg>".
	Outcomes map[string]int        `json:"outcomes"`
	Kinds    map[string]*KindStats `json:"kinds"`
	// Messages are the transport's per-kind message counters ("Exception",
	// "Commit", "Enter", ...).
	Messages map[string]int64 `json:"messages"`
	// Unexpected lists actions whose outcome did not match their kind's
	// expectation; a healthy run has none.
	Unexpected []string `json:"unexpected,omitempty"`
}

// peakSampler tracks process-wide goroutine-count and live-heap maxima over
// a run with cheap runtime/metrics reads (no stop-the-world), sampled every
// couple of milliseconds on an untracked goroutine.
type peakSampler struct {
	stop, done chan struct{}
	goroutines int
	heap       uint64
}

func startPeakSampler() *peakSampler {
	s := &peakSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		samples := []metrics.Sample{
			{Name: "/sched/goroutines:goroutines"},
			{Name: "/memory/classes/heap/objects:bytes"},
		}
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			metrics.Read(samples)
			if n := int(samples[0].Value.Uint64()); n > s.goroutines {
				s.goroutines = n
			}
			if b := samples[1].Value.Uint64(); b > s.heap {
				s.heap = b
			}
			select {
			case <-s.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return s
}

// finish stops the sampler and returns (goroutine high-water, peak heap
// bytes).
func (s *peakSampler) finish() (int, uint64) {
	close(s.stop)
	<-s.done
	return s.goroutines, s.heap
}

// Run executes one load run and aggregates its report. It is synchronous:
// when it returns, every instance has completed and the System is closed.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	metrics := &caaction.Metrics{}
	opts := []caaction.Option{
		caaction.WithRealTime(),
		caaction.WithMetrics(metrics),
	}
	switch cfg.Transport {
	case "sim":
		opts = append(opts, caaction.WithSimTransport(cfg.Latency))
	default:
		opts = append(opts, caaction.WithTransport(cfg.Transport))
	}
	if cfg.Resolver != "" {
		opts = append(opts, caaction.WithResolver(cfg.Resolver))
	}
	if cfg.Workers > 0 {
		opts = append(opts, caaction.WithWorkers(cfg.Workers))
	}
	if cfg.GCPercent > 0 {
		defer debug.SetGCPercent(debug.SetGCPercent(cfg.GCPercent))
	}
	sys, err := caaction.New(opts...)
	if err != nil {
		return nil, err
	}
	defer func() { _ = sys.Close() }()

	w, err := newWorkload(cfg)
	if err != nil {
		return nil, err
	}

	type sample struct {
		kind, outcome string
		latency       time.Duration
		unexpected    string
	}
	samples := make([]sample, cfg.Actions)
	var next atomic.Int64
	var wg sync.WaitGroup
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	peaks := startPeakSampler()
	start := time.Now()
	for i := 0; i < cfg.Concurrency; i++ {
		wg.Add(1)
		sys.Go(func() {
			defer wg.Done()
			for {
				idx := int(next.Add(1) - 1)
				if idx >= cfg.Actions {
					return
				}
				kind := w.kindOf(idx)
				spec, progs := w.action(kind)
				t0 := time.Now()
				h, err := sys.StartAction(context.Background(), spec, progs)
				var outcome string
				if err != nil {
					outcome = "error: " + err.Error()
				} else {
					h.WaitDone()
					outcome = classify(h)
				}
				s := sample{kind: kind, outcome: outcome, latency: time.Since(t0)}
				if want := w.expect(kind); outcome != want {
					s.unexpected = fmt.Sprintf("action %d (%s): outcome %q, want %q", idx, kind, outcome, want)
				}
				samples[idx] = s
			}
		})
	}
	wg.Wait()
	wall := time.Since(start)
	ghw, peakHeap := peaks.finish()
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)

	rep := &Report{
		Config:             cfg,
		WallSecs:           wall.Seconds(),
		Throughput:         float64(cfg.Actions) / wall.Seconds(),
		AllocsPerAction:    float64(memAfter.Mallocs-memBefore.Mallocs) / float64(cfg.Actions),
		BytesPerAction:     float64(memAfter.TotalAlloc-memBefore.TotalAlloc) / float64(cfg.Actions),
		GoroutineHighWater: ghw,
		PeakHeapBytes:      peakHeap,
		Outcomes:           make(map[string]int),
		Kinds:              make(map[string]*KindStats),
		Messages:           make(map[string]int64),
	}
	all := make([]time.Duration, 0, len(samples))
	perKind := make(map[string][]time.Duration)
	for _, s := range samples {
		rep.Outcomes[s.outcome]++
		all = append(all, s.latency)
		perKind[s.kind] = append(perKind[s.kind], s.latency)
		if s.unexpected != "" {
			rep.Unexpected = append(rep.Unexpected, s.unexpected)
		}
	}
	rep.Latency = percentiles(all)
	for kind, ds := range perKind {
		rep.Kinds[kind] = &KindStats{Actions: len(ds), Latency: percentiles(ds)}
	}
	for name, v := range metrics.Snapshot() {
		if len(name) > 4 && name[:4] == "msg." {
			rep.Messages[name[4:]] = v
		}
	}
	return rep, nil
}

// SweepPoint condenses one concurrency level of a scaling sweep: the
// metrics the perf gate compares (throughput, tail latency, allocation
// rate) plus the scalability watermarks.
type SweepPoint struct {
	Concurrency        int     `json:"concurrency"`
	Actions            int     `json:"actions"`
	Throughput         float64 `json:"actions_per_second"`
	AllocsPerAction    float64 `json:"allocs_per_action"`
	P99Ms              float64 `json:"p99_ms"`
	GoroutineHighWater int     `json:"goroutine_high_water"`
	PeakHeapBytes      uint64  `json:"peak_heap_bytes"`
}

// RunSweep executes one full Run per concurrency level (each on a fresh
// System) and condenses the results, proving — or disproving — that
// throughput scales with in-flight instances. cfg.Concurrency is overridden
// per point; everything else (actions, mix, seed, resolver) is held fixed
// so the points are comparable.
func RunSweep(cfg Config, concurrencies []int) ([]SweepPoint, error) {
	points := make([]SweepPoint, 0, len(concurrencies))
	for _, c := range concurrencies {
		runCfg := cfg
		runCfg.Concurrency = c
		// Workers carries over from cfg: zero re-derives the auto pool size
		// per level inside Run (withDefaults), an explicit value is pinned.
		rep, err := Run(runCfg)
		if err != nil {
			return nil, fmt.Errorf("load: sweep at concurrency %d: %w", c, err)
		}
		if len(rep.Unexpected) > 0 {
			return nil, fmt.Errorf("load: sweep at concurrency %d: %d unexpected outcomes, e.g. %s",
				c, len(rep.Unexpected), rep.Unexpected[0])
		}
		points = append(points, SweepPoint{
			Concurrency:        c,
			Actions:            rep.Config.Actions,
			Throughput:         rep.Throughput,
			AllocsPerAction:    rep.AllocsPerAction,
			P99Ms:              rep.Latency.P99,
			GoroutineHighWater: rep.GoroutineHighWater,
			PeakHeapBytes:      rep.PeakHeapBytes,
		})
	}
	return points, nil
}

// ClassifyRole names one role's outcome: "ok", "failed" (ƒ), "undone" (µ),
// "signalled:<ε>" for an exceptional exit, or "error: <msg>" for anything
// else. It is the per-role half of the harness's classification, exported
// so multi-process drivers (the cluster testnet) can classify each node's
// roles locally and merge with MergeOutcomes.
func ClassifyRole(err error) string {
	switch {
	case err == nil:
		return "ok"
	case caaction.IsFailed(err):
		return "failed"
	case caaction.IsUndone(err):
		return "undone"
	default:
		if se, ok := caaction.AsSignalled(err); ok {
			return "signalled:" + string(se.Exc)
		}
		return "error: " + err.Error()
	}
}

// severity orders classified outcomes: failed > undone > error > signalled
// > ok. MergeOutcomes keeps the most severe (first wins among equals).
func severity(outcome string) int {
	switch {
	case outcome == "failed":
		return 4
	case outcome == "undone":
		return 3
	case strings.HasPrefix(outcome, "error"):
		return 2
	case strings.HasPrefix(outcome, "signalled:"):
		return 1
	default:
		return 0
	}
}

// MergeOutcomes reduces per-role classifications (ClassifyRole) to one
// action outcome under the harness's fixed severity order — failed >
// undone > error > signalled > ok — keeping the first seen among equals,
// so a deterministic role order yields a deterministic action outcome.
// With no arguments it returns "ok".
func MergeOutcomes(outcomes ...string) string {
	merged := "ok"
	for _, o := range outcomes {
		if severity(o) > severity(merged) {
			merged = o
		}
	}
	return merged
}

// classify reduces an instance's per-role outcomes to one action outcome,
// roles visited in spec order (ActionHandle.Each), so identical runs always
// classify identically, without the per-action map snapshot and sort the
// old map-based classification paid.
func classify(h *caaction.ActionHandle) string {
	merged := "ok"
	h.Each(func(role string, err error) {
		if o := ClassifyRole(err); severity(o) > severity(merged) {
			merged = o
		}
	})
	return merged
}

// workload owns the per-kind specs and programs, all safe for concurrent
// reuse across instances (specs are immutable and programs only touch their
// per-instance Context), plus the precomputed per-action kind sequence.
type workload struct {
	cfg   Config
	kinds []string
	specs map[string]*caaction.Spec
	progs map[string]map[string]caaction.RoleProgram
}

func roleName(i int) string { return fmt.Sprintf("r%d", i+1) }

// threadName returns the shared thread addresses every instance muxes over.
func threadName(i int) string { return fmt.Sprintf("L%d", i+1) }

// RoleName returns the harness's i-th role name ("r1", "r2", ...), and
// ThreadName the logical thread address that role is bound to ("L1", "L2",
// ...). Exported so external drivers — the cluster testnet partitioning
// threads across nodes — agree with the Workload specs on naming.
func RoleName(i int) string { return roleName(i) }

// ThreadName returns the harness's i-th logical thread address; see
// RoleName.
func ThreadName(i int) string { return threadName(i) }

// Decision records one role's view of a storm resolution: the exception
// the resolver settled on and the concurrently raised set (sorted ids) it
// covered. The chaos invariants a cluster testnet asserts — per-round
// agreement and cover-set resolution — are statements over these.
type Decision struct {
	Role     string   `json:"role"`
	Resolved string   `json:"resolved"`
	Raised   []string `json:"raised"`
}

// Observer receives one Decision per storm role as its handler runs; it
// must be safe for concurrent use (roles decide in parallel).
type Observer func(Decision)

// Workload returns one load-action kind — the same specs and programs Run
// drives — for external drivers that start the actions through their own
// Systems (the cluster testnet starting locally-placed roles on each
// node). roles must be at least 2. For KindStorm a non-nil obs receives
// every role's resolution Decision; other kinds ignore obs.
func Workload(kind string, roles int, obs Observer) (*caaction.Spec, map[string]caaction.RoleProgram, error) {
	if roles < 2 {
		return nil, nil, fmt.Errorf("load: Workload needs at least 2 roles, got %d", roles)
	}
	var (
		spec  *caaction.Spec
		progs map[string]caaction.RoleProgram
		err   error
	)
	switch kind {
	case KindCommit:
		_, spec, progs, err = buildCommit(roles)
	case KindSignal:
		_, spec, progs, err = buildSignal(roles)
	case KindAbort:
		_, spec, progs, err = buildAbort(roles)
	case KindStorm:
		_, spec, progs, err = buildStorm(roles, obs)
	case KindChatter:
		_, spec, progs, err = buildChatter(roles)
	default:
		return nil, nil, fmt.Errorf("load: unknown workload kind %q", kind)
	}
	return spec, progs, err
}

// Expect is each kind's deterministic merged outcome: what classify
// reports for a fault-free run of the kind's action.
func Expect(kind string) string {
	switch kind {
	case KindSignal:
		return "signalled:overload"
	case KindAbort:
		return "undone"
	default:
		return "ok"
	}
}

func newWorkload(cfg Config) (*workload, error) {
	w := &workload{
		cfg:   cfg,
		specs: make(map[string]*caaction.Spec),
		progs: make(map[string]map[string]caaction.RoleProgram),
	}
	for _, build := range []func(int) (string, *caaction.Spec, map[string]caaction.RoleProgram, error){
		buildCommit, buildSignal, buildAbort,
		func(roles int) (string, *caaction.Spec, map[string]caaction.RoleProgram, error) {
			return buildStorm(roles, nil)
		},
	} {
		kind, spec, progs, err := build(cfg.Roles)
		if err != nil {
			return nil, fmt.Errorf("load: building %s workload: %w", kind, err)
		}
		w.specs[kind] = spec
		w.progs[kind] = progs
	}
	// Draw the whole kind sequence up front from one seeded stream. Still
	// fully deterministic in (Seed, Mix, Actions), but the drivers' hot
	// loop no longer pays an rng construction per action — seeding a
	// math/rand source initialises a 607-word feedback register, which
	// profiled at ~20% of a sim-transport run's CPU.
	w.kinds = make([]string, cfg.Actions)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := range w.kinds {
		w.kinds[i] = cfg.Mix.pick(rng)
	}
	return w, nil
}

// kindOf is action idx's precomputed kind.
func (w *workload) kindOf(idx int) string { return w.kinds[idx] }

func (w *workload) action(kind string) (*caaction.Spec, map[string]caaction.RoleProgram) {
	return w.specs[kind], w.progs[kind]
}

// expect is each kind's deterministic outcome.
func (w *workload) expect(kind string) string { return Expect(kind) }

func rolesOn(b *caaction.SpecBuilder, n int) *caaction.SpecBuilder {
	for i := 0; i < n; i++ {
		b = b.Role(roleName(i), threadName(i))
	}
	return b
}

func buildCommit(roles int) (string, *caaction.Spec, map[string]caaction.RoleProgram, error) {
	spec, err := rolesOn(caaction.NewSpec("load-commit"), roles).Build()
	if err != nil {
		return KindCommit, nil, nil, err
	}
	progs := make(map[string]caaction.RoleProgram, roles)
	for i := 0; i < roles; i++ {
		progs[roleName(i)] = caaction.RoleProgram{
			Body: func(ctx *caaction.Context) error { return ctx.Checkpoint() },
		}
	}
	return KindCommit, spec, progs, nil
}

// buildChatter builds the data-plane-heavy kind: each role sends
// ChatterBurst payloads to every other role, then drains the bursts
// addressed to it and commits. Sends are asynchronous, so every role
// finishes its send loop before blocking in Recv — no ordering deadlock.
func buildChatter(roles int) (string, *caaction.Spec, map[string]caaction.RoleProgram, error) {
	spec, err := rolesOn(caaction.NewSpec("load-chatter"), roles).Build()
	if err != nil {
		return KindChatter, nil, nil, err
	}
	progs := make(map[string]caaction.RoleProgram, roles)
	for i := 0; i < roles; i++ {
		self := i
		progs[roleName(i)] = caaction.RoleProgram{
			Body: func(ctx *caaction.Context) error {
				for j := 0; j < roles; j++ {
					if j == self {
						continue
					}
					for k := 0; k < ChatterBurst; k++ {
						if err := ctx.Send(roleName(j), "chatter"); err != nil {
							return err
						}
					}
				}
				for j := 0; j < roles; j++ {
					if j == self {
						continue
					}
					for k := 0; k < ChatterBurst; k++ {
						if _, err := ctx.Recv(roleName(j)); err != nil {
							return err
						}
					}
				}
				return ctx.Checkpoint()
			},
		}
	}
	return KindChatter, spec, progs, nil
}

func buildSignal(roles int) (string, *caaction.Spec, map[string]caaction.RoleProgram, error) {
	spec, err := rolesOn(caaction.NewSpec("load-signal"), roles).
		Exception("overload").
		Signals("overload").
		Build()
	if err != nil {
		return KindSignal, nil, nil, err
	}
	progs := make(map[string]caaction.RoleProgram, roles)
	progs[roleName(0)] = caaction.RoleProgram{
		Body: func(ctx *caaction.Context) error { return ctx.Raise("overload", "load raiser") },
	}
	for i := 1; i < roles; i++ {
		progs[roleName(i)] = caaction.RoleProgram{
			// Wait for the raiser's Exception; the control error unwinds the
			// body and — with no handler but "overload" declared in Signals —
			// every role signals ε = overload.
			Body: func(ctx *caaction.Context) error { return ctx.Compute(time.Hour) },
		}
	}
	return KindSignal, spec, progs, nil
}

func buildAbort(roles int) (string, *caaction.Spec, map[string]caaction.RoleProgram, error) {
	raiser := roleName(roles - 1)
	outer, err := rolesOn(caaction.NewSpec("load-abort"), roles).
		Exception("halt").
		Build()
	if err != nil {
		return KindAbort, nil, nil, err
	}
	nestedB := caaction.NewSpec("load-abort-nest")
	for i := 0; i < roles-1; i++ {
		nestedB = nestedB.Role(roleName(i), threadName(i))
	}
	nested, err := nestedB.Build()
	if err != nil {
		return KindAbort, nil, nil, err
	}

	progs := make(map[string]caaction.RoleProgram, roles)
	for i := 0; i < roles-1; i++ {
		role := roleName(i)
		progs[role] = caaction.RoleProgram{
			Body: func(ctx *caaction.Context) error {
				// Tell the raiser we are about to descend, then sit in the
				// nested action until its abort cascade throws us out.
				if err := ctx.Send(raiser, "descending"); err != nil {
					return err
				}
				return ctx.Enter(nested, role, caaction.RoleProgram{
					Body: func(c *caaction.Context) error { return c.Compute(time.Hour) },
				})
			},
		}
	}
	progs[raiser] = caaction.RoleProgram{
		Body: func(ctx *caaction.Context) error {
			for i := 0; i < roles-1; i++ {
				if _, err := ctx.Recv(roleName(i)); err != nil {
					return err
				}
			}
			return ctx.Raise("halt", "load abort")
		},
	}
	return KindAbort, outer, progs, nil
}

func buildStorm(roles int, obs Observer) (string, *caaction.Spec, map[string]caaction.RoleProgram, error) {
	b := rolesOn(caaction.NewSpec("load-storm"), roles)
	excs := make([]caaction.Exception, roles)
	for i := range excs {
		excs[i] = caaction.Exception(fmt.Sprintf("e%d", i+1))
	}
	spec, err := b.Exception(excs...).Build()
	if err != nil {
		return KindStorm, nil, nil, err
	}
	// Whatever subset of the storm lands in round 0 — one raise or all of
	// them — some cover resolves it; handling every node keeps the outcome
	// a clean commit. A non-nil observer sees each role's decision — the
	// raw material for the agreement and cover-set invariants.
	handled := func(ctx *caaction.Context, resolved caaction.Exception, raised []caaction.Raised) error {
		if obs != nil {
			ids := make([]string, 0, len(raised))
			for _, r := range raised {
				ids = append(ids, string(r.ID))
			}
			sort.Strings(ids)
			obs(Decision{Role: ctx.Role(), Resolved: string(resolved), Raised: ids})
		}
		return nil
	}
	handlers := make(map[caaction.Exception]caaction.Handler)
	for _, node := range spec.Graph.Nodes() {
		handlers[node] = handled
	}
	progs := make(map[string]caaction.RoleProgram, roles)
	for i := 0; i < roles; i++ {
		exc := excs[i]
		progs[roleName(i)] = caaction.RoleProgram{
			Body: func(ctx *caaction.Context) error {
				return ctx.Raise(exc, "storm")
			},
			Handlers: handlers,
		}
	}
	return KindStorm, spec, progs, nil
}
