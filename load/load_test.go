package load_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"caaction"
	"caaction/load"
)

// TestLoadSimMixedOutcomes runs the full mix over the sim transport and
// checks every action produced exactly its kind's expected outcome.
func TestLoadSimMixedOutcomes(t *testing.T) {
	cfg := load.Config{Actions: 400, Concurrency: 64, Roles: 3, Seed: 7}
	if testing.Short() {
		cfg.Actions = 120
	}
	rep, err := load.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unexpected) > 0 {
		t.Fatalf("unexpected outcomes (%d):\n%v", len(rep.Unexpected), rep.Unexpected[:min(5, len(rep.Unexpected))])
	}
	total := 0
	for _, n := range rep.Outcomes {
		total += n
	}
	if total != cfg.Actions {
		t.Errorf("outcome total %d, want %d", total, cfg.Actions)
	}
	for _, kind := range []string{load.KindCommit, load.KindSignal, load.KindAbort, load.KindStorm} {
		if rep.Kinds[kind] == nil || rep.Kinds[kind].Actions == 0 {
			t.Errorf("mix produced no %s actions", kind)
		}
	}
	if rep.Throughput <= 0 {
		t.Errorf("throughput = %v", rep.Throughput)
	}
	if rep.Messages["Enter"] == 0 || rep.Messages["ToBeSignalled"] == 0 {
		t.Errorf("protocol message counts missing: %v", rep.Messages)
	}
}

// TestLoadResolverComparison runs the same seeded workload under all three
// resolution protocols; outcomes must agree (the protocols are equivalent in
// what they decide, only their message complexity differs).
func TestLoadResolverComparison(t *testing.T) {
	actions := 150
	if testing.Short() {
		actions = 60
	}
	var first map[string]int
	for _, resolver := range []string{"coordinated", "cr86", "r96"} {
		rep, err := load.Run(load.Config{Actions: actions, Concurrency: 32, Seed: 11, Resolver: resolver})
		if err != nil {
			t.Fatalf("%s: %v", resolver, err)
		}
		if len(rep.Unexpected) > 0 {
			t.Fatalf("%s: unexpected outcomes: %v", resolver, rep.Unexpected[:min(5, len(rep.Unexpected))])
		}
		if first == nil {
			first = rep.Outcomes
		} else {
			for outcome, n := range first {
				if rep.Outcomes[outcome] != n {
					t.Errorf("%s: outcome %q count %d, coordinated had %d",
						resolver, outcome, rep.Outcomes[outcome], n)
				}
			}
		}
	}
}

// TestLoadTCPSharedEndpointPair stresses the demultiplexer over the real TCP
// transport: ≥100 concurrent actions all muxed over one TCP endpoint pair.
// Run under -race this is the transport's data-race coverage.
func TestLoadTCPSharedEndpointPair(t *testing.T) {
	cfg := load.Config{
		Actions:     120,
		Concurrency: 40,
		Roles:       2, // exactly one endpoint pair
		Transport:   "tcp",
		Seed:        3,
	}
	if testing.Short() {
		cfg.Actions = 50
	}
	rep, err := load.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unexpected) > 0 {
		t.Fatalf("unexpected outcomes over TCP (%d):\n%v",
			len(rep.Unexpected), rep.Unexpected[:min(5, len(rep.Unexpected))])
	}
	total := 0
	for _, n := range rep.Outcomes {
		total += n
	}
	if total != cfg.Actions {
		t.Errorf("outcome total %d, want %d", total, cfg.Actions)
	}
}

// TestThousandConcurrentActions is the acceptance bar for the concurrent
// multi-action runtime: one System holds ≥1000 action instances in flight
// simultaneously — every instance provably entered before any may complete,
// enforced by a gate all bodies block on — and drives them all to a correct
// completion over the shared sim transport.
func TestThousandConcurrentActions(t *testing.T) {
	const n = 1000
	sys, err := caaction.New(caaction.WithRealTime(), caaction.WithSimTransport(0))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()

	spec, err := caaction.NewSpec("flood").
		Role("left", "T1").
		Role("right", "T2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	entered := make(chan struct{}, 2*n)
	body := func(ctx *caaction.Context) error {
		entered <- struct{}{}
		<-gate // held until all n instances are in flight
		return ctx.Checkpoint()
	}
	progs := map[string]caaction.RoleProgram{"left": {Body: body}, "right": {Body: body}}

	handles := make([]*caaction.ActionHandle, n)
	for i := range handles {
		h, err := sys.StartAction(context.Background(), spec, progs)
		if err != nil {
			t.Fatalf("StartAction %d: %v", i, err)
		}
		handles[i] = h
	}
	deadline := time.After(2 * time.Minute)
	for i := 0; i < 2*n; i++ {
		select {
		case <-entered:
		case <-deadline:
			t.Fatalf("only %d of %d roles entered in time", i, 2*n)
		}
	}
	close(gate) // all 1000 instances are concurrent right now
	sys.Wait()
	for i, h := range handles {
		if !h.Done() {
			t.Fatalf("instance %d not done", i)
		}
		if err := h.Err(); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
	}
	if got := sys.Metrics().Get("action.completions"); got != 2*n {
		t.Errorf("action.completions = %d, want %d", got, 2*n)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestParseMix(t *testing.T) {
	cases := []struct {
		in      string
		want    load.Mix
		wantErr bool
	}{
		{"", load.Mix{}, false},
		{"commit:6,signal:2,abort:1,storm:1", load.Mix{6, 2, 1, 1}, false},
		{" storm:3 , commit:1 ", load.Mix{Commit: 1, Storm: 3}, false},
		{"commit:8", load.Mix{Commit: 8}, false},
		{"commit", load.Mix{}, true},            // no weight
		{"commit:x", load.Mix{}, true},          // bad weight
		{"commit:-1", load.Mix{}, true},         // negative weight
		{"retry:5", load.Mix{}, true},           // unknown kind
		{"commit:0,signal:0", load.Mix{}, true}, // zero total
	}
	for _, tc := range cases {
		got, err := load.ParseMix(tc.in)
		if tc.wantErr != (err != nil) {
			t.Errorf("load.ParseMix(%q) error = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if !tc.wantErr && got != tc.want {
			t.Errorf("load.ParseMix(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

// TestLoadSweepAndWatermarks runs a tiny two-point sweep and checks the
// scaling report is coherent: per-point configs respected, watermarks
// recorded (the goroutine high-water must at least reflect the worker
// pool), outcomes all expected.
func TestLoadSweepAndWatermarks(t *testing.T) {
	actions := 300
	if testing.Short() {
		actions = 80
	}
	cfg := load.Config{Actions: actions, Roles: 2, Seed: 7}
	points, err := load.RunSweep(cfg, []int{8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d sweep points, want 2", len(points))
	}
	for i, c := range []int{8, 32} {
		p := points[i]
		if p.Concurrency != c || p.Actions != actions {
			t.Errorf("point %d: concurrency/actions = %d/%d, want %d/%d", i, p.Concurrency, p.Actions, c, actions)
		}
		if p.Throughput <= 0 {
			t.Errorf("point %d: non-positive throughput %f", i, p.Throughput)
		}
		if p.AllocsPerAction <= 0 {
			t.Errorf("point %d: non-positive allocs_per_action %f", i, p.AllocsPerAction)
		}
		// The auto-sized worker pool alone is concurrency*roles resident
		// goroutines; the high-water mark must at least see them.
		if p.GoroutineHighWater < c*2 {
			t.Errorf("point %d: goroutine high-water %d below the %d-worker pool", i, p.GoroutineHighWater, c*2)
		}
		if p.PeakHeapBytes == 0 {
			t.Errorf("point %d: zero peak heap", i)
		}
	}
}

// TestLoadWorkerPoolDisabled pins the Workers<0 escape hatch: the
// goroutine-per-role lifecycle must still produce a clean report.
func TestLoadWorkerPoolDisabled(t *testing.T) {
	rep, err := load.Run(load.Config{Actions: 60, Concurrency: 8, Roles: 2, Seed: 3, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unexpected) > 0 {
		t.Fatalf("unexpected outcomes: %v", rep.Unexpected)
	}
	if rep.Config.Workers != -1 {
		t.Errorf("config workers = %d, want -1 preserved", rep.Config.Workers)
	}
}

// TestWorkloadExports drives the exported per-kind workloads — the surface
// the cluster testnet starts through its own Systems — and checks each
// kind's classified outcome matches Expect, with storm decisions streamed
// to the observer and agreeing on one resolved cover.
func TestWorkloadExports(t *testing.T) {
	const roles = 3
	var (
		mu        sync.Mutex
		decisions []load.Decision
	)
	obs := func(d load.Decision) {
		mu.Lock()
		defer mu.Unlock()
		decisions = append(decisions, d)
	}
	for _, kind := range []string{load.KindCommit, load.KindSignal, load.KindAbort, load.KindStorm} {
		spec, progs, err := load.Workload(kind, roles, obs)
		if err != nil {
			t.Fatalf("Workload(%s): %v", kind, err)
		}
		sys, err := caaction.New()
		if err != nil {
			t.Fatal(err)
		}
		h, err := sys.StartAction(context.Background(), spec, progs)
		if err != nil {
			t.Fatalf("start %s: %v", kind, err)
		}
		sys.Wait()
		outcomes := make([]string, 0, roles)
		h.Each(func(role string, err error) {
			outcomes = append(outcomes, load.ClassifyRole(err))
		})
		if got := load.MergeOutcomes(outcomes...); got != load.Expect(kind) {
			t.Errorf("%s outcome = %q, want %q (roles: %v)", kind, got, load.Expect(kind), outcomes)
		}
		_ = sys.Close()
	}
	if len(decisions) != roles {
		t.Fatalf("observer saw %d storm decisions, want %d", len(decisions), roles)
	}
	for _, d := range decisions[1:] {
		if d.Resolved != decisions[0].Resolved {
			t.Errorf("storm decisions disagree: %v vs %v", d, decisions[0])
		}
	}
	for _, d := range decisions {
		if len(d.Raised) == 0 || d.Resolved == "" {
			t.Errorf("incomplete decision: %+v", d)
		}
	}

	if _, _, err := load.Workload("nope", roles, nil); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, _, err := load.Workload(load.KindCommit, 1, nil); err == nil {
		t.Error("single-role workload accepted")
	}
	if load.MergeOutcomes("ok", "signalled:x", "undone", "failed") != "failed" {
		t.Error("severity order broken")
	}
	if load.ThreadName(0) != "L1" || load.RoleName(2) != "r3" {
		t.Error("naming exports out of sync with the harness")
	}
}
