package load_test

import (
	"context"
	"testing"
	"time"

	"caaction"
	"caaction/load"
)

// TestLoadSimMixedOutcomes runs the full mix over the sim transport and
// checks every action produced exactly its kind's expected outcome.
func TestLoadSimMixedOutcomes(t *testing.T) {
	cfg := load.Config{Actions: 400, Concurrency: 64, Roles: 3, Seed: 7}
	if testing.Short() {
		cfg.Actions = 120
	}
	rep, err := load.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unexpected) > 0 {
		t.Fatalf("unexpected outcomes (%d):\n%v", len(rep.Unexpected), rep.Unexpected[:min(5, len(rep.Unexpected))])
	}
	total := 0
	for _, n := range rep.Outcomes {
		total += n
	}
	if total != cfg.Actions {
		t.Errorf("outcome total %d, want %d", total, cfg.Actions)
	}
	for _, kind := range []string{load.KindCommit, load.KindSignal, load.KindAbort, load.KindStorm} {
		if rep.Kinds[kind] == nil || rep.Kinds[kind].Actions == 0 {
			t.Errorf("mix produced no %s actions", kind)
		}
	}
	if rep.Throughput <= 0 {
		t.Errorf("throughput = %v", rep.Throughput)
	}
	if rep.Messages["Enter"] == 0 || rep.Messages["ToBeSignalled"] == 0 {
		t.Errorf("protocol message counts missing: %v", rep.Messages)
	}
}

// TestLoadResolverComparison runs the same seeded workload under all three
// resolution protocols; outcomes must agree (the protocols are equivalent in
// what they decide, only their message complexity differs).
func TestLoadResolverComparison(t *testing.T) {
	actions := 150
	if testing.Short() {
		actions = 60
	}
	var first map[string]int
	for _, resolver := range []string{"coordinated", "cr86", "r96"} {
		rep, err := load.Run(load.Config{Actions: actions, Concurrency: 32, Seed: 11, Resolver: resolver})
		if err != nil {
			t.Fatalf("%s: %v", resolver, err)
		}
		if len(rep.Unexpected) > 0 {
			t.Fatalf("%s: unexpected outcomes: %v", resolver, rep.Unexpected[:min(5, len(rep.Unexpected))])
		}
		if first == nil {
			first = rep.Outcomes
		} else {
			for outcome, n := range first {
				if rep.Outcomes[outcome] != n {
					t.Errorf("%s: outcome %q count %d, coordinated had %d",
						resolver, outcome, rep.Outcomes[outcome], n)
				}
			}
		}
	}
}

// TestLoadTCPSharedEndpointPair stresses the demultiplexer over the real TCP
// transport: ≥100 concurrent actions all muxed over one TCP endpoint pair.
// Run under -race this is the transport's data-race coverage.
func TestLoadTCPSharedEndpointPair(t *testing.T) {
	cfg := load.Config{
		Actions:     120,
		Concurrency: 40,
		Roles:       2, // exactly one endpoint pair
		Transport:   "tcp",
		Seed:        3,
	}
	if testing.Short() {
		cfg.Actions = 50
	}
	rep, err := load.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unexpected) > 0 {
		t.Fatalf("unexpected outcomes over TCP (%d):\n%v",
			len(rep.Unexpected), rep.Unexpected[:min(5, len(rep.Unexpected))])
	}
	total := 0
	for _, n := range rep.Outcomes {
		total += n
	}
	if total != cfg.Actions {
		t.Errorf("outcome total %d, want %d", total, cfg.Actions)
	}
}

// TestThousandConcurrentActions is the acceptance bar for the concurrent
// multi-action runtime: one System holds ≥1000 action instances in flight
// simultaneously — every instance provably entered before any may complete,
// enforced by a gate all bodies block on — and drives them all to a correct
// completion over the shared sim transport.
func TestThousandConcurrentActions(t *testing.T) {
	const n = 1000
	sys, err := caaction.New(caaction.WithRealTime(), caaction.WithSimTransport(0))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()

	spec, err := caaction.NewSpec("flood").
		Role("left", "T1").
		Role("right", "T2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	entered := make(chan struct{}, 2*n)
	body := func(ctx *caaction.Context) error {
		entered <- struct{}{}
		<-gate // held until all n instances are in flight
		return ctx.Checkpoint()
	}
	progs := map[string]caaction.RoleProgram{"left": {Body: body}, "right": {Body: body}}

	handles := make([]*caaction.ActionHandle, n)
	for i := range handles {
		h, err := sys.StartAction(context.Background(), spec, progs)
		if err != nil {
			t.Fatalf("StartAction %d: %v", i, err)
		}
		handles[i] = h
	}
	deadline := time.After(2 * time.Minute)
	for i := 0; i < 2*n; i++ {
		select {
		case <-entered:
		case <-deadline:
			t.Fatalf("only %d of %d roles entered in time", i, 2*n)
		}
	}
	close(gate) // all 1000 instances are concurrent right now
	sys.Wait()
	for i, h := range handles {
		if !h.Done() {
			t.Fatalf("instance %d not done", i)
		}
		if err := h.Err(); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
	}
	if got := sys.Metrics().Get("action.completions"); got != 2*n {
		t.Errorf("action.completions = %d, want %d", got, 2*n)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
