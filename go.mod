module caaction

go 1.24
