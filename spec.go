package caaction

import (
	"fmt"
	"time"

	"caaction/internal/core"
	"caaction/internal/except"
)

// Spec declares a CA action: its roles with their thread bindings, the
// exception graph shared by all roles, the interface exceptions it may
// signal, and its modelled protocol costs. Build one fluently with NewSpec.
type Spec = core.Spec

// Role binds one role name of a CA action to the thread performing it.
type Role = core.Role

// Timing carries the paper's modelled protocol costs for one action.
type Timing = core.Timing

// RoleProgram is the code one thread contributes to an action: the role's
// body, its handlers (one per exception it can handle — different roles may
// handle the same exception differently), and its optional abortion handler.
type RoleProgram = core.RoleProgram

// Body is a role's normal computation; Handler is a role's handler for one
// resolved exception; AbortHandler runs when an enclosing action's exception
// aborts this nested action. All receive a Context and must propagate any
// error its methods return.
type (
	Body         = core.Body
	Handler      = core.Handler
	AbortHandler = core.AbortHandler
)

// Context is a role's interface to the runtime while executing inside one
// action frame: cooperation messaging (Send/Recv), modelled computation
// (Compute/Checkpoint), exception raising and signalling (Raise/Signal),
// nesting (Enter) and external-object access (Tx). Bodies and handlers MUST
// propagate any non-nil error returned by Context methods — those errors
// are the cooperative equivalent of the paper's asynchronous transfer of
// control.
type Context = core.Context

// SpecBuilder assembles a Spec fluently. Each method returns the builder;
// the first error sticks and is reported by Build. A builder is not safe
// for concurrent use and builds one Spec.
//
//	spec, err := caaction.NewSpec("transfer").
//		Role("producer", "T1").
//		Role("consumer", "T2").
//		Exception("bad_checksum").
//		Build()
type SpecBuilder struct {
	name     string
	roles    []Role
	gb       *GraphBuilder
	declared bool   // any Exception/Cover call was made
	graph    *Graph // explicit graph from UseGraph
	signals  []Exception
	timing   Timing
	err      error
}

// NewSpec starts a builder for an action with the given name. The exception
// graph is grown from Exception and Cover declarations under an automatic
// universal root; an action that declares no exceptions still gets the
// universal exception (every fault then resolves to it).
func NewSpec(name string) *SpecBuilder {
	return &SpecBuilder{name: name, gb: except.NewBuilder(name)}
}

func (b *SpecBuilder) fail(format string, args ...any) *SpecBuilder {
	if b.err == nil {
		b.err = fmt.Errorf("caaction: spec %q: "+format, append([]any{b.name}, args...)...)
	}
	return b
}

// Role adds a role performed by the given thread. Declaration order is the
// action's role order.
func (b *SpecBuilder) Role(role, thread string) *SpecBuilder {
	b.roles = append(b.roles, Role{Name: role, Thread: thread})
	return b
}

// Exception declares exceptions with no cover relationships (primitives,
// unless later used as parents in Cover).
func (b *SpecBuilder) Exception(ids ...Exception) *SpecBuilder {
	if b.graph != nil {
		return b.fail("Exception after UseGraph")
	}
	b.declared = true
	for _, id := range ids {
		b.gb.Node(id)
	}
	return b
}

// Cover declares that parent covers each child in the action's exception
// graph: a handler for parent can handle any of the children.
func (b *SpecBuilder) Cover(parent Exception, children ...Exception) *SpecBuilder {
	if b.graph != nil {
		return b.fail("Cover after UseGraph")
	}
	b.declared = true
	b.gb.Cover(parent, children...)
	return b
}

// UseGraph adopts a pre-built exception graph (from NewGraph, ParseGraph or
// GenerateFullGraph) instead of growing one from Exception/Cover calls.
func (b *SpecBuilder) UseGraph(g *Graph) *SpecBuilder {
	if g == nil {
		return b.fail("UseGraph: nil graph")
	}
	if b.declared {
		return b.fail("UseGraph after Exception/Cover")
	}
	b.graph = g
	return b
}

// Signals declares the interface exceptions ε the action may signal to its
// enclosing action or caller. µ and ƒ are implicitly allowed.
func (b *SpecBuilder) Signals(ids ...Exception) *SpecBuilder {
	b.signals = append(b.signals, ids...)
	return b
}

// ResolutionCost sets Treso, the modelled cost of one run of the resolution
// procedure.
func (b *SpecBuilder) ResolutionCost(d time.Duration) *SpecBuilder {
	b.timing.Resolution = d
	return b
}

// AbortionCost sets Tabo, the modelled cost of one abortion-handler run.
func (b *SpecBuilder) AbortionCost(d time.Duration) *SpecBuilder {
	b.timing.Abortion = d
	return b
}

// SignalTimeout bounds this action's wait for exit votes, overriding the
// system-wide WithSignalTimeout default; missing votes are then treated as
// ƒ. Inner actions should use shorter timeouts than outer ones.
func (b *SpecBuilder) SignalTimeout(d time.Duration) *SpecBuilder {
	b.timing.SignalTimeout = d
	return b
}

// Build validates the accumulated declarations and returns the Spec. All
// structural errors — duplicate roles, a thread bound twice, reserved
// exception identifiers, cyclic cover edges, negative timings — surface
// here, wrapped so that errors.Is(err, ErrSpecInvalid) holds for spec-level
// problems.
func (b *SpecBuilder) Build() (*Spec, error) {
	if b.err != nil {
		return nil, b.err
	}
	graph := b.graph
	if graph == nil {
		if !b.declared {
			b.gb.Node(except.Universal)
		}
		g, err := b.gb.WithUniversal().Build()
		if err != nil {
			return nil, fmt.Errorf("caaction: spec %q: %w", b.name, err)
		}
		graph = g
	}
	spec := &Spec{
		Name:    b.name,
		Roles:   b.roles,
		Graph:   graph,
		Signals: b.signals,
		Timing:  b.timing,
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// MustBuild is Build panicking on error, for specs known statically valid.
func (b *SpecBuilder) MustBuild() *Spec {
	spec, err := b.Build()
	if err != nil {
		panic(err)
	}
	return spec
}
