package caaction

import (
	"caaction/internal/core"
	"caaction/internal/wal"
)

// Crash recovery: the public face of internal/wal, re-exported so cluster
// deployments (caaction/cluster, cmd/canode) can open durable write-ahead
// logs and replay them without reaching into internal packages.
//
// A Recorder receives write-ahead protocol state — entry-barrier joins,
// resolution-round raises, exit votes and final outcomes — before the
// corresponding message leaves the node (attach one with WithRecorder).
// The WAL is the durable Recorder: OpenWAL opens an fsync-batched
// length-prefixed binary log with periodic snapshot compaction, and its
// State surfaces the replayed in-flight actions and tagged instances a
// restarted node uses to decide, per §3.4, what to re-join and what to
// abort deterministically.

// Recorder is the write-ahead sink for protocol state; implementations
// must be safe for concurrent use. A *WAL is a Recorder.
type Recorder = core.Recorder

// WAL is the durable on-disk write-ahead log: every append is fsynced
// before it returns (concurrent appenders share flushes, group-commit
// style), and after SnapshotEvery appends the log is compacted to one
// snapshot record, bounding replay length and file size.
type WAL = wal.File

// WALState is a WAL's materialised state after replay: in-flight actions
// keyed by (thread, action) and tagged cluster instances keyed by tag.
type WALState = wal.State

// WALActionKey identifies one participant's view of one action instance
// in a WALState.
type WALActionKey = wal.ActionKey

// WALActionState is the replayed protocol state of one (thread, action)
// pair; WALInstanceState is the replayed state of one tagged cluster
// instance.
type (
	WALActionState   = wal.ActionState
	WALInstanceState = wal.InstanceState
)

// OpenWAL opens (or creates) the write-ahead log at path and replays it;
// a torn final record from a crash mid-append is discarded. snapshotEvery
// sets the compaction cadence in records (<= 0 means the default, 256).
func OpenWAL(path string, snapshotEvery int) (*WAL, error) {
	return wal.Open(path, snapshotEvery)
}
