// Command cachaos runs long deterministic chaos sweeps over the CA-action
// runtime: seeded random scenarios (concurrent and staggered raises, nested
// abort cascades, message drop/duplication/reordering/delay, partitions,
// thread crash-stops) executed under the paper's three resolution protocols
// and checked against its invariants. Any failure prints the scenario seed;
// re-running with -replay <seed> reproduces the identical event trace.
//
// Usage:
//
//	cachaos -n 100000 -seed 1            # sweep 100k scenarios
//	cachaos -replay 4217 -v              # reproduce one scenario's trace
package main

import (
	"flag"
	"fmt"
	"os"

	"caaction/chaos"
)

func main() {
	var (
		n           = flag.Int("n", 10000, "number of scenarios to sweep")
		seed        = flag.Int64("seed", 1, "base seed; scenario i uses seed+i")
		replayEvery = flag.Int("replay-every", 50, "re-run every k-th scenario and compare traces (0 disables)")
		replaySeed  = flag.Int64("replay", -1, "reproduce a single scenario from its seed and exit")
		resolver    = flag.String("resolver", "", "with -replay: run under this resolver instead of the scenario's own")
		verbose     = flag.Bool("v", false, "with -replay: print the full event trace")
	)
	flag.Parse()

	if *replaySeed >= 0 {
		os.Exit(replay(*replaySeed, *resolver, *verbose))
	}

	fmt.Printf("sweeping %d scenarios from seed %d...\n", *n, *seed)
	sum := chaos.Sweep(*seed, *n, *replayEvery)
	fmt.Print(sum)
	if sum.Failed() {
		os.Exit(1)
	}
}

func replay(seed int64, resolver string, verbose bool) int {
	s := chaos.Generate(seed)
	if resolver == "" {
		resolver = s.Resolver
	}
	res, err := chaos.RunWith(s, resolver)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachaos:", err)
		return 2
	}
	fmt.Printf("seed %d: class=%s threads=%d primitives=%d depth=%d parallel=%d resolver=%s latency=%v\n",
		seed, s.Class, s.Threads, s.Primitives, s.Depth, s.Parallel, resolver, s.Latency)
	for _, p := range res.Participants() {
		fmt.Printf("  %-8s outcome=%-12s decisions=%v\n", p, res.Outcomes[p], res.Decisions[p])
	}
	fmt.Printf("  stalled=%v rounds=%d aborted=%d msgs=%v\n", res.Stalled, res.Rounds, res.Aborted, res.Msg)
	if verbose {
		fmt.Println("--- trace ---")
		fmt.Println(res.Trace)
	}
	if v := res.Check(); len(v) > 0 {
		for _, problem := range v {
			fmt.Println("VIOLATION:", problem)
		}
		return 1
	}
	fmt.Println("all invariants held")
	return 0
}
