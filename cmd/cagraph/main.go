// Command cagraph works with exception graphs in the paper's declaration
// syntax (§3.1–3.2).
//
// Usage:
//
//	cagraph check  [file]                 validate a graph (stdin by default)
//	cagraph resolve [file] e1 e2 ...      resolve concurrently raised exceptions
//	cagraph gen n [maxlevel]              generate the full n-level graph
//
// Graph syntax: one "er: e1, e2, ..." line per cover relationship, '#'
// comments, optional "graph NAME" header, optional "!auto-universal"
// directive.
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"caaction"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cagraph: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "check":
		g := load(argOr(2, "-"))
		fmt.Printf("graph %q: %d nodes, root %q, %d primitives — valid\n",
			g.Name(), g.Len(), g.Root(), len(g.Primitives()))
	case "resolve":
		if len(os.Args) < 4 {
			usage()
		}
		g := load(os.Args[2])
		var raised []caaction.Exception
		for _, a := range os.Args[3:] {
			raised = append(raised, caaction.Exception(a))
		}
		res, err := g.Resolve(raised...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resolving exception: %s (covers %d, level %d)\n",
			res, g.CoverSize(res), g.Level(res))
	case "gen":
		if len(os.Args) < 3 {
			usage()
		}
		n, err := strconv.Atoi(os.Args[2])
		if err != nil || n < 1 {
			log.Fatalf("bad primitive count %q", os.Args[2])
		}
		var opts []caaction.GraphOption
		if len(os.Args) > 3 {
			ml, err := strconv.Atoi(os.Args[3])
			if err != nil {
				log.Fatalf("bad max level %q", os.Args[3])
			}
			opts = append(opts, caaction.MaxLevel(ml))
		}
		prims := make([]caaction.Exception, n)
		for i := range prims {
			prims[i] = caaction.Exception(fmt.Sprintf("e%d", i+1))
		}
		g, err := caaction.GenerateFullGraph("generated", prims, opts...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(g.String())
	default:
		usage()
	}
}

func argOr(i int, def string) string {
	if len(os.Args) > i {
		return os.Args[i]
	}
	return def
}

func load(path string) *caaction.Graph {
	in := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		defer func() { _ = f.Close() }()
		in = f
	}
	g, err := caaction.ParseGraph(in)
	if err != nil {
		log.Fatal(err)
	}
	return g
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cagraph check  [file|-]
  cagraph resolve <file|-> <exc> [exc...]
  cagraph gen <n> [maxlevel]`)
	os.Exit(2)
}
