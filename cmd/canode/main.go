// Command canode is the CA-action cluster daemon. In node mode (-node) it
// hosts the locally-placed thread roles of a cluster behind a shared TCP
// data listener and a line-delimited control port, discovering peers from
// a seed list. In testnet mode (-testnet) it scripts a whole local
// cluster: N canode child processes, shared actions across them, one
// kill+restart mid-round, and the chaos invariants asserted over the
// survivors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"caaction/cluster"
	"caaction/cluster/testnet"
)

func main() {
	var (
		nodeMode    = flag.Bool("node", false, "run one cluster node")
		testnetMode = flag.Bool("testnet", false, "run a scripted local testnet")

		// node mode
		name          = flag.String("name", "", "node name (unique in the cluster)")
		controlAddr   = flag.String("control", "127.0.0.1:0", "control listener host:port")
		dataAddr      = flag.String("data", "127.0.0.1:0", "data listener host:port")
		seeds         = flag.String("seeds", "", "comma-separated control addresses of known peers")
		placement     = flag.String("placement", "", "thread placement: L1=n1,L2=n2,...")
		resolver      = flag.String("resolver", "coordinated", "resolution protocol (coordinated, cr86, r96)")
		exchangeEvery = flag.Duration("exchange-every", 250*time.Millisecond, "peer hello-exchange period")
		signalTimeout = flag.Duration("signal-timeout", 5*time.Second, "exit-vote timeout (§3.4 lost messages)")
		actionTimeout = flag.Duration("action-timeout", 30*time.Second, "per-instance end-to-end timeout")
		metricsAddr   = flag.String("metrics", "", "HTTP /metrics listener host:port ('' disables; counters stay scrapeable over the control port)")
		maxInFlight   = flag.Int("max-inflight", 0, "admission budget for locally-started actions (0 = unlimited)")
		walDir        = flag.String("wal-dir", "", "directory for the node's protocol write-ahead log ('' runs memoryless; a restart replays <wal-dir>/<name>.wal)")
		peerWindow    = flag.Int("peer-window", 0, "per-peer credit window in messages advertised to dialing peers (0 = transport default)")
		noPeerBatch   = flag.Bool("no-peer-batch", false, "disable the cross-node fast path (batched frames, credit flow control); interoperates with batching peers")

		// testnet mode
		nodes       = flag.Int("nodes", 3, "testnet cluster size")
		roles       = flag.Int("roles", 0, "roles per action (default: one per node)")
		rounds      = flag.Int("rounds", 4, "mixed workload rounds")
		stormRounds = flag.Int("storm-rounds", 3, "quiet storm rounds for the §3.3.3 message bounds")
		logDir      = flag.String("logdir", "", "per-node log directory (default: temp dir)")
		walRoot     = flag.String("waldir", "", "testnet: WAL root directory — each node logs under <waldir>/<name> and the restarted node must replay ('' runs memoryless)")
		binary      = flag.String("bin", "", "canode binary to spawn (default: this executable)")
		noKill      = flag.Bool("no-kill", false, "skip the mid-round kill/restart")
	)
	flag.Parse()

	switch {
	case *nodeMode == *testnetMode:
		fmt.Fprintln(os.Stderr, "canode: pass exactly one of -node or -testnet")
		os.Exit(2)
	case *nodeMode:
		os.Exit(runNode(*name, *controlAddr, *dataAddr, *seeds, *placement, *resolver, *metricsAddr, *walDir,
			*exchangeEvery, *signalTimeout, *actionTimeout, *maxInFlight, *peerWindow, *noPeerBatch))
	default:
		os.Exit(runTestnet(*binary, *nodes, *roles, *rounds, *stormRounds, *resolver, *logDir, *walRoot, !*noKill))
	}
}

// parsePlacement reads "L1=n1,L2=n2,..." into a thread→node map.
func parsePlacement(s string) (map[string]string, error) {
	out := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		thread, node, ok := strings.Cut(part, "=")
		if !ok || thread == "" || node == "" {
			return nil, fmt.Errorf("canode: placement entry %q: want thread=node", part)
		}
		out[thread] = node
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("canode: -placement is required (e.g. L1=n1,L2=n2)")
	}
	return out, nil
}

func runNode(name, controlAddr, dataAddr, seeds, placement, resolver, metricsAddr, walDir string,
	exchangeEvery, signalTimeout, actionTimeout time.Duration, maxInFlight, peerWindow int, noPeerBatch bool) int {
	place, err := parsePlacement(placement)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var seedList []string
	for _, s := range strings.Split(seeds, ",") {
		if s = strings.TrimSpace(s); s != "" {
			seedList = append(seedList, s)
		}
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, time.Now().Format("15:04:05.000 ")+format+"\n", args...)
	}

	// Register for shutdown signals before anything binds: a supervisor
	// may SIGTERM a node that is still booting, and losing that signal
	// would leave listeners (and a half-replayed WAL) behind.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	n, err := cluster.New(cluster.Config{
		Name:          name,
		ControlAddr:   controlAddr,
		DataAddr:      dataAddr,
		Seeds:         seedList,
		Placement:     place,
		Resolver:      resolver,
		ExchangeEvery: exchangeEvery,
		SignalTimeout: signalTimeout,
		ActionTimeout: actionTimeout,
		MetricsAddr:   metricsAddr,
		MaxInFlight:   maxInFlight,
		WALDir:        walDir,
		PeerWindow:    peerWindow,
		NoPeerBatch:   noPeerBatch,
		Logf:          logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	// Test hook: widen the pre-READY window so the early-signal path can
	// be exercised deterministically from the harness test.
	if d := os.Getenv("CANODE_TEST_BOOT_DELAY"); d != "" {
		if dur, perr := time.ParseDuration(d); perr == nil {
			time.Sleep(dur)
		}
	}

	// A signal delivered before READY means the supervisor changed its
	// mind mid-boot: tear down what was built and exit cleanly without
	// ever announcing readiness — the harness must never see a READY line
	// from a node that is already dying.
	select {
	case sig := <-sigc:
		logf("node %s: %v before ready: stopping", name, sig)
		_ = n.Stop()
		return 0
	default:
	}

	// The harness parses this line to learn the bound ephemeral ports.
	// metrics= appears only when -metrics bound an HTTP listener.
	ready := fmt.Sprintf("READY name=%s control=%s data=%s", name, n.ControlAddr(), n.DataAddr())
	if ma := n.MetricsAddr(); ma != "" {
		ready += " metrics=" + ma
	}
	fmt.Println(ready)

	// SIGINT/SIGTERM: graceful exit — stop admitting, finish in-flight
	// resolutions (bounded), then tear down.
	go func() {
		sig := <-sigc
		logf("node %s: %v: draining then stopping", name, sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = n.Drain(ctx)
		_ = n.Stop()
	}()

	if err := n.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

func runTestnet(binary string, nodes, roles, rounds, stormRounds int, resolver, logDir, walRoot string, killRestart bool) int {
	if binary == "" {
		self, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "canode: locating own binary: %v\n", err)
			return 1
		}
		binary = self
	}
	sum, err := testnet.Run(testnet.Config{
		Binary:      binary,
		Nodes:       nodes,
		Roles:       roles,
		MixedRounds: rounds,
		StormRounds: stormRounds,
		Resolver:    resolver,
		LogDir:      logDir,
		WALDir:      walRoot,
		KillRestart: killRestart,
	})
	if sum != nil {
		out, _ := json.MarshalIndent(sum, "", "  ")
		fmt.Println(string(out))
	}
	switch {
	case err != nil:
		fmt.Fprintf(os.Stderr, "canode: testnet: %v\n", err)
		return 1
	case len(sum.Violations) > 0:
		fmt.Fprintf(os.Stderr, "canode: testnet: %d invariant violation(s)\n", len(sum.Violations))
		return 1
	default:
		fmt.Fprintln(os.Stderr, "canode: testnet passed")
		return 0
	}
}
