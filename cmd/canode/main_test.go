package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildSelf compiles this command into a temp dir; the tests below need a
// real process to signal, not an in-process call.
func buildSelf(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "canode")
	out, err := exec.Command("go", "build", "-o", bin, "caaction/cmd/canode").CombinedOutput()
	if err != nil {
		t.Fatalf("building canode: %v\n%s", err, out)
	}
	return bin
}

// TestEarlySIGTERMExitsCleanly pins the pre-READY signal window: a
// supervisor that terminates a node while it is still booting must get a
// clean exit (code 0), and the node must never print READY — a harness
// that saw READY would start driving a process that is already dying. The
// CANODE_TEST_BOOT_DELAY hook holds the node between listener bind and the
// READY line so the window is wide enough to hit deterministically.
func TestEarlySIGTERMExitsCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process; skipped in -short mode")
	}
	bin := buildSelf(t)
	cmd := exec.Command(bin,
		"-node", "-name", "n1", "-placement", "L1=n1",
		"-wal-dir", t.TempDir())
	cmd.Env = append(os.Environ(), "CANODE_TEST_BOOT_DELAY=3s")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Give the process time to register its signal handler (done before
	// any listener binds), then terminate it mid-boot-delay.
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("early SIGTERM exit: %v (stderr:\n%s)", err, stderr.String())
	}
	if out := stdout.String(); strings.Contains(out, "READY") {
		t.Fatalf("node printed READY despite dying pre-ready:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "before ready") {
		t.Fatalf("missing pre-ready shutdown log; stderr:\n%s", stderr.String())
	}
}

// TestWALDirCreationFailure pins the boot error path: an unusable -wal-dir
// (here, a path under a regular file) must fail fast with exit code 1 and
// a diagnostic, not silently run memoryless.
func TestWALDirCreationFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process; skipped in -short mode")
	}
	bin := buildSelf(t)
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin,
		"-node", "-name", "n1", "-placement", "L1=n1",
		"-wal-dir", filepath.Join(blocker, "wal"))
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("exit = %v, want exit code 1; output:\n%s", err, out)
	}
	if !strings.Contains(string(out), "wal dir") {
		t.Fatalf("missing wal-dir diagnostic; output:\n%s", out)
	}
}
