// Command caload drives the CA-action load harness: thousands of concurrent
// action instances — clean commits, exceptional exits, abort cascades,
// resolution storms — multiplexed over a shared transport on one System,
// once per requested resolution protocol. It prints a summary and records
// the full report (throughput, p50/p99 latency, per-kind message counts) as
// JSON, the BENCH_load.json baseline committed alongside the chaos baseline.
//
// Usage:
//
//	caload                                   # default workload, all resolvers
//	caload -actions 5000 -concurrency 256    # heavier run
//	caload -transport tcp -actions 500       # over real TCP sockets
//	caload -out BENCH_load.json              # where the JSON lands
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"caaction/load"
)

type fileReport struct {
	Description string                  `json:"description"`
	Date        string                  `json:"date"`
	Resolvers   map[string]*load.Report `json:"resolvers"`
}

func main() {
	var (
		actions     = flag.Int("actions", 2000, "action instances per resolver")
		concurrency = flag.Int("concurrency", 128, "instances in flight at once")
		roles       = flag.Int("roles", 3, "roles (threads) per action")
		transport   = flag.String("transport", "sim", "transport registry name (sim, tcp)")
		latency     = flag.Duration("latency", 0, "sim transport one-way latency")
		seed        = flag.Int64("seed", 1, "workload composition seed")
		resolvers   = flag.String("resolvers", "coordinated,cr86,r96", "comma-separated resolution protocols")
		out         = flag.String("out", "BENCH_load.json", "JSON report path ('' disables)")
	)
	flag.Parse()

	file := fileReport{
		Description: "Load-harness baseline: concurrent CA actions over a shared transport. Regenerate with `go run ./cmd/caload`.",
		Date:        time.Now().UTC().Format("2006-01-02"),
		Resolvers:   make(map[string]*load.Report),
	}
	failed := false
	for _, resolver := range strings.Split(*resolvers, ",") {
		resolver = strings.TrimSpace(resolver)
		if resolver == "" {
			continue
		}
		cfg := load.Config{
			Actions:     *actions,
			Concurrency: *concurrency,
			Roles:       *roles,
			Resolver:    resolver,
			Transport:   *transport,
			Latency:     *latency,
			Seed:        *seed,
		}
		rep, err := load.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "caload: %s: %v\n", resolver, err)
			os.Exit(2)
		}
		file.Resolvers[resolver] = rep
		fmt.Printf("%-12s %6d actions  %9.0f actions/s  p50 %.2fms  p99 %.2fms  %7.0f allocs/action  outcomes %v\n",
			resolver, cfg.Actions, rep.Throughput, rep.Latency.P50, rep.Latency.P99, rep.AllocsPerAction, rep.Outcomes)
		if len(rep.Unexpected) > 0 {
			// Keep going and still write the report: the JSON (with its
			// Unexpected list) is exactly the diagnostic a failed run needs.
			fmt.Fprintf(os.Stderr, "caload: %s: %d unexpected outcomes, e.g. %s\n",
				resolver, len(rep.Unexpected), rep.Unexpected[0])
			failed = true
		}
	}
	if *out != "" {
		blob, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "caload:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "caload:", err)
			os.Exit(2)
		}
		fmt.Println("wrote", *out)
	}
	if failed {
		os.Exit(1)
	}
}
