// Command caload drives the CA-action load harness: thousands of concurrent
// action instances — clean commits, exceptional exits, abort cascades,
// resolution storms — multiplexed over a shared transport on one System,
// once per requested resolution protocol. It prints a summary and records
// the full report (throughput, p50/p99 latency, per-kind message counts,
// goroutine/heap high-water marks and the concurrency-scaling sweep) as
// JSON, the BENCH_load.json baseline committed alongside the chaos baseline.
//
// Usage:
//
//	caload                                   # default workload, all resolvers
//	caload -actions 5000 -concurrency 256    # heavier run
//	caload -transport tcp -actions 500       # over real TCP sockets
//	caload -mix commit:8,signal:1,abort:1    # custom workload composition
//	caload -sweep 64,256,1024                # concurrency-scaling sweep
//	caload -arrival 300,600,1200             # open-loop offered-load curve
//	caload -runs 3                           # record the median-of-3 run
//	caload -soak 30s                         # duration-bounded leak soak
//	caload -workers -1                       # disable the role-worker pool
//	caload -out BENCH_load.json              # where the JSON lands
//
// -runs N repeats the fixed-action run and every sweep point N times and
// records the run with the median throughput — wall-clock metrics flake
// run-to-run, and the committed baseline should be a median, not a lucky
// draw. -soak <duration> appends an endurance run per resolver: drivers
// keep starting actions for the window while goroutine/heap samples accrue,
// and caload exits non-zero when the steady-state growth trips the leak
// gates (-soak-max-goroutines, -soak-max-heap-mb).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"caaction/cluster/testnet"
	"caaction/load"
)

// resolverReport is one resolver's baseline: the standard run plus the
// optional concurrency-scaling sweep and open-loop overload curve.
type resolverReport struct {
	*load.Report
	Sweep []load.SweepPoint `json:"sweep,omitempty"`
	// OpenLoop is the offered-vs-goodput curve from -arrival: past the
	// sustainable rate, goodput must hold (bounded by the admission
	// budget) while the excess surfaces as typed rejections.
	OpenLoop []load.OpenLoopPoint `json:"open_loop,omitempty"`
	// Soak is the -soak endurance run with its leak-gate growth baselines.
	Soak *load.SoakReport `json:"soak,omitempty"`
}

type fileReport struct {
	Description string                     `json:"description"`
	Date        string                     `json:"date"`
	Resolvers   map[string]*resolverReport `json:"resolvers"`
	// Cluster is the multi-process benchmark from -cluster: round
	// throughput over N local canode processes in both wire modes
	// (batched fast path vs legacy), with their same-run speedup.
	Cluster *testnet.BenchReport `json:"cluster,omitempty"`
}

func parseRates(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad arrival rate %q", part)
		}
		out = append(out, r)
	}
	return out, nil
}

func parseSweep(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad sweep concurrency %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// runMedian executes the fixed-action run n times and returns the run with
// the median throughput, so every recorded wall-clock metric comes from one
// self-consistent run rather than a per-metric patchwork. A run with
// unexpected outcomes is returned immediately — correctness failures must
// not be averaged away.
func runMedian(cfg load.Config, n int) (*load.Report, error) {
	if n <= 1 {
		return load.Run(cfg)
	}
	reps := make([]*load.Report, 0, n)
	for i := 0; i < n; i++ {
		rep, err := load.Run(cfg)
		if err != nil {
			return nil, err
		}
		if len(rep.Unexpected) > 0 {
			return rep, nil
		}
		reps = append(reps, rep)
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i].Throughput < reps[j].Throughput })
	return reps[(len(reps)-1)/2], nil
}

// sweepMedian executes the full sweep n times and keeps, per concurrency
// level, the point with the median throughput.
func sweepMedian(cfg load.Config, levels []int, n int) ([]load.SweepPoint, error) {
	if n <= 1 {
		return load.RunSweep(cfg, levels)
	}
	all := make([][]load.SweepPoint, 0, n)
	for i := 0; i < n; i++ {
		points, err := load.RunSweep(cfg, levels)
		if err != nil {
			return nil, err
		}
		all = append(all, points)
	}
	out := make([]load.SweepPoint, len(levels))
	for li := range levels {
		candidates := make([]load.SweepPoint, n)
		for ri := range all {
			candidates[ri] = all[ri][li]
		}
		sort.Slice(candidates, func(i, j int) bool { return candidates[i].Throughput < candidates[j].Throughput })
		out[li] = candidates[(n-1)/2]
	}
	return out, nil
}

// writeProfile snapshots one named pprof profile to path at exit.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "caload:", err)
		return
	}
	defer func() { _ = f.Close() }()
	if name == "allocs" {
		runtime.GC() // materialise the final heap numbers
	}
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "caload: %s profile: %v\n", name, err)
	}
}

// main defers to run so the profile-flushing defers execute before the
// process exits (os.Exit skips defers).
func main() { os.Exit(run()) }

func run() int {
	var (
		actions     = flag.Int("actions", 2000, "action instances per resolver")
		concurrency = flag.Int("concurrency", 128, "instances in flight at once")
		roles       = flag.Int("roles", 3, "roles (threads) per action")
		transport   = flag.String("transport", "sim", "transport registry name (sim, tcp)")
		latency     = flag.Duration("latency", 0, "sim transport one-way latency")
		seed        = flag.Int64("seed", 1, "workload composition seed")
		mixFlag     = flag.String("mix", "", "workload composition, e.g. commit:6,signal:2,abort:1,storm:1 ('' = default mix)")
		workers     = flag.Int("workers", 0, "role-worker pool size (0 auto-sizes at concurrency*roles, negative disables the pool)")
		sweepFlag   = flag.String("sweep", "", "comma-separated concurrency levels for a scaling sweep, e.g. 64,256,1024 ('' disables)")
		sweepAct    = flag.Int("sweep-actions", 0, "action instances per sweep point (0 = -actions)")
		arrival     = flag.String("arrival", "", "comma-separated open-loop arrival rates in actions/s, e.g. 300,600,1200 ('' disables); arrivals are clock-driven, independent of completions")
		arrivalDur  = flag.Duration("arrival-duration", 5*time.Second, "offering window per open-loop rate")
		maxInFlight = flag.Int("max-inflight", 0, "admission budget for open-loop points (0 = the harness default, negative disables the budget)")
		resolvers   = flag.String("resolvers", "coordinated,cr86,r96", "comma-separated resolution protocols")
		runs        = flag.Int("runs", 1, "repeat the fixed-action run and each sweep point this many times, recording the median-of-N by throughput")
		soak        = flag.Duration("soak", 0, "duration-bounded endurance run per resolver with interval-sampled leak gates (0 disables)")
		soakSample  = flag.Duration("soak-sample", 0, "soak leak-sample interval (0 derives duration/16, clamped to [250ms, 5s])")
		soakGor     = flag.Int("soak-max-goroutines", 256, "soak leak gate: maximum steady-state goroutine growth (0 disables)")
		soakHeapMB  = flag.Int("soak-max-heap-mb", 64, "soak leak gate: maximum steady-state heap growth in MiB (0 disables)")
		out         = flag.String("out", "BENCH_load.json", "JSON report path ('' disables)")

		clusterNodes = flag.Int("cluster", 0, "run the multi-process cluster benchmark over this many local canode processes (0 disables); measures batched vs unbatched wire modes and records the 'cluster' report section")
		clusterBin   = flag.String("cluster-bin", "", "canode binary for -cluster (required with -cluster)")
		clusterRnds  = flag.Int("cluster-rounds", 48, "shared action rounds per cluster measurement")
		clusterConc  = flag.Int("cluster-concurrency", 24, "cluster rounds in flight at once")
		clusterRuns  = flag.Int("cluster-runs", 0, "median-of-N cluster measurements per wire mode (0 = -runs)")

		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the whole run here ('' disables)")
		memProfile   = flag.String("memprofile", "", "write an allocation profile at exit here ('' disables)")
		mutexProfile = flag.String("mutexprofile", "", "write a mutex-contention profile at exit here ('' disables)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "caload:", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "caload: cpuprofile:", err)
			return 2
		}
		defer func() { pprof.StopCPUProfile(); _ = f.Close() }()
	}
	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(5)
		defer writeProfile("mutex", *mutexProfile)
	}
	if *memProfile != "" {
		defer writeProfile("allocs", *memProfile)
	}

	mix, err := load.ParseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "caload:", err)
		return 2
	}
	sweep, err := parseSweep(*sweepFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "caload:", err)
		return 2
	}
	rates, err := parseRates(*arrival)
	if err != nil {
		fmt.Fprintln(os.Stderr, "caload:", err)
		return 2
	}

	file := fileReport{
		Description: "Load-harness baseline: concurrent CA actions over a shared transport. Regenerate with `go build -o /tmp/canode ./cmd/canode && go run ./cmd/caload -actions 6000 -runs 3 -sweep 64,256,1024,4096 -arrival 4000,12000,24000 -arrival-duration 3s -soak 30s -cluster 3 -cluster-bin /tmp/canode -cluster-runs 3`.",
		Date:        time.Now().UTC().Format("2006-01-02"),
		Resolvers:   make(map[string]*resolverReport),
	}
	failed := false
	for _, resolver := range strings.Split(*resolvers, ",") {
		resolver = strings.TrimSpace(resolver)
		if resolver == "" {
			continue
		}
		cfg := load.Config{
			Actions:     *actions,
			Concurrency: *concurrency,
			Roles:       *roles,
			Resolver:    resolver,
			Transport:   *transport,
			Latency:     *latency,
			Seed:        *seed,
			Mix:         mix,
			Workers:     *workers,
		}
		rep, err := runMedian(cfg, *runs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "caload: %s: %v\n", resolver, err)
			return 2
		}
		rr := &resolverReport{Report: rep}
		fmt.Printf("%-12s %6d actions  %9.0f actions/s  p50 %.2fms  p99 %.2fms  %7.0f allocs/action  %5d goroutines  outcomes %v\n",
			resolver, cfg.Actions, rep.Throughput, rep.Latency.P50, rep.Latency.P99,
			rep.AllocsPerAction, rep.GoroutineHighWater, rep.Outcomes)
		if len(rep.Unexpected) > 0 {
			// Keep going and still write the report: the JSON (with its
			// Unexpected list) is exactly the diagnostic a failed run needs.
			fmt.Fprintf(os.Stderr, "caload: %s: %d unexpected outcomes, e.g. %s\n",
				resolver, len(rep.Unexpected), rep.Unexpected[0])
			failed = true
		}
		if len(sweep) > 0 {
			sweepCfg := cfg
			if *sweepAct > 0 {
				sweepCfg.Actions = *sweepAct
			}
			points, err := sweepMedian(sweepCfg, sweep, *runs)
			if err != nil {
				fmt.Fprintf(os.Stderr, "caload: %s: %v\n", resolver, err)
				failed = true
			}
			rr.Sweep = points
			for _, p := range points {
				fmt.Printf("  sweep c=%-5d %6d actions  %9.0f actions/s  p99 %.2fms  %7.0f allocs/action  %5d goroutines  heap %0.1fMiB\n",
					p.Concurrency, p.Actions, p.Throughput, p.P99Ms, p.AllocsPerAction,
					p.GoroutineHighWater, float64(p.PeakHeapBytes)/(1<<20))
			}
		}
		if len(rates) > 0 {
			points, err := load.RunOpenLoop(load.OpenLoopConfig{
				Config:      cfg,
				Rates:       rates,
				Duration:    *arrivalDur,
				MaxInFlight: *maxInFlight,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "caload: %s: %v\n", resolver, err)
				failed = true
			}
			rr.OpenLoop = points
			for _, p := range points {
				fmt.Printf("  open  r=%-6.0f offered %6d  goodput %8.0f actions/s  rejected %6d  errors %3d  p50 %.2fms  p99 %.2fms  budget %d\n",
					p.OfferedRate, p.Offered, p.Goodput, p.Rejected, p.Errors, p.P50Ms, p.P99Ms, p.MaxInFlight)
				if p.Errors > 0 {
					fmt.Fprintf(os.Stderr, "caload: %s: open-loop rate %v: %d errored arrivals\n", resolver, p.OfferedRate, p.Errors)
					failed = true
				}
			}
		}
		if *soak > 0 {
			srep, err := load.RunSoak(load.SoakConfig{
				Config:      cfg,
				Duration:    *soak,
				SampleEvery: *soakSample,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "caload: %s: soak: %v\n", resolver, err)
				return 2
			}
			rr.Soak = srep
			fmt.Printf("  soak  %6.1fs %8d actions  %9.0f actions/s  goroutine growth %+4d  heap growth %+6.1fMiB  %d samples\n",
				srep.WallSecs, srep.Actions, srep.Throughput, srep.GoroutineGrowth,
				float64(srep.HeapGrowthBytes)/(1<<20), len(srep.Samples))
			if srep.UnexpectedCount > 0 {
				fmt.Fprintf(os.Stderr, "caload: %s: soak: %d unexpected outcomes, e.g. %s\n",
					resolver, srep.UnexpectedCount, srep.Unexpected[0])
				failed = true
			}
			if err := srep.LeakCheck(*soakGor, int64(*soakHeapMB)<<20); err != nil {
				fmt.Fprintf(os.Stderr, "caload: %s: %v\n", resolver, err)
				failed = true
			}
		}
		file.Resolvers[resolver] = rr
	}
	if *clusterNodes > 0 {
		if *clusterBin == "" {
			fmt.Fprintln(os.Stderr, "caload: -cluster requires -cluster-bin (a built canode binary)")
			return 2
		}
		modeRuns := *clusterRuns
		if modeRuns <= 0 {
			modeRuns = *runs
		}
		crep, err := testnet.Bench(testnet.BenchConfig{
			Binary:      *clusterBin,
			Nodes:       *clusterNodes,
			Rounds:      *clusterRnds,
			Concurrency: *clusterConc,
			Runs:        modeRuns,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "caload: cluster:", err)
			return 2
		}
		file.Cluster = crep
		for _, m := range []*load.ClusterReport{crep.Batched, crep.Unbatched} {
			fmt.Printf("  cluster %-10s %4d rounds  %8.1f rounds/s  p50 %.2fms  p99 %.2fms  %8.0f driver allocs/round  batch frames %d  stalls %d\n",
				m.Config.Label, m.Config.Rounds, m.Throughput, m.Latency.P50, m.Latency.P99,
				m.DriverAllocsPerRound, m.BatchFrames, m.CreditStalls)
		}
		fmt.Printf("  cluster speedup: batched %.2fx unbatched (%d nodes, median of %d)\n",
			crep.SpeedupX, crep.Nodes, modeRuns)
	}
	if *out != "" {
		blob, err := json.MarshalIndent(file, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "caload:", err)
			return 2
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "caload:", err)
			return 2
		}
		fmt.Println("wrote", *out)
	}
	if failed {
		return 1
	}
	return 0
}
