// Command perfgate is the CI performance-regression gate: it compares a
// fresh `go test -bench` run and a fresh caload report against the
// committed baselines (BENCH_chaos.json, BENCH_load.json) and fails the
// build when a hot-path metric regresses beyond tolerance.
//
// Gated metrics:
//
//   - allocs_per_op (benchmarks) — hardware-independent, so it is compared
//     across machines at the standard tolerance. Only regressions fail;
//     improvements are reported (and should be committed as the new
//     baseline).
//   - virtual_seconds / messages (benchmarks) — deterministic paper anchors
//     (Fig9/Fig12 virtual times, §3.3.3 message counts); they must match
//     the baseline within the much tighter -exact-tolerance in either
//     direction.
//   - actions_per_second, p99_ms and allocs_per_action (load report, per
//     resolver) — throughput may not drop and p99 may not rise beyond
//     tolerance.
//   - the concurrency-scaling sweep (load report, per resolver and sweep
//     concurrency): every baselined sweep point's throughput/p99 is gated
//     at the separate -load-tolerance (wall-clock numbers are hardware-
//     sensitive, so CI runs them looser than the allocation gates) and its
//     allocs_per_action at the standard -tolerance. A missing sweep point
//     fails the gate.
//   - the open-loop overload curve (load report, per resolver and offered
//     rate, from caload -arrival): goodput may not drop and admitted-work
//     p99 may not rise beyond -load-tolerance on any baselined rate the
//     run re-measured; errored arrivals fail outright. CI may re-measure
//     a subset of the curve, but at least one baselined rate must be
//     present.
//   - the scalability watermarks (goroutine_high_water, peak_heap_bytes;
//     main run and every sweep point): sampled process-wide maxima that
//     catch leaked workers and runaway buffering before they sink
//     throughput. Gated with absolute slacks (-goroutine-slack,
//     -heap-slack-mb) on top of the relative tolerance, since scheduler
//     and GC timing move small watermarks run-to-run.
//   - the soak leak gates (load report, per resolver, from caload -soak):
//     steady-state goroutine/heap growth under sustained load may not
//     exceed the baseline growth beyond the absolute slacks, and a
//     baselined soak missing from the run fails the gate.
//
// ns/op and B/op are recorded in the comparison artifact but not gated
// (they vary with hardware).
//
// -load accepts several comma-separated fresh reports; the gate then
// compares the per-metric MEDIAN across them, so one noisy run cannot fail
// (or pass) a wall-clock gate on its own. caload -runs 3 folds the same
// median at generation time instead, inside one report.
//
// Usage (what .github/workflows/ci.yml runs):
//
//	go test -run xxx -bench . -benchmem ./... | tee bench.out
//	go run ./cmd/caload -actions 6000 -sweep 64,256,1024,4096 -soak 30s -out BENCH_load_new.json
//	go run ./cmd/perfgate -bench bench.out -load BENCH_load_new.json \
//	    -load-tolerance 0.5 -report perf_comparison.json
//
// Regenerating baselines after an intentional perf change (-actions 6000
// matters: p99 is the sample's tail, and smaller runs flake the gate;
// -runs 3 records the median-of-three run):
//
//	go test -run xxx -bench . -benchmem ./...              # update BENCH_chaos.json numbers
//	go run ./cmd/caload -actions 6000 -runs 3 -sweep 64,256,1024,4096 -soak 30s   # rewrites BENCH_load.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchBaseline mirrors BENCH_chaos.json.
type benchBaseline struct {
	Benchmarks []struct {
		Pkg            string  `json:"pkg"`
		Name           string  `json:"name"`
		NsPerOp        float64 `json:"ns_per_op"`
		VirtualSeconds float64 `json:"virtual_seconds"`
		Messages       float64 `json:"messages"`
		BytesPerOp     float64 `json:"bytes_per_op"`
		AllocsPerOp    float64 `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

// loadBaseline mirrors BENCH_load.json (only the gated fields).
type loadBaseline struct {
	Resolvers map[string]loadResolver `json:"resolvers"`
	Cluster   *clusterBaseline        `json:"cluster"`
}

// clusterBaseline is the multi-process benchmark recorded by caload
// -cluster: both wire modes plus their same-run speedup.
type clusterBaseline struct {
	Nodes     int          `json:"nodes"`
	Batched   *clusterMode `json:"batched"`
	Unbatched *clusterMode `json:"unbatched"`
	SpeedupX  float64      `json:"speedup_x"`
}

// clusterMode is one wire mode's gated metrics.
type clusterMode struct {
	Throughput float64 `json:"rounds_per_second"`
	Latency    struct {
		P99 float64 `json:"p99_ms"`
	} `json:"latency"`
	DriverAllocsPerRound float64 `json:"driver_allocs_per_round"`
	BatchFrames          float64 `json:"batch_frames"`
	CreditStalls         float64 `json:"credit_stalls"`
}

// loadResolver is one resolver's gated metrics.
type loadResolver struct {
	Throughput         float64 `json:"actions_per_second"`
	AllocsPerAction    float64 `json:"allocs_per_action"`
	GoroutineHighWater float64 `json:"goroutine_high_water"`
	PeakHeapBytes      float64 `json:"peak_heap_bytes"`
	Latency            struct {
		P99 float64 `json:"p99_ms"`
	} `json:"latency"`
	Sweep    []sweepPoint    `json:"sweep"`
	OpenLoop []openLoopPoint `json:"open_loop"`
	Soak     *soakBaseline   `json:"soak"`
}

// sweepPoint is one concurrency level of the scaling sweep recorded by
// caload -sweep.
type sweepPoint struct {
	Concurrency        int     `json:"concurrency"`
	Throughput         float64 `json:"actions_per_second"`
	AllocsPerAction    float64 `json:"allocs_per_action"`
	P99                float64 `json:"p99_ms"`
	GoroutineHighWater float64 `json:"goroutine_high_water"`
	PeakHeapBytes      float64 `json:"peak_heap_bytes"`
}

// soakBaseline is the duration-bounded endurance run recorded by caload
// -soak: the leak gates compare steady-state growth, which a healthy run
// holds near zero regardless of the window length, so the growth baselines
// transfer across hardware better than any throughput number.
type soakBaseline struct {
	Throughput      float64 `json:"actions_per_second"`
	GoroutineGrowth float64 `json:"goroutine_growth"`
	HeapGrowthBytes float64 `json:"heap_growth_bytes"`
	UnexpectedCount float64 `json:"unexpected_count"`
}

// openLoopPoint is one offered rate of the open-loop overload curve
// recorded by caload -arrival.
type openLoopPoint struct {
	OfferedRate float64 `json:"offered_rate"`
	Goodput     float64 `json:"goodput_actions_per_second"`
	Rejected    int     `json:"rejected"`
	Errors      int     `json:"errors"`
	P99         float64 `json:"p99_ms"`
}

// benchResult is one parsed `go test -bench` output line.
type benchResult struct {
	nsPerOp     float64
	vsec        float64
	msgs        float64
	bytesPerOp  float64
	allocsPerOp float64
	hasAllocs   bool
}

// row is one comparison in the artifact.
type row struct {
	Subject  string  `json:"subject"` // "bench:<Name>" or "load:<resolver>"
	Metric   string  `json:"metric"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	DeltaPct float64 `json:"delta_pct"`
	Status   string  `json:"status"` // "ok", "improved", "FAIL", "info"
}

type gate struct {
	rows   []row
	failed bool
}

// check records one comparison. dir > 0 means "larger is worse" (allocs,
// p99), dir < 0 means "smaller is worse" (throughput), dir == 0 means the
// value must match within tolerance in either direction (paper anchors).
//
// slack is an absolute grace on top of the relative tolerance for dir > 0
// metrics: the comparison fails only when cur exceeds BOTH base*(1+tol)
// and base+slack. Tail latencies at low concurrency are a handful of
// milliseconds, where a single GC pause moves the percentile by
// double-digit percentages run-to-run; the slack keeps those physically
// insignificant swings from flaking the gate while real regressions clear
// both bars. Pass 0 for a purely relative gate.
func (g *gate) check(subject, metric string, base, cur, tol float64, dir int, slack float64) {
	delta := 0.0
	if base != 0 {
		delta = (cur - base) / math.Abs(base) * 100
	}
	status := "ok"
	switch {
	case dir > 0 && cur > base*(1+tol) && cur > base+slack:
		status = "FAIL"
	case dir < 0 && cur < base*(1-tol):
		status = "FAIL"
	case dir == 0 && math.Abs(cur-base) > math.Abs(base)*tol:
		status = "FAIL"
	case dir > 0 && cur < base*(1-tol):
		status = "improved"
	case dir < 0 && cur > base*(1+tol):
		status = "improved"
	}
	if status == "FAIL" {
		g.failed = true
	}
	g.rows = append(g.rows, row{Subject: subject, Metric: metric,
		Baseline: base, Current: cur, DeltaPct: delta, Status: status})
}

func (g *gate) info(subject, metric string, base, cur float64) {
	delta := 0.0
	if base != 0 {
		delta = (cur - base) / math.Abs(base) * 100
	}
	g.rows = append(g.rows, row{Subject: subject, Metric: metric,
		Baseline: base, Current: cur, DeltaPct: delta, Status: "info"})
}

func (g *gate) fail(subject, why string) {
	g.failed = true
	g.rows = append(g.rows, row{Subject: subject, Metric: why, Status: "FAIL"})
}

// benchLine matches e.g.
//
//	BenchmarkFig9Baseline-4   300   935295 ns/op   94.00 vsec   275675 B/op   3306 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseBenchFile returns results keyed "pkg|name" (pkg from the preceding
// "pkg:" header line), so same-named benchmarks in different packages never
// collide.
func parseBenchFile(path string) (map[string]benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	out := make(map[string]benchResult)
	pkg := ""
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		var r benchResult
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.nsPerOp = v
			case "vsec":
				r.vsec = v
			case "msgs":
				r.msgs = v
			case "B/op":
				r.bytesPerOp = v
			case "allocs/op":
				r.allocsPerOp = v
				r.hasAllocs = true
			}
		}
		out[pkg+"|"+m[1]] = r
	}
	return out, sc.Err()
}

func readJSON(path string, into any) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(blob, into)
}

// median returns the lower median of vs — the same element a caload
// -runs fold picks — or zero for an empty slice.
func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sort.Float64s(vs)
	return vs[(len(vs)-1)/2]
}

// medianLoad folds N fresh load reports (perfgate -load a.json,b.json,...)
// into one per-metric median view: wall-clock metrics — throughput, p99,
// goodput — flake run-to-run on shared CI runners, and gating their median
// across independent runs keeps one noisy run from failing (or passing) the
// build. Deterministic-ish metrics (allocations, watermarks) take the same
// median, which for stable metrics is a no-op. A resolver, sweep point or
// open-loop rate missing from some runs is medianed over the runs that
// measured it; errored open-loop arrivals take the maximum, so no run's
// failure is averaged away.
func medianLoad(reports []loadBaseline) loadBaseline {
	if len(reports) == 1 {
		return reports[0]
	}
	out := loadBaseline{Resolvers: make(map[string]loadResolver)}
	names := make(map[string]bool)
	for _, r := range reports {
		for n := range r.Resolvers {
			names[n] = true
		}
	}
	for name := range names {
		var entries []loadResolver
		for _, r := range reports {
			if e, ok := r.Resolvers[name]; ok {
				entries = append(entries, e)
			}
		}
		fold := func(f func(loadResolver) float64) float64 {
			vs := make([]float64, 0, len(entries))
			for _, e := range entries {
				vs = append(vs, f(e))
			}
			return median(vs)
		}
		var m loadResolver
		m.Throughput = fold(func(e loadResolver) float64 { return e.Throughput })
		m.AllocsPerAction = fold(func(e loadResolver) float64 { return e.AllocsPerAction })
		m.GoroutineHighWater = fold(func(e loadResolver) float64 { return e.GoroutineHighWater })
		m.PeakHeapBytes = fold(func(e loadResolver) float64 { return e.PeakHeapBytes })
		m.Latency.P99 = fold(func(e loadResolver) float64 { return e.Latency.P99 })

		byConc := make(map[int][]sweepPoint)
		var concOrder []int
		for _, e := range entries {
			for _, p := range e.Sweep {
				if _, seen := byConc[p.Concurrency]; !seen {
					concOrder = append(concOrder, p.Concurrency)
				}
				byConc[p.Concurrency] = append(byConc[p.Concurrency], p)
			}
		}
		for _, conc := range concOrder {
			ps := byConc[conc]
			foldP := func(f func(sweepPoint) float64) float64 {
				vs := make([]float64, 0, len(ps))
				for _, p := range ps {
					vs = append(vs, f(p))
				}
				return median(vs)
			}
			m.Sweep = append(m.Sweep, sweepPoint{
				Concurrency:        conc,
				Throughput:         foldP(func(p sweepPoint) float64 { return p.Throughput }),
				AllocsPerAction:    foldP(func(p sweepPoint) float64 { return p.AllocsPerAction }),
				P99:                foldP(func(p sweepPoint) float64 { return p.P99 }),
				GoroutineHighWater: foldP(func(p sweepPoint) float64 { return p.GoroutineHighWater }),
				PeakHeapBytes:      foldP(func(p sweepPoint) float64 { return p.PeakHeapBytes }),
			})
		}

		byRate := make(map[float64][]openLoopPoint)
		var rateOrder []float64
		for _, e := range entries {
			for _, p := range e.OpenLoop {
				if _, seen := byRate[p.OfferedRate]; !seen {
					rateOrder = append(rateOrder, p.OfferedRate)
				}
				byRate[p.OfferedRate] = append(byRate[p.OfferedRate], p)
			}
		}
		for _, rate := range rateOrder {
			ps := byRate[rate]
			foldP := func(f func(openLoopPoint) float64) float64 {
				vs := make([]float64, 0, len(ps))
				for _, p := range ps {
					vs = append(vs, f(p))
				}
				return median(vs)
			}
			mp := openLoopPoint{
				OfferedRate: rate,
				Goodput:     foldP(func(p openLoopPoint) float64 { return p.Goodput }),
				P99:         foldP(func(p openLoopPoint) float64 { return p.P99 }),
				Rejected:    int(foldP(func(p openLoopPoint) float64 { return float64(p.Rejected) })),
			}
			for _, p := range ps {
				if p.Errors > mp.Errors {
					mp.Errors = p.Errors
				}
			}
			m.OpenLoop = append(m.OpenLoop, mp)
		}

		var soaks []soakBaseline
		for _, e := range entries {
			if e.Soak != nil {
				soaks = append(soaks, *e.Soak)
			}
		}
		if len(soaks) > 0 {
			foldS := func(f func(soakBaseline) float64) float64 {
				vs := make([]float64, 0, len(soaks))
				for _, s := range soaks {
					vs = append(vs, f(s))
				}
				return median(vs)
			}
			s := soakBaseline{
				Throughput:      foldS(func(x soakBaseline) float64 { return x.Throughput }),
				GoroutineGrowth: foldS(func(x soakBaseline) float64 { return x.GoroutineGrowth }),
				HeapGrowthBytes: foldS(func(x soakBaseline) float64 { return x.HeapGrowthBytes }),
			}
			for _, x := range soaks {
				if x.UnexpectedCount > s.UnexpectedCount {
					s.UnexpectedCount = x.UnexpectedCount
				}
			}
			m.Soak = &s
		}
		out.Resolvers[name] = m
	}
	// The cluster benchmark is internally self-consistent (the speedup is
	// a same-run ratio), so rather than a per-metric patchwork the fold
	// keeps the whole run with the median batched throughput.
	var clusters []*clusterBaseline
	for _, r := range reports {
		if r.Cluster != nil && r.Cluster.Batched != nil {
			clusters = append(clusters, r.Cluster)
		}
	}
	if len(clusters) > 0 {
		sort.Slice(clusters, func(i, j int) bool {
			return clusters[i].Batched.Throughput < clusters[j].Batched.Throughput
		})
		out.Cluster = clusters[(len(clusters)-1)/2]
	}
	return out
}

func main() {
	var (
		benchFile      = flag.String("bench", "", "go test -bench output to gate ('' skips the bench gate)")
		benchBase      = flag.String("bench-baseline", "BENCH_chaos.json", "committed benchmark baseline")
		loadFile       = flag.String("load", "", "fresh caload JSON report(s) to gate, comma-separated; several reports gate their per-metric median ('' skips the load gate)")
		loadBase       = flag.String("load-baseline", "BENCH_load.json", "committed load baseline")
		tolerance      = flag.Float64("tolerance", 0.25, "fractional tolerance for perf metrics (allocs, throughput, p99)")
		loadTol        = flag.Float64("load-tolerance", 0, "override tolerance for the wall-clock load metrics (actions_per_second, p99); 0 inherits -tolerance. Throughput and tail latency are hardware-sensitive, so a gate whose baseline was recorded on different hardware may need this looser than the allocation gates")
		exactTol       = flag.Float64("exact-tolerance", 0.02, "tolerance for deterministic metrics (virtual seconds, message counts)")
		p99Slack       = flag.Float64("p99-slack-ms", 10, "absolute slack for p99 gates: a p99 regression fails only when it exceeds the load tolerance AND baseline+slack (low-concurrency tails are a few ms, where one GC pause flakes a purely relative gate)")
		gorSlack       = flag.Float64("goroutine-slack", 128, "absolute slack for the goroutine watermark and soak-growth gates: a regression fails only when it exceeds the tolerance AND baseline+slack (scheduler timing moves small counts by tens run-to-run)")
		heapSlackMB    = flag.Float64("heap-slack-mb", 32, "absolute slack in MiB for the heap watermark and soak-growth gates (GC pacing moves the live-heap peak by tens of MiB run-to-run)")
		reportPath     = flag.String("report", "", "write the comparison artifact JSON here ('' disables)")
		requireAllocs  = flag.Bool("require-allocs", true, "fail when a baselined benchmark reports no allocs/op (run with -benchmem)")
		requireCluster = flag.Bool("require-cluster", false, "fail when the baseline has a cluster section the fresh run did not re-measure (CI's cluster-bench job sets this; other jobs skip the multi-process benchmark)")
		minSpeedup     = flag.Float64("min-cluster-speedup", 1.5, "minimum batched/unbatched throughput ratio the fresh cluster benchmark must reach (0 disables the absolute gate)")
		clusterOnly    = flag.Bool("cluster-only", false, "gate only the load baseline's cluster section, exempting the per-resolver sections (CI's cluster-bench job runs caload with -resolvers '' and sets this; the perf-gate job still gates the resolvers)")
	)
	flag.Parse()

	g := &gate{}
	if *benchFile != "" {
		results, err := parseBenchFile(*benchFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfgate: parse bench:", err)
			os.Exit(2)
		}
		var base benchBaseline
		if err := readJSON(*benchBase, &base); err != nil {
			fmt.Fprintln(os.Stderr, "perfgate: read baseline:", err)
			os.Exit(2)
		}
		for _, b := range base.Benchmarks {
			r, ok := results[b.Pkg+"|"+b.Name]
			subject := "bench:" + b.Name
			if !ok {
				g.fail(subject, "benchmark missing from run")
				continue
			}
			if b.AllocsPerOp > 0 {
				if r.hasAllocs {
					g.check(subject, "allocs_per_op", b.AllocsPerOp, r.allocsPerOp, *tolerance, +1, 0)
				} else if *requireAllocs {
					g.fail(subject, "no allocs/op in run (use -benchmem)")
				}
			}
			if b.VirtualSeconds > 0 {
				g.check(subject, "virtual_seconds", b.VirtualSeconds, r.vsec, *exactTol, 0, 0)
			}
			if b.Messages > 0 {
				g.check(subject, "messages", b.Messages, r.msgs, *exactTol, 0, 0)
			}
			g.info(subject, "ns_per_op", b.NsPerOp, r.nsPerOp)
			if b.BytesPerOp > 0 && r.bytesPerOp > 0 {
				g.info(subject, "bytes_per_op", b.BytesPerOp, r.bytesPerOp)
			}
		}
	}

	if *loadTol == 0 {
		*loadTol = *tolerance
	}
	if *loadFile != "" {
		var fresh []loadBaseline
		for _, path := range strings.Split(*loadFile, ",") {
			path = strings.TrimSpace(path)
			if path == "" {
				continue
			}
			var r loadBaseline
			if err := readJSON(path, &r); err != nil {
				fmt.Fprintln(os.Stderr, "perfgate: read load report:", err)
				os.Exit(2)
			}
			fresh = append(fresh, r)
		}
		if len(fresh) == 0 {
			fmt.Fprintln(os.Stderr, "perfgate: -load named no readable reports")
			os.Exit(2)
		}
		cur := medianLoad(fresh)
		var base loadBaseline
		if err := readJSON(*loadBase, &base); err != nil {
			fmt.Fprintln(os.Stderr, "perfgate: read load baseline:", err)
			os.Exit(2)
		}
		heapSlack := *heapSlackMB * (1 << 20)
		if *clusterOnly {
			// The cluster-bench job measures only the multi-process section;
			// dropping the baseline's resolver sections here exempts them
			// without loosening any gate the perf-gate job applies.
			base.Resolvers = nil
		}
		for name, b := range base.Resolvers {
			subject := "load:" + name
			c, ok := cur.Resolvers[name]
			if !ok {
				g.fail(subject, "resolver missing from run")
				continue
			}
			g.check(subject, "actions_per_second", b.Throughput, c.Throughput, *loadTol, -1, 0)
			g.check(subject, "p99_ms", b.Latency.P99, c.Latency.P99, *loadTol, +1, *p99Slack)
			if b.AllocsPerAction > 0 && c.AllocsPerAction > 0 {
				g.check(subject, "allocs_per_action", b.AllocsPerAction, c.AllocsPerAction, *tolerance, +1, 0)
			}
			// Scalability watermarks: a leaked worker set or runaway buffer
			// shows up here long before it sinks throughput.
			if b.GoroutineHighWater > 0 && c.GoroutineHighWater > 0 {
				g.check(subject, "goroutine_high_water", b.GoroutineHighWater, c.GoroutineHighWater, *tolerance, +1, *gorSlack)
			}
			if b.PeakHeapBytes > 0 && c.PeakHeapBytes > 0 {
				g.check(subject, "peak_heap_bytes", b.PeakHeapBytes, c.PeakHeapBytes, *loadTol, +1, heapSlack)
			}
			// Concurrency-scaling sweep: every baselined point must exist in
			// the run and hold its throughput/p99 within the (hardware-
			// sensitive) load tolerance and its allocation rate within the
			// standard tolerance. A vanished point means the sweep was not
			// re-run — that is a gate failure, not a skip, so the scaling
			// win stays locked in.
			curSweep := make(map[int]sweepPoint, len(c.Sweep))
			for _, p := range c.Sweep {
				curSweep[p.Concurrency] = p
			}
			for _, bp := range b.Sweep {
				subj := fmt.Sprintf("%s@c%d", subject, bp.Concurrency)
				cp, ok := curSweep[bp.Concurrency]
				if !ok {
					g.fail(subj, "sweep point missing from run")
					continue
				}
				g.check(subj, "actions_per_second", bp.Throughput, cp.Throughput, *loadTol, -1, 0)
				if bp.P99 > 0 && cp.P99 > 0 {
					g.check(subj, "p99_ms", bp.P99, cp.P99, *loadTol, +1, *p99Slack)
				}
				if bp.AllocsPerAction > 0 && cp.AllocsPerAction > 0 {
					g.check(subj, "allocs_per_action", bp.AllocsPerAction, cp.AllocsPerAction, *tolerance, +1, 0)
				}
				if bp.GoroutineHighWater > 0 && cp.GoroutineHighWater > 0 {
					g.check(subj, "goroutine_high_water", bp.GoroutineHighWater, cp.GoroutineHighWater, *tolerance, +1, *gorSlack)
				}
				if bp.PeakHeapBytes > 0 && cp.PeakHeapBytes > 0 {
					g.check(subj, "peak_heap_bytes", bp.PeakHeapBytes, cp.PeakHeapBytes, *loadTol, +1, heapSlack)
				}
			}
			// Open-loop overload curve: every baselined offered rate the run
			// also measured must hold its goodput within the load tolerance
			// and its (admitted-work) p99 bounded. Unlike the sweep, CI may
			// deliberately re-measure only a subset of the curve — the gate
			// compares the intersection — but a baselined curve with NO
			// re-measured point means the overload contract went untested,
			// which fails the gate.
			if len(b.OpenLoop) > 0 {
				curOL := make(map[float64]openLoopPoint, len(c.OpenLoop))
				for _, p := range c.OpenLoop {
					curOL[p.OfferedRate] = p
				}
				matched := 0
				for _, bp := range b.OpenLoop {
					cp, ok := curOL[bp.OfferedRate]
					if !ok {
						continue
					}
					matched++
					subj := fmt.Sprintf("%s@r%g", subject, bp.OfferedRate)
					g.check(subj, "goodput_actions_per_second", bp.Goodput, cp.Goodput, *loadTol, -1, 0)
					if bp.P99 > 0 && cp.P99 > 0 {
						g.check(subj, "p99_ms", bp.P99, cp.P99, *loadTol, +1, *p99Slack)
					}
					g.info(subj, "rejected", float64(bp.Rejected), float64(cp.Rejected))
					if cp.Errors > 0 {
						g.fail(subj, fmt.Sprintf("%d errored arrivals in open-loop run", cp.Errors))
					}
				}
				if matched == 0 {
					g.fail(subject, "no baselined open-loop point re-measured (run caload -arrival with a baselined rate)")
				}
			}
			// Soak leak gates: steady-state goroutine/heap growth under
			// sustained load may not exceed the baseline beyond the absolute
			// slacks. Growth baselines sit near zero, so the relative
			// tolerance is meaningless here — the slack IS the gate. Like a
			// vanished sweep point, a baselined soak the run skipped fails:
			// the leak contract must be re-tested, not waved through.
			if b.Soak != nil {
				subj := subject + "@soak"
				if c.Soak == nil {
					g.fail(subj, "soak missing from run (run caload -soak)")
				} else {
					g.check(subj, "goroutine_growth", b.Soak.GoroutineGrowth, c.Soak.GoroutineGrowth, 0, +1, *gorSlack)
					g.check(subj, "heap_growth_bytes", b.Soak.HeapGrowthBytes, c.Soak.HeapGrowthBytes, 0, +1, heapSlack)
					g.info(subj, "actions_per_second", b.Soak.Throughput, c.Soak.Throughput)
					if c.Soak.UnexpectedCount > 0 {
						g.fail(subj, fmt.Sprintf("%0.f unexpected outcomes in soak run", c.Soak.UnexpectedCount))
					}
				}
			}
		}
		// Multi-process cluster benchmark (caload -cluster): the batched
		// wire mode may not regress against the baseline, and the same-run
		// speedup over the unbatched mode must clear the absolute floor.
		// Only CI's cluster-bench job re-measures this section (it spawns
		// a process fleet), so a fresh report without it skips the gate
		// unless -require-cluster insists.
		if base.Cluster != nil && base.Cluster.Batched != nil {
			subject := "cluster:batched"
			switch {
			case cur.Cluster == nil || cur.Cluster.Batched == nil:
				if *requireCluster {
					g.fail(subject, "cluster benchmark missing from run (run caload -cluster)")
				}
			default:
				b, c := base.Cluster.Batched, cur.Cluster.Batched
				g.check(subject, "rounds_per_second", b.Throughput, c.Throughput, *loadTol, -1, 0)
				if b.Latency.P99 > 0 && c.Latency.P99 > 0 {
					g.check(subject, "p99_ms", b.Latency.P99, c.Latency.P99, *loadTol, +1, *p99Slack)
				}
				if b.DriverAllocsPerRound > 0 && c.DriverAllocsPerRound > 0 {
					g.check(subject, "driver_allocs_per_round", b.DriverAllocsPerRound, c.DriverAllocsPerRound, *tolerance, +1, 0)
				}
				if c.BatchFrames == 0 {
					g.fail(subject, "batched mode flushed no batched frames — fast path not exercised")
				}
				if base.Cluster.Unbatched != nil && cur.Cluster.Unbatched != nil {
					g.info("cluster:unbatched", "rounds_per_second",
						base.Cluster.Unbatched.Throughput, cur.Cluster.Unbatched.Throughput)
				}
				g.info("cluster", "speedup_x", base.Cluster.SpeedupX, cur.Cluster.SpeedupX)
				if *minSpeedup > 0 && cur.Cluster.SpeedupX < *minSpeedup {
					g.fail("cluster", fmt.Sprintf("batched/unbatched speedup %.2fx below the %.2fx floor",
						cur.Cluster.SpeedupX, *minSpeedup))
				}
			}
		}
	}

	if len(g.rows) == 0 {
		fmt.Fprintln(os.Stderr, "perfgate: nothing to compare (pass -bench and/or -load)")
		os.Exit(2)
	}

	for _, r := range g.rows {
		fmt.Printf("%-10s %-38s %-18s base %14.2f  now %14.2f  %+7.1f%%\n",
			r.Status, r.Subject, r.Metric, r.Baseline, r.Current, r.DeltaPct)
	}
	if *reportPath != "" {
		blob, err := json.MarshalIndent(struct {
			Failed bool  `json:"failed"`
			Rows   []row `json:"rows"`
		}{g.failed, g.rows}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfgate:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*reportPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "perfgate:", err)
			os.Exit(2)
		}
	}
	if g.failed {
		fmt.Println("perfgate: FAIL — performance regressed beyond tolerance (or a baselined benchmark vanished)")
		os.Exit(1)
	}
	fmt.Println("perfgate: ok")
}
