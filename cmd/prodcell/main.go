// Command prodcell runs the paper's §4 production-cell case study: the plant
// simulator controlled by the nested-CA-action control program, optionally
// with injected faults.
//
// Usage:
//
//	prodcell [-cycles N] [-fault kind] [-resolver name] [-trace]
//
// Fault kinds: vm_stop, vm_nmove, rm_stop, rm_nmove, dual_motor, s_stuck,
// l_plate, cs_fault, rt_exc, plain_error. The fault is injected before the
// first cycle; motor and sensor faults are forward-recovered by the
// Move_Loaded_Table handlers, a lost plate is signalled as L_PLATE through
// every nesting level, and unrecoverable faults undo the cycle (µ).
// -resolver selects the concurrent-exception resolution protocol from the
// public registry.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"caaction"
	"caaction/prodcell"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("prodcell: ")
	cycles := flag.Int("cycles", 3, "production cycles to run")
	fault := flag.String("fault", "", "fault to inject before the first cycle")
	resolver := flag.String("resolver", "coordinated",
		"resolution protocol: "+strings.Join(caaction.Resolvers(), "|"))
	showTrace := flag.Bool("trace", false, "dump the runtime event trace")
	flag.Parse()

	opts := []caaction.Option{
		caaction.WithVirtualTime(),
		caaction.WithSimTransport(time.Millisecond),
		caaction.WithResolver(*resolver),
	}
	var eventLog *caaction.Log
	if *showTrace {
		eventLog = caaction.NewLog(4000)
		opts = append(opts, caaction.WithLog(eventLog))
	}
	sys, err := caaction.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	plant := prodcell.NewPlant(sys, prodcell.DefaultPlantConfig())

	cfg := prodcell.DefaultControlConfig()
	switch *fault {
	case "":
	case "vm_stop":
		must(plant.Inject(prodcell.FaultMotorStop, prodcell.AxisTableVert))
	case "vm_nmove":
		must(plant.Inject(prodcell.FaultMotorNoMove, prodcell.AxisTableVert))
	case "rm_stop":
		must(plant.Inject(prodcell.FaultMotorStop, prodcell.AxisTableRot))
	case "rm_nmove":
		must(plant.Inject(prodcell.FaultMotorNoMove, prodcell.AxisTableRot))
	case "dual_motor":
		must(plant.Inject(prodcell.FaultMotorStop, prodcell.AxisTableVert))
		must(plant.Inject(prodcell.FaultMotorStop, prodcell.AxisTableRot))
	case "s_stuck":
		must(plant.Inject(prodcell.FaultSensorStuck, prodcell.AxisTableVert))
	case "l_plate":
		must(plant.Inject(prodcell.FaultLostPlate, prodcell.AxisArm1))
	case "cs_fault":
		cfg.InjectCSFault = true
	case "rt_exc":
		cfg.InjectRTExc = true
	case "plain_error":
		cfg.InjectPlainError = true
	default:
		fmt.Fprintf(os.Stderr, "unknown fault %q\n", *fault)
		os.Exit(2)
	}

	ctl, err := prodcell.NewController(sys, plant, cfg)
	if err != nil {
		log.Fatal(err)
	}

	for i := 1; i <= *cycles; i++ {
		rep := ctl.RunCycle()
		fmt.Printf("cycle %d (virtual time %v):\n", i, sys.Now())
		for _, th := range prodcell.Threads() {
			outcome := "ok"
			if err := rep.Outcomes[th]; err != nil {
				outcome = err.Error()
			}
			fmt.Printf("  %-8s %s\n", th, outcome)
			if handled := rep.Handled[th]; len(handled) > 0 {
				fmt.Printf("           handled: %v\n", handled)
			}
		}
		// Operator clears leftover blanks after an aborted cycle.
		for _, b := range plant.Blanks() {
			if b.Loc != prodcell.LocContainer {
				if b.Loc != prodcell.LocFeedBelt {
					_ = plant.Remove(b.ID)
				}
			}
		}
	}

	fmt.Println()
	fmt.Println("plant state:")
	for _, b := range plant.Blanks() {
		fmt.Printf("  blank %d: %s (forged=%v)\n", b.ID, b.Loc, b.Forged)
	}
	if v := plant.Violations(); len(v) > 0 {
		fmt.Println("SAFETY VIOLATIONS:")
		for _, s := range v {
			fmt.Println("  " + s)
		}
		os.Exit(1)
	}
	fmt.Println("safety invariants: all held")
	fmt.Printf("messages sent: %d\n", sys.Metrics().Get("msg.total"))
	if eventLog != nil {
		fmt.Println()
		fmt.Println("trace (most recent events):")
		fmt.Print(eventLog.String())
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
