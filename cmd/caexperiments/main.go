// Command caexperiments regenerates every table and figure of the paper's
// evaluation (§5) plus the analytical results of §3, printing markdown
// tables that pair each measured value with the paper's published one.
//
// Usage:
//
//	caexperiments [-run all|fig9|fig12|msgs|signal|lemma1]
//
// Everything runs on the deterministic virtual clock; output is
// bit-reproducible.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"caaction/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("caexperiments: ")
	run := flag.String("run", "all", "experiment to run: all|fig9|fig12|msgs|signal|lemma1")
	flag.Parse()

	experiments := map[string]func() error{
		"fig9":   fig9,
		"fig12":  fig12,
		"msgs":   msgs,
		"signal": signalling,
		"lemma1": lemma1,
	}
	order := []string{"msgs", "signal", "lemma1", "fig12", "fig9"}

	if *run == "all" {
		for _, name := range order {
			if err := experiments[name](); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	fn, ok := experiments[*run]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		flag.Usage()
		os.Exit(2)
	}
	if err := fn(); err != nil {
		log.Fatal(err)
	}
}

func fig9() error {
	fmt.Println("## E1 — Figure 9/10: sensitivity of total execution time (§5.2)")
	fmt.Println()
	fmt.Println("Scenario: 3 threads in a containing action, 2 in a nested action;")
	fmt.Println("a containing-action exception aborts the nested action, the abortion")
	fmt.Println("handler raises a second exception, the resolving exception covers both;")
	fmt.Println("20 iterations. Baseline: Tmmax=0.2s Tabo=0.1s Treso=0.3s.")
	fmt.Println()
	rows, err := experiments.RunFig9()
	if err != nil {
		return err
	}
	fmt.Println(experiments.RenderFig9(rows))
	return nil
}

func fig12() error {
	fmt.Println("## E2 — Figure 12/13: ours vs Campbell–Randell 1986 (§5.3)")
	fmt.Println()
	fmt.Println("Scenario: 3 threads raise different exceptions nearly simultaneously.")
	fmt.Println("Sweeps: Tmmax at Tres=0.3s; Tres at Tmmax=1.0s.")
	fmt.Println()
	rows, err := experiments.RunFig12()
	if err != nil {
		return err
	}
	fmt.Println(experiments.RenderFig12(rows))
	return nil
}

func msgs() error {
	fmt.Println("## E3 — message complexity (§3.3.3, Theorem 2 and baselines)")
	fmt.Println()
	fmt.Println("Measured resolution-protocol messages and resolution-procedure calls")
	fmt.Println("against the closed forms: ours (N+1)(N−1) with one resolution;")
	fmt.Println("R-96 3N(N−1) with N resolutions; CR-86 O(N³) relays with per-relay")
	fmt.Println("resolutions.")
	fmt.Println()
	rows, err := experiments.RunMessageComplexity([]int{2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		return err
	}
	fmt.Println(experiments.RenderMsgs(rows))
	return nil
}

func signalling() error {
	fmt.Println("## E4 — signalling algorithm costs (§3.4)")
	fmt.Println()
	fmt.Println("Cases: (a) plain ε mix, (b) one ƒ, (c) one µ with successful undo,")
	fmt.Println("(d) one µ with one failed undo. Simple cases N(N−1); undo 2N(N−1).")
	fmt.Println()
	rows, err := experiments.RunSignalling([]int{2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		return err
	}
	fmt.Println(experiments.RenderSignalling(rows))
	return nil
}

func lemma1() error {
	fmt.Println("## E6 — Lemma 1 completion-time bound")
	fmt.Println()
	fmt.Println("T ≤ (2·nmax+3)·Tmmax + nmax·Tabort + (nmax+1)·(Treso+∆max)")
	fmt.Println("with Tmmax=0.2s, Tabort=0.1s, Treso=0.3s, ∆max=0.2s.")
	fmt.Println()
	rows, err := experiments.RunLemma1([]int{0, 1, 2, 3, 4},
		200*time.Millisecond, 100*time.Millisecond, 300*time.Millisecond)
	if err != nil {
		return err
	}
	fmt.Println(experiments.RenderLemma1(rows))
	return nil
}
