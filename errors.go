package caaction

import (
	"errors"
	"fmt"

	"caaction/internal/core"
	"caaction/internal/transport"
)

// SignalledError is the per-thread outcome of an action that terminated
// exceptionally: the exception ε the local role signalled to its caller or
// enclosing action, with µ (undo) and ƒ (failure) represented by the Undo
// and Failure identifiers. It supports errors.As directly and matches the
// ErrSignalled sentinel under errors.Is.
type SignalledError = core.SignalledError

// Sentinel errors reported by the runtime. All are matched with errors.Is.
var (
	// ErrSignalled matches any exceptional action outcome, regardless of
	// which exception was signalled; use AsSignalled (or errors.As with a
	// *SignalledError) to inspect it.
	ErrSignalled = core.ErrSignalled
	// ErrSpecInvalid reports a structurally invalid action spec.
	ErrSpecInvalid = core.ErrSpecInvalid
	// ErrNotYourRole reports a Perform by a thread the role is not bound to.
	ErrNotYourRole = core.ErrNotYourRole
	// ErrUnknownRole reports a role name the spec does not declare.
	ErrUnknownRole = core.ErrUnknownRole
	// ErrBodyRequired reports a RoleProgram without a body.
	ErrBodyRequired = core.ErrBodyRequired
	// ErrThreadStopped reports that the thread's endpoint closed mid-action
	// (thread shutdown, or a Perform context cancellation).
	ErrThreadStopped = core.ErrThreadStopped
	// ErrRecvTimeout is returned by Context.RecvTimeout when no matching
	// cooperation message arrives in time.
	ErrRecvTimeout = core.ErrTimeout
	// ErrUnreachable matches a send to a thread address the transport
	// cannot route — on a cluster node (WithCluster), a thread no live
	// node currently hosts. Role bodies observe it from Context.Send when
	// the hosting node is down; it clears once the peer directory learns a
	// live address again.
	ErrUnreachable = transport.ErrUnknownAddr
	// ErrPeerStalled matches a cross-node send refused because the peer
	// node's credit window is exhausted and the bounded pending buffer for
	// that peer is full — the peer has stopped consuming (stalled process,
	// partition) and backpressure has reached this node. The refusal is
	// typed and instantaneous, never a hang; sends recover as soon as the
	// peer drains and grants again. Only cluster nodes with the batched
	// fast path enabled (the default) observe it; each refusal also counts
	// the tcp.credit_stalls metric.
	ErrPeerStalled = transport.ErrPeerStalled
	// ErrDeadline matches a role outcome abandoned because the deadline of
	// the ctx passed to StartAction (or Thread.Perform) expired mid-action:
	// protocol waits are clamped to the propagated deadline, local effects
	// are undone best-effort and the doomed role unwinds instead of
	// consuming budget. It also matches context.DeadlineExceeded under
	// errors.Is. A deadline that expires during the exit exchange instead
	// yields a coordinated ƒ outcome (the §3.4 lost-message treatment).
	ErrDeadline = core.ErrDeadline
)

// ErrOverloaded is the typed fast-reject StartAction, StartTagged and
// Thread return when admission control (WithMaxInFlight, WithTenantBudget)
// refuses new work: the in-flight budget is exhausted. The refusal is
// instantaneous — no endpoints are opened, no goroutines started — so
// callers can shed or re-route load at line rate. Use errors.As with a
// *OverloadedError to see which budget (global or per-tenant) was hit.
var ErrOverloaded = errors.New("caaction: overloaded")

// OverloadedError carries the admission-control refusal detail: the budget
// that was exhausted and, for a per-tenant refusal, the tenant. It matches
// ErrOverloaded under errors.Is.
type OverloadedError struct {
	// Limit is the budget that was full (WithMaxInFlight's limit for a
	// global refusal, WithTenantBudget's for a tenant refusal).
	Limit int
	// Tenant is the refused tenant ("" for a global-budget refusal).
	Tenant string
}

// Error implements error.
func (e *OverloadedError) Error() string {
	if e.Tenant != "" {
		return fmt.Sprintf("caaction: overloaded: tenant %q at its budget of %d in-flight actions", e.Tenant, e.Limit)
	}
	return fmt.Sprintf("caaction: overloaded: %d actions in flight", e.Limit)
}

// Unwrap makes errors.Is(err, ErrOverloaded) hold.
func (e *OverloadedError) Unwrap() error { return ErrOverloaded }

// AsSignalled extracts the SignalledError from err, if any.
func AsSignalled(err error) (*SignalledError, bool) {
	var se *SignalledError
	if errors.As(err, &se) {
		return se, true
	}
	return nil, false
}

// IsUndone reports whether err is an action outcome of µ: aborted with all
// effects undone.
func IsUndone(err error) bool { return core.IsUndone(err) }

// IsFailed reports whether err is an action outcome of ƒ: aborted with
// effects possibly not undone.
func IsFailed(err error) bool { return core.IsFailed(err) }
