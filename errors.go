package caaction

import (
	"errors"

	"caaction/internal/core"
	"caaction/internal/transport"
)

// SignalledError is the per-thread outcome of an action that terminated
// exceptionally: the exception ε the local role signalled to its caller or
// enclosing action, with µ (undo) and ƒ (failure) represented by the Undo
// and Failure identifiers. It supports errors.As directly and matches the
// ErrSignalled sentinel under errors.Is.
type SignalledError = core.SignalledError

// Sentinel errors reported by the runtime. All are matched with errors.Is.
var (
	// ErrSignalled matches any exceptional action outcome, regardless of
	// which exception was signalled; use AsSignalled (or errors.As with a
	// *SignalledError) to inspect it.
	ErrSignalled = core.ErrSignalled
	// ErrSpecInvalid reports a structurally invalid action spec.
	ErrSpecInvalid = core.ErrSpecInvalid
	// ErrNotYourRole reports a Perform by a thread the role is not bound to.
	ErrNotYourRole = core.ErrNotYourRole
	// ErrUnknownRole reports a role name the spec does not declare.
	ErrUnknownRole = core.ErrUnknownRole
	// ErrBodyRequired reports a RoleProgram without a body.
	ErrBodyRequired = core.ErrBodyRequired
	// ErrThreadStopped reports that the thread's endpoint closed mid-action
	// (thread shutdown, or a Perform context cancellation).
	ErrThreadStopped = core.ErrThreadStopped
	// ErrRecvTimeout is returned by Context.RecvTimeout when no matching
	// cooperation message arrives in time.
	ErrRecvTimeout = core.ErrTimeout
	// ErrUnreachable matches a send to a thread address the transport
	// cannot route — on a cluster node (WithCluster), a thread no live
	// node currently hosts. Role bodies observe it from Context.Send when
	// the hosting node is down; it clears once the peer directory learns a
	// live address again.
	ErrUnreachable = transport.ErrUnknownAddr
)

// AsSignalled extracts the SignalledError from err, if any.
func AsSignalled(err error) (*SignalledError, bool) {
	var se *SignalledError
	if errors.As(err, &se) {
		return se, true
	}
	return nil, false
}

// IsUndone reports whether err is an action outcome of µ: aborted with all
// effects undone.
func IsUndone(err error) bool { return core.IsUndone(err) }

// IsFailed reports whether err is an action outcome of ƒ: aborted with
// effects possibly not undone.
func IsFailed(err error) bool { return core.IsFailed(err) }
