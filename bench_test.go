package caaction_test

import (
	"testing"
	"time"

	"caaction"
	"caaction/experiments"
	"caaction/prodcell"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (§5) through the public API. Each benchmark iteration runs a
// complete deterministic simulation; the virtual execution time the paper
// reports is exposed as the "vsec" metric (virtual seconds), while ns/op
// measures the simulator itself.

// BenchmarkFig9Baseline is the §5.2 baseline point: Tmmax=0.2s, Tabo=0.1s,
// Treso=0.3s, 20 iterations — the paper reports 94.36 virtual seconds.
func BenchmarkFig9Baseline(b *testing.B) {
	b.ReportAllocs()
	var total time.Duration
	for i := 0; i < b.N; i++ {
		d, err := experiments.RunFig9Point(experiments.DefaultFig9())
		if err != nil {
			b.Fatal(err)
		}
		total = d
	}
	b.ReportMetric(total.Seconds(), "vsec")
}

func benchFig9(b *testing.B, mutate func(*experiments.Fig9Config)) {
	var total time.Duration
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig9()
		mutate(&cfg)
		d, err := experiments.RunFig9Point(cfg)
		if err != nil {
			b.Fatal(err)
		}
		total = d
	}
	b.ReportMetric(total.Seconds(), "vsec")
}

// Figure 9/10 sweep points: message passing below and above the knee,
// abortion and resolution costs.
func BenchmarkFig9TmmaxBelowKnee(b *testing.B) {
	b.ReportAllocs()
	benchFig9(b, func(c *experiments.Fig9Config) { c.Tmmax = 800 * time.Millisecond })
}

func BenchmarkFig9TmmaxAboveKnee(b *testing.B) {
	b.ReportAllocs()
	benchFig9(b, func(c *experiments.Fig9Config) { c.Tmmax = 2400 * time.Millisecond })
}

func BenchmarkFig9TaboHigh(b *testing.B) {
	b.ReportAllocs()
	benchFig9(b, func(c *experiments.Fig9Config) { c.Tabo = 2100 * time.Millisecond })
}

func BenchmarkFig9TresoHigh(b *testing.B) {
	b.ReportAllocs()
	benchFig9(b, func(c *experiments.Fig9Config) { c.Treso = 2300 * time.Millisecond })
}

// BenchmarkFig12 compares the paper's algorithm with the CR-86 model on the
// §5.3 scenario (three concurrent exceptions); the paper reports 9.15 s vs
// 11.77 s at Tmmax=1.0 s, Tres=0.3 s.
func benchFig12(b *testing.B, protocol caaction.ResolutionProtocol) {
	b.ReportAllocs()
	var total time.Duration
	for i := 0; i < b.N; i++ {
		d, err := experiments.RunFig12Point(experiments.Fig12Config{
			Tmmax: time.Second, Tres: 300 * time.Millisecond,
			Protocol: protocol,
		})
		if err != nil {
			b.Fatal(err)
		}
		total = d
	}
	b.ReportMetric(total.Seconds(), "vsec")
}

func BenchmarkFig12Coordinated(b *testing.B) { benchFig12(b, caaction.Coordinated) }
func BenchmarkFig12CR86(b *testing.B)        { benchFig12(b, caaction.CR86) }

// BenchmarkMessageComplexity measures experiment E3 (the §3.3.3 counts) for
// N=2..6; the msgs metric is the resolution-message total for the largest N
// in the all-raise scenario.
func benchMsgs(b *testing.B, protocol caaction.ResolutionProtocol) {
	b.ReportAllocs()
	var last int64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunMessageComplexity([]int{6})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Protocol == protocol.Name() && r.Scenario == "all" {
				last = r.Messages
			}
		}
	}
	b.ReportMetric(float64(last), "msgs")
}

func BenchmarkMessagesCoordinatedN6(b *testing.B) { benchMsgs(b, caaction.Coordinated) }
func BenchmarkMessagesCR86N6(b *testing.B)        { benchMsgs(b, caaction.CR86) }
func BenchmarkMessagesR96N6(b *testing.B)         { benchMsgs(b, caaction.R96) }

// BenchmarkSignalling measures experiment E4 (the §3.4 exchange) at N=6;
// worst case (undo round) is 2N(N−1) messages.
func BenchmarkSignallingN6(b *testing.B) {
	b.ReportAllocs()
	var worst int64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunSignalling([]int{6})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Messages > worst {
				worst = r.Messages
			}
		}
	}
	b.ReportMetric(float64(worst), "msgs")
}

// BenchmarkProductionCellCycle runs one full fault-free §4 production cycle
// (experiment E5): eight controller threads, four nesting levels, one forged
// plate delivered.
func BenchmarkProductionCellCycle(b *testing.B) {
	b.ReportAllocs()
	var vsec float64
	for i := 0; i < b.N; i++ {
		sys, err := caaction.New(
			caaction.WithVirtualTime(),
			caaction.WithSimTransport(time.Millisecond),
		)
		if err != nil {
			b.Fatal(err)
		}
		plant := prodcell.NewPlant(sys, prodcell.DefaultPlantConfig())
		ctl, err := prodcell.NewController(sys, plant, prodcell.DefaultControlConfig())
		if err != nil {
			b.Fatal(err)
		}
		rep := ctl.RunCycle()
		for th, err := range rep.Outcomes {
			if err != nil {
				b.Fatalf("%s: %v", th, err)
			}
		}
		vsec = sys.Now().Seconds()
	}
	b.ReportMetric(vsec, "vsec")
}

// BenchmarkLemma1 measures experiment E6 at nesting depth 3.
func BenchmarkLemma1Depth3(b *testing.B) {
	b.ReportAllocs()
	var measured time.Duration
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunLemma1([]int{3},
			200*time.Millisecond, 100*time.Millisecond, 300*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		measured = rows[0].Measured
	}
	b.ReportMetric(measured.Seconds(), "vsec")
}
