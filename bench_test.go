package caaction_test

import (
	"testing"
	"time"

	"caaction/internal/control"
	"caaction/internal/core"
	"caaction/internal/harness"
	"caaction/internal/prodcell"
	"caaction/internal/resolve"
	"caaction/internal/trace"
	"caaction/internal/transport"
	"caaction/internal/vclock"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (§5). Each benchmark iteration runs a complete deterministic
// simulation; the virtual execution time the paper reports is exposed as
// the "vsec" metric (virtual seconds), while ns/op measures the simulator
// itself.

// BenchmarkFig9Baseline is the §5.2 baseline point: Tmmax=0.2s, Tabo=0.1s,
// Treso=0.3s, 20 iterations — the paper reports 94.36 virtual seconds.
func BenchmarkFig9Baseline(b *testing.B) {
	var total time.Duration
	for i := 0; i < b.N; i++ {
		d, err := harness.RunFig9Point(harness.DefaultFig9())
		if err != nil {
			b.Fatal(err)
		}
		total = d
	}
	b.ReportMetric(total.Seconds(), "vsec")
}

func benchFig9(b *testing.B, mutate func(*harness.Fig9Config)) {
	var total time.Duration
	for i := 0; i < b.N; i++ {
		cfg := harness.DefaultFig9()
		mutate(&cfg)
		d, err := harness.RunFig9Point(cfg)
		if err != nil {
			b.Fatal(err)
		}
		total = d
	}
	b.ReportMetric(total.Seconds(), "vsec")
}

// Figure 9/10 sweep points: message passing below and above the knee,
// abortion and resolution costs.
func BenchmarkFig9TmmaxBelowKnee(b *testing.B) {
	benchFig9(b, func(c *harness.Fig9Config) { c.Tmmax = 800 * time.Millisecond })
}

func BenchmarkFig9TmmaxAboveKnee(b *testing.B) {
	benchFig9(b, func(c *harness.Fig9Config) { c.Tmmax = 2400 * time.Millisecond })
}

func BenchmarkFig9TaboHigh(b *testing.B) {
	benchFig9(b, func(c *harness.Fig9Config) { c.Tabo = 2100 * time.Millisecond })
}

func BenchmarkFig9TresoHigh(b *testing.B) {
	benchFig9(b, func(c *harness.Fig9Config) { c.Treso = 2300 * time.Millisecond })
}

// BenchmarkFig12 compares the paper's algorithm with the CR-86 model on the
// §5.3 scenario (three concurrent exceptions); the paper reports 9.15 s vs
// 11.77 s at Tmmax=1.0 s, Tres=0.3 s.
func BenchmarkFig12Coordinated(b *testing.B) {
	var total time.Duration
	for i := 0; i < b.N; i++ {
		d, err := harness.RunFig12Point(harness.Fig12Config{
			Tmmax: time.Second, Tres: 300 * time.Millisecond,
			Protocol: resolve.Coordinated{},
		})
		if err != nil {
			b.Fatal(err)
		}
		total = d
	}
	b.ReportMetric(total.Seconds(), "vsec")
}

func BenchmarkFig12CR86(b *testing.B) {
	var total time.Duration
	for i := 0; i < b.N; i++ {
		d, err := harness.RunFig12Point(harness.Fig12Config{
			Tmmax: time.Second, Tres: 300 * time.Millisecond,
			Protocol: resolve.CR86{},
		})
		if err != nil {
			b.Fatal(err)
		}
		total = d
	}
	b.ReportMetric(total.Seconds(), "vsec")
}

// BenchmarkMessageComplexity measures experiment E3 (the §3.3.3 counts) for
// N=2..6; the msgs metric is the resolution-message total for the largest N
// in the all-raise scenario.
func benchMsgs(b *testing.B, proto resolve.Protocol) {
	var last int64
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunMessageComplexity([]int{6})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Protocol == proto.Name() && r.Scenario == "all" {
				last = r.Messages
			}
		}
	}
	b.ReportMetric(float64(last), "msgs")
}

func BenchmarkMessagesCoordinatedN6(b *testing.B) { benchMsgs(b, resolve.Coordinated{}) }
func BenchmarkMessagesCR86N6(b *testing.B)        { benchMsgs(b, resolve.CR86{}) }
func BenchmarkMessagesR96N6(b *testing.B)         { benchMsgs(b, resolve.R96{}) }

// BenchmarkSignalling measures experiment E4 (the §3.4 exchange) at N=6;
// worst case (undo round) is 2N(N−1) messages.
func BenchmarkSignallingN6(b *testing.B) {
	var worst int64
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunSignalling([]int{6})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Messages > worst {
				worst = r.Messages
			}
		}
	}
	b.ReportMetric(float64(worst), "msgs")
}

// BenchmarkProductionCellCycle runs one full fault-free §4 production cycle
// (experiment E5): eight controller threads, four nesting levels, one forged
// plate delivered.
func BenchmarkProductionCellCycle(b *testing.B) {
	var vsec float64
	for i := 0; i < b.N; i++ {
		clk := vclock.NewVirtual()
		net := transport.NewSim(transport.SimConfig{
			Clock:   clk,
			Latency: transport.FixedLatency(time.Millisecond),
			Metrics: &trace.Metrics{},
		})
		rt, err := core.New(core.Config{Clock: clk, Network: net})
		if err != nil {
			b.Fatal(err)
		}
		plant := prodcell.New(clk, prodcell.DefaultConfig())
		ctl, err := control.New(rt, plant, control.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		rep := ctl.RunCycle()
		for th, err := range rep.Outcomes {
			if err != nil {
				b.Fatalf("%s: %v", th, err)
			}
		}
		vsec = clk.Now().Seconds()
	}
	b.ReportMetric(vsec, "vsec")
}

// BenchmarkLemma1 measures experiment E6 at nesting depth 3.
func BenchmarkLemma1Depth3(b *testing.B) {
	var measured time.Duration
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunLemma1([]int{3},
			200*time.Millisecond, 100*time.Millisecond, 300*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		measured = rows[0].Measured
	}
	b.ReportMetric(measured.Seconds(), "vsec")
}
