package caaction

import (
	"context"
	"errors"
	"sync"

	"caaction/internal/core"
	"caaction/internal/transport"
	"caaction/internal/vclock"
)

// daemonSpawner is the optional Clock extension the role-worker pool needs:
// resident goroutines that participate in time advancement but are excluded
// from Wait. Both built-in clocks implement it; a custom Clock that does not
// silently disables the pool (StartAction falls back to a goroutine per
// role).
type daemonSpawner interface {
	GoDaemon(fn func())
}

// rolePool is the bounded worker pool behind WithWorkers: a fixed set of
// resident role workers replaces the goroutine-per-role lifecycle of
// StartAction, so sustained action churn reuses warm stacks instead of
// paying goroutine creation, stack growth and teardown per role.
//
// Dispatch is a NON-BLOCKING all-or-nothing acquisition of one worker per
// role: either every role of the action gets an idle worker immediately,
// or the grab rolls back and the whole action falls back to the
// goroutine-per-role path. StartAction therefore never blocks on the pool,
// which rules out the classic pool deadlocks outright — no action can hold
// a partial worker set while waiting for more (the entry barrier needs all
// roles running), and a role body that itself starts and waits on another
// action cannot wedge workers waiting for workers. Under saturation the
// pool degrades to exactly the pre-pool lifecycle instead of queueing.
type rolePool struct {
	size    int
	freeQ   *vclock.Queue // idle *roleWorker, fed back by the workers
	workers []*roleWorker
}

type roleWorker struct {
	tasks *vclock.Queue // capacity-1 mailbox; daemon-marked clock wait
}

// newRolePool starts size resident workers on daemon goroutines. It returns
// nil when the clock cannot host daemons (custom Clock implementations).
func newRolePool(clock Clock, size int) *rolePool {
	ds, ok := clock.(daemonSpawner)
	if !ok {
		return nil
	}
	p := &rolePool{
		size:    size,
		freeQ:   clock.NewQueue(),
		workers: make([]*roleWorker, 0, size),
	}
	for i := 0; i < size; i++ {
		w := &roleWorker{tasks: clock.NewQueue()}
		// An idle worker parked in its mailbox is infrastructure: under the
		// virtual clock it must count as idle, not deadlocked.
		w.tasks.SetDaemon()
		p.workers = append(p.workers, w)
		p.freeQ.Put(w)
		ds.GoDaemon(func() { w.loop(p) })
	}
	return p
}

func (w *roleWorker) loop(p *rolePool) {
	for {
		x, ok := w.tasks.Get()
		if !ok {
			return // pool shut down
		}
		x.(*roleTask).run()
		// Re-offer ourselves only after the role fully finished, so an
		// acquired worker is always genuinely free. On shutdown the put is
		// dropped and the next Get observes the closed mailbox.
		p.freeQ.Put(w)
	}
}

// acquire obtains n idle workers all-or-nothing without blocking, appending
// them to ws (a caller-provided scratch slice, typically backed by a stack
// array). ok is false when the pool lacks n idle workers right now or has
// shut down; any partial grab is rolled back and the caller owns no
// workers — it must run the action's roles on plain goroutines instead.
func (p *rolePool) acquire(n int, ws []*roleWorker) (_ []*roleWorker, ok bool) {
	for i := 0; i < n; i++ {
		x, ok := p.freeQ.TryGet()
		if !ok {
			for _, w := range ws {
				p.freeQ.Put(w)
			}
			return ws[:0], false
		}
		ws = append(ws, x.(*roleWorker))
	}
	return ws, true
}

// close shuts the pool down: idle workers exit, and busy workers exit after
// finishing their current role. In-flight dispatches racing the close are
// caught by the mailbox PutOpen check in StartAction.
func (p *rolePool) close() {
	p.freeQ.Close()
	for _, w := range p.workers {
		w.tasks.Close()
	}
}

// roleTask carries one role execution to a pooled worker; recycled through
// roleTaskPool so sustained churn allocates no task boxes.
type roleTask struct {
	h         *ActionHandle
	ctx       context.Context
	spec      *Spec
	role      string
	roleIdx   int
	prog      RoleProgram
	th        *core.Thread
	ep        transport.Endpoint
	recycleEP bool
}

var roleTaskPool = sync.Pool{New: func() any { return new(roleTask) }}

// run executes one role to completion: the same lifecycle the per-role
// goroutine path runs, plus recycling of the thread, the virtual endpoint
// and the task box itself.
//
// The outcome is recorded (h.finish) BEFORE the thread closes its mux
// endpoint. Workers are daemon goroutines excluded from System.Wait, so for
// untracked callers Wait is bounded by the mux pumps instead — and a pump
// only exits after the instance endpoints close. Finishing first makes
// "System.Wait, then read Results" sound: by the time the last pump exits,
// every role's outcome is already recorded.
func (t *roleTask) run() {
	err := t.th.Perform(t.spec, t.role, t.prog)
	if t.h.cancelled.Load() && errors.Is(err, ErrThreadStopped) {
		err = &cancelledError{spec: t.spec.Name, role: t.role, cause: context.Cause(t.ctx)}
	}
	t.h.finish(t.roleIdx, err)
	_ = t.th.Close() // GC: deregister the instance from the mux
	t.th.Recycle()
	if t.recycleEP {
		transport.RecycleEndpoint(t.ep)
	}
	*t = roleTask{}
	roleTaskPool.Put(t)
}
