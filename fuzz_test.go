package caaction_test

import (
	"strings"
	"testing"

	"caaction"
	"caaction/prodcell"
)

// FuzzParseGraph fuzzes the exception-graph parser with the round-trip
// property: any text ParseGraph accepts must serialize (Graph.String) back
// into text that re-parses to the same canonical form — and parsing must
// never panic on arbitrary input. The seed corpus starts from the paper's
// Figure 7 graph.
func FuzzParseGraph(f *testing.F) {
	f.Add(prodcell.MoveLoadedTableGraph().String())
	f.Add("graph g\nuniversal: a, b\n")
	f.Add("universal\n")
	f.Add("a: b\nb: c\n!auto-universal\n")
	f.Add("# comment\ngraph Move_Loaded_Table\nuniversal: x\n")
	f.Add("dual: vm_stop, rm_stop\nuniversal: dual, other\n")
	f.Add("graph\n")
	f.Add(":\n")
	f.Add("a: a\n")
	f.Add("x y z\n")

	f.Fuzz(func(t *testing.T, text string) {
		g, err := caaction.ParseGraph(strings.NewReader(text))
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		canon := g.String()
		g2, err := caaction.ParseGraph(strings.NewReader(canon))
		if err != nil {
			t.Fatalf("re-parse of serialized graph failed: %v\ninput:\n%q\nserialized:\n%q",
				err, text, canon)
		}
		if got := g2.String(); got != canon {
			t.Fatalf("round-trip not stable:\nfirst:\n%q\nsecond:\n%q\ninput:\n%q",
				canon, got, text)
		}
		if g2.Len() != g.Len() || g2.Root() != g.Root() {
			t.Fatalf("round-trip changed shape: %d/%s vs %d/%s",
				g.Len(), g.Root(), g2.Len(), g2.Root())
		}
	})
}
