package caaction

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"caaction/internal/core"
)

// Thread is one participating execution thread of the distributed system. A
// Thread is confined to one goroutine: all its methods, and all Context
// methods handed to its bodies and handlers, must be called from that
// goroutine (under virtual time, one started with System.Go).
type Thread struct {
	sys   *System
	inner *core.Thread
}

// Thread creates a thread with its own transport endpoint bound to id.
// After Drain (or Close) has begun, Thread refuses with ErrDraining (then
// ErrSystemClosed once Close completes). While the WithMaxInFlight
// admission budget is exhausted, Thread fast-rejects with a typed
// *OverloadedError (matching ErrOverloaded); raw threads consume no action
// budget themselves, but new entry points are refused while the system is
// saturated so both start paths shed load uniformly.
func (s *System) Thread(id string) (*Thread, error) {
	if s.closed.Load() {
		return nil, ErrSystemClosed
	}
	if s.draining.Load() {
		return nil, ErrDraining
	}
	if s.overloaded() {
		s.rejected.Add(1)
		return nil, &OverloadedError{Limit: s.maxInFlight}
	}
	inner, err := s.rt.NewThread(id)
	if err != nil {
		return nil, err
	}
	return &Thread{sys: s, inner: inner}, nil
}

// ID returns the thread identifier.
func (t *Thread) ID() string { return t.inner.ID() }

// Close releases the thread's endpoint. A thread blocked in an action
// observes ErrThreadStopped.
func (t *Thread) Close() error { return t.inner.Close() }

// Perform executes a top-level CA action: this thread plays the given role
// of spec, synchronising with the threads bound to the other roles. It
// returns nil when the action exits successfully, or a *SignalledError
// (matching ErrSignalled, inspectable with AsSignalled/errors.As) carrying
// the exception this role signalled — an application ε, Undo (µ) or
// Failure (ƒ).
//
// Cancelling ctx maps onto the runtime's cooperative interrupt path: the
// thread's endpoint is closed, every blocking Context operation inside the
// role observes the stop and unwinds, and Perform returns an error matching
// both ErrThreadStopped and ctx's cause (context.Canceled or
// context.DeadlineExceeded). The thread cannot be reused afterwards.
// Cancellation is inherently a wall-clock event; under the deterministic
// virtual clock it still works but makes the run timing-dependent.
func (t *Thread) Perform(ctx context.Context, spec *Spec, role string, prog RoleProgram) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("caaction: %s/%s not started: %w", spec.Name, role, context.Cause(ctx))
	}
	// A ctx deadline propagates into the runtime's protocol waits (see
	// StartAction); cleared when this ctx carries none, so a reused thread
	// never inherits a stale deadline from an earlier Perform.
	if dl, ok := ctx.Deadline(); ok {
		t.inner.SetDeadline(t.sys.clock.Now() + time.Until(dl))
	} else {
		t.inner.SetDeadline(0)
	}
	if ctx.Done() == nil {
		return t.inner.Perform(spec, role, prog)
	}

	done := make(chan struct{})
	var cancelled atomic.Bool
	go func() {
		select {
		case <-ctx.Done():
			cancelled.Store(true)
			_ = t.inner.Close()
		case <-done:
		}
	}()
	err := t.inner.Perform(spec, role, prog)
	close(done)
	if cancelled.Load() && errors.Is(err, ErrThreadStopped) {
		return &cancelledError{spec: spec.Name, role: role, cause: context.Cause(ctx)}
	}
	return err
}

// cancelledError reports a Perform unwound by context cancellation; it
// matches ErrThreadStopped (the mechanism) and the context cause (the
// reason) under errors.Is.
type cancelledError struct {
	spec, role string
	cause      error
}

func (e *cancelledError) Error() string {
	return fmt.Sprintf("caaction: %s/%s interrupted: %v", e.spec, e.role, e.cause)
}

func (e *cancelledError) Unwrap() []error { return []error{ErrThreadStopped, e.cause} }
