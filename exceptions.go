package caaction

import (
	"io"

	"caaction/internal/except"
)

// Exception identifies one exception within an action's exception context
// (the paper's e ∈ E). IDs are compared literally; NoException is the
// paper's φ.
type Exception = except.ID

// Raised is one occurrence of an exception inside an action: its identifier
// plus the raising thread, diagnostic detail and timestamp.
type Raised = except.Raised

// Reserved exception identifiers from the paper's model (§3.1–3.2).
const (
	// NoException is φ: the absence of an exception to signal.
	NoException = except.None
	// UniversalException is the root exception present in every graph.
	UniversalException = except.Universal
	// Undo is µ: the action was aborted and all its effects were undone.
	Undo = except.Undo
	// Failure is ƒ: the action was aborted but its effects may not have
	// been undone completely.
	Failure = except.Failure
	// Abortion is raised inside a nested action when its enclosing action
	// requires it to abort.
	Abortion = except.Abortion
)

// IsInterfaceException reports whether id is one of the pre-defined
// interface exceptions (µ, ƒ) that require final-stage coordination.
func IsInterfaceException(id Exception) bool { return except.IsInterface(id) }

// ExceptionsOf extracts the distinct exception IDs from a set of raised
// instances, sorted for determinism.
func ExceptionsOf(raised []Raised) []Exception { return except.IDsOf(raised) }

// Graph is an immutable exception graph G(E, R): nodes are exceptions and a
// directed edge (parent, child) means the parent covers the child.
// Concurrently raised exceptions resolve to the node with the smallest cover
// set containing all of them.
type Graph = except.Graph

// GraphBuilder accumulates nodes and cover edges for a Graph; see NewGraph.
type GraphBuilder = except.Builder

// NewGraph returns a builder for an exception graph with the given name
// (typically the owning CA action's name). Most callers can skip explicit
// graphs entirely: SpecBuilder builds one from its Exception and Cover
// declarations.
func NewGraph(name string) *GraphBuilder { return except.NewBuilder(name) }

// ParseGraph reads a graph in the paper's declaration syntax: one
// "er: e1, e2, ..." line per cover relationship, '#' comments, an optional
// "graph NAME" header and an optional "!auto-universal" directive.
func ParseGraph(r io.Reader) (*Graph, error) { return except.Parse(r) }

// GraphOption customises GenerateFullGraph.
type GraphOption = except.GenerateOption

// MaxLevel caps the height of a generated graph.
func MaxLevel(l int) GraphOption { return except.MaxLevel(l) }

// ExcludeCombinations drops generated nodes whose member set matches pred.
func ExcludeCombinations(pred func(members []Exception) bool) GraphOption {
	return except.Exclude(pred)
}

// GenerateFullGraph builds the complete lattice over the given primitive
// exceptions — every combination becomes a resolving node — as used by the
// paper's complexity experiments.
func GenerateFullGraph(name string, primitives []Exception, opts ...GraphOption) (*Graph, error) {
	return except.GenerateFull(name, primitives, opts...)
}
