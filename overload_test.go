package caaction_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"caaction"
)

// TestOverloadedErrorIdentity pins the typed-rejection contract: every
// admission refusal is a *OverloadedError matching ErrOverloaded under
// errors.Is and recoverable with errors.As, carrying the budget that
// refused (and the tenant, for per-tenant refusals).
func TestOverloadedErrorIdentity(t *testing.T) {
	global := &caaction.OverloadedError{Limit: 3}
	if !errors.Is(global, caaction.ErrOverloaded) {
		t.Fatal("errors.Is(global refusal, ErrOverloaded) = false")
	}
	tenant := &caaction.OverloadedError{Limit: 1, Tenant: "acme"}
	if !errors.Is(tenant, caaction.ErrOverloaded) {
		t.Fatal("errors.Is(tenant refusal, ErrOverloaded) = false")
	}
	var oe *caaction.OverloadedError
	if !errors.As(fmtWrap(tenant), &oe) || oe.Limit != 1 || oe.Tenant != "acme" {
		t.Fatalf("errors.As recovered %+v", oe)
	}
	if !strings.Contains(tenant.Error(), "acme") {
		t.Fatalf("tenant refusal message %q does not name the tenant", tenant.Error())
	}
}

func fmtWrap(err error) error { return errors.Join(errors.New("outer"), err) }

// gatedAction starts a one-role action whose body blocks on the returned
// channel, then finishes with the error fin returns.
func gatedAction(t *testing.T, sys *caaction.System, thread string, fin func(*caaction.Context) error) (*caaction.ActionHandle, chan struct{}) {
	t.Helper()
	spec, err := caaction.NewSpec("gated").Role("only", thread).Exception("boom").Build()
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	h, err := sys.StartAction(context.Background(), spec, map[string]caaction.RoleProgram{
		"only": {Body: func(ctx *caaction.Context) error {
			<-gate
			return fin(ctx)
		}},
	})
	if err != nil {
		t.Fatalf("gated action did not start: %v", err)
	}
	return h, gate
}

// waitAdmitted polls StartAction until the admission budget readmits,
// proving the previous occupant released its slot.
func waitAdmitted(t *testing.T, sys *caaction.System, thread string) {
	t.Helper()
	spec, err := caaction.NewSpec("probe").Role("only", thread).Build()
	if err != nil {
		t.Fatal(err)
	}
	progs := map[string]caaction.RoleProgram{
		"only": {Body: func(ctx *caaction.Context) error { return nil }},
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		h, err := sys.StartAction(context.Background(), spec, progs)
		if err == nil {
			h.WaitDone()
			return
		}
		if !errors.Is(err, caaction.ErrOverloaded) {
			t.Fatalf("probe start: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("budget never released")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionBudgetReleasedOnEveryOutcome exhausts a WithMaxInFlight(1)
// budget with one in-flight action per outcome shape — clean commit,
// exceptional signal, plain body error — and checks that (a) the next
// start is refused with the typed overload error and (b) the slot is
// released once the occupant finishes, whatever way it finished.
func TestAdmissionBudgetReleasedOnEveryOutcome(t *testing.T) {
	outcomes := []struct {
		name string
		fin  func(*caaction.Context) error
	}{
		{"commit", func(ctx *caaction.Context) error { return nil }},
		{"signal", func(ctx *caaction.Context) error { return ctx.Raise("boom", "overload test") }},
		{"error", func(ctx *caaction.Context) error { return errors.New("body failure") }},
	}
	for _, tc := range outcomes {
		t.Run(tc.name, func(t *testing.T) {
			sys, err := caaction.New(caaction.WithRealTime(), caaction.WithMaxInFlight(1))
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = sys.Close() }()

			h, gate := gatedAction(t, sys, "T1", tc.fin)
			// Budget exhausted: a second start and a raw thread both refuse.
			_, err = sys.StartAction(context.Background(), soloSpec(t, "T2"), map[string]caaction.RoleProgram{
				"only": {Body: func(ctx *caaction.Context) error { return nil }},
			})
			var oe *caaction.OverloadedError
			if !errors.Is(err, caaction.ErrOverloaded) || !errors.As(err, &oe) || oe.Limit != 1 {
				t.Fatalf("start past budget = %v, want *OverloadedError{Limit: 1}", err)
			}
			if _, err := sys.Thread("T3"); !errors.Is(err, caaction.ErrOverloaded) {
				t.Fatalf("Thread past budget = %v, want ErrOverloaded", err)
			}

			close(gate)
			h.WaitDone()
			waitAdmitted(t, sys, "T2")
		})
	}
}

// TestAdmissionBudgetReleasedOnCancel is the ctx-cancel leg: an action
// unwound by context cancellation must release its admission slot like any
// other outcome.
func TestAdmissionBudgetReleasedOnCancel(t *testing.T) {
	sys, err := caaction.New(caaction.WithRealTime(), caaction.WithMaxInFlight(1))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()

	ctx, cancel := context.WithCancel(context.Background())
	h, err := sys.StartAction(ctx, soloSpec(t, "T1"), map[string]caaction.RoleProgram{
		// Compute is a cooperative wait: the cancellation's interrupt path
		// unwinds it long before the hour passes.
		"only": {Body: func(c *caaction.Context) error { return c.Compute(time.Hour) }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.StartAction(context.Background(), soloSpec(t, "T2"), map[string]caaction.RoleProgram{
		"only": {Body: func(c *caaction.Context) error { return nil }},
	}); !errors.Is(err, caaction.ErrOverloaded) {
		t.Fatalf("start past budget = %v, want ErrOverloaded", err)
	}

	cancel()
	h.WaitDone()
	if h.Err() == nil {
		t.Fatal("cancelled action reported success")
	}
	waitAdmitted(t, sys, "T2")
}

// TestTenantBudget pins per-tenant fairness: with a global budget of 4 and
// a tenant budget of 1, a tenant at its cap is refused — with the tenant
// named in the typed error — while another tenant is still admitted.
func TestTenantBudget(t *testing.T) {
	sys, err := caaction.New(caaction.WithRealTime(),
		caaction.WithMaxInFlight(4), caaction.WithTenantBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()

	spec := soloSpec(t, "T1")
	gate := make(chan struct{})
	blocked := map[string]caaction.RoleProgram{
		"only": {Body: func(ctx *caaction.Context) error { <-gate; return nil }},
	}
	ha, err := sys.StartAction(context.Background(), spec, blocked, caaction.WithTenant("acme"))
	if err != nil {
		t.Fatal(err)
	}

	_, err = sys.StartAction(context.Background(), soloSpec(t, "T2"), blocked, caaction.WithTenant("acme"))
	var oe *caaction.OverloadedError
	if !errors.As(err, &oe) || oe.Tenant != "acme" || oe.Limit != 1 {
		t.Fatalf("same-tenant start past budget = %v, want tenant-typed refusal", err)
	}

	hb, err := sys.StartAction(context.Background(), soloSpec(t, "T3"), blocked, caaction.WithTenant("globex"))
	if err != nil {
		t.Fatalf("other tenant refused: %v", err)
	}

	close(gate)
	ha.WaitDone()
	hb.WaitDone()
	// acme's slot released: the tenant can start again.
	waitAdmittedTenant(t, sys, "T2", "acme")
}

func waitAdmittedTenant(t *testing.T, sys *caaction.System, thread, tenant string) {
	t.Helper()
	spec, err := caaction.NewSpec("probe").Role("only", thread).Build()
	if err != nil {
		t.Fatal(err)
	}
	progs := map[string]caaction.RoleProgram{
		"only": {Body: func(ctx *caaction.Context) error { return nil }},
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		h, err := sys.StartAction(context.Background(), spec, progs, caaction.WithTenant(tenant))
		if err == nil {
			h.WaitDone()
			return
		}
		if !errors.Is(err, caaction.ErrOverloaded) {
			t.Fatalf("tenant probe start: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("tenant budget never released")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDeadlinePropagationReleasesBudget runs under the deterministic
// virtual clock: a ctx deadline propagates into the runtime, so a role
// computing far past it unwinds at the deadline instead of holding its
// admission slot for the full computation — the doomed action aborts,
// records an action.deadline_aborts tick, and the budget readmits. As
// everywhere under the virtual clock, the blocking handle waits run on a
// tracked driver goroutine (sys.Go), never on the untracked test main.
func TestDeadlinePropagationReleasesBudget(t *testing.T) {
	metrics := &caaction.Metrics{}
	sys, err := caaction.New(caaction.WithMaxInFlight(1), caaction.WithMetrics(metrics))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	spec := soloSpec(t, "T1")
	var herr error
	started := errors.New("driver never ran")
	sys.Go(func() {
		h, err := sys.StartAction(ctx, spec, map[string]caaction.RoleProgram{
			// An hour of virtual compute: without deadline propagation this
			// holds the only admission slot for a (virtual) hour.
			"only": {Body: func(c *caaction.Context) error { return c.Compute(time.Hour) }},
		})
		started = err
		if err != nil {
			return
		}
		h.WaitDone()
		herr = h.Err()
	})
	sys.Wait()
	if started != nil {
		t.Fatalf("StartAction: %v", started)
	}
	if herr == nil {
		t.Fatal("deadlined action reported success")
	}
	if !errors.Is(herr, caaction.ErrDeadline) && !errors.Is(herr, context.DeadlineExceeded) && !caaction.IsFailed(herr) {
		t.Fatalf("deadlined outcome = %v, want a deadline-typed or ƒ error", herr)
	}
	if got := metrics.Get("action.deadline_aborts"); got == 0 {
		t.Error("action.deadline_aborts = 0, want at least one tick")
	}

	// The slot must be free the moment the doomed action's roles finished
	// (sys.Wait ran their deferred releases): one probe start must succeed.
	probe := soloSpec(t, "T2")
	probeErr := errors.New("probe never ran")
	sys.Go(func() {
		h, err := sys.StartAction(context.Background(), probe, map[string]caaction.RoleProgram{
			"only": {Body: func(c *caaction.Context) error { return nil }},
		})
		if err != nil {
			probeErr = err
			return
		}
		h.WaitDone()
		probeErr = h.Err()
	})
	sys.Wait()
	if probeErr != nil {
		t.Fatalf("budget not released after deadline abort: %v", probeErr)
	}
}

// TestExpiredDeadlineRefusedUpFront: a ctx already past its deadline is
// refused before consuming any budget.
func TestExpiredDeadlineRefusedUpFront(t *testing.T) {
	sys, err := caaction.New(caaction.WithRealTime(), caaction.WithMaxInFlight(1))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err = sys.StartAction(ctx, soloSpec(t, "T1"), map[string]caaction.RoleProgram{
		"only": {Body: func(c *caaction.Context) error { return nil }},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("start with expired deadline = %v, want DeadlineExceeded", err)
	}
	waitAdmitted(t, sys, "T1")
}

// TestMetricsEndpoint serves the interned counter registry over HTTP in
// the Prometheus text format and checks a known counter appears with the
// caaction_ prefix and sanitized name.
func TestMetricsEndpoint(t *testing.T) {
	sys, err := caaction.New(caaction.WithRealTime(), caaction.WithMetricsAddr("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	addr := sys.MetricsAddr()
	if addr == "" {
		t.Fatal("MetricsAddr empty after WithMetricsAddr")
	}

	h, err := sys.StartAction(context.Background(), soloSpec(t, "T1"), map[string]caaction.RoleProgram{
		"only": {Body: func(c *caaction.Context) error { return nil }},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.WaitDone()

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	text := string(body)
	if !strings.Contains(text, "# TYPE caaction_action_entries counter") ||
		!strings.Contains(text, "caaction_action_entries ") {
		t.Fatalf("scrape missing caaction_action_entries:\n%s", text)
	}
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, ".") && !strings.HasPrefix(line, "#") && line != "" {
			t.Fatalf("unsanitized metric line %q", line)
		}
	}
}
