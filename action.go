package caaction

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"caaction/internal/core"
	"caaction/internal/transport"
	"caaction/internal/vclock"
)

// ErrSystemClosed reports an operation on a System after Close.
var ErrSystemClosed = errors.New("caaction: system closed")

// ErrDraining reports an operation refused because the System has begun a
// graceful shutdown: Drain (or Close) was called, new actions and threads
// are no longer admitted, and in-flight actions are running to completion.
// Callers distinguishing "retry elsewhere" from "gone for good" should
// check ErrDraining before ErrSystemClosed.
var ErrDraining = errors.New("caaction: system draining")

// ActionHandle tracks one concurrent CA-action instance started with
// System.StartAction: which roles are still running, and each role's
// outcome once it finishes.
type ActionHandle struct {
	id    string
	roles []string

	done      chan struct{} // closed when every role has finished
	cancelled atomic.Bool
	clock     Clock

	mu      sync.Mutex
	pending int
	// outcomes is indexed like roles: one slot per role, filled as roles
	// finish. A slice (instead of the map the handle once carried) keeps
	// per-action bookkeeping to a single small allocation on the
	// StartAction hot path; Results still materialises the map view on
	// demand.
	outcomes []roleOutcome
	// doneQ is the clock-integrated completion signal for Wait under
	// virtual time; real-time systems wait on the done channel instead, so
	// the queue (and its condition variable) is only allocated when a
	// virtual-time system starts the action. Created under mu; finish reads
	// it under mu before closing it.
	doneQ *vclock.Queue
	// sys and tenant route the handle back into the System's in-flight
	// accounting (Drain and the admission budgets): the last role to finish
	// releases exactly the budget beginAction charged.
	sys    *System
	tenant string
}

type roleOutcome struct {
	err      error
	finished bool
}

// ID returns the instance tag assigned to this action — the prefix of every
// action identifier the instance puts on the wire.
func (h *ActionHandle) ID() string { return h.id }

// Roles returns the action's role names in spec order.
func (h *ActionHandle) Roles() []string { return append([]string(nil), h.roles...) }

// Done reports whether every role has finished.
func (h *ActionHandle) Done() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.pending == 0
}

// Wait blocks until every role of the action has finished and returns the
// per-role outcomes (nil for success, a *SignalledError for an exceptional
// exit, or another error). Callers that do not need the map view should
// prefer WaitDone plus Each, which allocate nothing.
//
// Wait is clock-integrated: under virtual time it must be called from a
// goroutine the clock tracks (one started with System.Go) — for example a
// load driver that starts actions and waits for them. Untracked goroutines
// (a test's main goroutine) should instead call System.Wait and then read
// Results.
func (h *ActionHandle) Wait() map[string]error {
	h.WaitDone()
	return h.Results()
}

// WaitDone blocks until every role of the action has finished, with the
// same clock-integration contract as Wait, allocating nothing on real-time
// systems. Inspect outcomes afterwards with Each, Err or Results.
func (h *ActionHandle) WaitDone() {
	if h.clock == nil {
		// Real-time system: a plain channel wait needs no clock
		// integration, and skipping the queue saves its allocation on
		// every action of a high-churn workload.
		<-h.done
		return
	}
	for {
		h.mu.Lock()
		finished := h.pending == 0
		q := h.doneQ
		if !finished && q == nil {
			// Lazily created on the first Wait: actions nobody waits on
			// never pay for the queue. finish reads it under mu, so the
			// close cannot be missed.
			q = h.clock.NewQueue()
			h.doneQ = q
		}
		h.mu.Unlock()
		if finished {
			return
		}
		// The queue closes when the last role finishes, so this wakes
		// exactly then; intermediate completions put nothing.
		if _, ok := q.Get(); !ok {
			return
		}
	}
}

// Results returns a snapshot of the per-role outcomes recorded so far; after
// Done (or Wait) it is the action's complete outcome map.
func (h *ActionHandle) Results() map[string]error {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]error, len(h.roles))
	for i, o := range h.outcomes {
		if o.finished {
			out[h.roles[i]] = o.err
		}
	}
	return out
}

// Each calls fn with every finished role's outcome, in spec role order,
// without allocating. fn runs under the handle's lock and must not call
// back into the handle.
func (h *ActionHandle) Each(fn func(role string, err error)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, o := range h.outcomes {
		if o.finished {
			fn(h.roles[i], o.err)
		}
	}
}

// Err joins the non-nil role outcomes in role order (nil when every role
// succeeded). Call after Done or Wait.
func (h *ActionHandle) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	var errs []error
	for i, o := range h.outcomes {
		if o.finished && o.err != nil {
			errs = append(errs, fmt.Errorf("role %s: %w", h.roles[i], o.err))
		}
	}
	return errors.Join(errs...)
}

func (h *ActionHandle) finish(idx int, err error) {
	h.mu.Lock()
	h.outcomes[idx] = roleOutcome{err: err, finished: true}
	h.pending--
	last := h.pending == 0
	q := h.doneQ
	h.mu.Unlock()
	if last {
		close(h.done)
		if q != nil {
			q.Close()
		}
		if h.sys != nil {
			h.sys.endAction(h.tenant)
		}
	}
}

// StartOption tunes one StartAction/StartTagged call; see WithTenant.
type StartOption func(*startConfig)

type startConfig struct {
	tenant string
}

// WithTenant attributes the started action to the named tenant for
// per-tenant admission budgeting (WithTenantBudget). Actions started
// without WithTenant share the "" tenant. The tenant has no effect on the
// wire or on resolution — it exists purely so admission control can refuse
// a noisy workload without starving the others.
func WithTenant(name string) StartOption {
	return func(c *startConfig) { c.tenant = name }
}

// StartAction runs one CA-action instance concurrently with any number of
// others on the same System: every role of spec gets its own goroutine
// (started with System.Go, so virtual time keeps working) and its own
// virtual endpoint demultiplexed from the shared per-thread transport
// endpoints, and the instance is garbage-collected from the demultiplexer
// when its last role finishes. progs must supply a RoleProgram with a Body
// for every role of the spec.
//
// Action identifiers of the instance are tagged with a fresh instance tag
// (ActionHandle.ID), which is what keeps concurrent instances of the same
// spec — same action names, same thread bindings — separate on the wire.
// The single-action path (System.Thread + Perform) remains the untagged
// N=1 case of the same machinery and may run alongside StartAction
// instances, provided raw threads and specs use disjoint thread addresses.
//
// Cancelling ctx closes the instance's endpoints: every role unwinds
// through the cooperative interrupt path and reports an error matching both
// ErrThreadStopped and the context cause. A ctx deadline additionally
// propagates into the runtime's signal and resolution timing: protocol
// waits are clamped to the deadline, so a doomed action aborts (releasing
// its admission budget) with an outcome matching ErrDeadline and
// context.DeadlineExceeded instead of blocking past it.
//
// Under admission control (WithMaxInFlight, WithTenantBudget) a start over
// budget fast-rejects with a typed *OverloadedError matching ErrOverloaded.
func (s *System) StartAction(ctx context.Context, spec *Spec, progs map[string]RoleProgram, opts ...StartOption) (*ActionHandle, error) {
	tag := "a" + strconv.FormatInt(s.actionSeq.Add(1), 10)
	return s.startAction(ctx, tag, spec, progs, opts)
}

// StartTagged is StartAction with a caller-assigned instance tag. Tags
// exist for multi-process deployments (WithCluster): every node hosting
// roles of one logical action instance must put the SAME tag on the wire,
// so a coordinator — the cluster workload driver — picks the tag and hands
// it to each node, which starts just its locally-placed roles. The tag
// must be unique among instances whose lifetimes overlap and must not
// contain the id metacharacters '!', '/' or '#'. On a cluster node, progs
// need only cover the locally-placed roles (remote entries are ignored);
// on a non-cluster system StartTagged behaves exactly like StartAction.
func (s *System) StartTagged(ctx context.Context, tag string, spec *Spec, progs map[string]RoleProgram, opts ...StartOption) (*ActionHandle, error) {
	if tag == "" {
		return nil, fmt.Errorf("caaction: StartTagged: empty instance tag")
	}
	if strings.ContainsAny(tag, "!/#") {
		return nil, fmt.Errorf("caaction: StartTagged: tag %q contains an id metacharacter ('!', '/' or '#')", tag)
	}
	return s.startAction(ctx, tag, spec, progs, opts)
}

func (s *System) startAction(ctx context.Context, tag string, spec *Spec, progs map[string]RoleProgram, opts []StartOption) (*ActionHandle, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.closed.Load() {
		return nil, ErrSystemClosed
	}
	if spec == nil {
		return nil, fmt.Errorf("caaction: StartAction: nil spec")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	for role := range progs {
		if _, ok := spec.ThreadFor(role); !ok {
			return nil, fmt.Errorf("%w: %q in %s", ErrUnknownRole, role, spec.Name)
		}
	}
	// On a cluster node only the locally-placed roles run here; the other
	// nodes of the cluster start the rest under the same tag. Everywhere
	// else every role is local.
	local := make([]Role, 0, len(spec.Roles))
	for _, r := range spec.Roles {
		if s.clusterLocal != nil && !s.clusterLocal(r.Thread) {
			continue
		}
		local = append(local, r)
	}
	if len(local) == 0 {
		return nil, fmt.Errorf("caaction: StartAction %s: no roles are placed on this node", spec.Name)
	}
	for _, r := range local {
		if p, ok := progs[r.Name]; !ok || p.Body == nil {
			return nil, fmt.Errorf("%w: %s/%s", ErrBodyRequired, spec.Name, r.Name)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("caaction: %s not started: %w", spec.Name, context.Cause(ctx))
	}
	var sc startConfig
	for _, opt := range opts {
		opt(&sc)
	}
	// A ctx deadline propagates into the runtime as an absolute clock time:
	// each role thread clamps its protocol and Context waits to it, so a
	// doomed action unwinds (releasing its budget) instead of blocking past
	// the point its caller stopped caring. Computed once, before admission,
	// so every role shares one deadline.
	var coreDeadline time.Duration
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		if remaining <= 0 {
			return nil, fmt.Errorf("caaction: %s not started: %w", spec.Name, context.DeadlineExceeded)
		}
		coreDeadline = s.clock.Now() + remaining
	}
	if err := s.beginAction(sc.tenant); err != nil {
		return nil, err
	}

	mux := s.muxNet()
	type roleThread struct {
		role string
		th   *core.Thread
		ep   transport.Endpoint
	}
	rts := make([]roleThread, 0, len(local))
	for _, r := range local {
		ep, err := mux.Open(tag, r.Thread)
		if err != nil {
			for _, x := range rts {
				_ = x.ep.Close()
			}
			s.endAction(sc.tenant)
			if s.draining.Load() {
				// The mux (or transport) closed under us because shutdown
				// began after admission; report the typed refusal rather
				// than a bare transport error.
				return nil, fmt.Errorf("caaction: StartAction %s: %w", spec.Name, ErrDraining)
			}
			return nil, fmt.Errorf("caaction: StartAction %s: %w", spec.Name, err)
		}
		th := s.rt.NewThreadOn(r.Thread, ep, tag)
		if coreDeadline > 0 {
			th.SetDeadline(coreDeadline)
		}
		rts = append(rts, roleThread{r.Name, th, ep})
	}

	h := &ActionHandle{
		id:       tag,
		done:     make(chan struct{}),
		clock:    s.waitClock(),
		pending:  len(rts),
		outcomes: make([]roleOutcome, len(rts)),
		roles:    make([]string, 0, len(rts)),
		sys:      s,
		tenant:   sc.tenant,
	}
	for _, x := range rts {
		h.roles = append(h.roles, x.role)
	}
	// A cancellation watcher retains endpoint references past the roles'
	// lifetimes, so virtual endpoints are recycled only for unwatched
	// actions (a recycled endpoint must have no other referent).
	watch := ctx.Done() != nil
	pooled := false
	if pool := s.rolePool(); pool != nil && len(rts) <= pool.size {
		var wsArr [8]*roleWorker
		// Non-blocking all-or-nothing grab; a saturated (or closing) pool
		// simply means this action runs on the goroutine-per-role path
		// below — StartAction never waits for workers, so role bodies that
		// start and wait on further actions cannot deadlock the pool.
		if ws, ok := pool.acquire(len(rts), wsArr[:0]); ok {
			pooled = true
			for i, x := range rts {
				t := roleTaskPool.Get().(*roleTask)
				*t = roleTask{h: h, ctx: ctx, spec: spec, role: x.role, roleIdx: i,
					prog: progs[x.role], th: x.th, ep: x.ep, recycleEP: !watch}
				if !ws[i].tasks.PutOpen(t) {
					// Lost the race with Close: run on a plain tracked
					// goroutine so the handle still completes (the role
					// unwinds promptly as the closing system tears the
					// endpoints down).
					s.Go(t.run)
				}
			}
		}
	}
	if !pooled {
		// Same lifecycle as the pooled path (roleTask.run), on a tracked
		// goroutine per role.
		for i, x := range rts {
			t := roleTaskPool.Get().(*roleTask)
			*t = roleTask{h: h, ctx: ctx, spec: spec, role: x.role, roleIdx: i,
				prog: progs[x.role], th: x.th, ep: x.ep, recycleEP: !watch}
			s.Go(t.run)
		}
	}
	if watch {
		// The watcher is untracked: it blocks on real channels, never on the
		// clock, and exits as soon as the action finishes.
		go func() {
			select {
			case <-ctx.Done():
				h.cancelled.Store(true)
				for _, x := range rts {
					_ = x.ep.Close()
				}
			case <-h.done:
			}
		}()
	}
	return h, nil
}

// muxNet lazily creates the demultiplexer the System's concurrent actions
// share.
func (s *System) muxNet() *transport.Mux {
	s.muxOnce.Do(func() {
		s.mux = transport.NewMuxOpts(s.clock, s.net, transport.MuxOptions{
			Shards:   s.muxShards,
			NoInline: s.noInline,
		})
	})
	return s.mux
}
