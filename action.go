package caaction

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"caaction/internal/core"
	"caaction/internal/transport"
	"caaction/internal/vclock"
)

// ErrSystemClosed reports an operation on a System after Close.
var ErrSystemClosed = errors.New("caaction: system closed")

// ActionHandle tracks one concurrent CA-action instance started with
// System.StartAction: which roles are still running, and each role's
// outcome once it finishes.
type ActionHandle struct {
	id    string
	roles []string

	done      chan struct{} // closed when every role has finished
	doneQ     *vclock.Queue // clock-integrated completion signal for Wait
	cancelled atomic.Bool

	mu      sync.Mutex
	pending int
	results map[string]error
}

// ID returns the instance tag assigned to this action — the prefix of every
// action identifier the instance puts on the wire.
func (h *ActionHandle) ID() string { return h.id }

// Roles returns the action's role names in spec order.
func (h *ActionHandle) Roles() []string { return append([]string(nil), h.roles...) }

// Done reports whether every role has finished.
func (h *ActionHandle) Done() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.pending == 0
}

// Wait blocks until every role of the action has finished and returns the
// per-role outcomes (nil for success, a *SignalledError for an exceptional
// exit, or another error).
//
// Wait is clock-integrated: under virtual time it must be called from a
// goroutine the clock tracks (one started with System.Go) — for example a
// load driver that starts actions and waits for them. Untracked goroutines
// (a test's main goroutine) should instead call System.Wait and then read
// Results.
func (h *ActionHandle) Wait() map[string]error {
	for {
		h.mu.Lock()
		finished := h.pending == 0
		h.mu.Unlock()
		if finished {
			return h.Results()
		}
		// The queue closes when the last role finishes, so this wakes
		// exactly then; intermediate completions put nothing.
		if _, ok := h.doneQ.Get(); !ok {
			return h.Results()
		}
	}
}

// Results returns a snapshot of the per-role outcomes recorded so far; after
// Done (or Wait) it is the action's complete outcome map.
func (h *ActionHandle) Results() map[string]error {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]error, len(h.results))
	for role, err := range h.results {
		out[role] = err
	}
	return out
}

// Err joins the non-nil role outcomes in role order (nil when every role
// succeeded). Call after Done or Wait.
func (h *ActionHandle) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	var errs []error
	for _, role := range h.roles {
		if err := h.results[role]; err != nil {
			errs = append(errs, fmt.Errorf("role %s: %w", role, err))
		}
	}
	return errors.Join(errs...)
}

func (h *ActionHandle) finish(role string, err error) {
	h.mu.Lock()
	h.results[role] = err
	h.pending--
	last := h.pending == 0
	h.mu.Unlock()
	if last {
		close(h.done)
		h.doneQ.Close()
	}
}

// StartAction runs one CA-action instance concurrently with any number of
// others on the same System: every role of spec gets its own goroutine
// (started with System.Go, so virtual time keeps working) and its own
// virtual endpoint demultiplexed from the shared per-thread transport
// endpoints, and the instance is garbage-collected from the demultiplexer
// when its last role finishes. progs must supply a RoleProgram with a Body
// for every role of the spec.
//
// Action identifiers of the instance are tagged with a fresh instance tag
// (ActionHandle.ID), which is what keeps concurrent instances of the same
// spec — same action names, same thread bindings — separate on the wire.
// The single-action path (System.Thread + Perform) remains the untagged
// N=1 case of the same machinery and may run alongside StartAction
// instances, provided raw threads and specs use disjoint thread addresses.
//
// Cancelling ctx closes the instance's endpoints: every role unwinds
// through the cooperative interrupt path and reports an error matching both
// ErrThreadStopped and the context cause.
func (s *System) StartAction(ctx context.Context, spec *Spec, progs map[string]RoleProgram) (*ActionHandle, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.closed.Load() {
		return nil, ErrSystemClosed
	}
	if spec == nil {
		return nil, fmt.Errorf("caaction: StartAction: nil spec")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	for role := range progs {
		if _, ok := spec.ThreadFor(role); !ok {
			return nil, fmt.Errorf("%w: %q in %s", ErrUnknownRole, role, spec.Name)
		}
	}
	for _, r := range spec.Roles {
		if p, ok := progs[r.Name]; !ok || p.Body == nil {
			return nil, fmt.Errorf("%w: %s/%s", ErrBodyRequired, spec.Name, r.Name)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("caaction: %s not started: %w", spec.Name, context.Cause(ctx))
	}

	tag := fmt.Sprintf("a%d", s.actionSeq.Add(1))
	mux := s.muxNet()
	type roleThread struct {
		role string
		th   *core.Thread
		ep   transport.Endpoint
	}
	rts := make([]roleThread, 0, len(spec.Roles))
	for _, r := range spec.Roles {
		ep, err := mux.Open(tag, r.Thread)
		if err != nil {
			for _, x := range rts {
				_ = x.ep.Close()
			}
			return nil, fmt.Errorf("caaction: StartAction %s: %w", spec.Name, err)
		}
		rts = append(rts, roleThread{r.Name, s.rt.NewThreadOn(r.Thread, ep, tag), ep})
	}

	h := &ActionHandle{
		id:      tag,
		done:    make(chan struct{}),
		doneQ:   s.clock.NewQueue(),
		pending: len(rts),
		results: make(map[string]error, len(rts)),
	}
	for _, x := range rts {
		h.roles = append(h.roles, x.role)
	}
	for _, x := range rts {
		x := x
		prog := progs[x.role]
		s.Go(func() {
			err := x.th.Perform(spec, x.role, prog)
			_ = x.th.Close() // GC: deregister the instance from the mux
			if h.cancelled.Load() && errors.Is(err, ErrThreadStopped) {
				err = &cancelledError{spec: spec.Name, role: x.role, cause: context.Cause(ctx)}
			}
			h.finish(x.role, err)
		})
	}
	if ctx.Done() != nil {
		// The watcher is untracked: it blocks on real channels, never on the
		// clock, and exits as soon as the action finishes.
		go func() {
			select {
			case <-ctx.Done():
				h.cancelled.Store(true)
				for _, x := range rts {
					_ = x.ep.Close()
				}
			case <-h.done:
			}
		}()
	}
	return h, nil
}

// muxNet lazily creates the demultiplexer the System's concurrent actions
// share.
func (s *System) muxNet() *transport.Mux {
	s.muxOnce.Do(func() {
		s.mux = transport.NewMux(s.clock, s.net)
	})
	return s.mux
}
