package caaction

import (
	"sync"
	"sync/atomic"
	"time"

	"caaction/internal/atomicobj"
	"caaction/internal/core"
	"caaction/internal/trace"
	"caaction/internal/transport"
	"caaction/internal/vclock"
)

// Clock abstracts the passage of time for a simulated or real distributed
// system; see WithVirtualTime, WithRealTime and WithClock.
type Clock = vclock.Clock

// Metrics is a concurrency-safe counter set; the runtime and transports
// record protocol and action counters into it ("msg.total",
// "action.entries", "resolve.calls", ...). The zero value is ready to use.
type Metrics = trace.Metrics

// Log is a bounded in-memory event log; attach one with WithLog. Event is
// one recorded entry.
type (
	Log   = trace.Log
	Event = trace.Event
)

// NewLog returns a Log retaining at most max events (oldest dropped first).
func NewLog(max int) *Log { return trace.NewLog(max) }

// Object is an external atomic object: state shared between actions with
// version counts, before-images for coordinated undo, and damage reports.
// ObjectOption customises Define, and Tx — available to role code via
// Context.Tx — tracks one role's use of objects inside an action.
type (
	Object       = atomicobj.Object
	ObjectOption = atomicobj.ObjectOption
	Tx           = atomicobj.Tx
	CloneFunc    = atomicobj.CloneFunc
)

// WithClone makes Define deep-copy object state with fn when taking
// before-images, for states that are not value types.
func WithClone(fn CloneFunc) ObjectOption { return atomicobj.WithClone(fn) }

// System is the public facade over the CA-action runtime: one node (or one
// whole simulation) hosting threads, a clock, a transport and an external
// atomic-object registry. Construct with New; zero options give a
// deterministic virtual-time simulation over the in-process transport with
// the paper's coordinated resolution protocol.
type System struct {
	rt      *core.Runtime
	clock   Clock
	virtual *vclock.Virtual // non-nil iff the clock is the virtual one
	net     Network
	metrics *Metrics
	log     *Log

	// Concurrent multi-action state: the demultiplexer StartAction instances
	// share (created lazily), the instance-tag sequence, and the closed
	// marker consulted by Thread and StartAction.
	muxOnce   sync.Once
	mux       *transport.Mux
	actionSeq atomic.Int64
	closed    atomic.Bool

	// Role-worker pool (WithWorkers): built lazily on first use so systems
	// that never call StartAction pay nothing for it.
	workers  int
	poolOnce sync.Once
	pool     *rolePool
}

// New assembles a System from functional options. See Option and the With*
// constructors for the available knobs.
func New(opts ...Option) (*System, error) {
	cfg := config{transportName: "sim"}
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	var clk Clock
	var virtual *vclock.Virtual
	switch cfg.clockKind {
	case clockReal:
		clk = vclock.NewReal()
	case clockCustom:
		clk = cfg.clock
		virtual, _ = clk.(*vclock.Virtual)
	default:
		virtual = vclock.NewVirtual()
		clk = virtual
	}

	if cfg.metrics == nil {
		cfg.metrics = &Metrics{}
	}

	net := cfg.network
	if net == nil {
		factory, err := TransportByName(cfg.transportName)
		if err != nil {
			return nil, err
		}
		env := cfg.env
		env.Clock = clk
		env.Metrics = cfg.metrics
		env.Log = cfg.log
		net, err = factory(env)
		if err != nil {
			return nil, err
		}
	}

	protocol := cfg.protocol
	if protocol == nil && cfg.resolverName != "" {
		p, err := Resolver(cfg.resolverName)
		if err != nil {
			return nil, err
		}
		protocol = p
	}

	rt, err := core.New(core.Config{
		Clock:         clk,
		Network:       net,
		Protocol:      protocol,
		Metrics:       cfg.metrics,
		Log:           cfg.log,
		SignalTimeout: cfg.signalTimeout,
	})
	if err != nil {
		return nil, err
	}
	return &System{
		rt:      rt,
		clock:   clk,
		virtual: virtual,
		net:     net,
		metrics: cfg.metrics,
		log:     cfg.log,
		workers: cfg.workers,
	}, nil
}

// rolePool lazily builds the WithWorkers role-worker pool; nil when the pool
// is disabled or the clock cannot host resident daemon goroutines.
func (s *System) rolePool() *rolePool {
	if s.workers <= 0 {
		return nil
	}
	s.poolOnce.Do(func() { s.pool = newRolePool(s.clock, s.workers) })
	return s.pool
}

// waitClock returns the clock ActionHandle.Wait must integrate with, or nil
// when the system runs on the real clock (a channel wait then suffices and
// the per-action completion queue is never allocated).
func (s *System) waitClock() Clock {
	if _, ok := s.clock.(*vclock.Real); ok {
		return nil
	}
	return s.clock
}

// Go runs fn on a goroutine tracked by the system clock. Under virtual time
// this is mandatory for goroutines that perform actions: virtual time only
// advances when every tracked goroutine is blocked in a clock-mediated wait.
func (s *System) Go(fn func()) { s.clock.Go(fn) }

// Wait blocks until every goroutine started with Go has returned.
func (s *System) Wait() { s.clock.Wait() }

// Now reports the elapsed (virtual or real) time since the system started.
func (s *System) Now() time.Duration { return s.clock.Now() }

// Clock returns the system clock.
func (s *System) Clock() Clock { return s.clock }

// Metrics returns the system's counter set.
func (s *System) Metrics() *Metrics { return s.metrics }

// Log returns the event log attached with WithLog, or nil.
func (s *System) Log() *Log { return s.log }

// Network returns the system's transport network.
func (s *System) Network() Network { return s.net }

// Virtual reports whether the system runs on the deterministic virtual
// clock.
func (s *System) Virtual() bool { return s.virtual != nil }

// Define registers an external atomic object with its initial state.
func (s *System) Define(name string, initial any, opts ...ObjectOption) (*Object, error) {
	return s.rt.Objects().Define(name, initial, opts...)
}

// Object returns a previously defined external atomic object.
func (s *System) Object(name string) (*Object, error) {
	return s.rt.Objects().Get(name)
}

// Runtime exposes the underlying runtime for packages that build on
// caaction (such as caaction/prodcell). Application code should not need
// it.
func (s *System) Runtime() *core.Runtime { return s.rt }

// Close shuts the system down: the demultiplexer (if any concurrent actions
// ran) and the network close, detaching every thread endpoint. Subsequent
// Thread and StartAction calls fail with ErrSystemClosed.
func (s *System) Close() error {
	s.closed.Store(true)
	// Claim poolOnce without building anything: if a racing StartAction won
	// the once, Do blocks until its pool is fully constructed and we close
	// that pool; if Close wins, no pool is ever built (later StartActions
	// see nil and fall back, then die on the closed endpoints below).
	s.poolOnce.Do(func() {})
	if s.pool != nil {
		s.pool.close()
	}
	_ = s.muxNet().Close() // via muxOnce, so a racing StartAction is safe
	return s.net.Close()
}
