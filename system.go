package caaction

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"caaction/internal/atomicobj"
	"caaction/internal/core"
	"caaction/internal/trace"
	"caaction/internal/transport"
	"caaction/internal/vclock"
)

// Clock abstracts the passage of time for a simulated or real distributed
// system; see WithVirtualTime, WithRealTime and WithClock.
type Clock = vclock.Clock

// Metrics is a concurrency-safe counter set; the runtime and transports
// record protocol and action counters into it ("msg.total",
// "action.entries", "resolve.calls", ...). The zero value is ready to use.
type Metrics = trace.Metrics

// Log is a bounded in-memory event log; attach one with WithLog. Event is
// one recorded entry.
type (
	Log   = trace.Log
	Event = trace.Event
)

// NewLog returns a Log retaining at most max events (oldest dropped first).
func NewLog(max int) *Log { return trace.NewLog(max) }

// Object is an external atomic object: state shared between actions with
// version counts, before-images for coordinated undo, and damage reports.
// ObjectOption customises Define, and Tx — available to role code via
// Context.Tx — tracks one role's use of objects inside an action.
type (
	Object       = atomicobj.Object
	ObjectOption = atomicobj.ObjectOption
	Tx           = atomicobj.Tx
	CloneFunc    = atomicobj.CloneFunc
)

// WithClone makes Define deep-copy object state with fn when taking
// before-images, for states that are not value types.
func WithClone(fn CloneFunc) ObjectOption { return atomicobj.WithClone(fn) }

// System is the public facade over the CA-action runtime: one node (or one
// whole simulation) hosting threads, a clock, a transport and an external
// atomic-object registry. Construct with New; zero options give a
// deterministic virtual-time simulation over the in-process transport with
// the paper's coordinated resolution protocol.
type System struct {
	rt      *core.Runtime
	clock   Clock
	virtual *vclock.Virtual // non-nil iff the clock is the virtual one
	net     Network
	metrics *Metrics
	log     *Log

	// Concurrent multi-action state: the demultiplexer StartAction instances
	// share (created lazily), the instance-tag sequence, and the closed
	// marker consulted by Thread and StartAction.
	muxOnce   sync.Once
	mux       *transport.Mux
	muxShards int  // WithMuxShards: stripe count for the mux address table
	noInline  bool // WithoutInlineDelivery: force the queue delivery model
	actionSeq atomic.Int64
	closed    atomic.Bool

	// Drain state: once draining is set, StartAction and Thread refuse new
	// work with ErrDraining while in-flight actions run to completion.
	// inflight counts actions admitted and not yet finished; idlers are
	// Drain calls waiting for it to reach zero.
	draining atomic.Bool
	drainMu  sync.Mutex
	inflight int
	idlers   []chan struct{}

	// Admission control (WithMaxInFlight / WithTenantBudget): budgets
	// checked under drainMu alongside the in-flight count; tenants tracks
	// per-tenant in-flight actions (allocated only when a tenant budget is
	// set), and rejected counts typed ErrOverloaded fast-rejects.
	maxInFlight  int
	tenantBudget int
	tenants      map[string]int
	rejected     *trace.Counter

	// Metrics endpoint (WithMetricsAddr): the bound /metrics HTTP listener
	// and server, closed by Close.
	metricsAddr string
	metricsSrv  *http.Server

	// Cluster mode (WithCluster): the placement predicate StartTagged uses
	// to pick this node's roles, and the node's bound data listener address.
	clusterLocal func(string) bool
	clusterAddr  string

	// Role-worker pool (WithWorkers): built lazily on first use so systems
	// that never call StartAction pay nothing for it.
	workers  int
	poolOnce sync.Once
	pool     *rolePool
}

// New assembles a System from functional options. See Option and the With*
// constructors for the available knobs.
func New(opts ...Option) (*System, error) {
	cfg := config{transportName: "sim"}
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	if cfg.cluster != nil {
		// Cluster nodes live on the wall clock: their peers are other OS
		// processes, which no virtual-time scheduler can coordinate.
		cfg.clockKind = clockReal
	}

	var clk Clock
	var virtual *vclock.Virtual
	switch cfg.clockKind {
	case clockReal:
		clk = vclock.NewReal()
	case clockCustom:
		clk = cfg.clock
		virtual, _ = clk.(*vclock.Virtual)
	default:
		virtual = vclock.NewVirtual()
		clk = virtual
	}

	if cfg.metrics == nil {
		cfg.metrics = &Metrics{}
	}

	net := cfg.network
	if net == nil {
		factory, err := TransportByName(cfg.transportName)
		if err != nil {
			return nil, err
		}
		env := cfg.env
		env.Clock = clk
		env.Metrics = cfg.metrics
		env.Log = cfg.log
		net, err = factory(env)
		if err != nil {
			return nil, err
		}
	}

	var clusterAddr string
	if cfg.cluster != nil {
		tcpNet, ok := net.(*transport.TCP)
		if !ok {
			_ = net.Close()
			return nil, fmt.Errorf("caaction: WithCluster requires the built-in tcp transport")
		}
		addr, err := tcpNet.ConfigureNode(cfg.cluster.ListenAddr, cfg.cluster.Local, cfg.cluster.Resolve)
		if err != nil {
			_ = net.Close()
			return nil, fmt.Errorf("caaction: WithCluster: %w", err)
		}
		clusterAddr = addr
	}

	protocol := cfg.protocol
	if protocol == nil && cfg.resolverName != "" {
		p, err := Resolver(cfg.resolverName)
		if err != nil {
			return nil, err
		}
		protocol = p
	}

	rt, err := core.New(core.Config{
		Clock:         clk,
		Network:       net,
		Protocol:      protocol,
		Metrics:       cfg.metrics,
		Log:           cfg.log,
		SignalTimeout: cfg.signalTimeout,
		Recorder:      cfg.recorder,
	})
	if err != nil {
		return nil, err
	}
	s := &System{
		rt:           rt,
		clock:        clk,
		virtual:      virtual,
		net:          net,
		metrics:      cfg.metrics,
		log:          cfg.log,
		workers:      cfg.workers,
		muxShards:    cfg.muxShards,
		noInline:     cfg.noInline,
		maxInFlight:  cfg.maxInFlight,
		tenantBudget: cfg.tenantBudget,
		rejected:     cfg.metrics.Counter("admission.rejected"),
	}
	if cfg.tenantBudget > 0 {
		s.tenants = make(map[string]int)
	}
	if cfg.cluster != nil {
		s.clusterLocal = cfg.cluster.Local
		s.clusterAddr = clusterAddr
	}
	if cfg.metricsAddr != "" {
		if err := s.serveMetrics(cfg.metricsAddr); err != nil {
			_ = s.Close()
			return nil, err
		}
	}
	return s, nil
}

// serveMetrics binds the WithMetricsAddr listener and serves the counter
// registry as a Prometheus text-format scrape on GET /metrics.
func (s *System) serveMetrics(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("caaction: WithMetricsAddr: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.metrics.WritePrometheus(w)
	})
	s.metricsAddr = ln.Addr().String()
	s.metricsSrv = &http.Server{Handler: mux}
	// An untracked OS goroutine: the scrape server answers wall-clock HTTP,
	// never touching the system clock.
	go func() { _ = s.metricsSrv.Serve(ln) }()
	return nil
}

// MetricsAddr returns the bound host:port of the WithMetricsAddr scrape
// listener, or "" when no metrics endpoint was configured.
func (s *System) MetricsAddr() string { return s.metricsAddr }

// rolePool lazily builds the WithWorkers role-worker pool; nil when the pool
// is disabled or the clock cannot host resident daemon goroutines.
func (s *System) rolePool() *rolePool {
	if s.workers <= 0 {
		return nil
	}
	s.poolOnce.Do(func() { s.pool = newRolePool(s.clock, s.workers) })
	return s.pool
}

// waitClock returns the clock ActionHandle.Wait must integrate with, or nil
// when the system runs on the real clock (a channel wait then suffices and
// the per-action completion queue is never allocated).
func (s *System) waitClock() Clock {
	if _, ok := s.clock.(*vclock.Real); ok {
		return nil
	}
	return s.clock
}

// Go runs fn on a goroutine tracked by the system clock. Under virtual time
// this is mandatory for goroutines that perform actions: virtual time only
// advances when every tracked goroutine is blocked in a clock-mediated wait.
func (s *System) Go(fn func()) { s.clock.Go(fn) }

// Wait blocks until every goroutine started with Go has returned.
func (s *System) Wait() { s.clock.Wait() }

// Now reports the elapsed (virtual or real) time since the system started.
func (s *System) Now() time.Duration { return s.clock.Now() }

// Clock returns the system clock.
func (s *System) Clock() Clock { return s.clock }

// Metrics returns the system's counter set.
func (s *System) Metrics() *Metrics { return s.metrics }

// Log returns the event log attached with WithLog, or nil.
func (s *System) Log() *Log { return s.log }

// Network returns the system's transport network.
func (s *System) Network() Network { return s.net }

// Virtual reports whether the system runs on the deterministic virtual
// clock.
func (s *System) Virtual() bool { return s.virtual != nil }

// Define registers an external atomic object with its initial state.
func (s *System) Define(name string, initial any, opts ...ObjectOption) (*Object, error) {
	return s.rt.Objects().Define(name, initial, opts...)
}

// Object returns a previously defined external atomic object.
func (s *System) Object(name string) (*Object, error) {
	return s.rt.Objects().Get(name)
}

// Runtime exposes the underlying runtime for packages that build on
// caaction (such as caaction/prodcell). Application code should not need
// it.
func (s *System) Runtime() *core.Runtime { return s.rt }

// ClusterAddr returns the bound host:port of the node's shared data
// listener (WithCluster), or "" when the system is not a cluster node.
// Peers send frames for this node's threads to this address.
func (s *System) ClusterAddr() string { return s.clusterAddr }

// beginAction admits one action into the in-flight set, or refuses with
// ErrDraining/ErrSystemClosed once shutdown has begun and with a typed
// *OverloadedError once an admission budget (WithMaxInFlight,
// WithTenantBudget) is exhausted. Every successful beginAction is balanced
// by exactly one endAction with the same tenant when the action's last role
// finishes (or immediately, on a failed start).
func (s *System) beginAction(tenant string) error {
	if s.closed.Load() {
		return ErrSystemClosed
	}
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining.Load() {
		// Typed refusal: the system is shutting down gracefully (Drain) or
		// tearing down (Close); either way new actions are not admitted.
		return ErrDraining
	}
	if s.maxInFlight > 0 && s.inflight >= s.maxInFlight {
		s.rejected.Add(1)
		return &OverloadedError{Limit: s.maxInFlight}
	}
	if s.tenants != nil {
		if s.tenants[tenant] >= s.tenantBudget {
			s.rejected.Add(1)
			return &OverloadedError{Limit: s.tenantBudget, Tenant: tenant}
		}
		s.tenants[tenant]++
	}
	s.inflight++
	return nil
}

func (s *System) endAction(tenant string) {
	s.drainMu.Lock()
	s.inflight--
	if s.tenants != nil {
		if s.tenants[tenant] <= 1 {
			// Delete rather than store zero so an unbounded tenant-name
			// space cannot grow the map without bound.
			delete(s.tenants, tenant)
		} else {
			s.tenants[tenant]--
		}
	}
	var idlers []chan struct{}
	if s.inflight == 0 {
		idlers, s.idlers = s.idlers, nil
	}
	s.drainMu.Unlock()
	for _, ch := range idlers {
		close(ch)
	}
}

// overloaded reports whether the global admission budget is currently
// exhausted, for Thread's read-only fast-reject (creating a raw thread
// consumes no action budget, but refusing new entry points while saturated
// keeps overload behaviour uniform across both start paths).
func (s *System) overloaded() bool {
	if s.maxInFlight <= 0 {
		return false
	}
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.inflight >= s.maxInFlight
}

// Drain gracefully quiesces the system: it stops admitting StartAction (and
// Thread) — both return ErrDraining — and blocks until every in-flight
// action has finished, or until ctx is cancelled (returning ctx's cause
// with the in-flight work still running). Drain does not close the system:
// transports keep carrying messages so in-flight resolutions complete, and
// this node keeps routing frames for actions hosted elsewhere. Call Close
// after Drain returns to release the network. Drain is idempotent and safe
// to call from multiple goroutines; all callers block until idle.
func (s *System) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.drainMu.Lock()
	if s.inflight == 0 {
		s.drainMu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	s.idlers = append(s.idlers, ch)
	s.drainMu.Unlock()
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("caaction: drain interrupted: %w", context.Cause(ctx))
	}
}

// Draining reports whether Drain or Close has begun refusing new actions.
func (s *System) Draining() bool { return s.draining.Load() }

// Close shuts the system down: the demultiplexer (if any concurrent actions
// ran) and the network close, detaching every thread endpoint. Subsequent
// Thread and StartAction calls fail with ErrSystemClosed; calls racing
// Close observe ErrDraining (the typed "shutdown has begun" refusal) once
// the drain marker is set, never a half-closed system. Close does NOT wait
// for in-flight actions — they unwind through the cooperative interrupt
// path as their endpoints close. For a graceful shutdown, Drain first, then
// Close.
func (s *System) Close() error {
	s.draining.Store(true)
	s.closed.Store(true)
	// Claim poolOnce without building anything: if a racing StartAction won
	// the once, Do blocks until its pool is fully constructed and we close
	// that pool; if Close wins, no pool is ever built (later StartActions
	// see nil and fall back, then die on the closed endpoints below).
	s.poolOnce.Do(func() {})
	if s.pool != nil {
		s.pool.close()
	}
	if s.metricsSrv != nil {
		_ = s.metricsSrv.Close()
	}
	_ = s.muxNet().Close() // via muxOnce, so a racing StartAction is safe
	return s.net.Close()
}
