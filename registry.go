package caaction

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"caaction/internal/resolve"
	"caaction/internal/transport"
)

// ResolutionProtocol is a pluggable distributed algorithm for resolving
// concurrently raised exceptions. The three protocols compared by the paper
// ship built in; custom protocols may be added with RegisterResolver.
type ResolutionProtocol = resolve.Protocol

// The paper's resolution protocols, ready to pass to
// WithResolutionProtocol or to compare in experiments.
var (
	// Coordinated is the paper's own algorithm (§3.3.2): (N+1)(N−1)
	// messages per resolution with exactly one resolution-procedure run.
	Coordinated ResolutionProtocol = resolve.Coordinated{}
	// CR86 models Campbell & Randell's 1986 scheme: O(N³) messages with
	// per-relay resolutions.
	CR86 ResolutionProtocol = resolve.CR86{}
	// R96 models Romanovsky et al.'s 1996 algorithm: 3N(N−1) messages with
	// N resolutions.
	R96 ResolutionProtocol = resolve.R96{}
)

// Registry lookup errors.
var (
	ErrUnknownResolver  = errors.New("caaction: unknown resolution protocol")
	ErrUnknownTransport = errors.New("caaction: unknown transport")
)

type registry[T any] struct {
	mu sync.RWMutex
	m  map[string]T
}

func (r *registry[T]) set(name string, v T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[string]T)
	}
	r.m[name] = v
}

func (r *registry[T]) get(name string) (T, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.m[name]
	return v, ok
}

func (r *registry[T]) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for name := range r.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

var resolverRegistry = func() *registry[ResolutionProtocol] {
	r := &registry[ResolutionProtocol]{}
	for _, p := range []ResolutionProtocol{Coordinated, CR86, R96} {
		r.set(p.Name(), p)
	}
	return r
}()

// RegisterResolver makes a resolution protocol selectable by name through
// WithResolver (and thus from command-line flags). The built-in names are
// "coordinated", "cr86" and "r96"; registering an existing name replaces it.
func RegisterResolver(name string, p ResolutionProtocol) {
	resolverRegistry.set(name, p)
}

// Resolver returns the registered resolution protocol with the given name.
func Resolver(name string) (ResolutionProtocol, error) {
	p, ok := resolverRegistry.get(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownResolver, name, Resolvers())
	}
	return p, nil
}

// Resolvers lists the registered resolution-protocol names, sorted.
func Resolvers() []string { return resolverRegistry.names() }

// Network carries protocol messages between threads; Endpoint is one
// thread's attachment to it. Most callers never touch these directly — New
// assembles the network from options — but custom transports implement them.
type (
	Network  = transport.Network
	Endpoint = transport.Endpoint
)

// TransportEnv is what New hands a TransportFactory when assembling a
// System: the system clock plus the transport-related option values.
type TransportEnv struct {
	// Clock is the system's clock (virtual or real).
	Clock Clock
	// Latency is the modelled one-way delay (sim transport).
	Latency time.Duration
	// Jitter, when positive, spreads latency uniformly over
	// [Latency, Latency+Jitter] using Seed (sim transport).
	Jitter time.Duration
	// Seed seeds the jitter source for reproducibility.
	Seed int64
	// Metrics receives per-kind message counters; never nil.
	Metrics *Metrics
	// Log, when non-nil, records send/deliver events.
	Log *Log
	// ListenAddr is the host:port networked transports listen on
	// (WithTCPTransport's argument); empty means loopback with an
	// ephemeral port.
	ListenAddr string
	// Peers maps logical thread addresses served by other processes to
	// their host:port, from WithPeer.
	Peers map[string]string
	// GobWire selects the legacy gob wire format instead of the binary
	// codec (networked transports), from WithGobWire.
	GobWire bool
	// NoPeerBatch disables the cross-node fast path (batched node frames,
	// credit flow control, route caching, sink receive) on the tcp
	// transport, from WithoutPeerBatch.
	NoPeerBatch bool
	// PeerWindow overrides the per-peer credit window, in messages, that
	// the tcp transport advertises to dialing peers (0 keeps the default),
	// from WithPeerWindow.
	PeerWindow int
}

// TransportFactory builds a Network for one System.
type TransportFactory func(env TransportEnv) (Network, error)

var transportRegistry = func() *registry[TransportFactory] {
	r := &registry[TransportFactory]{}
	r.set("sim", simTransport)
	r.set("tcp", tcpTransport)
	return r
}()

// RegisterTransport makes a transport selectable by name through
// WithTransport (and thus from command-line flags). The built-in names are
// "sim" and "tcp"; registering an existing name replaces it.
func RegisterTransport(name string, f TransportFactory) {
	transportRegistry.set(name, f)
}

// TransportByName returns the registered transport factory with the given
// name.
func TransportByName(name string) (TransportFactory, error) {
	f, ok := transportRegistry.get(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownTransport, name, Transports())
	}
	return f, nil
}

// Transports lists the registered transport names, sorted.
func Transports() []string { return transportRegistry.names() }

// simTransport is the built-in "sim" transport: an in-process network with a
// configurable latency model, driven by the system clock.
func simTransport(env TransportEnv) (Network, error) {
	// A nil latency model means zero latency AND tells the sim that the
	// FIFO clamp can never bite, unlocking its lock-free send fast path on
	// real-time fault-free systems (the load-harness configuration).
	var latency transport.LatencyFunc
	switch {
	case env.Jitter > 0:
		latency = transport.JitterLatency(env.Latency, env.Jitter, env.Seed)
	case env.Latency > 0:
		latency = transport.FixedLatency(env.Latency)
	}
	return transport.NewSim(transport.SimConfig{
		Clock:   env.Clock,
		Latency: latency,
		Metrics: env.Metrics,
		Log:     env.Log,
	}), nil
}

// tcpTransport is the built-in "tcp" transport: length-prefixed
// binary-codec messages over TCP for genuinely distributed deployments
// (gob behind WithGobWire for wire compatibility).
func tcpTransport(env TransportEnv) (Network, error) {
	t := transport.NewTCP(env.Clock)
	t.SetMetrics(env.Metrics)
	if env.GobWire {
		t.SetGobWire(true)
	}
	if env.NoPeerBatch {
		t.SetPeerBatch(false)
	}
	if env.PeerWindow > 0 {
		t.SetPeerWindow(env.PeerWindow)
	}
	if env.ListenAddr != "" {
		t.SetListenAddr(env.ListenAddr)
	}
	for addr, hostport := range env.Peers {
		t.SetPeer(addr, hostport)
	}
	return t, nil
}
