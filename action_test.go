package caaction_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"caaction"
)

// pingPongSpec is a two-role action used by the concurrency tests; the
// producer sends one message the consumer must receive.
func pingPongSpec(t *testing.T) (*caaction.Spec, map[string]caaction.RoleProgram) {
	t.Helper()
	spec, err := caaction.NewSpec("pingpong").
		Role("producer", "T1").
		Role("consumer", "T2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	progs := map[string]caaction.RoleProgram{
		"producer": {Body: func(ctx *caaction.Context) error {
			return ctx.Send("consumer", "ping")
		}},
		"consumer": {Body: func(ctx *caaction.Context) error {
			v, err := ctx.Recv("producer")
			if err != nil {
				return err
			}
			if v != "ping" {
				return fmt.Errorf("payload %v", v)
			}
			return nil
		}},
	}
	return spec, progs
}

// TestStartActionConcurrentInstances runs many instances of the SAME spec —
// same action names, same thread bindings — concurrently on one System over
// the shared sim transport, which is exactly what the mux layer exists for.
func TestStartActionConcurrentInstances(t *testing.T) {
	sys, err := caaction.New()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	spec, progs := pingPongSpec(t)

	const n = 50
	handles := make([]*caaction.ActionHandle, n)
	ids := map[string]bool{}
	for i := range handles {
		h, err := sys.StartAction(context.Background(), spec, progs)
		if err != nil {
			t.Fatalf("StartAction %d: %v", i, err)
		}
		if ids[h.ID()] {
			t.Fatalf("duplicate instance tag %q", h.ID())
		}
		ids[h.ID()] = true
		handles[i] = h
	}
	sys.Wait()
	for i, h := range handles {
		if !h.Done() {
			t.Fatalf("instance %d not done after Wait", i)
		}
		if err := h.Err(); err != nil {
			t.Errorf("instance %d: %v", i, err)
		}
	}
	if got := sys.Metrics().Get("action.completions"); got != 2*n {
		t.Errorf("action.completions = %d, want %d", got, 2*n)
	}
}

// TestStartActionWaitFromTrackedGoroutine drives actions from a tracked
// driver goroutine using ActionHandle.Wait — the load-harness pattern —
// including nested waits while other instances are in flight.
func TestStartActionWaitFromTrackedGoroutine(t *testing.T) {
	sys, err := caaction.New(caaction.WithSimTransport(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	spec, progs := pingPongSpec(t)

	var sequentialErr, overlapErr error
	sys.Go(func() {
		// Sequential: start, wait, start again (tag reuse GC path).
		for i := 0; i < 3; i++ {
			h, err := sys.StartAction(context.Background(), spec, progs)
			if err != nil {
				sequentialErr = err
				return
			}
			for role, err := range h.Wait() {
				if err != nil {
					sequentialErr = fmt.Errorf("%s: %w", role, err)
				}
			}
		}
	})
	sys.Go(func() {
		// Overlapping: a second driver keeps its own instances in flight.
		var hs []*caaction.ActionHandle
		for i := 0; i < 5; i++ {
			h, err := sys.StartAction(context.Background(), spec, progs)
			if err != nil {
				overlapErr = err
				return
			}
			hs = append(hs, h)
		}
		for _, h := range hs {
			h.Wait()
			if err := h.Err(); err != nil && overlapErr == nil {
				overlapErr = err
			}
		}
	})
	sys.Wait()
	if sequentialErr != nil {
		t.Errorf("sequential driver: %v", sequentialErr)
	}
	if overlapErr != nil {
		t.Errorf("overlapping driver: %v", overlapErr)
	}
}

// TestStartActionExceptionalOutcome checks per-role outcomes of an instance
// whose resolution ends in a signalled exception.
func TestStartActionExceptionalOutcome(t *testing.T) {
	sys, err := caaction.New()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	spec, err := caaction.NewSpec("doomed").
		Role("left", "T1").
		Role("right", "T2").
		Exception("boom").
		Signals("boom").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	progs := map[string]caaction.RoleProgram{
		"left":  {Body: func(ctx *caaction.Context) error { return ctx.Raise("boom", "kaboom") }},
		"right": {Body: func(ctx *caaction.Context) error { return ctx.Compute(time.Second) }},
	}
	h, err := sys.StartAction(context.Background(), spec, progs)
	if err != nil {
		t.Fatal(err)
	}
	sys.Wait()
	for role, rerr := range h.Results() {
		se, ok := caaction.AsSignalled(rerr)
		if !ok || se.Exc != "boom" {
			t.Errorf("role %s outcome %v, want signalled boom", role, rerr)
		}
		if !strings.HasPrefix(se.Action, h.ID()+"!") {
			t.Errorf("action id %q does not carry instance tag %q", se.Action, h.ID())
		}
	}
	if err := h.Err(); !errors.Is(err, caaction.ErrSignalled) {
		t.Errorf("Err() = %v, want ErrSignalled match", err)
	}
}

// TestStartActionAlongsideThreadPerform checks the N=1 legacy path and the
// muxed path coexist on one System (disjoint thread addresses).
func TestStartActionAlongsideThreadPerform(t *testing.T) {
	sys, err := caaction.New()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	spec, progs := pingPongSpec(t)

	soloSpec, err := caaction.NewSpec("solo").Role("only", "S1").Build()
	if err != nil {
		t.Fatal(err)
	}
	th, err := sys.Thread("S1")
	if err != nil {
		t.Fatal(err)
	}
	soloOut := make(chan error, 1)
	sys.Go(func() {
		soloOut <- th.Perform(context.Background(), soloSpec, "only", caaction.RoleProgram{
			Body: func(ctx *caaction.Context) error { return ctx.Compute(time.Millisecond) },
		})
	})
	h, err := sys.StartAction(context.Background(), spec, progs)
	if err != nil {
		t.Fatal(err)
	}
	sys.Wait()
	if err := <-soloOut; err != nil {
		t.Errorf("legacy Perform alongside StartAction: %v", err)
	}
	if err := h.Err(); err != nil {
		t.Errorf("StartAction alongside legacy Perform: %v", err)
	}
}

// TestStartActionCancellation cancels an in-flight instance and expects
// every role to unwind with an error matching both ErrThreadStopped and the
// context cause.
func TestStartActionCancellation(t *testing.T) {
	sys, err := caaction.New(caaction.WithRealTime())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	spec, err := caaction.NewSpec("slow").
		Role("left", "T1").
		Role("right", "T2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{}, 2)
	body := func(ctx *caaction.Context) error {
		started <- struct{}{}
		return ctx.Compute(30 * time.Second)
	}
	progs := map[string]caaction.RoleProgram{"left": {Body: body}, "right": {Body: body}}

	ctx, cancel := context.WithCancel(context.Background())
	h, err := sys.StartAction(ctx, spec, progs)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	<-started
	cancel()
	sys.Wait()
	for role, rerr := range h.Results() {
		if !errors.Is(rerr, caaction.ErrThreadStopped) {
			t.Errorf("role %s: %v does not match ErrThreadStopped", role, rerr)
		}
		if !errors.Is(rerr, context.Canceled) {
			t.Errorf("role %s: %v does not match context.Canceled", role, rerr)
		}
	}
}

// TestStartActionErrorPaths is the table of facade misuse cases.
func TestStartActionErrorPaths(t *testing.T) {
	spec, progs := pingPongSpec(t)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	cases := []struct {
		name  string
		start func(sys *caaction.System) error
		want  error
	}{
		{"nil spec", func(sys *caaction.System) error {
			_, err := sys.StartAction(context.Background(), nil, progs)
			return err
		}, nil},
		{"missing role program", func(sys *caaction.System) error {
			_, err := sys.StartAction(context.Background(), spec,
				map[string]caaction.RoleProgram{"producer": progs["producer"]})
			return err
		}, caaction.ErrBodyRequired},
		{"nil body", func(sys *caaction.System) error {
			bad := map[string]caaction.RoleProgram{"producer": progs["producer"], "consumer": {}}
			_, err := sys.StartAction(context.Background(), spec, bad)
			return err
		}, caaction.ErrBodyRequired},
		{"unknown role key", func(sys *caaction.System) error {
			bad := map[string]caaction.RoleProgram{
				"producer": progs["producer"], "consumer": progs["consumer"],
				"ghost": progs["producer"],
			}
			_, err := sys.StartAction(context.Background(), spec, bad)
			return err
		}, caaction.ErrUnknownRole},
		{"invalid spec", func(sys *caaction.System) error {
			bad := &caaction.Spec{Name: "x"}
			_, err := sys.StartAction(context.Background(), bad, nil)
			return err
		}, caaction.ErrSpecInvalid},
		{"pre-cancelled context", func(sys *caaction.System) error {
			_, err := sys.StartAction(cancelled, spec, progs)
			return err
		}, context.Canceled},
		{"after Close", func(sys *caaction.System) error {
			if err := sys.Close(); err != nil {
				return err
			}
			_, err := sys.StartAction(context.Background(), spec, progs)
			return err
		}, caaction.ErrSystemClosed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys, err := caaction.New()
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = sys.Close() }()
			err = tc.start(sys)
			if err == nil {
				t.Fatal("StartAction succeeded, want error")
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want errors.Is(err, %v)", err, tc.want)
			}
			// Misuse must not leak mux state: a well-formed instance still
			// runs afterwards (skip when the case closed the system).
			if tc.name == "after Close" {
				return
			}
			h, err := sys.StartAction(context.Background(), spec, progs)
			if err != nil {
				t.Fatalf("clean StartAction after misuse: %v", err)
			}
			sys.Wait()
			if err := h.Err(); err != nil {
				t.Errorf("clean instance after misuse: %v", err)
			}
		})
	}
}

// TestThreadAfterClose pins the ErrSystemClosed contract for the legacy
// single-action path too.
func TestThreadAfterClose(t *testing.T) {
	sys, err := caaction.New()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Thread("T1"); !errors.Is(err, caaction.ErrSystemClosed) {
		t.Errorf("Thread after Close = %v, want ErrSystemClosed", err)
	}
}

// TestSpecNameReservedCharacters pins the wire-format guard: spec names may
// not contain the action-identifier separators.
func TestSpecNameReservedCharacters(t *testing.T) {
	for _, name := range []string{"a!b", "a/b"} {
		_, err := caaction.NewSpec(name).Role("r", "T1").Build()
		if !errors.Is(err, caaction.ErrSpecInvalid) {
			t.Errorf("NewSpec(%q).Build() = %v, want ErrSpecInvalid", name, err)
		}
	}
}

// TestOptionConflicts pins the conflicting-option errors from New.
func TestOptionConflicts(t *testing.T) {
	cases := []struct {
		name string
		opts []caaction.Option
	}{
		{"network plus named transport", []caaction.Option{
			caaction.WithNetwork(mustNetwork(t)),
			caaction.WithTransport("sim"),
		}},
		{"network plus sim transport", []caaction.Option{
			caaction.WithSimTransport(0),
			caaction.WithNetwork(mustNetwork(t)),
		}},
		{"protocol plus resolver name", []caaction.Option{
			caaction.WithResolutionProtocol(caaction.Coordinated),
			caaction.WithResolver("cr86"),
		}},
		{"network plus jitter", []caaction.Option{
			caaction.WithNetwork(mustNetwork(t)),
			caaction.WithJitter(time.Millisecond, 1),
		}},
		{"network plus peer", []caaction.Option{
			caaction.WithNetwork(mustNetwork(t)),
			caaction.WithPeer("T1", "127.0.0.1:9"),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := caaction.New(tc.opts...); err == nil {
				t.Error("New accepted conflicting options")
			}
		})
	}
}

// TestRegistryReplacement pins the documented replace semantics of
// registering an existing name, and that lookups observe the replacement.
func TestRegistryReplacement(t *testing.T) {
	caaction.RegisterResolver("custom-test-resolver", caaction.R96)
	p, err := caaction.Resolver("custom-test-resolver")
	if err != nil || p.Name() != "r96" {
		t.Fatalf("custom resolver lookup = %v, %v", p, err)
	}
	caaction.RegisterResolver("custom-test-resolver", caaction.CR86)
	p, err = caaction.Resolver("custom-test-resolver")
	if err != nil || p.Name() != "cr86" {
		t.Fatalf("replaced resolver lookup = %v, %v (replace semantics broken)", p, err)
	}

	called := false
	caaction.RegisterTransport("custom-test-transport", func(env caaction.TransportEnv) (caaction.Network, error) {
		called = true
		factory, err := caaction.TransportByName("sim")
		if err != nil {
			return nil, err
		}
		return factory(env)
	})
	sys, err := caaction.New(caaction.WithTransport("custom-test-transport"))
	if err != nil {
		t.Fatalf("custom transport: %v", err)
	}
	_ = sys.Close()
	if !called {
		t.Error("custom transport factory never invoked")
	}
}

func mustNetwork(t *testing.T) caaction.Network {
	t.Helper()
	sys, err := caaction.New()
	if err != nil {
		t.Fatal(err)
	}
	return sys.Network()
}

// TestStartActionWorkerPoolVirtualTime runs many instances through the
// WithWorkers role-worker pool on the deterministic virtual clock:
// dispatch, daemon-goroutine time advancement, handle completion and
// System.Wait (which must not wait for the resident workers) all have to
// cooperate.
func TestStartActionWorkerPoolVirtualTime(t *testing.T) {
	sys, err := caaction.New(caaction.WithWorkers(6))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	spec, progs := pingPongSpec(t)

	const n = 40
	results := make(chan error, n)
	sys.Go(func() {
		for i := 0; i < n; i++ {
			h, err := sys.StartAction(context.Background(), spec, progs)
			if err != nil {
				results <- err
				continue
			}
			h.WaitDone()
			results <- h.Err()
		}
	})
	sys.Wait() // must return despite the resident daemon workers
	for i := 0; i < n; i++ {
		if err := <-results; err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
	}
}

// TestStartActionWorkerPoolSaturation floods a deliberately tiny pool with
// far more concurrent actions than it has workers. Acquisition is
// non-blocking all-or-nothing, so overflow actions must fall back to the
// goroutine-per-role path and everything still completes — including role
// bodies that start and wait on a further action while holding workers,
// the shape that would deadlock a pool that queued for capacity.
func TestStartActionWorkerPoolSaturation(t *testing.T) {
	sys, err := caaction.New(caaction.WithRealTime(), caaction.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	spec, progs := pingPongSpec(t)

	childSpec, childProgs := func() (*caaction.Spec, map[string]caaction.RoleProgram) {
		s, err := caaction.NewSpec("nestedload").
			Role("x", "N1").
			Role("y", "N2").
			Build()
		if err != nil {
			t.Fatal(err)
		}
		return s, map[string]caaction.RoleProgram{
			"x": {Body: func(ctx *caaction.Context) error { return nil }},
			"y": {Body: func(ctx *caaction.Context) error { return nil }},
		}
	}()
	// Parent roles occupy workers and start-and-wait a child action from
	// inside the role body.
	parentSpec, err := caaction.NewSpec("parentload").
		Role("p", "P1").
		Role("q", "P2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	parentProgs := map[string]caaction.RoleProgram{
		"p": {Body: func(ctx *caaction.Context) error {
			ch, err := sys.StartAction(context.Background(), childSpec, childProgs)
			if err != nil {
				return err
			}
			ch.WaitDone()
			return ch.Err()
		}},
		"q": {Body: func(ctx *caaction.Context) error { return nil }},
	}

	const n = 30
	errs := make(chan error, 2*n)
	for i := 0; i < n; i++ {
		sys.Go(func() {
			h, err := sys.StartAction(context.Background(), spec, progs)
			if err != nil {
				errs <- err
				return
			}
			h.WaitDone()
			errs <- h.Err()
		})
		sys.Go(func() {
			h, err := sys.StartAction(context.Background(), parentSpec, parentProgs)
			if err != nil {
				errs <- err
				return
			}
			h.WaitDone()
			errs <- h.Err()
		})
	}
	for i := 0; i < 2*n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
	}
	sys.Wait()
}

// TestStartActionWorkerPoolOverflowFallsBack: an action with more roles
// than the pool has workers must bypass the pool (goroutine per role)
// rather than deadlock in admission.
func TestStartActionWorkerPoolOverflowFallsBack(t *testing.T) {
	sys, err := caaction.New(caaction.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	spec, err := caaction.NewSpec("wide").
		Role("r1", "W1").Role("r2", "W2").Role("r3", "W3").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	progs := map[string]caaction.RoleProgram{
		"r1": {Body: func(ctx *caaction.Context) error { return nil }},
		"r2": {Body: func(ctx *caaction.Context) error { return nil }},
		"r3": {Body: func(ctx *caaction.Context) error { return nil }},
	}
	var herr error
	sys.Go(func() {
		h, err := sys.StartAction(context.Background(), spec, progs)
		if err != nil {
			herr = err
			return
		}
		h.WaitDone()
		herr = h.Err()
	})
	sys.Wait()
	if herr != nil {
		t.Fatalf("3-role action on a 2-worker pool: %v", herr)
	}
}

// TestStartActionWorkerPoolCancellation: context cancellation must keep
// working when roles run on pooled workers (and the workers must survive
// the cancelled action and serve the next one).
func TestStartActionWorkerPoolCancellation(t *testing.T) {
	sys, err := caaction.New(caaction.WithRealTime(), caaction.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	spec, err := caaction.NewSpec("stuck").
		Role("r1", "C1").Role("r2", "C2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	progs := map[string]caaction.RoleProgram{
		"r1": {Body: func(ctx *caaction.Context) error { return ctx.Compute(time.Hour) }},
		"r2": {Body: func(ctx *caaction.Context) error { return ctx.Compute(time.Hour) }},
	}
	ctx, cancel := context.WithCancel(context.Background())
	h, err := sys.StartAction(ctx, spec, progs)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	for role, rerr := range h.Wait() {
		if !errors.Is(rerr, caaction.ErrThreadStopped) || !errors.Is(rerr, context.Canceled) {
			t.Errorf("role %s: %v, want ErrThreadStopped and context.Canceled", role, rerr)
		}
	}
	// The pool must still serve fresh work after the cancellation.
	spec2, progs2 := pingPongSpec(t)
	h2, err := sys.StartAction(context.Background(), spec2, progs2)
	if err != nil {
		t.Fatal(err)
	}
	h2.WaitDone()
	if err := h2.Err(); err != nil {
		t.Fatalf("action after cancellation: %v", err)
	}
}

// TestEventLoopKnobs runs the same real-clock action under every event-loop
// configuration — the default inline lane, the queue-per-thread fallback
// (WithoutInlineDelivery) and extreme mux shard counts — and expects
// identical outcomes: the knobs tune execution, never semantics.
func TestEventLoopKnobs(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []caaction.Option
	}{
		{"inline lane (default)", nil},
		{"queue per thread", []caaction.Option{caaction.WithoutInlineDelivery()}},
		{"one mux shard", []caaction.Option{caaction.WithMuxShards(1)}},
		{"wide sharding, no inline", []caaction.Option{caaction.WithMuxShards(128), caaction.WithoutInlineDelivery()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sys, err := caaction.New(append([]caaction.Option{caaction.WithRealTime()}, tc.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = sys.Close() }()
			for i := 0; i < 3; i++ {
				spec, progs := pingPongSpec(t)
				h, err := sys.StartAction(context.Background(), spec, progs)
				if err != nil {
					t.Fatal(err)
				}
				h.WaitDone()
				if err := h.Err(); err != nil {
					t.Fatalf("%s, action %d: %v", tc.name, i, err)
				}
			}
		})
	}
}
