// Package experiments re-exports the paper's evaluation harness (§5): the
// Figure 9/10 sensitivity sweep, the Figure 12/13 protocol comparison, the
// §3.3.3 message-complexity counts, the §3.4 signalling costs and the
// Lemma 1 completion-time bound. Everything runs on the deterministic
// virtual clock, so results are bit-reproducible; cmd/caexperiments and
// the benchmarks in the repository root drive these entry points.
package experiments

import (
	"time"

	"caaction/internal/harness"
)

// Fig9Config parameterises one §5.2 sensitivity point; Fig9Row is one
// rendered sweep row.
type (
	Fig9Config = harness.Fig9Config
	Fig9Row    = harness.Fig9Row
)

// DefaultFig9 returns the paper's baseline point: Tmmax=0.2s, Tabo=0.1s,
// Treso=0.3s, 20 iterations (94.36 virtual seconds).
func DefaultFig9() Fig9Config { return harness.DefaultFig9() }

// RunFig9Point runs one configuration and reports the virtual completion
// time.
func RunFig9Point(cfg Fig9Config) (time.Duration, error) { return harness.RunFig9Point(cfg) }

// RunFig9 runs the full Figure 9/10 sweeps.
func RunFig9() ([]Fig9Row, error) { return harness.RunFig9() }

// RenderFig9 renders sweep rows as a markdown table.
func RenderFig9(rows []Fig9Row) string { return harness.RenderFig9(rows) }

// Fig12Config parameterises one §5.3 comparison point (its Protocol field
// takes caaction.Coordinated, caaction.CR86 or caaction.R96); Fig12Row is
// one rendered row.
type (
	Fig12Config = harness.Fig12Config
	Fig12Row    = harness.Fig12Row
)

// RunFig12Point runs one comparison point and reports the virtual
// completion time.
func RunFig12Point(cfg Fig12Config) (time.Duration, error) { return harness.RunFig12Point(cfg) }

// RunFig12 runs the full Figure 12/13 sweeps.
func RunFig12() ([]Fig12Row, error) { return harness.RunFig12() }

// RenderFig12 renders comparison rows as a markdown table.
func RenderFig12(rows []Fig12Row) string { return harness.RenderFig12(rows) }

// MsgRow is one measured message-complexity cell (protocol × N × scenario).
type MsgRow = harness.MsgRow

// RunMessageComplexity measures resolution-protocol messages and
// resolution-procedure calls for each thread count in ns, against the
// §3.3.3 closed forms.
func RunMessageComplexity(ns []int) ([]MsgRow, error) { return harness.RunMessageComplexity(ns) }

// RenderMsgs renders message-complexity rows as a markdown table.
func RenderMsgs(rows []MsgRow) string { return harness.RenderMsgs(rows) }

// SigRow is one measured signalling-cost case.
type SigRow = harness.SigRow

// RunSignalling measures the §3.4 exchange for each thread count in ns:
// plain ε mixes, a ƒ vote, and µ with successful and failed undos.
func RunSignalling(ns []int) ([]SigRow, error) { return harness.RunSignalling(ns) }

// RenderSignalling renders signalling rows as a markdown table.
func RenderSignalling(rows []SigRow) string { return harness.RenderSignalling(rows) }

// Lemma1Row is one measured nesting depth against the Lemma 1 bound.
type Lemma1Row = harness.Lemma1Row

// RunLemma1 measures worst-case completion times for each nesting depth and
// checks them against the paper's bound
// T ≤ (2·nmax+3)·Tmmax + nmax·Tabort + (nmax+1)·(Treso+∆max).
func RunLemma1(depths []int, tmmax, tabo, treso time.Duration) ([]Lemma1Row, error) {
	return harness.RunLemma1(depths, tmmax, tabo, treso)
}

// RenderLemma1 renders Lemma 1 rows as a markdown table.
func RenderLemma1(rows []Lemma1Row) string { return harness.RenderLemma1(rows) }
