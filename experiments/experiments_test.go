package experiments_test

import (
	"strings"
	"testing"

	"caaction/experiments"
)

// TestFig9PointSmoke runs a shortened §5.2 sensitivity point through the
// public re-exports. Virtual time makes the result deterministic, so two
// runs must agree exactly.
func TestFig9PointSmoke(t *testing.T) {
	cfg := experiments.DefaultFig9()
	cfg.Loops = 2
	d1, err := experiments.RunFig9Point(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d1 <= 0 {
		t.Fatalf("completion time %v, want > 0", d1)
	}
	d2, err := experiments.RunFig9Point(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("virtual-time run not reproducible: %v vs %v", d1, d2)
	}
}

// TestMessageComplexitySmoke measures one thread count against the §3.3.3
// closed forms and renders the table.
func TestMessageComplexitySmoke(t *testing.T) {
	rows, err := experiments.RunMessageComplexity([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no message-complexity rows")
	}
	if out := experiments.RenderMsgs(rows); !strings.Contains(out, "|") {
		t.Fatalf("RenderMsgs produced no table:\n%s", out)
	}
}

// TestSignallingSmoke measures the §3.4 signalling exchange for one thread
// count.
func TestSignallingSmoke(t *testing.T) {
	rows, err := experiments.RunSignalling([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no signalling rows")
	}
	if out := experiments.RenderSignalling(rows); !strings.Contains(out, "|") {
		t.Fatalf("RenderSignalling produced no table:\n%s", out)
	}
}
