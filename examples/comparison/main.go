// Comparison: the three resolution protocols side by side on one workload —
// N threads raising concurrently — printing message counts and virtual
// completion time. This is a miniature of the paper's §5.3 comparison plus
// the §3.3.3 complexity table, runnable in milliseconds.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"caaction/internal/core"
	"caaction/internal/except"
	"caaction/internal/resolve"
	"caaction/internal/trace"
	"caaction/internal/transport"
	"caaction/internal/vclock"
)

const (
	numThreads = 5
	latency    = 50 * time.Millisecond
	treso      = 20 * time.Millisecond
)

func main() {
	log.SetFlags(0)
	fmt.Printf("N=%d threads, Tmmax=%v, Treso=%v, all raising concurrently\n\n",
		numThreads, latency, treso)
	fmt.Printf("%-14s %10s %10s %12s %12s\n",
		"protocol", "messages", "resolves", "virtual time", "resolved")
	for _, proto := range []resolve.Protocol{
		resolve.Coordinated{}, resolve.R96{}, resolve.CR86{},
	} {
		msgs, calls, elapsed, resolved := run(proto)
		fmt.Printf("%-14s %10d %10d %12v %12s\n",
			proto.Name(), msgs, calls, elapsed, resolved)
	}
	fmt.Println("\nclosed forms (§3.3.3): ours (N+1)(N−1)=24, R-96 3N(N−1)=60,")
	fmt.Println("CR-86 N(N−1)+N(N−1)(N−2)+N(N−1) relays/proposes = 100 at N=5")
}

func run(proto resolve.Protocol) (msgs, calls int64, elapsed time.Duration, resolved except.ID) {
	clk := vclock.NewVirtual()
	metrics := &trace.Metrics{}
	net := transport.NewSim(transport.SimConfig{
		Clock:   clk,
		Latency: transport.FixedLatency(latency),
		Metrics: metrics,
	})
	rt, err := core.New(core.Config{
		Clock: clk, Network: net, Protocol: proto, Metrics: metrics,
	})
	if err != nil {
		log.Fatal(err)
	}

	prims := make([]except.ID, numThreads)
	for i := range prims {
		prims[i] = except.ID(fmt.Sprintf("e%d", i+1))
	}
	graph, err := except.GenerateFull("cmp", prims)
	if err != nil {
		log.Fatal(err)
	}
	roles := make([]core.Role, numThreads)
	for i := range roles {
		roles[i] = core.Role{
			Name:   fmt.Sprintf("r%d", i+1),
			Thread: fmt.Sprintf("T%d", i+1),
		}
	}
	spec := &core.Spec{
		Name:   "cmp",
		Roles:  roles,
		Graph:  graph,
		Timing: core.Timing{Resolution: treso},
	}

	var mu sync.Mutex
	handler := func(ctx *core.Context, res except.ID, _ []except.Raised) error {
		mu.Lock()
		resolved = res
		mu.Unlock()
		return nil
	}
	handlers := map[except.ID]core.Handler{}
	for _, id := range graph.Nodes() {
		handlers[id] = handler
	}

	for i, r := range roles {
		role := r
		exc := prims[i]
		th, err := rt.NewThread(role.Thread)
		if err != nil {
			log.Fatal(err)
		}
		clk.Go(func() {
			err := th.Perform(spec, role.Name, core.RoleProgram{
				Body: func(ctx *core.Context) error {
					if err := ctx.Compute(100 * time.Millisecond); err != nil {
						return err
					}
					return ctx.Raise(exc, "concurrent fault")
				},
				Handlers: handlers,
			})
			if err != nil {
				log.Fatalf("%s: %v", role.Thread, err)
			}
		})
	}
	clk.Wait()

	msgs = metrics.Get("msg.Exception") + metrics.Get("msg.Suspended") +
		metrics.Get("msg.Commit") + metrics.Get("msg.Relay") +
		metrics.Get("msg.Propose") + metrics.Get("msg.Ack")
	return msgs, metrics.Get("resolve.calls"), clk.Now(), resolved
}
