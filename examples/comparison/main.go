// Comparison: the three resolution protocols side by side on one workload —
// N threads raising concurrently — printing message counts and virtual
// completion time. This is a miniature of the paper's §5.3 comparison plus
// the §3.3.3 complexity table, runnable in milliseconds. Protocols are
// picked from the public registry by name, the same mechanism the CLIs'
// flags use.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"caaction"
)

const (
	numThreads = 5
	latency    = 50 * time.Millisecond
	treso      = 20 * time.Millisecond
)

func main() {
	log.SetFlags(0)
	fmt.Printf("N=%d threads, Tmmax=%v, Treso=%v, all raising concurrently\n\n",
		numThreads, latency, treso)
	fmt.Printf("%-14s %10s %10s %12s %12s\n",
		"protocol", "messages", "resolves", "virtual time", "resolved")
	for _, name := range []string{"coordinated", "r96", "cr86"} {
		msgs, calls, elapsed, resolved := run(name)
		fmt.Printf("%-14s %10d %10d %12v %12s\n",
			name, msgs, calls, elapsed, resolved)
	}
	fmt.Println("\nclosed forms (§3.3.3): ours (N+1)(N−1)=24, R-96 3N(N−1)=60,")
	fmt.Println("CR-86 N(N−1)+N(N−1)(N−2)+N(N−1) relays/proposes = 100 at N=5")
}

func run(protocol string) (msgs, calls int64, elapsed time.Duration, resolved caaction.Exception) {
	sys, err := caaction.New(
		caaction.WithVirtualTime(),
		caaction.WithSimTransport(latency),
		caaction.WithResolver(protocol),
	)
	if err != nil {
		log.Fatal(err)
	}

	prims := make([]caaction.Exception, numThreads)
	for i := range prims {
		prims[i] = caaction.Exception(fmt.Sprintf("e%d", i+1))
	}
	graph, err := caaction.GenerateFullGraph("cmp", prims)
	if err != nil {
		log.Fatal(err)
	}
	builder := caaction.NewSpec("cmp").UseGraph(graph).ResolutionCost(treso)
	for i := 0; i < numThreads; i++ {
		builder.Role(fmt.Sprintf("r%d", i+1), fmt.Sprintf("T%d", i+1))
	}
	spec, err := builder.Build()
	if err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	handler := func(ctx *caaction.Context, res caaction.Exception, _ []caaction.Raised) error {
		mu.Lock()
		resolved = res
		mu.Unlock()
		return nil
	}
	handlers := map[caaction.Exception]caaction.Handler{}
	for _, id := range graph.Nodes() {
		handlers[id] = handler
	}

	for i, r := range spec.Roles {
		role := r
		exc := prims[i]
		th, err := sys.Thread(role.Thread)
		if err != nil {
			log.Fatal(err)
		}
		sys.Go(func() {
			err := th.Perform(context.Background(), spec, role.Name, caaction.RoleProgram{
				Body: func(ctx *caaction.Context) error {
					if err := ctx.Compute(100 * time.Millisecond); err != nil {
						return err
					}
					return ctx.Raise(exc, "concurrent fault")
				},
				Handlers: handlers,
			})
			if err != nil {
				log.Fatalf("%s: %v", role.Thread, err)
			}
		})
	}
	sys.Wait()

	metrics := sys.Metrics()
	msgs = metrics.Get("msg.Exception") + metrics.Get("msg.Suspended") +
		metrics.Get("msg.Commit") + metrics.Get("msg.Relay") +
		metrics.Get("msg.Propose") + metrics.Get("msg.Ack")
	return msgs, metrics.Get("resolve.calls"), sys.Now(), resolved
}
