// Quickstart: two cooperating roles inside one CA action. The producer role
// detects a fault and raises an exception; both roles are switched to their
// handlers for the resolved exception and the action completes by forward
// recovery — the paper's Figure 1 in ~80 lines — followed by a second
// action whose unhandled exception aborts it with undo (µ), demonstrating
// the typed outcome errors.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"caaction"
)

func main() {
	log.SetFlags(0)
	sys, err := caaction.New(
		caaction.WithVirtualTime(),
		caaction.WithSimTransport(5*time.Millisecond), // Tmmax
	)
	if err != nil {
		log.Fatal(err)
	}

	// Exception context: one declared exception plus the universal root.
	spec, err := caaction.NewSpec("transfer").
		Role("producer", "T1").
		Role("consumer", "T2").
		Exception("bad_checksum").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	handler := func(ctx *caaction.Context, resolved caaction.Exception, raised []caaction.Raised) error {
		fmt.Printf("[%v] %s/%s handling %q (raised by %s)\n",
			ctx.Now(), ctx.Self(), ctx.Role(), resolved, raised[0].Origin)
		// Forward recovery: resend with a fresh checksum.
		if ctx.Role() == "producer" {
			return ctx.Send("consumer", "block-1 (retransmitted)")
		}
		payload, err := ctx.Recv("producer")
		if err != nil {
			return err
		}
		fmt.Printf("[%v] consumer recovered payload: %v\n", ctx.Now(), payload)
		return nil
	}

	producer := caaction.RoleProgram{
		Body: func(ctx *caaction.Context) error {
			if err := ctx.Send("consumer", "block-1 (corrupted)"); err != nil {
				return err
			}
			return ctx.Compute(50 * time.Millisecond) // interrupted by the consumer's raise
		},
		Handlers: map[caaction.Exception]caaction.Handler{"bad_checksum": handler},
	}
	consumer := caaction.RoleProgram{
		Body: func(ctx *caaction.Context) error {
			payload, err := ctx.Recv("producer")
			if err != nil {
				return err
			}
			fmt.Printf("[%v] consumer got: %v\n", ctx.Now(), payload)
			// Detection: the checksum fails → raise; the runtime informs the
			// producer and coordinates resolution.
			return ctx.Raise("bad_checksum", "crc mismatch on block-1")
		},
		Handlers: map[caaction.Exception]caaction.Handler{"bad_checksum": handler},
	}

	t1, err := sys.Thread("T1")
	if err != nil {
		log.Fatal(err)
	}
	t2, err := sys.Thread("T2")
	if err != nil {
		log.Fatal(err)
	}
	perform(sys, t1, t2, spec, producer, consumer)
	metrics := sys.Metrics()
	fmt.Printf("action completed successfully at virtual time %v\n", sys.Now())
	fmt.Printf("protocol messages: %d (Exception=%d Suspended=%d Commit=%d)\n",
		metrics.Get("msg.total"),
		metrics.Get("msg.Exception"), metrics.Get("msg.Suspended"), metrics.Get("msg.Commit"))

	// A second action raises an exception neither role handles: the
	// termination model converts it to the undo exception µ, coordinated by
	// the signalling algorithm — the typed outcome below is recovered with
	// errors.As.
	audit := caaction.NewSpec("audit").
		Role("producer", "T1").
		Role("consumer", "T2").
		Exception("ledger_corrupt").
		MustBuild()
	perform(sys, t1, t2, audit,
		caaction.RoleProgram{Body: func(ctx *caaction.Context) error {
			return ctx.Raise("ledger_corrupt", "no handler anywhere")
		}},
		caaction.RoleProgram{Body: func(ctx *caaction.Context) error {
			return ctx.Compute(50 * time.Millisecond)
		}},
	)
}

// perform runs one two-role action and reports each role's typed outcome.
func perform(sys *caaction.System, t1, t2 *caaction.Thread, spec *caaction.Spec, p1, p2 caaction.RoleProgram) {
	results := make(chan error, 2)
	sys.Go(func() { results <- t1.Perform(context.Background(), spec, spec.Roles[0].Name, p1) })
	sys.Go(func() { results <- t2.Perform(context.Background(), spec, spec.Roles[1].Name, p2) })
	sys.Wait()
	close(results)
	for err := range results {
		var sig *caaction.SignalledError
		switch {
		case err == nil:
		case errors.As(err, &sig):
			// Every exceptional outcome matches ErrSignalled; errors.As
			// recovers which ε/µ/ƒ this role signalled.
			switch sig.Exc {
			case caaction.Undo:
				fmt.Printf("action %s aborted and undone (µ)\n", sig.Action)
			case caaction.Failure:
				fmt.Printf("action %s failed (ƒ)\n", sig.Action)
			default:
				fmt.Printf("action %s signalled %q\n", sig.Action, sig.Exc)
			}
		default:
			log.Fatalf("action outcome: %v", err)
		}
	}
}
