// Quickstart: two cooperating roles inside one CA action. The producer role
// detects a fault and raises an exception; both roles are switched to their
// handlers for the resolved exception and the action completes by forward
// recovery — the paper's Figure 1 in ~80 lines.
package main

import (
	"fmt"
	"log"
	"time"

	"caaction/internal/core"
	"caaction/internal/except"
	"caaction/internal/trace"
	"caaction/internal/transport"
	"caaction/internal/vclock"
)

func main() {
	log.SetFlags(0)
	clk := vclock.NewVirtual()
	metrics := &trace.Metrics{}
	net := transport.NewSim(transport.SimConfig{
		Clock:   clk,
		Latency: transport.FixedLatency(5 * time.Millisecond), // Tmmax
		Metrics: metrics,
	})
	rt, err := core.New(core.Config{Clock: clk, Network: net, Metrics: metrics})
	if err != nil {
		log.Fatal(err)
	}

	// Exception context: one declared exception plus the universal root.
	graph, err := except.NewBuilder("transfer").
		Node("bad_checksum").
		WithUniversal().
		Build()
	if err != nil {
		log.Fatal(err)
	}
	spec := &core.Spec{
		Name: "transfer",
		Roles: []core.Role{
			{Name: "producer", Thread: "T1"},
			{Name: "consumer", Thread: "T2"},
		},
		Graph: graph,
	}

	handler := func(ctx *core.Context, resolved except.ID, raised []except.Raised) error {
		fmt.Printf("[%v] %s/%s handling %q (raised by %s)\n",
			ctx.Now(), ctx.Self(), ctx.Role(), resolved, raised[0].Origin)
		// Forward recovery: resend with a fresh checksum.
		if ctx.Role() == "producer" {
			return ctx.Send("consumer", "block-1 (retransmitted)")
		}
		payload, err := ctx.Recv("producer")
		if err != nil {
			return err
		}
		fmt.Printf("[%v] consumer recovered payload: %v\n", ctx.Now(), payload)
		return nil
	}

	producer := core.RoleProgram{
		Body: func(ctx *core.Context) error {
			if err := ctx.Send("consumer", "block-1 (corrupted)"); err != nil {
				return err
			}
			return ctx.Compute(50 * time.Millisecond) // interrupted by the consumer's raise
		},
		Handlers: map[except.ID]core.Handler{"bad_checksum": handler},
	}
	consumer := core.RoleProgram{
		Body: func(ctx *core.Context) error {
			payload, err := ctx.Recv("producer")
			if err != nil {
				return err
			}
			fmt.Printf("[%v] consumer got: %v\n", ctx.Now(), payload)
			// Detection: the checksum fails → raise; the runtime informs the
			// producer and coordinates resolution.
			return ctx.Raise("bad_checksum", "crc mismatch on block-1")
		},
		Handlers: map[except.ID]core.Handler{"bad_checksum": handler},
	}

	t1, err := rt.NewThread("T1")
	if err != nil {
		log.Fatal(err)
	}
	t2, err := rt.NewThread("T2")
	if err != nil {
		log.Fatal(err)
	}
	results := make(chan error, 2)
	clk.Go(func() { results <- t1.Perform(spec, "producer", producer) })
	clk.Go(func() { results <- t2.Perform(spec, "consumer", consumer) })
	clk.Wait()
	close(results)
	for err := range results {
		if err != nil {
			log.Fatalf("action outcome: %v", err)
		}
	}
	fmt.Printf("action completed successfully at virtual time %v\n", clk.Now())
	fmt.Printf("protocol messages: %d (Exception=%d Suspended=%d Commit=%d)\n",
		metrics.Get("msg.total"),
		metrics.Get("msg.Exception"), metrics.Get("msg.Suspended"), metrics.Get("msg.Commit"))
}
