// Production cell: the paper's §4 case study end to end. Runs one
// fault-free cycle, then a cycle where both table motors fail concurrently —
// the two sensor/device roles raise vm_stop and rm_stop at nearly the same
// time and the Figure 7 exception graph resolves them to
// dual_motor_failures, whose handlers repair both motors and complete the
// cycle.
package main

import (
	"fmt"
	"log"
	"time"

	"caaction"
	"caaction/prodcell"
)

func main() {
	log.SetFlags(0)
	sys, err := caaction.New(
		caaction.WithVirtualTime(),
		caaction.WithSimTransport(time.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}
	plant := prodcell.NewPlant(sys, prodcell.DefaultPlantConfig())
	ctl, err := prodcell.NewController(sys, plant, prodcell.DefaultControlConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("cycle 1: fault-free")
	report(ctl.RunCycle(), sys)

	fmt.Println("cycle 2: both table motors fail concurrently (dual_motor_failures)")
	if err := plant.Inject(prodcell.FaultMotorStop, prodcell.AxisTableVert); err != nil {
		log.Fatal(err)
	}
	if err := plant.Inject(prodcell.FaultMotorStop, prodcell.AxisTableRot); err != nil {
		log.Fatal(err)
	}
	report(ctl.RunCycle(), sys)

	fmt.Println("plant:")
	for _, b := range plant.Blanks() {
		fmt.Printf("  blank %d: %s forged=%v\n", b.ID, b.Loc, b.Forged)
	}
	if v := plant.Violations(); len(v) != 0 {
		log.Fatalf("SAFETY VIOLATIONS: %v", v)
	}
	fmt.Println("safety invariants held throughout")
}

func report(rep *prodcell.Report, sys *caaction.System) {
	ok := 0
	for _, err := range rep.Outcomes {
		if err == nil {
			ok++
		}
	}
	fmt.Printf("  %d/%d roles completed normally at virtual time %v\n",
		ok, len(rep.Outcomes), sys.Now())
	for th, handled := range rep.Handled {
		fmt.Printf("  %-8s handled %v\n", th, handled)
	}
	fmt.Println()
}
