// Production cell: the paper's §4 case study end to end. Runs one
// fault-free cycle, then a cycle where both table motors fail concurrently —
// the two sensor/device roles raise vm_stop and rm_stop at nearly the same
// time and the Figure 7 exception graph resolves them to
// dual_motor_failures, whose handlers repair both motors and complete the
// cycle.
package main

import (
	"fmt"
	"log"
	"time"

	"caaction/internal/control"
	"caaction/internal/core"
	"caaction/internal/prodcell"
	"caaction/internal/trace"
	"caaction/internal/transport"
	"caaction/internal/vclock"
)

func main() {
	log.SetFlags(0)
	clk := vclock.NewVirtual()
	metrics := &trace.Metrics{}
	net := transport.NewSim(transport.SimConfig{
		Clock:   clk,
		Latency: transport.FixedLatency(time.Millisecond),
		Metrics: metrics,
	})
	rt, err := core.New(core.Config{Clock: clk, Network: net, Metrics: metrics})
	if err != nil {
		log.Fatal(err)
	}
	plant := prodcell.New(clk, prodcell.DefaultConfig())
	ctl, err := control.New(rt, plant, control.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("cycle 1: fault-free")
	report(ctl.RunCycle(), clk)

	fmt.Println("cycle 2: both table motors fail concurrently (dual_motor_failures)")
	if err := plant.Inject(prodcell.FaultMotorStop, prodcell.AxisTableVert); err != nil {
		log.Fatal(err)
	}
	if err := plant.Inject(prodcell.FaultMotorStop, prodcell.AxisTableRot); err != nil {
		log.Fatal(err)
	}
	report(ctl.RunCycle(), clk)

	fmt.Println("plant:")
	for _, b := range plant.Blanks() {
		fmt.Printf("  blank %d: %s forged=%v\n", b.ID, b.Loc, b.Forged)
	}
	if v := plant.Violations(); len(v) != 0 {
		log.Fatalf("SAFETY VIOLATIONS: %v", v)
	}
	fmt.Println("safety invariants held throughout")
}

func report(rep *control.Report, clk *vclock.Virtual) {
	ok := 0
	for _, err := range rep.Outcomes {
		if err == nil {
			ok++
		}
	}
	fmt.Printf("  %d/%d roles completed normally at virtual time %v\n",
		ok, len(rep.Outcomes), clk.Now())
	for th, handled := range rep.Handled {
		fmt.Printf("  %-8s handled %v\n", th, handled)
	}
	fmt.Println()
}
