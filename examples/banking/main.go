// Banking: external atomic objects under CA actions — the §3.1 model's
// transactional side. Two roles transfer money between accounts (external
// atomic objects shared with other actions). Three scenarios:
//
//  1. a clean transfer commits;
//  2. a fraud alert is raised mid-transfer and the handlers repair the
//     accounts to new valid states (forward recovery, the action still
//     commits);
//  3. an unhandleable exception aborts the action: the undo exception µ is
//     coordinated by the signalling algorithm and the accounts roll back to
//     their before-images.
package main

import (
	"fmt"
	"log"
	"time"

	"caaction/internal/core"
	"caaction/internal/except"
	"caaction/internal/transport"
	"caaction/internal/vclock"
)

func main() {
	log.SetFlags(0)
	clk := vclock.NewVirtual()
	net := transport.NewSim(transport.SimConfig{
		Clock:   clk,
		Latency: transport.FixedLatency(2 * time.Millisecond),
	})
	rt, err := core.New(core.Config{Clock: clk, Network: net})
	if err != nil {
		log.Fatal(err)
	}
	accounts := rt.Objects()
	alice, err := accounts.Define("alice", 1000)
	if err != nil {
		log.Fatal(err)
	}
	bob, err := accounts.Define("bob", 200)
	if err != nil {
		log.Fatal(err)
	}

	graph, err := except.NewBuilder("transfer").
		Node("fraud_alert").
		Node("ledger_corrupt").
		WithUniversal().
		Build()
	if err != nil {
		log.Fatal(err)
	}
	spec := &core.Spec{
		Name: "transfer",
		Roles: []core.Role{
			{Name: "debit", Thread: "T1"},
			{Name: "credit", Thread: "T2"},
		},
		Graph: graph,
	}

	t1, err := rt.NewThread("T1")
	if err != nil {
		log.Fatal(err)
	}
	t2, err := rt.NewThread("T2")
	if err != nil {
		log.Fatal(err)
	}

	runTransfer := func(title string, amount int, debit, credit core.RoleProgram) {
		fmt.Printf("== %s ==\n", title)
		results := make(chan error, 2)
		clk.Go(func() { results <- t1.Perform(spec, "debit", debit) })
		clk.Go(func() { results <- t2.Perform(spec, "credit", credit) })
		clk.Wait()
		close(results)
		for err := range results {
			switch {
			case err == nil:
			case core.IsUndone(err):
				fmt.Println("  outcome: aborted and undone (µ)")
			case core.IsFailed(err):
				fmt.Println("  outcome: failed (ƒ)")
			default:
				fmt.Printf("  outcome: %v\n", err)
			}
		}
		fmt.Printf("  balances: alice=%v bob=%v (versions %d/%d)\n\n",
			alice.Peek(), bob.Peek(), alice.Version(), bob.Version())
	}

	debitBody := func(amount int, raise except.ID) core.Body {
		return func(ctx *core.Context) error {
			bal, err := ctx.Tx().Read("alice")
			if err != nil {
				return err
			}
			if err := ctx.Tx().Write("alice", bal.(int)-amount); err != nil {
				return err
			}
			if raise != except.None {
				return ctx.Raise(raise, "suspicious transfer pattern")
			}
			return ctx.Send("credit", amount)
		}
	}
	creditBody := func(ctx *core.Context) error {
		v, err := ctx.Recv("debit")
		if err != nil {
			return err
		}
		bal, err := ctx.Tx().Read("bob")
		if err != nil {
			return err
		}
		return ctx.Tx().Write("bob", bal.(int)+v.(int))
	}

	// 1. Clean transfer of 300: both objects commit atomically at exit.
	runTransfer("clean transfer of 300", 300,
		core.RoleProgram{Body: debitBody(300, except.None)},
		core.RoleProgram{Body: creditBody},
	)

	// 2. Fraud alert: handlers repair the accounts to new valid states —
	// the debit is reversed and a fee is charged; the action commits the
	// repaired state (forward error recovery on external objects).
	repair := func(ctx *core.Context, resolved except.ID, _ []except.Raised) error {
		if ctx.Role() == "debit" {
			bal, err := ctx.Tx().Read("alice")
			if err != nil {
				return err
			}
			return ctx.Tx().Write("alice", bal.(int)+500-25) // reverse, charge fee
		}
		return nil
	}
	runTransfer("transfer of 500 with fraud alert (forward recovery)", 500,
		core.RoleProgram{
			Body:     debitBody(500, "fraud_alert"),
			Handlers: map[except.ID]core.Handler{"fraud_alert": repair},
		},
		core.RoleProgram{
			Body:     creditBody,
			Handlers: map[except.ID]core.Handler{"fraud_alert": func(ctx *core.Context, r except.ID, raised []except.Raised) error { return repair(ctx, r, raised) }},
		},
	)

	// 3. Ledger corruption has no handler: the termination model converts
	// it to the undo exception µ; the signalling algorithm coordinates the
	// undo and both accounts are restored to their before-images.
	runTransfer("transfer of 900 hitting unhandled corruption (undo)", 900,
		core.RoleProgram{Body: debitBody(900, "ledger_corrupt")},
		core.RoleProgram{Body: creditBody},
	)
}
