// Banking: external atomic objects under CA actions — the §3.1 model's
// transactional side. Two roles transfer money between accounts (external
// atomic objects shared with other actions). Three scenarios:
//
//  1. a clean transfer commits;
//  2. a fraud alert is raised mid-transfer and the handlers repair the
//     accounts to new valid states (forward recovery, the action still
//     commits);
//  3. an unhandleable exception aborts the action: the undo exception µ is
//     coordinated by the signalling algorithm and the accounts roll back to
//     their before-images.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"caaction"
)

func main() {
	log.SetFlags(0)
	sys, err := caaction.New(
		caaction.WithVirtualTime(),
		caaction.WithSimTransport(2*time.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}
	alice, err := sys.Define("alice", 1000)
	if err != nil {
		log.Fatal(err)
	}
	bob, err := sys.Define("bob", 200)
	if err != nil {
		log.Fatal(err)
	}

	spec, err := caaction.NewSpec("transfer").
		Role("debit", "T1").
		Role("credit", "T2").
		Exception("fraud_alert", "ledger_corrupt").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	t1, err := sys.Thread("T1")
	if err != nil {
		log.Fatal(err)
	}
	t2, err := sys.Thread("T2")
	if err != nil {
		log.Fatal(err)
	}

	runTransfer := func(title string, debit, credit caaction.RoleProgram) {
		fmt.Printf("== %s ==\n", title)
		results := make(chan error, 2)
		sys.Go(func() { results <- t1.Perform(context.Background(), spec, "debit", debit) })
		sys.Go(func() { results <- t2.Perform(context.Background(), spec, "credit", credit) })
		sys.Wait()
		close(results)
		for err := range results {
			switch {
			case err == nil:
			case caaction.IsUndone(err):
				fmt.Println("  outcome: aborted and undone (µ)")
			case caaction.IsFailed(err):
				fmt.Println("  outcome: failed (ƒ)")
			default:
				fmt.Printf("  outcome: %v\n", err)
			}
		}
		fmt.Printf("  balances: alice=%v bob=%v (versions %d/%d)\n\n",
			alice.Peek(), bob.Peek(), alice.Version(), bob.Version())
	}

	debitBody := func(amount int, raise caaction.Exception) caaction.Body {
		return func(ctx *caaction.Context) error {
			bal, err := ctx.Tx().Read("alice")
			if err != nil {
				return err
			}
			if err := ctx.Tx().Write("alice", bal.(int)-amount); err != nil {
				return err
			}
			if raise != caaction.NoException {
				return ctx.Raise(raise, "suspicious transfer pattern")
			}
			return ctx.Send("credit", amount)
		}
	}
	creditBody := func(ctx *caaction.Context) error {
		v, err := ctx.Recv("debit")
		if err != nil {
			return err
		}
		bal, err := ctx.Tx().Read("bob")
		if err != nil {
			return err
		}
		return ctx.Tx().Write("bob", bal.(int)+v.(int))
	}

	// 1. Clean transfer of 300: both objects commit atomically at exit.
	runTransfer("clean transfer of 300",
		caaction.RoleProgram{Body: debitBody(300, caaction.NoException)},
		caaction.RoleProgram{Body: creditBody},
	)

	// 2. Fraud alert: handlers repair the accounts to new valid states —
	// the debit is reversed and a fee is charged; the action commits the
	// repaired state (forward error recovery on external objects).
	repair := func(ctx *caaction.Context, resolved caaction.Exception, _ []caaction.Raised) error {
		if ctx.Role() == "debit" {
			bal, err := ctx.Tx().Read("alice")
			if err != nil {
				return err
			}
			return ctx.Tx().Write("alice", bal.(int)+500-25) // reverse, charge fee
		}
		return nil
	}
	runTransfer("transfer of 500 with fraud alert (forward recovery)",
		caaction.RoleProgram{
			Body:     debitBody(500, "fraud_alert"),
			Handlers: map[caaction.Exception]caaction.Handler{"fraud_alert": repair},
		},
		caaction.RoleProgram{
			Body:     creditBody,
			Handlers: map[caaction.Exception]caaction.Handler{"fraud_alert": repair},
		},
	)

	// 3. Ledger corruption has no handler: the termination model converts
	// it to the undo exception µ; the signalling algorithm coordinates the
	// undo and both accounts are restored to their before-images.
	runTransfer("transfer of 900 hitting unhandled corruption (undo)",
		caaction.RoleProgram{Body: debitBody(900, "ledger_corrupt")},
		caaction.RoleProgram{Body: creditBody},
	)
}
