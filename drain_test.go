package caaction_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"caaction"
)

func soloSpec(t *testing.T, thread string) *caaction.Spec {
	t.Helper()
	spec, err := caaction.NewSpec("solo").Role("only", thread).Build()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestDrainWaitsForInflight pins the graceful-shutdown contract: Drain
// refuses new StartAction (and Thread) with ErrDraining, blocks until the
// in-flight action finishes, and only then returns — after which Close
// flips refusals to ErrSystemClosed.
func TestDrainWaitsForInflight(t *testing.T) {
	sys, err := caaction.New(caaction.WithRealTime())
	if err != nil {
		t.Fatal(err)
	}
	spec := soloSpec(t, "T1")

	gate := make(chan struct{})
	h, err := sys.StartAction(context.Background(), spec, map[string]caaction.RoleProgram{
		"only": {Body: func(ctx *caaction.Context) error { <-gate; return nil }},
	})
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() { drained <- sys.Drain(context.Background()) }()
	// Wait until the drain marker is visible, then probe the refusals.
	deadline := time.Now().Add(5 * time.Second)
	for !sys.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("Drain never set the draining marker")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := sys.StartAction(context.Background(), soloSpec(t, "T2"), map[string]caaction.RoleProgram{
		"only": {Body: func(ctx *caaction.Context) error { return nil }},
	}); !errors.Is(err, caaction.ErrDraining) {
		t.Fatalf("StartAction while draining = %v, want ErrDraining", err)
	}
	if _, err := sys.Thread("T3"); !errors.Is(err, caaction.ErrDraining) {
		t.Fatalf("Thread while draining = %v, want ErrDraining", err)
	}
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with the action still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(gate) // let the in-flight action finish
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return after the in-flight action finished")
	}
	h.WaitDone()
	if err := h.Err(); err != nil {
		t.Fatalf("in-flight action outcome = %v, want success across the drain", err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.StartAction(context.Background(), spec, map[string]caaction.RoleProgram{
		"only": {Body: func(ctx *caaction.Context) error { return nil }},
	}); !errors.Is(err, caaction.ErrSystemClosed) {
		t.Fatalf("StartAction after Close = %v, want ErrSystemClosed", err)
	}
}

// TestDrainContextCancel: a Drain whose context expires returns the typed
// interruption without waiting forever, leaving the in-flight work running.
func TestDrainContextCancel(t *testing.T) {
	sys, err := caaction.New(caaction.WithRealTime())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	gate := make(chan struct{})
	defer close(gate)
	_, err = sys.StartAction(context.Background(), soloSpec(t, "T1"), map[string]caaction.RoleProgram{
		"only": {Body: func(ctx *caaction.Context) error { <-gate; return nil }},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := sys.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with expired ctx = %v, want DeadlineExceeded", err)
	}
}

// TestStartTagged pins caller-assigned instance tags: the tag becomes the
// handle id (and thus the wire prefix), and malformed tags are rejected.
func TestStartTagged(t *testing.T) {
	sys, err := caaction.New()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	spec := soloSpec(t, "T1")
	progs := map[string]caaction.RoleProgram{
		"only": {Body: func(ctx *caaction.Context) error { return nil }},
	}
	for _, bad := range []string{"", "a!b", "a/b", "a#1"} {
		if _, err := sys.StartTagged(context.Background(), bad, spec, progs); err == nil {
			t.Errorf("StartTagged(%q) succeeded, want tag rejection", bad)
		}
	}
	h, err := sys.StartTagged(context.Background(), "round-7", spec, progs)
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() != "round-7" {
		t.Fatalf("handle id = %q, want the assigned tag", h.ID())
	}
	sys.Wait()
	if err := h.Err(); err != nil {
		t.Fatalf("tagged action outcome = %v", err)
	}
}

// TestWithClusterValidation checks the option conflicts WithCluster
// documents.
func TestWithClusterValidation(t *testing.T) {
	local := func(string) bool { return true }
	resolve := func(string) (string, bool) { return "", false }
	cc := caaction.ClusterConfig{Local: local, Resolve: resolve}
	cases := []struct {
		name string
		opts []caaction.Option
	}{
		{"nil callbacks", []caaction.Option{caaction.WithCluster(caaction.ClusterConfig{})}},
		{"virtual time", []caaction.Option{caaction.WithCluster(cc), caaction.WithVirtualTime()}},
		{"custom clock", []caaction.Option{caaction.WithCluster(cc), caaction.WithClock(fakeClock{})}},
		{"gob wire", []caaction.Option{caaction.WithCluster(cc), caaction.WithGobWire()}},
		{"peer", []caaction.Option{caaction.WithCluster(cc), caaction.WithPeer("T9", "127.0.0.1:1")}},
		{"sim transport", []caaction.Option{caaction.WithCluster(cc), caaction.WithSimTransport(0)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if sys, err := caaction.New(tc.opts...); err == nil {
				_ = sys.Close()
				t.Fatalf("New(%s) succeeded, want option conflict", tc.name)
			}
		})
	}
}

// TestClusterTwoNodes runs one logical action across two Systems in cluster
// mode within this process — the in-process model of two canode daemons.
// Each node hosts one role under a shared driver-assigned tag; the entry
// barrier, message exchange and exit protocol all cross the node boundary
// over node-qualified TCP frames.
func TestClusterTwoNodes(t *testing.T) {
	var (
		mu    sync.Mutex
		table = map[string]string{} // thread → node data addr
	)
	resolve := func(thread string) (string, bool) {
		mu.Lock()
		defer mu.Unlock()
		hp, ok := table[thread]
		return hp, ok
	}
	mkNode := func(hosted string) *caaction.System {
		sys, err := caaction.New(caaction.WithCluster(caaction.ClusterConfig{
			Local:   func(thread string) bool { return thread == hosted },
			Resolve: resolve,
		}))
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		table[hosted] = sys.ClusterAddr()
		mu.Unlock()
		return sys
	}
	n1 := mkNode("T1")
	defer func() { _ = n1.Close() }()
	n2 := mkNode("T2")
	defer func() { _ = n2.Close() }()
	if n1.ClusterAddr() == "" || n1.Virtual() {
		t.Fatal("cluster node must have a data address and run on the real clock")
	}

	spec, err := caaction.NewSpec("xfer").
		Role("producer", "T1").
		Role("consumer", "T2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	const tag = "g1"
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Each node supplies only its local role's program; the driver hands
	// both the same tag so the two halves form one instance on the wire.
	h1, err := n1.StartTagged(ctx, tag, spec, map[string]caaction.RoleProgram{
		"producer": {Body: func(c *caaction.Context) error { return c.Send("consumer", "payload") }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := h1.Roles(); len(got) != 1 || got[0] != "producer" {
		t.Fatalf("node1 roles = %v, want just the locally-placed producer", got)
	}
	h2, err := n2.StartTagged(ctx, tag, spec, map[string]caaction.RoleProgram{
		"consumer": {Body: func(c *caaction.Context) error {
			v, err := c.Recv("producer")
			if err != nil {
				return err
			}
			if v != "payload" {
				t.Errorf("consumer received %v", v)
			}
			return nil
		}},
	})
	if err != nil {
		t.Fatal(err)
	}

	h1.WaitDone()
	h2.WaitDone()
	if err := h1.Err(); err != nil {
		t.Errorf("producer node outcome: %v", err)
	}
	if err := h2.Err(); err != nil {
		t.Errorf("consumer node outcome: %v", err)
	}

	// A thread no node hosts is a typed routing failure, not a hang: the
	// spec references T9, which the resolver cannot place.
	orphan, err := caaction.NewSpec("orphan").Role("only", "T9").Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n1.StartTagged(ctx, "g2", orphan, map[string]caaction.RoleProgram{
		"only": {Body: func(c *caaction.Context) error { return nil }},
	}); err == nil {
		t.Error("starting a role for an unhosted thread succeeded, want placement refusal")
	}
}

// fakeClock satisfies caaction.Clock just enough for option validation; it
// is never started because New rejects the combination first.
type fakeClock struct{ caaction.Clock }
