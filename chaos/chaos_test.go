package chaos_test

import (
	"testing"

	"caaction/chaos"
)

// TestChaosPublicSweep drives a sweep through the public facade — the same
// ≥1000-scenario exploration the internal package runs, proving the public
// surface alone is enough to reproduce and triage failures.
func TestChaosPublicSweep(t *testing.T) {
	sum := chaos.Sweep(5000, 1000, 50)
	t.Logf("sweep summary:\n%s", sum)
	if sum.Failed() {
		t.Fatalf("public chaos sweep failed:\n%s", sum)
	}
}

// TestChaosPublicReplay reproduces one scenario from its seed alone and
// checks the fingerprints match — the workflow a developer follows with a
// failing seed from a sweep report.
func TestChaosPublicReplay(t *testing.T) {
	const seed = 424242
	s := chaos.Generate(seed)
	first, err := chaos.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	again, err := chaos.Run(chaos.Generate(seed))
	if err != nil {
		t.Fatal(err)
	}
	if first.Fingerprint() != again.Fingerprint() {
		t.Fatalf("replay from seed diverged:\n%s\nvs\n%s", first.Fingerprint(), again.Fingerprint())
	}
	if len(first.Trace) == 0 {
		t.Fatal("run produced an empty trace")
	}
}

func TestChaosResolversListed(t *testing.T) {
	rs := chaos.Resolvers()
	if len(rs) != 3 {
		t.Fatalf("Resolvers() = %v, want the three paper protocols", rs)
	}
}
