// Package chaos is the public face of the repository's deterministic
// fault-injection engine and property-based protocol sweep: seeded random
// scenarios — role counts, generated exception graphs, concurrent and
// staggered raise sets, nested abort cascades, message drop / duplication /
// reordering / delay, network partitions and thread crash-stops — executed
// against the CA-action runtime and checked against the paper's invariants:
//
//   - every surviving participant of a resolution round agrees on the same
//     resolved exception over the same raised set;
//   - the resolved exception is exactly the cover-set resolution the
//     action's exception graph prescribes;
//   - an enclosing raise aborts exactly one nested frame per nesting level
//     in every descending thread (§3.3.2's cascade);
//   - per-round message counts respect §3.3.3: (N+1)(N−1) for the paper's
//     Coordinated algorithm, 3N(N−1) for R96, O(N³) for CR86;
//   - ClassConcurrent scenarios run under all three resolution protocols
//     and must produce identical decisions.
//
// Flat fault-free scenarios may additionally carry a concurrent-actions
// axis (Scenario.Parallel): the action then runs as several independent
// instances on one runtime, multiplexed over shared per-thread transport
// endpoints, and every invariant is checked per instance — participants are
// keyed "p<k>!T<i>" in Result.Outcomes/Decisions (see Result.Participants).
//
// # The seed-replay contract
//
// Every scenario runs on a sequential virtual clock that serializes the
// whole distributed execution into one deterministic total order, and every
// random choice (scenario shape and per-message fault rolls alike) derives
// from the scenario seed. The same seed therefore replays a byte-identical
// event trace — same perturbation verdicts, same deliveries, same
// decisions, same outcomes — so a failing scenario is fully reproducible
// from the seed printed in the sweep report:
//
//	res, err := chaos.Run(chaos.Generate(failingSeed))
//
// reproduces the exact run, and Result.Trace / Result.Fingerprint render it
// for inspection. cmd/cachaos drives long sweeps from the command line.
package chaos

import (
	"caaction/internal/chaos"
)

// Faults is a scenario's fault plan: per-message perturbation probabilities
// plus structural faults (crash-stops, a partition window). The zero value
// is fault-free.
type Faults = chaos.Faults

// Scenario is one fully specified randomized experiment, derived from its
// seed by Generate; Run is a pure function of the scenario.
type Scenario = chaos.Scenario

// Decision is one thread's record of one completed resolution round;
// Result is the observable outcome of one scenario run, with Check
// verifying the paper's invariants against it.
type (
	Decision = chaos.Decision
	Result   = chaos.Result
)

// Violation is one invariant breach found by a sweep; Summary aggregates a
// sweep's scenarios, runs, stalls and failures.
type (
	Violation = chaos.Violation
	Summary   = chaos.Summary
)

// RestartPlan is the kill-and-restart axis of a ClassRestart scenario:
// one thread is killed mid-protocol and reborn from its write-ahead log,
// re-joining the action when its crash falls inside the recovery window
// and abandoning it deterministically otherwise (§3.4).
type RestartPlan = chaos.RestartPlan

// Scenario classes drawn by Generate (ClassRestart only by
// GenerateRestart).
const (
	ClassConcurrent = chaos.ClassConcurrent
	ClassStaggered  = chaos.ClassStaggered
	ClassNested     = chaos.ClassNested
	ClassFaulty     = chaos.ClassFaulty
	ClassRestart    = chaos.ClassRestart
)

// Resolvers lists the resolution protocols every sweep exercises.
func Resolvers() []string { return append([]string(nil), chaos.Resolvers...) }

// Generate derives a scenario from its seed: 2–5 threads, a full exception
// graph over 2–4 primitives, a random raise set, and per-class timing and
// fault plans.
func Generate(seed int64) Scenario { return chaos.Generate(seed) }

// GenerateRestart derives a kill-and-restart recovery scenario from its
// seed: a flat fault-free action in which one thread is killed
// mid-protocol and later reborn from its write-ahead log. Run's Result
// reports the recovery status in Reborn, and Check verifies the recovery
// invariants on top of the usual safety checks.
func GenerateRestart(seed int64) Scenario { return chaos.GenerateRestart(seed) }

// Run executes the scenario under its own resolver, deterministically.
func Run(s Scenario) (*Result, error) { return chaos.Run(s) }

// RunWith executes the scenario under the named resolution protocol
// ("coordinated", "cr86" or "r96").
func RunWith(s Scenario, resolver string) (*Result, error) {
	return chaos.RunWith(s, resolver)
}

// Sweep generates and runs n scenarios from consecutive seeds starting at
// baseSeed, checking every invariant; ClassConcurrent scenarios run under
// all three resolvers and are cross-compared. Every replayEvery-th scenario
// is run twice and its fingerprints compared, enforcing the seed-replay
// contract (replayEvery <= 0 disables replays).
func Sweep(baseSeed int64, n, replayEvery int) *Summary {
	return chaos.Sweep(baseSeed, n, replayEvery)
}
