// Package caaction is a Go reproduction of "Coordinated Exception Handling
// in Distributed Object Systems: from Model to System Implementation"
// (J. Xu, A. Romanovsky, B. Randell; ICDCS 1998): coordinated atomic (CA)
// actions with exception graphs, a distributed algorithm for resolving
// concurrently raised exceptions, a distributed exception-signalling
// algorithm, baseline algorithms for comparison, and the industrial
// production-cell case study.
//
// This package is the public API. A System — assembled with New and
// functional options — hosts Threads that perform CA actions described by
// Specs built fluently with NewSpec:
//
//	sys, err := caaction.New(
//		caaction.WithVirtualTime(),
//		caaction.WithSimTransport(5*time.Millisecond),
//	)
//	spec, err := caaction.NewSpec("transfer").
//		Role("producer", "T1").
//		Role("consumer", "T2").
//		Exception("bad_checksum").
//		Build()
//	t1, err := sys.Thread("T1")
//	err = t1.Perform(ctx, spec, "producer", caaction.RoleProgram{Body: ...})
//
// Perform is context-aware: cancelling ctx unwinds the role through the
// runtime's cooperative interrupt path. Exceptional outcomes are typed —
// errors.Is(err, caaction.ErrSignalled) matches any signalled exception and
// AsSignalled (or errors.As) recovers the ε/µ/ƒ that was signalled.
// Resolution protocols ("coordinated", "cr86", "r96") and transports
// ("sim", "tcp") are selectable by name through registries, including from
// command-line flags. The TCP transport speaks a length-prefixed binary
// wire codec by default (hand-rolled for the nine protocol messages, with
// pooled encode buffers); WithGobWire selects the legacy gob encoding for
// compatibility with peers running older releases.
//
// One System hosts any number of concurrent CA-action instances:
// System.StartAction runs every role of a spec on its own goroutine and
// returns an ActionHandle for the instance's per-role outcomes, with
// instances of the same spec — same action names, same thread bindings —
// kept separate on the wire by per-instance identifier tags that a
// demultiplexing layer routes by (one shared transport endpoint per thread
// address, no matter how many instances are in flight; completed instances
// are garbage-collected). Thread.Perform remains the single-action N=1 case
// of the same machinery.
//
// Sustained high-concurrency churn is cheap by construction: WithWorkers(n)
// runs StartAction roles on a resident pool of n role workers (size it at
// roughly concurrent-actions x roles; dispatch is all-or-nothing per
// action, so the pool can never deadlock holding partial worker sets, and
// wider actions fall back to a goroutine per role), while threads, action
// frames, signalling engines and the demultiplexer's virtual endpoints are
// recycled through scrubbed pools — reuse carries zero state across
// instances, pinned by field-level hygiene tests and byte-identical golden
// chaos traces on warm pools. Under the real clock the demultiplexer also
// runs a run-to-completion delivery lane: protocol steps between co-located
// threads execute on the sender's goroutine against the receiver's parked
// continuation, so a causal chain of ready steps crosses zero scheduler
// hand-offs and same-process delivery skips the codec entirely (see
// DESIGN.md, "Event-loop core"). WithoutInlineDelivery restores the
// queue-per-thread model, and WithMuxShards sizes the lock-striped address
// table the lane runs over. The TCP transport coalesces outbound binary
// frames per peer connection on the real clock (flushed at a byte bound or
// a 100µs wall-clock deadline; order preserved, Close flushes — see
// DESIGN.md for the exact flush-deadline semantics).
//
// Production overload control is built in. WithMaxInFlight(n) bounds the
// actions admitted concurrently: past the budget, StartAction, StartTagged
// and Thread fail fast with a typed *OverloadedError (errors.Is-matchable
// via ErrOverloaded, carrying the refusing limit) instead of queueing work
// the system cannot finish. WithTenantBudget(n) adds a per-tenant bound
// under the global one — callers label instances with the WithTenant start
// option, and a tenant at its cap is refused (with the tenant named in the
// error) while others are still admitted. A deadline on StartAction's ctx
// propagates into the runtime: every protocol wait is clamped by it, so a
// doomed action undoes its local effects and unwinds at the deadline —
// releasing its admission slot — rather than consuming budget to complete
// work whose caller has already given up (outcomes match ErrDeadline and
// context.DeadlineExceeded; an already-expired ctx is refused up front).
// For observability, the interned trace counters are exportable in the
// Prometheus text format: WithMetricsAddr("host:port") serves them at
// /metrics over HTTP (Metrics().WritePrometheus writes the same text), and
// cluster nodes additionally answer a control-port "scrape" verb.
//
// The caaction/load subpackage drives thousands of such instances with a
// mixed commit/exceptional/abort/storm workload (CLI-configurable via
// cmd/caload -mix) and reports throughput, latency percentiles, goroutine
// and heap high-water marks, and a concurrency-scaling sweep
// (-sweep 64,256,1024); cmd/caload records the numbers as BENCH_load.json,
// which cmd/perfgate holds future changes to. Its open-loop mode
// (-arrival 4000,12000,24000) offers clock-driven load independent of
// completions — the production traffic shape — and records the
// offered-vs-goodput overload curve against the admission budget, which
// the perf gate holds alongside the closed-loop numbers.
//
// A System can also span OS processes. WithCluster puts the TCP transport
// in node mode: one shared data listener per process, a placement callback
// deciding which thread addresses are local, and a resolver callback
// mapping every remote thread to the host:port of the node currently
// hosting it — consulted per send, so restarted peers heal without
// connection bookkeeping. Action instances span nodes by sharing a
// driver-assigned tag (System.StartTagged); each node starts only its
// locally-placed roles and the entry barrier, resolution and exit protocol
// run over node-qualified frames exactly as in one process. Sends to
// threads whose node is unknown or down fail with ErrUnreachable, and
// graceful shutdown is Drain (refuse new instances with ErrDraining, wait
// for in-flight ones) then Close. The caaction/cluster subpackage builds
// full nodes on this — peer discovery from seeds, liveness, a
// line-delimited control protocol — cmd/canode is the daemon, and
// caaction/cluster/testnet scripts a multi-process local cluster with a
// kill+restart chaos scenario (canode -testnet).
//
// Cross-node traffic rides a batched fast path by default: all messages
// bound for one peer node within a coalesce window flush as a single
// batched node frame (one header plus length-delimited entries, bounded
// by the 64 KiB flush threshold and the per-message frame cap), with
// thread→node resolution cached per flush window and receive-side frame
// buffers and deliveries pooled. Flow control is credit-based per peer:
// the accepting side advertises a message window (default 4096;
// WithPeerWindow tunes it) and grants more as it drains, while a sender
// past the window parks at most one further window before sends fail
// with the typed ErrPeerStalled — so per-peer buffering is bounded at
// two windows and overload surfaces at the sender. WithoutPeerBatch
// (canode -no-peer-batch) disables the fast path end to end, restoring
// the frame-per-message wire; receivers decode both formats, so mixed
// deployments interoperate and the knob is a safe rollback. See
// DESIGN.md "Cross-node fast path" for the wire format, the credit
// protocol and the benchmark that holds the speedup.
//
// Crashes need not be amnesiac. WithRecorder(r) streams every protocol
// state transition — joins, raise/exit votes, concluded outcomes — to a
// Recorder; OpenWAL(path, snapshotEvery) is the durable implementation, a
// group-commit fsynced write-ahead log that compacts itself every
// snapshotEvery records and tolerates a torn tail on replay. A restarted
// process reads the prior WALState back and applies the paper's §3.4
// decision per action: a concluded outcome is recovered from the log, an
// instance still inside its resolution window is re-joined live, and
// anything older is abandoned deterministically. cluster.Config.WALDir
// (the canode -wal-dir flag) wires this into a node: boot replays
// <wal-dir>/<name>.wal, re-starts in-window instances under their original
// tags once peers answer, and answers result queries for abandoned tags
// with the typed cluster.ErrLostToCrash — distinguishable over the control
// protocol from an unknown tag (cluster.ErrUnknownTag). The chaos engine's
// restart scenario class (chaos.GenerateRestart) pins all three shapes
// with golden traces on the virtual clock, and canode -testnet -waldir
// asserts a SIGKILLed node's reborn incarnation re-joins the round it died
// in.
//
// The implementation lives under internal/ (see DESIGN.md for the map);
// the production-cell case study is re-exported as caaction/prodcell, the
// paper's evaluation harness as caaction/experiments, and the deterministic
// chaos engine — seeded fault-injection scenarios checked against the
// paper's invariants, with a same-seed ⇒ identical-trace replay contract —
// as caaction/chaos. Runnable entry points are in cmd/ and examples/: the
// paper's entire evaluation is regenerated by cmd/caexperiments and the
// benchmarks in bench_test.go, cmd/cachaos drives long chaos sweeps, and
// cmd/canode deploys a multi-process cluster.
package caaction
