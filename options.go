package caaction

import (
	"fmt"
	"time"
)

// Option configures New. Options are applied in order; where two options
// set the same knob (e.g. WithVirtualTime and WithRealTime) the last wins.
// Invalid combinations surface as an error from New, never as a panic.
type Option func(*config)

type clockKind int

const (
	clockVirtual clockKind = iota // the default
	clockReal
	clockCustom
)

type config struct {
	clockKind clockKind
	clockSet  bool  // an explicit clock option was given
	clock     Clock // clockCustom only

	transportName string
	transportSet  bool // an explicit With*Transport option was given
	jitterSet     bool
	network       Network
	env           TransportEnv

	resolverName string
	protocol     ResolutionProtocol

	signalTimeout time.Duration
	metrics       *Metrics
	log           *Log
	recorder      Recorder
	workers       int

	maxInFlight  int
	tenantBudget int
	metricsAddr  string

	muxShards int
	noInline  bool

	cluster *ClusterConfig

	err error
}

// validate rejects conflicting option combinations once all options have
// been applied (so the check is order-independent).
func (c *config) validate() error {
	if c.err != nil {
		return c.err
	}
	if c.network != nil && c.transportSet {
		return fmt.Errorf("caaction: WithNetwork conflicts with selecting a transport by name; pass one or the other")
	}
	if c.network != nil && (c.jitterSet || c.env.Peers != nil) {
		return fmt.Errorf("caaction: WithJitter/WithPeer configure registry-built transports and have no effect with WithNetwork")
	}
	if c.protocol != nil && c.resolverName != "" {
		return fmt.Errorf("caaction: WithResolutionProtocol conflicts with WithResolver(%q); pass one or the other", c.resolverName)
	}
	if c.cluster != nil {
		if c.network != nil {
			return fmt.Errorf("caaction: WithCluster conflicts with WithNetwork; the cluster runtime owns the transport")
		}
		if c.transportSet && c.transportName != "tcp" {
			return fmt.Errorf("caaction: WithCluster requires the tcp transport, not %q", c.transportName)
		}
		if c.env.GobWire {
			return fmt.Errorf("caaction: WithCluster conflicts with WithGobWire; node frames require the binary codec")
		}
		if c.env.Peers != nil {
			return fmt.Errorf("caaction: WithCluster conflicts with WithPeer; peers come from the cluster resolver")
		}
		if c.clockKind == clockCustom {
			return fmt.Errorf("caaction: WithCluster conflicts with WithClock; cluster nodes run on the real clock")
		}
		if c.clockKind == clockVirtual && c.clockSet {
			return fmt.Errorf("caaction: WithCluster conflicts with WithVirtualTime; cluster nodes run on the real clock")
		}
	}
	return nil
}

func (c *config) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("caaction: "+format, args...)
	}
}

// WithVirtualTime runs the system on the deterministic virtual clock: a
// conservative discrete-event scheduler under which whole distributed
// executions are reproducible and simulated minutes pass in microseconds.
// This is the default.
func WithVirtualTime() Option {
	return func(c *config) { c.clockKind, c.clockSet = clockVirtual, true }
}

// WithRealTime runs the system on the wall clock, for production deployments
// and for workloads cancelled from real-time contexts.
func WithRealTime() Option {
	return func(c *config) { c.clockKind, c.clockSet = clockReal, true }
}

// WithClock supplies a custom Clock implementation.
func WithClock(clk Clock) Option {
	return func(c *config) {
		if clk == nil {
			c.fail("WithClock: nil clock")
			return
		}
		c.clockKind = clockCustom
		c.clockSet = true
		c.clock = clk
	}
}

// WithSimTransport selects the in-process simulated network (the default)
// with the given one-way message latency (the paper's Tmmax).
func WithSimTransport(latency time.Duration) Option {
	return func(c *config) {
		c.transportName = "sim"
		c.transportSet = true
		c.env.Latency = latency
	}
}

// WithJitter spreads the sim transport's latency uniformly over
// [latency, latency+jitter], seeded for reproducibility.
func WithJitter(jitter time.Duration, seed int64) Option {
	return func(c *config) {
		c.jitterSet = true
		c.env.Jitter = jitter
		c.env.Seed = seed
	}
}

// WithTCPTransport selects the gob-over-TCP network for genuinely
// distributed deployments. addr is the host:port local endpoints listen on;
// empty means loopback with ephemeral ports. Combine with WithPeer to
// introduce threads served by other processes, and usually with
// WithRealTime.
func WithTCPTransport(addr string) Option {
	return func(c *config) {
		c.transportName = "tcp"
		c.transportSet = true
		c.env.ListenAddr = addr
	}
}

// WithGobWire selects the legacy gob wire format for the TCP transport
// instead of the default length-prefixed binary codec, for wire
// compatibility with peers running older releases. Every process of a
// deployment must agree on the wire format. The binary codec is both the
// default and the fast path: it pools encode buffers and hand-rolls the
// nine protocol messages, so prefer it whenever all peers speak it.
func WithGobWire() Option {
	return func(c *config) { c.env.GobWire = true }
}

// WithoutPeerBatch disables the tcp transport's cross-node fast path —
// batched node frames, credit-based peer flow control, the per-flush route
// cache and sink receive delivery — restoring the frame-per-message legacy
// path (see DESIGN.md "Cross-node fast path"). The fast path is on by
// default and interoperates with peers that have it off (receivers always
// accept both wire forms), so this knob exists to isolate a suspected
// fast-path bug or to measure the batching win; it is not needed for mixed
// deployments.
func WithoutPeerBatch() Option {
	return func(c *config) { c.env.NoPeerBatch = true }
}

// WithPeerWindow sets the per-peer credit window, in messages, that this
// node advertises to dialing peers (cluster nodes, tcp transport). A
// dialing peer may have at most window unacknowledged messages on the wire
// plus window pending locally before its sends fail typed with
// ErrPeerStalled — so the window bounds both this node's ingress buffering
// and the sender's memory when this node stalls. The default (4096) suits
// LAN clusters; lower it to tighten backpressure, raise it for
// high-latency links. n must be positive. No effect with WithoutPeerBatch.
func WithPeerWindow(n int) Option {
	return func(c *config) {
		if n <= 0 {
			c.fail("WithPeerWindow: window must be positive, got %d", n)
			return
		}
		c.env.PeerWindow = n
	}
}

// WithPeer records the host:port of a logical thread address served by
// another process (tcp transport).
func WithPeer(thread, hostport string) Option {
	return func(c *config) {
		if c.env.Peers == nil {
			c.env.Peers = make(map[string]string)
		}
		c.env.Peers[thread] = hostport
	}
}

// WithTransport selects a registered transport by name ("sim", "tcp", or a
// name added with RegisterTransport) — the string form used by command-line
// flags. The name is validated by New.
func WithTransport(name string) Option {
	return func(c *config) {
		c.transportName = name
		c.transportSet = true
	}
}

// WithNetwork supplies a fully constructed Network, bypassing the transport
// registry. The System takes ownership and closes it on Close.
func WithNetwork(n Network) Option {
	return func(c *config) {
		if n == nil {
			c.fail("WithNetwork: nil network")
			return
		}
		c.network = n
	}
}

// WithResolver selects a registered resolution protocol by name
// ("coordinated", "cr86", "r96", or a name added with RegisterResolver) —
// the string form used by command-line flags. The name is validated by New.
// The default is "coordinated", the paper's own algorithm.
func WithResolver(name string) Option {
	return func(c *config) { c.resolverName = name }
}

// WithResolutionProtocol supplies a resolution protocol directly.
func WithResolutionProtocol(p ResolutionProtocol) Option {
	return func(c *config) {
		if p == nil {
			c.fail("WithResolutionProtocol: nil protocol")
			return
		}
		c.protocol = p
	}
}

// WithSignalTimeout bounds every action's wait for peers' exit votes; a
// missing vote is then treated as a failure exception ƒ (the §3.4 extension
// for lost messages). Zero — the default — disables the timeout, which is
// correct for reliable transports. Per-action overrides come from
// SpecBuilder.SignalTimeout.
func WithSignalTimeout(d time.Duration) Option {
	return func(c *config) {
		if d < 0 {
			c.fail("WithSignalTimeout: negative duration %v", d)
			return
		}
		c.signalTimeout = d
	}
}

// WithWorkers runs StartAction roles on a resident pool of n role workers
// instead of a fresh goroutine per role, so sustained high-concurrency
// action churn reuses warm stacks (and, with them, the runtime's pooled
// threads and endpoints) instead of paying full lifecycle cost per action.
//
// Dispatch is non-blocking and all-or-nothing per action: either every
// role gets an idle worker immediately, or the action falls back to the
// goroutine-per-role path — StartAction never waits for pool capacity, so
// a saturated pool degrades to the unpooled lifecycle rather than queueing
// (and role bodies that start and wait on further actions cannot deadlock
// the pool). Actions with more roles than n always bypass the pool, as do
// systems whose custom Clock cannot host resident daemon goroutines. Size
// n at roughly (expected concurrent actions) x (roles per action) so the
// fast path dominates. Zero (the default) disables the pool.
func WithWorkers(n int) Option {
	return func(c *config) {
		if n < 0 {
			c.fail("WithWorkers: negative pool size %d", n)
			return
		}
		c.workers = n
	}
}

// WithMuxShards sets the stripe count of the concurrent-action
// demultiplexer's address table. Each logical thread address hashes to one
// stripe, and a stripe's lock serialises delivery, open and close for the
// addresses it owns — so a workload whose actions fan in on a few hot
// thread addresses contends on a few stripes no matter how large the table
// is, while a wide address space spreads across all of them. n is rounded
// up to a power of two; the default is 32. Zero keeps the default; negative
// values fail New.
func WithMuxShards(n int) Option {
	return func(c *config) {
		if n < 0 {
			c.fail("WithMuxShards: negative shard count %d", n)
			return
		}
		c.muxShards = n
	}
}

// WithoutInlineDelivery disables the run-to-completion delivery lane of the
// concurrent-action demultiplexer and restores the queue-per-thread model:
// every delivery is buffered and the receiving thread's own goroutine is
// woken to process it. The inline lane — on by default under the real clock
// — routes protocol steps for co-located threads on the sender's goroutine
// and skips the queue hand-off and scheduler wakeup per hop; disable it to
// isolate a suspected fast-path bug or to compare scheduling models under
// load. Virtual-time systems always use the queue model (determinism
// requires the scheduler to mediate every hand-off), so this option is a
// no-op under WithVirtualTime.
func WithoutInlineDelivery() Option {
	return func(c *config) { c.noInline = true }
}

// WithMaxInFlight bounds the number of simultaneously in-flight action
// instances admitted by StartAction/StartTagged: once n actions have been
// admitted and not yet finished, further starts fast-reject with a typed
// *OverloadedError (matching ErrOverloaded) instead of queueing — the
// admission-control half of keeping tail latency bounded under overload
// (shed at the door; never collapse into an unbounded queue). Thread also
// refuses with ErrOverloaded while the budget is exhausted. Zero — the
// default — disables admission control. Size n near the concurrency at
// which throughput saturates (the caload sweep's knee).
func WithMaxInFlight(n int) Option {
	return func(c *config) {
		if n < 0 {
			c.fail("WithMaxInFlight: negative budget %d", n)
			return
		}
		c.maxInFlight = n
	}
}

// WithTenantBudget bounds the in-flight actions of each single tenant
// (WithTenant on StartAction) to n, so one noisy workload exhausts its own
// budget — and fast-rejects with a *OverloadedError naming the tenant —
// while other tenants keep being admitted. Actions started without a tenant
// share the "" tenant. The global WithMaxInFlight budget (if any) still
// applies on top. Zero disables per-tenant budgeting.
func WithTenantBudget(n int) Option {
	return func(c *config) {
		if n < 0 {
			c.fail("WithTenantBudget: negative budget %d", n)
			return
		}
		c.tenantBudget = n
	}
}

// WithMetricsAddr serves the system's counter registry as a Prometheus
// text-format scrape: an HTTP listener binds addr (host:port; ":0" for an
// ephemeral port, see System.MetricsAddr for the bound address) and answers
// GET /metrics with every counter — protocol messages, action outcomes,
// admission rejects — as "caaction_"-prefixed monotonic counters. The
// listener is bound by New (a bind failure fails New) and closed by Close.
func WithMetricsAddr(addr string) Option {
	return func(c *config) {
		if addr == "" {
			c.fail("WithMetricsAddr: empty address")
			return
		}
		c.metricsAddr = addr
	}
}

// WithMetrics shares an externally owned Metrics with the system, so
// callers can aggregate counters across systems or read them after Close.
// By default every System owns a fresh Metrics, available via Metrics().
func WithMetrics(m *Metrics) Option {
	return func(c *config) {
		if m == nil {
			c.fail("WithMetrics: nil metrics")
			return
		}
		c.metrics = m
	}
}

// WithRecorder attaches a write-ahead recorder of protocol state: joins,
// raises, exit votes and outcomes are recorded before the corresponding
// message is sent, so a restarted node can replay them and re-join (or
// deterministically abort) its in-flight actions. Pair with OpenWAL for
// the durable on-disk log; see the Recorder type. By default nothing is
// recorded.
func WithRecorder(r Recorder) Option {
	return func(c *config) {
		if r == nil {
			c.fail("WithRecorder: nil recorder")
			return
		}
		c.recorder = r
	}
}

// WithLog attaches an event log capturing runtime and transport events
// (entries, raises, resolutions, exits, sends). By default no log is kept.
func WithLog(l *Log) Option {
	return func(c *config) {
		if l == nil {
			c.fail("WithLog: nil log")
			return
		}
		c.log = l
	}
}

// ClusterConfig wires a System into a multi-process cluster: the node hosts
// a subset of the logical thread address space behind one shared TCP
// listener, and routes messages for every other thread to whichever node
// currently hosts it. The caaction/cluster package builds these from its
// peer directory; embedders running their own placement layer can supply
// the callbacks directly.
type ClusterConfig struct {
	// ListenAddr is the host:port the node's shared data listener binds;
	// empty means loopback with an ephemeral port (see System.ClusterAddr
	// for the bound address).
	ListenAddr string
	// Local reports whether a logical thread address is placed on this
	// node. It must be consistent across the node's lifetime, pure, and
	// safe for concurrent use. Messages arriving for a local thread that
	// has not yet joined an action instance are retained (bounded) until
	// it does; messages for non-local threads route via Resolve.
	Local func(thread string) bool
	// Resolve maps a non-local thread address to the data host:port of the
	// node currently hosting it; ok=false means no live node hosts the
	// thread, surfacing to senders as a typed unreachable error. It is
	// consulted per send, so a peer that restarts on a new port heals as
	// soon as the directory learns the new address.
	Resolve func(thread string) (hostport string, ok bool)
}

// WithCluster runs the System as one node of a multi-process cluster: the
// tcp transport switches to node mode (one listener per process,
// node-qualified frames), thread addresses resolve node → endpoint through
// cfg, and StartTagged may start just the locally-placed roles of a shared
// action. Cluster nodes run on the real clock; WithCluster conflicts with
// WithVirtualTime, WithClock, WithNetwork, WithGobWire and WithPeer.
func WithCluster(cfg ClusterConfig) Option {
	return func(c *config) {
		if cfg.Local == nil || cfg.Resolve == nil {
			c.fail("WithCluster: Local and Resolve callbacks are required")
			return
		}
		c.cluster = &cfg
		c.transportName = "tcp"
		c.env.ListenAddr = "" // the node listener replaces per-endpoint listeners
	}
}
