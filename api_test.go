package caaction_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"caaction"
)

// TestNewDefaults checks the documented zero-option behaviour: virtual
// time, sim transport, a fresh metrics set, no log.
func TestNewDefaults(t *testing.T) {
	sys, err := caaction.New()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	if !sys.Virtual() {
		t.Error("default system is not on the virtual clock")
	}
	if sys.Metrics() == nil {
		t.Error("default system has no metrics")
	}
	if sys.Log() != nil {
		t.Error("default system unexpectedly has a log")
	}
	if sys.Now() != 0 {
		t.Errorf("virtual clock started at %v, want 0", sys.Now())
	}
	if sys.Network() == nil {
		t.Error("default system has no network")
	}
}

func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []caaction.Option
		want error
	}{
		{"unknown resolver", []caaction.Option{caaction.WithResolver("nope")}, caaction.ErrUnknownResolver},
		{"unknown transport", []caaction.Option{caaction.WithTransport("nope")}, caaction.ErrUnknownTransport},
		{"nil metrics", []caaction.Option{caaction.WithMetrics(nil)}, nil},
		{"nil log", []caaction.Option{caaction.WithLog(nil)}, nil},
		{"nil clock", []caaction.Option{caaction.WithClock(nil)}, nil},
		{"nil network", []caaction.Option{caaction.WithNetwork(nil)}, nil},
		{"nil protocol", []caaction.Option{caaction.WithResolutionProtocol(nil)}, nil},
		{"negative signal timeout", []caaction.Option{caaction.WithSignalTimeout(-time.Second)}, nil},
		{"negative mux shards", []caaction.Option{caaction.WithMuxShards(-1)}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := caaction.New(tc.opts...)
			if err == nil {
				t.Fatalf("New(%s) succeeded, want error", tc.name)
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Errorf("New(%s) = %v, want errors.Is(err, %v)", tc.name, err, tc.want)
			}
		})
	}
}

func TestRegistries(t *testing.T) {
	for _, name := range []string{"coordinated", "cr86", "r96"} {
		p, err := caaction.Resolver(name)
		if err != nil {
			t.Fatalf("Resolver(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("Resolver(%q).Name() = %q", name, p.Name())
		}
	}
	for _, name := range []string{"sim", "tcp"} {
		if _, err := caaction.TransportByName(name); err != nil {
			t.Fatalf("TransportByName(%q): %v", name, err)
		}
	}
	found := map[string]bool{}
	for _, n := range caaction.Resolvers() {
		found[n] = true
	}
	if !found["coordinated"] || !found["cr86"] || !found["r96"] {
		t.Errorf("Resolvers() = %v, missing built-ins", caaction.Resolvers())
	}
}

func TestSpecBuilderValidation(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*caaction.Spec, error)
		want  error
	}{
		{"empty name", func() (*caaction.Spec, error) {
			return caaction.NewSpec("").Role("r", "T1").Build()
		}, caaction.ErrSpecInvalid},
		{"no roles", func() (*caaction.Spec, error) {
			return caaction.NewSpec("a").Build()
		}, caaction.ErrSpecInvalid},
		{"duplicate role", func() (*caaction.Spec, error) {
			return caaction.NewSpec("a").Role("r", "T1").Role("r", "T2").Build()
		}, caaction.ErrSpecInvalid},
		{"thread bound twice", func() (*caaction.Spec, error) {
			return caaction.NewSpec("a").Role("r1", "T1").Role("r2", "T1").Build()
		}, caaction.ErrSpecInvalid},
		{"reserved exception id", func() (*caaction.Spec, error) {
			return caaction.NewSpec("a").Role("r", "T1").Exception(caaction.Undo).Build()
		}, nil},
		{"cyclic cover", func() (*caaction.Spec, error) {
			return caaction.NewSpec("a").Role("r", "T1").
				Cover("e1", "e2").Cover("e2", "e1").Build()
		}, nil},
		{"negative timing", func() (*caaction.Spec, error) {
			return caaction.NewSpec("a").Role("r", "T1").ResolutionCost(-time.Second).Build()
		}, caaction.ErrSpecInvalid},
		{"exception after UseGraph", func() (*caaction.Spec, error) {
			g, err := caaction.GenerateFullGraph("g", []caaction.Exception{"e1", "e2"})
			if err != nil {
				t.Fatal(err)
			}
			return caaction.NewSpec("a").Role("r", "T1").UseGraph(g).Exception("e3").Build()
		}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := tc.build()
			if err == nil {
				t.Fatalf("Build() = %+v, want error", spec)
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Errorf("Build() = %v, want errors.Is(err, %v)", err, tc.want)
			}
		})
	}
}

func TestSpecBuilderDefaults(t *testing.T) {
	// A spec with no declared exceptions still gets the universal root.
	spec, err := caaction.NewSpec("plain").Role("r", "T1").Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.Graph.Root(); got != caaction.UniversalException {
		t.Errorf("root = %q, want universal", got)
	}
	// Declared exceptions hang under an automatic universal root.
	spec, err = caaction.NewSpec("rich").Role("r", "T1").
		Exception("e1").Cover("both", "e1", "e2").
		Signals("partial").
		ResolutionCost(time.Millisecond).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.Graph.Root(); got != caaction.UniversalException {
		t.Errorf("root = %q, want universal", got)
	}
	if !spec.Graph.Covers("both", "e2") {
		t.Error("cover edge both→e2 missing")
	}
	if !spec.CanSignal("partial") || !spec.CanSignal(caaction.Undo) {
		t.Error("Signals not honoured")
	}
	if spec.Timing.Resolution != time.Millisecond {
		t.Errorf("Treso = %v", spec.Timing.Resolution)
	}
}

// TestEndToEnd runs a complete two-role action over the sim transport on
// virtual time: a raise, coordinated resolution, handler-based forward
// recovery and a successful synchronous exit.
func TestEndToEnd(t *testing.T) {
	metrics := &caaction.Metrics{}
	sys, err := caaction.New(
		caaction.WithVirtualTime(),
		caaction.WithSimTransport(5*time.Millisecond),
		caaction.WithResolver("coordinated"),
		caaction.WithMetrics(metrics),
	)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := caaction.NewSpec("transfer").
		Role("producer", "T1").
		Role("consumer", "T2").
		Exception("bad_checksum").
		Build()
	if err != nil {
		t.Fatal(err)
	}

	var handled []string
	handler := func(ctx *caaction.Context, resolved caaction.Exception, raised []caaction.Raised) error {
		handled = append(handled, ctx.Role()+":"+string(resolved))
		if ctx.Role() == "producer" {
			return ctx.Send("consumer", "retransmitted")
		}
		_, err := ctx.Recv("producer")
		return err
	}
	producer := caaction.RoleProgram{
		Body: func(ctx *caaction.Context) error {
			if err := ctx.Send("consumer", "corrupted"); err != nil {
				return err
			}
			return ctx.Compute(50 * time.Millisecond)
		},
		Handlers: map[caaction.Exception]caaction.Handler{"bad_checksum": handler},
	}
	consumer := caaction.RoleProgram{
		Body: func(ctx *caaction.Context) error {
			if _, err := ctx.Recv("producer"); err != nil {
				return err
			}
			return ctx.Raise("bad_checksum", "crc mismatch")
		},
		Handlers: map[caaction.Exception]caaction.Handler{"bad_checksum": handler},
	}

	t1, err := sys.Thread("T1")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := sys.Thread("T2")
	if err != nil {
		t.Fatal(err)
	}
	results := make(chan error, 2)
	sys.Go(func() { results <- t1.Perform(context.Background(), spec, "producer", producer) })
	sys.Go(func() { results <- t2.Perform(context.Background(), spec, "consumer", consumer) })
	sys.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Errorf("outcome: %v", err)
		}
	}
	if len(handled) != 2 {
		t.Errorf("handler runs = %v, want one per role", handled)
	}
	if got := metrics.Get("action.completions"); got != 2 {
		t.Errorf("action.completions = %d, want 2", got)
	}
	if metrics.Get("msg.Exception") == 0 || metrics.Get("msg.Commit") == 0 {
		t.Errorf("resolution messages missing: %v", metrics.Snapshot())
	}
	if sys.Now() == 0 {
		t.Error("virtual time did not advance")
	}
}

// TestTypedErrors checks the ErrSignalled sentinel and the AsSignalled /
// errors.As wrappers on a µ outcome.
func TestTypedErrors(t *testing.T) {
	sys, err := caaction.New()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := caaction.NewSpec("doomed").Role("solo", "T1").Exception("boom").Build()
	if err != nil {
		t.Fatal(err)
	}
	th, err := sys.Thread("T1")
	if err != nil {
		t.Fatal(err)
	}
	outcome := make(chan error, 1)
	sys.Go(func() {
		outcome <- th.Perform(context.Background(), spec, "solo", caaction.RoleProgram{
			Body: func(ctx *caaction.Context) error { return ctx.Raise("boom", "unhandled") },
		})
	})
	sys.Wait()
	err = <-outcome
	if !errors.Is(err, caaction.ErrSignalled) {
		t.Fatalf("errors.Is(%v, ErrSignalled) = false", err)
	}
	se, ok := caaction.AsSignalled(err)
	if !ok {
		t.Fatalf("AsSignalled(%v) = false", err)
	}
	if se.Exc != caaction.Undo {
		t.Errorf("signalled %q, want µ", se.Exc)
	}
	if !caaction.IsUndone(err) || caaction.IsFailed(err) {
		t.Error("IsUndone/IsFailed misclassified the outcome")
	}
	var viaAs *caaction.SignalledError
	if !errors.As(err, &viaAs) || viaAs.Spec != "doomed" {
		t.Errorf("errors.As recovered %+v", viaAs)
	}
}

// TestPerformCancellation cancels a context mid-body and expects the role
// to unwind through the cooperative interrupt path with a typed error.
func TestPerformCancellation(t *testing.T) {
	sys, err := caaction.New(caaction.WithRealTime())
	if err != nil {
		t.Fatal(err)
	}
	spec, err := caaction.NewSpec("slow").Role("solo", "T1").Build()
	if err != nil {
		t.Fatal(err)
	}
	th, err := sys.Thread("T1")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	outcome := make(chan error, 1)
	started := make(chan struct{})
	start := time.Now()
	sys.Go(func() {
		outcome <- th.Perform(ctx, spec, "solo", caaction.RoleProgram{
			Body: func(c *caaction.Context) error {
				close(started)                     // the body is provably running when we cancel
				return c.Compute(30 * time.Second) // far longer than the test runs
			},
		})
	})
	<-started
	cancel()
	sys.Wait()
	err = <-outcome
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if err == nil {
		t.Fatal("Perform returned nil after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(%v, context.Canceled) = false", err)
	}
	if !errors.Is(err, caaction.ErrThreadStopped) {
		t.Errorf("errors.Is(%v, ErrThreadStopped) = false", err)
	}
}

// TestPerformPreCancelled checks that an already-cancelled context never
// enters the action.
func TestPerformPreCancelled(t *testing.T) {
	sys, err := caaction.New(caaction.WithRealTime())
	if err != nil {
		t.Fatal(err)
	}
	spec, err := caaction.NewSpec("never").Role("solo", "T1").Build()
	if err != nil {
		t.Fatal(err)
	}
	th, err := sys.Thread("T1")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err = th.Perform(ctx, spec, "solo", caaction.RoleProgram{
		Body: func(c *caaction.Context) error { ran = true; return nil },
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Perform = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("body ran under a cancelled context")
	}
	if got := sys.Metrics().Get("action.entries"); got != 0 {
		t.Errorf("action.entries = %d, want 0", got)
	}
}

// TestTCPTransport runs a two-role action over the real TCP transport
// within one process, exercising the "tcp" registry entry end to end (on
// the default binary wire codec).
func TestTCPTransport(t *testing.T) {
	testTCPTransport(t)
}

// TestTCPTransportGobWire is TestTCPTransport on the legacy gob wire,
// pinning the WithGobWire compatibility option end to end.
func TestTCPTransportGobWire(t *testing.T) {
	testTCPTransport(t, caaction.WithGobWire())
}

func testTCPTransport(t *testing.T, extra ...caaction.Option) {
	sys, err := caaction.New(append([]caaction.Option{
		caaction.WithRealTime(),
		caaction.WithTCPTransport(""),
	}, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	spec, err := caaction.NewSpec("pair").
		Role("left", "T1").
		Role("right", "T2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	t1, err := sys.Thread("T1")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := sys.Thread("T2")
	if err != nil {
		t.Fatal(err)
	}
	results := make(chan error, 2)
	sys.Go(func() {
		results <- t1.Perform(context.Background(), spec, "left", caaction.RoleProgram{
			Body: func(ctx *caaction.Context) error { return ctx.Send("right", "ping") },
		})
	})
	sys.Go(func() {
		results <- t2.Perform(context.Background(), spec, "right", caaction.RoleProgram{
			Body: func(ctx *caaction.Context) error {
				v, err := ctx.Recv("left")
				if err != nil {
					return err
				}
				if v != "ping" {
					t.Errorf("payload = %v", v)
				}
				return nil
			},
		})
	})
	sys.Wait()
	close(results)
	for err := range results {
		if err != nil {
			t.Errorf("outcome: %v", err)
		}
	}
}

// TestSharedMetrics checks WithMetrics aggregation across systems.
func TestSharedMetrics(t *testing.T) {
	shared := &caaction.Metrics{}
	for i := 0; i < 2; i++ {
		sys, err := caaction.New(caaction.WithMetrics(shared))
		if err != nil {
			t.Fatal(err)
		}
		spec, err := caaction.NewSpec("one").Role("solo", "T1").Build()
		if err != nil {
			t.Fatal(err)
		}
		th, err := sys.Thread("T1")
		if err != nil {
			t.Fatal(err)
		}
		sys.Go(func() {
			_ = th.Perform(context.Background(), spec, "solo", caaction.RoleProgram{
				Body: func(ctx *caaction.Context) error { return nil },
			})
		})
		sys.Wait()
	}
	if got := shared.Get("action.completions"); got != 2 {
		t.Errorf("shared action.completions = %d, want 2", got)
	}
}
