package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func sampleRecords() []Record {
	return []Record{
		{Kind: KindJoin, Wall: 100, Thread: "T1", Action: "chaos#1", Role: "r1"},
		{Kind: KindRaise, Wall: 200, Thread: "T1", Action: "chaos#1", Round: 0, Exc: "e1"},
		{Kind: KindVote, Wall: 300, Thread: "T1", Action: "chaos#1", Round: 1, Exc: "e2"},
		{Kind: KindOutcome, Wall: 400, Thread: "T1", Action: "chaos#1", Outcome: "signalled:e2"},
		{Kind: KindInstanceStart, Wall: 500, Tag: "mix-3", WorkKind: "storm", Roles: 3},
		{Kind: KindInstanceDone, Wall: 600, Tag: "mix-3"},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf []byte
	for _, r := range recs {
		buf = AppendFrame(buf, r)
	}
	got, err := DecodeAll(buf)
	if err != nil {
		t.Fatalf("DecodeAll: %v", err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, recs)
	}
}

func TestDecodeTruncatedTail(t *testing.T) {
	recs := sampleRecords()
	var buf []byte
	for _, r := range recs {
		buf = AppendFrame(buf, r)
	}
	// Any strict prefix decodes to a prefix of the records, never an error:
	// a crash mid-append must not poison replay.
	for cut := 0; cut < len(buf); cut++ {
		got, err := DecodeAll(buf[:cut])
		if err != nil {
			t.Fatalf("cut=%d: DecodeAll: %v", cut, err)
		}
		if len(got) > len(recs) {
			t.Fatalf("cut=%d: decoded %d records from a prefix of %d", cut, len(got), len(recs))
		}
		for i, r := range got {
			if !reflect.DeepEqual(r, recs[i]) {
				t.Fatalf("cut=%d: record %d mismatch", cut, i)
			}
		}
	}
}

func TestStateReplay(t *testing.T) {
	st, err := Replay(sampleRecords())
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	as := st.Actions[ActionKey{Thread: "T1", Action: "chaos#1"}]
	if as.Role != "r1" || as.JoinedWall != 100 || as.Raises != 1 || as.Votes != 1 ||
		as.LastRound != 1 || as.LastExc != "e2" || as.Outcome != "signalled:e2" {
		t.Fatalf("replayed action state %+v", as)
	}
	if got := st.InFlight(); len(got) != 0 {
		t.Fatalf("InFlight = %v, want none (outcome recorded)", got)
	}
	is := st.Instances["mix-3"]
	if is.Kind != "storm" || is.Roles != 3 || !is.Done {
		t.Fatalf("replayed instance state %+v", is)
	}
	if got := st.OpenInstances(); len(got) != 0 {
		t.Fatalf("OpenInstances = %v, want none", got)
	}
}

func TestStateSnapshotRoundTrip(t *testing.T) {
	st, err := Replay(sampleRecords()[:5]) // leave the instance open
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	blob := EncodeState(st)
	back, err := DecodeState(blob)
	if err != nil {
		t.Fatalf("DecodeState: %v", err)
	}
	if !reflect.DeepEqual(st, back) {
		t.Fatalf("snapshot round trip mismatch:\n got %+v\nwant %+v", back, st)
	}
	if got := back.OpenInstances(); len(got) != 1 || got[0] != "mix-3" {
		t.Fatalf("OpenInstances = %v, want [mix-3]", got)
	}
}

func TestFileReopenReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.wal")
	w, err := Open(path, 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := w.AppendInstanceStart("mix-1", "quiet", 2); err != nil {
		t.Fatalf("AppendInstanceStart: %v", err)
	}
	w.RecordJoin("n1/L1", "mix-1!quiet#1", "r0")
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2, err := Open(path, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	st := w2.State()
	if got := st.OpenInstances(); len(got) != 1 || got[0] != "mix-1" {
		t.Fatalf("OpenInstances after reopen = %v, want [mix-1]", got)
	}
	inflight := st.InFlight()
	if len(inflight) != 1 || inflight[0] != (ActionKey{Thread: "n1/L1", Action: "mix-1!quiet#1"}) {
		t.Fatalf("InFlight after reopen = %v", inflight)
	}
}

func TestFileTornTailDiscarded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.wal")
	w, err := Open(path, 0)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := w.AppendInstanceStart("mix-1", "quiet", 2); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Simulate a crash mid-append: a garbage partial record at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	if _, err := f.Write([]byte{0xff, 0x07}); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	f.Close()

	w2, err := Open(path, 0)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	if got := w2.State().OpenInstances(); len(got) != 1 || got[0] != "mix-1" {
		t.Fatalf("OpenInstances = %v, want [mix-1]", got)
	}
	// The torn bytes were truncated away; a fresh append then a reopen
	// must replay cleanly.
	if err := w2.AppendInstanceDone("mix-1"); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	w2.Close()
	w3, err := Open(path, 0)
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	defer w3.Close()
	if got := w3.State().OpenInstances(); len(got) != 0 {
		t.Fatalf("OpenInstances = %v, want none", got)
	}
}

func TestFileSnapshotCompactionBoundsSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.wal")
	const every = 16
	w, err := Open(path, every)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Many records for ONE action: compaction folds them into a bounded
	// snapshot regardless of append volume.
	for i := 0; i < 10*every; i++ {
		w.RecordRaise("T1", "a#1", i%3, "e1")
	}
	w.RecordJoin("T1", "a#1", "r1")
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	// A raise record is ~25 bytes; without compaction the file would be
	// >4000 bytes. With it, at most `every` records plus one snapshot.
	if info.Size() > 2048 {
		t.Fatalf("wal grew to %d bytes despite snapshotEvery=%d", info.Size(), every)
	}
	w.Close()

	w2, err := Open(path, every)
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	defer w2.Close()
	as := w2.State().Actions[ActionKey{Thread: "T1", Action: "a#1"}]
	if as.Raises != 10*every || as.Role != "r1" {
		t.Fatalf("state after compaction: %+v", as)
	}
}

func TestFileConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "node.wal")
	w, err := Open(path, 64)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := string(rune('A' + g))
			for i := 0; i < each; i++ {
				w.RecordVote(th, "a#1", i, "")
			}
		}(g)
	}
	wg.Wait()
	w.Close()

	w2, err := Open(path, 64)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	total := 0
	for _, as := range w2.State().Actions {
		total += as.Votes
	}
	if total != workers*each {
		t.Fatalf("replayed %d votes, want %d", total, workers*each)
	}
}

type stubClock struct{}

func (stubClock) Now() time.Duration { return 42 * time.Millisecond }

func TestMemoryStateFiltersByOutcome(t *testing.T) {
	m := NewMemory(stubClock{})
	m.RecordJoin("T1", "chaos#1", "r1")
	m.RecordJoin("T2", "chaos#1", "r2")
	m.RecordOutcome("T2", "chaos#1", "ok")
	st := m.State()
	inflight := st.InFlight()
	if len(inflight) != 1 || inflight[0].Thread != "T1" {
		t.Fatalf("InFlight = %v, want just T1", inflight)
	}
	if got := st.Actions[ActionKey{Thread: "T2", Action: "chaos#1"}].Outcome; got != "ok" {
		t.Fatalf("T2 outcome = %q, want ok", got)
	}
}
