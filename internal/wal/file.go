package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// DefaultSnapshotEvery is the compaction cadence when File is opened with
// snapshotEvery <= 0: after this many appended records the log is
// rewritten as one snapshot, bounding replay length and file size.
const DefaultSnapshotEvery = 256

// File is the durable on-disk WAL. Append is group-committed: every
// append is durable (fsynced) before it returns, but concurrent appenders
// share one fsync — the classic group-commit batch — so sustained load
// pays one disk flush per batch, not per record.
//
// File implements the core Recorder interface, stamping records with
// wall-clock unix nanoseconds.
type File struct {
	mu            sync.Mutex // serialises writes, state and compaction
	f             *os.File
	path          string
	buf           []byte // reusable encode buffer, guarded by mu
	state         State
	sinceSnapshot int
	snapshotEvery int
	writeSeq      uint64 // records written (not necessarily synced)

	sm        sync.Mutex // group-commit sync state
	syncCond  *sync.Cond
	syncing   bool
	syncedSeq uint64
	syncErr   error
}

// Open opens (or creates) the WAL at path and replays it. A truncated
// final record — a crash mid-append — is discarded; the file is truncated
// back to the last complete record so the next append extends a clean
// tail.
func Open(path string, snapshotEvery int) (*File, error) {
	if snapshotEvery <= 0 {
		snapshotEvery = DefaultSnapshotEvery
	}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	recs, err := DecodeAll(data)
	if err != nil {
		return nil, fmt.Errorf("wal: replay %s: %w", path, err)
	}
	st, err := Replay(recs)
	if err != nil {
		return nil, fmt.Errorf("wal: replay %s: %w", path, err)
	}
	// Re-measure the clean prefix so a truncated tail is physically
	// dropped before appends resume.
	clean := 0
	for _, r := range recs {
		clean += len(AppendFrame(nil, r))
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	if clean < len(data) {
		if err := f.Truncate(int64(clean)); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	w := &File{
		f:             f,
		path:          path,
		state:         st,
		sinceSnapshot: len(recs),
		snapshotEvery: snapshotEvery,
	}
	w.syncCond = sync.NewCond(&w.sm)
	return w, nil
}

// State returns a copy of the replayed-plus-appended state.
func (w *File) State() State {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state.Clone()
}

// Append writes one record and returns once it is durable. The record is
// stamped with the current wall clock if Wall is zero.
func (w *File) Append(r Record) error {
	if r.Wall == 0 {
		r.Wall = time.Now().UnixNano()
	}
	w.mu.Lock()
	if w.f == nil {
		w.mu.Unlock()
		return fmt.Errorf("wal: %s: log closed", w.path)
	}
	w.buf = AppendFrame(w.buf[:0], r)
	if _, err := w.f.Write(w.buf); err != nil {
		w.mu.Unlock()
		return fmt.Errorf("wal: append %s: %w", w.path, err)
	}
	w.writeSeq++
	seq := w.writeSeq
	w.state.Apply(r)
	w.sinceSnapshot++
	if w.sinceSnapshot >= w.snapshotEvery {
		if err := w.compactLocked(); err != nil {
			w.mu.Unlock()
			return err
		}
		// Compaction fsynced and renamed; everything written so far is
		// durable already.
		w.bumpSynced(seq)
		w.mu.Unlock()
		return nil
	}
	w.mu.Unlock()
	return w.sync(seq)
}

// sync blocks until record seq is durable, sharing fsyncs between
// concurrent appenders: one goroutine flushes on behalf of every write
// that landed before the flush started.
func (w *File) sync(seq uint64) error {
	w.sm.Lock()
	for {
		if w.syncedSeq >= seq {
			err := w.syncErr
			w.sm.Unlock()
			return err
		}
		if !w.syncing {
			break
		}
		w.syncCond.Wait()
	}
	w.syncing = true
	w.sm.Unlock()

	// Capture how far writes have progressed, then flush: the fsync
	// covers every record written before it.
	w.mu.Lock()
	target := w.writeSeq
	f := w.f
	w.mu.Unlock()
	var err error
	if f != nil {
		err = f.Sync()
	}

	w.sm.Lock()
	w.syncing = false
	if target > w.syncedSeq {
		w.syncedSeq = target
	}
	w.syncErr = err
	w.syncCond.Broadcast()
	w.sm.Unlock()
	if err != nil {
		return fmt.Errorf("wal: fsync %s: %w", w.path, err)
	}
	return nil
}

// bumpSynced marks records up to seq durable without an fsync (used after
// compaction, which is durable by construction).
func (w *File) bumpSynced(seq uint64) {
	w.sm.Lock()
	if seq > w.syncedSeq {
		w.syncedSeq = seq
	}
	w.syncCond.Broadcast()
	w.sm.Unlock()
}

// compactLocked rewrites the log as a single snapshot record, fsnapshot
// style: write a temp file, fsync it, rename it over the log. Caller
// holds w.mu.
func (w *File) compactLocked() error {
	blob := EncodeState(w.state)
	frame := AppendFrame(nil, Record{
		Kind: KindSnapshot,
		Wall: time.Now().UnixNano(),
		Blob: blob,
	})
	dir := filepath.Dir(w.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(w.path)+".snap-*")
	if err != nil {
		return fmt.Errorf("wal: compact %s: %w", w.path, err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(frame); err != nil {
		cleanup()
		return fmt.Errorf("wal: compact %s: %w", w.path, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("wal: compact %s: %w", w.path, err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("wal: compact %s: %w", w.path, err)
	}
	if err := os.Rename(tmpName, w.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: compact %s: %w", w.path, err)
	}
	old := w.f
	nf, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact %s: reopen: %w", w.path, err)
	}
	if _, err := nf.Seek(0, 2); err != nil {
		nf.Close()
		return fmt.Errorf("wal: compact %s: seek: %w", w.path, err)
	}
	old.Close()
	w.f = nf
	w.sinceSnapshot = 1 // the snapshot record itself
	return nil
}

// Close flushes and closes the log.
func (w *File) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// Recorder methods: protocol state recorded by the core runtime before
// the corresponding message leaves the node. Append errors here are
// deliberately swallowed after the first — the runtime's hot path cannot
// surface them — but the durability contract holds for every append that
// returns.

// RecordJoin logs an entry-barrier join.
func (w *File) RecordJoin(thread, action, role string) {
	_ = w.Append(Record{Kind: KindJoin, Thread: thread, Action: action, Role: role})
}

// RecordRaise logs an exception raised into a resolution round.
func (w *File) RecordRaise(thread, action string, round int, exc string) {
	_ = w.Append(Record{Kind: KindRaise, Thread: thread, Action: action, Round: round, Exc: exc})
}

// RecordVote logs an exit vote.
func (w *File) RecordVote(thread, action string, round int, exc string) {
	_ = w.Append(Record{Kind: KindVote, Thread: thread, Action: action, Round: round, Exc: exc})
}

// RecordOutcome logs an action's final local outcome.
func (w *File) RecordOutcome(thread, action, outcome string) {
	_ = w.Append(Record{Kind: KindOutcome, Thread: thread, Action: action, Outcome: outcome})
}

// AppendInstanceStart logs a tagged cluster instance starting locally.
func (w *File) AppendInstanceStart(tag, kind string, roles int) error {
	return w.Append(Record{Kind: KindInstanceStart, Tag: tag, WorkKind: kind, Roles: roles})
}

// AppendInstanceDone logs a tagged cluster instance finishing locally.
func (w *File) AppendInstanceDone(tag string) error {
	return w.Append(Record{Kind: KindInstanceDone, Tag: tag})
}
