package wal

import "sort"

// ActionKey identifies one participant's view of one action instance.
type ActionKey struct {
	Thread string
	Action string
}

// ActionState is the replayed protocol state of one (thread, action) pair:
// everything the restart decision rule in §3.4 terms needs — when the
// thread joined, how far resolution progressed, and whether the action
// concluded locally.
type ActionState struct {
	// Role the thread joined under.
	Role string
	// JoinedWall is the KindJoin record's timestamp (nanoseconds).
	JoinedWall int64
	// Raises and Votes count the protocol records replayed.
	Raises int
	Votes  int
	// LastRound is the highest resolution round seen in a raise or vote.
	LastRound int
	// LastExc is the most recent raised or voted exception.
	LastExc string
	// Outcome is "" while the action is in flight; otherwise the final
	// classification from the KindOutcome record.
	Outcome string
	// OutcomeWall is the KindOutcome record's timestamp.
	OutcomeWall int64
}

// InstanceState is the replayed state of one tagged cluster instance.
type InstanceState struct {
	// Kind is the load workload kind the instance ran.
	Kind string
	// Roles is the cluster-wide role count.
	Roles int
	// StartedWall is the KindInstanceStart record's timestamp.
	StartedWall int64
	// Done reports a KindInstanceDone record was replayed.
	Done bool
}

// State is the materialised view of a WAL: replaying records folds into
// it, and a snapshot record carries one verbatim.
type State struct {
	Actions   map[ActionKey]ActionState
	Instances map[string]InstanceState
}

// NewState returns an empty state ready to apply records.
func NewState() State {
	return State{
		Actions:   make(map[ActionKey]ActionState),
		Instances: make(map[string]InstanceState),
	}
}

// Apply folds one record into the state. KindSnapshot records are handled
// by the replay loop (they *replace* the state), not here.
func (s *State) Apply(r Record) {
	switch r.Kind {
	case KindJoin:
		k := ActionKey{Thread: r.Thread, Action: r.Action}
		as := s.Actions[k]
		as.Role = r.Role
		as.JoinedWall = r.Wall
		s.Actions[k] = as
	case KindRaise:
		k := ActionKey{Thread: r.Thread, Action: r.Action}
		as := s.Actions[k]
		as.Raises++
		if r.Round > as.LastRound {
			as.LastRound = r.Round
		}
		as.LastExc = r.Exc
		s.Actions[k] = as
	case KindVote:
		k := ActionKey{Thread: r.Thread, Action: r.Action}
		as := s.Actions[k]
		as.Votes++
		if r.Round > as.LastRound {
			as.LastRound = r.Round
		}
		if r.Exc != "" {
			as.LastExc = r.Exc
		}
		s.Actions[k] = as
	case KindOutcome:
		k := ActionKey{Thread: r.Thread, Action: r.Action}
		as := s.Actions[k]
		as.Outcome = r.Outcome
		as.OutcomeWall = r.Wall
		s.Actions[k] = as
	case KindInstanceStart:
		s.Instances[r.Tag] = InstanceState{
			Kind:        r.WorkKind,
			Roles:       r.Roles,
			StartedWall: r.Wall,
		}
	case KindInstanceDone:
		is := s.Instances[r.Tag]
		is.Done = true
		s.Instances[r.Tag] = is
	}
}

// Replay folds a record sequence into a fresh state, resetting to any
// snapshot encountered.
func Replay(recs []Record) (State, error) {
	st := NewState()
	for _, r := range recs {
		if r.Kind == KindSnapshot {
			snap, err := DecodeState(r.Blob)
			if err != nil {
				return st, err
			}
			st = snap
			continue
		}
		st.Apply(r)
	}
	return st, nil
}

// InFlight returns the keys of actions that joined but never concluded,
// sorted for deterministic iteration.
func (s State) InFlight() []ActionKey {
	var out []ActionKey
	for k, as := range s.Actions {
		if as.Outcome == "" {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Thread != out[j].Thread {
			return out[i].Thread < out[j].Thread
		}
		return out[i].Action < out[j].Action
	})
	return out
}

// OpenInstances returns the tags of instances started but not done,
// sorted for deterministic iteration.
func (s State) OpenInstances() []string {
	var out []string
	for tag, is := range s.Instances {
		if !is.Done {
			out = append(out, tag)
		}
	}
	sort.Strings(out)
	return out
}

// Clone deep-copies the state.
func (s State) Clone() State {
	out := NewState()
	for k, v := range s.Actions {
		out.Actions[k] = v
	}
	for k, v := range s.Instances {
		out.Instances[k] = v
	}
	return out
}

// EncodeState renders the state as a snapshot blob: counted lists of
// action and instance entries in sorted key order, in the same binary
// style as the record codec.
func EncodeState(s State) []byte {
	keys := make([]ActionKey, 0, len(s.Actions))
	for k := range s.Actions {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Thread != keys[j].Thread {
			return keys[i].Thread < keys[j].Thread
		}
		return keys[i].Action < keys[j].Action
	})
	tags := make([]string, 0, len(s.Instances))
	for t := range s.Instances {
		tags = append(tags, t)
	}
	sort.Strings(tags)

	var buf []byte
	buf = appendIntU(buf, len(keys))
	for _, k := range keys {
		as := s.Actions[k]
		buf = appendString(buf, k.Thread)
		buf = appendString(buf, k.Action)
		buf = appendString(buf, as.Role)
		buf = appendInt(buf, as.JoinedWall)
		buf = appendInt(buf, int64(as.Raises))
		buf = appendInt(buf, int64(as.Votes))
		buf = appendInt(buf, int64(as.LastRound))
		buf = appendString(buf, as.LastExc)
		buf = appendString(buf, as.Outcome)
		buf = appendInt(buf, as.OutcomeWall)
	}
	buf = appendIntU(buf, len(tags))
	for _, t := range tags {
		is := s.Instances[t]
		buf = appendString(buf, t)
		buf = appendString(buf, is.Kind)
		buf = appendInt(buf, int64(is.Roles))
		buf = appendInt(buf, is.StartedWall)
		if is.Done {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

func appendIntU(buf []byte, n int) []byte {
	return appendInt(buf, int64(n))
}

// DecodeState decodes a snapshot blob.
func DecodeState(blob []byte) (State, error) {
	st := NewState()
	d := &decoder{data: blob}
	nActions := int(d.int())
	if nActions < 0 || (d.err == nil && nActions > len(d.data)) {
		d.fail()
	}
	for i := 0; i < nActions && d.err == nil; i++ {
		k := ActionKey{Thread: d.string(), Action: d.string()}
		var as ActionState
		as.Role = d.string()
		as.JoinedWall = d.int()
		as.Raises = int(d.int())
		as.Votes = int(d.int())
		as.LastRound = int(d.int())
		as.LastExc = d.string()
		as.Outcome = d.string()
		as.OutcomeWall = d.int()
		if d.err == nil {
			st.Actions[k] = as
		}
	}
	nInst := int(d.int())
	if nInst < 0 || (d.err == nil && nInst > len(d.data)) {
		d.fail()
	}
	for i := 0; i < nInst && d.err == nil; i++ {
		t := d.string()
		var is InstanceState
		is.Kind = d.string()
		is.Roles = int(d.int())
		is.StartedWall = d.int()
		is.Done = d.byte() == 1
		if d.err == nil {
			st.Instances[t] = is
		}
	}
	if d.err != nil {
		return NewState(), d.err
	}
	return st, nil
}
