package wal

import (
	"sync"
	"time"
)

// NowClock is the slice of vclock.Clock that Memory needs: a timestamp
// source. Chaos passes its scenario's virtual clock.
type NowClock interface {
	Now() time.Duration
}

// Memory is the in-memory WAL the chaos engine installs for
// kill-and-restart scenarios: same record stream as File, stamped with
// the scenario's virtual clock instead of the wall clock, so replay
// decisions — and therefore the golden recovery traces — are
// byte-deterministic.
type Memory struct {
	clk NowClock

	mu   sync.Mutex
	recs []Record
}

// NewMemory returns an empty in-memory WAL stamping records from clk.
func NewMemory(clk NowClock) *Memory {
	return &Memory{clk: clk}
}

func (m *Memory) append(r Record) {
	r.Wall = int64(m.clk.Now())
	m.mu.Lock()
	m.recs = append(m.recs, r)
	m.mu.Unlock()
}

// RecordJoin logs an entry-barrier join.
func (m *Memory) RecordJoin(thread, action, role string) {
	m.append(Record{Kind: KindJoin, Thread: thread, Action: action, Role: role})
}

// RecordRaise logs an exception raised into a resolution round.
func (m *Memory) RecordRaise(thread, action string, round int, exc string) {
	m.append(Record{Kind: KindRaise, Thread: thread, Action: action, Round: round, Exc: exc})
}

// RecordVote logs an exit vote.
func (m *Memory) RecordVote(thread, action string, round int, exc string) {
	m.append(Record{Kind: KindVote, Thread: thread, Action: action, Round: round, Exc: exc})
}

// RecordOutcome logs an action's final local outcome.
func (m *Memory) RecordOutcome(thread, action, outcome string) {
	m.append(Record{Kind: KindOutcome, Thread: thread, Action: action, Outcome: outcome})
}

// Records returns a copy of the log.
func (m *Memory) Records() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Record(nil), m.recs...)
}

// State replays the log into a materialised state — what a reborn thread
// recovers from after a crash.
func (m *Memory) State() State {
	m.mu.Lock()
	recs := append([]Record(nil), m.recs...)
	m.mu.Unlock()
	st, _ := Replay(recs) // no snapshots in memory logs; Replay cannot fail
	return st
}
