// Package wal is the durable write-ahead log of protocol state that makes
// crash-recovery possible: entry-barrier joins, resolution-round raises,
// exit votes and final outcomes are appended — and made durable — before
// the corresponding protocol message leaves the node, so a restarted node
// can replay the log, rebuild its in-flight action state, and decide per
// §3.4 which actions to re-join and which to abort deterministically.
//
// Two implementations share one record format: File is the fsync-batched
// on-disk log cluster nodes open on boot, and Memory is the virtual-clock
// variant the chaos engine installs so kill-and-restart scenarios stay
// byte-deterministic.
//
// The on-disk format reuses the internal/protocol codec style: each record
// is a uvarint length prefix followed by a binary body —
//
//	record  := kind(u8) wall(int) thread(string) action(string) role(string)
//	           round(int) exc(string) outcome(string) tag(string)
//	           workKind(string) roles(int) blob(bytes)
//	string  := uvarint byte-length, then that many bytes
//	int     := zigzag varint (encoding/binary's varint)
//	bytes   := uvarint byte-length, then that many bytes
//
// Every record carries the full field set (unused fields encode as a
// one-byte zero), which keeps the codec a single straight-line pair of
// functions. A KindSnapshot record's blob is a complete State encoding;
// replay resets to it and applies the records that follow, so periodic
// snapshot compaction bounds both replay length and file size.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrCodec reports a malformed or truncated WAL record. A truncated *tail*
// (a crash mid-append) is not an error: replay stops at the last complete
// record.
var ErrCodec = errors.New("wal: malformed record")

// Kind discriminates WAL records.
type Kind uint8

const (
	// KindJoin records a thread passing an action's entry barrier.
	KindJoin Kind = iota + 1
	// KindRaise records an exception raised into a resolution round.
	KindRaise
	// KindVote records a thread's exit vote (the exception it proposes to
	// signal, "" for a clean commit).
	KindVote
	// KindOutcome records an action's final local outcome for a thread:
	// "ok", "undone", "failed", "signalled:<exc>", "aborted", "deadline"
	// or "error".
	KindOutcome
	// KindInstanceStart records a cluster node starting its local roles of
	// a tagged workload instance.
	KindInstanceStart
	// KindInstanceDone records that instance finishing locally.
	KindInstanceDone
	// KindSnapshot carries a complete State in Blob; records before it are
	// superseded.
	KindSnapshot
)

func (k Kind) String() string {
	switch k {
	case KindJoin:
		return "join"
	case KindRaise:
		return "raise"
	case KindVote:
		return "vote"
	case KindOutcome:
		return "outcome"
	case KindInstanceStart:
		return "instance-start"
	case KindInstanceDone:
		return "instance-done"
	case KindSnapshot:
		return "snapshot"
	default:
		return fmt.Sprintf("wal.Kind(%d)", uint8(k))
	}
}

// Record is one WAL entry. Which fields are meaningful depends on Kind;
// the codec always carries all of them.
type Record struct {
	Kind Kind
	// Wall is the record's timestamp in nanoseconds: wall-clock unix nanos
	// for File, virtual-clock nanos for Memory. Replay decision rules
	// compare ages against it.
	Wall int64
	// Thread and Action identify the participant and action instance for
	// protocol records (KindJoin..KindOutcome).
	Thread string
	Action string
	// Role is the thread's role in the action (KindJoin).
	Role string
	// Round is the resolution round (KindRaise, KindVote).
	Round int
	// Exc is the raised exception (KindRaise) or exit vote (KindVote; ""
	// votes a clean commit).
	Exc string
	// Outcome is the final classification (KindOutcome).
	Outcome string
	// Tag, WorkKind and Roles describe a tagged cluster instance
	// (KindInstanceStart, KindInstanceDone).
	Tag      string
	WorkKind string
	Roles    int
	// Blob is a nested State encoding (KindSnapshot only).
	Blob []byte
}

// appendRecord appends r's body (without the length prefix) to buf.
func appendRecord(buf []byte, r Record) []byte {
	buf = append(buf, byte(r.Kind))
	buf = appendInt(buf, r.Wall)
	buf = appendString(buf, r.Thread)
	buf = appendString(buf, r.Action)
	buf = appendString(buf, r.Role)
	buf = appendInt(buf, int64(r.Round))
	buf = appendString(buf, r.Exc)
	buf = appendString(buf, r.Outcome)
	buf = appendString(buf, r.Tag)
	buf = appendString(buf, r.WorkKind)
	buf = appendInt(buf, int64(r.Roles))
	buf = appendBytes(buf, r.Blob)
	return buf
}

// AppendFrame appends r's length-prefixed encoding to buf and returns the
// extended buffer — the append side of the on-disk format.
func AppendFrame(buf []byte, r Record) []byte {
	body := appendRecord(nil, r)
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	return append(buf, body...)
}

// decodeRecord decodes one record body.
func decodeRecord(data []byte) (Record, error) {
	d := &decoder{data: data}
	var r Record
	r.Kind = Kind(d.byte())
	r.Wall = d.int()
	r.Thread = d.string()
	r.Action = d.string()
	r.Role = d.string()
	r.Round = int(d.int())
	r.Exc = d.string()
	r.Outcome = d.string()
	r.Tag = d.string()
	r.WorkKind = d.string()
	r.Roles = int(d.int())
	r.Blob = d.bytes()
	if d.err != nil {
		return Record{}, d.err
	}
	if r.Kind < KindJoin || r.Kind > KindSnapshot {
		return Record{}, fmt.Errorf("%w: unknown kind %d", ErrCodec, r.Kind)
	}
	return r, nil
}

// DecodeAll decodes every complete length-prefixed record in data,
// tolerating a truncated tail: a crash mid-append leaves a partial final
// record, which replay ignores. A malformed record *body* is still an
// error — that is corruption, not truncation.
func DecodeAll(data []byte) ([]Record, error) {
	var out []Record
	for len(data) > 0 {
		n, sz := binary.Uvarint(data)
		if sz <= 0 || n > uint64(len(data)-sz) {
			return out, nil // truncated tail: keep what we have
		}
		rec, err := decodeRecord(data[sz : sz+int(n)])
		if err != nil {
			return out, err
		}
		out = append(out, rec)
		data = data[sz+int(n):]
	}
	return out, nil
}

// Codec helpers, mirroring internal/protocol's binary style: uvarint
// length-prefixed strings and bytes, zigzag-varint ints, and a decode
// cursor that latches its first error.

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func appendInt(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

type decoder struct {
	data []byte
	err  error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrCodec
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.data) < 1 {
		d.fail()
		return 0
	}
	b := d.data[0]
	d.data = d.data[1:]
	return b
}

func (d *decoder) int() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.data = d.data[n:]
	return v
}

func (d *decoder) uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.data = d.data[n:]
	return v
}

func (d *decoder) string() string {
	n := d.uint()
	if d.err != nil || n > uint64(len(d.data)) {
		d.fail()
		return ""
	}
	s := string(d.data[:n])
	d.data = d.data[n:]
	return s
}

func (d *decoder) bytes() []byte {
	n := d.uint()
	if d.err != nil || n > uint64(len(d.data)) {
		d.fail()
		return nil
	}
	if n == 0 {
		return nil
	}
	b := append([]byte(nil), d.data[:n]...)
	d.data = d.data[n:]
	return b
}
