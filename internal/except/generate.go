package except

import (
	"fmt"
	"sort"
)

// GenerateOption customises GenerateFull.
type GenerateOption func(*genConfig)

type genConfig struct {
	maxLevel int
	exclude  func(members []ID) bool
}

// MaxLevel limits generation to resolving exceptions of at most the given
// level (level 1 covers pairs, level 2 triples, ...). Combinations above the
// limit resolve to the universal exception, implementing the paper's
// simplification "an exception graph can be structured to contain only part
// of resolving exceptions" (§3.2). Zero or negative means no limit.
func MaxLevel(l int) GenerateOption {
	return func(c *genConfig) { c.maxLevel = l }
}

// Exclude removes generated resolving exceptions whose member set the
// predicate rejects, implementing the paper's simplification for
// combinations that cannot be raised concurrently. Primitives are never
// excluded.
func Exclude(pred func(members []ID) bool) GenerateOption {
	return func(c *genConfig) { c.exclude = pred }
}

// GenerateFull builds the paper's automatically generated n-level exception
// graph (§3.2): level 0 holds the given primitive exceptions; level k holds
// one resolving exception per (k+1)-subset of primitives, named
// Combined(members...); each resolving exception covers the level-(k-1)
// subsets it contains; a universal exception covers the maximal nodes.
//
// For n primitives without options this yields n·(n−1)/2 nodes at level 1,
// n·(n−1)·(n−2)/6 at level 2, and so on — the counts stated in the paper.
func GenerateFull(name string, primitives []ID, opts ...GenerateOption) (*Graph, error) {
	if len(primitives) == 0 {
		return nil, ErrEmptyGraph
	}
	seen := make(map[ID]bool, len(primitives))
	for _, p := range primitives {
		if seen[p] {
			return nil, fmt.Errorf("except: duplicate primitive %q", p)
		}
		seen[p] = true
	}

	cfg := genConfig{}
	for _, opt := range opts {
		opt(&cfg)
	}
	limit := len(primitives) - 1
	if cfg.maxLevel > 0 && cfg.maxLevel < limit {
		limit = cfg.maxLevel
	}

	b := NewBuilder(name).WithUniversal()
	for _, p := range primitives {
		b.Node(p)
	}

	// Work over a sorted copy so "extend with a strictly greater primitive"
	// enumerates every subset exactly once regardless of input order.
	sorted := append([]ID(nil), primitives...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	prev := make([][]ID, 0, len(sorted))
	for _, p := range sorted {
		prev = append(prev, []ID{p})
	}
	for level := 1; level <= limit; level++ {
		var cur [][]ID
		for _, members := range prev {
			last := members[len(members)-1]
			for _, p := range sorted {
				if p <= last {
					continue
				}
				ext := append(append([]ID(nil), members...), p)
				// Excluded combinations produce no node, but stay in the
				// frontier so their supersets are still generated.
				cur = append(cur, ext)
				if cfg.exclude != nil && cfg.exclude(ext) {
					continue
				}
				id := Combined(ext...)
				// Cover the contained subsets of the previous level that
				// survived exclusion; any member primitive left uncovered
				// by surviving children is covered directly, preserving
				// the invariant that a generated node covers all of its
				// member primitives.
				covered := make(map[ID]bool, len(ext))
				for skip := range ext {
					sub := make([]ID, 0, len(ext)-1)
					sub = append(sub, ext[:skip]...)
					sub = append(sub, ext[skip+1:]...)
					child := Combined(sub...)
					if b.known[child] {
						b.Cover(id, child)
						for _, m := range sub {
							covered[m] = true
						}
					}
				}
				for _, m := range ext {
					if !covered[m] {
						b.Cover(id, m)
					}
				}
			}
		}
		if len(cur) == 0 {
			break
		}
		prev = cur
	}
	return b.Build()
}
