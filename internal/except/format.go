package except

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Parse reads an exception graph from the paper's declaration syntax
// (§3.1/§3.2):
//
//	graph Move_Loaded_Table        # optional name header
//	# comments and blank lines are ignored
//	dual_motor_failures: vm_stop, rm_stop, vm_nmove, rm_nmove
//	universal: dual_motor_failures, other_undefined
//	lone_exception                 # a node with no cover relationships
//
// Each "er: e1, e2, ..., ek" line declares that er covers the listed
// exceptions. The graph must validate exactly as with Builder.Build; use
// "universal" as the root or end the file with "!auto-universal" to have the
// root synthesised.
func Parse(r io.Reader) (*Graph, error) {
	name := "parsed"
	b := NewBuilder(name)
	sc := bufio.NewScanner(r)
	lineNo := 0
	renamed := false
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case line == "graph":
			return nil, fmt.Errorf("except: line %d: empty graph name", lineNo)
		case strings.HasPrefix(line, "graph "):
			if renamed {
				return nil, fmt.Errorf("except: line %d: duplicate graph header", lineNo)
			}
			name = strings.TrimSpace(strings.TrimPrefix(line, "graph "))
			if name == "" {
				return nil, fmt.Errorf("except: line %d: empty graph name", lineNo)
			}
			renamed = true
			b.name = name
		case line == "!auto-universal":
			b.WithUniversal()
		case strings.Contains(line, ":"):
			parts := strings.SplitN(line, ":", 2)
			parent := ID(strings.TrimSpace(parts[0]))
			if parent == None {
				return nil, fmt.Errorf("except: line %d: missing parent", lineNo)
			}
			if strings.Contains(string(parent), ",") {
				// A comma is the child-list separator; an identifier
				// containing one cannot survive a serialize/parse cycle.
				return nil, fmt.Errorf("except: line %d: comma in identifier %q", lineNo, parent)
			}
			var children []ID
			for _, f := range strings.Split(parts[1], ",") {
				f = strings.TrimSpace(f)
				if f == "" {
					return nil, fmt.Errorf("except: line %d: empty child", lineNo)
				}
				children = append(children, ID(f))
			}
			if len(children) == 0 {
				return nil, fmt.Errorf("except: line %d: %q covers nothing", lineNo, parent)
			}
			b.Cover(parent, children...)
		default:
			if strings.ContainsAny(line, " \t") {
				return nil, fmt.Errorf("except: line %d: malformed line %q", lineNo, line)
			}
			if strings.Contains(line, ",") {
				return nil, fmt.Errorf("except: line %d: comma in identifier %q", lineNo, line)
			}
			b.Node(ID(line))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("except: reading graph: %w", err)
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return g, nil
}

// MustParse is Parse for static graph literals; it panics on error.
func MustParse(text string) *Graph {
	g, err := Parse(strings.NewReader(text))
	if err != nil {
		panic(err)
	}
	return g
}
