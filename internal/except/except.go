// Package except implements the paper's exception model (§3.1–3.2): exception
// identifiers, raised-exception instances, and exception graphs — directed
// acyclic graphs in which a parent ("resolving") exception covers its
// descendants. Concurrently raised exceptions are resolved to the root of the
// smallest subtree containing all of them (Campbell & Randell's exception-tree
// rule generalised to DAGs), which is exactly what the distributed resolution
// protocols in internal/resolve compute.
package except

import (
	"errors"
	"sort"
	"strings"
	"time"
)

// ID names an exception within one action's exception context. IDs are
// compared literally; the empty ID is reserved for "no exception" (the
// paper's φ).
type ID string

// Reserved identifiers from the paper's model.
const (
	// None is φ: the absence of an exception to signal.
	None ID = ""

	// Universal is the root exception present in every graph: a raised
	// universal exception "usually leads to the signalling of an undo or
	// failure exception to the enclosing action" (§3.2).
	Universal ID = "universal"

	// Undo is µ: the action was aborted and all its effects were undone.
	Undo ID = "µ"

	// Failure is ƒ: the action was aborted but its effects may not have
	// been undone completely.
	Failure ID = "ƒ"

	// Abortion is the exception raised inside a nested action when its
	// enclosing action requires it to abort (§3.3.1).
	Abortion ID = "abortion"
)

// IsInterface reports whether id is one of the pre-defined interface
// exceptions (µ, ƒ) that require final-stage coordination when signalled.
func IsInterface(id ID) bool { return id == Undo || id == Failure }

// Raised is one occurrence of an exception inside an action.
type Raised struct {
	ID     ID
	Origin string        // identifier of the thread that raised it
	Info   string        // free-form diagnostic detail
	At     time.Duration // clock timestamp of the raise
}

// IDsOf extracts the distinct exception IDs from a set of raised instances,
// sorted for determinism.
func IDsOf(raised []Raised) []ID {
	seen := make(map[ID]bool, len(raised))
	var ids []ID
	for _, r := range raised {
		if !seen[r.ID] {
			seen[r.ID] = true
			ids = append(ids, r.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Combined returns the canonical ID for the resolving exception covering the
// given exceptions, as used by the automatic graph generator: the sorted
// member names joined by "+" (the paper writes e1∩e2).
func Combined(ids ...ID) ID {
	ss := make([]string, len(ids))
	for i, id := range ids {
		ss[i] = string(id)
	}
	sort.Strings(ss)
	return ID(strings.Join(ss, "+"))
}

// Errors reported by graph construction and resolution.
var (
	ErrEmptyGraph    = errors.New("except: graph has no nodes")
	ErrCycle         = errors.New("except: graph contains a cycle")
	ErrMultipleRoots = errors.New("except: graph has more than one root")
	ErrNoRoot        = errors.New("except: graph has no root")
	ErrUnreachable   = errors.New("except: node not covered by the root")
	ErrDuplicateEdge = errors.New("except: duplicate edge")
	ErrSelfEdge      = errors.New("except: self edge")
	ErrReservedID    = errors.New("except: reserved identifier used as graph node")
	ErrNothingRaised = errors.New("except: no exceptions to resolve")
)
