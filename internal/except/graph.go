package except

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Graph is an immutable exception graph G(E, R): nodes are exceptions, a
// directed edge (parent, child) means parent covers child. A valid graph is
// acyclic and has exactly one root (in-degree zero) from which every node is
// reachable — the universal exception. Build one with a Builder, Parse, or
// GenerateFull.
//
// Graphs are safe for concurrent use after construction.
type Graph struct {
	name  string
	idx   map[ID]int
	nodes []gnode
	root  int
	words int // bitset words per node
}

type gnode struct {
	id       ID
	children []int
	parents  []int
	level    int      // primitives are level 0; parent = 1 + max(children)
	covers   []uint64 // bitset over node indices: descendants ∪ self
	size     int      // popcount of covers ("subtree size")
}

// Builder accumulates nodes and cover edges for a Graph. The zero value is
// not usable; construct with NewBuilder. Builder is not safe for concurrent
// use.
type Builder struct {
	name     string
	order    []ID
	known    map[ID]bool
	edges    map[ID][]ID
	edgeSet  map[[2]ID]bool
	autoRoot bool
	firstErr error
}

// NewBuilder returns a Builder for a graph with the given name (typically
// the owning CA action's name).
func NewBuilder(name string) *Builder {
	return &Builder{
		name:    name,
		known:   make(map[ID]bool),
		edges:   make(map[ID][]ID),
		edgeSet: make(map[[2]ID]bool),
	}
}

func (b *Builder) note(id ID) {
	if id == None || id == Undo || id == Failure {
		if b.firstErr == nil {
			b.firstErr = fmt.Errorf("%w: %q", ErrReservedID, id)
		}
		return
	}
	if !b.known[id] {
		b.known[id] = true
		b.order = append(b.order, id)
	}
}

// Node declares an exception with no cover relationships yet (a primitive,
// unless later used as a parent).
func (b *Builder) Node(id ID) *Builder {
	b.note(id)
	return b
}

// Cover declares that parent covers each child: a handler for parent is able
// to handle any of the children (paper's "er: e1, e2, ..., ek" form).
func (b *Builder) Cover(parent ID, children ...ID) *Builder {
	b.note(parent)
	for _, c := range children {
		b.note(c)
		if c == parent {
			if b.firstErr == nil {
				b.firstErr = fmt.Errorf("%w: %q", ErrSelfEdge, parent)
			}
			continue
		}
		key := [2]ID{parent, c}
		if b.edgeSet[key] {
			if b.firstErr == nil {
				b.firstErr = fmt.Errorf("%w: %q -> %q", ErrDuplicateEdge, parent, c)
			}
			continue
		}
		b.edgeSet[key] = true
		b.edges[parent] = append(b.edges[parent], c)
	}
	return b
}

// WithUniversal makes Build add a synthetic Universal root covering every
// otherwise-uncovered node, so callers can declare only the
// application-specific part of the hierarchy.
func (b *Builder) WithUniversal() *Builder {
	b.autoRoot = true
	return b
}

// Build validates the accumulated structure and returns the immutable Graph.
func (b *Builder) Build() (*Graph, error) {
	if b.firstErr != nil {
		return nil, b.firstErr
	}
	if len(b.order) == 0 {
		return nil, ErrEmptyGraph
	}

	order := append([]ID(nil), b.order...)
	edges := make(map[ID][]ID, len(b.edges))
	for p, cs := range b.edges {
		edges[p] = append([]ID(nil), cs...)
	}

	if b.autoRoot {
		hasParent := make(map[ID]bool)
		for _, cs := range edges {
			for _, c := range cs {
				hasParent[c] = true
			}
		}
		var tops []ID
		for _, id := range order {
			if !hasParent[id] && id != Universal {
				tops = append(tops, id)
			}
		}
		if _, ok := b.known[Universal]; !ok {
			order = append(order, Universal)
		}
		for _, top := range tops {
			if !b.edgeSet[[2]ID{Universal, top}] {
				edges[Universal] = append(edges[Universal], top)
			}
		}
	}

	g := &Graph{name: b.name, idx: make(map[ID]int, len(order))}
	for i, id := range order {
		g.idx[id] = i
		g.nodes = append(g.nodes, gnode{id: id})
	}
	for p, cs := range edges {
		pi := g.idx[p]
		for _, c := range cs {
			ci := g.idx[c]
			g.nodes[pi].children = append(g.nodes[pi].children, ci)
			g.nodes[ci].parents = append(g.nodes[ci].parents, pi)
		}
	}
	for i := range g.nodes {
		sort.Ints(g.nodes[i].children)
		sort.Ints(g.nodes[i].parents)
	}

	if err := g.finish(); err != nil {
		return nil, err
	}
	return g, nil
}

// finish computes topological levels and cover bitsets, validating acyclicity
// and the single-covering-root property.
func (g *Graph) finish() error {
	n := len(g.nodes)
	g.words = (n + 63) / 64

	// Topological sort (children before parents) to detect cycles and to
	// compute levels and cover sets in one pass.
	indeg := make([]int, n) // number of unprocessed children
	for i := range g.nodes {
		indeg[i] = len(g.nodes[i].children)
	}
	queue := make([]int, 0, n)
	for i := range g.nodes {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	processed := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		processed++
		node := &g.nodes[i]
		node.covers = make([]uint64, g.words)
		node.covers[i/64] |= 1 << (i % 64)
		node.level = 0
		for _, c := range node.children {
			child := &g.nodes[c]
			for w := range node.covers {
				node.covers[w] |= child.covers[w]
			}
			if child.level+1 > node.level {
				node.level = child.level + 1
			}
		}
		for w := range node.covers {
			node.size += bits.OnesCount64(node.covers[w])
		}
		for _, p := range node.parents {
			indeg[p]--
			if indeg[p] == 0 {
				queue = append(queue, p)
			}
		}
	}
	if processed != n {
		return fmt.Errorf("%w in graph %q", ErrCycle, g.name)
	}

	g.root = -1
	for i := range g.nodes {
		if len(g.nodes[i].parents) == 0 {
			if g.root >= 0 {
				return fmt.Errorf("%w: %q and %q", ErrMultipleRoots,
					g.nodes[g.root].id, g.nodes[i].id)
			}
			g.root = i
		}
	}
	if g.root < 0 {
		return fmt.Errorf("%w in graph %q", ErrNoRoot, g.name)
	}
	if g.nodes[g.root].size != n {
		for i := range g.nodes {
			if !g.coversIdx(g.root, i) {
				return fmt.Errorf("%w: %q", ErrUnreachable, g.nodes[i].id)
			}
		}
	}
	return nil
}

func (g *Graph) coversIdx(a, b int) bool {
	return g.nodes[a].covers[b/64]&(1<<(b%64)) != 0
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// Root returns the universal (root) exception of the graph.
func (g *Graph) Root() ID { return g.nodes[g.root].id }

// Has reports whether id is declared in the graph.
func (g *Graph) Has(id ID) bool {
	_, ok := g.idx[id]
	return ok
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Nodes returns all exception IDs in declaration order.
func (g *Graph) Nodes() []ID {
	out := make([]ID, len(g.nodes))
	for i := range g.nodes {
		out[i] = g.nodes[i].id
	}
	return out
}

// Primitives returns the exceptions that cover nothing (out-degree zero).
func (g *Graph) Primitives() []ID {
	var out []ID
	for i := range g.nodes {
		if len(g.nodes[i].children) == 0 {
			out = append(out, g.nodes[i].id)
		}
	}
	return out
}

// Level returns a node's level: primitives are level 0 and a parent is one
// above its highest child. Unknown IDs report -1.
func (g *Graph) Level(id ID) int {
	i, ok := g.idx[id]
	if !ok {
		return -1
	}
	return g.nodes[i].level
}

// Children returns the direct low-level nodes of id.
func (g *Graph) Children(id ID) []ID {
	i, ok := g.idx[id]
	if !ok {
		return nil
	}
	out := make([]ID, len(g.nodes[i].children))
	for k, c := range g.nodes[i].children {
		out[k] = g.nodes[c].id
	}
	return out
}

// CoverSize returns the number of exceptions covered by id (including
// itself) — the paper's "subtree size". Unknown IDs report 0.
func (g *Graph) CoverSize(id ID) int {
	i, ok := g.idx[id]
	if !ok {
		return 0
	}
	return g.nodes[i].size
}

// Covers reports whether exception a covers exception b (b is reachable from
// a, or a == b).
func (g *Graph) Covers(a, b ID) bool {
	ai, ok := g.idx[a]
	if !ok {
		return false
	}
	bi, ok := g.idx[b]
	if !ok {
		return false
	}
	return g.coversIdx(ai, bi)
}

// Resolve returns the resolving exception for the given concurrently raised
// exceptions: the node with the smallest cover set that covers all of them
// (ties broken by lower level, then by ID, for determinism). Exceptions not
// declared in the graph are "undefined" and, per §3.2, force resolution to
// the universal exception. Resolving an empty set is an error.
func (g *Graph) Resolve(raised ...ID) (ID, error) {
	if len(raised) == 0 {
		return None, ErrNothingRaised
	}
	need := make([]uint64, g.words)
	for _, id := range raised {
		i, ok := g.idx[id]
		if !ok {
			return g.Root(), nil
		}
		need[i/64] |= 1 << (i % 64)
	}
	best := -1
	for i := range g.nodes {
		node := &g.nodes[i]
		covered := true
		for w := range need {
			if need[w]&^node.covers[w] != 0 {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		if best < 0 || betterCover(node, &g.nodes[best]) {
			best = i
		}
	}
	if best < 0 {
		// Unreachable for valid graphs (the root covers everything),
		// but keep a defensive answer.
		return g.Root(), nil
	}
	return g.nodes[best].id, nil
}

// ResolveRaised is Resolve applied to raised-exception instances.
func (g *Graph) ResolveRaised(raised []Raised) (ID, error) {
	return g.Resolve(IDsOf(raised)...)
}

func betterCover(a, b *gnode) bool {
	if a.size != b.size {
		return a.size < b.size
	}
	if a.level != b.level {
		return a.level < b.level
	}
	return a.id < b.id
}

// String renders the graph in the parseable text format, children sorted,
// parents ordered root-last (matching Parse's accepted input).
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s\n", g.name)
	type line struct {
		level int
		text  string
	}
	var lines []line
	for i := range g.nodes {
		node := &g.nodes[i]
		if len(node.children) == 0 {
			continue
		}
		kids := make([]string, len(node.children))
		for k, c := range node.children {
			kids[k] = string(g.nodes[c].id)
		}
		sort.Strings(kids)
		lines = append(lines, line{node.level,
			fmt.Sprintf("%s: %s", node.id, strings.Join(kids, ", "))})
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].level != lines[j].level {
			return lines[i].level < lines[j].level
		}
		return lines[i].text < lines[j].text
	})
	if len(lines) == 0 {
		// A single-node graph has no cover lines; emit the lone root as a
		// bare node declaration so String round-trips through Parse.
		lines = append(lines, line{0, string(g.nodes[g.root].id)})
	}
	for _, l := range lines {
		b.WriteString(l.text)
		b.WriteByte('\n')
	}
	return b.String()
}
