package except

import (
	"errors"
	"strings"
	"testing"
)

// fig3 builds the paper's Figure 3 three-level graph over e1, e2, e3.
func fig3(t *testing.T) *Graph {
	t.Helper()
	g, err := NewBuilder("fig3").
		Cover("e1+e2", "e1", "e2").
		Cover("e1+e3", "e1", "e3").
		Cover("e2+e3", "e2", "e3").
		Cover("e1+e2+e3", "e1+e2", "e1+e3", "e2+e3").
		Cover(Universal, "e1+e2+e3").
		Build()
	if err != nil {
		t.Fatalf("building fig3: %v", err)
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := fig3(t)
	if g.Root() != Universal {
		t.Fatalf("root = %q", g.Root())
	}
	if g.Len() != 8 {
		t.Fatalf("len = %d, want 8", g.Len())
	}
	prims := g.Primitives()
	if len(prims) != 3 {
		t.Fatalf("primitives = %v", prims)
	}
	if g.Level("e1") != 0 || g.Level("e1+e2") != 1 || g.Level("e1+e2+e3") != 2 || g.Level(Universal) != 3 {
		t.Fatalf("levels wrong: %d %d %d %d",
			g.Level("e1"), g.Level("e1+e2"), g.Level("e1+e2+e3"), g.Level(Universal))
	}
	if g.Level("nope") != -1 {
		t.Fatal("unknown level should be -1")
	}
	if !g.Covers("e1+e2", "e1") || g.Covers("e1+e2", "e3") {
		t.Fatal("covers relation wrong")
	}
	if !g.Covers(Universal, "e2") {
		t.Fatal("root must cover primitives")
	}
	if !g.Covers("e1", "e1") {
		t.Fatal("node must cover itself")
	}
	if g.CoverSize("e1") != 1 || g.CoverSize("e1+e2") != 3 || g.CoverSize(Universal) != 8 {
		t.Fatalf("cover sizes: %d %d %d",
			g.CoverSize("e1"), g.CoverSize("e1+e2"), g.CoverSize(Universal))
	}
}

func TestResolveSingle(t *testing.T) {
	g := fig3(t)
	got, err := g.Resolve("e2")
	if err != nil || got != "e2" {
		t.Fatalf("Resolve(e2) = %q, %v", got, err)
	}
}

func TestResolvePair(t *testing.T) {
	g := fig3(t)
	got, err := g.Resolve("e1", "e2")
	if err != nil || got != "e1+e2" {
		t.Fatalf("Resolve(e1,e2) = %q, %v", got, err)
	}
}

func TestResolveTriple(t *testing.T) {
	g := fig3(t)
	got, err := g.Resolve("e1", "e2", "e3")
	if err != nil || got != "e1+e2+e3" {
		t.Fatalf("Resolve = %q, %v", got, err)
	}
}

func TestResolveDuplicatesAndOrder(t *testing.T) {
	g := fig3(t)
	a, _ := g.Resolve("e2", "e1", "e2", "e1")
	b, _ := g.Resolve("e1", "e2")
	if a != b {
		t.Fatalf("order/duplicates changed result: %q vs %q", a, b)
	}
}

func TestResolveResolvingNodeItself(t *testing.T) {
	g := fig3(t)
	// A resolving exception raised together with a primitive it covers
	// resolves to the resolving exception itself.
	got, _ := g.Resolve("e1+e2", "e1")
	if got != "e1+e2" {
		t.Fatalf("got %q", got)
	}
}

func TestResolveUndeclaredGoesUniversal(t *testing.T) {
	g := fig3(t)
	got, err := g.Resolve("mystery")
	if err != nil || got != Universal {
		t.Fatalf("Resolve(mystery) = %q, %v", got, err)
	}
	got, _ = g.Resolve("e1", "mystery")
	if got != Universal {
		t.Fatalf("mixed undefined = %q", got)
	}
}

func TestResolveEmpty(t *testing.T) {
	g := fig3(t)
	if _, err := g.Resolve(); !errors.Is(err, ErrNothingRaised) {
		t.Fatalf("err = %v", err)
	}
}

func TestResolveRaisedInstances(t *testing.T) {
	g := fig3(t)
	got, err := g.ResolveRaised([]Raised{
		{ID: "e3", Origin: "T1"},
		{ID: "e1", Origin: "T2"},
	})
	if err != nil || got != "e1+e3" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestBuilderWithUniversal(t *testing.T) {
	g, err := NewBuilder("auto").
		Cover("motor", "vm_stop", "rm_stop").
		Node("l_plate").
		WithUniversal().
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if g.Root() != Universal {
		t.Fatalf("root = %q", g.Root())
	}
	if !g.Covers(Universal, "l_plate") || !g.Covers(Universal, "vm_stop") {
		t.Fatal("auto universal must cover everything")
	}
	got, _ := g.Resolve("vm_stop", "l_plate")
	if got != Universal {
		t.Fatalf("uncombined pair should escalate to universal, got %q", got)
	}
}

func TestBuildErrors(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if _, err := NewBuilder("x").Build(); !errors.Is(err, ErrEmptyGraph) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("cycle", func(t *testing.T) {
		_, err := NewBuilder("x").Cover("a", "b").Cover("b", "c").Cover("c", "a").Build()
		if !errors.Is(err, ErrCycle) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("self edge", func(t *testing.T) {
		_, err := NewBuilder("x").Cover("a", "a").Build()
		if !errors.Is(err, ErrSelfEdge) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("duplicate edge", func(t *testing.T) {
		_, err := NewBuilder("x").Cover("a", "b").Cover("a", "b").Build()
		if !errors.Is(err, ErrDuplicateEdge) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("multiple roots", func(t *testing.T) {
		_, err := NewBuilder("x").Cover("a", "b").Cover("c", "b").Build()
		if !errors.Is(err, ErrMultipleRoots) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("no root", func(t *testing.T) {
		// Pure cycle has no root; cycle is detected first.
		_, err := NewBuilder("x").Cover("a", "b").Cover("b", "a").Build()
		if err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("reserved", func(t *testing.T) {
		_, err := NewBuilder("x").Cover(Undo, "a").Build()
		if !errors.Is(err, ErrReservedID) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestDiamondIsValid(t *testing.T) {
	// DAG (not a tree): two parents share a child.
	g, err := NewBuilder("diamond").
		Cover("left", "base").
		Cover("right", "base").
		Cover("top", "left", "right").
		Build()
	if err != nil {
		t.Fatalf("diamond should be valid: %v", err)
	}
	got, _ := g.Resolve("left", "right")
	if got != "top" {
		t.Fatalf("got %q", got)
	}
}

func TestSmallestCoverPreferred(t *testing.T) {
	// "big" covers everything; "small" covers exactly {a, b}. The smaller
	// subtree must win.
	g, err := NewBuilder("min").
		Cover("small", "a", "b").
		Cover("big", "small", "c").
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	got, _ := g.Resolve("a", "b")
	if got != "small" {
		t.Fatalf("got %q, want small", got)
	}
	got, _ = g.Resolve("a", "c")
	if got != "big" {
		t.Fatalf("got %q, want big", got)
	}
}

func TestIDsOfAndCombined(t *testing.T) {
	ids := IDsOf([]Raised{{ID: "b"}, {ID: "a"}, {ID: "b"}})
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("IDsOf = %v", ids)
	}
	if Combined("c", "a", "b") != "a+b+c" {
		t.Fatalf("Combined = %q", Combined("c", "a", "b"))
	}
	if !IsInterface(Undo) || !IsInterface(Failure) || IsInterface("e1") {
		t.Fatal("IsInterface wrong")
	}
}

func TestParseRoundTrip(t *testing.T) {
	text := `graph demo
# primitives implied
pair: e1, e2
universal: pair, e3
`
	g, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if g.Name() != "demo" || g.Len() != 5 {
		t.Fatalf("name=%q len=%d", g.Name(), g.Len())
	}
	got, _ := g.Resolve("e1", "e2")
	if got != "pair" {
		t.Fatalf("resolve = %q", got)
	}
	// Round-trip: String output parses back to an equivalent graph.
	g2, err := Parse(strings.NewReader(g.String()))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if g2.Len() != g.Len() || g2.Root() != g.Root() {
		t.Fatalf("round trip mismatch: %d/%q vs %d/%q", g2.Len(), g2.Root(), g.Len(), g.Root())
	}
}

func TestParseAutoUniversalAndLoneNodes(t *testing.T) {
	text := `graph lone
pair: a, b
c
!auto-universal
`
	g, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if g.Root() != Universal || !g.Covers(Universal, "c") {
		t.Fatal("auto universal missing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"graph a\ngraph b\n",
		": x\n",
		"a: \n",
		"a b c\n",
		"graph \n",
	}
	for _, text := range cases {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", text)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on invalid input did not panic")
		}
	}()
	MustParse("a: a\n")
}
