package except

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func primsN(n int) []ID {
	out := make([]ID, n)
	for i := range out {
		out[i] = ID(fmt.Sprintf("e%d", i+1))
	}
	return out
}

func TestGenerateFullCountsMatchPaper(t *testing.T) {
	// §3.2: level 1 has n(n−1)/2 nodes, level 2 has n(n−1)(n−2)/6, level
	// n−1 has exactly one node, plus one universal root.
	for n := 2; n <= 6; n++ {
		g, err := GenerateFull("full", primsN(n))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		byLevel := make(map[int]int)
		for _, id := range g.Nodes() {
			byLevel[g.Level(id)]++
		}
		if byLevel[0] != n {
			t.Fatalf("n=%d level0 = %d", n, byLevel[0])
		}
		if n >= 2 && byLevel[1] != n*(n-1)/2 {
			t.Fatalf("n=%d level1 = %d, want %d", n, byLevel[1], n*(n-1)/2)
		}
		if n >= 3 && byLevel[2] != n*(n-1)*(n-2)/6 {
			t.Fatalf("n=%d level2 = %d, want %d", n, byLevel[2], n*(n-1)*(n-2)/6)
		}
		if byLevel[n-1] != 1 && n > 1 {
			t.Fatalf("n=%d top combination level has %d nodes", n, byLevel[n-1])
		}
		// Total: all non-empty subsets + universal = 2^n - 1 + 1.
		if g.Len() != (1<<n)-1+1 {
			t.Fatalf("n=%d len = %d, want %d", n, g.Len(), (1 << n))
		}
	}
}

func TestGenerateFullResolution(t *testing.T) {
	g, err := GenerateFull("full", primsN(4))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := g.Resolve("e1", "e3")
	if got != "e1+e3" {
		t.Fatalf("pair resolve = %q", got)
	}
	got, _ = g.Resolve("e2", "e3", "e4")
	if got != "e2+e3+e4" {
		t.Fatalf("triple resolve = %q", got)
	}
	got, _ = g.Resolve("e1", "e2", "e3", "e4")
	if got != "e1+e2+e3+e4" {
		t.Fatalf("full resolve = %q", got)
	}
}

func TestGenerateMaxLevel(t *testing.T) {
	// The paper's Figure 7 style: only pairs are resolvable; three or more
	// concurrent exceptions escalate to the universal exception.
	g, err := GenerateFull("pairs", primsN(5), MaxLevel(1))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := g.Resolve("e1", "e2")
	if got != "e1+e2" {
		t.Fatalf("pair = %q", got)
	}
	got, _ = g.Resolve("e1", "e2", "e3")
	if got != Universal {
		t.Fatalf("triple = %q, want universal", got)
	}
}

func TestGenerateExclude(t *testing.T) {
	// e1 and e2 cannot occur together: their pair node is excluded, so the
	// pair resolves to the universal exception; other pairs still resolve.
	g, err := GenerateFull("excl", primsN(3), MaxLevel(1),
		Exclude(func(members []ID) bool {
			return len(members) == 2 && members[0] == "e1" && members[1] == "e2"
		}))
	if err != nil {
		t.Fatal(err)
	}
	if g.Has("e1+e2") {
		t.Fatal("excluded node present")
	}
	got, _ := g.Resolve("e1", "e2")
	if got != Universal {
		t.Fatalf("excluded pair = %q", got)
	}
	got, _ = g.Resolve("e1", "e3")
	if got != "e1+e3" {
		t.Fatalf("surviving pair = %q", got)
	}
}

func TestGenerateExcludedChildKeepsPrimitiveCover(t *testing.T) {
	// Excluding a pair must not leave a triple that fails to cover its
	// member primitives.
	g, err := GenerateFull("excl2", primsN(3),
		Exclude(func(members []ID) bool {
			return len(members) == 2 && members[0] == "e1" && members[1] == "e2"
		}))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []ID{"e1", "e2", "e3"} {
		if !g.Covers("e1+e2+e3", p) {
			t.Fatalf("triple does not cover %q", p)
		}
	}
	got, _ := g.Resolve("e1", "e2")
	if got != "e1+e2+e3" {
		t.Fatalf("pair now resolves to %q, want the triple", got)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := GenerateFull("x", nil); err == nil {
		t.Fatal("empty primitives accepted")
	}
	if _, err := GenerateFull("x", []ID{"a", "a"}); err == nil {
		t.Fatal("duplicate primitives accepted")
	}
}

// Property: for any set of primitives raised, the resolving exception covers
// every raised exception, and no strictly smaller covering node exists.
func TestResolveCoversAllProperty(t *testing.T) {
	g, err := GenerateFull("prop", primsN(6), MaxLevel(3))
	if err != nil {
		t.Fatal(err)
	}
	prims := g.Primitives()
	prop := func(seed int64, k uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(k)%len(prims) + 1
		perm := rng.Perm(len(prims))
		raised := make([]ID, count)
		for i := 0; i < count; i++ {
			raised[i] = prims[perm[i]]
		}
		res, err := g.Resolve(raised...)
		if err != nil {
			return false
		}
		for _, r := range raised {
			if !g.Covers(res, r) {
				return false
			}
		}
		// Minimality: every other covering node is at least as large.
		for _, id := range g.Nodes() {
			all := true
			for _, r := range raised {
				if !g.Covers(id, r) {
					all = false
					break
				}
			}
			if all && g.CoverSize(id) < g.CoverSize(res) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: resolution is deterministic and insensitive to raise order.
func TestResolveOrderInsensitiveProperty(t *testing.T) {
	g, err := GenerateFull("prop2", primsN(5))
	if err != nil {
		t.Fatal(err)
	}
	prims := g.Primitives()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		count := rng.Intn(len(prims)) + 1
		perm := rng.Perm(len(prims))
		raised := make([]ID, count)
		for i := range raised {
			raised[i] = prims[perm[i]]
		}
		a, _ := g.Resolve(raised...)
		rng.Shuffle(len(raised), func(i, j int) { raised[i], raised[j] = raised[j], raised[i] })
		b, _ := g.Resolve(raised...)
		return a == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkResolvePair(b *testing.B) {
	g, err := GenerateFull("bench", primsN(8), MaxLevel(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.Resolve("e3", "e7"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateFull8(b *testing.B) {
	prims := primsN(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateFull("bench", prims); err != nil {
			b.Fatal(err)
		}
	}
}
