package harness

import (
	"testing"
	"time"

	"caaction/internal/except"
	"caaction/internal/resolve"
)

func TestFig9BaselineNearPaper(t *testing.T) {
	total, err := RunFig9Point(DefaultFig9())
	if err != nil {
		t.Fatal(err)
	}
	// Paper baseline: 94.361 s. The scenario is tuned to land within 15%.
	paper := 94.361391
	got := total.Seconds()
	if got < paper*0.85 || got > paper*1.15 {
		t.Fatalf("baseline total = %.3f s, paper %.3f s (outside ±15%%)", got, paper)
	}
}

func TestFig9SlopesMatchPaperShape(t *testing.T) {
	point := func(mutate func(*Fig9Config)) time.Duration {
		cfg := DefaultFig9()
		mutate(&cfg)
		total, err := RunFig9Point(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	base := point(func(c *Fig9Config) {})

	// Tabo and Treso sensitivities are linear with slope ≈ Loops (one
	// abortion and one resolution per iteration) — the paper's measured
	// slopes are 19.9 and 20.4 per second.
	tabo := point(func(c *Fig9Config) { c.Tabo += 500 * time.Millisecond })
	slope := (tabo - base).Seconds() / 0.5
	if slope < 15 || slope > 25 {
		t.Fatalf("Tabo slope = %.1f, want ~20", slope)
	}
	treso := point(func(c *Fig9Config) { c.Treso += 500 * time.Millisecond })
	slope = (treso - base).Seconds() / 0.5
	if slope < 15 || slope > 25 {
		t.Fatalf("Treso slope = %.1f, want ~20", slope)
	}

	// Tmmax sensitivity steepens once latency exceeds the knee (~1 s):
	// below it the handler cooperation hides behind handler computation.
	lo1 := point(func(c *Fig9Config) { c.Tmmax = 200 * time.Millisecond })
	lo2 := point(func(c *Fig9Config) { c.Tmmax = 800 * time.Millisecond })
	hi1 := point(func(c *Fig9Config) { c.Tmmax = 1600 * time.Millisecond })
	hi2 := point(func(c *Fig9Config) { c.Tmmax = 2200 * time.Millisecond })
	below := (lo2 - lo1).Seconds() / 0.6
	above := (hi2 - hi1).Seconds() / 0.6
	if above <= below*1.2 {
		t.Fatalf("no knee: below slope %.1f, above slope %.1f", below, above)
	}
}

func TestFig12BaselineAndOrdering(t *testing.T) {
	base := Fig12Config{Tmmax: time.Second, Tres: 300 * time.Millisecond}

	cfg := base
	cfg.Protocol = resolve.Coordinated{}
	ours, err := RunFig12Point(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Protocol = resolve.CR86{}
	cr, err := RunFig12Point(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ours 9.153 s, CR 11.771 s. Shape: ours is faster.
	if ours >= cr {
		t.Fatalf("ours %.3f ≥ CR %.3f", ours.Seconds(), cr.Seconds())
	}
	if got := ours.Seconds(); got < 8 || got > 10.5 {
		t.Fatalf("ours baseline %.3f s, paper 9.153 s", got)
	}

	// Tres slope: ours ≈ 1 (single resolution), CR ≈ 3 (per-relay plus
	// verification) — paper measured 1.05 and 2.93.
	cfg = base
	cfg.Tres = 1500 * time.Millisecond
	cfg.Protocol = resolve.Coordinated{}
	oursHi, err := RunFig12Point(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Protocol = resolve.CR86{}
	crHi, err := RunFig12Point(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oursSlope := (oursHi - ours).Seconds() / 1.2
	crSlope := (crHi - cr).Seconds() / 1.2
	if oursSlope < 0.8 || oursSlope > 1.3 {
		t.Fatalf("ours Tres slope = %.2f, want ~1", oursSlope)
	}
	if crSlope < 2*oursSlope {
		t.Fatalf("CR Tres slope = %.2f, want ≥ 2x ours (%.2f)", crSlope, oursSlope)
	}
}

func TestMessageComplexityMatchesFormulas(t *testing.T) {
	rows, err := RunMessageComplexity([]int{2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Messages != r.Formula {
			t.Errorf("%s N=%d %s: messages %d != formula %d",
				r.Protocol, r.N, r.Scenario, r.Messages, r.Formula)
		}
		if r.ResolveCalls != r.CallsFormula {
			t.Errorf("%s N=%d %s: calls %d != formula %d",
				r.Protocol, r.N, r.Scenario, r.ResolveCalls, r.CallsFormula)
		}
	}
}

func TestSignallingCostsMatchFormulas(t *testing.T) {
	rows, err := RunSignalling([]int{2, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Messages != r.Formula {
			t.Errorf("%s N=%d: messages %d != formula %d", r.Case, r.N, r.Messages, r.Formula)
		}
	}
}

func TestLemma1BoundHolds(t *testing.T) {
	rows, err := RunLemma1([]int{0, 1, 2, 3},
		200*time.Millisecond, 100*time.Millisecond, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Measured > r.Bound {
			t.Errorf("nmax=%d: measured %v exceeds bound %v", r.Nesting, r.Measured, r.Bound)
		}
		if r.Measured <= 0 {
			t.Errorf("nmax=%d: no handling measured", r.Nesting)
		}
	}
}

func TestRenderers(t *testing.T) {
	f9 := RenderFig9([]Fig9Row{{Varied: "Tmmax", Value: time.Second, Total: 2 * time.Second, Paper: 3}})
	f12 := RenderFig12([]Fig12Row{{Varied: "Tres", Value: time.Second, Ours: time.Second, CR: 2 * time.Second}})
	ms := RenderMsgs([]MsgRow{{Protocol: "coordinated", N: 3, Scenario: "one", Messages: 8, Formula: 8}})
	sg := RenderSignalling([]SigRow{{Case: "a", N: 3, Messages: 6, Formula: 6, Signal: except.Undo}})
	lm := RenderLemma1([]Lemma1Row{{Nesting: 1, Measured: time.Second, Bound: 2 * time.Second}})
	for _, s := range []string{f9, f12, ms, sg, lm} {
		if len(s) == 0 || s[0] != '|' {
			t.Fatalf("bad table rendering: %q", s)
		}
	}
}
