// Package harness implements the paper's evaluation (§5): one function per
// table/figure, each returning typed rows that cmd/caexperiments renders as
// markdown and the root bench suite measures. Every experiment runs on the
// deterministic virtual clock, so "total execution time" is exact virtual
// time, reproducible bit-for-bit.
//
// Scenario constants (work chunks, handler costs) are tuned so the baseline
// points land near the paper's published numbers; EXPERIMENTS.md documents
// the tuning and compares every paper value against the measured one.
package harness

import (
	"fmt"
	"strings"
	"time"

	"caaction/internal/core"
	"caaction/internal/except"
	"caaction/internal/resolve"
	"caaction/internal/trace"
	"caaction/internal/transport"
	"caaction/internal/vclock"
)

// Env bundles one simulated distributed system.
type Env struct {
	Clock   *vclock.Virtual
	Net     *transport.Sim
	Runtime *core.Runtime
	Metrics *trace.Metrics
}

// NewEnv builds a virtual-clock environment with fixed one-way latency
// (the paper's Tmmax) and the given resolution protocol (nil means the
// paper's Coordinated algorithm).
func NewEnv(latency time.Duration, proto resolve.Protocol) (*Env, error) {
	clk := vclock.NewVirtual()
	metrics := &trace.Metrics{}
	net := transport.NewSim(transport.SimConfig{
		Clock:   clk,
		Latency: transport.FixedLatency(latency),
		Metrics: metrics,
	})
	rt, err := core.New(core.Config{
		Clock:    clk,
		Network:  net,
		Protocol: proto,
		Metrics:  metrics,
	})
	if err != nil {
		return nil, err
	}
	return &Env{Clock: clk, Net: net, Runtime: rt, Metrics: metrics}, nil
}

// Seconds formats a duration as the paper prints times.
func Seconds(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// Table renders a simple markdown table.
func Table(headers []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(headers, " | ") + " |\n")
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, r := range rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return b.String()
}

// threadNames returns T1..Tn.
func threadNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("T%d", i+1)
	}
	return out
}

// primGraph builds a full exception graph over e1..en.
func primGraph(n int) *except.Graph {
	prims := make([]except.ID, n)
	for i := range prims {
		prims[i] = except.ID(fmt.Sprintf("e%d", i+1))
	}
	g, err := except.GenerateFull("bench", prims)
	if err != nil {
		panic(err)
	}
	return g
}
