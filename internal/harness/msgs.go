package harness

import (
	"fmt"
	"sync"
	"time"

	"caaction/internal/core"
	"caaction/internal/except"
	"caaction/internal/resolve"
)

// MsgRow is one line of experiment E3: measured message and resolution-call
// counts for one (protocol, N, scenario) cell, against the closed forms of
// §3.3.3 (and the modelled forms for the baselines).
type MsgRow struct {
	Protocol     string
	N            int
	Scenario     string // "one" or "all": one raiser or all N raising
	Messages     int64  // resolution-protocol messages only
	Formula      int64  // the closed-form prediction
	ResolveCalls int64
	CallsFormula int64
}

// RunMessageComplexity measures resolution-message counts by driving full CA
// actions (entry and exit messages are excluded from the count, matching the
// paper's accounting, which counts Exception/Suspended/Commit only).
func RunMessageComplexity(ns []int) ([]MsgRow, error) {
	var rows []MsgRow
	protos := []resolve.Protocol{resolve.Coordinated{}, resolve.CR86{}, resolve.R96{}}
	for _, proto := range protos {
		for _, n := range ns {
			for _, scenario := range []string{"one", "all"} {
				row, err := runMsgCell(proto, n, scenario)
				if err != nil {
					return nil, err
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

func runMsgCell(proto resolve.Protocol, n int, scenario string) (MsgRow, error) {
	env, err := NewEnv(10*time.Millisecond, proto)
	if err != nil {
		return MsgRow{}, err
	}
	g := primGraph(n)
	specRoles := make([]core.Role, n)
	names := threadNames(n)
	for i, id := range names {
		specRoles[i] = core.Role{Name: fmt.Sprintf("r%d", i+1), Thread: id}
	}
	spec := &core.Spec{Name: "msgs", Roles: specRoles, Graph: g}

	handler := func(ctx *core.Context, _ except.ID, _ []except.Raised) error { return nil }
	handlers := map[except.ID]core.Handler{}
	for _, id := range g.Nodes() {
		handlers[id] = handler
	}

	var mu sync.Mutex
	var errs []error
	for i, r := range spec.Roles {
		role := r
		raises := scenario == "all" || i == 0
		exc := except.ID(fmt.Sprintf("e%d", i+1))
		th, err := env.Runtime.NewThread(role.Thread)
		if err != nil {
			return MsgRow{}, err
		}
		env.Clock.Go(func() {
			perr := th.Perform(spec, role.Name, core.RoleProgram{
				Body: func(ctx *core.Context) error {
					if raises {
						return ctx.Raise(exc, "")
					}
					return ctx.Compute(time.Hour) // interrupted by peers
				},
				Handlers: handlers,
			})
			if perr != nil {
				mu.Lock()
				errs = append(errs, perr)
				mu.Unlock()
			}
		})
	}
	env.Clock.Wait()
	if len(errs) > 0 {
		return MsgRow{}, fmt.Errorf("harness: msgs: %v", errs[0])
	}

	measured := env.Metrics.Get("msg.Exception") + env.Metrics.Get("msg.Suspended") +
		env.Metrics.Get("msg.Commit") + env.Metrics.Get("msg.Relay") +
		env.Metrics.Get("msg.Propose") + env.Metrics.Get("msg.Ack")
	formula, calls := msgFormula(proto.Name(), n, scenario)
	return MsgRow{
		Protocol:     proto.Name(),
		N:            n,
		Scenario:     scenario,
		Messages:     measured,
		Formula:      formula,
		ResolveCalls: env.Metrics.Get("resolve.calls"),
		CallsFormula: calls,
	}, nil
}

// msgFormula returns the predicted message and resolution-call counts:
// the paper's (N+1)(N−1) with one system-wide resolution for Coordinated
// (§3.3.3, both enumerated cases); 3N(N−1) with N resolutions for R-96; and
// the modelled CR-86 forms (every first-hand exception relayed to N−2
// threads, a resolution per relay received plus one verification per
// thread, plus an agreement round).
func msgFormula(proto string, n int, scenario string) (msgs, calls int64) {
	n64 := int64(n)
	switch proto {
	case "coordinated":
		return (n64 + 1) * (n64 - 1), 1
	case "r96":
		return 3 * n64 * (n64 - 1), n64
	case "cr86":
		raisers := int64(1)
		if scenario == "all" {
			raisers = n64
		}
		exceptions := raisers * (n64 - 1)
		relays := raisers * (n64 - 1) * (n64 - 2)
		suspendeds := (n64 - raisers) * (n64 - 1)
		proposes := n64 * (n64 - 1)
		// Calls per thread: one per relay received, a fallback resolution
		// when no relays were due, and one agreement verification.
		var totalCalls int64
		for i := int64(0); i < n64; i++ {
			foreignRaisers := raisers
			if scenario == "all" || i == 0 {
				foreignRaisers-- // own exception is not relayed back
			}
			if scenario == "all" {
				foreignRaisers = n64 - 1
			}
			received := foreignRaisers * (n64 - 2)
			calls := received + 1 // verification
			if received == 0 {
				calls++ // fallback resolution before proposing
			}
			totalCalls += calls
		}
		return exceptions + relays + suspendeds + proposes, totalCalls
	default:
		return 0, 0
	}
}

// RenderMsgs renders experiment E3.
func RenderMsgs(rows []MsgRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Protocol, fmt.Sprint(r.N), r.Scenario,
			fmt.Sprint(r.Messages), fmt.Sprint(r.Formula),
			fmt.Sprint(r.ResolveCalls), fmt.Sprint(r.CallsFormula),
		})
	}
	return Table([]string{"protocol", "N", "raisers",
		"messages", "formula", "resolve calls", "calls formula"}, cells)
}
