package harness

import (
	"fmt"
	"sync"
	"time"

	"caaction/internal/except"
	"caaction/internal/protocol"
	"caaction/internal/signal"
	"caaction/internal/trace"
	"caaction/internal/transport"
	"caaction/internal/vclock"
)

// SigRow is one line of experiment E4: the §3.4 signalling algorithm's
// message cost per case.
type SigRow struct {
	Case     string
	N        int
	Messages int64
	Formula  int64
	Signal   except.ID // the coordinated outcome (µ/ƒ) or "own" for case 1
	Undos    int64
}

// RunSignalling measures the four signalling cases of §3.4 for each N.
func RunSignalling(ns []int) ([]SigRow, error) {
	var rows []SigRow
	for _, n := range ns {
		cases := []struct {
			name    string
			votes   func(i int) except.ID
			undoErr func(id string) error
			formula func(n int64) int64
			want    except.ID
		}{
			{
				name:    "a: plain ε mix",
				votes:   func(i int) except.ID { return except.ID(fmt.Sprintf("eps%d", i)) },
				formula: func(n int64) int64 { return n * (n - 1) },
				want:    "own",
			},
			{
				name: "b: one ƒ",
				votes: func(i int) except.ID {
					if i == 0 {
						return except.Failure
					}
					return except.None
				},
				formula: func(n int64) int64 { return n * (n - 1) },
				want:    except.Failure,
			},
			{
				name: "c: one µ, undo ok",
				votes: func(i int) except.ID {
					if i == 0 {
						return except.Undo
					}
					return except.None
				},
				formula: func(n int64) int64 { return 2 * n * (n - 1) },
				want:    except.Undo,
			},
			{
				name: "d: one µ, one undo fails",
				votes: func(i int) except.ID {
					if i == 0 {
						return except.Undo
					}
					return except.None
				},
				undoErr: func(id string) error {
					if id == "T2" {
						return fmt.Errorf("undo failed")
					}
					return nil
				},
				formula: func(n int64) int64 { return 2 * n * (n - 1) },
				want:    except.Failure,
			},
		}
		for _, tc := range cases {
			row, err := runSigCase(n, tc.name, tc.votes, tc.undoErr, tc.want)
			if err != nil {
				return nil, err
			}
			row.Formula = tc.formula(int64(n))
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runSigCase(n int, name string, votes func(i int) except.ID,
	undoErr func(id string) error, want except.ID) (SigRow, error) {
	clk := vclock.NewVirtual()
	metrics := &trace.Metrics{}
	net := transport.NewSim(transport.SimConfig{
		Clock:   clk,
		Latency: transport.FixedLatency(10 * time.Millisecond),
		Metrics: metrics,
	})
	peers := threadNames(n)

	var mu sync.Mutex
	var undos int64
	decisions := make(map[string]signal.Decision, n)
	var firstErr error

	for i, self := range peers {
		i, self := i, self
		ep, err := net.Endpoint(self)
		if err != nil {
			return SigRow{}, err
		}
		clk.Go(func() {
			inst := signal.New(signal.Config{
				Action: "sig#1", Self: self, Peers: peers,
				Send: func(to string, msg protocol.Message) { _ = ep.Send(to, msg) },
				Undo: func() error {
					mu.Lock()
					undos++
					mu.Unlock()
					if undoErr != nil {
						return undoErr(self)
					}
					return nil
				},
			})
			dec := inst.Start(votes(i))
			for !dec.Done {
				d, ok := ep.Recv()
				if !ok {
					return
				}
				var derr error
				dec, derr = inst.Deliver(d.From, d.Msg)
				if derr != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = derr
					}
					mu.Unlock()
					return
				}
			}
			mu.Lock()
			decisions[self] = dec
			mu.Unlock()
		})
	}
	clk.Wait()
	if firstErr != nil {
		return SigRow{}, firstErr
	}
	outcome := want
	for i, id := range peers {
		dec, ok := decisions[id]
		if !ok {
			return SigRow{}, fmt.Errorf("harness: %s: %s undecided", name, id)
		}
		expect := want
		if want == "own" {
			expect = votes(i)
		}
		if dec.Signal != expect {
			return SigRow{}, fmt.Errorf("harness: %s: %s signalled %q, want %q",
				name, id, dec.Signal, expect)
		}
	}
	return SigRow{
		Case:     name,
		N:        n,
		Messages: metrics.Get("msg.ToBeSignalled"),
		Signal:   outcome,
		Undos:    undos,
	}, nil
}

// RenderSignalling renders experiment E4.
func RenderSignalling(rows []SigRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Case, fmt.Sprint(r.N),
			fmt.Sprint(r.Messages), fmt.Sprint(r.Formula),
			string(r.Signal), fmt.Sprint(r.Undos),
		})
	}
	return Table([]string{"case", "N", "messages", "formula", "outcome", "undo runs"}, cells)
}
