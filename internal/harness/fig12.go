package harness

import (
	"fmt"
	"sync"
	"time"

	"caaction/internal/core"
	"caaction/internal/except"
	"caaction/internal/resolve"
)

// Fig12Config parameterises experiment E2 (the paper's §5.3 / Figs. 12–13):
// three threads enter a CA action, compute, and then all raise different
// exceptions nearly at the same time; the total execution time is compared
// between the paper's algorithm and the CR-86 model.
type Fig12Config struct {
	Tmmax    time.Duration
	Tres     time.Duration
	Protocol resolve.Protocol
}

// fig12Work is the pre-raise computation, tuned so the baseline
// (Tmmax = 1.0 s, Tres = 0.3 s) lands at the paper's 9.15 s for the
// Coordinated algorithm (entry hop + work + exception hop + Tres + commit
// hop + exit hop = 4·Tmmax + work + Tres).
const fig12Work = 4850 * time.Millisecond

// RunFig12Point measures one total execution time.
func RunFig12Point(cfg Fig12Config) (time.Duration, error) {
	env, err := NewEnv(cfg.Tmmax, cfg.Protocol)
	if err != nil {
		return 0, err
	}
	g := primGraph(3)
	spec := &core.Spec{
		Name: "compare",
		Roles: []core.Role{
			{Name: "a", Thread: "T1"}, {Name: "b", Thread: "T2"}, {Name: "c", Thread: "T3"},
		},
		Graph:  g,
		Timing: core.Timing{Resolution: cfg.Tres},
	}
	resolving := except.Combined("e1", "e2", "e3")
	handler := func(ctx *core.Context, resolved except.ID, _ []except.Raised) error {
		if resolved != resolving {
			return fmt.Errorf("harness: resolved %q, want %q", resolved, resolving)
		}
		return nil
	}

	var mu sync.Mutex
	var errs []error
	for i, r := range spec.Roles {
		role := r
		exc := except.ID(fmt.Sprintf("e%d", i+1))
		th, err := env.Runtime.NewThread(role.Thread)
		if err != nil {
			return 0, err
		}
		env.Clock.Go(func() {
			err := th.Perform(spec, role.Name, core.RoleProgram{
				Body: func(ctx *core.Context) error {
					if err := ctx.Compute(fig12Work); err != nil {
						return err
					}
					return ctx.Raise(exc, "concurrent fault")
				},
				Handlers: map[except.ID]core.Handler{resolving: handler},
			})
			if err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
			}
		})
	}
	env.Clock.Wait()
	if len(errs) > 0 {
		return 0, fmt.Errorf("harness: fig12: %v", errs[0])
	}
	return env.Clock.Now(), nil
}

// Fig12Row is one line of the Figure 12 table.
type Fig12Row struct {
	Varied     string
	Value      time.Duration
	Ours       time.Duration
	CR         time.Duration
	PaperOurs  float64
	PaperCR    float64
	ResolveOur int64 // resolution-procedure invocations (ours)
	ResolveCR  int64 // resolution-procedure invocations (CR-86)
}

var fig12Paper = map[string]map[int][2]float64{
	"Tmmax": {1000: {9.153302, 11.770973}, 1200: {9.938735, 12.978797},
		1400: {10.758318, 14.168119}, 1600: {11.548076, 15.397075},
		1800: {12.356180, 16.558536}, 2000: {13.164378, 17.757369},
		2200: {13.931107, 18.967081}, 2400: {14.720373, 20.188518}},
	"Tres": {300: {9.153302, 11.770973}, 500: {9.348575, 12.358930},
		700: {9.581770, 12.984660}, 900: {9.762674, 13.604786},
		1100: {9.981335, 14.212014}, 1300: {10.177758, 14.817670},
		1500: {10.414642, 15.288979}},
}

// RunFig12 sweeps Tmmax (at Tres = 0.3 s) and Tres (at Tmmax = 1.0 s) for
// both algorithms, as Figure 12 does.
func RunFig12() ([]Fig12Row, error) {
	var rows []Fig12Row
	point := func(varied string, tm, tr time.Duration) error {
		ours, err := RunFig12Point(Fig12Config{Tmmax: tm, Tres: tr, Protocol: resolve.Coordinated{}})
		if err != nil {
			return err
		}
		cr, err := RunFig12Point(Fig12Config{Tmmax: tm, Tres: tr, Protocol: resolve.CR86{}})
		if err != nil {
			return err
		}
		var key int
		if varied == "Tmmax" {
			key = int(tm.Milliseconds())
		} else {
			key = int(tr.Milliseconds())
		}
		paper := fig12Paper[varied][key]
		value := tm
		if varied == "Tres" {
			value = tr
		}
		rows = append(rows, Fig12Row{
			Varied: varied, Value: value, Ours: ours, CR: cr,
			PaperOurs: paper[0], PaperCR: paper[1],
		})
		return nil
	}
	for _, tm := range sweepRange(1000, 2400, 200) {
		if err := point("Tmmax", tm, 300*time.Millisecond); err != nil {
			return nil, err
		}
	}
	for _, tr := range sweepRange(300, 1500, 200) {
		if err := point("Tres", time.Second, tr); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// RenderFig12 renders the comparison as a markdown table.
func RenderFig12(rows []Fig12Row) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Varied, Seconds(r.Value),
			Seconds(r.Ours), fmt.Sprintf("%.3f", r.PaperOurs),
			Seconds(r.CR), fmt.Sprintf("%.3f", r.PaperCR),
		})
	}
	return Table([]string{"varied", "value (s)",
		"ours measured (s)", "ours paper (s)",
		"CR-86 measured (s)", "CR-86 paper (s)"}, cells)
}
