package harness

import (
	"fmt"
	"sync"
	"time"

	"caaction/internal/core"
	"caaction/internal/except"
)

// Lemma1Row is one line of experiment E6: the measured completion time of
// coordinated exception handling against Lemma 1's bound
//
//	T ≤ (2·nmax + 3)·Tmmax + nmax·Tabort + (nmax + 1)·(Treso + ∆max).
type Lemma1Row struct {
	Nesting  int // nmax
	Measured time.Duration
	Bound    time.Duration
}

// lemma1Handler is ∆max: the handler cost in the bound.
const lemma1Handler = 200 * time.Millisecond

// RunLemma1 measures, for each nesting depth, the time from the raising of
// the containing-action exception to the completion of exception handling at
// every thread, for the worst-case shape of the Lemma 1 proof: the informed
// threads sit at the innermost of nmax nested actions and must abort the
// whole chain.
func RunLemma1(depths []int, tmmax, tabo, treso time.Duration) ([]Lemma1Row, error) {
	var rows []Lemma1Row
	for _, d := range depths {
		measured, err := runLemma1Point(d, tmmax, tabo, treso)
		if err != nil {
			return nil, err
		}
		bound := time.Duration(2*d+3)*tmmax + time.Duration(d)*tabo +
			time.Duration(d+1)*(treso+lemma1Handler)
		rows = append(rows, Lemma1Row{Nesting: d, Measured: measured, Bound: bound})
	}
	return rows, nil
}

func runLemma1Point(depth int, tmmax, tabo, treso time.Duration) (time.Duration, error) {
	env, err := NewEnv(tmmax, nil)
	if err != nil {
		return 0, err
	}
	gOuter, err := except.NewBuilder("lemma1").
		Node("outer_exc").
		WithUniversal().
		Build()
	if err != nil {
		return 0, err
	}
	outer := &core.Spec{
		Name: "containing",
		Roles: []core.Role{
			{Name: "a", Thread: "T1"}, {Name: "b", Thread: "T2"}, {Name: "c", Thread: "T3"},
		},
		Graph:  gOuter,
		Timing: core.Timing{Resolution: treso},
	}
	levels := make([]*core.Spec, depth)
	for i := range levels {
		levels[i] = &core.Spec{
			Name:   fmt.Sprintf("level%d", i+1),
			Roles:  []core.Role{{Name: "a", Thread: "T1"}, {Name: "b", Thread: "T2"}},
			Graph:  primGraph(2),
			Timing: core.Timing{Abortion: tabo},
		}
	}

	var mu sync.Mutex
	var raisedAt time.Duration
	var handledAt time.Duration
	var errs []error
	record := func(err error) {
		if err != nil {
			mu.Lock()
			errs = append(errs, err)
			mu.Unlock()
		}
	}
	handler := func(ctx *core.Context, _ except.ID, _ []except.Raised) error {
		if err := ctx.Compute(lemma1Handler); err != nil {
			return err
		}
		mu.Lock()
		if t := ctx.Now(); t > handledAt {
			handledAt = t
		}
		mu.Unlock()
		return nil
	}

	// descend enters the chain of nested actions to the innermost level.
	var descend func(ctx *core.Context, role string, level int) error
	descend = func(ctx *core.Context, role string, level int) error {
		if level == depth {
			return ctx.Compute(time.Hour) // interrupted by the abort cascade
		}
		return ctx.Enter(levels[level], role, core.RoleProgram{
			Body: func(c2 *core.Context) error {
				return descend(c2, role, level+1)
			},
		})
	}

	for _, rl := range []struct{ role, thread string }{
		{"a", "T1"}, {"b", "T2"}, {"c", "T3"},
	} {
		rl := rl
		th, err := env.Runtime.NewThread(rl.thread)
		if err != nil {
			return 0, err
		}
		env.Clock.Go(func() {
			prog := core.RoleProgram{
				Handlers: map[except.ID]core.Handler{"outer_exc": handler},
			}
			switch rl.role {
			case "c":
				prog.Body = func(ctx *core.Context) error {
					// Give the peers time to reach the innermost level.
					if err := ctx.Compute(time.Duration(depth+2) * tmmax * 2); err != nil {
						return err
					}
					mu.Lock()
					raisedAt = ctx.Now()
					mu.Unlock()
					return ctx.Raise("outer_exc", "worst-case trigger")
				}
			default:
				prog.Body = func(ctx *core.Context) error {
					return descend(ctx, rl.role, 0)
				}
			}
			record(th.Perform(outer, rl.role, prog))
		})
	}
	env.Clock.Wait()
	if len(errs) > 0 {
		return 0, fmt.Errorf("harness: lemma1: %v", errs[0])
	}
	if handledAt <= raisedAt {
		return 0, fmt.Errorf("harness: lemma1: handling did not complete (raised %v, handled %v)",
			raisedAt, handledAt)
	}
	return handledAt - raisedAt, nil
}

// RenderLemma1 renders experiment E6.
func RenderLemma1(rows []Lemma1Row) string {
	var cells [][]string
	for _, r := range rows {
		ok := "yes"
		if r.Measured > r.Bound {
			ok = "VIOLATED"
		}
		cells = append(cells, []string{
			fmt.Sprint(r.Nesting), Seconds(r.Measured), Seconds(r.Bound), ok,
		})
	}
	return Table([]string{"nmax", "measured handling time (s)", "Lemma 1 bound (s)", "within bound"}, cells)
}
