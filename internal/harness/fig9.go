package harness

import (
	"fmt"
	"sync"
	"time"

	"caaction/internal/core"
	"caaction/internal/except"
)

// Fig9Config parameterises experiment E1 (the paper's §5.2 / Figs. 9–10):
// three threads in a containing CA action, two of them in a nested action;
// one containing-action exception aborts the nested action, the abortion
// handler raises a second exception, and the resolving exception covering
// both is handled by all three threads. The whole application loops.
type Fig9Config struct {
	Tmmax time.Duration // one-way message latency
	Tabo  time.Duration // abortion handler cost
	Treso time.Duration // resolution procedure cost
	Loops int           // the paper executes the system 20 times
}

// DefaultFig9 returns the paper's baseline point (0.2s, 0.1s, 0.3s, ×20).
func DefaultFig9() Fig9Config {
	return Fig9Config{
		Tmmax: 200 * time.Millisecond,
		Tabo:  100 * time.Millisecond,
		Treso: 300 * time.Millisecond,
		Loops: 20,
	}
}

// Scenario work constants, tuned so the baseline lands near the paper's
// 94.36 s (see EXPERIMENTS.md): the raiser works 1.3 s before raising, the
// informed threads' handlers compute 2.0 s while a cooperative
// handler-to-handler exchange is in flight, which produces the paper's
// knee: below Tmmax ≈ 1.0 s the exchange hides behind the handler
// computation; beyond it every hop is exposed.
const (
	fig9Work        = 1300 * time.Millisecond
	fig9HandlerCoop = 2 * time.Second
	fig9HandlerFast = 200 * time.Millisecond
	fig9NestedWork  = 30 * time.Second // aborted long before completing
)

// RunFig9Point executes the scenario once and returns the total (virtual)
// execution time.
func RunFig9Point(cfg Fig9Config) (time.Duration, error) {
	env, err := NewEnv(cfg.Tmmax, nil)
	if err != nil {
		return 0, err
	}
	gOuter, err := except.NewBuilder("fig9").
		Cover("both", "outer_exc", "abort_exc").
		WithUniversal().
		Build()
	if err != nil {
		return 0, err
	}
	outer := &core.Spec{
		Name: "containing",
		Roles: []core.Role{
			{Name: "a", Thread: "T1"}, {Name: "b", Thread: "T2"}, {Name: "c", Thread: "T3"},
		},
		Graph:  gOuter,
		Timing: core.Timing{Resolution: cfg.Treso},
	}
	nested := &core.Spec{
		Name:   "nested",
		Roles:  []core.Role{{Name: "a", Thread: "T1"}, {Name: "b", Thread: "T2"}},
		Graph:  primGraph(2),
		Timing: core.Timing{Abortion: cfg.Tabo},
	}

	// Handlers for the resolving exception: T1 and T2 cooperate (a
	// repair-token round trip) while computing; T3 recovers quickly.
	handlerA := func(ctx *core.Context, _ except.ID, _ []except.Raised) error {
		if err := ctx.Send("b", "repair-token"); err != nil {
			return err
		}
		if err := ctx.Compute(fig9HandlerCoop); err != nil {
			return err
		}
		_, err := ctx.Recv("b")
		return err
	}
	handlerB := func(ctx *core.Context, _ except.ID, _ []except.Raised) error {
		if _, err := ctx.Recv("a"); err != nil {
			return err
		}
		return ctx.Send("a", "repair-ack")
	}
	handlerC := func(ctx *core.Context, _ except.ID, _ []except.Raised) error {
		return ctx.Compute(fig9HandlerFast)
	}

	nestedBody := func(ctx *core.Context) error { return ctx.Compute(fig9NestedWork) }
	abortEab := func(ctx *core.Context) except.ID { return "abort_exc" }

	run := func(th *core.Thread, role string, prog core.RoleProgram) error {
		for i := 0; i < cfg.Loops; i++ {
			if err := th.Perform(outer, role, prog); err != nil {
				return err
			}
		}
		return nil
	}

	t1, err := env.Runtime.NewThread("T1")
	if err != nil {
		return 0, err
	}
	t2, err := env.Runtime.NewThread("T2")
	if err != nil {
		return 0, err
	}
	t3, err := env.Runtime.NewThread("T3")
	if err != nil {
		return 0, err
	}

	var mu sync.Mutex
	var errs []error
	record := func(err error) {
		if err != nil {
			mu.Lock()
			errs = append(errs, err)
			mu.Unlock()
		}
	}
	env.Clock.Go(func() {
		record(run(t1, "a", core.RoleProgram{
			Body: func(ctx *core.Context) error {
				return ctx.Enter(nested, "a", core.RoleProgram{Body: nestedBody, OnAbort: abortEab})
			},
			Handlers: map[except.ID]core.Handler{"both": handlerA},
		}))
	})
	env.Clock.Go(func() {
		record(run(t2, "b", core.RoleProgram{
			Body: func(ctx *core.Context) error {
				return ctx.Enter(nested, "b", core.RoleProgram{Body: nestedBody})
			},
			Handlers: map[except.ID]core.Handler{"both": handlerB},
		}))
	})
	env.Clock.Go(func() {
		record(run(t3, "c", core.RoleProgram{
			Body: func(ctx *core.Context) error {
				if err := ctx.Compute(fig9Work); err != nil {
					return err
				}
				return ctx.Raise("outer_exc", "containing-action fault")
			},
			Handlers: map[except.ID]core.Handler{"both": handlerC},
		}))
	})
	env.Clock.Wait()
	if len(errs) > 0 {
		return 0, fmt.Errorf("harness: fig9: %v", errs[0])
	}
	return env.Clock.Now(), nil
}

// Fig9Row is one line of the Figure 9 table.
type Fig9Row struct {
	Varied string        // "Tmmax", "Tabo" or "Treso"
	Value  time.Duration // the varied parameter's value
	Total  time.Duration // measured total execution time
	Paper  float64       // the paper's reported seconds (0 if none)
}

// fig9Paper maps the paper's Figure 9 columns.
var fig9Paper = map[string]map[int]float64{
	"Tmmax": {200: 94.361391, 400: 98.586050, 600: 102.150904, 800: 106.774196,
		1000: 110.984972, 1200: 125.078084, 1400: 140.826807, 1600: 161.766956,
		1800: 188.284787, 2000: 214.519403, 2200: 226.543372, 2400: 237.934833,
		2600: 249.744183, 2800: 261.768559},
	"Tabo": {100: 94.361391, 300: 98.991825, 500: 101.939318, 700: 106.150075,
		900: 110.154827, 1100: 113.937682, 1300: 118.147893, 1500: 122.573297,
		1700: 128.461646, 1900: 130.362452, 2100: 134.165025},
	"Treso": {300: 94.361391, 500: 98.352511, 700: 102.547776, 900: 107.164660,
		1100: 110.338507, 1300: 114.729476, 1500: 118.928022, 1700: 122.483917,
		1900: 127.117187, 2100: 131.816326, 2300: 135.123453},
}

// RunFig9 sweeps the three parameters exactly as Figure 9 does.
func RunFig9() ([]Fig9Row, error) {
	var rows []Fig9Row
	sweep := func(name string, values []time.Duration, apply func(*Fig9Config, time.Duration)) error {
		for _, v := range values {
			cfg := DefaultFig9()
			apply(&cfg, v)
			total, err := RunFig9Point(cfg)
			if err != nil {
				return err
			}
			rows = append(rows, Fig9Row{
				Varied: name, Value: v, Total: total,
				Paper: fig9Paper[name][int(v.Milliseconds())],
			})
		}
		return nil
	}
	if err := sweep("Tmmax", sweepRange(200, 2800, 200), func(c *Fig9Config, v time.Duration) { c.Tmmax = v }); err != nil {
		return nil, err
	}
	if err := sweep("Tabo", sweepRange(100, 2100, 200), func(c *Fig9Config, v time.Duration) { c.Tabo = v }); err != nil {
		return nil, err
	}
	if err := sweep("Treso", sweepRange(300, 2300, 200), func(c *Fig9Config, v time.Duration) { c.Treso = v }); err != nil {
		return nil, err
	}
	return rows, nil
}

func sweepRange(fromMS, toMS, stepMS int) []time.Duration {
	var out []time.Duration
	for v := fromMS; v <= toMS; v += stepMS {
		out = append(out, time.Duration(v)*time.Millisecond)
	}
	return out
}

// RenderFig9 renders the sweep as a markdown table.
func RenderFig9(rows []Fig9Row) string {
	var cells [][]string
	for _, r := range rows {
		paper := "—"
		if r.Paper > 0 {
			paper = fmt.Sprintf("%.3f", r.Paper)
		}
		cells = append(cells, []string{
			r.Varied, Seconds(r.Value), Seconds(r.Total), paper,
		})
	}
	return Table([]string{"varied", "value (s)", "measured total (s)", "paper total (s)"}, cells)
}
