// Package atomicobj implements the paper's external atomic objects: objects
// outside a CA action that can be shared between actions under competitive
// concurrency, are "atomic and individually responsible for their own
// integrity" (§2.2), and support the recovery operations the model requires —
// commit on successful exit, restoration of prior state for the undo
// exception µ, explicit repair to a new valid state by handlers, and damage
// marking when undo is impossible (forcing the failure exception ƒ).
//
// Concurrency control is strict exclusive locking scoped to an action
// instance: the first access by any role of an action acquires the object
// for that action; competing actions queue (FIFO) on a clock-integrated
// wait queue, so contention works identically under the virtual and real
// clocks.
package atomicobj

import (
	"errors"
	"fmt"
	"sync"

	"caaction/internal/except"
	"caaction/internal/vclock"
)

// Errors reported by objects.
var (
	// ErrUndoFailed reports that restoring the object's prior state was
	// impossible (it was marked damaged); the action must signal ƒ.
	ErrUndoFailed = errors.New("atomicobj: undo failed")
	// ErrNotHeld reports a commit/undo/markdamaged by an action that does
	// not hold the object.
	ErrNotHeld = errors.New("atomicobj: object not held by action")
	// ErrBusy reports a failed TryAcquire.
	ErrBusy = errors.New("atomicobj: object held by another action")
	// ErrUnknownObject reports a lookup of an undefined object.
	ErrUnknownObject = errors.New("atomicobj: unknown object")
	// ErrDuplicateObject reports defining the same name twice.
	ErrDuplicateObject = errors.New("atomicobj: object already defined")
)

// CloneFunc deep-copies an object state for before-images. The default clone
// is the identity, which is correct for immutable/value states; states with
// reference semantics (maps, slices, pointers) need an explicit CloneFunc.
type CloneFunc func(state any) any

// Registry holds the named external objects of a system.
type Registry struct {
	clock vclock.Clock

	mu   sync.Mutex
	objs map[string]*Object
}

// NewRegistry returns an empty registry whose lock waits are mediated by
// clock.
func NewRegistry(clock vclock.Clock) *Registry {
	return &Registry{clock: clock, objs: make(map[string]*Object)}
}

// Define creates a named object with an initial state.
func (r *Registry) Define(name string, initial any, opts ...ObjectOption) (*Object, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.objs[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateObject, name)
	}
	o := &Object{
		name:  name,
		clock: r.clock,
		state: initial,
		clone: func(s any) any { return s },
	}
	for _, opt := range opts {
		opt(o)
	}
	r.objs[name] = o
	return o, nil
}

// Get looks an object up by name.
func (r *Registry) Get(name string) (*Object, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	o, ok := r.objs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownObject, name)
	}
	return o, nil
}

// Names lists the defined objects.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.objs))
	for n := range r.objs {
		out = append(out, n)
	}
	return out
}

// ObjectOption customises Define.
type ObjectOption func(*Object)

// WithClone sets the deep-copy function used for before-images.
func WithClone(fn CloneFunc) ObjectOption {
	return func(o *Object) { o.clone = fn }
}

// Object is one external atomic object.
type Object struct {
	name  string
	clock vclock.Clock
	clone CloneFunc

	mu       sync.Mutex
	state    any
	holder   string // owning action instance; "" when free
	waiters  []objWaiter
	snapshot any  // before-image for the holding action
	hasSnap  bool // a write occurred under the current holder
	damaged  bool // undo impossible for the current holder
	version  int
	informed []except.Raised
}

type objWaiter struct {
	action string
	q      *vclock.Queue
}

// Name returns the object's registry name.
func (o *Object) Name() string { return o.name }

// Version counts successful commits, for observation in tests and examples.
func (o *Object) Version() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.version
}

// Holder reports the action currently holding the object ("" when free).
func (o *Object) Holder() string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.holder
}

// Acquire locks the object for the given action instance, blocking while a
// different action holds it. Acquiring an object already held by the same
// action (for example from another role of that action) returns immediately.
func (o *Object) Acquire(action string) {
	o.mu.Lock()
	if o.holder == "" || o.holder == action {
		o.holder = action
		o.mu.Unlock()
		return
	}
	w := objWaiter{action: action, q: o.clock.NewQueue()}
	o.waiters = append(o.waiters, w)
	o.mu.Unlock()
	w.q.Get() // handed the lock by releaseLocked
}

// TryAcquire attempts a non-blocking acquire.
func (o *Object) TryAcquire(action string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.holder == "" || o.holder == action {
		o.holder = action
		return nil
	}
	return fmt.Errorf("%w: %q held by %q", ErrBusy, o.name, o.holder)
}

// releaseLocked passes the lock to the next queued action; every queued
// waiter belonging to that action is admitted (its roles share the lock).
func (o *Object) releaseLocked() {
	o.holder = ""
	o.snapshot = nil
	o.hasSnap = false
	o.damaged = false
	if len(o.waiters) == 0 {
		return
	}
	next := o.waiters[0].action
	o.holder = next
	kept := o.waiters[:0]
	for _, w := range o.waiters {
		if w.action == next {
			w.q.Put(struct{}{})
		} else {
			kept = append(kept, w)
		}
	}
	o.waiters = kept
}

// Read returns the object's current state, acquiring it for action first.
func (o *Object) Read(action string) any {
	o.Acquire(action)
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.state
}

// Write replaces the object's state, acquiring it for action first. The
// first write under a holder records a before-image for undo.
func (o *Object) Write(action string, state any) {
	o.Acquire(action)
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.hasSnap {
		o.snapshot = o.clone(o.state)
		o.hasSnap = true
	}
	o.state = state
}

// Update applies fn to the current state and stores the result, acquiring
// the object for action first.
func (o *Object) Update(action string, fn func(state any) any) {
	o.Acquire(action)
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.hasSnap {
		o.snapshot = o.clone(o.state)
		o.hasSnap = true
	}
	o.state = fn(o.state)
}

// Inform notifies the object of an exception raised in the holding action
// (§3.3.2: "inform external objects ... of the exception"), so it can take
// object-specific precautions; this implementation records the exception for
// inspection.
func (o *Object) Inform(action string, exc except.Raised) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.informed = append(o.informed, exc)
}

// Informed returns the exceptions the object has been informed of.
func (o *Object) Informed() []except.Raised {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]except.Raised(nil), o.informed...)
}

// MarkDamaged declares that restoring the before-image is impossible for the
// holding action; a subsequent Undo fails, forcing ƒ.
func (o *Object) MarkDamaged(action string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.holder != action {
		return fmt.Errorf("%w: %q by %q", ErrNotHeld, o.name, action)
	}
	o.damaged = true
	return nil
}

// Commit makes the action's effect durable and releases the object.
func (o *Object) Commit(action string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.holder != action {
		return fmt.Errorf("%w: %q by %q", ErrNotHeld, o.name, action)
	}
	o.version++
	o.releaseLocked()
	return nil
}

// Undo restores the state the object had when the action first wrote it and
// releases the object. If the object was marked damaged the state is left
// as-is and ErrUndoFailed is returned — the caller must signal ƒ.
func (o *Object) Undo(action string) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.holder != action {
		return fmt.Errorf("%w: %q by %q", ErrNotHeld, o.name, action)
	}
	if o.damaged {
		o.releaseLocked()
		return fmt.Errorf("%w: %q damaged", ErrUndoFailed, o.name)
	}
	if o.hasSnap {
		o.state = o.snapshot
	}
	o.releaseLocked()
	return nil
}

// Peek returns the state without any locking discipline, for tests and
// simulators only.
func (o *Object) Peek() any {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.state
}
