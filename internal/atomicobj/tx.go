package atomicobj

import (
	"errors"
	"sort"
	"sync"

	"caaction/internal/except"
)

// Tx tracks the external objects one thread uses on behalf of one action
// instance, so they can be informed, committed or undone together at the
// action boundary. Different roles of the same action may hold their own Tx
// for the same action: the object-level lock is shared (it is scoped to the
// action) and completion operations are idempotent per action.
type Tx struct {
	reg    *Registry
	action string

	mu   sync.Mutex
	used map[string]*Object
	done bool
}

// Begin starts tracking object use for an action instance. The use-set map
// is allocated lazily on first object access: most action instances in a
// high-churn workload never touch an external object, and Begin runs on the
// per-instance hot path.
func (r *Registry) Begin(action string) *Tx {
	return &Tx{reg: r, action: action}
}

// Action returns the owning action instance identifier.
func (tx *Tx) Action() string { return tx.action }

// Object resolves a named object and records it in the transaction's use
// set. The object is locked for the action on first actual access.
func (tx *Tx) Object(name string) (*Object, error) {
	o, err := tx.reg.Get(name)
	if err != nil {
		return nil, err
	}
	tx.mu.Lock()
	if tx.used == nil {
		tx.used = make(map[string]*Object)
	}
	tx.used[name] = o
	tx.mu.Unlock()
	return o, nil
}

// Read acquires and reads a named object.
func (tx *Tx) Read(name string) (any, error) {
	o, err := tx.Object(name)
	if err != nil {
		return nil, err
	}
	return o.Read(tx.action), nil
}

// Write acquires and overwrites a named object.
func (tx *Tx) Write(name string, state any) error {
	o, err := tx.Object(name)
	if err != nil {
		return err
	}
	o.Write(tx.action, state)
	return nil
}

// Update acquires a named object and applies fn to its state.
func (tx *Tx) Update(name string, fn func(state any) any) error {
	o, err := tx.Object(name)
	if err != nil {
		return err
	}
	o.Update(tx.action, fn)
	return nil
}

// MarkDamaged declares a named object unrestorable for this action.
func (tx *Tx) MarkDamaged(name string) error {
	o, err := tx.Object(name)
	if err != nil {
		return err
	}
	o.Acquire(tx.action)
	return o.MarkDamaged(tx.action)
}

// Inform notifies every used object of a raised exception (§3.3.2).
func (tx *Tx) Inform(exc except.Raised) {
	for _, o := range tx.objects() {
		o.Inform(tx.action, exc)
	}
}

// Used lists the names of the objects this transaction touched, sorted.
func (tx *Tx) Used() []string {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	out := make([]string, 0, len(tx.used))
	for n := range tx.used {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Commit commits every used object. Safe to call when another role already
// completed the action's objects.
func (tx *Tx) Commit() error {
	var firstErr error
	for _, o := range tx.objects() {
		if err := o.Commit(tx.action); err != nil && !errors.Is(err, ErrNotHeld) {
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	tx.finish()
	return firstErr
}

// Undo restores every used object's before-image. It returns ErrUndoFailed
// (wrapped) if any object could not be restored — the caller must then
// signal ƒ instead of µ.
func (tx *Tx) Undo() error {
	var firstErr error
	for _, o := range tx.objects() {
		if err := o.Undo(tx.action); err != nil {
			if errors.Is(err, ErrNotHeld) {
				continue // another role already completed this object
			}
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	tx.finish()
	return firstErr
}

func (tx *Tx) objects() []*Object {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	names := make([]string, 0, len(tx.used))
	for n := range tx.used {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Object, 0, len(names))
	for _, n := range names {
		out = append(out, tx.used[n])
	}
	return out
}

func (tx *Tx) finish() {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	tx.done = true
	tx.used = nil
}
