package atomicobj

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"caaction/internal/except"
	"caaction/internal/vclock"
)

func newReg(t *testing.T) (*Registry, *vclock.Virtual) {
	t.Helper()
	clk := vclock.NewVirtual()
	return NewRegistry(clk), clk
}

func TestDefineGetNames(t *testing.T) {
	reg, _ := newReg(t)
	if _, err := reg.Define("press", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Define("press", 1); !errors.Is(err, ErrDuplicateObject) {
		t.Fatalf("err = %v", err)
	}
	if _, err := reg.Get("press"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("nope"); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("err = %v", err)
	}
	if n := reg.Names(); len(n) != 1 || n[0] != "press" {
		t.Fatalf("names = %v", n)
	}
}

func TestReadWriteCommit(t *testing.T) {
	reg, _ := newReg(t)
	o, _ := reg.Define("counter", 10)
	if got := o.Read("A"); got != 10 {
		t.Fatalf("read = %v", got)
	}
	o.Write("A", 11)
	o.Update("A", func(s any) any { return s.(int) + 1 })
	if err := o.Commit("A"); err != nil {
		t.Fatal(err)
	}
	if o.Peek() != 12 || o.Version() != 1 || o.Holder() != "" {
		t.Fatalf("state=%v version=%d holder=%q", o.Peek(), o.Version(), o.Holder())
	}
}

func TestUndoRestoresBeforeImage(t *testing.T) {
	reg, _ := newReg(t)
	o, _ := reg.Define("x", "original")
	o.Write("A", "dirty")
	o.Write("A", "dirtier") // before-image captured once, at first write
	if err := o.Undo("A"); err != nil {
		t.Fatal(err)
	}
	if o.Peek() != "original" {
		t.Fatalf("state = %v", o.Peek())
	}
	if o.Version() != 0 {
		t.Fatal("undo must not bump version")
	}
}

func TestUndoWithoutWriteIsNoop(t *testing.T) {
	reg, _ := newReg(t)
	o, _ := reg.Define("x", 5)
	_ = o.Read("A")
	if err := o.Undo("A"); err != nil {
		t.Fatal(err)
	}
	if o.Peek() != 5 {
		t.Fatalf("state = %v", o.Peek())
	}
}

func TestMarkDamagedForcesUndoFailure(t *testing.T) {
	reg, _ := newReg(t)
	o, _ := reg.Define("x", 1)
	o.Write("A", 2)
	if err := o.MarkDamaged("A"); err != nil {
		t.Fatal(err)
	}
	err := o.Undo("A")
	if !errors.Is(err, ErrUndoFailed) {
		t.Fatalf("err = %v", err)
	}
	// State left as-is (paper: effect may not have been undone) and the
	// object is released for other actions.
	if o.Peek() != 2 || o.Holder() != "" {
		t.Fatalf("state=%v holder=%q", o.Peek(), o.Holder())
	}
}

func TestCommitUndoRequireHolder(t *testing.T) {
	reg, _ := newReg(t)
	o, _ := reg.Define("x", 1)
	o.Write("A", 2)
	if err := o.Commit("B"); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("err = %v", err)
	}
	if err := o.MarkDamaged("B"); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("err = %v", err)
	}
}

func TestSameActionSharesLockAcrossRoles(t *testing.T) {
	reg, _ := newReg(t)
	o, _ := reg.Define("x", 0)
	o.Acquire("A") // role 1
	o.Acquire("A") // role 2: no deadlock, shared
	if err := o.TryAcquire("A"); err != nil {
		t.Fatal(err)
	}
	if err := o.TryAcquire("B"); !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v", err)
	}
}

func TestCompetingActionsQueueFIFO(t *testing.T) {
	reg, clk := newReg(t)
	o, _ := reg.Define("shared", []string(nil))
	appendName := func(action string) {
		o.Update(action, func(s any) any {
			return append(append([]string(nil), s.([]string)...), action)
		})
	}
	// A holds; B and C queue in order; completion order must be A, B, C.
	clk.Go(func() {
		appendName("A")
		clk.Sleep(30 * time.Millisecond)
		if err := o.Commit("A"); err != nil {
			t.Error(err)
		}
	})
	clk.Go(func() {
		clk.Sleep(5 * time.Millisecond)
		appendName("B") // blocks until A commits
		if err := o.Commit("B"); err != nil {
			t.Error(err)
		}
	})
	clk.Go(func() {
		clk.Sleep(10 * time.Millisecond)
		appendName("C") // blocks behind B
		if err := o.Commit("C"); err != nil {
			t.Error(err)
		}
	})
	clk.Wait()
	got := o.Peek().([]string)
	want := []string{"A", "B", "C"}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if o.Version() != 3 {
		t.Fatalf("version = %d", o.Version())
	}
}

func TestHandoverAdmitsAllRolesOfNextAction(t *testing.T) {
	reg, clk := newReg(t)
	o, _ := reg.Define("x", 0)
	o.Acquire("A")
	done := make(chan string, 2)
	clk.Go(func() {
		o.Acquire("B") // role 1 of B queues
		done <- "b1"
	})
	clk.Go(func() {
		clk.Sleep(time.Millisecond)
		o.Acquire("B") // role 2 of B queues
		done <- "b2"
	})
	clk.Go(func() {
		clk.Sleep(10 * time.Millisecond)
		if err := o.Commit("A"); err != nil {
			t.Error(err)
		}
	})
	clk.Wait()
	if len(done) != 2 {
		t.Fatalf("only %d roles of B admitted", len(done))
	}
}

func TestInform(t *testing.T) {
	reg, _ := newReg(t)
	o, _ := reg.Define("x", 0)
	exc := except.Raised{ID: "vm_stop", Origin: "T1"}
	o.Inform("A", exc)
	got := o.Informed()
	if len(got) != 1 || got[0].ID != "vm_stop" {
		t.Fatalf("informed = %v", got)
	}
}

func TestCloneOption(t *testing.T) {
	reg, _ := newReg(t)
	type bal map[string]int
	o, _ := reg.Define("accounts", bal{"alice": 100},
		WithClone(func(s any) any {
			src := s.(bal)
			dst := make(bal, len(src))
			for k, v := range src {
				dst[k] = v
			}
			return dst
		}))
	o.Update("A", func(s any) any {
		m := s.(bal)
		m["alice"] -= 40 // mutates in place; clone protects the before-image
		return m
	})
	if err := o.Undo("A"); err != nil {
		t.Fatal(err)
	}
	if o.Peek().(bal)["alice"] != 100 {
		t.Fatalf("undo lost mutation protection: %v", o.Peek())
	}
}

func TestTxLifecycle(t *testing.T) {
	reg, _ := newReg(t)
	if _, err := reg.Define("a", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Define("b", 2); err != nil {
		t.Fatal(err)
	}
	tx := reg.Begin("act#1")
	if tx.Action() != "act#1" {
		t.Fatalf("action = %q", tx.Action())
	}
	if err := tx.Write("a", 10); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("b", func(s any) any { return s.(int) * 10 }); err != nil {
		t.Fatal(err)
	}
	if v, err := tx.Read("a"); err != nil || v != 10 {
		t.Fatalf("read = %v, %v", v, err)
	}
	if got := tx.Used(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("used = %v", got)
	}
	tx.Inform(except.Raised{ID: "e1"})
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	oa, _ := reg.Get("a")
	ob, _ := reg.Get("b")
	if oa.Peek() != 10 || ob.Peek() != 20 {
		t.Fatalf("states: %v %v", oa.Peek(), ob.Peek())
	}
	if len(oa.Informed()) != 1 {
		t.Fatal("inform not propagated")
	}
}

func TestTxUndoAggregatesFailure(t *testing.T) {
	reg, _ := newReg(t)
	_, _ = reg.Define("good", 1)
	_, _ = reg.Define("bad", 1)
	tx := reg.Begin("act")
	_ = tx.Write("good", 2)
	_ = tx.Write("bad", 2)
	if err := tx.MarkDamaged("bad"); err != nil {
		t.Fatal(err)
	}
	err := tx.Undo()
	if !errors.Is(err, ErrUndoFailed) {
		t.Fatalf("err = %v", err)
	}
	good, _ := reg.Get("good")
	bad, _ := reg.Get("bad")
	if good.Peek() != 1 {
		t.Fatal("good object not restored")
	}
	if bad.Peek() != 2 {
		t.Fatal("damaged object should keep its state")
	}
}

func TestTxDoubleCompletionAcrossRoles(t *testing.T) {
	reg, _ := newReg(t)
	_, _ = reg.Define("x", 1)
	tx1 := reg.Begin("act")
	tx2 := reg.Begin("act")
	_ = tx1.Write("x", 5)
	if _, err := tx2.Read("x"); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	// The second role's completion must tolerate the already-released
	// object.
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Undo(); err != nil {
		t.Fatal(err)
	}
}

func TestTxUnknownObject(t *testing.T) {
	reg, _ := newReg(t)
	tx := reg.Begin("act")
	if err := tx.Write("ghost", 1); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("err = %v", err)
	}
	if _, err := tx.Read("ghost"); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("err = %v", err)
	}
	if err := tx.MarkDamaged("ghost"); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("err = %v", err)
	}
}

func TestManyCompetingActionsProperty(t *testing.T) {
	// Strict per-action locking must serialise arbitrary interleavings:
	// with K competing increment-actions the final count is exactly K.
	reg, clk := newReg(t)
	o, _ := reg.Define("n", 0)
	const k = 40
	for i := 0; i < k; i++ {
		i := i
		clk.Go(func() {
			action := fmt.Sprintf("act%d", i)
			clk.Sleep(time.Duration(i%7) * time.Millisecond)
			v := o.Read(action).(int)
			clk.Sleep(time.Millisecond)
			o.Write(action, v+1)
			if err := o.Commit(action); err != nil {
				t.Error(err)
			}
		})
	}
	clk.Wait()
	if o.Peek() != k {
		t.Fatalf("count = %v, want %d", o.Peek(), k)
	}
}
