package vclock

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSequentialRunToBlock verifies that under sequential scheduling at most
// one tracked goroutine executes at a time, even when several are runnable at
// the same virtual instant.
func TestSequentialRunToBlock(t *testing.T) {
	v := NewVirtualSequential()
	var mu sync.Mutex
	active, maxActive := 0, 0
	enter := func() {
		mu.Lock()
		active++
		if active > maxActive {
			maxActive = active
		}
		mu.Unlock()
	}
	leave := func() {
		mu.Lock()
		active--
		mu.Unlock()
	}
	for i := 0; i < 8; i++ {
		v.Go(func() {
			for step := 0; step < 50; step++ {
				enter()
				// A tight non-blocking section: under concurrent wake-up
				// several goroutines would overlap here.
				for spin := 0; spin < 100; spin++ {
					_ = spin * spin
				}
				leave()
				v.Sleep(time.Millisecond)
			}
		})
	}
	v.Wait()
	if maxActive != 1 {
		t.Fatalf("max concurrently running goroutines = %d, want 1", maxActive)
	}
}

// TestSequentialDeterministicOrder verifies that the interleaving of
// same-instant wake-ups is identical across runs: goroutines woken at the
// same virtual instant resume in start order, every time.
func TestSequentialDeterministicOrder(t *testing.T) {
	run := func() string {
		v := NewVirtualSequential()
		var mu sync.Mutex
		var order []string
		for i := 0; i < 6; i++ {
			i := i
			v.Go(func() {
				for step := 0; step < 10; step++ {
					v.Sleep(time.Millisecond) // all six wake at the same instant
					mu.Lock()
					order = append(order, fmt.Sprintf("g%d.%d", i, step))
					mu.Unlock()
				}
			})
		}
		v.Wait()
		return fmt.Sprint(order)
	}
	first := run()
	for i := 0; i < 20; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d produced a different interleaving:\n%s\nvs\n%s", i, got, first)
		}
	}
}

// TestSequentialQueues verifies producer/consumer traffic through
// clock-mediated queues under sequential scheduling, including timed gets.
func TestSequentialQueues(t *testing.T) {
	v := NewVirtualSequential()
	q := v.NewQueue()
	const n = 100
	var got []int
	v.Go(func() {
		for i := 0; i < n; i++ {
			q.PutAfter(time.Duration(i)*time.Millisecond, i)
		}
	})
	v.Go(func() {
		for i := 0; i < n; i++ {
			x, ok := q.GetTimeout(time.Second)
			if !ok {
				return
			}
			got = append(got, x.(int))
		}
	})
	v.Wait()
	if len(got) != n {
		t.Fatalf("received %d items, want %d", len(got), n)
	}
	for i, x := range got {
		if x != i {
			t.Fatalf("got[%d] = %d, want %d", i, x, i)
		}
	}
	if v.Now() != time.Duration(n-1)*time.Millisecond {
		t.Fatalf("final time %v, want %v", v.Now(), time.Duration(n-1)*time.Millisecond)
	}
}

// TestSequentialDeadlockRelease verifies that a custom deadlock handler
// releases every blocked goroutine so sequential simulations can unwind after
// a stall.
func TestSequentialDeadlockRelease(t *testing.T) {
	v := NewVirtualSequential()
	var stalled string
	v.SetDeadlockHandler(func(info string) { stalled = info })
	q := v.NewQueue()
	var okA, okB bool
	v.Go(func() { _, okA = q.Get() })
	v.Go(func() { _, okB = q.Get() })
	v.Wait()
	if stalled == "" {
		t.Fatal("deadlock handler not invoked")
	}
	if okA || okB {
		t.Fatalf("gets returned ok after deadlock: %v %v", okA, okB)
	}
}

// TestSequentialAfterFunc verifies AfterFunc fires at the requested instant.
func TestSequentialAfterFunc(t *testing.T) {
	v := NewVirtualSequential()
	var at time.Duration
	v.AfterFunc(250*time.Millisecond, func() { at = v.Now() })
	v.Go(func() { v.Sleep(time.Second) })
	v.Wait()
	if at != 250*time.Millisecond {
		t.Fatalf("fired at %v, want 250ms", at)
	}
}

// TestSequentialAdopt verifies Adopt/Release participate in the turn-taking.
func TestSequentialAdopt(t *testing.T) {
	v := NewVirtualSequential()
	q := v.NewQueue()
	v.Go(func() {
		v.Sleep(10 * time.Millisecond)
		q.Put("hello")
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		v.Adopt()
		defer v.Release()
		x, ok := q.Get()
		if !ok || x != "hello" {
			t.Errorf("Get = %v, %v", x, ok)
		}
	}()
	<-done
	v.Wait()
}
