package vclock

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSequentialRunToBlock verifies that under sequential scheduling at most
// one tracked goroutine executes at a time, even when several are runnable at
// the same virtual instant.
func TestSequentialRunToBlock(t *testing.T) {
	v := NewVirtualSequential()
	var mu sync.Mutex
	active, maxActive := 0, 0
	enter := func() {
		mu.Lock()
		active++
		if active > maxActive {
			maxActive = active
		}
		mu.Unlock()
	}
	leave := func() {
		mu.Lock()
		active--
		mu.Unlock()
	}
	for i := 0; i < 8; i++ {
		v.Go(func() {
			for step := 0; step < 50; step++ {
				enter()
				// A tight non-blocking section: under concurrent wake-up
				// several goroutines would overlap here.
				for spin := 0; spin < 100; spin++ {
					_ = spin * spin
				}
				leave()
				v.Sleep(time.Millisecond)
			}
		})
	}
	v.Wait()
	if maxActive != 1 {
		t.Fatalf("max concurrently running goroutines = %d, want 1", maxActive)
	}
}

// TestSequentialDeterministicOrder verifies that the interleaving of
// same-instant wake-ups is identical across runs: goroutines woken at the
// same virtual instant resume in start order, every time.
func TestSequentialDeterministicOrder(t *testing.T) {
	run := func() string {
		v := NewVirtualSequential()
		var mu sync.Mutex
		var order []string
		for i := 0; i < 6; i++ {
			i := i
			v.Go(func() {
				for step := 0; step < 10; step++ {
					v.Sleep(time.Millisecond) // all six wake at the same instant
					mu.Lock()
					order = append(order, fmt.Sprintf("g%d.%d", i, step))
					mu.Unlock()
				}
			})
		}
		v.Wait()
		return fmt.Sprint(order)
	}
	first := run()
	for i := 0; i < 20; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d produced a different interleaving:\n%s\nvs\n%s", i, got, first)
		}
	}
}

// TestSequentialQueues verifies producer/consumer traffic through
// clock-mediated queues under sequential scheduling, including timed gets.
func TestSequentialQueues(t *testing.T) {
	v := NewVirtualSequential()
	q := v.NewQueue()
	const n = 100
	var got []int
	v.Go(func() {
		for i := 0; i < n; i++ {
			q.PutAfter(time.Duration(i)*time.Millisecond, i)
		}
	})
	v.Go(func() {
		for i := 0; i < n; i++ {
			x, ok := q.GetTimeout(time.Second)
			if !ok {
				return
			}
			got = append(got, x.(int))
		}
	})
	v.Wait()
	if len(got) != n {
		t.Fatalf("received %d items, want %d", len(got), n)
	}
	for i, x := range got {
		if x != i {
			t.Fatalf("got[%d] = %d, want %d", i, x, i)
		}
	}
	if v.Now() != time.Duration(n-1)*time.Millisecond {
		t.Fatalf("final time %v, want %v", v.Now(), time.Duration(n-1)*time.Millisecond)
	}
}

// TestSequentialDeadlockRelease verifies that a custom deadlock handler
// releases every blocked goroutine so sequential simulations can unwind after
// a stall.
func TestSequentialDeadlockRelease(t *testing.T) {
	v := NewVirtualSequential()
	var stalled string
	v.SetDeadlockHandler(func(info string) { stalled = info })
	q := v.NewQueue()
	var okA, okB bool
	v.Go(func() { _, okA = q.Get() })
	v.Go(func() { _, okB = q.Get() })
	v.Wait()
	if stalled == "" {
		t.Fatal("deadlock handler not invoked")
	}
	if okA || okB {
		t.Fatalf("gets returned ok after deadlock: %v %v", okA, okB)
	}
}

// TestSequentialAfterFunc verifies AfterFunc fires at the requested instant.
func TestSequentialAfterFunc(t *testing.T) {
	v := NewVirtualSequential()
	var at time.Duration
	v.AfterFunc(250*time.Millisecond, func() { at = v.Now() })
	v.Go(func() { v.Sleep(time.Second) })
	v.Wait()
	if at != 250*time.Millisecond {
		t.Fatalf("fired at %v, want 250ms", at)
	}
}

// TestSequentialAdopt verifies Adopt/Release participate in the turn-taking.
func TestSequentialAdopt(t *testing.T) {
	v := NewVirtualSequential()
	q := v.NewQueue()
	v.Go(func() {
		v.Sleep(10 * time.Millisecond)
		q.Put("hello")
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		v.Adopt()
		defer v.Release()
		x, ok := q.Get()
		if !ok || x != "hello" {
			t.Errorf("Get = %v, %v", x, ok)
		}
	}()
	<-done
	v.Wait()
}

// TestSequentialDaemonWakesOnUntrackedPut pins the daemon-idle wake path:
// when every tracked goroutine is a parked daemon (the mux-pump idle state),
// a Put or Close from an untracked goroutine must grant the daemon the run
// token — without it, the stimulus would sit unprocessed until unrelated
// tracked activity. The assertion is timing-independent; the sleep below
// only biases execution toward the genuinely idle state before the Put.
func TestSequentialDaemonWakesOnUntrackedPut(t *testing.T) {
	v := NewVirtualSequential()
	q := v.NewQueue()
	q.SetDaemon()
	got := make(chan any, 2)
	v.Go(func() {
		for {
			x, ok := q.Get()
			if !ok {
				return
			}
			got <- x
		}
	})
	time.Sleep(10 * time.Millisecond) // bias: let the daemon park first
	q.Put(42)
	select {
	case x := <-got:
		if x != 42 {
			t.Fatalf("daemon received %v, want 42", x)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never woken by an untracked Put in the idle state")
	}
	q.Close()
	v.Wait()
}

// TestSequentialDaemonIdleIsNotDeadlock checks that a sequential system
// whose only parked goroutine is a daemon does not trip the deadlock
// handler: it is idle, awaiting external stimulus.
func TestSequentialDaemonIdleIsNotDeadlock(t *testing.T) {
	v := NewVirtualSequential()
	dead := make(chan string, 1)
	v.SetDeadlockHandler(func(info string) { dead <- info })
	q := v.NewQueue()
	q.SetDaemon()
	v.Go(func() {
		for {
			if _, ok := q.Get(); !ok {
				return
			}
		}
	})
	// A tracked workload that finishes, leaving only the daemon parked.
	v.Go(func() { v.Sleep(time.Millisecond) })
	select {
	case info := <-dead:
		t.Fatalf("daemon-only idle state reported as deadlock: %s", info)
	case <-time.After(50 * time.Millisecond):
	}
	q.Close()
	v.Wait()
}
