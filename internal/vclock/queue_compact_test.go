package vclock

import "testing"

// TestQueueBacklogMemoryBounded is the regression test for the
// head-indexed deque: a queue that never fully drains (persistent backlog)
// must not grow its backing array with total throughput — the dead prefix
// is compacted once it dominates, bounding memory at O(pending).
func TestQueueBacklogMemoryBounded(t *testing.T) {
	r := NewReal()
	q := r.NewQueue()
	const backlog = 100
	for i := 0; i < backlog; i++ {
		q.Put(i)
	}
	// One put, one pop per cycle: the queue holds `backlog` items forever.
	for i := 0; i < 100_000; i++ {
		q.Put(i)
		if _, ok := q.TryGet(); !ok {
			t.Fatal("pop failed with a non-empty backlog")
		}
	}
	if q.Len() != backlog {
		t.Fatalf("backlog drifted: %d items, want %d", q.Len(), backlog)
	}
	impl := q.impl.(*realQueue)
	if c := cap(impl.items); c > 8*backlog {
		t.Fatalf("backing array grew with throughput: cap %d for a backlog of %d", c, backlog)
	}
	// FIFO must survive compaction: items drain in insertion order.
	prev := -1
	for {
		x, ok := q.TryGet()
		if !ok {
			break
		}
		if v := x.(int); v <= prev {
			t.Fatalf("order broken after compaction: %d after %d", v, prev)
		} else {
			prev = v
		}
	}
}

// Same contract for the virtual queue (untracked puts + TryGet need no
// tracked goroutines).
func TestVirtualQueueBacklogMemoryBounded(t *testing.T) {
	v := NewVirtual()
	q := v.NewQueue()
	const backlog = 100
	for i := 0; i < backlog; i++ {
		q.Put(i)
	}
	for i := 0; i < 100_000; i++ {
		q.Put(i)
		if _, ok := q.TryGet(); !ok {
			t.Fatal("pop failed with a non-empty backlog")
		}
	}
	impl := q.impl.(*virtualQueue)
	if c := cap(impl.items); c > 8*backlog {
		t.Fatalf("backing array grew with throughput: cap %d for a backlog of %d", c, backlog)
	}
}
