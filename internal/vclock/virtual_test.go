package vclock

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestVirtualSleepAdvancesTime(t *testing.T) {
	v := NewVirtual()
	var at time.Duration
	v.Go(func() {
		v.Sleep(3 * time.Second)
		at = v.Now()
	})
	v.Wait()
	if at != 3*time.Second {
		t.Fatalf("Now after Sleep(3s) = %v, want 3s", at)
	}
}

func TestVirtualSleepZeroOrNegative(t *testing.T) {
	v := NewVirtual()
	v.Go(func() {
		v.Sleep(0)
		v.Sleep(-time.Second)
	})
	v.Wait()
	if got := v.Now(); got != 0 {
		t.Fatalf("Now = %v, want 0", got)
	}
}

func TestVirtualConcurrentSleepersOrdering(t *testing.T) {
	v := NewVirtual()
	var mu sync.Mutex
	var order []string
	record := func(name string) {
		mu.Lock()
		defer mu.Unlock()
		order = append(order, name)
	}
	v.Go(func() { v.Sleep(2 * time.Second); record("b") })
	v.Go(func() { v.Sleep(1 * time.Second); record("a") })
	v.Go(func() { v.Sleep(3 * time.Second); record("c") })
	v.Wait()
	if got := strings.Join(order, ""); got != "abc" {
		t.Fatalf("wake order = %q, want abc", got)
	}
	if v.Now() != 3*time.Second {
		t.Fatalf("final Now = %v, want 3s", v.Now())
	}
}

func TestVirtualQueuePutGet(t *testing.T) {
	v := NewVirtual()
	q := v.NewQueue()
	var got []any
	v.Go(func() {
		for i := 0; i < 3; i++ {
			x, ok := q.Get()
			if !ok {
				t.Error("Get returned !ok")
				return
			}
			got = append(got, x)
		}
	})
	v.Go(func() {
		q.Put(1)
		q.Put(2)
		q.Put(3)
	})
	v.Wait()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("received %v, want [1 2 3]", got)
	}
}

func TestVirtualQueuePutAfterDelaysDelivery(t *testing.T) {
	v := NewVirtual()
	q := v.NewQueue()
	var at time.Duration
	v.Go(func() {
		q.PutAfter(5*time.Second, "late")
		x, ok := q.Get()
		if !ok || x != "late" {
			t.Errorf("Get = %v, %v", x, ok)
		}
		at = v.Now()
	})
	v.Wait()
	if at != 5*time.Second {
		t.Fatalf("delivery at %v, want 5s", at)
	}
}

func TestVirtualQueueFIFOAcrossSameInstant(t *testing.T) {
	v := NewVirtual()
	q := v.NewQueue()
	var got []any
	v.Go(func() {
		// Two deliveries scheduled for the same virtual instant must
		// arrive in scheduling order.
		q.PutAfter(time.Second, "first")
		q.PutAfter(time.Second, "second")
		for i := 0; i < 2; i++ {
			x, _ := q.Get()
			got = append(got, x)
		}
	})
	v.Wait()
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("order = %v", got)
	}
}

func TestVirtualGetTimeoutExpires(t *testing.T) {
	v := NewVirtual()
	q := v.NewQueue()
	var ok bool
	var at time.Duration
	v.Go(func() {
		_, ok = q.GetTimeout(2 * time.Second)
		at = v.Now()
	})
	v.Wait()
	if ok {
		t.Fatal("GetTimeout returned ok on empty queue")
	}
	if at != 2*time.Second {
		t.Fatalf("timed out at %v, want 2s", at)
	}
}

func TestVirtualGetTimeoutReceivesEarlier(t *testing.T) {
	v := NewVirtual()
	q := v.NewQueue()
	var got any
	var at time.Duration
	v.Go(func() {
		q.PutAfter(time.Second, 42)
		got, _ = q.GetTimeout(10 * time.Second)
		at = v.Now()
	})
	v.Wait()
	if got != 42 || at != time.Second {
		t.Fatalf("got %v at %v, want 42 at 1s", got, at)
	}
}

func TestVirtualQueueClose(t *testing.T) {
	v := NewVirtual()
	q := v.NewQueue()
	var first, second bool
	var x any
	v.Go(func() {
		q.Put("pending")
		q.Close()
		x, first = q.Get()
		_, second = q.Get()
	})
	v.Wait()
	if !first || x != "pending" {
		t.Fatalf("pre-close element lost: %v %v", x, first)
	}
	if second {
		t.Fatal("Get on closed drained queue returned ok")
	}
}

func TestVirtualTryGet(t *testing.T) {
	v := NewVirtual()
	q := v.NewQueue()
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue returned ok")
	}
	q.Put(7)
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	if x, ok := q.TryGet(); !ok || x != 7 {
		t.Fatalf("TryGet = %v, %v", x, ok)
	}
}

func TestVirtualDeadlockDetection(t *testing.T) {
	v := NewVirtual()
	var info atomic.Value
	v.SetDeadlockHandler(func(s string) { info.Store(s) })
	q := v.NewQueue()
	v.Go(func() {
		q.Get() // never satisfied: nobody puts
	})
	v.Wait()
	s, _ := info.Load().(string)
	if s == "" {
		t.Fatal("deadlock handler not invoked")
	}
	if !strings.Contains(s, "blocked") {
		t.Fatalf("diagnostic %q lacks context", s)
	}
}

func TestVirtualManyProducersConsumers(t *testing.T) {
	v := NewVirtual()
	const producers, perProducer = 8, 50
	q := v.NewQueue()
	var received atomic.Int64
	v.Go(func() {
		for {
			if _, ok := q.Get(); !ok {
				return
			}
			received.Add(1)
		}
	})
	var remaining atomic.Int64
	remaining.Store(producers)
	for p := 0; p < producers; p++ {
		p := p
		v.Go(func() {
			for i := 0; i < perProducer; i++ {
				v.Sleep(time.Duration(p+1) * time.Millisecond)
				q.Put(i)
			}
			if remaining.Add(-1) == 0 {
				q.Close()
			}
		})
	}
	v.Wait()
	if received.Load() != producers*perProducer {
		t.Fatalf("received %d, want %d", received.Load(), producers*perProducer)
	}
}

func TestVirtualAdoptRelease(t *testing.T) {
	v := NewVirtual()
	q := v.NewQueue()
	v.Go(func() {
		v.Sleep(time.Second)
		q.Put("hello")
	})
	v.Adopt()
	x, ok := q.Get()
	v.Release()
	if !ok || x != "hello" {
		t.Fatalf("Get = %v, %v", x, ok)
	}
	v.Wait()
}

func TestRealClockBasics(t *testing.T) {
	r := NewReal()
	q := r.NewQueue()
	r.Go(func() { q.Put(1) })
	if x, ok := q.Get(); !ok || x != 1 {
		t.Fatalf("Get = %v, %v", x, ok)
	}
	if _, ok := q.GetTimeout(5 * time.Millisecond); ok {
		t.Fatal("GetTimeout on empty queue returned ok")
	}
	q.PutAfter(time.Millisecond, 2)
	if x, ok := q.GetTimeout(time.Second); !ok || x != 2 {
		t.Fatalf("delayed Get = %v, %v", x, ok)
	}
	q.Close()
	if _, ok := q.Get(); ok {
		t.Fatal("Get after close returned ok")
	}
	r.Wait()
	if r.Now() <= 0 {
		t.Fatal("Real.Now not advancing")
	}
}

func TestRealTryGetAndLen(t *testing.T) {
	r := NewReal()
	q := r.NewQueue()
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue returned ok")
	}
	q.Put("x")
	if q.Len() != 1 {
		t.Fatalf("Len = %d", q.Len())
	}
	if x, ok := q.TryGet(); !ok || x != "x" {
		t.Fatalf("TryGet = %v %v", x, ok)
	}
}
