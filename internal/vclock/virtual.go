package vclock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Virtual is a deterministic virtual clock implementing a conservative
// discrete-event scheduler over goroutines.
//
// Goroutines started with Go (or adopted with Adopt) are "tracked". Virtual
// time advances only when every tracked goroutine is blocked in a
// clock-mediated wait (Sleep, Queue.Get, Queue.GetTimeout); at that moment
// the clock jumps to the earliest scheduled event, fires all events due at
// that instant in scheduling order, and wakes any waiter whose wake condition
// now holds. If no events remain while tracked goroutines are blocked, the
// system is deadlocked: the configured deadlock handler is invoked (the
// default panics with a diagnostic).
//
// The zero value is not usable; construct with NewVirtual.
type Virtual struct {
	mu   sync.Mutex
	cond *sync.Cond

	now     time.Duration
	running int // tracked goroutines not blocked in a clock wait
	tracked int // tracked goroutines not yet finished
	seq     uint64

	timers eventHeap
	// blocked holds one record per goroutine currently inside blockLocked.
	blocked map[*waiter]struct{}

	// sequential selects run-to-block scheduling: at most one tracked
	// goroutine executes at a time, and when several waiters become
	// runnable at the same instant the one started earliest (lowest gid)
	// always runs first. See NewVirtualSequential.
	sequential bool
	nextGID    uint64
	current    uint64  // gid of the goroutine holding the run token
	granted    *waiter // chosen but not yet resumed; blocks further grants

	onDeadlock func(info string)
	dead       bool
}

var _ Clock = (*Virtual)(nil)

// NewVirtual returns a virtual clock positioned at time zero. Goroutines
// woken at the same instant run concurrently, so executions are reproducible
// in virtual time but not in fine-grained event order.
func NewVirtual() *Virtual {
	v := &Virtual{blocked: make(map[*waiter]struct{})}
	v.cond = sync.NewCond(&v.mu)
	v.onDeadlock = func(info string) {
		panic("vclock: deadlock: " + info)
	}
	return v
}

// NewVirtualSequential returns a virtual clock with run-to-block scheduling:
// exactly one tracked goroutine executes at any moment, each running until it
// blocks in a clock-mediated wait, and among simultaneously runnable
// goroutines the one started earliest (by Go/Adopt order) always resumes
// first. Whole-system executions are then fully deterministic — every send,
// delivery and random draw happens in an identical total order on every run
// — which is what the chaos engine's seed-replay contract is built on. The
// cost is lost intra-instant parallelism, so prefer NewVirtual when only
// virtual-time reproducibility is needed.
func NewVirtualSequential() *Virtual {
	v := NewVirtual()
	v.sequential = true
	return v
}

// SetDeadlockHandler replaces the handler invoked when all tracked goroutines
// are blocked and no timed events remain. After the handler returns, the
// clock releases every blocked waiter (queue receives observe ok=false) so
// the program can unwind. The default handler panics.
func (v *Virtual) SetDeadlockHandler(fn func(info string)) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.onDeadlock = fn
}

// Now reports the current virtual time.
func (v *Virtual) Now() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Go starts fn on a new tracked goroutine. Under sequential scheduling the
// goroutine's start order (the Go call order) is its wake priority for the
// rest of its life.
func (v *Virtual) Go(fn func()) {
	v.mu.Lock()
	v.tracked++
	v.running++
	gid := v.nextGID
	v.nextGID++
	seq := v.sequential
	v.mu.Unlock()
	go func() {
		if seq {
			v.mu.Lock()
			v.takeTurnLocked(gid)
			v.mu.Unlock()
		}
		defer v.release()
		fn()
	}()
}

// AfterFunc runs fn on a new tracked goroutine once d of virtual time has
// elapsed — the hook fault injectors use to crash threads or heal partitions
// at chosen virtual instants. fn runs unlocked and may use any clock
// operation.
func (v *Virtual) AfterFunc(d time.Duration, fn func()) {
	v.Go(func() {
		v.Sleep(d)
		fn()
	})
}

// Adopt registers the calling goroutine as tracked. It must be paired with
// Release. Use it when an existing goroutine (for example a test) needs to
// call blocking clock operations directly. Under sequential scheduling the
// call blocks until the goroutine is granted its first turn.
func (v *Virtual) Adopt() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.tracked++
	v.running++
	if v.sequential {
		gid := v.nextGID
		v.nextGID++
		v.takeTurnLocked(gid)
	}
}

// Release unregisters the calling goroutine; see Adopt.
func (v *Virtual) Release() { v.release() }

func (v *Virtual) release() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.tracked--
	v.running--
	if v.running == 0 && len(v.blocked) > 0 {
		if v.sequential {
			v.scheduleNextLocked()
		} else {
			v.advanceLocked()
		}
	}
	v.cond.Broadcast()
}

// Wait blocks the calling (untracked) goroutine until all tracked goroutines
// have finished.
func (v *Virtual) Wait() {
	v.mu.Lock()
	defer v.mu.Unlock()
	for v.tracked > 0 {
		v.cond.Wait()
	}
}

// Sleep blocks the calling tracked goroutine for d of virtual time.
// Non-positive d yields without advancing time.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	deadline := v.now + d
	v.scheduleLocked(deadline, nil)
	v.blockLocked(func() bool { return v.now >= deadline || v.dead }, false)
}

// NewQueue returns a queue whose blocking operations cooperate with this
// clock.
func (v *Virtual) NewQueue() *Queue {
	return &Queue{impl: &virtualQueue{v: v}}
}

// scheduleLocked registers fn to run at absolute virtual time at. A nil fn
// is a pure wake-up point.
func (v *Virtual) scheduleLocked(at time.Duration, fn func()) {
	if at < v.now {
		at = v.now
	}
	v.seq++
	heap.Push(&v.timers, &event{at: at, seq: v.seq, fn: fn})
}

// blockLocked parks the calling goroutine until pred() holds. It must be
// called with v.mu held by a tracked goroutine; pred is evaluated under v.mu.
// A daemon wait is infrastructure (a demux pump, a background router): it
// does not count toward deadlock detection, so a system whose only parked
// goroutines are daemons is idle, not deadlocked.
func (v *Virtual) blockLocked(pred func() bool, daemon bool) {
	if pred() {
		return
	}
	if v.sequential {
		// The caller holds the run token, so v.current is its gid.
		v.blockSeqLocked(v.current, pred, daemon)
		return
	}
	w := &waiter{pred: pred, daemon: daemon}
	v.blocked[w] = struct{}{}
	v.running--
	if v.running == 0 {
		v.advanceLocked()
	}
	for !pred() {
		v.cond.Wait()
	}
	delete(v.blocked, w)
	v.running++
}

// takeTurnLocked parks a goroutine that has not run yet (Go start, Adopt)
// until the scheduler grants it the run token.
func (v *Virtual) takeTurnLocked(gid uint64) {
	v.blockSeqLocked(gid, func() bool { return true }, false)
}

// blockSeqLocked is the sequential-mode park: the goroutine gives up the run
// token and waits until the scheduler chooses it again (its pred satisfied
// and every lower-gid runnable goroutine already served), or the clock is
// declared dead, in which case every waiter unwinds.
func (v *Virtual) blockSeqLocked(gid uint64, pred func() bool, daemon bool) {
	w := &waiter{pred: pred, gid: gid, daemon: daemon}
	v.blocked[w] = struct{}{}
	v.running--
	if v.running == 0 {
		v.scheduleNextLocked()
	}
	for !v.dead {
		if w.chosen {
			if pred() {
				break
			}
			// Spurious grant: pred was falsified (e.g. by an untracked
			// TryGet) between the grant and our resume. Give the token
			// back and re-park.
			w.chosen = false
			if v.granted == w {
				v.granted = nil
			}
			if v.running == 0 {
				v.scheduleNextLocked()
			}
			continue
		}
		v.cond.Wait()
	}
	if v.granted == w {
		v.granted = nil
	}
	delete(v.blocked, w)
	v.running++
	v.current = gid
}

// scheduleNextLocked advances virtual time until at least one waiter is
// satisfied, then hands the run token to the satisfied waiter with the lowest
// gid. Called with v.mu held and v.running == 0. A no-op while a grant is
// still outstanding (the chosen goroutine has not resumed yet).
func (v *Virtual) scheduleNextLocked() {
	if v.granted != nil {
		return
	}
	v.advanceLocked()
	if v.dead {
		return // advanceLocked broadcast; every waiter unwinds
	}
	var best *waiter
	for w := range v.blocked {
		if w.pred() && (best == nil || w.gid < best.gid) {
			best = w
		}
	}
	if best != nil {
		best.chosen = true
		v.granted = best
		v.current = best.gid
		v.cond.Broadcast()
	}
}

// advanceLocked fires events until at least one blocked waiter is satisfied,
// or declares deadlock. Called with v.mu held and v.running == 0.
func (v *Virtual) advanceLocked() {
	for {
		if v.dead || v.anySatisfiedLocked() {
			v.cond.Broadcast()
			return
		}
		if v.timers.Len() == 0 {
			if !v.anyNonDaemonBlockedLocked() {
				// Only daemon infrastructure is parked: the system is idle,
				// waiting for external stimulus (a new Go, an untracked Put),
				// not deadlocked.
				return
			}
			info := fmt.Sprintf("all %d tracked goroutine(s) blocked at virtual time %v with no pending events",
				v.tracked, v.now)
			v.dead = true
			fn := v.onDeadlock
			v.mu.Unlock()
			func() {
				// Re-acquire even when the handler panics, so deferred
				// unlocks in our callers stay balanced during unwinding.
				defer v.mu.Lock()
				fn(info)
			}()
			v.cond.Broadcast()
			return
		}
		// Fire every event scheduled for the earliest instant, in
		// scheduling order, so same-time deliveries stay deterministic.
		at := v.timers[0].at
		v.now = at
		for v.timers.Len() > 0 && v.timers[0].at == at {
			ev := heap.Pop(&v.timers).(*event)
			if ev.fn != nil {
				ev.fn()
			}
		}
	}
}

func (v *Virtual) anySatisfiedLocked() bool {
	for w := range v.blocked {
		if w.pred() {
			return true
		}
	}
	return false
}

// kickLocked resumes the sequential scheduler after an untracked mutation —
// a Queue.Put or Close from a goroutine the clock does not track. In the
// daemon-idle state (every tracked goroutine parked, only daemons blocked,
// no grant outstanding) nothing else would ever call scheduleNextLocked, so
// a waiter whose predicate the mutation just satisfied would never be
// granted the run token. No-op outside sequential mode: non-sequential
// waiters self-check their predicates on the broadcast.
func (v *Virtual) kickLocked() {
	if v.sequential && v.running == 0 && len(v.blocked) > 0 {
		v.scheduleNextLocked()
	}
}

func (v *Virtual) anyNonDaemonBlockedLocked() bool {
	for w := range v.blocked {
		if !w.daemon {
			return true
		}
	}
	return false
}

type waiter struct {
	pred func() bool
	// daemon waits are infrastructure and excluded from deadlock detection.
	daemon bool
	// Sequential-mode fields: the owning goroutine's start-order id and
	// whether the scheduler has handed it the run token.
	gid    uint64
	chosen bool
}

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// virtualQueue shares the clock's monitor so puts, timed puts and blocking
// gets all interact correctly with virtual-time advancement.
type virtualQueue struct {
	v      *Virtual
	items  []any
	closed bool
	daemon bool
}

var _ queueImpl = (*virtualQueue)(nil)

func (q *virtualQueue) put(x any) {
	q.v.mu.Lock()
	defer q.v.mu.Unlock()
	if q.closed {
		return // a closed mailbox drops new arrivals; see realQueue.put
	}
	q.items = append(q.items, x)
	q.v.cond.Broadcast()
	q.v.kickLocked()
}

func (q *virtualQueue) putAfter(d time.Duration, x any) {
	if d < 0 {
		d = 0
	}
	q.v.mu.Lock()
	defer q.v.mu.Unlock()
	q.v.scheduleLocked(q.v.now+d, func() {
		if !q.closed {
			q.items = append(q.items, x)
		}
	})
	q.v.kickLocked()
}

func (q *virtualQueue) get() (any, bool) {
	q.v.mu.Lock()
	defer q.v.mu.Unlock()
	q.v.blockLocked(func() bool { return len(q.items) > 0 || q.closed || q.v.dead }, q.daemon)
	return q.popLocked()
}

func (q *virtualQueue) getTimeout(d time.Duration) (any, bool) {
	q.v.mu.Lock()
	defer q.v.mu.Unlock()
	deadline := q.v.now + d
	q.v.scheduleLocked(deadline, nil)
	q.v.blockLocked(func() bool {
		return len(q.items) > 0 || q.closed || q.v.now >= deadline || q.v.dead
	}, q.daemon)
	return q.popLocked()
}

func (q *virtualQueue) setDaemon() {
	q.v.mu.Lock()
	defer q.v.mu.Unlock()
	q.daemon = true
}

func (q *virtualQueue) tryGet() (any, bool) {
	q.v.mu.Lock()
	defer q.v.mu.Unlock()
	return q.popLocked()
}

func (q *virtualQueue) popLocked() (any, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	x := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return x, true
}

func (q *virtualQueue) closeQ() {
	q.v.mu.Lock()
	defer q.v.mu.Unlock()
	q.closed = true
	q.v.cond.Broadcast()
	q.v.kickLocked()
}

func (q *virtualQueue) length() int {
	q.v.mu.Lock()
	defer q.v.mu.Unlock()
	return len(q.items)
}
