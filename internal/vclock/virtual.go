package vclock

import (
	"fmt"
	"sync"
	"time"
)

// Virtual is a deterministic virtual clock implementing a conservative
// discrete-event scheduler over goroutines.
//
// Goroutines started with Go (or adopted with Adopt) are "tracked". Virtual
// time advances only when every tracked goroutine is blocked in a
// clock-mediated wait (Sleep, Queue.Get, Queue.GetTimeout); at that moment
// the clock jumps to the earliest scheduled event, fires all events due at
// that instant in scheduling order, and wakes any waiter whose wake condition
// now holds. If no events remain while tracked goroutines are blocked, the
// system is deadlocked: the configured deadlock handler is invoked (the
// default panics with a diagnostic).
//
// The zero value is not usable; construct with NewVirtual.
type Virtual struct {
	mu   sync.Mutex
	cond *sync.Cond

	now     time.Duration
	running int // tracked goroutines not blocked in a clock wait
	tracked int // tracked goroutines not yet finished
	daemons int // tracked goroutines started with GoDaemon, excluded from Wait
	seq     uint64

	timers eventHeap
	// blocked holds one record per goroutine currently inside blockLocked.
	blocked map[*waiter]struct{}

	// sequential selects run-to-block scheduling: at most one tracked
	// goroutine executes at a time, and when several waiters become
	// runnable at the same instant the one started earliest (lowest gid)
	// always runs first. See NewVirtualSequential.
	sequential bool
	nextGID    uint64
	current    uint64  // gid of the goroutine holding the run token
	granted    *waiter // chosen but not yet resumed; blocks further grants

	onDeadlock func(info string)
	dead       bool
}

var _ Clock = (*Virtual)(nil)

// NewVirtual returns a virtual clock positioned at time zero. Goroutines
// woken at the same instant run concurrently, so executions are reproducible
// in virtual time but not in fine-grained event order.
func NewVirtual() *Virtual {
	v := &Virtual{blocked: make(map[*waiter]struct{})}
	v.cond = sync.NewCond(&v.mu)
	v.onDeadlock = func(info string) {
		panic("vclock: deadlock: " + info)
	}
	return v
}

// NewVirtualSequential returns a virtual clock with run-to-block scheduling:
// exactly one tracked goroutine executes at any moment, each running until it
// blocks in a clock-mediated wait, and among simultaneously runnable
// goroutines the one started earliest (by Go/Adopt order) always resumes
// first. Whole-system executions are then fully deterministic — every send,
// delivery and random draw happens in an identical total order on every run
// — which is what the chaos engine's seed-replay contract is built on. The
// cost is lost intra-instant parallelism, so prefer NewVirtual when only
// virtual-time reproducibility is needed.
func NewVirtualSequential() *Virtual {
	v := NewVirtual()
	v.sequential = true
	return v
}

// SetDeadlockHandler replaces the handler invoked when all tracked goroutines
// are blocked and no timed events remain. After the handler returns, the
// clock releases every blocked waiter (queue receives observe ok=false) so
// the program can unwind. The default handler panics.
func (v *Virtual) SetDeadlockHandler(fn func(info string)) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.onDeadlock = fn
}

// Now reports the current virtual time.
func (v *Virtual) Now() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Go starts fn on a new tracked goroutine. Under sequential scheduling the
// goroutine's start order (the Go call order) is its wake priority for the
// rest of its life.
func (v *Virtual) Go(fn func()) { v.spawn(fn, false) }

// GoDaemon starts fn on a tracked DAEMON goroutine: it participates in
// virtual-time advancement exactly like a Go goroutine while it runs (so
// work it performs on behalf of the simulation — e.g. a pooled role worker
// executing an action role — keeps the clock honest), but Wait does not
// wait for it to finish. Daemon goroutines are long-lived infrastructure
// that parks between work items in daemon-marked queue waits (see
// Queue.SetDaemon); without the exclusion every Wait would block forever on
// the resident pool.
func (v *Virtual) GoDaemon(fn func()) { v.spawn(fn, true) }

func (v *Virtual) spawn(fn func(), daemon bool) {
	v.mu.Lock()
	v.tracked++
	v.running++
	if daemon {
		v.daemons++
	}
	gid := v.nextGID
	v.nextGID++
	seq := v.sequential
	v.mu.Unlock()
	go func() {
		if seq {
			v.mu.Lock()
			v.takeTurnLocked(gid)
			v.mu.Unlock()
		}
		defer v.releaseTracked(daemon)
		fn()
	}()
}

// AfterFunc runs fn on a new tracked goroutine once d of virtual time has
// elapsed — the hook fault injectors use to crash threads or heal partitions
// at chosen virtual instants. fn runs unlocked and may use any clock
// operation.
func (v *Virtual) AfterFunc(d time.Duration, fn func()) {
	v.Go(func() {
		v.Sleep(d)
		fn()
	})
}

// Adopt registers the calling goroutine as tracked. It must be paired with
// Release. Use it when an existing goroutine (for example a test) needs to
// call blocking clock operations directly. Under sequential scheduling the
// call blocks until the goroutine is granted its first turn.
func (v *Virtual) Adopt() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.tracked++
	v.running++
	if v.sequential {
		gid := v.nextGID
		v.nextGID++
		v.takeTurnLocked(gid)
	}
}

// Release unregisters the calling goroutine; see Adopt.
func (v *Virtual) Release() { v.release() }

func (v *Virtual) release() { v.releaseTracked(false) }

func (v *Virtual) releaseTracked(daemon bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.tracked--
	v.running--
	if daemon {
		v.daemons--
	}
	if v.running == 0 && len(v.blocked) > 0 {
		if v.sequential {
			v.scheduleNextLocked()
		} else {
			v.advanceLocked()
		}
	}
	v.cond.Broadcast()
}

// Wait blocks the calling (untracked) goroutine until all tracked
// non-daemon goroutines have finished. Resident daemons (GoDaemon) are
// excluded — they park between work items and never "finish".
func (v *Virtual) Wait() {
	v.mu.Lock()
	defer v.mu.Unlock()
	for v.tracked > v.daemons {
		v.cond.Wait()
	}
}

// Sleep blocks the calling tracked goroutine for d of virtual time.
// Non-positive d yields without advancing time.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	deadline := v.now + d
	v.scheduleLocked(deadline, nil)
	v.blockLocked(waiter{kind: waitSleep, deadline: deadline})
}

// NewQueue returns a queue whose blocking operations cooperate with this
// clock.
func (v *Virtual) NewQueue() *Queue {
	return &Queue{impl: &virtualQueue{v: v}}
}

// scheduleLocked registers fn to run at absolute virtual time at. A nil fn
// is a pure wake-up point.
func (v *Virtual) scheduleLocked(at time.Duration, fn func()) {
	v.pushEventLocked(event{at: at, fn: fn})
}

// scheduleItemLocked registers the delivery of item into q at absolute
// virtual time at. Carrying the (queue, item) pair on the event itself —
// instead of a closure capturing them — keeps the per-message schedule
// allocation-free (events live by value in the heap).
func (v *Virtual) scheduleItemLocked(at time.Duration, q *virtualQueue, item any) {
	v.pushEventLocked(event{at: at, q: q, item: item})
}

func (v *Virtual) pushEventLocked(ev event) {
	if ev.at < v.now {
		ev.at = v.now
	}
	v.seq++
	ev.seq = v.seq
	v.timers.push(ev)
}

// fire runs one popped event with v.mu held.
func (v *Virtual) fireLocked(ev event) {
	if ev.q != nil {
		if !ev.q.closed {
			ev.q.items = append(ev.q.items, ev.item)
		}
		return
	}
	if ev.fn != nil {
		ev.fn()
	}
}

// blockLocked parks the calling goroutine until its wait condition holds.
// It must be called with v.mu held by a tracked goroutine; conditions are
// evaluated under v.mu. A daemon wait is infrastructure (a demux pump, a
// background router): it does not count toward deadlock detection, so a
// system whose only parked goroutines are daemons is idle, not deadlocked.
//
// The waiter is passed by value and copied to the heap only when the
// goroutine actually parks, so an already-satisfied wait (an item sitting
// in the queue, an expired deadline) allocates nothing.
func (v *Virtual) blockLocked(w waiter) {
	if w.satisfied(v) {
		return
	}
	wp := new(waiter)
	*wp = w
	if v.sequential {
		// The caller holds the run token, so v.current is its gid.
		wp.gid = v.current
		v.blockSeqLocked(wp)
		return
	}
	v.blocked[wp] = struct{}{}
	v.running--
	if v.running == 0 {
		v.advanceLocked()
	}
	for !wp.satisfied(v) {
		v.cond.Wait()
	}
	delete(v.blocked, wp)
	v.running++
}

// takeTurnLocked parks a goroutine that has not run yet (Go start, Adopt)
// until the scheduler grants it the run token.
func (v *Virtual) takeTurnLocked(gid uint64) {
	v.blockSeqLocked(&waiter{kind: waitAlways, gid: gid})
}

// blockSeqLocked is the sequential-mode park: the goroutine gives up the run
// token and waits until the scheduler chooses it again (its condition
// satisfied and every lower-gid runnable goroutine already served), or the
// clock is declared dead, in which case every waiter unwinds.
func (v *Virtual) blockSeqLocked(w *waiter) {
	v.blocked[w] = struct{}{}
	v.running--
	if v.running == 0 {
		v.scheduleNextLocked()
	}
	for !v.dead {
		if w.chosen {
			if w.satisfied(v) {
				break
			}
			// Spurious grant: the condition was falsified (e.g. by an
			// untracked TryGet) between the grant and our resume. Give the
			// token back and re-park.
			w.chosen = false
			if v.granted == w {
				v.granted = nil
			}
			if v.running == 0 {
				v.scheduleNextLocked()
			}
			continue
		}
		v.cond.Wait()
	}
	if v.granted == w {
		v.granted = nil
	}
	delete(v.blocked, w)
	v.running++
	v.current = w.gid
}

// scheduleNextLocked advances virtual time until at least one waiter is
// satisfied, then hands the run token to the satisfied waiter with the lowest
// gid. Called with v.mu held and v.running == 0. A no-op while a grant is
// still outstanding (the chosen goroutine has not resumed yet).
func (v *Virtual) scheduleNextLocked() {
	if v.granted != nil {
		return
	}
	v.advanceLocked()
	if v.dead {
		return // advanceLocked broadcast; every waiter unwinds
	}
	var best *waiter
	for w := range v.blocked {
		if w.satisfied(v) && (best == nil || w.gid < best.gid) {
			best = w
		}
	}
	if best != nil {
		best.chosen = true
		v.granted = best
		v.current = best.gid
		v.cond.Broadcast()
	}
}

// advanceLocked fires events until at least one blocked waiter is satisfied,
// or declares deadlock. Called with v.mu held and v.running == 0.
func (v *Virtual) advanceLocked() {
	for {
		if v.dead || v.anySatisfiedLocked() {
			v.cond.Broadcast()
			return
		}
		if len(v.timers) == 0 {
			if !v.anyNonDaemonBlockedLocked() {
				// Only daemon infrastructure is parked: the system is idle,
				// waiting for external stimulus (a new Go, an untracked Put),
				// not deadlocked.
				return
			}
			info := fmt.Sprintf("all %d tracked goroutine(s) blocked at virtual time %v with no pending events",
				v.tracked, v.now)
			v.dead = true
			fn := v.onDeadlock
			v.mu.Unlock()
			func() {
				// Re-acquire even when the handler panics, so deferred
				// unlocks in our callers stay balanced during unwinding.
				defer v.mu.Lock()
				fn(info)
			}()
			v.cond.Broadcast()
			return
		}
		// Fire every event scheduled for the earliest instant, in
		// scheduling order, so same-time deliveries stay deterministic.
		at := v.timers[0].at
		v.now = at
		for len(v.timers) > 0 && v.timers[0].at == at {
			v.fireLocked(v.timers.pop())
		}
	}
}

func (v *Virtual) anySatisfiedLocked() bool {
	for w := range v.blocked {
		if w.satisfied(v) {
			return true
		}
	}
	return false
}

// kickLocked resumes the sequential scheduler after an untracked mutation —
// a Queue.Put or Close from a goroutine the clock does not track. In the
// daemon-idle state (every tracked goroutine parked, only daemons blocked,
// no grant outstanding) nothing else would ever call scheduleNextLocked, so
// a waiter whose predicate the mutation just satisfied would never be
// granted the run token. No-op outside sequential mode: non-sequential
// waiters self-check their predicates on the broadcast.
func (v *Virtual) kickLocked() {
	if v.sequential && v.running == 0 && len(v.blocked) > 0 {
		v.scheduleNextLocked()
	}
}

func (v *Virtual) anyNonDaemonBlockedLocked() bool {
	for w := range v.blocked {
		if !w.daemon {
			return true
		}
	}
	return false
}

// waitKind selects a waiter's wake condition. Structured conditions (a
// queue pointer and a deadline) replace the predicate closures the waits
// once carried: evaluating them allocates nothing, and constructing a
// waiter on the fast path (condition already true) costs nothing at all.
type waitKind int

const (
	// waitAlways is immediately satisfiable — a new goroutine waiting only
	// for the sequential scheduler's run token.
	waitAlways waitKind = iota
	// waitSleep wakes at a virtual-time deadline.
	waitSleep
	// waitQueue wakes when its queue has an item or closes.
	waitQueue
	// waitQueueDeadline is waitQueue bounded by a deadline.
	waitQueueDeadline
)

type waiter struct {
	kind     waitKind
	q        *virtualQueue
	deadline time.Duration
	// daemon waits are infrastructure and excluded from deadlock detection.
	daemon bool
	// Sequential-mode fields: the owning goroutine's start-order id and
	// whether the scheduler has handed it the run token.
	gid    uint64
	chosen bool
}

// satisfied evaluates the wake condition; v.mu must be held. A dead clock
// satisfies every waiter so the system can unwind.
func (w *waiter) satisfied(v *Virtual) bool {
	if v.dead {
		return true
	}
	switch w.kind {
	case waitAlways:
		return true
	case waitSleep:
		return v.now >= w.deadline
	case waitQueue:
		return w.q.pendingLocked() > 0 || w.q.closed
	default: // waitQueueDeadline
		return w.q.pendingLocked() > 0 || w.q.closed || v.now >= w.deadline
	}
}

// event is one scheduled occurrence: a timed callback (fn), a timed queue
// delivery (q, item), or — with both unset — a pure wake-up point. Events
// live by value in the heap, so scheduling one allocates nothing beyond
// amortized heap growth.
type event struct {
	at   time.Duration
	seq  uint64
	fn   func()
	q    *virtualQueue
	item any
}

// eventHeap is a hand-rolled binary min-heap of events ordered by
// (at, seq). seq is a total tiebreak, so the pop order — and with it every
// golden trace — is exactly the schedule order container/heap produced,
// without its per-event pointer and interface boxing allocations.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release fn/item references
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

// virtualQueue shares the clock's monitor so puts, timed puts and blocking
// gets all interact correctly with virtual-time advancement.
//
// Items form a head-indexed deque: pops advance head instead of re-slicing,
// and the backing array rewinds once drained, so a steady-state
// put/pop cycle never reallocates (a walking [1:] re-slice would exhaust
// capacity and force a fresh array every cap pops).
type virtualQueue struct {
	v      *Virtual
	items  []any
	head   int
	closed bool
	daemon bool
}

var _ queueImpl = (*virtualQueue)(nil)

func (q *virtualQueue) put(x any) bool {
	q.v.mu.Lock()
	defer q.v.mu.Unlock()
	if q.closed {
		return false // a closed mailbox drops new arrivals; see realQueue.put
	}
	q.items = append(q.items, x)
	q.v.cond.Broadcast()
	q.v.kickLocked()
	return true
}

func (q *virtualQueue) putAfter(d time.Duration, x any) {
	if d < 0 {
		d = 0
	}
	q.v.mu.Lock()
	defer q.v.mu.Unlock()
	q.v.scheduleItemLocked(q.v.now+d, q, x)
	q.v.kickLocked()
}

func (q *virtualQueue) pendingLocked() int { return len(q.items) - q.head }

func (q *virtualQueue) get() (any, bool) {
	q.v.mu.Lock()
	defer q.v.mu.Unlock()
	q.v.blockLocked(waiter{kind: waitQueue, q: q, daemon: q.daemon})
	return q.popLocked()
}

func (q *virtualQueue) getTimeout(d time.Duration) (any, bool) {
	q.v.mu.Lock()
	defer q.v.mu.Unlock()
	deadline := q.v.now + d
	q.v.scheduleLocked(deadline, nil)
	q.v.blockLocked(waiter{kind: waitQueueDeadline, q: q, deadline: deadline, daemon: q.daemon})
	return q.popLocked()
}

func (q *virtualQueue) setDaemon() {
	q.v.mu.Lock()
	defer q.v.mu.Unlock()
	q.daemon = true
}

func (q *virtualQueue) tryGet() (any, bool) {
	q.v.mu.Lock()
	defer q.v.mu.Unlock()
	return q.popLocked()
}

func (q *virtualQueue) popLocked() (any, bool) {
	if q.pendingLocked() == 0 {
		return nil, false
	}
	x := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	q.items, q.head = compactQueue(q.items, q.head)
	return x, true
}

// compactQueue bounds a head-indexed deque's dead prefix: a drained queue
// rewinds onto its backing array for free, and a queue that never fully
// drains (persistent backlog) is compacted once the dead prefix dominates,
// so memory stays O(pending) instead of growing with total throughput.
// Both operations are allocation-free, preserving the zero-alloc
// steady-state send contract.
func compactQueue(items []any, head int) ([]any, int) {
	const threshold = 64
	switch {
	case head == len(items):
		return items[:0], 0
	case head >= threshold && head*2 >= len(items):
		n := copy(items, items[head:])
		for i := n; i < len(items); i++ {
			items[i] = nil // release references past the new tail
		}
		return items[:n], 0
	}
	return items, head
}

func (q *virtualQueue) reset() {
	q.v.mu.Lock()
	defer q.v.mu.Unlock()
	for i := range q.items {
		q.items[i] = nil
	}
	q.items = q.items[:0]
	q.head = 0
	q.closed = false
	q.daemon = false
}

func (q *virtualQueue) closeQ() {
	q.v.mu.Lock()
	defer q.v.mu.Unlock()
	q.closed = true
	q.v.cond.Broadcast()
	q.v.kickLocked()
}

func (q *virtualQueue) length() int {
	q.v.mu.Lock()
	defer q.v.mu.Unlock()
	return q.pendingLocked()
}
