// Package vclock provides the time substrate for the CA-action runtime: an
// abstract Clock with two implementations, a real clock backed by package
// time and a deterministic virtual clock implementing a conservative
// discrete-event scheduler over goroutines.
//
// Every blocking operation in this repository (message receipt, modelled
// computation, barrier waits) goes through a Clock or a Queue created by it.
// Under the virtual clock this makes entire distributed executions
// deterministic and allows simulating multi-minute experiments in
// microseconds; it also gives precise global-deadlock detection, which the
// paper's Lemma 1 (deadlock freedom) tests rely on.
package vclock

import "time"

// Clock abstracts the passage of time for a simulated or real distributed
// system. Implementations must be safe for concurrent use.
type Clock interface {
	// Now reports the elapsed time since the clock started.
	Now() time.Duration

	// Sleep blocks the calling goroutine for d. The calling goroutine must
	// have been started via Go (or registered with Adopt) when using the
	// virtual clock.
	Sleep(d time.Duration)

	// Go runs fn on a new goroutine tracked by the clock. Tracked goroutines
	// participate in virtual-time advancement: virtual time moves only when
	// all tracked goroutines are blocked in clock-mediated waits.
	Go(fn func())

	// NewQueue returns an unbounded FIFO queue integrated with the clock:
	// Get blocks in a clock-mediated wait, and PutAfter delivers after a
	// delay in this clock's timeline.
	NewQueue() *Queue

	// Wait blocks until every goroutine started with Go has returned.
	Wait()
}

// IsReal reports whether c is wall-clock-backed (see Real.RealTime).
// Components that keep timing invariants only the real clock provides —
// the transports' lock-free fast paths, the mux's run-to-completion
// delivery lane — gate on this, so deterministic virtual-time executions
// never take a schedule-dependent shortcut.
func IsReal(c Clock) bool {
	_, ok := c.(interface{ RealTime() })
	return ok
}

// Queue is an unbounded FIFO mailbox whose blocking receive cooperates with
// the owning Clock. The zero value is not usable; create queues with
// Clock.NewQueue.
type Queue struct {
	impl queueImpl
}

type queueImpl interface {
	put(x any) bool
	putAfter(d time.Duration, x any)
	get() (any, bool)
	getTimeout(d time.Duration) (any, bool)
	tryGet() (any, bool)
	closeQ()
	length() int
	setDaemon()
	reset()
}

// Put appends x to the queue, waking one blocked receiver. A closed queue
// drops new arrivals silently; callers that must know use PutOpen.
func (q *Queue) Put(x any) { q.impl.put(x) }

// PutOpen is Put reporting acceptance: false means the queue was already
// closed and x was dropped (receivers can never observe it). Senders that
// hand off responsibility with the element — e.g. a work item whose
// completion someone awaits — must check it and dispose of x themselves on
// false.
func (q *Queue) PutOpen(x any) bool { return q.impl.put(x) }

// PutAfter appends x to the queue once d has elapsed on the owning clock.
// It returns immediately.
func (q *Queue) PutAfter(d time.Duration, x any) { q.impl.putAfter(d, x) }

// Get blocks until an element is available or the queue is closed and
// drained. The boolean is false when the queue was closed and empty.
func (q *Queue) Get() (any, bool) { return q.impl.get() }

// GetTimeout behaves like Get but gives up after d, returning false.
// A false result therefore means "closed and drained" or "timed out".
func (q *Queue) GetTimeout(d time.Duration) (any, bool) { return q.impl.getTimeout(d) }

// TryGet removes and returns the head element without blocking.
func (q *Queue) TryGet() (any, bool) { return q.impl.tryGet() }

// Close marks the queue closed. Pending elements remain receivable; blocked
// and future receivers observe ok=false once the queue drains.
func (q *Queue) Close() { q.impl.closeQ() }

// SetDaemon marks receives on this queue as daemon waits: goroutines parked
// in them are infrastructure (demultiplexer pumps, background routers), so
// under the virtual clock they are excluded from deadlock detection — a
// system whose only parked goroutines are daemons is considered idle, not
// deadlocked. No-op on a real clock's queue.
func (q *Queue) SetDaemon() { q.impl.setDaemon() }

// Reset reopens a closed, drained queue for reuse, clearing the daemon
// mark and keeping the backing array. Pooling support (recycled mailboxes
// must come back indistinguishable from fresh ones): it may only be called
// by the queue's exclusive owner once no other goroutine can touch the
// queue — a receiver racing a Reset could otherwise consume the next
// incarnation's elements.
func (q *Queue) Reset() { q.impl.reset() }

// Len reports the number of buffered elements.
func (q *Queue) Len() int { return q.impl.length() }
