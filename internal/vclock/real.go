package vclock

import (
	"sync"
	"time"
)

// Real is a Clock backed by the operating-system clock. It exists so the
// same runtime code can drive both deterministic simulations (Virtual) and
// genuinely distributed deployments (for example over the TCP transport).
//
// The zero value is not usable; construct with NewReal.
type Real struct {
	start time.Time
	wg    sync.WaitGroup
}

var _ Clock = (*Real)(nil)

// NewReal returns a real-time clock whose Now starts at zero.
func NewReal() *Real {
	return &Real{start: time.Now()}
}

// Now reports the elapsed wall-clock time since the clock was created.
func (r *Real) Now() time.Duration { return time.Since(r.start) }

// RealTime marks this clock as wall-clock-backed. Components that keep a
// deterministic slow path for virtual clocks (e.g. the sim transport's
// lock-free send fast path) detect it by this marker method.
func (r *Real) RealTime() {}

// Sleep pauses the calling goroutine for d of wall-clock time.
func (r *Real) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Go runs fn on a new goroutine tracked by Wait.
func (r *Real) Go(fn func()) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		fn()
	}()
}

// Wait blocks until every goroutine started with Go has returned.
func (r *Real) Wait() { r.wg.Wait() }

// GoDaemon runs fn on a goroutine excluded from Wait — resident
// infrastructure such as pooled role workers, which park between work items
// and never "finish". On the real clock that is simply an untracked
// goroutine.
func (r *Real) GoDaemon(fn func()) { go fn() }

// NewQueue returns a queue backed by a mutex/condition pair and real timers.
func (r *Real) NewQueue() *Queue {
	q := &realQueue{}
	q.cond = sync.NewCond(&q.mu)
	return &Queue{impl: q}
}

// realQueue's items form a head-indexed deque; see virtualQueue for why
// (steady-state put/pop cycles must not reallocate the backing array).
type realQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []any
	head   int
	closed bool
}

var _ queueImpl = (*realQueue)(nil)

func (q *realQueue) put(x any) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		// A closed mailbox drops new arrivals: receivers can never observe
		// them (they see ok=false once the pre-close backlog drains), so
		// keeping them would only leak — e.g. a lingering TCP read loop
		// feeding a torn-down endpoint's queue forever.
		return false
	}
	q.items = append(q.items, x)
	q.cond.Broadcast()
	return true
}

func (q *realQueue) putAfter(d time.Duration, x any) {
	if d <= 0 {
		q.put(x)
		return
	}
	time.AfterFunc(d, func() { q.put(x) })
}

func (q *realQueue) pendingLocked() int { return len(q.items) - q.head }

func (q *realQueue) get() (any, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.pendingLocked() == 0 && !q.closed {
		q.cond.Wait()
	}
	return q.popLocked()
}

func (q *realQueue) getTimeout(d time.Duration) (any, bool) {
	deadline := time.Now().Add(d)
	// sync.Cond has no timed wait; poke the condition when the deadline
	// passes so the loop below re-checks.
	timer := time.AfterFunc(d, func() {
		q.mu.Lock()
		q.cond.Broadcast()
		q.mu.Unlock()
	})
	defer timer.Stop()

	q.mu.Lock()
	defer q.mu.Unlock()
	for q.pendingLocked() == 0 && !q.closed && time.Now().Before(deadline) {
		q.cond.Wait()
	}
	return q.popLocked()
}

func (q *realQueue) tryGet() (any, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.popLocked()
}

func (q *realQueue) popLocked() (any, bool) {
	if q.pendingLocked() == 0 {
		return nil, false
	}
	x := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	q.items, q.head = compactQueue(q.items, q.head)
	return x, true
}

func (q *realQueue) reset() {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i := range q.items {
		q.items[i] = nil
	}
	q.items = q.items[:0]
	q.head = 0
	q.closed = false
}

func (q *realQueue) closeQ() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

func (q *realQueue) length() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pendingLocked()
}

// setDaemon is meaningful only for the virtual clock's deadlock detection.
func (q *realQueue) setDaemon() {}
