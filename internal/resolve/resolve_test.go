package resolve

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"caaction/internal/except"
	"caaction/internal/protocol"
	"caaction/internal/trace"
	"caaction/internal/transport"
	"caaction/internal/vclock"
)

func wrongRoundMsg() protocol.Message {
	return protocol.Suspended{Action: "A#1", From: "T2", Round: 99}
}

func wrongActionMsg() protocol.Message {
	return protocol.Suspended{Action: "other", From: "T2", Round: 1}
}

func unexpectedMsg() protocol.Message {
	return protocol.Enter{Action: "A#1", From: "T2"}
}

// scenarioResult captures one simulated resolution run.
type scenarioResult struct {
	outcomes     map[string]Outcome
	metrics      *trace.Metrics
	resolveCalls int64
	elapsed      time.Duration
}

// runScenario simulates N threads of one action over the simulated network.
// raisers maps thread ID to the exception it raises (after a per-thread
// stagger); all other threads only react.
func runScenario(t testing.TB, proto Protocol, n int, raisers map[string]except.ID,
	graph *except.Graph, latency, stagger, tres time.Duration) scenarioResult {
	t.Helper()
	return runScenarioWith(t, proto, n, raisers, graph,
		transport.FixedLatency(latency), stagger, tres)
}

// runScenarioJitter is runScenario under seeded jittered latency; per-pair
// FIFO is still enforced by the transport.
func runScenarioJitter(t testing.TB, proto Protocol, n int, raisers map[string]except.ID,
	graph *except.Graph, seed int64) scenarioResult {
	t.Helper()
	return runScenarioWith(t, proto, n, raisers, graph,
		transport.JitterLatency(10*time.Millisecond, 8*time.Millisecond, seed),
		time.Millisecond, 0)
}

func runScenarioWith(t testing.TB, proto Protocol, n int, raisers map[string]except.ID,
	graph *except.Graph, latency transport.LatencyFunc, stagger, tres time.Duration) scenarioResult {
	t.Helper()

	clk := vclock.NewVirtual()
	metrics := &trace.Metrics{}
	net := transport.NewSim(transport.SimConfig{
		Clock:   clk,
		Latency: latency,
		Metrics: metrics,
	})

	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("T%d", i+1)
	}
	SortThreads(peers)

	var calls atomic.Int64
	var mu sync.Mutex
	outcomes := make(map[string]Outcome)

	for i, self := range peers {
		self := self
		i := i
		ep, err := net.Endpoint(self)
		if err != nil {
			t.Fatalf("endpoint %s: %v", self, err)
		}
		clk.Go(func() {
			inst := proto.NewInstance(Config{
				Action: "A#1",
				Self:   self,
				Peers:  peers,
				Round:  0,
				Send: func(to string, msg protocol.Message) {
					if err := ep.Send(to, msg); err != nil {
						t.Errorf("%s send: %v", self, err)
					}
				},
				Resolve: func(raised []except.Raised) except.ID {
					calls.Add(1)
					clk.Sleep(tres)
					id, err := graph.ResolveRaised(raised)
					if err != nil {
						t.Errorf("resolve: %v", err)
					}
					return id
				},
			})
			var out Outcome
			if exc, ok := raisers[self]; ok {
				clk.Sleep(time.Duration(i) * stagger)
				out = inst.Raise(except.Raised{ID: exc, Origin: self, At: clk.Now()})
			}
			for !out.Decided {
				d, ok := ep.Recv()
				if !ok {
					t.Errorf("%s: endpoint closed before decision", self)
					return
				}
				res, err := inst.Deliver(d.From, d.Msg)
				if err != nil {
					t.Errorf("%s deliver: %v", self, err)
					return
				}
				if res.Decided {
					out = res
				}
			}
			mu.Lock()
			outcomes[self] = out
			mu.Unlock()
		})
	}
	clk.Wait()
	return scenarioResult{
		outcomes:     outcomes,
		metrics:      metrics,
		resolveCalls: calls.Load(),
		elapsed:      clk.Now(),
	}
}

func testGraph(t testing.TB, n int) *except.Graph {
	t.Helper()
	prims := make([]except.ID, n)
	for i := range prims {
		prims[i] = except.ID(fmt.Sprintf("e%d", i+1))
	}
	g, err := except.GenerateFull("test", prims)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func checkAgreement(t *testing.T, res scenarioResult, n int, want except.ID) {
	t.Helper()
	if len(res.outcomes) != n {
		t.Fatalf("only %d/%d threads decided", len(res.outcomes), n)
	}
	for id, out := range res.outcomes {
		if out.Resolved != want {
			t.Fatalf("%s resolved %q, want %q", id, out.Resolved, want)
		}
	}
}

func TestCoordinatedSingleRaiser(t *testing.T) {
	for n := 2; n <= 6; n++ {
		n := n
		t.Run(fmt.Sprintf("N=%d", n), func(t *testing.T) {
			g := testGraph(t, n)
			res := runScenario(t, Coordinated{}, n,
				map[string]except.ID{"T1": "e1"}, g,
				time.Millisecond, 0, 0)
			checkAgreement(t, res, n, "e1")
			// Paper §3.3.3 case 1: (N−1) Exception + (N−1)² Suspended +
			// (N−1) Commit = (N+1)(N−1) messages.
			if got, want := res.metrics.Get("msg.total"), int64((n+1)*(n-1)); got != want {
				t.Errorf("messages = %d, want %d\n%s", got, want, res.metrics)
			}
			if res.metrics.Get("msg.Exception") != int64(n-1) {
				t.Errorf("exceptions = %d", res.metrics.Get("msg.Exception"))
			}
			if res.metrics.Get("msg.Suspended") != int64((n-1)*(n-1)) {
				t.Errorf("suspendeds = %d", res.metrics.Get("msg.Suspended"))
			}
			if res.metrics.Get("msg.Commit") != int64(n-1) {
				t.Errorf("commits = %d", res.metrics.Get("msg.Commit"))
			}
			if res.resolveCalls != 1 {
				t.Errorf("resolution procedure ran %d times, want 1", res.resolveCalls)
			}
		})
	}
}

func TestCoordinatedAllRaise(t *testing.T) {
	for n := 2; n <= 6; n++ {
		n := n
		t.Run(fmt.Sprintf("N=%d", n), func(t *testing.T) {
			g := testGraph(t, n)
			raisers := make(map[string]except.ID, n)
			var ids []except.ID
			for i := 1; i <= n; i++ {
				id := except.ID(fmt.Sprintf("e%d", i))
				raisers[fmt.Sprintf("T%d", i)] = id
				ids = append(ids, id)
			}
			want, err := g.Resolve(ids...)
			if err != nil {
				t.Fatal(err)
			}
			res := runScenario(t, Coordinated{}, n, raisers, g,
				10*time.Millisecond, time.Millisecond, 0)
			checkAgreement(t, res, n, want)
			// Paper §3.3.3 case 2: N(N−1) Exception + (N−1) Commit =
			// (N+1)(N−1) — independent of the number of exceptions.
			if got, wantN := res.metrics.Get("msg.total"), int64((n+1)*(n-1)); got != wantN {
				t.Errorf("messages = %d, want %d\n%s", got, wantN, res.metrics)
			}
			if res.metrics.Get("msg.Suspended") != 0 {
				t.Errorf("unexpected suspendeds:\n%s", res.metrics)
			}
			if res.resolveCalls != 1 {
				t.Errorf("resolution procedure ran %d times, want 1", res.resolveCalls)
			}
		})
	}
}

func TestCoordinatedResolverIsMaxExceptional(t *testing.T) {
	// With raisers T1 and T3 out of 4 threads, T3 must be the resolver:
	// exactly one Commit broadcast, sent by T3.
	g := testGraph(t, 4)
	res := runScenario(t, Coordinated{}, 4,
		map[string]except.ID{"T1": "e1", "T3": "e3"}, g,
		time.Millisecond, 100*time.Microsecond, 0)
	want, _ := g.Resolve("e1", "e3")
	checkAgreement(t, res, 4, want)
	if res.metrics.Get("msg.Commit") != 3 {
		t.Fatalf("commit messages = %d, want 3 (one broadcast)", res.metrics.Get("msg.Commit"))
	}
	if res.resolveCalls != 1 {
		t.Fatalf("resolve calls = %d", res.resolveCalls)
	}
}

func TestCR86AllRaiseCounts(t *testing.T) {
	for n := 3; n <= 5; n++ {
		n := n
		t.Run(fmt.Sprintf("N=%d", n), func(t *testing.T) {
			g := testGraph(t, n)
			raisers := make(map[string]except.ID, n)
			var ids []except.ID
			for i := 1; i <= n; i++ {
				id := except.ID(fmt.Sprintf("e%d", i))
				raisers[fmt.Sprintf("T%d", i)] = id
				ids = append(ids, id)
			}
			want, _ := g.Resolve(ids...)
			res := runScenario(t, CR86{}, n, raisers, g,
				10*time.Millisecond, time.Millisecond, 0)
			checkAgreement(t, res, n, want)
			if got, wantC := res.metrics.Get("msg.Exception"), int64(n*(n-1)); got != wantC {
				t.Errorf("exceptions = %d, want %d", got, wantC)
			}
			if got, wantC := res.metrics.Get("msg.Relay"), int64(n*(n-1)*(n-2)); got != wantC {
				t.Errorf("relays = %d, want %d (the O(N³) term)", got, wantC)
			}
			if got, wantC := res.metrics.Get("msg.Propose"), int64(n*(n-1)); got != wantC {
				t.Errorf("proposes = %d, want %d", got, wantC)
			}
			// Resolution runs per relay plus one verification per thread.
			if got, wantC := res.resolveCalls, int64(n*((n-1)*(n-2)+1)); got != wantC {
				t.Errorf("resolve calls = %d, want %d", got, wantC)
			}
		})
	}
}

func TestCR86SingleRaiser(t *testing.T) {
	g := testGraph(t, 4)
	res := runScenario(t, CR86{}, 4,
		map[string]except.ID{"T2": "e2"}, g,
		time.Millisecond, 0, 0)
	checkAgreement(t, res, 4, "e2")
}

func TestCR86TwoThreadsNoRelays(t *testing.T) {
	g := testGraph(t, 2)
	res := runScenario(t, CR86{}, 2,
		map[string]except.ID{"T1": "e1"}, g,
		time.Millisecond, 0, 0)
	checkAgreement(t, res, 2, "e1")
	if res.metrics.Get("msg.Relay") != 0 {
		t.Fatalf("relays with N=2: %d", res.metrics.Get("msg.Relay"))
	}
}

func TestR96Counts(t *testing.T) {
	for n := 2; n <= 5; n++ {
		n := n
		t.Run(fmt.Sprintf("N=%d", n), func(t *testing.T) {
			g := testGraph(t, n)
			raisers := map[string]except.ID{"T1": "e1"}
			res := runScenario(t, R96{}, n, raisers, g,
				10*time.Millisecond, time.Millisecond, 0)
			checkAgreement(t, res, n, "e1")
			// Three all-to-all rounds: 3N(N−1) messages.
			if got, want := res.metrics.Get("msg.total"), int64(3*n*(n-1)); got != want {
				t.Errorf("messages = %d, want %d\n%s", got, want, res.metrics)
			}
			// Every thread resolves.
			if res.resolveCalls != int64(n) {
				t.Errorf("resolve calls = %d, want %d", res.resolveCalls, n)
			}
		})
	}
}

func TestProtocolsAgreeProperty(t *testing.T) {
	protos := []Protocol{Coordinated{}, CR86{}, R96{}}
	g := testGraph(t, 5)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4) // 2..5 threads
		raiserCount := 1 + rng.Intn(n)
		perm := rng.Perm(n)
		raisers := make(map[string]except.ID)
		var ids []except.ID
		for i := 0; i < raiserCount; i++ {
			tid := fmt.Sprintf("T%d", perm[i]+1)
			eid := except.ID(fmt.Sprintf("e%d", rng.Intn(5)+1))
			raisers[tid] = eid
			ids = append(ids, eid)
		}
		want, err := g.Resolve(ids...)
		if err != nil {
			return false
		}
		for _, proto := range protos {
			res := runScenario(t, proto, n, raisers, g,
				time.Duration(rng.Intn(10)+1)*time.Millisecond,
				time.Duration(rng.Intn(3))*time.Millisecond, 0)
			if len(res.outcomes) != n {
				return false
			}
			for _, out := range res.outcomes {
				if out.Resolved != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCoordinatedLatencySensitivity(t *testing.T) {
	// Virtual elapsed time must grow linearly with Tmmax: the all-raise
	// critical path is Exception (1 hop) + Commit (1 hop).
	g := testGraph(t, 3)
	raisers := map[string]except.ID{"T1": "e1", "T2": "e2", "T3": "e3"}
	var prev time.Duration
	for i, lat := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond} {
		res := runScenario(t, Coordinated{}, 3, raisers, g, lat, 0, 0)
		if i > 0 && res.elapsed-prev != 2*100*time.Millisecond {
			t.Fatalf("elapsed step = %v, want 200ms (2 hops)", res.elapsed-prev)
		}
		prev = res.elapsed
	}
}

func TestResolveCostOnCriticalPath(t *testing.T) {
	// Coordinated pays Treso once; CR86 pays it on every relay plus the
	// verification, so its elapsed time must grow ~3x faster at N=3.
	g := testGraph(t, 3)
	raisers := map[string]except.ID{"T1": "e1", "T2": "e2", "T3": "e3"}
	const lat = 10 * time.Millisecond
	tresLo, tresHi := 100*time.Millisecond, 300*time.Millisecond

	slope := func(p Protocol) time.Duration {
		lo := runScenario(t, p, 3, raisers, g, lat, time.Millisecond, tresLo)
		hi := runScenario(t, p, 3, raisers, g, lat, time.Millisecond, tresHi)
		return hi.elapsed - lo.elapsed
	}
	ours, cr := slope(Coordinated{}), slope(CR86{})
	if ours != tresHi-tresLo {
		t.Fatalf("coordinated Treso slope = %v, want %v", ours, tresHi-tresLo)
	}
	if cr < 2*ours {
		t.Fatalf("cr86 Treso slope = %v, want at least 2x coordinated (%v)", cr, ours)
	}
}

func TestValidateRejectsWrongTags(t *testing.T) {
	inst := Coordinated{}.NewInstance(Config{
		Action: "A#1", Self: "T1", Peers: []string{"T1", "T2"}, Round: 1,
		Send:    func(string, protocol.Message) {},
		Resolve: func([]except.Raised) except.ID { return "x" },
	})
	if _, err := inst.Deliver("T2", wrongRoundMsg()); err == nil {
		t.Fatal("wrong round accepted")
	}
	if _, err := inst.Deliver("T2", wrongActionMsg()); err == nil {
		t.Fatal("wrong action accepted")
	}
	if _, err := inst.Deliver("T2", unexpectedMsg()); err == nil {
		t.Fatal("unexpected type accepted")
	}
}

func TestThreadOrdering(t *testing.T) {
	ids := []string{"T10", "T2", "T1", "T3"}
	SortThreads(ids)
	want := []string{"T1", "T2", "T3", "T10"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("order = %v", ids)
		}
	}
	if !ThreadLess("T2", "T10") {
		t.Fatal("T2 must precede T10")
	}
}
