package resolve

import (
	"fmt"
	"math/rand"
	"testing"

	"caaction/internal/except"
	"caaction/internal/protocol"
)

// pumpNet is a minimal synchronous message fabric for driving protocol
// instances without a transport: sends enqueue, pump delivers FIFO until
// quiescent. Deterministic by construction.
type pumpNet struct {
	t         *testing.T
	instances map[string]Instance
	queue     []pumpMsg
	decisions map[string]Outcome
}

type pumpMsg struct {
	from, to string
	msg      protocol.Message
}

func newPumpNet(t *testing.T, p Protocol, g *except.Graph, threads []string) *pumpNet {
	n := &pumpNet{
		t:         t,
		instances: make(map[string]Instance, len(threads)),
		decisions: make(map[string]Outcome, len(threads)),
	}
	for _, th := range threads {
		th := th
		n.instances[th] = p.NewInstance(Config{
			Action: "equiv",
			Self:   th,
			Peers:  threads,
			Send: func(to string, msg protocol.Message) {
				n.queue = append(n.queue, pumpMsg{from: th, to: to, msg: msg})
			},
			Resolve: func(raised []except.Raised) except.ID {
				id, err := g.ResolveRaised(raised)
				if err != nil {
					t.Fatalf("resolve: %v", err)
				}
				return id
			},
		})
	}
	return n
}

func (n *pumpNet) raise(th string, exc except.ID) {
	out := n.instances[th].Raise(except.Raised{ID: exc, Origin: th})
	n.observe(th, out)
}

func (n *pumpNet) pump() {
	for len(n.queue) > 0 {
		m := n.queue[0]
		n.queue = n.queue[1:]
		out, err := n.instances[m.to].Deliver(m.from, m.msg)
		if err != nil {
			n.t.Fatalf("deliver %T to %s: %v", m.msg, m.to, err)
		}
		n.observe(m.to, out)
	}
}

func (n *pumpNet) observe(th string, out Outcome) {
	if out.Decided {
		if _, ok := n.decisions[th]; !ok {
			n.decisions[th] = out
		}
	}
}

// randomGraph builds a seeded random exception DAG: a layer of primitives,
// then levels of resolving exceptions covering random lower-level subsets,
// under an automatic universal root.
func randomGraph(rng *rand.Rand) *except.Graph {
	nPrims := 2 + rng.Intn(5)
	var lower []except.ID
	b := except.NewBuilder("random")
	for i := 0; i < nPrims; i++ {
		id := except.ID(fmt.Sprintf("p%d", i))
		b.Node(id)
		lower = append(lower, id)
	}
	all := append([]except.ID(nil), lower...)
	levels := rng.Intn(3)
	for l := 0; l < levels; l++ {
		var cur []except.ID
		nNodes := 1 + rng.Intn(3)
		for i := 0; i < nNodes; i++ {
			if len(lower) < 2 {
				break
			}
			id := except.ID(fmt.Sprintf("r%d_%d", l, i))
			k := 2 + rng.Intn(len(lower)-1)
			perm := rng.Perm(len(lower))[:k]
			children := make([]except.ID, k)
			for j, pi := range perm {
				children[j] = lower[pi]
			}
			b.Cover(id, children...)
			cur = append(cur, id)
			all = append(all, id)
		}
		if len(cur) > 0 {
			lower = cur
		}
	}
	g, err := b.WithUniversal().Build()
	if err != nil {
		panic(fmt.Sprintf("random graph invalid: %v", err))
	}
	return g
}

// TestProtocolEquivalenceRandomGraphs is the property test: over 500 seeded
// random graphs and random concurrent raise-sets, the three resolution
// protocols must all decide, at every thread, on exactly the cover-set
// resolution of the raised set — identical across protocols and identical
// to Graph.Resolve.
func TestProtocolEquivalenceRandomGraphs(t *testing.T) {
	protocols := []Protocol{Coordinated{}, CR86{}, R96{}}
	for seed := int64(0); seed < 500; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := randomGraph(rng)
			nodes := g.Nodes()

			nThreads := 2 + rng.Intn(4)
			threads := make([]string, nThreads)
			for i := range threads {
				threads[i] = fmt.Sprintf("T%d", i+1)
			}
			SortThreads(threads)

			nRaisers := 1 + rng.Intn(nThreads)
			raises := make(map[string]except.ID, nRaisers)
			var raisedIDs []except.ID
			for _, i := range rng.Perm(nThreads)[:nRaisers] {
				exc := nodes[rng.Intn(len(nodes))]
				raises[threads[i]] = exc
				raisedIDs = append(raisedIDs, exc)
			}
			want, err := g.Resolve(raisedIDs...)
			if err != nil {
				t.Fatal(err)
			}

			for _, p := range protocols {
				net := newPumpNet(t, p, g, threads)
				// All raises happen before any delivery: the concurrent
				// worst case every protocol must agree on.
				for _, th := range threads {
					if exc, ok := raises[th]; ok {
						net.raise(th, exc)
					}
				}
				net.pump()
				if len(net.decisions) != nThreads {
					t.Fatalf("%s: %d/%d threads decided (raises %v)",
						p.Name(), len(net.decisions), nThreads, raises)
				}
				for th, out := range net.decisions {
					if out.Resolved != want {
						t.Fatalf("%s: thread %s resolved %q, want %q (raised %v, graph:\n%s)",
							p.Name(), th, out.Resolved, want, raisedIDs, g)
					}
					if got := except.IDsOf(out.Raised); fmt.Sprint(got) != fmt.Sprint(except.IDsOf(toRaised(raises))) {
						t.Fatalf("%s: thread %s saw raised set %v, want %v", p.Name(), th, got, raisedIDs)
					}
				}
			}
		})
	}
}

func toRaised(m map[string]except.ID) []except.Raised {
	var out []except.Raised
	for th, id := range m {
		out = append(out, except.Raised{ID: id, Origin: th})
	}
	return out
}
