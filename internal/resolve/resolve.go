// Package resolve implements the distributed concurrent-exception resolution
// protocols compared in the paper:
//
//   - Coordinated — the paper's own algorithm (§3.3.2): raisers broadcast
//     Exception, informed threads broadcast Suspended, and exactly one
//     thread — the one with the largest identifier among those in the
//     exceptional state — performs resolution and broadcasts Commit. Message
//     count per resolution: (N+1)(N−1), independent of how many exceptions
//     were raised concurrently.
//
//   - CR86 — a message-level model of Campbell & Randell's 1986 scheme as
//     the paper models it for its comparison experiments: every first-hand
//     exception is relayed by each receiver to all other threads, the
//     resolution procedure runs at every thread on every relay received, and
//     an agreement round confirms the result. O(N³) messages.
//
//   - R96 — a model of the authors' earlier algorithm (Romanovsky et al.
//     1996): three all-to-all rounds (exceptions/suspensions, proposals,
//     acknowledgements) with every thread resolving, 3N(N−1) messages.
//
// A protocol instance handles exactly one resolution round of one action
// instance; the runtime creates a fresh instance per round. Instances are
// confined to their owning thread's event loop and are not safe for
// concurrent use.
package resolve

import (
	"errors"
	"fmt"
	"sort"

	"caaction/internal/except"
	"caaction/internal/protocol"
)

// State is a participating thread's state as seen by the resolution
// protocols (§3.3.1).
type State int

// Thread states.
const (
	// StateNormal is N: executing its normal computation.
	StateNormal State = iota + 1
	// StateExceptional is X: the thread raised an exception this round.
	StateExceptional
	// StateSuspended is S: the thread halted normal computation because of
	// exceptions raised elsewhere.
	StateSuspended
)

func (s State) String() string {
	switch s {
	case StateNormal:
		return "N"
	case StateExceptional:
		return "X"
	case StateSuspended:
		return "S"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config parameterises one protocol instance.
type Config struct {
	// Action is the action-instance identifier stamped on messages.
	Action string
	// Self is this thread's identifier.
	Self string
	// Peers lists every participating thread including Self.
	Peers []string
	// Round is the resolution round this instance serves.
	Round int
	// Send transmits a message to one peer; supplied by the runtime.
	Send func(to string, msg protocol.Message)
	// Resolve runs the resolution procedure over the collected exceptions,
	// returning the resolving exception. The runtime's implementation
	// consults the action's exception graph and models the paper's Treso
	// cost; protocols call it once or many times depending on their design,
	// which is exactly what experiment E2 measures.
	Resolve func(raised []except.Raised) except.ID
}

// Outcome reports the externally visible effects of feeding an instance one
// event.
type Outcome struct {
	// Informed is true when the thread has just learnt of remote trouble
	// and must halt its normal computation (N → S) if still running.
	Informed bool
	// Decided is true when the resolving exception is known locally;
	// Resolved and Raised are then valid.
	Decided  bool
	Resolved except.ID
	// Raised is the set of concurrently raised exceptions covered by
	// Resolved (available to handlers for diagnosis).
	Raised []except.Raised
}

// Instance is one thread's engine for one resolution round.
type Instance interface {
	// Raise processes a local raise by this thread (state → X).
	Raise(exc except.Raised) Outcome
	// Deliver processes a protocol message for this round.
	Deliver(from string, msg protocol.Message) (Outcome, error)
	// State reports the local thread's protocol state.
	State() State
}

// Protocol manufactures per-round instances.
type Protocol interface {
	// Name identifies the protocol in metrics and experiment output.
	Name() string
	// NewInstance returns an engine for one round; cfg.Send and cfg.Resolve
	// must be non-nil.
	NewInstance(cfg Config) Instance
}

// Errors returned by Deliver.
var (
	ErrWrongRound  = errors.New("resolve: message for a different round")
	ErrWrongAction = errors.New("resolve: message for a different action")
	ErrUnexpected  = errors.New("resolve: unexpected message type")
)

// ThreadLess orders thread identifiers the way the paper orders threads
// ("thread names and the lexicographic ordering could be used"): shorter
// names first, then lexicographic, so T2 < T10 as intended with numeric
// suffixes.
func ThreadLess(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// SortThreads sorts thread identifiers by ThreadLess.
func SortThreads(ids []string) {
	sort.Slice(ids, func(i, j int) bool { return ThreadLess(ids[i], ids[j]) })
}

// broadcast sends msg to every peer except self.
func broadcast(cfg *Config, msg protocol.Message) {
	for _, p := range cfg.Peers {
		if p != cfg.Self {
			cfg.Send(p, msg)
		}
	}
}

// validate checks action/round tags common to all protocol messages.
func validate(cfg *Config, action string, round int) error {
	if action != cfg.Action {
		return fmt.Errorf("%w: got %q want %q", ErrWrongAction, action, cfg.Action)
	}
	if round != cfg.Round {
		return fmt.Errorf("%w: got %d want %d", ErrWrongRound, round, cfg.Round)
	}
	return nil
}
