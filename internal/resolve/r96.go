package resolve

import (
	"fmt"

	"caaction/internal/except"
	"caaction/internal/protocol"
)

// R96 models the authors' earlier algorithm (Romanovsky, Xu & Randell 1996)
// as three all-to-all rounds:
//
//  1. every thread broadcasts its status (Exception from raisers, Suspended
//     from informed threads);
//  2. once a thread knows every status it runs the resolution procedure
//     itself and broadcasts the result as a proposal;
//  3. when all proposals agree the thread broadcasts an acknowledgement and
//     decides once every acknowledgement is in.
//
// This costs 3N(N−1) messages per resolution level (the paper's
// nmax·3N(N−1) bound) and runs the resolution procedure at every thread —
// the redundancy the paper's Coordinated algorithm eliminates by electing a
// single resolver.
type R96 struct{}

var _ Protocol = R96{}

// Name implements Protocol.
func (R96) Name() string { return "r96" }

// NewInstance implements Protocol.
func (R96) NewInstance(cfg Config) Instance {
	return &r96Instance{
		cfg:      cfg,
		state:    StateNormal,
		entries:  make(map[string]entry),
		proposes: make(map[string]except.ID),
		acks:     make(map[string]bool),
	}
}

type r96Instance struct {
	cfg      Config
	state    State
	entries  map[string]entry
	proposes map[string]except.ID
	acks     map[string]bool
	proposal except.ID
	proposed bool
	acked    bool
	decided  bool
	out      Outcome
}

var _ Instance = (*r96Instance)(nil)

func (c *r96Instance) State() State { return c.state }

func (c *r96Instance) Raise(exc except.Raised) Outcome {
	c.state = StateExceptional
	c.entries[c.cfg.Self] = entry{state: StateExceptional, exc: exc}
	broadcast(&c.cfg, protocol.Exception{
		Action: c.cfg.Action, From: c.cfg.Self, Round: c.cfg.Round, Exc: exc,
	})
	c.maybePropose()
	return c.outcome(false)
}

func (c *r96Instance) Deliver(from string, msg protocol.Message) (Outcome, error) {
	switch m := msg.(type) {
	case protocol.Exception:
		if err := validate(&c.cfg, m.Action, m.Round); err != nil {
			return Outcome{}, err
		}
		c.entries[from] = entry{state: StateExceptional, exc: m.Exc}
		informed := c.suspendIfNormal()
		c.maybePropose()
		return c.outcome(informed), nil

	case protocol.Suspended:
		if err := validate(&c.cfg, m.Action, m.Round); err != nil {
			return Outcome{}, err
		}
		c.entries[from] = entry{state: StateSuspended}
		informed := c.suspendIfNormal()
		c.maybePropose()
		return c.outcome(informed), nil

	case protocol.Propose:
		if err := validate(&c.cfg, m.Action, m.Round); err != nil {
			return Outcome{}, err
		}
		c.proposes[from] = m.Resolved
		c.maybeAck()
		return c.outcome(false), nil

	case protocol.Ack:
		if err := validate(&c.cfg, m.Action, m.Round); err != nil {
			return Outcome{}, err
		}
		c.acks[from] = true
		c.maybeDecide()
		return c.outcome(false), nil

	default:
		return Outcome{}, fmt.Errorf("%w: %T", ErrUnexpected, msg)
	}
}

func (c *r96Instance) suspendIfNormal() bool {
	if c.state != StateNormal {
		return false
	}
	c.state = StateSuspended
	c.entries[c.cfg.Self] = entry{state: StateSuspended}
	broadcast(&c.cfg, protocol.Suspended{
		Action: c.cfg.Action, From: c.cfg.Self, Round: c.cfg.Round,
	})
	return true
}

func (c *r96Instance) maybePropose() {
	if c.proposed || len(c.entries) != len(c.cfg.Peers) {
		return
	}
	c.proposal = c.cfg.Resolve(c.raisedSet())
	c.proposed = true
	c.proposes[c.cfg.Self] = c.proposal
	broadcast(&c.cfg, protocol.Propose{
		Action: c.cfg.Action, From: c.cfg.Self, Round: c.cfg.Round, Resolved: c.proposal,
	})
	c.maybeAck()
}

func (c *r96Instance) maybeAck() {
	if c.acked || !c.proposed || len(c.proposes) != len(c.cfg.Peers) {
		return
	}
	c.acked = true
	c.acks[c.cfg.Self] = true
	broadcast(&c.cfg, protocol.Ack{
		Action: c.cfg.Action, From: c.cfg.Self, Round: c.cfg.Round,
	})
	c.maybeDecide()
}

func (c *r96Instance) maybeDecide() {
	if c.decided || !c.acked || len(c.acks) != len(c.cfg.Peers) {
		return
	}
	resolved := c.proposal
	for _, p := range c.proposes {
		if p != resolved {
			resolved = except.Universal
			break
		}
	}
	c.decided = true
	c.out = Outcome{Decided: true, Resolved: resolved, Raised: c.raisedSet()}
}

func (c *r96Instance) raisedSet() []except.Raised {
	var out []except.Raised
	for _, id := range c.cfg.Peers {
		if e, ok := c.entries[id]; ok && e.state == StateExceptional {
			out = append(out, e.exc)
		}
	}
	return out
}

func (c *r96Instance) outcome(informed bool) Outcome {
	out := c.out
	out.Informed = informed
	if !c.decided {
		out = Outcome{Informed: informed}
	}
	return out
}
