package resolve

import (
	"fmt"

	"caaction/internal/except"
	"caaction/internal/protocol"
)

// Coordinated is the paper's resolution algorithm (§3.3.2):
//
//   - a raiser moves to state X and broadcasts Exception;
//   - a thread informed of remote exceptions while in state N moves to S and
//     broadcasts Suspended;
//   - once a thread holds the exception-or-suspended status of every
//     participant and it is the thread with the largest identifier among
//     those in state X, it alone runs the resolution procedure and
//     broadcasts Commit;
//   - everyone else decides upon receiving Commit.
//
// The message count is (N+1)(N−1) per resolution regardless of how many
// exceptions were raised concurrently (Theorem 2), and the resolution
// procedure runs exactly once.
type Coordinated struct{}

var _ Protocol = Coordinated{}

// Name implements Protocol.
func (Coordinated) Name() string { return "coordinated" }

// NewInstance implements Protocol.
func (Coordinated) NewInstance(cfg Config) Instance {
	return &coordInstance{cfg: cfg, state: StateNormal, entries: make(map[string]entry)}
}

// entry is one participant's contribution to the LE list (§3.3.1): either a
// raised exception (state X) or a suspension notice (state S).
type entry struct {
	state State
	exc   except.Raised
}

type coordInstance struct {
	cfg     Config
	state   State
	entries map[string]entry
	decided bool
	out     Outcome
}

var _ Instance = (*coordInstance)(nil)

func (c *coordInstance) State() State { return c.state }

func (c *coordInstance) Raise(exc except.Raised) Outcome {
	c.state = StateExceptional
	c.entries[c.cfg.Self] = entry{state: StateExceptional, exc: exc}
	broadcast(&c.cfg, protocol.Exception{
		Action: c.cfg.Action, From: c.cfg.Self, Round: c.cfg.Round, Exc: exc,
	})
	c.maybeResolve()
	return c.outcome(false)
}

func (c *coordInstance) Deliver(from string, msg protocol.Message) (Outcome, error) {
	switch m := msg.(type) {
	case protocol.Exception:
		if err := validate(&c.cfg, m.Action, m.Round); err != nil {
			return Outcome{}, err
		}
		c.entries[from] = entry{state: StateExceptional, exc: m.Exc}
		informed := c.suspendIfNormal()
		c.maybeResolve()
		return c.outcome(informed), nil

	case protocol.Suspended:
		if err := validate(&c.cfg, m.Action, m.Round); err != nil {
			return Outcome{}, err
		}
		c.entries[from] = entry{state: StateSuspended}
		informed := c.suspendIfNormal()
		c.maybeResolve()
		return c.outcome(informed), nil

	case protocol.Commit:
		if err := validate(&c.cfg, m.Action, m.Round); err != nil {
			return Outcome{}, err
		}
		if !c.decided {
			c.decided = true
			c.out = Outcome{Decided: true, Resolved: m.Resolved, Raised: m.Raised}
		}
		return c.outcome(false), nil

	default:
		return Outcome{}, fmt.Errorf("%w: %T", ErrUnexpected, msg)
	}
}

// suspendIfNormal implements the "if S(Ti) = N then suspend and broadcast
// Suspended" branch; it reports whether the thread was just informed.
func (c *coordInstance) suspendIfNormal() bool {
	if c.state != StateNormal {
		return false
	}
	c.state = StateSuspended
	c.entries[c.cfg.Self] = entry{state: StateSuspended}
	broadcast(&c.cfg, protocol.Suspended{
		Action: c.cfg.Action, From: c.cfg.Self, Round: c.cfg.Round,
	})
	return true
}

// maybeResolve implements the resolver guard: all participants accounted for
// and self is the largest-identified thread in state X.
func (c *coordInstance) maybeResolve() {
	if c.decided || len(c.entries) != len(c.cfg.Peers) || c.state != StateExceptional {
		return
	}
	for id, e := range c.entries {
		if e.state == StateExceptional && id != c.cfg.Self && ThreadLess(c.cfg.Self, id) {
			return // a larger-identified exceptional thread will resolve
		}
	}
	raised := c.raisedSet()
	resolved := c.cfg.Resolve(raised)
	c.decided = true
	c.out = Outcome{Decided: true, Resolved: resolved, Raised: raised}
	broadcast(&c.cfg, protocol.Commit{
		Action: c.cfg.Action, From: c.cfg.Self, Round: c.cfg.Round,
		Resolved: resolved, Raised: raised,
	})
}

// raisedSet collects the raised exceptions in deterministic (thread) order.
func (c *coordInstance) raisedSet() []except.Raised {
	var out []except.Raised
	for _, id := range c.cfg.Peers {
		if e, ok := c.entries[id]; ok && e.state == StateExceptional {
			out = append(out, e.exc)
		}
	}
	return out
}

func (c *coordInstance) outcome(informed bool) Outcome {
	out := c.out
	out.Informed = informed
	if !c.decided {
		out = Outcome{Informed: informed}
	}
	return out
}
