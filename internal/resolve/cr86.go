package resolve

import (
	"fmt"

	"caaction/internal/except"
	"caaction/internal/protocol"
)

// CR86 models Campbell & Randell's 1986 resolution scheme at the message
// level, the way the paper models it for its comparison experiments (§5.3):
//
//   - raisers broadcast Exception; threads informed while normal broadcast
//     Suspended (the conversation must still account for every
//     participant);
//   - every thread that receives a first-hand Exception relays it to all
//     other threads (except itself and the raiser) — there is no
//     distinguished resolver, so total knowledge is built redundantly;
//   - the resolution procedure runs at every thread on every relay
//     received, and once the thread has full knowledge it broadcasts its
//     proposal; a final verification resolution runs when all proposals
//     are in.
//
// For N threads all raising concurrently this costs N(N−1) Exception +
// N(N−1)(N−2) Relay + N(N−1) Propose messages — the O(N³) behaviour the
// paper attributes to the scheme — and invokes the resolution procedure
// (N−1)(N−2)+1 times per thread, against exactly once system-wide for
// Coordinated.
type CR86 struct{}

var _ Protocol = CR86{}

// Name implements Protocol.
func (CR86) Name() string { return "cr86" }

// NewInstance implements Protocol.
func (CR86) NewInstance(cfg Config) Instance {
	return &cr86Instance{
		cfg:      cfg,
		state:    StateNormal,
		entries:  make(map[string]entry),
		relays:   make(map[string]map[string]bool),
		proposes: make(map[string]except.ID),
	}
}

type cr86Instance struct {
	cfg      Config
	state    State
	entries  map[string]entry           // per-thread X/S status
	relays   map[string]map[string]bool // exception origin -> relayers seen
	proposes map[string]except.ID
	proposal except.ID
	haveProp bool // a per-relay resolution result is available
	proposed bool
	decided  bool
	out      Outcome
}

var _ Instance = (*cr86Instance)(nil)

func (c *cr86Instance) State() State { return c.state }

func (c *cr86Instance) Raise(exc except.Raised) Outcome {
	c.state = StateExceptional
	c.entries[c.cfg.Self] = entry{state: StateExceptional, exc: exc}
	broadcast(&c.cfg, protocol.Exception{
		Action: c.cfg.Action, From: c.cfg.Self, Round: c.cfg.Round, Exc: exc,
	})
	c.maybePropose()
	return c.outcome(false)
}

func (c *cr86Instance) Deliver(from string, msg protocol.Message) (Outcome, error) {
	switch m := msg.(type) {
	case protocol.Exception:
		if err := validate(&c.cfg, m.Action, m.Round); err != nil {
			return Outcome{}, err
		}
		c.entries[from] = entry{state: StateExceptional, exc: m.Exc}
		// First-hand receipt: relay to everyone except self and raiser.
		for _, p := range c.cfg.Peers {
			if p != c.cfg.Self && p != from {
				c.cfg.Send(p, protocol.Relay{
					Action: c.cfg.Action, From: c.cfg.Self, Round: c.cfg.Round, Exc: m.Exc,
				})
			}
		}
		informed := c.suspendIfNormal()
		c.maybePropose()
		return c.outcome(informed), nil

	case protocol.Relay:
		if err := validate(&c.cfg, m.Action, m.Round); err != nil {
			return Outcome{}, err
		}
		origin := m.Exc.Origin
		if c.relays[origin] == nil {
			c.relays[origin] = make(map[string]bool)
		}
		c.relays[origin][from] = true
		// A relay can outrun the first-hand copy; the exception content
		// still counts as knowledge.
		if _, ok := c.entries[origin]; !ok {
			c.entries[origin] = entry{state: StateExceptional, exc: m.Exc}
		}
		// CR-86 has no distinguished resolver: the procedure reruns on
		// every relay.
		c.proposal = c.cfg.Resolve(c.raisedSet())
		c.haveProp = true
		informed := c.suspendIfNormal()
		c.maybePropose()
		return c.outcome(informed), nil

	case protocol.Suspended:
		if err := validate(&c.cfg, m.Action, m.Round); err != nil {
			return Outcome{}, err
		}
		c.entries[from] = entry{state: StateSuspended}
		informed := c.suspendIfNormal()
		c.maybePropose()
		return c.outcome(informed), nil

	case protocol.Propose:
		if err := validate(&c.cfg, m.Action, m.Round); err != nil {
			return Outcome{}, err
		}
		c.proposes[from] = m.Resolved
		c.maybeDecide()
		return c.outcome(false), nil

	default:
		return Outcome{}, fmt.Errorf("%w: %T", ErrUnexpected, msg)
	}
}

func (c *cr86Instance) suspendIfNormal() bool {
	if c.state != StateNormal {
		return false
	}
	c.state = StateSuspended
	c.entries[c.cfg.Self] = entry{state: StateSuspended}
	broadcast(&c.cfg, protocol.Suspended{
		Action: c.cfg.Action, From: c.cfg.Self, Round: c.cfg.Round,
	})
	return true
}

// maybePropose fires once phase 1 is complete: every participant accounted
// for, and every expected relay received (for each foreign raiser r, a relay
// from every thread other than self and r).
func (c *cr86Instance) maybePropose() {
	if c.proposed || len(c.entries) != len(c.cfg.Peers) {
		return
	}
	n := len(c.cfg.Peers)
	for id, e := range c.entries {
		if e.state != StateExceptional || id == c.cfg.Self {
			continue
		}
		if len(c.relays[id]) < n-2 {
			return
		}
	}
	if !c.haveProp {
		// No relays were due (for example N == 2, or a sole raiser with
		// no other participants to relay): resolve now.
		c.proposal = c.cfg.Resolve(c.raisedSet())
		c.haveProp = true
	}
	c.proposed = true
	c.proposes[c.cfg.Self] = c.proposal
	broadcast(&c.cfg, protocol.Propose{
		Action: c.cfg.Action, From: c.cfg.Self, Round: c.cfg.Round, Resolved: c.proposal,
	})
	c.maybeDecide()
}

// maybeDecide fires once every proposal is in: a final verification
// resolution confirms agreement.
func (c *cr86Instance) maybeDecide() {
	if c.decided || !c.proposed || len(c.proposes) != len(c.cfg.Peers) {
		return
	}
	raised := c.raisedSet()
	verified := c.cfg.Resolve(raised)
	for _, p := range c.proposes {
		if p != verified {
			// Deterministic resolution over identical knowledge cannot
			// disagree; treat divergence as corruption and escalate.
			verified = except.Universal
			break
		}
	}
	c.decided = true
	c.out = Outcome{Decided: true, Resolved: verified, Raised: raised}
}

func (c *cr86Instance) raisedSet() []except.Raised {
	var out []except.Raised
	for _, id := range c.cfg.Peers {
		if e, ok := c.entries[id]; ok && e.state == StateExceptional {
			out = append(out, e.exc)
		}
	}
	return out
}

func (c *cr86Instance) outcome(informed bool) Outcome {
	out := c.out
	out.Informed = informed
	if !c.decided {
		out = Outcome{Informed: informed}
	}
	return out
}
