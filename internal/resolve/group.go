package resolve

import (
	"fmt"

	"caaction/internal/except"
	"caaction/internal/protocol"
)

// CoordinatedGroup is the fault-tolerance extension the paper sketches at
// the end of §3.3.3: instead of a single resolver, the K largest-identified
// threads among those in state X each perform resolution and broadcast
// Commit, so the resolution survives up to K−1 resolver crashes. Receivers
// decide on the first Commit; since resolution is deterministic over
// identical knowledge, all Commits agree.
//
// The cost is the predicted constant factor: for N concurrent raisers the
// message count grows from (N+1)(N−1) to (N+K)(N−1), and the resolution
// procedure runs min(K, |X|) times instead of once.
//
// CoordinatedGroup{K: 1} behaves exactly like Coordinated.
type CoordinatedGroup struct {
	// K is the resolver-group size; values below 1 are treated as 1.
	K int
}

var _ Protocol = CoordinatedGroup{}

// Name implements Protocol.
func (g CoordinatedGroup) Name() string { return fmt.Sprintf("coordinated-group-%d", g.size()) }

func (g CoordinatedGroup) size() int {
	if g.K < 1 {
		return 1
	}
	return g.K
}

// NewInstance implements Protocol.
func (g CoordinatedGroup) NewInstance(cfg Config) Instance {
	return &groupInstance{
		cfg:     cfg,
		k:       g.size(),
		state:   StateNormal,
		entries: make(map[string]entry),
	}
}

type groupInstance struct {
	cfg     Config
	k       int
	state   State
	entries map[string]entry
	decided bool
	out     Outcome
}

var _ Instance = (*groupInstance)(nil)

func (c *groupInstance) State() State { return c.state }

func (c *groupInstance) Raise(exc except.Raised) Outcome {
	c.state = StateExceptional
	c.entries[c.cfg.Self] = entry{state: StateExceptional, exc: exc}
	broadcast(&c.cfg, protocol.Exception{
		Action: c.cfg.Action, From: c.cfg.Self, Round: c.cfg.Round, Exc: exc,
	})
	c.maybeResolve()
	return c.outcome(false)
}

func (c *groupInstance) Deliver(from string, msg protocol.Message) (Outcome, error) {
	switch m := msg.(type) {
	case protocol.Exception:
		if err := validate(&c.cfg, m.Action, m.Round); err != nil {
			return Outcome{}, err
		}
		c.entries[from] = entry{state: StateExceptional, exc: m.Exc}
		informed := c.suspendIfNormal()
		c.maybeResolve()
		return c.outcome(informed), nil

	case protocol.Suspended:
		if err := validate(&c.cfg, m.Action, m.Round); err != nil {
			return Outcome{}, err
		}
		c.entries[from] = entry{state: StateSuspended}
		informed := c.suspendIfNormal()
		c.maybeResolve()
		return c.outcome(informed), nil

	case protocol.Commit:
		if err := validate(&c.cfg, m.Action, m.Round); err != nil {
			return Outcome{}, err
		}
		if !c.decided {
			c.decided = true
			c.out = Outcome{Decided: true, Resolved: m.Resolved, Raised: m.Raised}
		}
		return c.outcome(false), nil

	default:
		return Outcome{}, fmt.Errorf("%w: %T", ErrUnexpected, msg)
	}
}

func (c *groupInstance) suspendIfNormal() bool {
	if c.state != StateNormal {
		return false
	}
	c.state = StateSuspended
	c.entries[c.cfg.Self] = entry{state: StateSuspended}
	broadcast(&c.cfg, protocol.Suspended{
		Action: c.cfg.Action, From: c.cfg.Self, Round: c.cfg.Round,
	})
	return true
}

// maybeResolve fires when every participant is accounted for and this
// thread is one of the K largest-identified exceptional threads.
func (c *groupInstance) maybeResolve() {
	if c.decided || len(c.entries) != len(c.cfg.Peers) || c.state != StateExceptional {
		return
	}
	larger := 0
	for id, e := range c.entries {
		if e.state == StateExceptional && id != c.cfg.Self && ThreadLess(c.cfg.Self, id) {
			larger++
		}
	}
	if larger >= c.k {
		return // not in the resolver group
	}
	raised := c.raisedSet()
	resolved := c.cfg.Resolve(raised)
	c.decided = true
	c.out = Outcome{Decided: true, Resolved: resolved, Raised: raised}
	broadcast(&c.cfg, protocol.Commit{
		Action: c.cfg.Action, From: c.cfg.Self, Round: c.cfg.Round,
		Resolved: resolved, Raised: raised,
	})
}

func (c *groupInstance) raisedSet() []except.Raised {
	var out []except.Raised
	for _, id := range c.cfg.Peers {
		if e, ok := c.entries[id]; ok && e.state == StateExceptional {
			out = append(out, e.exc)
		}
	}
	return out
}

func (c *groupInstance) outcome(informed bool) Outcome {
	out := c.out
	out.Informed = informed
	if !c.decided {
		out = Outcome{Informed: informed}
	}
	return out
}
