package resolve

import (
	"fmt"
	"testing"
	"time"

	"caaction/internal/except"
)

func TestGroupSizeOneMatchesCoordinated(t *testing.T) {
	g := testGraph(t, 4)
	raisers := map[string]except.ID{"T1": "e1", "T3": "e3"}
	want, _ := g.Resolve("e1", "e3")

	single := runScenario(t, Coordinated{}, 4, raisers, g, time.Millisecond, 0, 0)
	grouped := runScenario(t, CoordinatedGroup{K: 1}, 4, raisers, g, time.Millisecond, 0, 0)
	checkAgreement(t, single, 4, want)
	checkAgreement(t, grouped, 4, want)
	if single.metrics.Get("msg.total") != grouped.metrics.Get("msg.total") {
		t.Fatalf("K=1 message count %d differs from Coordinated %d",
			grouped.metrics.Get("msg.total"), single.metrics.Get("msg.total"))
	}
	if grouped.resolveCalls != 1 {
		t.Fatalf("K=1 resolve calls = %d", grouped.resolveCalls)
	}
}

func TestGroupAllRaiseConstantFactor(t *testing.T) {
	// §3.3.3: the resolver-group extension "only contributes a constant
	// factor": (N+K)(N−1) messages instead of (N+1)(N−1), K resolutions.
	for _, k := range []int{2, 3} {
		for n := 3; n <= 6; n++ {
			g := testGraph(t, n)
			raisers := make(map[string]except.ID, n)
			var ids []except.ID
			for i := 1; i <= n; i++ {
				id := except.ID(fmt.Sprintf("e%d", i))
				raisers[fmt.Sprintf("T%d", i)] = id
				ids = append(ids, id)
			}
			want, _ := g.Resolve(ids...)
			res := runScenario(t, CoordinatedGroup{K: k}, n, raisers, g,
				10*time.Millisecond, time.Millisecond, 0)
			checkAgreement(t, res, n, want)
			if got, wantN := res.metrics.Get("msg.total"), int64((n+k)*(n-1)); got != wantN {
				t.Errorf("K=%d N=%d: messages = %d, want %d", k, n, got, wantN)
			}
			if res.resolveCalls != int64(k) {
				t.Errorf("K=%d N=%d: resolve calls = %d", k, n, res.resolveCalls)
			}
		}
	}
}

func TestGroupFewerRaisersThanK(t *testing.T) {
	// With one raiser and K=3, only the raiser is exceptional: the group
	// degenerates to a single resolver.
	g := testGraph(t, 5)
	res := runScenario(t, CoordinatedGroup{K: 3}, 5,
		map[string]except.ID{"T2": "e2"}, g, time.Millisecond, 0, 0)
	checkAgreement(t, res, 5, "e2")
	if res.resolveCalls != 1 {
		t.Fatalf("resolve calls = %d, want 1", res.resolveCalls)
	}
	if got := res.metrics.Get("msg.Commit"); got != 4 {
		t.Fatalf("commits = %d, want 4 (one broadcast)", got)
	}
}

func TestGroupResolversAreLargestExceptional(t *testing.T) {
	// Raisers T1, T2, T4 with K=2: the commits must come from T2 and T4.
	g := testGraph(t, 4)
	res := runScenario(t, CoordinatedGroup{K: 2}, 4,
		map[string]except.ID{"T1": "e1", "T2": "e2", "T4": "e4"}, g,
		5*time.Millisecond, time.Millisecond, 0)
	want, _ := g.Resolve("e1", "e2", "e4")
	checkAgreement(t, res, 4, want)
	if res.resolveCalls != 2 {
		t.Fatalf("resolve calls = %d, want 2", res.resolveCalls)
	}
	if got := res.metrics.Get("msg.Commit"); got != 6 {
		t.Fatalf("commits = %d, want 6 (two broadcasts)", got)
	}
}

func TestGroupDefaultKIsOne(t *testing.T) {
	if (CoordinatedGroup{}).Name() != "coordinated-group-1" {
		t.Fatalf("name = %q", CoordinatedGroup{}.Name())
	}
	if (CoordinatedGroup{K: -3}).Name() != "coordinated-group-1" {
		t.Fatalf("negative K not clamped")
	}
}

func TestProtocolsAgreeUnderJitterProperty(t *testing.T) {
	// FIFO is preserved under jittered latency (the transport clamps
	// per-pair delivery order), so all protocols must still agree.
	g := testGraph(t, 4)
	raisers := map[string]except.ID{"T1": "e1", "T2": "e2", "T4": "e4"}
	want, _ := g.Resolve("e1", "e2", "e4")
	for seed := int64(1); seed <= 10; seed++ {
		for _, proto := range []Protocol{Coordinated{}, CoordinatedGroup{K: 2}, CR86{}, R96{}} {
			res := runScenarioJitter(t, proto, 4, raisers, g, seed)
			checkAgreement(t, res, 4, want)
		}
	}
}
