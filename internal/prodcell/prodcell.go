// Package prodcell simulates the FZI industrial production cell (§4): feed
// belt, elevating rotary table, two-armed rotary robot, press and deposit
// belt, with the sensors and actuators a control program needs, plus
// injection of the §4 fault classes (motor stops, motors that never start,
// stuck sensors, lost plates).
//
// The plant is a passive, lazily evaluated state machine over a vclock:
// actuations start timed motions, sensor reads resolve device positions as
// of the current clock time, and safety invariants are checked on every
// actuation. Control programs poll sensors with their own timeouts, which is
// how the §4 exceptions (vm_stop, rm_nmove, s_stuck, ...) get detected and
// raised.
package prodcell

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"caaction/internal/except"
	"caaction/internal/trace"
	"caaction/internal/vclock"
)

// Axes of the cell's devices. Each axis moves between named positions.
const (
	AxisTableVert   = "table.vertical" // bottom, top
	AxisTableRot    = "table.rotation" // feed, robot
	AxisRobot       = "robot.rotation" // table, press1, press2, deposit
	AxisArm1        = "robot.arm1"     // retracted, extended
	AxisArm2        = "robot.arm2"     // retracted, extended
	AxisPress       = "press"          // open, mid, closed
	AxisFeedBelt    = "feed_belt"      // rest, delivered
	AxisDepositBelt = "deposit_belt"   // rest, delivered
)

// Blank locations.
const (
	LocFeedBelt    = "feed_belt"
	LocTable       = "table"
	LocArm1        = "arm1"
	LocArm2        = "arm2"
	LocPress       = "press"
	LocDepositBelt = "deposit_belt"
	LocContainer   = "container"
	LocFloor       = "floor" // a dropped plate: the l_plate failure
)

// Fault kinds, matching the primitive exceptions of Figure 7.
const (
	FaultMotorStop   except.ID = "m_stop"  // motor stops mid-travel
	FaultMotorNoMove except.ID = "m_nmove" // motor never starts
	FaultSensorStuck except.ID = "s_stuck" // position sensor stuck at 0
	FaultLostPlate   except.ID = "l_plate" // magnet drops the plate
)

// Errors reported by the plant.
var (
	ErrUnknownAxis   = errors.New("prodcell: unknown axis")
	ErrbadTarget     = errors.New("prodcell: illegal target position")
	ErrAxisBusy      = errors.New("prodcell: axis already moving")
	ErrNothingToGrab = errors.New("prodcell: nothing to grab")
	ErrHandFull      = errors.New("prodcell: arm already holding a plate")
	ErrNotHolding    = errors.New("prodcell: arm not holding a plate")
	ErrNoBlank       = errors.New("prodcell: no such blank")
	ErrBeltOccupied  = errors.New("prodcell: feed belt occupied")
)

// Config sets motion durations.
type Config struct {
	// MoveTime is the default duration of one axis motion.
	MoveTime time.Duration
	// BeltTime is the conveyance duration of either belt.
	BeltTime time.Duration
	// Log, when non-nil, records plant events.
	Log *trace.Log
}

// DefaultConfig returns the timings used by the experiments.
func DefaultConfig() Config {
	return Config{MoveTime: 100 * time.Millisecond, BeltTime: 300 * time.Millisecond}
}

type axisState struct {
	positions []string // legal positions
	current   string
	target    string        // "" when idle
	arriveAt  time.Duration // valid when target != ""
	stalled   bool          // motor stopped mid-travel: never arrives
	stuck     bool          // position sensor reads 0 regardless of truth
	fault     except.ID     // armed one-shot motor fault
}

// Blank is one metal blank travelling through the cell.
type Blank struct {
	ID     int
	Loc    string
	Forged bool
}

// Plant is the simulated production cell. All methods are safe for
// concurrent use by the controller threads.
type Plant struct {
	clock vclock.Clock
	cfg   Config

	mu         sync.Mutex
	axes       map[string]*axisState
	blanks     map[int]*Blank
	nextBlank  int
	lostPlate  map[string]bool // armed l_plate per arm
	violations []string
	forgeAt    time.Duration // pending forging completion; 0 = none
	forgeBlank int
}

// New returns a production cell at rest.
func New(clock vclock.Clock, cfg Config) *Plant {
	if cfg.MoveTime <= 0 {
		cfg.MoveTime = DefaultConfig().MoveTime
	}
	if cfg.BeltTime <= 0 {
		cfg.BeltTime = DefaultConfig().BeltTime
	}
	p := &Plant{
		clock:     clock,
		cfg:       cfg,
		axes:      make(map[string]*axisState),
		blanks:    make(map[int]*Blank),
		lostPlate: make(map[string]bool),
	}
	add := func(name, initial string, positions ...string) {
		p.axes[name] = &axisState{positions: positions, current: initial}
	}
	add(AxisTableVert, "bottom", "bottom", "top")
	add(AxisTableRot, "feed", "feed", "robot")
	add(AxisRobot, "table", "table", "press1", "press2", "deposit")
	add(AxisArm1, "retracted", "retracted", "extended")
	add(AxisArm2, "retracted", "retracted", "extended")
	add(AxisPress, "open", "open", "mid", "closed")
	add(AxisFeedBelt, "rest", "rest", "delivered")
	add(AxisDepositBelt, "rest", "rest", "delivered")
	return p
}

func (p *Plant) logf(kind, format string, args ...any) {
	p.cfg.Log.Add(p.clock.Now(), "plant", kind, fmt.Sprintf(format, args...))
}

// stepLocked resolves motions that have completed by now.
func (p *Plant) stepLocked() {
	now := p.clock.Now()
	for _, a := range p.axes {
		if a.target != "" && !a.stalled && now >= a.arriveAt {
			a.current = a.target
			a.target = ""
		}
	}
	if p.forgeAt > 0 && now >= p.forgeAt {
		if b, ok := p.blanks[p.forgeBlank]; ok && b.Loc == LocPress {
			b.Forged = true
		}
		p.forgeAt = 0
	}
}

// Inject arms a one-shot fault on an axis (motor faults), a persistent
// sensor fault, or a lost-plate fault on an arm axis.
func (p *Plant) Inject(kind except.ID, axis string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch kind {
	case FaultLostPlate:
		if axis != AxisArm1 && axis != AxisArm2 {
			return fmt.Errorf("%w: l_plate needs an arm axis, got %q", ErrUnknownAxis, axis)
		}
		p.lostPlate[axis] = true
		return nil
	case FaultSensorStuck:
		a, ok := p.axes[axis]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownAxis, axis)
		}
		a.stuck = true
		return nil
	case FaultMotorStop, FaultMotorNoMove:
		a, ok := p.axes[axis]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownAxis, axis)
		}
		a.fault = kind
		return nil
	default:
		return fmt.Errorf("prodcell: unknown fault kind %q", kind)
	}
}

// Repair clears all faults on an axis and, if a motor had stalled, restarts
// the axis from its stalling point (the motion must be re-actuated).
func (p *Plant) Repair(axis string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	a, ok := p.axes[axis]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAxis, axis)
	}
	a.fault = ""
	a.stuck = false
	if a.stalled {
		a.stalled = false
		a.target = "" // motion abandoned; the controller must re-actuate
	}
	p.lostPlate[axis] = false
	return nil
}

// Actuate starts moving an axis toward target. Motor faults armed on the
// axis consume here: m_nmove leaves the axis where it is; m_stop stalls it
// between positions. Safety invariants are checked and violations recorded.
func (p *Plant) Actuate(axis, target string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stepLocked()
	a, ok := p.axes[axis]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAxis, axis)
	}
	legal := false
	for _, pos := range a.positions {
		if pos == target {
			legal = true
			break
		}
	}
	if !legal {
		return fmt.Errorf("%w: %s -> %q", ErrbadTarget, axis, target)
	}
	if a.target != "" {
		return fmt.Errorf("%w: %s", ErrAxisBusy, axis)
	}
	p.checkSafetyLocked(axis, target)
	if a.current == target {
		return nil
	}

	now := p.clock.Now()
	dur := p.cfg.MoveTime
	if axis == AxisFeedBelt || axis == AxisDepositBelt {
		dur = p.cfg.BeltTime
	}
	switch a.fault {
	case FaultMotorNoMove:
		a.fault = ""
		p.logf("fault", "%s: motor never starts (target %s)", axis, target)
		return nil // silently fails to move; detection is the controller's job
	case FaultMotorStop:
		a.fault = ""
		a.target = target
		a.stalled = true
		p.logf("fault", "%s: motor stalls between %s and %s", axis, a.current, target)
		return nil
	}
	a.target = target
	a.arriveAt = now + dur
	p.logf("actuate", "%s: %s -> %s (arrives %v)", axis, a.current, target, a.arriveAt)

	// Side effects of completed motions.
	if axis == AxisPress && target == "closed" {
		if b := p.blankAtLocked(LocPress); b != nil {
			p.forgeAt = a.arriveAt
			p.forgeBlank = b.ID
		}
	}
	if (axis == AxisRobot || axis == AxisArm1) && p.lostPlate[AxisArm1] {
		p.dropLocked(AxisArm1, LocArm1)
	}
	if (axis == AxisRobot || axis == AxisArm2) && p.lostPlate[AxisArm2] {
		p.dropLocked(AxisArm2, LocArm2)
	}
	return nil
}

func (p *Plant) dropLocked(armAxis, loc string) {
	if b := p.blankAtLocked(loc); b != nil {
		b.Loc = LocFloor
		p.lostPlate[armAxis] = false
		p.logf("fault", "plate %d dropped from %s", b.ID, loc)
	}
}

// checkSafetyLocked records violations of the cell's safety requirements.
func (p *Plant) checkSafetyLocked(axis, target string) {
	arm1 := p.axes[AxisArm1]
	arm2 := p.axes[AxisArm2]
	armsOut := arm1.current != "retracted" || arm1.target != "" ||
		arm2.current != "retracted" || arm2.target != ""
	switch {
	case axis == AxisPress && target == "closed" &&
		(p.axes[AxisRobot].current == "press1" || p.axes[AxisRobot].current == "press2") && armsOut:
		p.violations = append(p.violations,
			"press closed while a robot arm may be inside")
	case axis == AxisRobot && armsOut:
		p.violations = append(p.violations,
			"robot rotated with an arm extended")
	case (axis == AxisTableVert || axis == AxisTableRot) &&
		arm1.current != "retracted" && p.axes[AxisRobot].current == "table":
		p.violations = append(p.violations,
			"table moved while arm1 extended over it")
	}
}

// Violations returns the recorded safety violations.
func (p *Plant) Violations() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.violations...)
}

// At reports whether the axis position sensor reads pos. A stuck sensor
// always reads false — the physical truth is available through Position.
func (p *Plant) At(axis, pos string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stepLocked()
	a, ok := p.axes[axis]
	if !ok || a.stuck {
		return false
	}
	return a.target == "" && a.current == pos
}

// Position is the fault-immune encoder reading of an axis: the physical
// position, or "moving"/"stalled" between positions. Controllers use it as
// the redundant cross-check that distinguishes s_stuck from motor faults.
func (p *Plant) Position(axis string) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stepLocked()
	a, ok := p.axes[axis]
	if !ok {
		return ""
	}
	switch {
	case a.stalled:
		return "stalled"
	case a.target != "":
		return "moving"
	default:
		return a.current
	}
}

// NewBlank puts a fresh blank at the feed belt entry (the environment adds
// one when the insertion traffic light is green, i.e. the belt is free).
func (p *Plant) NewBlank() (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stepLocked()
	if b := p.blankAtLocked(LocFeedBelt); b != nil {
		return 0, ErrBeltOccupied
	}
	p.nextBlank++
	id := p.nextBlank
	p.blanks[id] = &Blank{ID: id, Loc: LocFeedBelt}
	p.axes[AxisFeedBelt].current = "rest"
	p.logf("blank", "blank %d added to feed belt", id)
	return id, nil
}

func (p *Plant) blankAtLocked(loc string) *Blank {
	var found *Blank
	for _, b := range p.blanks {
		if b.Loc == loc && (found == nil || b.ID < found.ID) {
			found = b
		}
	}
	return found
}

// BlankAt reports whether some blank is at the location.
func (p *Plant) BlankAt(loc string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stepLocked()
	return p.blankAtLocked(loc) != nil
}

// Blank returns a snapshot of one blank.
func (p *Plant) Blank(id int) (Blank, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stepLocked()
	b, ok := p.blanks[id]
	if !ok {
		return Blank{}, fmt.Errorf("%w: %d", ErrNoBlank, id)
	}
	return *b, nil
}

// Blanks lists all blanks, ordered by ID.
func (p *Plant) Blanks() []Blank {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stepLocked()
	out := make([]Blank, 0, len(p.blanks))
	for _, b := range p.blanks {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// transfer moves the blank at from to to, if one is there.
func (p *Plant) transfer(from, to string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stepLocked()
	b := p.blankAtLocked(from)
	if b == nil {
		return fmt.Errorf("%w: at %q", ErrNothingToGrab, from)
	}
	if to == LocArm1 || to == LocArm2 {
		if p.blankAtLocked(to) != nil {
			return ErrHandFull
		}
	}
	b.Loc = to
	p.logf("blank", "blank %d: %s -> %s", b.ID, from, to)
	return nil
}

// TransferBeltToTable moves the delivered blank from the feed belt onto the
// table.
func (p *Plant) TransferBeltToTable() error { return p.transfer(LocFeedBelt, LocTable) }

// Grab magnetises an arm over its current reach: arm1 picks from the table
// or the press, arm2 from the press.
func (p *Plant) Grab(armAxis string) error {
	from, arm, err := p.reach(armAxis)
	if err != nil {
		return err
	}
	return p.transfer(from, arm)
}

// Release demagnetises an arm, dropping its plate at the current reach.
func (p *Plant) Release(armAxis string) error {
	to, arm, err := p.reach(armAxis)
	if err != nil {
		return err
	}
	p.mu.Lock()
	b := p.blankAtLocked(arm)
	p.mu.Unlock()
	if b == nil {
		return ErrNotHolding
	}
	return p.transfer(arm, to)
}

// reach maps an extended arm and the robot angle to the location the arm is
// over.
func (p *Plant) reach(armAxis string) (loc, armLoc string, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stepLocked()
	robot := p.axes[AxisRobot].current
	switch armAxis {
	case AxisArm1:
		armLoc = LocArm1
		switch robot {
		case "table":
			loc = LocTable
		case "press1":
			loc = LocPress
		}
	case AxisArm2:
		armLoc = LocArm2
		switch robot {
		case "press2":
			loc = LocPress
		case "deposit":
			loc = LocDepositBelt
		}
	default:
		return "", "", fmt.Errorf("%w: %q", ErrUnknownAxis, armAxis)
	}
	if loc == "" {
		return "", "", fmt.Errorf("prodcell: %s reaches nothing at robot angle %q", armAxis, robot)
	}
	if p.axes[armAxis].current != "extended" || p.axes[armAxis].target != "" {
		return "", "", fmt.Errorf("prodcell: %s not extended", armAxis)
	}
	return loc, armLoc, nil
}

// Holding reports whether an arm's magnet sensor sees a plate.
func (p *Plant) Holding(armAxis string) bool {
	loc := LocArm1
	if armAxis == AxisArm2 {
		loc = LocArm2
	}
	return p.BlankAt(loc)
}

// Consume moves the plate delivered at the deposit belt end into the
// container (the environment's collector).
func (p *Plant) Consume() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stepLocked()
	if p.axes[AxisDepositBelt].current != "delivered" {
		return fmt.Errorf("prodcell: deposit belt has not delivered")
	}
	b := p.blankAtLocked(LocDepositBelt)
	if b == nil {
		return fmt.Errorf("%w: on deposit belt", ErrNothingToGrab)
	}
	b.Loc = LocContainer
	p.axes[AxisDepositBelt].current = "rest"
	p.logf("blank", "plate %d delivered to container (forged=%v)", b.ID, b.Forged)
	return nil
}

// Remove takes a blank out of the cell (the operator clearing a dropped or
// abandoned plate after an aborted cycle).
func (p *Plant) Remove(id int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.blanks[id]; !ok {
		return fmt.Errorf("%w: %d", ErrNoBlank, id)
	}
	delete(p.blanks, id)
	p.logf("blank", "blank %d removed by operator", id)
	return nil
}

// ResetBelt rearms a belt axis to rest for the next conveyance.
func (p *Plant) ResetBelt(axis string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stepLocked()
	a, ok := p.axes[axis]
	if !ok || (axis != AxisFeedBelt && axis != AxisDepositBelt) {
		return fmt.Errorf("%w: %q", ErrUnknownAxis, axis)
	}
	a.current = "rest"
	a.target = ""
	return nil
}
