package prodcell

import (
	"errors"
	"testing"
	"time"

	"caaction/internal/vclock"
)

func newPlant(t *testing.T) (*Plant, *vclock.Virtual) {
	t.Helper()
	clk := vclock.NewVirtual()
	return New(clk, DefaultConfig()), clk
}

// drive runs fn on a tracked goroutine and waits for it.
func drive(clk *vclock.Virtual, fn func()) {
	clk.Go(fn)
	clk.Wait()
}

func TestAxisMotionCompletes(t *testing.T) {
	p, clk := newPlant(t)
	drive(clk, func() {
		if !p.At(AxisTableVert, "bottom") {
			t.Error("table not at bottom initially")
		}
		if err := p.Actuate(AxisTableVert, "top"); err != nil {
			t.Error(err)
		}
		if p.At(AxisTableVert, "top") {
			t.Error("arrived instantly")
		}
		if got := p.Position(AxisTableVert); got != "moving" {
			t.Errorf("position = %q", got)
		}
		clk.Sleep(DefaultConfig().MoveTime + time.Millisecond)
		if !p.At(AxisTableVert, "top") {
			t.Error("table did not arrive")
		}
	})
}

func TestActuateValidation(t *testing.T) {
	p, clk := newPlant(t)
	drive(clk, func() {
		if err := p.Actuate("ghost", "x"); !errors.Is(err, ErrUnknownAxis) {
			t.Errorf("err = %v", err)
		}
		if err := p.Actuate(AxisTableVert, "sideways"); !errors.Is(err, ErrbadTarget) {
			t.Errorf("err = %v", err)
		}
		if err := p.Actuate(AxisTableVert, "top"); err != nil {
			t.Error(err)
		}
		if err := p.Actuate(AxisTableVert, "bottom"); !errors.Is(err, ErrAxisBusy) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestMotorNoMoveFault(t *testing.T) {
	p, clk := newPlant(t)
	drive(clk, func() {
		if err := p.Inject(FaultMotorNoMove, AxisTableVert); err != nil {
			t.Fatal(err)
		}
		if err := p.Actuate(AxisTableVert, "top"); err != nil {
			t.Fatal(err)
		}
		clk.Sleep(time.Second)
		if !p.At(AxisTableVert, "bottom") {
			t.Error("axis moved despite m_nmove")
		}
		if got := p.Position(AxisTableVert); got != "bottom" {
			t.Errorf("encoder = %q", got)
		}
		// Fault is one-shot: a repair plus retry succeeds.
		if err := p.Actuate(AxisTableVert, "top"); err != nil {
			t.Fatal(err)
		}
		clk.Sleep(time.Second)
		if !p.At(AxisTableVert, "top") {
			t.Error("retry did not move")
		}
	})
}

func TestMotorStopFaultAndRepair(t *testing.T) {
	p, clk := newPlant(t)
	drive(clk, func() {
		_ = p.Inject(FaultMotorStop, AxisTableRot)
		_ = p.Actuate(AxisTableRot, "robot")
		clk.Sleep(time.Second)
		if got := p.Position(AxisTableRot); got != "stalled" {
			t.Fatalf("encoder = %q, want stalled", got)
		}
		if p.At(AxisTableRot, "robot") || p.At(AxisTableRot, "feed") {
			t.Fatal("sensors report a position while stalled")
		}
		if err := p.Repair(AxisTableRot); err != nil {
			t.Fatal(err)
		}
		_ = p.Actuate(AxisTableRot, "robot")
		clk.Sleep(time.Second)
		if !p.At(AxisTableRot, "robot") {
			t.Fatal("axis did not arrive after repair")
		}
	})
}

func TestStuckSensorEncoderDisagreement(t *testing.T) {
	p, clk := newPlant(t)
	drive(clk, func() {
		_ = p.Inject(FaultSensorStuck, AxisTableVert)
		_ = p.Actuate(AxisTableVert, "top")
		clk.Sleep(time.Second)
		if p.At(AxisTableVert, "top") {
			t.Fatal("stuck sensor reported position")
		}
		if got := p.Position(AxisTableVert); got != "top" {
			t.Fatalf("encoder = %q, want top (redundant reading)", got)
		}
		_ = p.Repair(AxisTableVert)
		if !p.At(AxisTableVert, "top") {
			t.Fatal("sensor still stuck after repair")
		}
	})
}

// runCycle drives one full fault-free production cycle through the plant
// primitives, returning the blank id.
func runCycle(t *testing.T, p *Plant, clk *vclock.Virtual) int {
	t.Helper()
	mv := DefaultConfig().MoveTime + time.Millisecond
	belt := DefaultConfig().BeltTime + time.Millisecond
	step := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	id, err := p.NewBlank()
	step(err)
	step(p.Actuate(AxisFeedBelt, "delivered"))
	clk.Sleep(belt)
	step(p.TransferBeltToTable())
	step(p.ResetBelt(AxisFeedBelt))
	// Move loaded table: rotate and lift concurrently.
	step(p.Actuate(AxisTableRot, "robot"))
	step(p.Actuate(AxisTableVert, "top"))
	clk.Sleep(mv)
	// Robot picks the blank with arm1.
	step(p.Actuate(AxisArm1, "extended"))
	clk.Sleep(mv)
	step(p.Grab(AxisArm1))
	step(p.Actuate(AxisArm1, "retracted"))
	clk.Sleep(mv)
	// Table back while robot moves to press.
	step(p.Actuate(AxisTableRot, "feed"))
	step(p.Actuate(AxisTableVert, "bottom"))
	step(p.Actuate(AxisRobot, "press1"))
	clk.Sleep(mv)
	step(p.Actuate(AxisPress, "mid"))
	clk.Sleep(mv)
	step(p.Actuate(AxisArm1, "extended"))
	clk.Sleep(mv)
	step(p.Release(AxisArm1))
	step(p.Actuate(AxisArm1, "retracted"))
	clk.Sleep(mv)
	// Forge.
	step(p.Actuate(AxisPress, "closed"))
	clk.Sleep(mv)
	step(p.Actuate(AxisPress, "open"))
	clk.Sleep(mv)
	// Remove plate with arm2.
	step(p.Actuate(AxisRobot, "press2"))
	clk.Sleep(mv)
	step(p.Actuate(AxisArm2, "extended"))
	clk.Sleep(mv)
	step(p.Grab(AxisArm2))
	step(p.Actuate(AxisArm2, "retracted"))
	clk.Sleep(mv)
	// Deposit.
	step(p.Actuate(AxisRobot, "deposit"))
	clk.Sleep(mv)
	step(p.Actuate(AxisArm2, "extended"))
	clk.Sleep(mv)
	step(p.Release(AxisArm2))
	step(p.Actuate(AxisArm2, "retracted"))
	clk.Sleep(mv)
	step(p.Actuate(AxisDepositBelt, "delivered"))
	clk.Sleep(belt)
	step(p.Consume())
	step(p.Actuate(AxisRobot, "table"))
	clk.Sleep(mv)
	return id
}

func TestFullProductionCycle(t *testing.T) {
	p, clk := newPlant(t)
	drive(clk, func() {
		id := runCycle(t, p, clk)
		b, err := p.Blank(id)
		if err != nil {
			t.Fatal(err)
		}
		if b.Loc != LocContainer || !b.Forged {
			t.Fatalf("blank end state: %+v", b)
		}
		if v := p.Violations(); len(v) != 0 {
			t.Fatalf("safety violations: %v", v)
		}
	})
}

func TestMultipleCycles(t *testing.T) {
	p, clk := newPlant(t)
	drive(clk, func() {
		for i := 0; i < 3; i++ {
			runCycle(t, p, clk)
		}
		forged := 0
		for _, b := range p.Blanks() {
			if b.Loc == LocContainer && b.Forged {
				forged++
			}
		}
		if forged != 3 {
			t.Fatalf("forged = %d", forged)
		}
	})
}

func TestLostPlateFault(t *testing.T) {
	p, clk := newPlant(t)
	mv := DefaultConfig().MoveTime + time.Millisecond
	drive(clk, func() {
		id, _ := p.NewBlank()
		_ = p.Actuate(AxisFeedBelt, "delivered")
		clk.Sleep(DefaultConfig().BeltTime + time.Millisecond)
		_ = p.TransferBeltToTable()
		_ = p.Actuate(AxisTableRot, "robot")
		_ = p.Actuate(AxisTableVert, "top")
		clk.Sleep(mv)
		_ = p.Actuate(AxisArm1, "extended")
		clk.Sleep(mv)
		if err := p.Grab(AxisArm1); err != nil {
			t.Fatal(err)
		}
		if !p.Holding(AxisArm1) {
			t.Fatal("arm1 not holding after grab")
		}
		_ = p.Inject(FaultLostPlate, AxisArm1)
		_ = p.Actuate(AxisArm1, "retracted")
		clk.Sleep(mv)
		if p.Holding(AxisArm1) {
			t.Fatal("arm1 still holding after l_plate")
		}
		b, _ := p.Blank(id)
		if b.Loc != LocFloor {
			t.Fatalf("blank at %q, want floor", b.Loc)
		}
	})
}

func TestGrabReleaseValidation(t *testing.T) {
	p, clk := newPlant(t)
	mv := DefaultConfig().MoveTime + time.Millisecond
	drive(clk, func() {
		// Arm not extended.
		if err := p.Grab(AxisArm1); err == nil {
			t.Fatal("grab with retracted arm succeeded")
		}
		_ = p.Actuate(AxisArm1, "extended")
		clk.Sleep(mv)
		// Nothing on the table.
		if err := p.Grab(AxisArm1); !errors.Is(err, ErrNothingToGrab) {
			t.Fatalf("err = %v", err)
		}
		if err := p.Release(AxisArm1); !errors.Is(err, ErrNotHolding) {
			t.Fatalf("err = %v", err)
		}
		// Arm2 over nothing at the current angle.
		if err := p.Grab(AxisArm2); err == nil {
			t.Fatal("grab with arm2 at table angle succeeded")
		}
	})
}

func TestSafetyViolationDetected(t *testing.T) {
	p, clk := newPlant(t)
	mv := DefaultConfig().MoveTime + time.Millisecond
	drive(clk, func() {
		_ = p.Actuate(AxisArm1, "extended")
		clk.Sleep(mv)
		// Rotating the robot with arm1 extended is unsafe.
		_ = p.Actuate(AxisRobot, "press1")
		if v := p.Violations(); len(v) == 0 {
			t.Fatal("unsafe rotation not recorded")
		}
	})
}

func TestFeedBeltOccupied(t *testing.T) {
	p, clk := newPlant(t)
	drive(clk, func() {
		if _, err := p.NewBlank(); err != nil {
			t.Fatal(err)
		}
		if _, err := p.NewBlank(); !errors.Is(err, ErrBeltOccupied) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestInjectValidation(t *testing.T) {
	p, _ := newPlant(t)
	if err := p.Inject(FaultLostPlate, AxisPress); err == nil {
		t.Fatal("l_plate on non-arm accepted")
	}
	if err := p.Inject(FaultMotorStop, "ghost"); err == nil {
		t.Fatal("fault on unknown axis accepted")
	}
	if err := p.Inject("weird", AxisPress); err == nil {
		t.Fatal("unknown fault accepted")
	}
	if err := p.Repair("ghost"); err == nil {
		t.Fatal("repair unknown axis accepted")
	}
}
