package signal

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"caaction/internal/except"
	"caaction/internal/protocol"
	"caaction/internal/trace"
	"caaction/internal/transport"
	"caaction/internal/vclock"
)

type sigResult struct {
	decisions map[string]Decision
	undos     map[string]int
	metrics   *trace.Metrics
}

// runSignalling simulates one signalling exchange: votes maps thread to its
// own ε; undoFails lists threads whose undo operations fail; corrupt lists
// sender threads whose votes are corrupted in transit.
func runSignalling(t testing.TB, votes map[string]except.ID, undoFails map[string]bool,
	corrupt map[string]bool) sigResult {
	t.Helper()

	clk := vclock.NewVirtual()
	metrics := &trace.Metrics{}
	net := transport.NewSim(transport.SimConfig{
		Clock:   clk,
		Latency: transport.FixedLatency(time.Millisecond),
		Metrics: metrics,
	})
	if len(corrupt) > 0 {
		net.SetFault(func(from, to string, msg protocol.Message) transport.Fault {
			if m, ok := msg.(protocol.ToBeSignalled); ok && m.Phase == 1 && corrupt[from] {
				return transport.Corrupt
			}
			return transport.Deliver
		})
	}

	var peers []string
	for id := range votes {
		peers = append(peers, id)
	}
	sortStrings(peers)

	var mu sync.Mutex
	decisions := make(map[string]Decision)
	undos := make(map[string]int)

	for _, self := range peers {
		self := self
		ep, err := net.Endpoint(self)
		if err != nil {
			t.Fatal(err)
		}
		clk.Go(func() {
			inst := New(Config{
				Action: "A#1",
				Self:   self,
				Peers:  peers,
				Round:  0,
				Send: func(to string, msg protocol.Message) {
					if err := ep.Send(to, msg); err != nil {
						t.Errorf("%s: %v", self, err)
					}
				},
				Undo: func() error {
					mu.Lock()
					undos[self]++
					mu.Unlock()
					if undoFails[self] {
						return fmt.Errorf("undo failed at %s", self)
					}
					return nil
				},
			})
			dec := inst.Start(votes[self])
			for !dec.Done {
				d, ok := ep.Recv()
				if !ok {
					t.Errorf("%s: endpoint closed", self)
					return
				}
				if d.Corrupt {
					dec = inst.MarkFailed(d.From)
					continue
				}
				var err error
				dec, err = inst.Deliver(d.From, d.Msg)
				if err != nil {
					t.Errorf("%s: %v", self, err)
					return
				}
			}
			mu.Lock()
			decisions[self] = dec
			mu.Unlock()
		})
	}
	clk.Wait()
	return sigResult{decisions: decisions, undos: undos, metrics: metrics}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestCase1EachSignalsOwn(t *testing.T) {
	votes := map[string]except.ID{
		"T1": "L_PLATE",
		"T2": except.None,
		"T3": "NCS_FAIL",
	}
	res := runSignalling(t, votes, nil, nil)
	for id, want := range votes {
		if got := res.decisions[id].Signal; got != want {
			t.Errorf("%s signals %q, want %q", id, got, want)
		}
	}
	// Simple case: N(N−1) messages.
	if got := res.metrics.Get("msg.total"); got != 6 {
		t.Fatalf("messages = %d, want 6", got)
	}
	if len(res.undos) != 0 {
		t.Fatal("no undo expected")
	}
}

func TestCase3FailureDominates(t *testing.T) {
	votes := map[string]except.ID{
		"T1": "eps1",
		"T2": except.Failure,
		"T3": except.None,
	}
	res := runSignalling(t, votes, nil, nil)
	for id := range votes {
		if got := res.decisions[id].Signal; got != except.Failure {
			t.Errorf("%s signals %q, want ƒ", id, got)
		}
	}
	if got := res.metrics.Get("msg.total"); got != 6 {
		t.Fatalf("messages = %d, want 6 (single round)", got)
	}
}

func TestCase2UndoSucceeds(t *testing.T) {
	votes := map[string]except.ID{
		"T1": except.Undo,
		"T2": except.None,
		"T3": "eps",
	}
	res := runSignalling(t, votes, nil, nil)
	for id := range votes {
		dec := res.decisions[id]
		if dec.Signal != except.Undo {
			t.Errorf("%s signals %q, want µ", id, dec.Signal)
		}
		if !dec.UndoDone {
			t.Errorf("%s did not run undo", id)
		}
		if res.undos[id] != 1 {
			t.Errorf("%s undo ran %d times", id, res.undos[id])
		}
	}
	// Undo case: two rounds, 2N(N−1) messages — the paper's worst case.
	if got := res.metrics.Get("msg.total"); got != 12 {
		t.Fatalf("messages = %d, want 12", got)
	}
}

func TestCase2UndoFailureEscalatesToF(t *testing.T) {
	votes := map[string]except.ID{
		"T1": except.Undo,
		"T2": except.None,
		"T3": except.None,
	}
	res := runSignalling(t, votes, map[string]bool{"T2": true}, nil)
	for id := range votes {
		if got := res.decisions[id].Signal; got != except.Failure {
			t.Errorf("%s signals %q, want ƒ after failed undo", id, got)
		}
	}
	// Everyone still ran undo exactly once; no third round happens.
	for id := range votes {
		if res.undos[id] != 1 {
			t.Errorf("%s undo ran %d times", id, res.undos[id])
		}
	}
	if got := res.metrics.Get("msg.total"); got != 12 {
		t.Fatalf("messages = %d, want 12", got)
	}
}

func TestCorruptVoteTreatedAsFailure(t *testing.T) {
	votes := map[string]except.ID{
		"T1": "eps1",
		"T2": except.None,
		"T3": except.None,
	}
	res := runSignalling(t, votes, nil, map[string]bool{"T1": true})
	// T2 and T3 see T1's corrupted vote as ƒ and signal ƒ; T1 received
	// clean votes and (case 1) signals its own — the paper's extension
	// guarantees coordination among fault-free nodes only.
	if res.decisions["T2"].Signal != except.Failure {
		t.Errorf("T2 signals %q", res.decisions["T2"].Signal)
	}
	if res.decisions["T3"].Signal != except.Failure {
		t.Errorf("T3 signals %q", res.decisions["T3"].Signal)
	}
}

func TestDeliverValidation(t *testing.T) {
	inst := New(Config{
		Action: "A#1", Self: "T1", Peers: []string{"T1", "T2"}, Round: 3,
		Send: func(string, protocol.Message) {},
		Undo: func() error { return nil },
	})
	if _, err := inst.Deliver("T2", protocol.Ack{}); err == nil {
		t.Fatal("wrong type accepted")
	}
	if _, err := inst.Deliver("T2", protocol.ToBeSignalled{Action: "other", Round: 3, Phase: 1}); err == nil {
		t.Fatal("wrong action accepted")
	}
	if _, err := inst.Deliver("T2", protocol.ToBeSignalled{Action: "A#1", Round: 2, Phase: 1}); err == nil {
		t.Fatal("wrong round accepted")
	}
	if _, err := inst.Deliver("T2", protocol.ToBeSignalled{Action: "A#1", Round: 3, Phase: 7}); err == nil {
		t.Fatal("bad phase accepted")
	}
}

func TestAgreementProperty(t *testing.T) {
	// For any vote mix without faults: if any ƒ → all ƒ; else if any µ →
	// all µ; else each signals its own.
	options := []except.ID{except.None, "eps1", "eps2", except.Undo, except.Failure}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		votes := make(map[string]except.ID, n)
		hasU, hasF := false, false
		for i := 1; i <= n; i++ {
			v := options[rng.Intn(len(options))]
			votes[fmt.Sprintf("T%d", i)] = v
			hasU = hasU || v == except.Undo
			hasF = hasF || v == except.Failure
		}
		res := runSignalling(t, votes, nil, nil)
		if len(res.decisions) != n {
			return false
		}
		for id, dec := range res.decisions {
			switch {
			case hasF:
				if dec.Signal != except.Failure {
					return false
				}
			case hasU:
				if dec.Signal != except.Undo || res.undos[id] != 1 {
					return false
				}
			default:
				if dec.Signal != votes[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
