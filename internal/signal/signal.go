// Package signal implements the paper's distributed exception-signalling
// algorithm (§3.4), which coordinates the interface exceptions that the
// roles of a nested CA action signal to their enclosing action.
//
// Each role broadcasts toBeSignalled(Ti, ε) where ε ∈ {φ, ε1, ε2, ..., µ, ƒ}.
// When a role holds every peer's vote it decides:
//
//	case 1: no µ or ƒ anywhere     → each role signals its own ε (or nothing);
//	case 2: µ present but no ƒ     → every role executes its undo operations
//	                                 and a second vote round follows: all µ if
//	                                 every undo succeeded, otherwise all ƒ;
//	case 3: ƒ present              → every role signals ƒ.
//
// Simple cases cost N(N−1) messages, the undo case 2N(N−1) — the bounds
// stated in the paper. The §3.4 extension for unreliable links is supported
// through MarkFailed: a lost or corrupted vote is treated as a vote for ƒ,
// so roles on healthy nodes still signal coordinated exceptions.
//
// The same exchange doubles as the prototype's "synchronous action exit
// protocol" (Fig. 8): no role decides before every role has voted.
//
// Instances serve one exit attempt of one action instance and are confined
// to their owning thread's event loop.
package signal

import (
	"errors"
	"fmt"
	"sync"

	"caaction/internal/except"
	"caaction/internal/protocol"
)

// Errors reported by Deliver.
var (
	ErrWrongAction = errors.New("signal: message for a different action")
	ErrWrongRound  = errors.New("signal: message for a different round")
	ErrUnexpected  = errors.New("signal: unexpected message type")
	ErrNotStarted  = errors.New("signal: Start not called")
)

// Config parameterises one signalling instance.
type Config struct {
	// Action is the action instance identifier stamped on messages.
	Action string
	// Self is this thread's identifier.
	Self string
	// Peers lists all participating threads, including Self.
	Peers []string
	// Round tags votes with the resolution round they conclude, so stale
	// votes from an exit attempt abandoned for a new exception round are
	// not confused with current ones.
	Round int
	// Send transmits one message; required.
	Send func(to string, msg protocol.Message)
	// Undo executes this thread's undo operations (restoring the external
	// objects it used); a non-nil error means the undo failed and ƒ must
	// be signalled. Required.
	Undo func() error
}

// Decision is the coordinated outcome for the local thread.
type Decision struct {
	// Done reports whether the decision below is final.
	Done bool
	// Signal is the exception this thread must signal to the enclosing
	// action: its own ε (possibly None), µ, or ƒ.
	Signal except.ID
	// UndoDone reports whether undo operations ran during coordination.
	UndoDone bool
}

// Instance is one thread's engine for one signalling exchange.
type Instance struct {
	cfg     Config
	own     except.ID
	started bool
	phase   int
	votes   [3]map[string]except.ID // indexed by phase (1, 2)
	undone  bool
	out     Decision
}

// pool recycles Instances across exit attempts: the signalling exchange
// runs once (often more) per action instance, so at high action churn the
// struct and its two vote maps are worth reusing. Release scrubs every
// field, so a pooled instance is indistinguishable from a fresh one.
var pool = sync.Pool{New: func() any {
	inst := &Instance{}
	inst.votes[1] = make(map[string]except.ID)
	inst.votes[2] = make(map[string]except.ID)
	return inst
}}

// New returns an instance ready for Start, possibly recycled via Release.
func New(cfg Config) *Instance {
	inst := pool.Get().(*Instance)
	inst.cfg = cfg
	inst.phase = 1
	return inst
}

// Release scrubs the instance and returns it to the package pool. Only the
// owning thread may call it, once the exchange has concluded or been
// abandoned, and it must drop every reference: the instance may be handed
// to any other exit attempt immediately.
func (s *Instance) Release() {
	s.cfg = Config{}
	s.own = except.None
	s.started = false
	s.phase = 0
	clear(s.votes[1])
	clear(s.votes[2])
	s.undone = false
	s.out = Decision{}
	pool.Put(s)
}

// Start casts this thread's vote: the exception it would signal on its own
// (None for φ). It may already return a final decision when every peer's
// vote arrived before the local one.
func (s *Instance) Start(own except.ID) Decision {
	s.own = own
	s.started = true
	s.votes[1][s.cfg.Self] = own
	s.broadcast(own, 1)
	s.evaluate()
	return s.out
}

// Deliver feeds one peer vote into the exchange.
func (s *Instance) Deliver(from string, msg protocol.Message) (Decision, error) {
	m, ok := msg.(protocol.ToBeSignalled)
	if !ok {
		return Decision{}, fmt.Errorf("%w: %T", ErrUnexpected, msg)
	}
	if m.Action != s.cfg.Action {
		return Decision{}, fmt.Errorf("%w: got %q want %q", ErrWrongAction, m.Action, s.cfg.Action)
	}
	if m.Round != s.cfg.Round {
		return Decision{}, fmt.Errorf("%w: got %d want %d", ErrWrongRound, m.Round, s.cfg.Round)
	}
	if m.Phase < 1 || m.Phase > 2 {
		return Decision{}, fmt.Errorf("%w: phase %d", ErrUnexpected, m.Phase)
	}
	s.votes[m.Phase][from] = m.Exc
	s.evaluate()
	return s.out, nil
}

// MarkFailed records ƒ on behalf of threads whose votes were lost or
// corrupted (the §3.4 fault-tolerance extension), letting the remaining
// threads still reach a coordinated decision.
func (s *Instance) MarkFailed(threads ...string) Decision {
	for _, id := range threads {
		if _, ok := s.votes[s.phase][id]; !ok {
			s.votes[s.phase][id] = except.Failure
		}
	}
	s.evaluate()
	return s.out
}

// Done reports whether the exchange has concluded locally.
func (s *Instance) Done() bool { return s.out.Done }

// Missing lists the peers whose vote for the current phase has not arrived,
// for the lost-message extension: the runtime marks them failed after a
// timeout.
func (s *Instance) Missing() []string {
	var out []string
	for _, p := range s.cfg.Peers {
		if _, ok := s.votes[s.phase][p]; !ok {
			out = append(out, p)
		}
	}
	return out
}

func (s *Instance) broadcast(exc except.ID, phase int) {
	for _, p := range s.cfg.Peers {
		if p != s.cfg.Self {
			s.cfg.Send(p, protocol.ToBeSignalled{
				Action: s.cfg.Action,
				From:   s.cfg.Self,
				Exc:    exc,
				Round:  s.cfg.Round,
				Phase:  phase,
			})
		}
	}
}

func (s *Instance) evaluate() {
	if s.out.Done || !s.started || len(s.votes[s.phase]) != len(s.cfg.Peers) {
		return
	}
	hasUndo, hasFailure := false, false
	for _, v := range s.votes[s.phase] {
		switch v {
		case except.Undo:
			hasUndo = true
		case except.Failure:
			hasFailure = true
		}
	}
	switch {
	case hasFailure:
		// Case 3: someone cannot guarantee its effects are undone; every
		// role must signal ƒ.
		s.out = Decision{Done: true, Signal: except.Failure, UndoDone: s.undone}

	case hasUndo && s.phase == 1:
		// Case 2, first encounter: all roles execute undo operations,
		// then vote again with µ (success) or ƒ (undo failed).
		s.undone = true
		next := except.Undo
		if err := s.cfg.Undo(); err != nil {
			next = except.Failure
		}
		s.phase = 2
		s.votes[2][s.cfg.Self] = next
		s.broadcast(next, 2)
		s.evaluate() // peers' phase-2 votes may already be in

	case hasUndo:
		// Case 2, second round: µ everywhere (any ƒ was caught above).
		s.out = Decision{Done: true, Signal: except.Undo, UndoDone: s.undone}

	default:
		// Case 1: no coordination needed; each role signals its own
		// exception (or nothing).
		s.out = Decision{Done: true, Signal: s.own, UndoDone: s.undone}
	}
}
