package control_test

import (
	"testing"
	"time"

	"caaction/internal/control"
	"caaction/internal/core"
	"caaction/internal/except"
	"caaction/internal/prodcell"
	"caaction/internal/protocol"
	"caaction/internal/trace"
	"caaction/internal/transport"
	"caaction/internal/vclock"
)

type cellEnv struct {
	clk     *vclock.Virtual
	net     *transport.Sim
	rt      *core.Runtime
	plant   *prodcell.Plant
	ctl     *control.Controller
	metrics *trace.Metrics
}

func newCell(t *testing.T, cfg control.Config, coreCfg func(*core.Config)) *cellEnv {
	t.Helper()
	clk := vclock.NewVirtual()
	metrics := &trace.Metrics{}
	net := transport.NewSim(transport.SimConfig{
		Clock:   clk,
		Latency: transport.FixedLatency(time.Millisecond),
		Metrics: metrics,
	})
	cc := core.Config{Clock: clk, Network: net, Metrics: metrics}
	if coreCfg != nil {
		coreCfg(&cc)
	}
	rt, err := core.New(cc)
	if err != nil {
		t.Fatal(err)
	}
	plant := prodcell.New(clk, prodcell.DefaultConfig())
	ctl, err := control.New(rt, plant, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &cellEnv{clk: clk, net: net, rt: rt, plant: plant, ctl: ctl, metrics: metrics}
}

func assertAllNil(t *testing.T, rep *control.Report) {
	t.Helper()
	for th, err := range rep.Outcomes {
		if err != nil {
			t.Fatalf("%s: %v", th, err)
		}
	}
}

func assertAllSignal(t *testing.T, rep *control.Report, want except.ID) {
	t.Helper()
	for th, err := range rep.Outcomes {
		se, ok := core.Signalled(err)
		if !ok || se.Exc != want {
			t.Fatalf("%s: %v, want signalled %q", th, err, want)
		}
	}
}

func assertSafe(t *testing.T, env *cellEnv) {
	t.Helper()
	if v := env.plant.Violations(); len(v) != 0 {
		t.Fatalf("safety violations: %v", v)
	}
}

func forgedInContainer(env *cellEnv) int {
	n := 0
	for _, b := range env.plant.Blanks() {
		if b.Loc == prodcell.LocContainer && b.Forged {
			n++
		}
	}
	return n
}

func TestFaultFreeCycle(t *testing.T) {
	env := newCell(t, control.DefaultConfig(), nil)
	rep := env.ctl.RunCycle()
	assertAllNil(t, rep)
	assertSafe(t, env)
	if got := forgedInContainer(env); got != 1 {
		t.Fatalf("forged plates delivered = %d, want 1", got)
	}
	if len(rep.Handled) != 0 {
		t.Fatalf("handlers ran in a fault-free cycle: %v", rep.Handled)
	}
}

func TestThreeFaultFreeCycles(t *testing.T) {
	env := newCell(t, control.DefaultConfig(), nil)
	for i := 0; i < 3; i++ {
		rep := env.ctl.RunCycle()
		assertAllNil(t, rep)
	}
	assertSafe(t, env)
	if got := forgedInContainer(env); got != 3 {
		t.Fatalf("forged plates = %d, want 3", got)
	}
}

func TestVerticalMotorStopRecovered(t *testing.T) {
	env := newCell(t, control.DefaultConfig(), nil)
	if err := env.plant.Inject(prodcell.FaultMotorStop, prodcell.AxisTableVert); err != nil {
		t.Fatal(err)
	}
	rep := env.ctl.RunCycle()
	assertAllNil(t, rep) // forward recovery inside Move_Loaded_Table
	assertSafe(t, env)
	if got := forgedInContainer(env); got != 1 {
		t.Fatalf("forged = %d", got)
	}
	found := false
	for _, id := range rep.Handled[control.ThTable] {
		if id == control.ExcVMStop {
			found = true
		}
	}
	if !found {
		t.Fatalf("vm_stop not handled: %v", rep.Handled)
	}
}

func TestRotationMotorNoMoveRecovered(t *testing.T) {
	env := newCell(t, control.DefaultConfig(), nil)
	_ = env.plant.Inject(prodcell.FaultMotorNoMove, prodcell.AxisTableRot)
	rep := env.ctl.RunCycle()
	assertAllNil(t, rep)
	assertSafe(t, env)
	found := false
	for _, id := range rep.Handled[control.ThTableSensor] {
		if id == control.ExcRMNoMove {
			found = true
		}
	}
	if !found {
		t.Fatalf("rm_nmove not handled: %v", rep.Handled)
	}
}

func TestDualMotorFailuresResolved(t *testing.T) {
	// The paper's flagship example: both table motors fail concurrently;
	// the two roles raise vm_stop and rm_stop at nearly the same time and
	// the graph resolves them to dual_motor_failures (Fig. 7).
	env := newCell(t, control.DefaultConfig(), nil)
	_ = env.plant.Inject(prodcell.FaultMotorStop, prodcell.AxisTableVert)
	_ = env.plant.Inject(prodcell.FaultMotorStop, prodcell.AxisTableRot)
	rep := env.ctl.RunCycle()
	assertAllNil(t, rep) // both handlers repair their own motor
	assertSafe(t, env)
	if got := forgedInContainer(env); got != 1 {
		t.Fatalf("forged = %d", got)
	}
	for _, th := range []string{control.ThTable, control.ThTableSensor} {
		found := false
		for _, id := range rep.Handled[th] {
			if id == control.ExcDualMotor {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s did not handle dual_motor_failures: %v", th, rep.Handled)
		}
	}
}

func TestStuckSensorForwardRecovered(t *testing.T) {
	env := newCell(t, control.DefaultConfig(), nil)
	_ = env.plant.Inject(prodcell.FaultSensorStuck, prodcell.AxisTableVert)
	rep := env.ctl.RunCycle()
	assertAllNil(t, rep)
	assertSafe(t, env)
	found := false
	for _, id := range rep.Handled[control.ThTable] {
		if id == control.ExcSStuck {
			found = true
		}
	}
	if !found {
		t.Fatalf("s_stuck not handled: %v", rep.Handled)
	}
}

func TestLostPlateSignalledThroughAllLevels(t *testing.T) {
	env := newCell(t, control.DefaultConfig(), nil)
	_ = env.plant.Inject(prodcell.FaultLostPlate, prodcell.AxisArm1)
	rep := env.ctl.RunCycle()
	assertAllSignal(t, rep, control.SigLPlate)
	assertSafe(t, env)
	// The plate is on the floor, not forged.
	floor := false
	for _, b := range env.plant.Blanks() {
		if b.Loc == prodcell.LocFloor {
			floor = true
		}
	}
	if !floor {
		t.Fatal("lost plate not on the floor")
	}
	// Handlers ran at the unload, TPR and top levels on the robot thread.
	if len(rep.Handled[control.ThRobot]) < 3 {
		t.Fatalf("robot handled %v, want 3 levels", rep.Handled[control.ThRobot])
	}
}

func TestControlSoftwareFaultAbortsCycleWithUndo(t *testing.T) {
	cfg := control.DefaultConfig()
	cfg.InjectCSFault = true
	env := newCell(t, cfg, nil)
	rep := env.ctl.RunCycle()
	assertAllSignal(t, rep, except.Undo)
	assertSafe(t, env)
	if got := forgedInContainer(env); got != 0 {
		t.Fatalf("forged = %d, want 0", got)
	}
}

func TestRuntimeExceptionAbortsCycleWithUndo(t *testing.T) {
	cfg := control.DefaultConfig()
	cfg.InjectRTExc = true
	env := newCell(t, cfg, nil)
	rep := env.ctl.RunCycle()
	assertAllSignal(t, rep, except.Undo)
	assertSafe(t, env)
}

func TestPlainGoErrorBecomesUniversalThenUndo(t *testing.T) {
	cfg := control.DefaultConfig()
	cfg.InjectPlainError = true
	env := newCell(t, cfg, nil)
	rep := env.ctl.RunCycle()
	assertAllSignal(t, rep, except.Undo)
	assertSafe(t, env)
}

func TestLostMessageDegradesToFailure(t *testing.T) {
	// The l_mes fault class: the table's exit votes inside
	// Move_Loaded_Table are lost; with the per-action SignalTimeout
	// extension the peer treats the missing vote as ƒ and the failure
	// propagates outward in a coordinated way.
	cfg := control.DefaultConfig()
	cfg.MLTSignalTimeout = 2 * time.Second
	env := newCell(t, cfg, nil)
	env.net.SetFault(func(from, to string, msg protocol.Message) transport.Fault {
		m, ok := msg.(protocol.ToBeSignalled)
		if ok && from == control.ThTable && m.Action == "Produce_Blank#1/Table_Press_Robot#1/Unload_Table#1/Move_Loaded_Table#1" {
			return transport.Drop
		}
		return transport.Deliver
	})
	rep := env.ctl.RunCycle()
	assertSafe(t, env)
	// The table sensor cannot hear the table's vote: it signals ƒ from
	// Move_Loaded_Table, which is raised as Move_Loaded_Table.failed in
	// Unload_Table and cascades outward; every thread ends the cycle
	// with the coordinated failure exception.
	assertAllSignal(t, rep, except.Failure)
}

func TestCycleAfterAbortedCycle(t *testing.T) {
	// An aborted cycle (cs_fault) leaves a blank on the table; after the
	// operator clears it, the next cycle succeeds.
	cfg := control.DefaultConfig()
	cfg.InjectCSFault = true
	env := newCell(t, cfg, nil)
	rep := env.ctl.RunCycle()
	assertAllSignal(t, rep, except.Undo)

	for _, b := range env.plant.Blanks() {
		if b.Loc != prodcell.LocContainer {
			if err := env.plant.Remove(b.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The injection is one-shot; the second cycle runs clean.
	rep2 := env.ctl.RunCycle()
	assertAllNil(t, rep2)
	assertSafe(t, env)
	if got := forgedInContainer(env); got != 1 {
		t.Fatalf("forged = %d", got)
	}
}

func TestFigure7GraphShape(t *testing.T) {
	g := control.MoveLoadedTableGraph()
	if g.Len() != 14 { // 9 primitives + 4 resolvers + universal
		t.Fatalf("graph size = %d", g.Len())
	}
	got, _ := g.Resolve(control.ExcVMStop, control.ExcRMStop)
	if got != control.ExcDualMotor {
		t.Fatalf("vm+rm resolves to %q", got)
	}
	got, _ = g.Resolve(control.ExcSStuck, control.ExcLPlate)
	if got != control.ExcSensorPlate {
		t.Fatalf("s_stuck+l_plate resolves to %q", got)
	}
	got, _ = g.Resolve(control.ExcCSFault, control.ExcLMes)
	if got != control.ExcUnrelated {
		t.Fatalf("cs+l_mes resolves to %q", got)
	}
	// Three unrelated classes escalate to the universal exception.
	got, _ = g.Resolve(control.ExcVMStop, control.ExcLPlate, control.ExcCSFault)
	if got != except.Universal {
		t.Fatalf("triple resolves to %q", got)
	}
}
