// Package control implements the paper's case-study control program (§4): a
// set of nested CA actions coordinating the production cell's devices
// through threads for each device and its sensors, with the Figure 7
// exception graph on the Move_Loaded_Table action and per-role recovery
// handlers.
//
// Action structure (Fig. 6):
//
//	Produce_Blank                                  (all 8 controller threads)
//	├── Load_Table          (feed belt, table, table sensor)
//	├── Table_Press_Robot   (table+sensor, robot+sensor, press+sensor)
//	│   ├── Unload_Table        (table+sensor, robot+sensor)
//	│   │   └── Move_Loaded_Table   (table, table sensor)   ← Fig. 7 graph
//	│   ├── Pressing            (robot+sensor, press+sensor)
//	│   └── Remove_Plate        (robot+sensor, press+sensor)
//	└── Deposit_Plate       (robot+sensor, deposit belt)
//
// Recovery strategy (documented deviations in DESIGN.md): motor faults and
// stuck sensors are forward-recovered inside Move_Loaded_Table (repair,
// re-actuate, verify on the redundant encoder); a lost plate is signalled as
// L_PLATE through every nesting level, each level's handlers making their
// devices safe first; unrecoverable faults (control-software faults, lost
// messages, runtime exceptions) have no handlers and therefore abort the
// cycle with the undo exception µ, which cascades to the top.
package control

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"caaction/internal/core"
	"caaction/internal/except"
	"caaction/internal/prodcell"
)

// Thread identifiers of the controller.
const (
	ThFeedBelt    = "belt_f"
	ThDepositBelt = "belt_d"
	ThTable       = "table"
	ThTableSensor = "table_s"
	ThRobot       = "robot"
	ThRobotSensor = "robot_s"
	ThPress       = "press"
	ThPressSensor = "press_s"
)

// Threads lists all controller thread identifiers.
func Threads() []string {
	return []string{
		ThFeedBelt, ThDepositBelt, ThTable, ThTableSensor,
		ThRobot, ThRobotSensor, ThPress, ThPressSensor,
	}
}

// Exceptions of the Move_Loaded_Table action (Figure 7) and the interface
// exceptions of the §4 nesting chain.
const (
	ExcVMStop   except.ID = "vm_stop"
	ExcRMStop   except.ID = "rm_stop"
	ExcVMNoMove except.ID = "vm_nmove"
	ExcRMNoMove except.ID = "rm_nmove"
	ExcSStuck   except.ID = "s_stuck"
	ExcLPlate   except.ID = "l_plate"
	ExcCSFault  except.ID = "cs_fault"
	ExcLMes     except.ID = "l_mes"
	ExcRTExc    except.ID = "rt_exc"

	ExcDualMotor   except.ID = "dual_motor_failures"
	ExcTableSensor except.ID = "table_and_sensor_failures"
	ExcSensorPlate except.ID = "sensor_or_lost_plate"
	ExcUnrelated   except.ID = "unrelated_exceptions"

	ExcNoGrab  except.ID = "no_grab"
	ExcNoBlank except.ID = "no_blank"

	SigLPlate  except.ID = "L_PLATE"
	SigNCSFail except.ID = "NCS_FAIL"
	SigTSensor except.ID = "T_SENSOR"
	SigA1Senor except.ID = "A1_SENSOR"
)

// errSensorTimeout distinguishes a missed sensor reading from runtime
// control errors.
var errSensorTimeout = errors.New("control: sensor timeout")

// Config tunes the controller.
type Config struct {
	// SensorTimeout bounds every sensor wait; a miss triggers diagnosis
	// and an exception. Must exceed the plant's MoveTime.
	SensorTimeout time.Duration
	// Poll is the sensor polling interval (an interruption point).
	Poll time.Duration
	// InjectCSFault makes the table role raise cs_fault inside the next
	// Move_Loaded_Table execution (the §4 control-software-fault class).
	// One-shot: consumed when it fires.
	InjectCSFault bool
	// InjectRTExc makes the table role raise rt_exc inside the next
	// Move_Loaded_Table execution (the §4 runtime-exception class).
	// One-shot.
	InjectRTExc bool
	// InjectPlainError makes the table role fail with an undeclared Go
	// error, exercising the universal-exception path. One-shot.
	InjectPlainError bool
	// MLTSignalTimeout, when positive, bounds the Move_Loaded_Table exit
	// wait so lost exit votes (the l_mes fault class) degrade to ƒ at
	// that level instead of hanging the cell.
	MLTSignalTimeout time.Duration
}

// DefaultConfig matches prodcell.DefaultConfig timings.
func DefaultConfig() Config {
	return Config{SensorTimeout: 400 * time.Millisecond, Poll: 10 * time.Millisecond}
}

// MoveLoadedTableGraph builds the Figure 7 exception graph.
func MoveLoadedTableGraph() *except.Graph {
	g, err := except.NewBuilder("Move_Loaded_Table").
		Cover(ExcDualMotor, ExcVMStop, ExcRMStop, ExcVMNoMove, ExcRMNoMove).
		Cover(ExcTableSensor, ExcDualMotor, ExcSStuck).
		Cover(ExcSensorPlate, ExcSStuck, ExcLPlate).
		Cover(ExcUnrelated, ExcCSFault, ExcLMes, ExcRTExc).
		Cover(except.Universal, ExcTableSensor, ExcSensorPlate, ExcUnrelated).
		Build()
	if err != nil {
		panic(fmt.Sprintf("control: Fig.7 graph invalid: %v", err))
	}
	return g
}

// Report is the outcome of one production cycle.
type Report struct {
	// Outcomes maps thread id to its Perform result (nil, or the ε/µ/ƒ it
	// signalled as a *core.SignalledError).
	Outcomes map[string]error
	// Handled records, per thread, the resolved exceptions its handlers
	// were invoked for, across all nesting levels, in order.
	Handled map[string][]except.ID
}

// Signalled returns the distinct non-nil outcome IDs (for assertions).
func (r *Report) Signalled() map[except.ID]int {
	out := make(map[except.ID]int)
	for _, err := range r.Outcomes {
		if se, ok := core.Signalled(err); ok {
			out[se.Exc]++
		}
	}
	return out
}

// Controller owns the eight controller threads and the action definitions.
type Controller struct {
	rt    *core.Runtime
	plant *prodcell.Plant
	cfg   Config

	threads map[string]*core.Thread

	specProduce *core.Spec
	specLoad    *core.Spec
	specTPR     *core.Spec
	specUnload  *core.Spec
	specMLT     *core.Spec
	specPress   *core.Spec
	specRemove  *core.Spec
	specDeposit *core.Spec

	mu      sync.Mutex
	handled map[string][]except.ID
}

// New creates the controller threads on rt and builds the action specs.
func New(rt *core.Runtime, plant *prodcell.Plant, cfg Config) (*Controller, error) {
	if cfg.SensorTimeout <= 0 {
		cfg.SensorTimeout = DefaultConfig().SensorTimeout
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultConfig().Poll
	}
	c := &Controller{
		rt:      rt,
		plant:   plant,
		cfg:     cfg,
		threads: make(map[string]*core.Thread),
		handled: make(map[string][]except.ID),
	}
	for _, id := range Threads() {
		th, err := rt.NewThread(id)
		if err != nil {
			return nil, fmt.Errorf("control: %w", err)
		}
		c.threads[id] = th
	}
	c.buildSpecs()
	return c, nil
}

func roles(pairs ...string) []core.Role {
	out := make([]core.Role, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, core.Role{Name: pairs[i], Thread: pairs[i+1]})
	}
	return out
}

func mustGraph(b *except.Builder) *except.Graph {
	g, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("control: graph invalid: %v", err))
	}
	return g
}

func (c *Controller) buildSpecs() {
	c.specMLT = &core.Spec{
		Name:    "Move_Loaded_Table",
		Roles:   roles("table", ThTable, "table_sensor", ThTableSensor),
		Graph:   MoveLoadedTableGraph(),
		Signals: []except.ID{SigNCSFail, SigLPlate},
		Timing:  core.Timing{SignalTimeout: c.cfg.MLTSignalTimeout},
	}
	c.specUnload = &core.Spec{
		Name: "Unload_Table",
		Roles: roles("table", ThTable, "table_sensor", ThTableSensor,
			"robot", ThRobot, "robot_sensor", ThRobotSensor),
		Graph: mustGraph(except.NewBuilder("Unload_Table").
			Node(ExcLPlate).Node(ExcNoGrab).Node(SigNCSFail).Node(SigLPlate).
			Node(SigA1Senor).
			Node(c.undone("Move_Loaded_Table")).Node(c.failed("Move_Loaded_Table")).
			WithUniversal()),
		Signals: []except.ID{SigTSensor, SigA1Senor, SigLPlate},
	}
	c.specPress = &core.Spec{
		Name: "Pressing",
		Roles: roles("robot", ThRobot, "robot_sensor", ThRobotSensor,
			"press", ThPress, "press_sensor", ThPressSensor),
		Graph: mustGraph(except.NewBuilder("Pressing").
			Node("press_fault").WithUniversal()),
	}
	c.specRemove = &core.Spec{
		Name: "Remove_Plate",
		Roles: roles("robot", ThRobot, "robot_sensor", ThRobotSensor,
			"press", ThPress, "press_sensor", ThPressSensor),
		Graph: mustGraph(except.NewBuilder("Remove_Plate").
			Node(ExcLPlate).Node(ExcNoGrab).WithUniversal()),
		Signals: []except.ID{SigLPlate},
	}
	c.specTPR = &core.Spec{
		Name: "Table_Press_Robot",
		Roles: roles("table", ThTable, "table_sensor", ThTableSensor,
			"robot", ThRobot, "robot_sensor", ThRobotSensor,
			"press", ThPress, "press_sensor", ThPressSensor),
		Graph: mustGraph(except.NewBuilder("Table_Press_Robot").
			Node(SigLPlate).Node(SigTSensor).Node(SigA1Senor).
			Node(c.undone("Unload_Table")).Node(c.failed("Unload_Table")).
			Node(c.undone("Pressing")).Node(c.failed("Pressing")).
			Node(c.undone("Remove_Plate")).Node(c.failed("Remove_Plate")).
			WithUniversal()),
		Signals: []except.ID{SigLPlate, SigTSensor, SigA1Senor},
	}
	c.specLoad = &core.Spec{
		Name:  "Load_Table",
		Roles: roles("belt", ThFeedBelt, "table", ThTable, "table_sensor", ThTableSensor),
		Graph: mustGraph(except.NewBuilder("Load_Table").
			Node(ExcNoBlank).Node("belt_fault").WithUniversal()),
	}
	c.specDeposit = &core.Spec{
		Name:  "Deposit_Plate",
		Roles: roles("robot", ThRobot, "robot_sensor", ThRobotSensor, "belt", ThDepositBelt),
		Graph: mustGraph(except.NewBuilder("Deposit_Plate").
			Node(ExcLPlate).Node("belt_fault").WithUniversal()),
		Signals: []except.ID{SigLPlate},
	}
	c.specProduce = &core.Spec{
		Name: "Produce_Blank",
		Roles: roles("belt_f", ThFeedBelt, "belt_d", ThDepositBelt,
			"table", ThTable, "table_sensor", ThTableSensor,
			"robot", ThRobot, "robot_sensor", ThRobotSensor,
			"press", ThPress, "press_sensor", ThPressSensor),
		Graph: mustGraph(except.NewBuilder("Produce_Blank").
			Node(SigLPlate).Node(SigTSensor).Node(SigA1Senor).
			Node(c.undone("Load_Table")).Node(c.failed("Load_Table")).
			Node(c.undone("Table_Press_Robot")).Node(c.failed("Table_Press_Robot")).
			Node(c.undone("Deposit_Plate")).Node(c.failed("Deposit_Plate")).
			WithUniversal()),
		Signals: []except.ID{SigLPlate, SigTSensor, SigA1Senor},
	}
}

func (c *Controller) undone(name string) except.ID { return except.ID(name + ".undone") }
func (c *Controller) failed(name string) except.ID { return except.ID(name + ".failed") }

// Plant exposes the controlled plant.
func (c *Controller) Plant() *prodcell.Plant { return c.plant }

// takeInjection consumes the one-shot fault-injection flags; they fire in
// the next Move_Loaded_Table execution only.
func (c *Controller) takeInjection() (cs, rtexc, plain bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs, rtexc, plain = c.cfg.InjectCSFault, c.cfg.InjectRTExc, c.cfg.InjectPlainError
	c.cfg.InjectCSFault, c.cfg.InjectRTExc, c.cfg.InjectPlainError = false, false, false
	return cs, rtexc, plain
}

// note records a handler invocation for the report.
func (c *Controller) note(thread string, resolved except.ID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.handled[thread] = append(c.handled[thread], resolved)
}

// RunCycle executes one Produce_Blank action across all threads. It must be
// called from an untracked goroutine while the runtime clock is available;
// it spawns one tracked goroutine per controller thread and waits for all.
func (c *Controller) RunCycle() *Report {
	var mu sync.Mutex
	rep := &Report{Outcomes: make(map[string]error)}
	var wg sync.WaitGroup
	for _, r := range c.specProduce.Roles {
		role := r
		wg.Add(1)
		c.rt.Clock().Go(func() {
			defer wg.Done()
			err := c.threads[role.Thread].Perform(c.specProduce, role.Name, c.produceProgram(role.Name))
			mu.Lock()
			rep.Outcomes[role.Thread] = err
			mu.Unlock()
		})
	}
	wg.Wait()
	c.mu.Lock()
	rep.Handled = make(map[string][]except.ID, len(c.handled))
	for k, v := range c.handled {
		rep.Handled[k] = append([]except.ID(nil), v...)
	}
	c.handled = make(map[string][]except.ID)
	c.mu.Unlock()
	return rep
}
