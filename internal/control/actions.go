package control

import (
	"errors"
	"fmt"

	"caaction/internal/core"
	"caaction/internal/except"
	"caaction/internal/prodcell"
)

// waitSensor polls an axis position sensor until it reads true, processing
// runtime messages between polls (the controller's interruption points). A
// miss returns errSensorTimeout for the caller to diagnose.
func (c *Controller) waitSensor(ctx *core.Context, axis, pos string) error {
	deadline := ctx.Now() + c.cfg.SensorTimeout
	for {
		if c.plant.At(axis, pos) {
			return nil
		}
		if ctx.Now() >= deadline {
			return fmt.Errorf("%w: %s not at %s", errSensorTimeout, axis, pos)
		}
		if err := ctx.Compute(c.cfg.Poll); err != nil {
			return err
		}
	}
}

// waitEncoder polls the fault-immune encoder; used by recovery handlers that
// no longer trust the sensors.
func (c *Controller) waitEncoder(ctx *core.Context, axis, pos string) error {
	deadline := ctx.Now() + c.cfg.SensorTimeout
	for {
		if c.plant.Position(axis) == pos {
			return nil
		}
		if ctx.Now() >= deadline {
			return fmt.Errorf("%w: encoder %s not at %s", errSensorTimeout, axis, pos)
		}
		if err := ctx.Compute(c.cfg.Poll); err != nil {
			return err
		}
	}
}

// moveAndVerify actuates an axis and waits for the position sensor,
// diagnosing a miss into the Figure 7 exception classes: stalled encoder →
// motor stop; unmoved → motor never started; encoder arrived but sensor
// silent → stuck sensor.
func (c *Controller) moveAndVerify(ctx *core.Context, axis, target string,
	stop, nmove except.ID) error {
	if c.plant.Position(axis) == target {
		return nil
	}
	if err := c.plant.Actuate(axis, target); err != nil {
		if !errors.Is(err, prodcell.ErrAxisBusy) {
			return ctx.Raise(stop, err.Error())
		}
		// A stale motion (for example from an aborted cycle) is still in
		// flight; let the axis settle, then redirect it.
		if werr := c.waitSettled(ctx, axis); werr != nil {
			return werr
		}
		if pos := c.plant.Position(axis); pos != target && pos != "stalled" {
			if err2 := c.plant.Actuate(axis, target); err2 != nil {
				return ctx.Raise(stop, err2.Error())
			}
		}
	}
	err := c.waitSensor(ctx, axis, target)
	if err == nil {
		return nil
	}
	if !errors.Is(err, errSensorTimeout) {
		return err // control transfer (informed / abort)
	}
	switch pos := c.plant.Position(axis); pos {
	case target:
		return ctx.Raise(ExcSStuck, axis+" sensor stuck at 0")
	case "stalled", "moving":
		return ctx.Raise(stop, axis+" motor stopped before "+target)
	default:
		return ctx.Raise(nmove, axis+" motor did not start (at "+pos+")")
	}
}

// waitSettled waits until an axis is no longer moving (arrived or stalled).
func (c *Controller) waitSettled(ctx *core.Context, axis string) error {
	deadline := ctx.Now() + c.cfg.SensorTimeout
	for c.plant.Position(axis) == "moving" && ctx.Now() < deadline {
		if err := ctx.Compute(c.cfg.Poll); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Move_Loaded_Table (Fig. 7): rotate the loaded table to the robot angle and
// lift it, the two motors running concurrently under two roles.
// ---------------------------------------------------------------------------

func (c *Controller) mltProgram(role string) core.RoleProgram {
	var body core.Body
	switch role {
	case "table":
		body = func(ctx *core.Context) error {
			switch cs, rtexc, plain := c.takeInjection(); {
			case cs:
				return ctx.Raise(ExcCSFault, "injected control-software fault")
			case rtexc:
				return ctx.Raise(ExcRTExc, "injected runtime exception (overflow)")
			case plain:
				return errors.New("nil dereference in table controller")
			}
			return c.moveAndVerify(ctx, prodcell.AxisTableVert, "top", ExcVMStop, ExcVMNoMove)
		}
	case "table_sensor":
		body = func(ctx *core.Context) error {
			return c.moveAndVerify(ctx, prodcell.AxisTableRot, "robot", ExcRMStop, ExcRMNoMove)
		}
	}
	var own, ownTarget, other, otherTarget string
	if role == "table" {
		own, ownTarget = prodcell.AxisTableVert, "top"
		other, otherTarget = prodcell.AxisTableRot, "robot"
	} else {
		own, ownTarget = prodcell.AxisTableRot, "robot"
		other, otherTarget = prodcell.AxisTableVert, "top"
	}
	recoverH := c.mltRecover(own, ownTarget, other, otherTarget)
	handlers := map[except.ID]core.Handler{
		ExcVMStop: recoverH, ExcVMNoMove: recoverH,
		ExcRMStop: recoverH, ExcRMNoMove: recoverH,
		ExcSStuck: recoverH, ExcDualMotor: recoverH, ExcTableSensor: recoverH,
	}
	return core.RoleProgram{Body: body, Handlers: handlers}
}

// mltRecover is the forward-recovery handler shared by every motor/sensor
// exception of Move_Loaded_Table: repair the role's own axis, re-actuate it
// if needed, then verify both axes on the redundant encoders. Verification
// failure abandons the action with undo (µ).
func (c *Controller) mltRecover(own, ownTarget, other, otherTarget string) core.Handler {
	return func(ctx *core.Context, resolved except.ID, raised []except.Raised) error {
		c.note(ctx.Self(), resolved)
		_ = c.plant.Repair(own)
		if c.plant.Position(own) != ownTarget {
			if err := c.plant.Actuate(own, ownTarget); err != nil && !errors.Is(err, prodcell.ErrAxisBusy) {
				_ = ctx.Signal(except.Undo)
				return nil
			}
		}
		if err := c.waitEncoder(ctx, own, ownTarget); err != nil {
			if errors.Is(err, errSensorTimeout) {
				_ = ctx.Signal(except.Undo)
				return nil
			}
			return err
		}
		// The peer role repairs the other axis; observe it on the encoder.
		if err := c.waitEncoder(ctx, other, otherTarget); err != nil {
			if errors.Is(err, errSensorTimeout) {
				_ = ctx.Signal(except.Undo)
				return nil
			}
			return err
		}
		return nil
	}
}

// ---------------------------------------------------------------------------
// Unload_Table: Move_Loaded_Table nested, then the robot picks the blank
// with arm 1 and the table returns.
// ---------------------------------------------------------------------------

func (c *Controller) unloadProgram(role string) core.RoleProgram {
	var body core.Body
	switch role {
	case "table":
		body = func(ctx *core.Context) error {
			if err := ctx.Enter(c.specMLT, "table", c.mltProgram("table")); err != nil {
				return err
			}
			if err := ctx.Send("robot", "table_ready"); err != nil {
				return err
			}
			if _, err := ctx.Recv("robot"); err != nil { // "grabbed"
				return err
			}
			if err := c.moveAndVerify(ctx, prodcell.AxisTableRot, "feed", ExcRMStop, ExcRMNoMove); err != nil {
				return err
			}
			return c.moveAndVerify(ctx, prodcell.AxisTableVert, "bottom", ExcVMStop, ExcVMNoMove)
		}
	case "table_sensor":
		body = func(ctx *core.Context) error {
			return ctx.Enter(c.specMLT, "table_sensor", c.mltProgram("table_sensor"))
		}
	case "robot":
		body = func(ctx *core.Context) error {
			if _, err := ctx.Recv("table"); err != nil { // "table_ready"
				return err
			}
			if err := c.moveAndVerify(ctx, prodcell.AxisArm1, "extended", SigA1Senor, SigA1Senor); err != nil {
				return err
			}
			if err := c.plant.Grab(prodcell.AxisArm1); err != nil {
				return ctx.Raise(ExcNoGrab, err.Error())
			}
			if err := c.moveAndVerify(ctx, prodcell.AxisArm1, "retracted", SigA1Senor, SigA1Senor); err != nil {
				return err
			}
			if err := ctx.Send("robot_sensor", "check"); err != nil {
				return err
			}
			if !c.plant.Holding(prodcell.AxisArm1) {
				return ctx.Raise(ExcLPlate, "plate lost after retracting arm 1")
			}
			return ctx.Send("table", "grabbed")
		}
	case "robot_sensor":
		body = func(ctx *core.Context) error {
			if _, err := ctx.Recv("robot"); err != nil { // "check"
				return err
			}
			if !c.plant.Holding(prodcell.AxisArm1) {
				return ctx.Raise(ExcLPlate, "arm 1 magnet sensor reads empty")
			}
			return nil
		}
	}
	return core.RoleProgram{Body: body, Handlers: c.unloadHandlers(role)}
}

func (c *Controller) unloadHandlers(role string) map[except.ID]core.Handler {
	lost := func(ctx *core.Context, resolved except.ID, raised []except.Raised) error {
		c.note(ctx.Self(), resolved)
		// Make the devices safe, then report the lost plate upward.
		switch role {
		case "robot":
			if c.plant.Position(prodcell.AxisArm1) != "retracted" {
				_ = c.plant.Actuate(prodcell.AxisArm1, "retracted")
				if err := c.waitEncoder(ctx, prodcell.AxisArm1, "retracted"); err != nil &&
					!errors.Is(err, errSensorTimeout) {
					return err
				}
			}
		case "table":
			_ = c.plant.Actuate(prodcell.AxisTableVert, "bottom")
			_ = c.plant.Actuate(prodcell.AxisTableRot, "feed")
			if err := c.waitEncoder(ctx, prodcell.AxisTableVert, "bottom"); err != nil &&
				!errors.Is(err, errSensorTimeout) {
				return err
			}
		}
		return ctx.Signal(SigLPlate)
	}
	return map[except.ID]core.Handler{
		ExcLPlate:                     lost,
		ExcNoGrab:                     lost,
		SigA1Senor:                    c.signalHandler(SigA1Senor),
		c.undone("Move_Loaded_Table"): c.signalHandler(except.Undo),
		c.failed("Move_Loaded_Table"): c.signalHandler(except.Failure),
		SigNCSFail:                    c.signalHandler(SigTSensor),
	}
}

// signalHandler notes the resolved exception and completes the action by
// signalling sig to the enclosing level.
func (c *Controller) signalHandler(sig except.ID) core.Handler {
	return func(ctx *core.Context, resolved except.ID, raised []except.Raised) error {
		c.note(ctx.Self(), resolved)
		return ctx.Signal(sig)
	}
}

// ---------------------------------------------------------------------------
// Pressing: the robot loads the press with arm 1 and the press forges.
// ---------------------------------------------------------------------------

func (c *Controller) pressingProgram(role string) core.RoleProgram {
	var body core.Body
	switch role {
	case "robot":
		body = func(ctx *core.Context) error {
			if err := c.moveAndVerify(ctx, prodcell.AxisRobot, "press1", "press_fault", "press_fault"); err != nil {
				return err
			}
			if _, err := ctx.Recv("press"); err != nil { // "ready"
				return err
			}
			if err := c.moveAndVerify(ctx, prodcell.AxisArm1, "extended", "press_fault", "press_fault"); err != nil {
				return err
			}
			if err := c.plant.Release(prodcell.AxisArm1); err != nil {
				return ctx.Raise("press_fault", err.Error())
			}
			if err := c.moveAndVerify(ctx, prodcell.AxisArm1, "retracted", "press_fault", "press_fault"); err != nil {
				return err
			}
			if err := ctx.Send("robot_sensor", "released"); err != nil {
				return err
			}
			return ctx.Send("press", "loaded")
		}
	case "robot_sensor":
		body = func(ctx *core.Context) error {
			if _, err := ctx.Recv("robot"); err != nil {
				return err
			}
			if c.plant.Holding(prodcell.AxisArm1) {
				return ctx.Raise("press_fault", "plate stuck to arm 1 magnet")
			}
			return nil
		}
	case "press":
		body = func(ctx *core.Context) error {
			if err := c.moveAndVerify(ctx, prodcell.AxisPress, "mid", "press_fault", "press_fault"); err != nil {
				return err
			}
			if err := ctx.Send("robot", "ready"); err != nil {
				return err
			}
			if _, err := ctx.Recv("robot"); err != nil { // "loaded"
				return err
			}
			if err := c.moveAndVerify(ctx, prodcell.AxisPress, "closed", "press_fault", "press_fault"); err != nil {
				return err
			}
			return ctx.Send("press_sensor", "forged")
		}
	case "press_sensor":
		body = func(ctx *core.Context) error {
			if _, err := ctx.Recv("press"); err != nil {
				return err
			}
			if !c.plant.At(prodcell.AxisPress, "closed") {
				return ctx.Raise("press_fault", "press did not reach the forging position")
			}
			return nil
		}
	}
	return core.RoleProgram{Body: body}
}

// ---------------------------------------------------------------------------
// Remove_Plate: press opens, robot extracts the forged plate with arm 2.
// ---------------------------------------------------------------------------

func (c *Controller) removeProgram(role string) core.RoleProgram {
	var body core.Body
	switch role {
	case "press":
		body = func(ctx *core.Context) error {
			if err := c.moveAndVerify(ctx, prodcell.AxisPress, "open", ExcNoGrab, ExcNoGrab); err != nil {
				return err
			}
			return ctx.Send("robot", "open")
		}
	case "robot":
		body = func(ctx *core.Context) error {
			if _, err := ctx.Recv("press"); err != nil {
				return err
			}
			if err := c.moveAndVerify(ctx, prodcell.AxisRobot, "press2", ExcNoGrab, ExcNoGrab); err != nil {
				return err
			}
			if err := c.moveAndVerify(ctx, prodcell.AxisArm2, "extended", ExcNoGrab, ExcNoGrab); err != nil {
				return err
			}
			if err := c.plant.Grab(prodcell.AxisArm2); err != nil {
				return ctx.Raise(ExcNoGrab, err.Error())
			}
			if err := c.moveAndVerify(ctx, prodcell.AxisArm2, "retracted", ExcNoGrab, ExcNoGrab); err != nil {
				return err
			}
			if err := ctx.Send("robot_sensor", "check"); err != nil {
				return err
			}
			if !c.plant.Holding(prodcell.AxisArm2) {
				return ctx.Raise(ExcLPlate, "plate lost after removal")
			}
			return nil
		}
	case "robot_sensor":
		body = func(ctx *core.Context) error {
			if _, err := ctx.Recv("robot"); err != nil {
				return err
			}
			if !c.plant.Holding(prodcell.AxisArm2) {
				return ctx.Raise(ExcLPlate, "arm 2 magnet sensor reads empty")
			}
			return nil
		}
	case "press_sensor":
		body = func(ctx *core.Context) error { return nil }
	}
	lost := c.signalHandler(SigLPlate)
	return core.RoleProgram{Body: body, Handlers: map[except.ID]core.Handler{
		ExcLPlate: lost, ExcNoGrab: lost,
	}}
}

// ---------------------------------------------------------------------------
// Table_Press_Robot: the Fig. 6 composite.
// ---------------------------------------------------------------------------

func (c *Controller) tprProgram(role string) core.RoleProgram {
	enter := func(ctx *core.Context, spec *core.Spec, r string, prog core.RoleProgram) error {
		return ctx.Enter(spec, r, prog)
	}
	var body core.Body
	switch role {
	case "table", "table_sensor":
		body = func(ctx *core.Context) error {
			return enter(ctx, c.specUnload, role, c.unloadProgram(role))
		}
	case "robot", "robot_sensor":
		body = func(ctx *core.Context) error {
			if err := enter(ctx, c.specUnload, role, c.unloadProgram(role)); err != nil {
				return err
			}
			if err := enter(ctx, c.specPress, role, c.pressingProgram(role)); err != nil {
				return err
			}
			return enter(ctx, c.specRemove, role, c.removeProgram(role))
		}
	case "press", "press_sensor":
		body = func(ctx *core.Context) error {
			if err := enter(ctx, c.specPress, role, c.pressingProgram(role)); err != nil {
				return err
			}
			return enter(ctx, c.specRemove, role, c.removeProgram(role))
		}
	}
	handlers := map[except.ID]core.Handler{
		SigLPlate:  c.signalHandler(SigLPlate),
		SigTSensor: c.signalHandler(SigTSensor),
		SigA1Senor: c.signalHandler(SigA1Senor),
	}
	for _, nested := range []string{"Unload_Table", "Pressing", "Remove_Plate"} {
		handlers[c.undone(nested)] = c.signalHandler(except.Undo)
		handlers[c.failed(nested)] = c.signalHandler(except.Failure)
	}
	return core.RoleProgram{Body: body, Handlers: handlers}
}

// ---------------------------------------------------------------------------
// Load_Table and Deposit_Plate: the belts.
// ---------------------------------------------------------------------------

func (c *Controller) loadProgram(role string) core.RoleProgram {
	var body core.Body
	switch role {
	case "belt":
		body = func(ctx *core.Context) error {
			if !c.plant.BlankAt(prodcell.LocFeedBelt) {
				if _, err := c.plant.NewBlank(); err != nil {
					return ctx.Raise(ExcNoBlank, err.Error())
				}
			}
			if err := c.moveAndVerify(ctx, prodcell.AxisFeedBelt, "delivered", "belt_fault", "belt_fault"); err != nil {
				return err
			}
			if err := ctx.Send("table", "delivered"); err != nil {
				return err
			}
			if _, err := ctx.Recv("table"); err != nil { // "taken"
				return err
			}
			return c.plant.ResetBelt(prodcell.AxisFeedBelt)
		}
	case "table":
		body = func(ctx *core.Context) error {
			if err := c.moveAndVerify(ctx, prodcell.AxisTableVert, "bottom", ExcVMStop, ExcVMNoMove); err != nil {
				return err
			}
			if err := c.moveAndVerify(ctx, prodcell.AxisTableRot, "feed", ExcRMStop, ExcRMNoMove); err != nil {
				return err
			}
			if _, err := ctx.Recv("belt"); err != nil {
				return err
			}
			if err := c.plant.TransferBeltToTable(); err != nil {
				return ctx.Raise(ExcNoBlank, err.Error())
			}
			if err := ctx.Send("belt", "taken"); err != nil {
				return err
			}
			return ctx.Send("table_sensor", "loaded")
		}
	case "table_sensor":
		body = func(ctx *core.Context) error {
			if _, err := ctx.Recv("table"); err != nil {
				return err
			}
			if !c.plant.BlankAt(prodcell.LocTable) {
				return ctx.Raise(ExcNoBlank, "table load sensor reads empty")
			}
			return nil
		}
	}
	return core.RoleProgram{Body: body}
}

func (c *Controller) depositProgram(role string) core.RoleProgram {
	var body core.Body
	switch role {
	case "robot":
		body = func(ctx *core.Context) error {
			if err := c.moveAndVerify(ctx, prodcell.AxisRobot, "deposit", "belt_fault", "belt_fault"); err != nil {
				return err
			}
			if err := c.moveAndVerify(ctx, prodcell.AxisArm2, "extended", "belt_fault", "belt_fault"); err != nil {
				return err
			}
			if err := c.plant.Release(prodcell.AxisArm2); err != nil {
				return ctx.Raise(ExcLPlate, err.Error())
			}
			if err := c.moveAndVerify(ctx, prodcell.AxisArm2, "retracted", "belt_fault", "belt_fault"); err != nil {
				return err
			}
			if err := ctx.Send("belt", "placed"); err != nil {
				return err
			}
			return c.moveAndVerify(ctx, prodcell.AxisRobot, "table", "belt_fault", "belt_fault")
		}
	case "robot_sensor":
		body = func(ctx *core.Context) error { return nil }
	case "belt":
		body = func(ctx *core.Context) error {
			if _, err := ctx.Recv("robot"); err != nil {
				return err
			}
			if err := c.moveAndVerify(ctx, prodcell.AxisDepositBelt, "delivered", "belt_fault", "belt_fault"); err != nil {
				return err
			}
			if err := c.plant.Consume(); err != nil {
				return ctx.Raise("belt_fault", err.Error())
			}
			return nil
		}
	}
	return core.RoleProgram{Body: body, Handlers: map[except.ID]core.Handler{
		ExcLPlate: c.signalHandler(SigLPlate),
	}}
}

// ---------------------------------------------------------------------------
// Produce_Blank: the top-level cycle.
// ---------------------------------------------------------------------------

func (c *Controller) produceProgram(role string) core.RoleProgram {
	var body core.Body
	switch role {
	case "belt_f":
		body = func(ctx *core.Context) error {
			return ctx.Enter(c.specLoad, "belt", c.loadProgram("belt"))
		}
	case "belt_d":
		body = func(ctx *core.Context) error {
			return ctx.Enter(c.specDeposit, "belt", c.depositProgram("belt"))
		}
	case "table", "table_sensor":
		body = func(ctx *core.Context) error {
			if err := ctx.Enter(c.specLoad, role, c.loadProgram(role)); err != nil {
				return err
			}
			return ctx.Enter(c.specTPR, role, c.tprProgram(role))
		}
	case "robot", "robot_sensor":
		body = func(ctx *core.Context) error {
			if err := ctx.Enter(c.specTPR, role, c.tprProgram(role)); err != nil {
				return err
			}
			return ctx.Enter(c.specDeposit, role, c.depositProgram(role))
		}
	case "press", "press_sensor":
		body = func(ctx *core.Context) error {
			return ctx.Enter(c.specTPR, role, c.tprProgram(role))
		}
	}
	handlers := map[except.ID]core.Handler{
		SigLPlate:  c.signalHandler(SigLPlate),
		SigTSensor: c.signalHandler(SigTSensor),
		SigA1Senor: c.signalHandler(SigA1Senor),
	}
	for _, nested := range []string{"Load_Table", "Table_Press_Robot", "Deposit_Plate"} {
		handlers[c.undone(nested)] = c.signalHandler(except.Undo)
		handlers[c.failed(nested)] = c.signalHandler(except.Failure)
	}
	return core.RoleProgram{Body: body, Handlers: handlers}
}
