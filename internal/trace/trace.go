// Package trace provides lightweight instrumentation shared by the runtime,
// the transports and the experiment harness: named counters (used to verify
// the paper's message-complexity theorems against measured counts) and an
// optional bounded event log for debugging distributed executions.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Metrics is a set of named monotonic counters. The zero value is ready to
// use. Metrics is safe for concurrent use.
type Metrics struct {
	mu     sync.Mutex
	counts map[string]int64
}

// Add increments the named counter by delta.
func (m *Metrics) Add(name string, delta int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.counts == nil {
		m.counts = make(map[string]int64)
	}
	m.counts[name] += delta
}

// Get returns the current value of the named counter (zero if never added).
func (m *Metrics) Get(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts[name]
}

// Total sums every counter whose name has the given prefix.
func (m *Metrics) Total(prefix string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for name, v := range m.counts {
		if strings.HasPrefix(name, prefix) {
			total += v
		}
	}
	return total
}

// Snapshot returns a copy of all counters.
func (m *Metrics) Snapshot() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.counts))
	for k, v := range m.counts {
		out[k] = v
	}
	return out
}

// Reset zeroes every counter.
func (m *Metrics) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counts = nil
}

// String renders the counters sorted by name, one per line.
func (m *Metrics) String() string {
	snap := m.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s=%d\n", name, snap[name])
	}
	return b.String()
}

// Event is one record in a Log.
type Event struct {
	At     time.Duration // virtual or real timestamp
	Actor  string        // thread or node that produced the event
	Kind   string        // short machine-readable category
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("%12v %-14s %-18s %s", e.At, e.Actor, e.Kind, e.Detail)
}

// Log is a bounded in-memory event log. A nil *Log is valid and discards
// events, so call sites never need nil checks. Log is safe for concurrent
// use.
type Log struct {
	mu      sync.Mutex
	max     int
	events  []Event
	dropped int
}

// NewLog returns a log retaining at most max events (older events are
// dropped first). max <= 0 means unbounded.
func NewLog(max int) *Log { return &Log{max: max} }

// Add appends an event; no-op on a nil log.
func (l *Log) Add(at time.Duration, actor, kind, detail string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{At: at, Actor: actor, Kind: kind, Detail: detail})
	if l.max > 0 && len(l.events) > l.max {
		over := len(l.events) - l.max
		l.events = append(l.events[:0:0], l.events[over:]...)
		l.dropped += over
	}
}

// Events returns a copy of the retained events in order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Dropped reports how many events were discarded due to the bound.
func (l *Log) Dropped() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// String renders the retained events, one per line.
func (l *Log) String() string {
	var b strings.Builder
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
