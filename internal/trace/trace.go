// Package trace provides lightweight instrumentation shared by the runtime,
// the transports and the experiment harness: named counters (used to verify
// the paper's message-complexity theorems against measured counts) and an
// optional bounded event log for debugging distributed executions.
//
// Both facilities are built for the per-message hot path. Counters are
// lock-free atomics that callers intern once (Metrics.Counter) so a send
// costs one atomic add — no mutex, no map lookup, no name allocation. The
// log is nil-disabled: a nil *Log reports Enabled() == false, and hot call
// sites guard event construction behind that check so disabled logging costs
// zero allocations (see Sim.send and Thread.logf for the pattern).
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is one named monotonic counter inside a Metrics: a lock-free
// atomic that hot paths intern once via Metrics.Counter and then bump
// without any lookup. A nil *Counter is valid and discards adds, so call
// sites wired to an optional Metrics need no nil checks.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by delta; no-op on a nil counter.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.n.Add(delta)
	}
}

// Value returns the current count (zero on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Metrics is a set of named monotonic counters. The zero value is ready to
// use. Metrics is safe for concurrent use; counter bumps are lock-free.
type Metrics struct {
	// counters maps name -> *Counter. Interning a new name takes the map's
	// internal locks once; every subsequent Add on that name is an atomic.
	counters sync.Map
}

// Counter interns the named counter and returns it. The returned pointer
// stays valid (and visible to Get/Snapshot/Total) for the lifetime of the
// Metrics — hot paths should intern once and keep the pointer.
func (m *Metrics) Counter(name string) *Counter {
	if c, ok := m.counters.Load(name); ok {
		return c.(*Counter)
	}
	c, _ := m.counters.LoadOrStore(name, new(Counter))
	return c.(*Counter)
}

// Add increments the named counter by delta. For per-message paths prefer
// interning with Counter and bumping the result directly.
func (m *Metrics) Add(name string, delta int64) {
	m.Counter(name).Add(delta)
}

// Get returns the current value of the named counter (zero if never added).
func (m *Metrics) Get(name string) int64 {
	if c, ok := m.counters.Load(name); ok {
		return c.(*Counter).Value()
	}
	return 0
}

// Total sums every counter whose name has the given prefix.
func (m *Metrics) Total(prefix string) int64 {
	var total int64
	m.counters.Range(func(k, v any) bool {
		if strings.HasPrefix(k.(string), prefix) {
			total += v.(*Counter).Value()
		}
		return true
	})
	return total
}

// Snapshot returns a copy of all counters.
func (m *Metrics) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	m.counters.Range(func(k, v any) bool {
		out[k.(string)] = v.(*Counter).Value()
		return true
	})
	return out
}

// Reset zeroes every counter. Interned Counter pointers remain valid: they
// are zeroed in place, so their names stay visible to Snapshot (with value
// zero) rather than disappearing from under their holders.
func (m *Metrics) Reset() {
	m.counters.Range(func(_, v any) bool {
		v.(*Counter).n.Store(0)
		return true
	})
}

// String renders the counters sorted by name, one per line.
func (m *Metrics) String() string {
	snap := m.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s=%d\n", name, snap[name])
	}
	return b.String()
}

// WritePrometheus renders every counter in the Prometheus text exposition
// format (one # TYPE line and one sample per counter, sorted by name).
// Counter names are mapped onto the metric-name charset: every character
// outside [a-zA-Z0-9_:] becomes '_' and the "caaction_" namespace prefix is
// prepended, so "action.entries" is exposed as "caaction_action_entries".
// All counters are monotonic, hence typed counter. The first write error
// aborts the scrape and is returned.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	snap := m.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		metric := PrometheusName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", metric, metric, snap[name]); err != nil {
			return err
		}
	}
	return nil
}

// PrometheusName maps a counter name onto the exposed Prometheus metric
// name: the "caaction_" namespace prefix plus the name with every character
// outside the metric charset replaced by '_'.
func PrometheusName(name string) string {
	var b strings.Builder
	b.Grow(len("caaction_") + len(name))
	b.WriteString("caaction_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Event is one record in a Log.
type Event struct {
	At     time.Duration // virtual or real timestamp
	Actor  string        // thread or node that produced the event
	Kind   string        // short machine-readable category
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("%12v %-14s %-18s %s", e.At, e.Actor, e.Kind, e.Detail)
}

// Log is a bounded in-memory event log. A nil *Log is valid and discards
// events, so call sites never need nil checks. Log is safe for concurrent
// use.
//
// Hot paths must not pay for disabled logging: guard everything that
// formats, concatenates or boxes arguments behind Enabled(), e.g.
//
//	if log.Enabled() {
//		log.Add(now, actor, kind, fmt.Sprintf(...))
//	}
//
// or use Addf, which defers formatting until after the nil check (callers
// still pay for boxing the variadic arguments, so prefer the Enabled guard
// on zero-alloc paths).
type Log struct {
	mu      sync.Mutex
	max     int
	events  []Event
	dropped int
}

// NewLog returns a log retaining at most max events (older events are
// dropped first). max <= 0 means unbounded.
func NewLog(max int) *Log { return &Log{max: max} }

// Enabled reports whether events are being recorded. It is the hot-path
// fast gate: a nil log is disabled, and call sites skip all event
// construction when it returns false.
func (l *Log) Enabled() bool { return l != nil }

// Add appends an event; no-op on a nil log.
func (l *Log) Add(at time.Duration, actor, kind, detail string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, Event{At: at, Actor: actor, Kind: kind, Detail: detail})
	if l.max > 0 && len(l.events) > l.max {
		over := len(l.events) - l.max
		l.events = append(l.events[:0:0], l.events[over:]...)
		l.dropped += over
	}
}

// Addf appends an event with a lazily formatted detail: the format is only
// rendered when the log is enabled. Boxing args still costs the caller, so
// zero-alloc paths should guard with Enabled instead.
func (l *Log) Addf(at time.Duration, actor, kind, format string, args ...any) {
	if l == nil {
		return
	}
	l.Add(at, actor, kind, fmt.Sprintf(format, args...))
}

// Events returns a copy of the retained events in order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Dropped reports how many events were discarded due to the bound.
func (l *Log) Dropped() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// String renders the retained events, one per line.
func (l *Log) String() string {
	var b strings.Builder
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
