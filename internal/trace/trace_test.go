package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMetricsBasics(t *testing.T) {
	var m Metrics
	m.Add("msg.Exception", 2)
	m.Add("msg.Commit", 1)
	m.Add("msg.Exception", 3)
	if m.Get("msg.Exception") != 5 || m.Get("msg.Commit") != 1 {
		t.Fatalf("counts wrong: %s", m.String())
	}
	if m.Get("missing") != 0 {
		t.Fatal("missing counter not zero")
	}
	if m.Total("msg.") != 6 {
		t.Fatalf("Total = %d", m.Total("msg."))
	}
	snap := m.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
	snap["msg.Exception"] = 99
	if m.Get("msg.Exception") != 5 {
		t.Fatal("snapshot aliases internal state")
	}
	if s := m.String(); !strings.Contains(s, "msg.Commit=1") {
		t.Fatalf("String = %q", s)
	}
	m.Reset()
	if m.Get("msg.Exception") != 0 {
		t.Fatal("reset failed")
	}
}

func TestMetricsConcurrent(t *testing.T) {
	var m Metrics
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	if m.Get("n") != 1600 {
		t.Fatalf("n = %d", m.Get("n"))
	}
}

func TestCounterInterning(t *testing.T) {
	var m Metrics
	c := m.Counter("msg.Exception")
	if c2 := m.Counter("msg.Exception"); c2 != c {
		t.Fatal("Counter did not intern: distinct pointers for one name")
	}
	c.Add(3)
	m.Add("msg.Exception", 2)
	if c.Value() != 5 || m.Get("msg.Exception") != 5 {
		t.Fatalf("interned counter out of sync: %d / %d", c.Value(), m.Get("msg.Exception"))
	}
	m.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset did not zero the interned counter in place")
	}
	c.Add(7) // the pointer must survive Reset
	if m.Get("msg.Exception") != 7 {
		t.Fatalf("post-Reset adds lost: %d", m.Get("msg.Exception"))
	}
}

func TestNilCounterIsSafe(t *testing.T) {
	var c *Counter
	c.Add(1) // must not panic
	if c.Value() != 0 {
		t.Fatal("nil counter not inert")
	}
}

func TestCounterZeroAllocAdd(t *testing.T) {
	var m Metrics
	c := m.Counter("hot")
	if n := testing.AllocsPerRun(100, func() { c.Add(1) }); n != 0 {
		t.Fatalf("interned Counter.Add allocates: %v allocs/op", n)
	}
}

func TestLogEnabled(t *testing.T) {
	var nilLog *Log
	if nilLog.Enabled() {
		t.Fatal("nil log reports enabled")
	}
	if !NewLog(0).Enabled() {
		t.Fatal("real log reports disabled")
	}
}

func TestLogAddf(t *testing.T) {
	l := NewLog(0)
	l.Addf(time.Second, "T1", "k", "x=%d", 7)
	events := l.Events()
	if len(events) != 1 || events[0].Detail != "x=7" {
		t.Fatalf("Addf events = %v", events)
	}
	var nilLog *Log
	nilLog.Addf(0, "a", "k", "x=%d", 7) // must not panic or format
}

func TestLogBoundedRetention(t *testing.T) {
	l := NewLog(3)
	for i := 0; i < 5; i++ {
		l.Add(time.Duration(i)*time.Second, "T1", "k", "d")
	}
	events := l.Events()
	if len(events) != 3 {
		t.Fatalf("retained %d", len(events))
	}
	if events[0].At != 2*time.Second {
		t.Fatalf("oldest retained = %v", events[0].At)
	}
	if l.Dropped() != 2 {
		t.Fatalf("dropped = %d", l.Dropped())
	}
	if s := l.String(); !strings.Contains(s, "T1") {
		t.Fatalf("String = %q", s)
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(0, "a", "b", "c") // must not panic
	if l.Events() != nil || l.Dropped() != 0 {
		t.Fatal("nil log not inert")
	}
}

func TestUnboundedLog(t *testing.T) {
	l := NewLog(0)
	for i := 0; i < 100; i++ {
		l.Add(0, "a", "k", "d")
	}
	if len(l.Events()) != 100 || l.Dropped() != 0 {
		t.Fatalf("unbounded log wrong: %d/%d", len(l.Events()), l.Dropped())
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: time.Second, Actor: "T1", Kind: "raise", Detail: "e1"}
	s := e.String()
	for _, want := range []string{"1s", "T1", "raise", "e1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Event.String() = %q missing %q", s, want)
		}
	}
}
