package protocol

// Dense kind indices for the nine protocol messages. Hot paths (per-send
// metric counters, the binary codec's tag byte, per-kind log labels) key
// fixed-size arrays by these instead of concatenating strings around
// Message.Kind() on every message.
const (
	KindException = iota
	KindSuspended
	KindCommit
	KindRelay
	KindPropose
	KindAck
	KindToBeSignalled
	KindEnter
	KindApp
	// NumKinds is the number of protocol message kinds.
	NumKinds
)

// KindNames maps a kind index to its Message.Kind() string.
var KindNames = [NumKinds]string{
	KindException:     "Exception",
	KindSuspended:     "Suspended",
	KindCommit:        "Commit",
	KindRelay:         "Relay",
	KindPropose:       "Propose",
	KindAck:           "Ack",
	KindToBeSignalled: "ToBeSignalled",
	KindEnter:         "Enter",
	KindApp:           "App",
}

// MetricNames maps a kind index to its interned per-kind metric name
// ("msg.<Kind>"), so transports never rebuild the string per send.
var MetricNames = [NumKinds]string{
	KindException:     "msg.Exception",
	KindSuspended:     "msg.Suspended",
	KindCommit:        "msg.Commit",
	KindRelay:         "msg.Relay",
	KindPropose:       "msg.Propose",
	KindAck:           "msg.Ack",
	KindToBeSignalled: "msg.ToBeSignalled",
	KindEnter:         "msg.Enter",
	KindApp:           "msg.App",
}

// KindIndexOf returns the dense kind index of one of the nine protocol
// messages, or -1 for a foreign Message implementation (custom transports
// may carry their own types; callers fall back to the string APIs).
func KindIndexOf(msg Message) int {
	switch msg.(type) {
	case Exception:
		return KindException
	case Suspended:
		return KindSuspended
	case Commit:
		return KindCommit
	case Relay:
		return KindRelay
	case Propose:
		return KindPropose
	case Ack:
		return KindAck
	case ToBeSignalled:
		return KindToBeSignalled
	case Enter:
		return KindEnter
	case App:
		return KindApp
	default:
		return -1
	}
}

// KindLabels precomputes "<prefix><Kind>" for every kind, for transports
// that log per-kind event labels ("send.", "drop.", ...) without a per-send
// concatenation.
func KindLabels(prefix string) [NumKinds]string {
	var out [NumKinds]string
	for i, name := range KindNames {
		out[i] = prefix + name
	}
	return out
}
