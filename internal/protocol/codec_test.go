package protocol

import (
	"encoding/gob"
	"reflect"
	"testing"
	"time"

	"caaction/internal/except"
)

// codecMessages exercises every message kind with populated, zero and
// awkward field values (reserved identifier characters, unicode, empty
// collections).
func codecMessages() []Message {
	raised := except.Raised{ID: "e1", Origin: "T1", Info: "disk on fire", At: 1500 * time.Millisecond}
	return []Message{
		Exception{Action: "a7!outer#1/inner#2", From: "T1", Round: 3, Exc: raised},
		Exception{},
		Suspended{Action: "outer#1", From: "T2", Round: 0},
		Commit{Action: "outer#1", From: "T1", Round: 2, Resolved: "e1+e2",
			Raised: []except.Raised{raised, {ID: "e2", Origin: "T3"}}},
		Commit{Action: "outer#1", From: "T1", Resolved: except.None},
		Relay{Action: "outer#1", From: "T3", Round: 1, Exc: raised},
		Propose{Action: "outer#1", From: "T2", Round: 4, Resolved: "µ"},
		Ack{Action: "outer#1", From: "T2", Round: 9},
		ToBeSignalled{Action: "tag!a#1", From: "T1", Exc: "ƒ", Round: 7, Phase: 1},
		ToBeSignalled{Action: "a#1", From: "T1", Exc: except.None},
		Enter{Action: "outer#1", From: "T4", Role: "producer"},
		App{Action: "outer#1", From: "T1", ToRole: "consumer", Payload: nil},
		App{Action: "outer#1", From: "T1", ToRole: "consumer", Payload: "plate"},
		App{Action: "outer#1", From: "T1", ToRole: "consumer", Payload: true},
		App{Action: "outer#1", From: "T1", ToRole: "consumer", Payload: false},
		App{Action: "outer#1", From: "T1", ToRole: "consumer", Payload: 42},
		App{Action: "outer#1", From: "T1", ToRole: "consumer", Payload: int64(-7)},
		App{Action: "outer#1", From: "T1", ToRole: "consumer", Payload: 2.5},
		App{Action: "outer#1", From: "T1", ToRole: "consumer", Payload: []byte{0, 1, 255}},
	}
}

func TestCodecRoundTripEveryKind(t *testing.T) {
	for _, msg := range codecMessages() {
		buf, err := AppendFrame(nil, "sender", msg)
		if err != nil {
			t.Fatalf("%T: encode: %v", msg, err)
		}
		from, got, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("%T: decode: %v", msg, err)
		}
		if from != "sender" {
			t.Fatalf("%T: from = %q", msg, from)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, msg)
		}
	}
}

type codecPayload struct {
	Name  string
	Count int
}

func TestCodecGobPayloadFallback(t *testing.T) {
	gob.Register(codecPayload{})
	msg := App{Action: "a#1", From: "T1", ToRole: "r2",
		Payload: codecPayload{Name: "forged plate", Count: 3}}
	buf, err := AppendFrame(nil, "T1", msg)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("gob payload mismatch: %#v != %#v", got, msg)
	}
}

func TestCodecAppendReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 512)
	for _, msg := range codecMessages() {
		out, err := AppendFrame(buf[:0], "s", msg)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) <= cap(buf) && &out[0] != &buf[:1][0] {
			t.Fatalf("%T: AppendFrame reallocated despite capacity", msg)
		}
	}
}

func TestCodecRejectsForeignMessage(t *testing.T) {
	if _, err := AppendFrame(nil, "s", foreignMsg{}); err == nil {
		t.Fatal("foreign message encoded without error")
	}
}

type foreignMsg struct{}

func (foreignMsg) Kind() string { return "Foreign" }

func TestCodecRejectsMalformedFrames(t *testing.T) {
	good, err := AppendFrame(nil, "sender", Commit{Action: "a#1", From: "T1", Round: 1,
		Resolved: "e1", Raised: []except.Raised{{ID: "e1", Origin: "T1"}}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":         {},
		"zero tag":      {0},
		"unknown tag":   {200, 0},
		"truncated":     good[:len(good)-3],
		"trailing junk": append(append([]byte(nil), good...), 1, 2, 3),
		"huge count":    {byte(KindCommit + 1), 0, 0, 0, 0, 2, 'e', '1', 0xff, 0xff, 0xff},
	}
	for name, data := range cases {
		if _, _, err := DecodeFrame(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestNodeBatchRoundTrip(t *testing.T) {
	var want []NodeBatchEntry
	for i, msg := range codecMessages() {
		want = append(want, NodeBatchEntry{To: "T" + string(rune('A'+i%4)), From: "sender", Msg: msg})
	}
	buf, err := AppendNodeBatch(nil, want)
	if err != nil {
		t.Fatal(err)
	}
	if !IsNodeControl(buf) || !IsNodeBatch(buf) || IsNodeCredit(buf) {
		t.Fatalf("batch misclassified: control=%v batch=%v credit=%v",
			IsNodeControl(buf), IsNodeBatch(buf), IsNodeCredit(buf))
	}
	var got []NodeBatchEntry
	err = DecodeNodeBatch(buf, func(to, from string, msg Message) error {
		got = append(got, NodeBatchEntry{To: to, From: from, Msg: msg})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("batch round trip mismatch:\n got %#v\nwant %#v", got, want)
	}
}

// TestNodeBatchIncremental pins that the incremental header/entry builders
// produce the same bytes as the one-shot AppendNodeBatch, since the
// transport builds batches entry by entry inside its coalescing buffer.
func TestNodeBatchIncremental(t *testing.T) {
	entries := []NodeBatchEntry{
		{To: "T1", From: "s", Msg: Ack{Action: "a#1", From: "T2", Round: 1}},
		{To: "T2", From: "s", Msg: Enter{Action: "a#1", From: "T1", Role: "r"}},
	}
	oneShot, err := AppendNodeBatch(nil, entries)
	if err != nil {
		t.Fatal(err)
	}
	buf := AppendNodeBatchHeader(nil)
	for _, e := range entries {
		if buf, err = AppendNodeBatchEntry(buf, e.To, e.From, e.Msg); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(buf, oneShot) {
		t.Fatalf("incremental batch differs from one-shot:\n inc %x\n one %x", buf, oneShot)
	}
}

func TestNodeBatchEmpty(t *testing.T) {
	buf, err := AppendNodeBatch(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := DecodeNodeBatch(buf, func(string, string, Message) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("empty batch invoked fn %d times", calls)
	}
}

func TestNodeBatchRejectsMalformed(t *testing.T) {
	good, err := AppendNodeBatch(nil, []NodeBatchEntry{
		{To: "T1", From: "s", Msg: Ack{Action: "a#1", From: "T2", Round: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"not a batch":      {7, 'x'},
		"credit as batch":  AppendNodeCredit(nil, 5),
		"torn entry":       good[:len(good)-2],
		"oversized length": {0x00, 0x01, 0xff, 0xff, 0xff, 0xff, 1, 2},
		"short header":     good[:NodeBatchHeaderLen+2],
		"garbage entry":    {0x00, 0x01, 0, 0, 0, 3, 1, 'T', 0},
	}
	for name, data := range cases {
		if err := DecodeNodeBatch(data, func(string, string, Message) error { return nil }); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// An empty destination would collide with the control escape.
	if _, err := AppendNodeBatchEntry(AppendNodeBatchHeader(nil), "", "s", Ack{}); err == nil {
		t.Error("empty destination encoded without error")
	}
}

// TestNodeBatchEntryErrorRestoresBuffer pins that a failed entry leaves the
// open batch exactly as it was, so the transport can keep flushing it.
func TestNodeBatchEntryErrorRestoresBuffer(t *testing.T) {
	buf := AppendNodeBatchHeader(nil)
	buf, err := AppendNodeBatchEntry(buf, "T1", "s", Ack{Action: "a#1"})
	if err != nil {
		t.Fatal(err)
	}
	before := append([]byte(nil), buf...)
	if buf, err = AppendNodeBatchEntry(buf, "T2", "s", foreignMsg{}); err == nil {
		t.Fatal("foreign message encoded without error")
	}
	if !reflect.DeepEqual(buf, before) {
		t.Fatalf("failed entry corrupted the batch:\n got %x\nwant %x", buf, before)
	}
}

func TestNodeCreditRoundTrip(t *testing.T) {
	for _, grant := range []int{0, 1, 2048, 1 << 30} {
		buf := AppendNodeCredit(nil, grant)
		if !IsNodeControl(buf) || !IsNodeCredit(buf) || IsNodeBatch(buf) {
			t.Fatalf("grant %d misclassified", grant)
		}
		got, err := DecodeNodeCredit(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got != grant {
			t.Fatalf("grant round trip: got %d, want %d", got, grant)
		}
	}
	for name, data := range map[string][]byte{
		"empty":      {},
		"batch":      {0x00, 0x01},
		"truncated":  {0x00, 0x02},
		"trailing":   append(AppendNodeCredit(nil, 3), 9),
		"overflowed": {0x00, 0x02, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
	} {
		if _, err := DecodeNodeCredit(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestNodeFrameRejectsEmptyDestination pins the control-escape invariant:
// a legacy node frame always opens with uvarint(len(to)) ≥ 1, so 0x00 is
// unambiguously a control frame.
func TestNodeFrameRejectsEmptyDestination(t *testing.T) {
	buf, err := AppendNodeFrame(nil, "", "s", Ack{Action: "a#1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := DecodeNodeFrame(buf); err == nil {
		t.Fatal("empty-destination node frame decoded without error")
	}
}

// TestCodecMatchesGobSemantics pins that the binary codec and the gob wire
// agree on what a message means: everything gob round-trips, the codec
// round-trips to the same value.
func TestCodecMatchesGobSemantics(t *testing.T) {
	RegisterGob()
	for _, msg := range codecMessages() {
		buf, err := AppendFrame(nil, "s", msg)
		if err != nil {
			t.Fatal(err)
		}
		_, viaCodec, err := DecodeFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(viaCodec, msg) {
			t.Fatalf("%T: codec disagrees with original", msg)
		}
	}
}

func TestKindIndexOfCoversEveryMessage(t *testing.T) {
	seen := map[int]bool{}
	for _, msg := range []Message{Exception{}, Suspended{}, Commit{}, Relay{},
		Propose{}, Ack{}, ToBeSignalled{}, Enter{}, App{}} {
		idx := KindIndexOf(msg)
		if idx < 0 || idx >= NumKinds {
			t.Fatalf("%T: index %d out of range", msg, idx)
		}
		if KindNames[idx] != msg.Kind() {
			t.Fatalf("%T: KindNames[%d] = %q, Kind() = %q", msg, idx, KindNames[idx], msg.Kind())
		}
		if MetricNames[idx] != "msg."+msg.Kind() {
			t.Fatalf("%T: MetricNames[%d] = %q", msg, idx, MetricNames[idx])
		}
		seen[idx] = true
	}
	if len(seen) != NumKinds {
		t.Fatalf("indices not dense: %v", seen)
	}
	if KindIndexOf(foreignMsg{}) != -1 {
		t.Fatal("foreign message got a kind index")
	}
}

func TestKindLabels(t *testing.T) {
	labels := KindLabels("send.")
	if labels[KindEnter] != "send.Enter" || labels[KindApp] != "send.App" {
		t.Fatalf("labels = %v", labels)
	}
}

func TestParseID(t *testing.T) {
	cases := []struct {
		raw  string
		want ParsedID
	}{
		{"", ParsedID{}},
		{"outer#1", ParsedID{Raw: "outer#1", Base: "outer#1"}},
		{"a7!outer#1", ParsedID{Raw: "a7!outer#1", Tag: "a7", Base: "outer#1"}},
		{"outer#1/inner#2", ParsedID{Raw: "outer#1/inner#2", Parent: "outer#1",
			Base: "inner#2", Depth: 1}},
		{"a7!outer#1/mid#1/leaf#3", ParsedID{Raw: "a7!outer#1/mid#1/leaf#3", Tag: "a7",
			Parent: "a7!outer#1/mid#1", Base: "leaf#3", Depth: 2}},
	}
	for _, c := range cases {
		if got := ParseID(c.raw); got != c.want {
			t.Errorf("ParseID(%q) = %+v, want %+v", c.raw, got, c.want)
		}
	}
}

func TestParsedIDChild(t *testing.T) {
	p := ParseID("a7!outer#1")
	child := p.Child("inner#2")
	if want := ParseID("a7!outer#1/inner#2"); child != want {
		t.Fatalf("Child = %+v, want %+v", child, want)
	}
	grand := child.Child("leaf#1")
	if want := ParseID("a7!outer#1/inner#2/leaf#1"); grand != want {
		t.Fatalf("grandchild = %+v, want %+v", grand, want)
	}
}

func BenchmarkCodecEncodeException(b *testing.B) {
	msg := Exception{Action: "a7!outer#1/inner#2", From: "T1", Round: 3,
		Exc: except.Raised{ID: "e1", Origin: "T1", Info: "x", At: time.Second}}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendFrame(buf[:0], "T1", msg)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecRoundTripException(b *testing.B) {
	msg := Exception{Action: "a7!outer#1/inner#2", From: "T1", Round: 3,
		Exc: except.Raised{ID: "e1", Origin: "T1", Info: "x", At: time.Second}}
	buf, err := AppendFrame(nil, "T1", msg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeFrame(buf); err != nil {
			b.Fatal(err)
		}
	}
}
