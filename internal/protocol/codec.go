package protocol

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"time"

	"caaction/internal/except"
)

// Binary wire codec for the nine protocol messages — the TCP transport's
// default encoding since the hot-path overhaul (gob remains available behind
// an option for wire compatibility with older deployments).
//
// A frame is the payload the transport length-prefixes onto the stream:
//
//	frame   := tag(u8) from(string) fields...
//	tag     := kind index + 1 (0 is invalid, catching zeroed buffers)
//	string  := uvarint byte-length, then that many bytes
//	int     := zigzag varint (encoding/binary's varint)
//	raised  := id(string) origin(string) info(string) at(int, nanoseconds)
//	[]raised:= uvarint count, then count × raised
//
// Fields follow each message struct's declaration order. App payloads carry
// a type tag for the common cooperation payload types (nil, string, bool,
// int, int64, float64, []byte); any other type falls back to a nested gob
// encoding of the interface value, so everything that crossed the gob wire
// still crosses the binary wire.
//
// AppendFrame appends to a caller-supplied buffer (the transport pools
// them), so a steady-state send performs zero codec allocations for the
// eight fixed-shape messages and for fast-path App payloads.

// ErrCodec reports a malformed or truncated binary frame.
var ErrCodec = errors.New("protocol: malformed frame")

// App payload type tags for the binary codec's fast paths; payloadGob marks
// a nested gob encoding of any other type.
const (
	payloadNil = iota
	payloadString
	payloadBool
	payloadInt
	payloadInt64
	payloadFloat64
	payloadBytes
	payloadGob = 0xff
)

// AppendFrame appends the binary encoding of one message (with the sending
// endpoint's logical address) to buf and returns the extended buffer.
func AppendFrame(buf []byte, from string, msg Message) ([]byte, error) {
	kind := KindIndexOf(msg)
	if kind < 0 {
		return buf, fmt.Errorf("%w: cannot encode foreign message %T", ErrCodec, msg)
	}
	buf = append(buf, byte(kind+1))
	buf = appendString(buf, from)
	switch m := msg.(type) {
	case Exception:
		buf = appendString(buf, m.Action)
		buf = appendString(buf, m.From)
		buf = appendInt(buf, int64(m.Round))
		buf = appendRaised(buf, m.Exc)
	case Suspended:
		buf = appendString(buf, m.Action)
		buf = appendString(buf, m.From)
		buf = appendInt(buf, int64(m.Round))
	case Commit:
		buf = appendString(buf, m.Action)
		buf = appendString(buf, m.From)
		buf = appendInt(buf, int64(m.Round))
		buf = appendString(buf, string(m.Resolved))
		buf = binary.AppendUvarint(buf, uint64(len(m.Raised)))
		for _, r := range m.Raised {
			buf = appendRaised(buf, r)
		}
	case Relay:
		buf = appendString(buf, m.Action)
		buf = appendString(buf, m.From)
		buf = appendInt(buf, int64(m.Round))
		buf = appendRaised(buf, m.Exc)
	case Propose:
		buf = appendString(buf, m.Action)
		buf = appendString(buf, m.From)
		buf = appendInt(buf, int64(m.Round))
		buf = appendString(buf, string(m.Resolved))
	case Ack:
		buf = appendString(buf, m.Action)
		buf = appendString(buf, m.From)
		buf = appendInt(buf, int64(m.Round))
	case ToBeSignalled:
		buf = appendString(buf, m.Action)
		buf = appendString(buf, m.From)
		buf = appendString(buf, string(m.Exc))
		buf = appendInt(buf, int64(m.Round))
		buf = appendInt(buf, int64(m.Phase))
	case Enter:
		buf = appendString(buf, m.Action)
		buf = appendString(buf, m.From)
		buf = appendString(buf, m.Role)
	case App:
		buf = appendString(buf, m.Action)
		buf = appendString(buf, m.From)
		buf = appendString(buf, m.ToRole)
		var err error
		if buf, err = appendPayload(buf, m.Payload); err != nil {
			return buf, err
		}
	}
	return buf, nil
}

// AppendNodeFrame appends the node-qualified binary encoding of one message:
// the destination thread address followed by the plain frame. Cluster
// deployments multiplex every thread address a node hosts over one shared
// listener, so — unlike the per-endpoint listeners of the plain TCP wire,
// where the destination is implied by the socket — the destination must
// travel on the wire for the receiving node to route the message to the
// right thread endpoint.
//
//	nodeFrame := to(string) frame
func AppendNodeFrame(buf []byte, to, from string, msg Message) ([]byte, error) {
	buf = appendString(buf, to)
	return AppendFrame(buf, from, msg)
}

// DecodeNodeFrame decodes one node-qualified frame produced by
// AppendNodeFrame.
func DecodeNodeFrame(data []byte) (to, from string, msg Message, err error) {
	d := decoder{data: data}
	to = d.string()
	if d.err != nil {
		return "", "", nil, d.err
	}
	if to == "" {
		// A legacy node frame always names a destination thread; an empty
		// one would collide with the 0x00 control escape below.
		return "", "", nil, fmt.Errorf("%w: node frame with empty destination", ErrCodec)
	}
	from, msg, err = DecodeFrame(d.data)
	if err != nil {
		return "", "", nil, err
	}
	return to, from, msg, nil
}

// Node control frames. A legacy node frame opens with uvarint(len(to)) and
// every destination thread address is non-empty, so its first byte is never
// 0x00 — which frees that byte as an escape for control payloads on the
// shared node socket:
//
//	nodeWire  := nodeFrame                          (first byte != 0x00)
//	           | 0x00 0x01 batch                    (batched node frames)
//	           | 0x00 0x02 uvarint(grant)           (credit grant)
//	batch     := { entryLen(u32 big-endian) nodeFrame }...
//
// A batch carries N node frames under one transport length prefix, so one
// coalesced peer flush pays the outer header and the syscall once for the
// whole flush window. Entries keep fixed 4-byte lengths (not uvarints) so
// the sender can reserve the slot and backfill it after encoding in place.
const (
	nodeControlByte = 0x00
	nodeKindBatch   = 0x01
	nodeKindCredit  = 0x02
)

// NodeBatchHeaderLen is the size of the batch escape header appended by
// AppendNodeBatchHeader, and nodeBatchEntryLen the size of one entry's
// length slot.
const (
	NodeBatchHeaderLen = 2
	nodeBatchEntryLen  = 4
)

// NodeBatchEntry is one message of a batched node frame.
type NodeBatchEntry struct {
	To, From string
	Msg      Message
}

// AppendNodeBatchHeader opens a batched node frame: the control escape plus
// the batch kind. Entries follow via AppendNodeBatchEntry.
func AppendNodeBatchHeader(buf []byte) []byte {
	return append(buf, nodeControlByte, nodeKindBatch)
}

// AppendNodeBatchEntry appends one node-qualified message to an open batch:
// a fixed 4-byte length slot backfilled after the frame is encoded in place.
// On error buf is returned truncated to its pre-entry length, so a failed
// entry never corrupts the open batch.
func AppendNodeBatchEntry(buf []byte, to, from string, msg Message) ([]byte, error) {
	if to == "" {
		return buf, fmt.Errorf("%w: node frame with empty destination", ErrCodec)
	}
	n0 := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	out, err := AppendNodeFrame(buf, to, from, msg)
	if err != nil {
		return out[:n0], err
	}
	binary.BigEndian.PutUint32(out[n0:], uint32(len(out)-n0-nodeBatchEntryLen))
	return out, nil
}

// AppendNodeBatch appends one complete batched node frame carrying every
// entry, equivalent to AppendNodeBatchHeader followed by one
// AppendNodeBatchEntry per entry.
func AppendNodeBatch(buf []byte, entries []NodeBatchEntry) ([]byte, error) {
	buf = AppendNodeBatchHeader(buf)
	var err error
	for _, e := range entries {
		if buf, err = AppendNodeBatchEntry(buf, e.To, e.From, e.Msg); err != nil {
			return buf, err
		}
	}
	return buf, nil
}

// IsNodeControl reports whether a node wire payload is a control frame
// (batch or credit) rather than a legacy single node frame.
func IsNodeControl(data []byte) bool {
	return len(data) > 0 && data[0] == nodeControlByte
}

// IsNodeBatch reports whether a node wire payload is a batched node frame.
func IsNodeBatch(data []byte) bool {
	return len(data) >= NodeBatchHeaderLen && data[0] == nodeControlByte && data[1] == nodeKindBatch
}

// IsNodeCredit reports whether a node wire payload is a credit grant.
func IsNodeCredit(data []byte) bool {
	return len(data) >= 2 && data[0] == nodeControlByte && data[1] == nodeKindCredit
}

// DecodeNodeBatch decodes a batched node frame, invoking fn once per entry
// in wire order. Decoding stops at the first malformed entry or the first
// fn error; a torn batch (entry length running past the frame) is a codec
// error even when earlier entries decoded cleanly, because the transport
// length-prefixes whole frames — a short one means corruption, not a
// partial read.
func DecodeNodeBatch(data []byte, fn func(to, from string, msg Message) error) error {
	if !IsNodeBatch(data) {
		return fmt.Errorf("%w: not a node batch", ErrCodec)
	}
	data = data[NodeBatchHeaderLen:]
	for len(data) > 0 {
		if len(data) < nodeBatchEntryLen {
			return fmt.Errorf("%w: truncated batch entry header", ErrCodec)
		}
		n := binary.BigEndian.Uint32(data)
		data = data[nodeBatchEntryLen:]
		if uint64(n) > uint64(len(data)) {
			return fmt.Errorf("%w: torn batch entry (%d bytes declared, %d remain)", ErrCodec, n, len(data))
		}
		to, from, msg, err := DecodeNodeFrame(data[:n])
		if err != nil {
			return err
		}
		data = data[n:]
		if err := fn(to, from, msg); err != nil {
			return err
		}
	}
	return nil
}

// AppendNodeCredit appends a credit grant control frame: the receiver's
// advertisement that it has consumed messages and the sender may put grant
// more on the wire.
func AppendNodeCredit(buf []byte, grant int) []byte {
	buf = append(buf, nodeControlByte, nodeKindCredit)
	return binary.AppendUvarint(buf, uint64(grant))
}

// DecodeNodeCredit decodes a credit grant control frame.
func DecodeNodeCredit(data []byte) (grant int, err error) {
	if !IsNodeCredit(data) {
		return 0, fmt.Errorf("%w: not a credit grant", ErrCodec)
	}
	d := decoder{data: data[2:]}
	g := d.uvarint()
	if d.err != nil {
		return 0, d.err
	}
	if len(d.data) != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes in credit grant", ErrCodec, len(d.data))
	}
	if g > math.MaxInt32 {
		return 0, fmt.Errorf("%w: credit grant %d out of range", ErrCodec, g)
	}
	return int(g), nil
}

// DecodeFrame decodes one binary frame produced by AppendFrame.
func DecodeFrame(data []byte) (from string, msg Message, err error) {
	d := decoder{data: data}
	tag := d.byte()
	from = d.string()
	kind := int(tag) - 1
	switch kind {
	case KindException:
		m := Exception{Action: d.string(), From: d.string(), Round: d.int()}
		m.Exc = d.raised()
		msg = m
	case KindSuspended:
		msg = Suspended{Action: d.string(), From: d.string(), Round: d.int()}
	case KindCommit:
		m := Commit{Action: d.string(), From: d.string(), Round: d.int(),
			Resolved: except.ID(d.string())}
		// A raised entry is at least 4 bytes: three empty strings + At.
		if n := d.count(4); n > 0 {
			m.Raised = make([]except.Raised, n)
			for i := range m.Raised {
				m.Raised[i] = d.raised()
			}
		}
		msg = m
	case KindRelay:
		m := Relay{Action: d.string(), From: d.string(), Round: d.int()}
		m.Exc = d.raised()
		msg = m
	case KindPropose:
		msg = Propose{Action: d.string(), From: d.string(), Round: d.int(),
			Resolved: except.ID(d.string())}
	case KindAck:
		msg = Ack{Action: d.string(), From: d.string(), Round: d.int()}
	case KindToBeSignalled:
		msg = ToBeSignalled{Action: d.string(), From: d.string(),
			Exc: except.ID(d.string()), Round: d.int(), Phase: d.int()}
	case KindEnter:
		msg = Enter{Action: d.string(), From: d.string(), Role: d.string()}
	case KindApp:
		m := App{Action: d.string(), From: d.string(), ToRole: d.string()}
		m.Payload = d.payload()
		msg = m
	default:
		return "", nil, fmt.Errorf("%w: unknown kind tag %d", ErrCodec, tag)
	}
	if d.err != nil {
		return "", nil, d.err
	}
	if len(d.data) != 0 {
		return "", nil, fmt.Errorf("%w: %d trailing bytes", ErrCodec, len(d.data))
	}
	return from, msg, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendInt(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

func appendRaised(buf []byte, r except.Raised) []byte {
	buf = appendString(buf, string(r.ID))
	buf = appendString(buf, r.Origin)
	buf = appendString(buf, r.Info)
	return appendInt(buf, int64(r.At))
}

func appendPayload(buf []byte, payload any) ([]byte, error) {
	switch p := payload.(type) {
	case nil:
		return append(buf, payloadNil), nil
	case string:
		buf = append(buf, payloadString)
		return appendString(buf, p), nil
	case bool:
		buf = append(buf, payloadBool)
		if p {
			return append(buf, 1), nil
		}
		return append(buf, 0), nil
	case int:
		buf = append(buf, payloadInt)
		return appendInt(buf, int64(p)), nil
	case int64:
		buf = append(buf, payloadInt64)
		return appendInt(buf, p), nil
	case float64:
		buf = append(buf, payloadFloat64)
		return binary.BigEndian.AppendUint64(buf, math.Float64bits(p)), nil
	case []byte:
		buf = append(buf, payloadBytes)
		buf = binary.AppendUvarint(buf, uint64(len(p)))
		return append(buf, p...), nil
	default:
		// Anything else rides a nested gob encoding of the interface value,
		// so the payload type set matches the gob wire's exactly.
		var nested bytes.Buffer
		if err := gob.NewEncoder(&nested).Encode(&payload); err != nil {
			return buf, fmt.Errorf("%w: app payload %T: %v", ErrCodec, payload, err)
		}
		buf = append(buf, payloadGob)
		buf = binary.AppendUvarint(buf, uint64(nested.Len()))
		return append(buf, nested.Bytes()...), nil
	}
}

// decoder is a cursor over one frame; the first malformation latches err and
// every subsequent read returns zero values, so call sites stay linear.
type decoder struct {
	data []byte
	err  error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated %s", ErrCodec, what)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.data) < 1 {
		d.fail("byte")
		return 0
	}
	b := d.data[0]
	d.data = d.data[1:]
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.data = d.data[n:]
	return v
}

func (d *decoder) int() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.data = d.data[n:]
	return int(v)
}

func (d *decoder) int64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.data = d.data[n:]
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.data)) {
		d.fail("string")
		return ""
	}
	s := string(d.data[:n])
	d.data = d.data[n:]
	return s
}

// count reads a collection length, bounding it by the bytes remaining
// divided by the collection's minimum per-element encoding size, so a
// hostile length prefix cannot force an allocation any larger than the
// frame that carried it (a raised entry encodes to ≥ 4 bytes but occupies
// 56 in memory — without the element bound a 1 MiB frame could demand a
// ~56 MB slice before decoding fails).
func (d *decoder) count(minElemSize int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.data))/uint64(minElemSize) {
		d.fail("collection")
		return 0
	}
	return int(n)
}

func (d *decoder) raised() except.Raised {
	return except.Raised{
		ID:     except.ID(d.string()),
		Origin: d.string(),
		Info:   d.string(),
		At:     time.Duration(d.int64()),
	}
}

func (d *decoder) payload() any {
	switch tag := d.byte(); tag {
	case payloadNil:
		return nil
	case payloadString:
		return d.string()
	case payloadBool:
		return d.byte() != 0
	case payloadInt:
		return d.int()
	case payloadInt64:
		return d.int64()
	case payloadFloat64:
		if d.err != nil || len(d.data) < 8 {
			d.fail("float64")
			return nil
		}
		v := math.Float64frombits(binary.BigEndian.Uint64(d.data))
		d.data = d.data[8:]
		return v
	case payloadBytes:
		n := d.count(1)
		if d.err != nil {
			return nil
		}
		b := append([]byte(nil), d.data[:n]...)
		d.data = d.data[n:]
		return b
	case payloadGob:
		n := d.count(1)
		if d.err != nil {
			return nil
		}
		nested := d.data[:n]
		d.data = d.data[n:]
		var payload any
		if err := gob.NewDecoder(bytes.NewReader(nested)).Decode(&payload); err != nil && d.err == nil {
			d.err = fmt.Errorf("%w: app payload gob: %v", ErrCodec, err)
			return nil
		}
		return payload
	default:
		if d.err == nil {
			d.err = fmt.Errorf("%w: unknown payload tag %d", ErrCodec, tag)
		}
		return nil
	}
}
