// Package protocol defines the wire messages exchanged by the CA-action
// runtime: the resolution-protocol messages of §3.3.2 (Exception, Suspended,
// Commit), the baseline protocols' messages (Relay for Campbell & Randell
// 1986, Propose/Ack for Romanovsky et al. 1996), the signalling message of
// §3.4 (ToBeSignalled), and runtime coordination messages (Enter, App).
//
// Every message implements Kind, which the transports use to count traffic
// per message type so the paper's complexity theorems can be checked against
// measured counts.
//
// # Action-instance identifiers
//
// Every message carries the identifier of the action instance it belongs to
// in its Action field. Identifiers are hierarchical: a nested action's
// identifier is its parent's identifier, '/', the spec name and a per-parent
// sequence number ("outer#1/inner#2"). Since the concurrent multi-action
// runtime, an identifier may additionally start with a mux instance tag
// terminated by '!' ("a7!transfer#1/leg#1"): the tag names one concurrent
// top-level action instance multiplexed over a shared transport endpoint,
// and the demultiplexer (internal/transport.Mux) routes inbound messages by
// it. Tags never contain '!' or '/', and spec names may contain neither
// (core.Spec.Validate enforces this), so InstanceOf is unambiguous.
// Identifiers without a tag — the single-action N=1 path — are routed to
// the thread's sole runtime instance exactly as before, which keeps the two
// wire formats interoperable.
package protocol

import (
	"encoding/gob"
	"fmt"
	"strings"

	"caaction/internal/except"
)

// Message is implemented by everything that travels between threads.
type Message interface {
	// Kind returns a short stable name used for metrics and tracing.
	Kind() string
}

// Exception is sent by a thread to all other threads of an action when it
// raises exception Exc (§3.3.2: "Exception(A, Ti, E)").
//
// Round tags the resolution round within the action instance (the number of
// Commits already processed). The paper's algorithm leaves messages of
// successive rounds distinguishable only by FIFO order, which admits a race
// when a handler raises immediately after a Commit whose delivery to some
// peer is still in flight; explicit round numbers close it without changing
// any message count. All resolution-protocol messages carry the same tag.
type Exception struct {
	Action string // action instance identifier
	From   string // sending thread
	Round  int
	Exc    except.Raised
}

// Kind implements Message.
func (Exception) Kind() string { return "Exception" }

func (m Exception) String() string {
	return fmt.Sprintf("Exception(%s, %s, %s)", m.Action, m.From, m.Exc.ID)
}

// Suspended is sent by a thread that raised no exception itself but has
// received Exception or Suspended messages from others (§3.3.2:
// "Suspended(A, Ti, S)").
type Suspended struct {
	Action string
	From   string
	Round  int
}

// Kind implements Message.
func (Suspended) Kind() string { return "Suspended" }

func (m Suspended) String() string {
	return fmt.Sprintf("Suspended(%s, %s)", m.Action, m.From)
}

// Commit is sent by the resolving thread after it completes resolution;
// every receiver invokes its handler for Resolved (§3.3.2: "Commit(A, E)").
type Commit struct {
	Action   string
	From     string
	Round    int
	Resolved except.ID
	// Raised carries the resolved set for diagnostics and handler context.
	Raised []except.Raised
}

// Kind implements Message.
func (Commit) Kind() string { return "Commit" }

func (m Commit) String() string {
	return fmt.Sprintf("Commit(%s, %s)", m.Action, m.Resolved)
}

// Relay is used only by the CR-86 baseline: each thread forwards every
// first-hand exception it learns to all other threads, giving the O(N³)
// message pattern the paper attributes to Campbell & Randell's scheme.
type Relay struct {
	Action string
	From   string // relaying thread
	Round  int
	Exc    except.Raised
}

// Kind implements Message.
func (Relay) Kind() string { return "Relay" }

// Propose is used only by the R-96 baseline's agreement round: every thread
// broadcasts the resolving exception it computed locally.
type Propose struct {
	Action   string
	From     string
	Round    int
	Resolved except.ID
}

// Kind implements Message.
func (Propose) Kind() string { return "Propose" }

// Ack is used only by the R-96 baseline's final round.
type Ack struct {
	Action string
	From   string
	Round  int
}

// Kind implements Message.
func (Ack) Kind() string { return "Ack" }

// ToBeSignalled is the §3.4 signalling-coordination message: thread From will
// signal exception Exc (φ when it signals nothing) to the enclosing action.
// Round is the resolution round the vote belongs to; Phase distinguishes the
// second exchange forced by an undo (µ) vote whose undo operations may fail.
type ToBeSignalled struct {
	Action string
	From   string
	Exc    except.ID
	Round  int
	Phase  int
}

// Kind implements Message.
func (ToBeSignalled) Kind() string { return "ToBeSignalled" }

func (m ToBeSignalled) String() string {
	exc := string(m.Exc)
	if m.Exc == except.None {
		exc = "φ"
	}
	return fmt.Sprintf("toBeSignalled(%s, %s, %s, r%d)", m.Action, m.From, exc, m.Round)
}

// Enter announces that thread From has arrived at the entry point of the
// action, playing Role; the entry barrier completes when a thread has
// received Enter from every peer.
type Enter struct {
	Action string
	From   string
	Role   string
}

// Kind implements Message.
func (Enter) Kind() string { return "Enter" }

// App carries application-level cooperation data between two roles of an
// action. Payloads must be gob-registered to cross the TCP transport.
type App struct {
	Action  string
	From    string
	ToRole  string
	Payload any
}

// Kind implements Message.
func (App) Kind() string { return "App" }

// ActionOf returns the action-instance identifier a message is tagged with,
// or "" for an unroutable (non-protocol) message.
func ActionOf(msg Message) string {
	switch m := msg.(type) {
	case Exception:
		return m.Action
	case Suspended:
		return m.Action
	case Commit:
		return m.Action
	case Relay:
		return m.Action
	case Propose:
		return m.Action
	case Ack:
		return m.Action
	case ToBeSignalled:
		return m.Action
	case Enter:
		return m.Action
	case App:
		return m.Action
	default:
		return ""
	}
}

// InstanceOf extracts the mux instance tag from an action-instance
// identifier: the prefix before the first '!', or "" when the identifier is
// untagged (the single-action wire format).
func InstanceOf(action string) string {
	if i := strings.IndexByte(action, '!'); i >= 0 {
		return action[:i]
	}
	return ""
}

// TagInstance prefixes an action-instance identifier with a mux instance
// tag. It panics on tags containing the reserved characters '!' or '/' —
// tag construction is programmatic, so a bad tag is a wiring bug.
func TagInstance(tag, action string) string {
	if strings.ContainsAny(tag, "!/") {
		panic(fmt.Sprintf("protocol: instance tag %q contains a reserved character", tag))
	}
	return tag + "!" + action
}

// RegisterGob registers every protocol message with encoding/gob so they can
// traverse the TCP transport. Safe to call multiple times.
func RegisterGob() {
	gob.Register(Exception{})
	gob.Register(Suspended{})
	gob.Register(Commit{})
	gob.Register(Relay{})
	gob.Register(Propose{})
	gob.Register(Ack{})
	gob.Register(ToBeSignalled{})
	gob.Register(Enter{})
	gob.Register(App{})
}
