package protocol

import "strings"

// ParsedID is the parsed form of a hierarchical action-instance identifier
// ("tag!outer#1/inner#2"). Identifiers are parsed once per frame/instance
// and the parsed form is cached (core caches it on the action frame), so
// routing and diagnostics never re-split the string per message.
type ParsedID struct {
	// Raw is the identifier as it travels on the wire.
	Raw string
	// Tag is the mux instance tag ("" when untagged — the single-action
	// wire format).
	Tag string
	// Parent is the enclosing action's full identifier including the tag
	// ("" for a top-level action).
	Parent string
	// Base is the leaf segment ("inner#2").
	Base string
	// Depth is the nesting depth: 0 for a top-level action, 1 for its
	// direct children, and so on.
	Depth int
}

// ParseID parses an action-instance identifier. The zero identifier parses
// to the zero ParsedID.
func ParseID(raw string) ParsedID {
	p := ParsedID{Raw: raw}
	rest := raw
	if i := strings.IndexByte(rest, '!'); i >= 0 {
		p.Tag = rest[:i]
		rest = rest[i+1:]
	}
	if i := strings.LastIndexByte(rest, '/'); i >= 0 {
		p.Depth = strings.Count(rest, "/")
		p.Base = rest[i+1:]
		// Parent keeps the tag prefix so it is itself a full identifier.
		p.Parent = raw[:len(raw)-len(rest)+i]
	} else {
		p.Base = rest
	}
	return p
}

// Child derives the parsed form of a nested instance identifier from its
// already-parsed parent, without re-splitting the parent's string.
func (p ParsedID) Child(base string) ParsedID {
	return ParsedID{
		Raw:    p.Raw + "/" + base,
		Tag:    p.Tag,
		Parent: p.Raw,
		Base:   base,
		Depth:  p.Depth + 1,
	}
}
