package protocol

import (
	"reflect"
	"testing"
)

// FuzzCodecRoundTrip feeds arbitrary bytes to the binary decoder: it must
// never panic, and any frame it accepts must re-encode and re-decode to the
// same message (value round-trip; byte equality is not required because
// varints admit non-minimal encodings).
func FuzzCodecRoundTrip(f *testing.F) {
	for _, msg := range codecMessages() {
		buf, err := AppendFrame(nil, "seed-sender", msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{byte(KindCommit + 1), 1, 'x', 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		from, msg, err := DecodeFrame(data)
		if err != nil {
			return // malformed input rejected: fine
		}
		buf, err := AppendFrame(nil, from, msg)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		from2, msg2, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		// Compare via canonical re-encodings: DeepEqual would reject NaN
		// payloads that round-trip bit-exactly.
		buf2, err := AppendFrame(nil, from2, msg2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if from2 != from || !reflect.DeepEqual(buf2, buf) {
			t.Fatalf("round trip drift:\n first (%q, %#v)\nsecond (%q, %#v)",
				from, msg, from2, msg2)
		}
	})
}
