package protocol

import (
	"reflect"
	"testing"
)

// FuzzCodecRoundTrip feeds arbitrary bytes to the binary decoder: it must
// never panic, and any frame it accepts must re-encode and re-decode to the
// same message (value round-trip; byte equality is not required because
// varints admit non-minimal encodings).
func FuzzCodecRoundTrip(f *testing.F) {
	for _, msg := range codecMessages() {
		buf, err := AppendFrame(nil, "seed-sender", msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{byte(KindCommit + 1), 1, 'x', 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		from, msg, err := DecodeFrame(data)
		if err != nil {
			return // malformed input rejected: fine
		}
		buf, err := AppendFrame(nil, from, msg)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		from2, msg2, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		// Compare via canonical re-encodings: DeepEqual would reject NaN
		// payloads that round-trip bit-exactly.
		buf2, err := AppendFrame(nil, from2, msg2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if from2 != from || !reflect.DeepEqual(buf2, buf) {
			t.Fatalf("round trip drift:\n first (%q, %#v)\nsecond (%q, %#v)",
				from, msg, from2, msg2)
		}
	})
}

// FuzzNodeBatchRoundTrip feeds arbitrary bytes to the batch decoder: it must
// never panic, reject torn and oversized entry lengths, and any batch it
// accepts must re-encode entry-for-entry and decode to the same sequence.
func FuzzNodeBatchRoundTrip(f *testing.F) {
	var seed []NodeBatchEntry
	for _, msg := range codecMessages() {
		seed = append(seed, NodeBatchEntry{To: "T1", From: "seed-sender", Msg: msg})
	}
	full, err := AppendNodeBatch(nil, seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(full)
	f.Add(AppendNodeBatchHeader(nil))                    // empty batch
	f.Add(full[:len(full)-3])                            // torn tail
	f.Add([]byte{0x00, 0x01, 0xff, 0xff, 0xff, 0xff, 1}) // oversized entry length
	f.Add([]byte{0x00, 0x02, 0x80})                      // truncated credit, wrong kind
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var got []NodeBatchEntry
		err := DecodeNodeBatch(data, func(to, from string, msg Message) error {
			got = append(got, NodeBatchEntry{To: to, From: from, Msg: msg})
			return nil
		})
		if err != nil {
			return // malformed input rejected: fine
		}
		buf, err := AppendNodeBatch(nil, got)
		if err != nil {
			t.Fatalf("accepted batch failed to re-encode: %v", err)
		}
		var got2 []NodeBatchEntry
		if err := DecodeNodeBatch(buf, func(to, from string, msg Message) error {
			got2 = append(got2, NodeBatchEntry{To: to, From: from, Msg: msg})
			return nil
		}); err != nil {
			t.Fatalf("re-encoded batch failed to decode: %v", err)
		}
		if len(got) != len(got2) {
			t.Fatalf("entry count drift: %d != %d", len(got), len(got2))
		}
		// Compare entries via canonical re-encodings (NaN payloads).
		for i := range got {
			b1, err1 := AppendNodeFrame(nil, got[i].To, got[i].From, got[i].Msg)
			b2, err2 := AppendNodeFrame(nil, got2[i].To, got2[i].From, got2[i].Msg)
			if err1 != nil || err2 != nil || !reflect.DeepEqual(b1, b2) {
				t.Fatalf("entry %d drift: %#v != %#v", i, got[i], got2[i])
			}
		}
	})
}
