package protocol

import (
	"bytes"
	"encoding/gob"
	"testing"

	"caaction/internal/except"
)

func allMessages() []Message {
	return []Message{
		Exception{Action: "a#1", From: "T1", Round: 2,
			Exc: except.Raised{ID: "e1", Origin: "T1", Info: "x"}},
		Suspended{Action: "a#1", From: "T2", Round: 2},
		Commit{Action: "a#1", From: "T3", Round: 2, Resolved: "e1+e2",
			Raised: []except.Raised{{ID: "e1"}, {ID: "e2"}}},
		Relay{Action: "a#1", From: "T2", Round: 2, Exc: except.Raised{ID: "e1", Origin: "T1"}},
		Propose{Action: "a#1", From: "T1", Round: 2, Resolved: "e1"},
		Ack{Action: "a#1", From: "T1", Round: 2},
		ToBeSignalled{Action: "a#1", From: "T1", Exc: except.Undo, Round: 2, Phase: 2},
		Enter{Action: "a#1", From: "T1", Role: "producer"},
		App{Action: "a#1", From: "T1", ToRole: "consumer", Payload: "data"},
	}
}

func TestKindsAreDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range allMessages() {
		k := m.Kind()
		if k == "" {
			t.Fatalf("%T has empty kind", m)
		}
		if seen[k] {
			t.Fatalf("duplicate kind %q", k)
		}
		seen[k] = true
	}
}

func TestGobRoundTrip(t *testing.T) {
	RegisterGob()
	for _, m := range allMessages() {
		var buf bytes.Buffer
		wrapped := struct{ M Message }{m}
		if err := gob.NewEncoder(&buf).Encode(&wrapped); err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		var out struct{ M Message }
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		if out.M.Kind() != m.Kind() {
			t.Fatalf("round trip changed kind: %q -> %q", m.Kind(), out.M.Kind())
		}
	}
	// Registration must be idempotent.
	RegisterGob()
}

func TestActionOfCoversEveryMessage(t *testing.T) {
	for _, m := range allMessages() {
		if got := ActionOf(m); got != "a#1" {
			t.Errorf("ActionOf(%T) = %q, want %q", m, got, "a#1")
		}
	}
	if got := ActionOf(nil); got != "" {
		t.Errorf("ActionOf(nil) = %q, want empty", got)
	}
}

func TestInstanceTags(t *testing.T) {
	cases := []struct {
		action, instance string
	}{
		{"transfer#1", ""},                   // untagged single-action format
		{"outer#1/inner#2", ""},              // nesting without a tag
		{"a7!transfer#1", "a7"},              // tagged top-level
		{"a7!transfer#1/leg#1", "a7"},        // tag inherited by nesting
		{TagInstance("p3", "chaos#1"), "p3"}, // round trip
		{"", ""},
	}
	for _, tc := range cases {
		if got := InstanceOf(tc.action); got != tc.instance {
			t.Errorf("InstanceOf(%q) = %q, want %q", tc.action, got, tc.instance)
		}
	}
}

func TestTagInstanceRejectsReservedCharacters(t *testing.T) {
	for _, tag := range []string{"a!b", "a/b", "!", "/"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TagInstance(%q, _) did not panic", tag)
				}
			}()
			TagInstance(tag, "x#1")
		}()
	}
}

func TestStringForms(t *testing.T) {
	cases := []struct {
		msg  interface{ String() string }
		want string
	}{
		{Exception{Action: "a", From: "T1", Exc: except.Raised{ID: "e1"}}, "Exception(a, T1, e1)"},
		{Suspended{Action: "a", From: "T2"}, "Suspended(a, T2)"},
		{Commit{Action: "a", Resolved: "e"}, "Commit(a, e)"},
		{ToBeSignalled{Action: "a", From: "T1", Exc: except.None, Round: 1, Phase: 1},
			"toBeSignalled(a, T1, φ, r1)"},
	}
	for _, tc := range cases {
		if got := tc.msg.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}
