package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"caaction/internal/protocol"
	"caaction/internal/trace"
	"caaction/internal/vclock"
)

// Tests for the cross-node fast path: batched node frames, credit-based
// per-peer flow control, the per-flush route cache and sink (inline)
// receive delivery. See DESIGN.md "Cross-node fast path".

// nodeNetWith builds a node-mode network like nodeNet, applying cfg (knob
// setters) before ConfigureNode.
func nodeNetWith(t *testing.T, hosted map[string]bool, table *sync.Map, cfg func(*TCP)) *TCP {
	t.Helper()
	n := NewTCP(vclock.NewReal())
	if cfg != nil {
		cfg(n)
	}
	local := func(addr string) bool { return hosted[addr] }
	resolve := func(addr string) (string, bool) {
		v, ok := table.Load(addr)
		if !ok {
			return "", false
		}
		return v.(string), true
	}
	if _, err := n.ConfigureNode("127.0.0.1:0", local, resolve); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestTCPNodeBatchedSendAllocCeiling mirrors TestTCPSendAllocCeiling on the
// batched node path: one cross-node send+receive round trip (batch append,
// coalesced flush, batch decode, delivery) must stay within the same small
// constant allocation budget as the per-endpoint binary path.
func TestTCPNodeBatchedSendAllocCeiling(t *testing.T) {
	const ceiling = 16.0 // allocs per send+recv round trip

	var table sync.Map
	n1 := nodeNet(t, map[string]bool{"A": true}, &table)
	n2 := nodeNet(t, map[string]bool{"B": true}, &table)
	defer func() { _ = n1.Close() }()
	defer func() { _ = n2.Close() }()
	table.Store("B", n2.NodeAddr())

	a, err := n1.Endpoint("A")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n2.Endpoint("B")
	if err != nil {
		t.Fatal(err)
	}
	var msg protocol.Message = protocol.Suspended{Action: "bench#1", From: "A", Round: 1}

	cycle := func() {
		if err := a.Send("B", msg); err != nil {
			panic(err)
		}
		if _, ok := b.Recv(); !ok {
			panic("receive failed")
		}
	}
	for i := 0; i < 32; i++ {
		cycle() // dial, grow buffers, warm the pools and the route cache
	}
	runtime.GC()
	if n := testing.AllocsPerRun(100, cycle); n > ceiling {
		t.Fatalf("batched node send allocates %v allocs/op, ceiling %v", n, ceiling)
	}
}

// TestTCPNodeBatchFramesMetric pins that cross-node traffic actually rides
// batched frames (and counts them): a burst inside one coalesce window
// lands in far fewer batch flushes than messages.
func TestTCPNodeBatchFramesMetric(t *testing.T) {
	var table sync.Map
	n1 := nodeNet(t, map[string]bool{"A": true}, &table)
	n2 := nodeNet(t, map[string]bool{"B": true}, &table)
	defer func() { _ = n1.Close() }()
	defer func() { _ = n2.Close() }()
	table.Store("B", n2.NodeAddr())
	m := new(trace.Metrics)
	n1.SetMetrics(m)

	a, _ := n1.Endpoint("A")
	b, _ := n2.Endpoint("B")
	const burst = 200
	for i := 0; i < burst; i++ {
		if err := a.Send("B", protocol.Ack{Action: "m#1", From: "A", Round: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < burst; i++ {
		d, ok := b.RecvTimeout(5 * time.Second)
		if !ok {
			t.Fatalf("delivery %d lost", i)
		}
		if got := d.Msg.(protocol.Ack).Round; got != i {
			t.Fatalf("FIFO violated across batch boundaries: got round %d at %d", got, i)
		}
	}
	snap := m.Snapshot()
	frames := snap["tcp.batch_frames"]
	if frames < 1 || frames >= burst {
		t.Fatalf("tcp.batch_frames = %d for a %d-message burst, want 1 ≤ frames < %d", frames, burst, burst)
	}
	if snap["msg.total"] != burst {
		t.Fatalf("msg.total = %d, want %d", snap["msg.total"], burst)
	}
}

// TestTCPNodeMixedBatchInterop runs one batched and one legacy
// (SetPeerBatch(false)) process against each other: receivers always accept
// both wire formats, so traffic flows in both directions.
func TestTCPNodeMixedBatchInterop(t *testing.T) {
	var table sync.Map
	batched := nodeNetWith(t, map[string]bool{"A": true}, &table, nil)
	legacy := nodeNetWith(t, map[string]bool{"B": true}, &table, func(n *TCP) {
		n.SetPeerBatch(false)
	})
	defer func() { _ = batched.Close() }()
	defer func() { _ = legacy.Close() }()
	table.Store("A", batched.NodeAddr())
	table.Store("B", legacy.NodeAddr())

	a, _ := batched.Endpoint("A")
	b, _ := legacy.Endpoint("B")

	const each = 50
	for i := 0; i < each; i++ {
		if err := a.Send("B", protocol.Ack{Action: "a2b#1", From: "A", Round: i}); err != nil {
			t.Fatal(err)
		}
		if err := b.Send("A", protocol.Ack{Action: "b2a#1", From: "B", Round: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < each; i++ {
		d, ok := b.RecvTimeout(5 * time.Second)
		if !ok || d.Msg.(protocol.Ack).Round != i {
			t.Fatalf("batched→legacy delivery %d failed: %+v %v", i, d, ok)
		}
		d, ok = a.RecvTimeout(5 * time.Second)
		if !ok || d.Msg.(protocol.Ack).Round != i {
			t.Fatalf("legacy→batched delivery %d failed: %+v %v", i, d, ok)
		}
	}
}

// fakePeer is a hand-rolled node listener for credit-protocol tests: it
// accepts one connection, advertises a window, and then reads (or refuses
// to read) data frames on command.
type fakePeer struct {
	ln    net.Listener
	conn  net.Conn
	ready chan struct{}
}

func newFakePeer(t *testing.T, window int) *fakePeer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &fakePeer{ln: ln, ready: make(chan struct{})}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		p.conn = conn
		if window > 0 {
			p.grant(window)
		}
		close(p.ready)
	}()
	return p
}

// grant writes one credit frame on the accepted connection.
func (p *fakePeer) grant(n int) {
	var scratch [24]byte
	buf := protocol.AppendNodeCredit(scratch[:4], n)
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	_, _ = p.conn.Write(buf)
}

// drain reads and decodes data frames until count messages arrived or the
// deadline passed, returning the number of messages seen.
func (p *fakePeer) drain(t *testing.T, count int, deadline time.Duration) int {
	t.Helper()
	_ = p.conn.SetReadDeadline(time.Now().Add(deadline))
	br := bufio.NewReader(p.conn)
	var hdr [4]byte
	seen := 0
	for seen < count {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return seen
		}
		n := binary.BigEndian.Uint32(hdr[:])
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return seen
		}
		if protocol.IsNodeBatch(buf) {
			if err := protocol.DecodeNodeBatch(buf, func(string, string, protocol.Message) error {
				seen++
				return nil
			}); err != nil {
				t.Fatalf("fake peer: batch decode: %v", err)
			}
		} else if !protocol.IsNodeControl(buf) {
			if _, _, _, err := protocol.DecodeNodeFrame(buf); err != nil {
				t.Fatalf("fake peer: frame decode: %v", err)
			}
			seen++
		}
	}
	return seen
}

func (p *fakePeer) close() {
	if p.conn != nil {
		_ = p.conn.Close()
	}
	_ = p.ln.Close()
}

// TestTCPCreditExhaustionBoundsBufferedMessages is the stalled-peer chaos
// scenario: the peer advertises a window and then stops consuming. The
// sender must accept at most window (on the wire) + window (pending)
// messages, fail everything further with ErrPeerStalled and count the
// stalls — bounded backpressure instead of unbounded batch growth. Once the
// peer drains and grants again, the pending messages flow and none of the
// accepted ones is lost.
func TestTCPCreditExhaustionBoundsBufferedMessages(t *testing.T) {
	const window = 4

	var table sync.Map
	sender := nodeNet(t, map[string]bool{"A": true}, &table)
	defer func() { _ = sender.Close() }()
	m := new(trace.Metrics)
	sender.SetMetrics(m)
	peer := newFakePeer(t, window)
	defer peer.close()
	table.Store("B", peer.ln.Addr().String())

	a, err := sender.Endpoint("A")
	if err != nil {
		t.Fatal(err)
	}
	// First send establishes the connection; wait for the advertisement to
	// land so the window is engaged for the rest of the test.
	if err := a.Send("B", protocol.Ack{Action: "c#1", From: "A", Round: 0}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-peer.ready:
	case <-time.After(5 * time.Second):
		t.Fatal("fake peer never accepted")
	}
	conn := func() *tcpConn {
		sender.mu.RLock()
		defer sender.mu.RUnlock()
		return sender.nodeConns[peer.ln.Addr().String()]
	}()
	if conn == nil {
		t.Fatal("no node connection established")
	}
	waitLive := func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			conn.mu.Lock()
			live, pendMax := conn.creditLive, conn.pendMax
			conn.mu.Unlock()
			if live {
				if pendMax != window {
					t.Fatalf("pendMax = %d, want the advertised window %d", pendMax, window)
				}
				return
			}
			if time.Now().After(deadline) {
				t.Fatal("credit advertisement never arrived")
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitLive()

	// Push far past the window. The dial-triggering send left before the
	// advertisement landed, so it is not window-accounted; after that the
	// bound is one window of credit plus one window of pending. Everything
	// further must fail typed, and the pending buffer must stay bounded.
	accepted, stalled := 1, 0
	for i := 1; i < window*5; i++ {
		err := a.Send("B", protocol.Ack{Action: "c#1", From: "A", Round: i})
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrPeerStalled):
			stalled++
		default:
			t.Fatalf("send %d: unexpected error %v", i, err)
		}
	}
	if stalled == 0 {
		t.Fatal("no send surfaced ErrPeerStalled past 2×window")
	}
	if accepted > 2*window+1 {
		t.Fatalf("accepted %d sends, bound is 2×window+1 = %d (one pre-advertisement send)", accepted, 2*window+1)
	}
	conn.mu.Lock()
	pendCnt, pendBytes := conn.pendCnt, len(conn.pend)
	conn.mu.Unlock()
	if pendCnt > window {
		t.Fatalf("pending buffer holds %d messages, bound is the window %d", pendCnt, window)
	}
	// Every pending entry is one small Ack; the byte bound follows from the
	// message bound (entry slot + frame), with slack for encoding overhead.
	if maxBytes := window * 64; pendBytes > maxBytes {
		t.Fatalf("pending buffer holds %d bytes for %d small messages (>%d)", pendBytes, pendCnt, maxBytes)
	}
	if got := m.Snapshot()["tcp.credit_stalls"]; got != int64(stalled) {
		t.Fatalf("tcp.credit_stalls = %d, want %d", got, stalled)
	}

	// The peer comes back: grants flow, pending drains, nothing accepted is
	// lost and new sends succeed again.
	peer.grant(4 * window)
	if seen := peer.drain(t, accepted, 5*time.Second); seen != accepted {
		t.Fatalf("peer received %d messages after recovery, want every accepted send (%d)", seen, accepted)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := a.Send("B", protocol.Ack{Action: "c#2", From: "A", Round: 99}); err == nil {
			break
		} else if !errors.Is(err, ErrPeerStalled) {
			t.Fatalf("post-recovery send: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("sends never recovered after the peer drained")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTCPNodeStaleRouteHealsAfterRestart kills the hosting peer while the
// route cache still points at it: sends fail (typed, not hanging) while the
// resolver is stale, and the moment the resolver learns the restarted
// peer's new address the very next send must flow — the per-flush route
// cache may never pin a dead placement.
func TestTCPNodeStaleRouteHealsAfterRestart(t *testing.T) {
	var table sync.Map
	n1 := nodeNet(t, map[string]bool{"A": true}, &table)
	defer func() { _ = n1.Close() }()
	n2 := nodeNet(t, map[string]bool{"B": true}, &table)
	table.Store("B", n2.NodeAddr())
	oldAddr := n2.NodeAddr()

	a, _ := n1.Endpoint("A")
	b1, _ := n2.Endpoint("B")
	if err := a.Send("B", protocol.Ack{Action: "pre#1", From: "A"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := b1.RecvTimeout(5 * time.Second); !ok {
		t.Fatal("pre-restart delivery failed")
	}

	// Kill B. The resolver still reports the dead address: sends must fail
	// with an error (broken conn or failed dial), not silently cache-hit
	// into the void forever.
	if err := n2.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := a.Send("B", protocol.Ack{Action: "dead#1", From: "A"}); err != nil {
			break // the break surfaced; conn dropped, route invalidated
		}
		if time.Now().After(deadline) {
			t.Fatal("sends to the dead peer never surfaced an error")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Restart on a fresh port; only then update the resolver.
	n3 := nodeNet(t, map[string]bool{"B": true}, &table)
	defer func() { _ = n3.Close() }()
	if n3.NodeAddr() == oldAddr {
		t.Skipf("restart reused port %s; cannot exercise re-resolve", oldAddr)
	}
	b2, _ := n3.Endpoint("B")
	table.Store("B", n3.NodeAddr())
	if err := a.Send("B", protocol.Ack{Action: "post#1", From: "A"}); err != nil {
		t.Fatalf("send after resolver update: %v", err)
	}
	if d, ok := b2.RecvTimeout(5 * time.Second); !ok || d.Msg.(protocol.Ack).Action != "post#1" {
		t.Fatalf("post-restart delivery failed: %+v %v", d, ok)
	}
}

// TestTCPSinkInstallDrainsQueueInOrder pins the FIFO contract across sink
// installation: deliveries queued before SetSink (retained-frame flushes,
// sends racing the bind) drain through the sink first, and everything
// delivered after the installation takes the sink directly — nothing
// overtakes, nothing is lost.
func TestTCPSinkInstallDrainsQueueInOrder(t *testing.T) {
	var table sync.Map
	n1 := nodeNet(t, map[string]bool{"A": true}, &table)
	n2 := nodeNet(t, map[string]bool{"B": true}, &table)
	defer func() { _ = n1.Close() }()
	defer func() { _ = n2.Close() }()
	table.Store("B", n2.NodeAddr())

	a, _ := n1.Endpoint("A")
	// Send while B is unbound: frames retain, then flush into the queue at
	// bind time — exactly the residue SetSink must drain.
	const early = 5
	for i := 0; i < early; i++ {
		if err := a.Send("B", protocol.Ack{Action: "pre#1", From: "A", Round: i}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		n2.mu.Lock()
		retained := len(n2.retained["B"])
		n2.mu.Unlock()
		if retained == early {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retained %d frames, want %d", retained, early)
		}
		time.Sleep(time.Millisecond)
	}
	bAny, err := n2.Endpoint("B")
	if err != nil {
		t.Fatal(err)
	}
	b := bAny.(*tcpEndpoint)
	if b.queue.Len() != early {
		t.Fatalf("queue holds %d deliveries at bind, want %d", b.queue.Len(), early)
	}

	var mu sync.Mutex
	var got []int
	b.SetSink(func(d Delivery) {
		mu.Lock()
		got = append(got, d.Msg.(protocol.Ack).Round)
		mu.Unlock()
	})
	if b.queue.Len() != 0 {
		t.Fatalf("queue still holds %d deliveries after sink install", b.queue.Len())
	}
	const late = 5
	for i := early; i < early+late; i++ {
		if err := a.Send("B", protocol.Ack{Action: "post#1", From: "A", Round: i}); err != nil {
			t.Fatal(err)
		}
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == early+late {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sink saw %d deliveries, want %d", n, early+late)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, r := range got {
		if r != i {
			t.Fatalf("sink order violated: got round %d at position %d (%v)", r, i, got)
		}
	}
	if b.queue.Len() != 0 {
		t.Fatalf("queue grew after sink install: %d", b.queue.Len())
	}
}

// TestTCPSinkDisabledWithBatchOff pins the single-knob contract:
// SetPeerBatch(false) turns the receive fast path off too, so the
// benchmark's unbatched baseline really is the legacy queue+pump path.
func TestTCPSinkDisabledWithBatchOff(t *testing.T) {
	var table sync.Map
	n2 := nodeNetWith(t, map[string]bool{"B": true}, &table, func(n *TCP) {
		n.SetPeerBatch(false)
	})
	defer func() { _ = n2.Close() }()
	bAny, err := n2.Endpoint("B")
	if err != nil {
		t.Fatal(err)
	}
	b := bAny.(*tcpEndpoint)
	b.SetSink(func(Delivery) {})
	if b.sink.Load() != nil {
		t.Fatal("sink installed despite SetPeerBatch(false)")
	}
}

// TestTCPNodeShardTeardownKeepsEarlyFrames pins the lossless-shard-death
// guarantee: a fast peer's frames for a thread's NEXT action instance can
// arrive while the thread closes its LAST open instance, tearing the mux
// shard down. The dying shard must hand its retained frames back to the
// transport (tcpEndpoint.Reinject) instead of discarding them, so the
// successor instance receives them when it opens — previously they
// vanished and the peer's round wedged until the action deadline.
func TestTCPNodeShardTeardownKeepsEarlyFrames(t *testing.T) {
	const early = 5

	var table sync.Map
	n1 := nodeNet(t, map[string]bool{"A": true}, &table)
	n2 := nodeNet(t, map[string]bool{"B": true}, &table)
	defer func() { _ = n1.Close() }()
	defer func() { _ = n2.Close() }()
	table.Store("A", n1.NodeAddr())
	table.Store("B", n2.NodeAddr())

	mux := NewMux(vclock.NewReal(), n2)
	b1, err := mux.Open("i1", "B")
	if err != nil {
		t.Fatal(err)
	}
	a, err := n1.Endpoint("A")
	if err != nil {
		t.Fatal(err)
	}
	// Frames for instance i2, which has not opened on B yet: the shard
	// retains them for a future Open.
	for i := 0; i < early; i++ {
		if err := a.Send("B", enter("i2", "A")); err != nil {
			t.Fatal(err)
		}
	}
	// Let the frames cross the wire and land in the shard's retained set
	// before the teardown races them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		b1.(*muxEndpoint).shared.mu.Lock()
		n := b1.(*muxEndpoint).shared.retainedLen
		b1.(*muxEndpoint).shared.mu.Unlock()
		if n >= early {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d early frames retained by the shard", n, early)
		}
		time.Sleep(time.Millisecond)
	}
	// Closing the last instance kills the shard; its retained frames must
	// flow back into the transport, not die with it.
	if err := b1.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := mux.Open("i2", "B")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b2.Close() }()
	for i := 0; i < early; i++ {
		d, ok := b2.RecvTimeout(5 * time.Second)
		if !ok {
			t.Fatalf("early frame %d of %d lost in shard teardown", i+1, early)
		}
		if inst := protocol.InstanceOf(protocol.ActionOf(d.Msg)); inst != "i2" {
			t.Fatalf("frame %d routed instance %q, want i2", i+1, inst)
		}
	}
}
