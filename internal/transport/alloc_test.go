package transport

import (
	"runtime"
	"testing"
	"time"

	"caaction/internal/protocol"
	"caaction/internal/trace"
	"caaction/internal/vclock"
)

// TestSimSendZeroAllocsDisabledLog pins the hot-path contract of the
// performance overhaul: with logging disabled (nil Log) and metrics
// attached, a steady-state sim send+receive cycle performs ZERO heap
// allocations — no eager log formatting, no metric name interning, no
// delivery boxing, no queue growth.
func TestSimSendZeroAllocsDisabledLog(t *testing.T) {
	clk := vclock.NewReal()
	net := NewSim(SimConfig{Clock: clk, Metrics: &trace.Metrics{}})
	a, err := net.Endpoint("A")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("B")
	if err != nil {
		t.Fatal(err)
	}
	// Box the message once: the struct→interface conversion is the caller's
	// cost at construction time, not part of the transport send path.
	var msg protocol.Message = protocol.Suspended{Action: "bench#1", From: "A", Round: 1}

	cycle := func() {
		if err := a.Send("B", msg); err != nil {
			panic(err)
		}
		if _, ok := b.Recv(); !ok {
			panic("receive failed")
		}
	}
	// Warm up: intern the per-kind counters, size the queue's backing array
	// and populate the FIFO clamp map.
	for i := 0; i < 32; i++ {
		cycle()
	}
	runtime.GC() // stabilize the pool so the measurement window sees no GC
	if n := testing.AllocsPerRun(200, cycle); n != 0 {
		t.Fatalf("disabled-log sim send allocates: %v allocs/op, want 0", n)
	}
}

// TestTCPSendAllocCeiling pins a hard ceiling on the binary-codec TCP
// path: one send+receive round trip (encode, length-prefixed write, read,
// decode, queue hand-off) must stay within a small constant allocation
// budget. The gob wire needed several times this.
func TestTCPSendAllocCeiling(t *testing.T) {
	const ceiling = 16.0 // allocs per send+recv round trip

	clk := vclock.NewReal()
	net := NewTCP(clk)
	defer func() { _ = net.Close() }()
	a, err := net.Endpoint("T1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("T2")
	if err != nil {
		t.Fatal(err)
	}
	var msg protocol.Message = protocol.Suspended{Action: "bench#1", From: "T1", Round: 1}

	cycle := func() {
		if err := a.Send("T2", msg); err != nil {
			panic(err)
		}
		if _, ok := b.Recv(); !ok {
			panic("receive failed")
		}
	}
	for i := 0; i < 32; i++ {
		cycle() // dial, grow buffers, warm the pools
	}
	runtime.GC()
	if n := testing.AllocsPerRun(100, cycle); n > ceiling {
		t.Fatalf("binary-codec TCP send allocates %v allocs/op, ceiling %v", n, ceiling)
	}
}

// TestCloseEndpointCleansPairHistory is the regression test for the lastAt
// leak: per-pair FIFO clamp entries for crash-stopped or closed endpoints
// used to be retained forever.
func TestCloseEndpointCleansPairHistory(t *testing.T) {
	clk := vclock.NewVirtual()
	net := NewSim(SimConfig{Clock: clk, Latency: FixedLatency(time.Millisecond)})
	pairCount := func() int {
		net.mu.Lock()
		defer net.mu.Unlock()
		return len(net.lastAt)
	}

	a, err := net.Endpoint("A")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Endpoint("B"); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Endpoint("C"); err != nil {
		t.Fatal(err)
	}
	for _, to := range []string{"B", "C"} {
		if err := a.Send(to, ping(1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := pairCount(); got != 2 {
		t.Fatalf("pair history = %d entries, want 2", got)
	}

	// Crash-stop B: the A->B entry must go; A->C stays.
	if !net.CloseEndpoint("B") {
		t.Fatal("CloseEndpoint(B) found no endpoint")
	}
	if got := pairCount(); got != 1 {
		t.Fatalf("after crash-stop: pair history = %d entries, want 1", got)
	}

	// Graceful close of the sender wipes its remaining entries too.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if got := pairCount(); got != 0 {
		t.Fatalf("after close: pair history = %d entries, want 0", got)
	}
}

// TestCloseEndpointFreshFIFOBaseline: a re-bound address starts with a fresh
// FIFO history — deliveries to the new incarnation are not clamped behind
// the dead incarnation's (possibly delayed) schedule.
func TestCloseEndpointFreshFIFOBaseline(t *testing.T) {
	clk := vclock.NewVirtual()
	net := NewSim(SimConfig{Clock: clk, Latency: FixedLatency(time.Millisecond)})
	a, err := net.Endpoint("A")
	if err != nil {
		t.Fatal(err)
	}
	b1, err := net.Endpoint("B")
	if err != nil {
		t.Fatal(err)
	}
	// Push the A->B clamp far into the virtual future via a perturbation
	// delay, then crash-stop and re-bind B.
	net.SetPerturb(func(_, _ string, _ protocol.Message) Verdict {
		return Verdict{Delay: time.Hour}
	})
	if err := a.Send("B", ping(1)); err != nil {
		t.Fatal(err)
	}
	net.SetPerturb(nil)
	_ = b1.Close()
	b2, err := net.Endpoint("B")
	if err != nil {
		t.Fatal(err)
	}

	if err := a.Send("B", ping(2)); err != nil {
		t.Fatal(err)
	}
	got := make(chan bool, 1)
	clk.Go(func() {
		_, ok := b2.RecvTimeout(time.Minute)
		got <- ok
	})
	clk.Wait()
	if !<-got {
		t.Fatal("delivery to the re-bound endpoint was clamped behind the dead incarnation's schedule")
	}
}
