package transport

import (
	"testing"
	"time"

	"caaction/internal/except"
	"caaction/internal/protocol"
	"caaction/internal/trace"
	"caaction/internal/vclock"
)

func ping(n int) protocol.Message {
	return protocol.Enter{Action: "a", From: "x", Role: string(rune('0' + n))}
}

func TestSimDeliversWithLatency(t *testing.T) {
	clk := vclock.NewVirtual()
	net := NewSim(SimConfig{Clock: clk, Latency: FixedLatency(200 * time.Millisecond)})
	a, err := net.Endpoint("A")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("B")
	if err != nil {
		t.Fatal(err)
	}
	var at time.Duration
	clk.Go(func() {
		d, ok := b.Recv()
		if !ok || d.From != "A" {
			t.Errorf("recv = %+v, %v", d, ok)
		}
		at = clk.Now()
	})
	clk.Go(func() {
		if err := a.Send("B", ping(1)); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	clk.Wait()
	if at != 200*time.Millisecond {
		t.Fatalf("delivered at %v, want 200ms", at)
	}
}

func TestSimFIFOPerPairUnderJitter(t *testing.T) {
	clk := vclock.NewVirtual()
	net := NewSim(SimConfig{
		Clock:   clk,
		Latency: JitterLatency(100*time.Millisecond, 90*time.Millisecond, 7),
	})
	a, _ := net.Endpoint("A")
	b, _ := net.Endpoint("B")
	const n = 50
	var got []string
	clk.Go(func() {
		for i := 0; i < n; i++ {
			if err := a.Send("B", protocol.Suspended{Action: "x", From: string(rune('a' + i%26))}); err != nil {
				t.Errorf("send: %v", err)
			}
		}
	})
	clk.Go(func() {
		for i := 0; i < n; i++ {
			d, ok := b.Recv()
			if !ok {
				t.Error("closed early")
				return
			}
			got = append(got, d.Msg.(protocol.Suspended).From)
		}
	})
	clk.Wait()
	for i := range got {
		if got[i] != string(rune('a'+i%26)) {
			t.Fatalf("out of order at %d: %q", i, got[i])
		}
	}
}

func TestSimMetricsCountByKind(t *testing.T) {
	clk := vclock.NewVirtual()
	var m trace.Metrics
	net := NewSim(SimConfig{Clock: clk, Metrics: &m})
	a, _ := net.Endpoint("A")
	b, _ := net.Endpoint("B")
	clk.Go(func() {
		_ = a.Send("B", protocol.Exception{Action: "x", From: "A", Exc: except.Raised{ID: "e1"}})
		_ = a.Send("B", protocol.Suspended{Action: "x", From: "A"})
		_ = a.Send("B", protocol.Suspended{Action: "x", From: "A"})
	})
	clk.Go(func() {
		for i := 0; i < 3; i++ {
			b.Recv()
		}
	})
	clk.Wait()
	if m.Get("msg.Exception") != 1 || m.Get("msg.Suspended") != 2 || m.Get("msg.total") != 3 {
		t.Fatalf("metrics:\n%s", m.String())
	}
}

func TestSimFaultDropAndCorrupt(t *testing.T) {
	clk := vclock.NewVirtual()
	net := NewSim(SimConfig{Clock: clk})
	a, _ := net.Endpoint("A")
	b, _ := net.Endpoint("B")
	i := 0
	net.SetFault(func(from, to string, msg protocol.Message) Fault {
		i++
		switch i {
		case 1:
			return Drop
		case 2:
			return Corrupt
		default:
			return Deliver
		}
	})
	var deliveries []Delivery
	clk.Go(func() {
		_ = a.Send("B", ping(1)) // dropped
		_ = a.Send("B", ping(2)) // corrupted
		_ = a.Send("B", ping(3)) // clean
		for k := 0; k < 2; k++ {
			d, ok := b.Recv()
			if !ok {
				t.Error("closed early")
				return
			}
			deliveries = append(deliveries, d)
		}
	})
	clk.Wait()
	if len(deliveries) != 2 {
		t.Fatalf("got %d deliveries", len(deliveries))
	}
	if !deliveries[0].Corrupt || deliveries[1].Corrupt {
		t.Fatalf("corrupt flags: %+v", deliveries)
	}
}

func TestSimErrors(t *testing.T) {
	clk := vclock.NewVirtual()
	net := NewSim(SimConfig{Clock: clk})
	a, _ := net.Endpoint("A")
	if _, err := net.Endpoint("A"); err == nil {
		t.Fatal("duplicate address accepted")
	}
	if err := a.Send("nope", ping(1)); err == nil {
		t.Fatal("send to unknown address succeeded")
	}
	if err := net.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("A", ping(1)); err == nil {
		t.Fatal("send after close succeeded")
	}
	if _, err := net.Endpoint("B"); err == nil {
		t.Fatal("endpoint after close succeeded")
	}
}

func TestSimRecvTimeout(t *testing.T) {
	clk := vclock.NewVirtual()
	net := NewSim(SimConfig{Clock: clk})
	a, _ := net.Endpoint("A")
	var ok bool
	clk.Go(func() {
		_, ok = a.RecvTimeout(time.Second)
	})
	clk.Wait()
	if ok {
		t.Fatal("RecvTimeout on silent network returned ok")
	}
}

func TestSimPendingAndEndpointClose(t *testing.T) {
	clk := vclock.NewVirtual()
	net := NewSim(SimConfig{Clock: clk})
	a, _ := net.Endpoint("A")
	b, _ := net.Endpoint("B")
	clk.Go(func() {
		_ = a.Send("B", ping(1))
		clk.Sleep(time.Millisecond)
		if b.Pending() != 1 {
			t.Errorf("pending = %d", b.Pending())
		}
		if err := b.Close(); err != nil {
			t.Error(err)
		}
		if err := a.Send("B", ping(2)); err == nil {
			t.Error("send to closed endpoint succeeded")
		}
	})
	clk.Wait()
	// Rebinding a closed address is allowed.
	if _, err := net.Endpoint("B"); err != nil {
		t.Fatalf("rebind: %v", err)
	}
}
