package transport

import (
	"time"

	"caaction/internal/protocol"
)

// This file implements the run-to-completion delivery lane of the event-loop
// core: on real-time systems, a goroutine that already holds a delivery for a
// parked thread executes that thread's protocol step inline — the routing a
// dedicated receiver goroutine would otherwise be woken up for — and only
// schedules a wakeup when the step completes the parked wait's condition.
// Combined with the sim transport's sender-side sink (see Sim.fastSend), a
// protocol message between co-located threads costs a function call instead
// of two queue hand-offs and two scheduler wakeups.
//
// The lane is strictly an execution optimisation: message routing logic,
// per-pair FIFO order and the WAL recorder hooks are untouched, and the lane
// never activates under the virtual clock, so deterministic simulations (and
// their golden traces) execute exactly as before.

// InlineStatus reports how an AwaitInline wait ended.
type InlineStatus int

const (
	// InlineDelivery: a buffered delivery is returned; the owner routes it
	// on its own goroutine and re-evaluates its wait condition.
	InlineDelivery InlineStatus = iota + 1
	// InlineWoken: a delivering goroutine executed protocol steps against
	// the parked thread and observed the wait condition become true. The
	// owner re-checks its condition (wakeups are level-triggered: a
	// condition that held at wake time is durable until the owner acts).
	InlineWoken
	// InlineTimeout: the wait's deadline expired with no delivery and no
	// wakeup.
	InlineTimeout
	// InlineClosed: the endpoint closed and its buffer is drained — the
	// inline-mode equivalent of a receive returning ok=false.
	InlineClosed
)

// Outbound is one send deferred by an inline-routed protocol step. Steps
// executed by a delivering goroutine must not send while endpoint locks are
// held (two deliverers sending toward each other would deadlock), so their
// sends are buffered and flushed by the deliverer after unlocking — before
// the owner is woken, which preserves the per-pair FIFO order the owner's
// subsequent sends rely on.
type Outbound struct {
	To  string
	Msg protocol.Message
}

// InlineRouter is the thread-side half of the lane, implemented by
// core.Thread. All four methods are invoked with the endpoint's delivery
// lock held and the owner goroutine parked (or still blocked on the wakeup
// the caller is about to deliver), so they may touch thread state that is
// otherwise goroutine-confined: park/claim transitions under the lock, plus
// the wakeup channel, establish the necessary happens-before edges.
type InlineRouter interface {
	// RouteInline executes one delivered protocol step against the parked
	// thread's state, deferring any sends it produces.
	RouteInline(d Delivery)
	// ParkReady reports whether the parked wait's condition now holds. Only
	// durable thread state may be consulted — the owner re-checks on wake.
	ParkReady() bool
	// TakeDeferred hands the sends deferred by preceding RouteInline calls
	// to the deliverer (ownership transfers; the router's buffer resets).
	TakeDeferred() []Outbound
	// InlineSendError reports a failed deferred send; implementations may
	// only touch state that is safe off the owner goroutine (e.g. a
	// concurrency-safe log).
	InlineSendError(to string, err error)
}

// InlineEndpoint is the endpoint extension the runtime's threads use to
// enter inline mode. Only the endpoint's single owner goroutine may call
// AwaitInline/PollInline, mirroring the Recv confinement of plain endpoints.
type InlineEndpoint interface {
	Endpoint
	// AdoptRouter switches the endpoint into inline mode, migrating any
	// already-buffered deliveries. It reports false when the endpoint
	// cannot run the lane (virtual clock, lane disabled, or endpoint
	// closed); the caller then keeps the ordinary Recv loop.
	AdoptRouter(r InlineRouter) bool
	// AwaitInline blocks until a delivery is buffered, the router observes
	// the park condition (InlineWoken), the timeout expires, or the
	// endpoint closes. A negative timeout means no deadline.
	AwaitInline(timeout time.Duration) (Delivery, InlineStatus)
	// PollInline pops one buffered delivery without blocking.
	PollInline() (Delivery, bool)
}

// inlineState is the per-endpoint half of the lane, embedded in muxEndpoint.
// mu guards every field; wake is a reusable capacity-1 channel carrying
// exactly one signal per park claim.
type inlineState struct {
	router InlineRouter
	inbox  []Delivery
	head   int
	parked bool
	closed bool
	wake   chan struct{}
	// timer backs timed parks; owner-confined, reused across waits.
	timer *time.Timer
}

// inlinePost carries the work a delivery defers until after the endpoint
// (and routing-table) locks are released: flushing the routed step's sends,
// then waking the owner.
type inlinePost struct {
	wake   bool
	outs   []Outbound
	router InlineRouter
}

// deliverLocked buffers or inline-executes one delivery. Called with the
// owning muxShared's mu held (which pins the endpoint open — Close removes
// it from the routing table under that same lock, so the endpoint cannot be
// closed or recycled mid-delivery). It reports false when the endpoint
// stopped accepting deliveries (crash teardown raced the send).
func (e *muxEndpoint) deliverLocked(d Delivery, post *inlinePost) bool {
	e.imu.Lock()
	defer e.imu.Unlock()
	if e.inl.closed {
		return false
	}
	if e.inl.router == nil {
		// Queue mode: virtual clocks, or no thread has adopted the endpoint
		// yet. Enqueued under imu so AdoptRouter's drain cannot interleave
		// with a put and strand a delivery behind the mode switch.
		e.queue.Put(borrowDelivery(d.From, d.Msg, d.Corrupt))
		return true
	}
	if !e.inl.parked {
		// Owner is running: buffer the delivery by value (no box — the
		// inbox is the zero-copy lane) for its next Await/Poll.
		e.inl.inbox = append(e.inl.inbox, d)
		return true
	}
	// Owner is parked: run the protocol step here, on the delivering
	// goroutine. Sends the step produces are deferred (flushed by the
	// caller after unlocking); the owner is woken only when the step
	// completed its wait condition.
	e.inl.router.RouteInline(d)
	post.outs = e.inl.router.TakeDeferred()
	post.router = e.inl.router
	if e.inl.router.ParkReady() {
		e.inl.parked = false
		post.wake = true
	}
	return true
}

// finishInline performs a delivery's deferred work after all locks are
// released: deferred sends first (so the woken owner's own sends cannot
// overtake them on any pair), then the wakeup. The endpoint cannot be
// recycled concurrently — a pending wake pins the owner inside AwaitInline.
func (e *muxEndpoint) finishInline(sh *muxShared, post *inlinePost) {
	for _, o := range post.outs {
		if err := sh.real.Send(o.To, o.Msg); err != nil {
			post.router.InlineSendError(o.To, err)
		}
	}
	if post.wake {
		e.inl.wake <- struct{}{}
	}
}

// AdoptRouter implements InlineEndpoint.
func (e *muxEndpoint) AdoptRouter(r InlineRouter) bool {
	if !e.mux.inline || r == nil {
		return false
	}
	e.imu.Lock()
	defer e.imu.Unlock()
	if e.inl.closed || e.inl.router != nil {
		return false
	}
	if e.inl.wake == nil {
		e.inl.wake = make(chan struct{}, 1)
	}
	e.inl.router = r
	// Migrate deliveries buffered before adoption — retained-instance
	// replays and sends that raced the thread's start — preserving order:
	// everything in the queue predates everything the inbox will receive.
	for {
		x, ok := e.queue.TryGet()
		if !ok {
			break
		}
		dp := x.(*Delivery)
		e.inl.inbox = append(e.inl.inbox, *dp)
		releaseDelivery(dp)
	}
	return true
}

// popLocked removes the oldest buffered delivery. The inbox is a slice with
// a head cursor so a burst drains without memmove; fully drained, it resets
// for reuse.
func (e *muxEndpoint) popLocked() (Delivery, bool) {
	if e.inl.head >= len(e.inl.inbox) {
		return Delivery{}, false
	}
	d := e.inl.inbox[e.inl.head]
	e.inl.inbox[e.inl.head] = Delivery{}
	e.inl.head++
	if e.inl.head == len(e.inl.inbox) {
		e.inl.inbox = e.inl.inbox[:0]
		e.inl.head = 0
	}
	return d, true
}

// PollInline implements InlineEndpoint.
func (e *muxEndpoint) PollInline() (Delivery, bool) {
	e.imu.Lock()
	d, ok := e.popLocked()
	e.imu.Unlock()
	return d, ok
}

// AwaitInline implements InlineEndpoint.
func (e *muxEndpoint) AwaitInline(timeout time.Duration) (Delivery, InlineStatus) {
	e.imu.Lock()
	if d, ok := e.popLocked(); ok {
		e.imu.Unlock()
		return d, InlineDelivery
	}
	if e.inl.closed {
		e.imu.Unlock()
		return Delivery{}, InlineClosed
	}
	e.inl.parked = true
	e.imu.Unlock()

	if timeout < 0 {
		<-e.inl.wake
		return Delivery{}, InlineWoken
	}
	t := e.inl.timer
	if t == nil {
		t = time.NewTimer(timeout)
		e.inl.timer = t
	} else {
		t.Reset(timeout)
	}
	select {
	case <-e.inl.wake:
		t.Stop()
		return Delivery{}, InlineWoken
	case <-t.C:
		e.imu.Lock()
		if e.inl.parked {
			// Nobody claimed the park: self-unpark and report the timeout.
			e.inl.parked = false
			e.imu.Unlock()
			return Delivery{}, InlineTimeout
		}
		e.imu.Unlock()
		// A deliverer (or closer) claimed the park concurrently with the
		// timer: its wakeup is in flight and must be consumed so the
		// channel is empty for the next park.
		<-e.inl.wake
		return Delivery{}, InlineWoken
	}
}

// closeInlineLocked marks the lane closed, claiming and reporting a pending
// park so the caller wakes the owner once its locks are dropped. Callers
// hold imu.
func (e *muxEndpoint) closeInlineLocked() (wake bool) {
	if e.inl.closed {
		return false
	}
	e.inl.closed = true
	if e.inl.parked {
		e.inl.parked = false
		return true
	}
	return false
}

// recycleInline scrubs the lane for endpoint reuse: buffered deliveries are
// dropped (their instance completed), the router detaches, and the closed
// marker resets so the next incarnation starts fresh. The wake channel and
// timer persist across incarnations — both are guaranteed empty/stopped
// whenever the owner is outside AwaitInline.
func (e *muxEndpoint) recycleInline() {
	e.imu.Lock()
	e.inl.router = nil
	e.inl.inbox = e.inl.inbox[:0]
	e.inl.head = 0
	e.inl.parked = false
	e.inl.closed = false
	e.imu.Unlock()
}
