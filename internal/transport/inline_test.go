package transport

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"caaction/internal/protocol"
	"caaction/internal/vclock"
)

// inlineMux builds a real-clock sim+mux pair, the configuration under which
// the run-to-completion delivery lane activates.
func inlineMux(t *testing.T) (*Sim, *Mux) {
	t.Helper()
	clk := vclock.NewReal()
	sim := NewSim(SimConfig{Clock: clk})
	return sim, NewMux(clk, sim)
}

// stubRouter is a scriptable InlineRouter: it records every inline-routed
// delivery, reports a settable park condition, and emits a fixed set of
// deferred sends per routed step. All fields are mutex-guarded because
// RouteInline runs on delivering goroutines while the owner inspects the
// record after waking.
type stubRouter struct {
	mu       sync.Mutex
	routed   []Delivery
	ready    bool
	emit     []Outbound // deferred per RouteInline call
	deferred []Outbound
	sendErrs []string
}

func (r *stubRouter) RouteInline(d Delivery) {
	r.mu.Lock()
	r.routed = append(r.routed, d)
	r.deferred = append(r.deferred, r.emit...)
	r.mu.Unlock()
}

func (r *stubRouter) ParkReady() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ready
}

func (r *stubRouter) TakeDeferred() []Outbound {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.deferred
	r.deferred = nil
	return out
}

func (r *stubRouter) InlineSendError(to string, err error) {
	r.mu.Lock()
	r.sendErrs = append(r.sendErrs, to+": "+err.Error())
	r.mu.Unlock()
}

func (r *stubRouter) setReady(b bool) {
	r.mu.Lock()
	r.ready = b
	r.mu.Unlock()
}

func (r *stubRouter) routedFroms() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var froms []string
	for _, d := range r.routed {
		froms = append(froms, d.Msg.(protocol.Enter).From)
	}
	return froms
}

// inlineEP asserts an endpoint supports the lane interface.
func inlineEP(t *testing.T, ep Endpoint) InlineEndpoint {
	t.Helper()
	ie, ok := ep.(InlineEndpoint)
	if !ok {
		t.Fatalf("%T does not implement InlineEndpoint", ep)
	}
	return ie
}

// waitParked polls the endpoint's park flag (under its delivery lock) until
// the owner goroutine has committed to a park, so a test's sends land on a
// genuinely parked thread rather than racing the park transition.
func waitParked(t *testing.T, ep Endpoint) {
	t.Helper()
	me := ep.(*muxEndpoint)
	for deadline := time.Now().Add(10 * time.Second); ; {
		me.imu.Lock()
		p := me.inl.parked
		me.imu.Unlock()
		if p {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("owner never parked")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestInlineAdoptRouterContract pins when AdoptRouter accepts: only on a
// real-clock mux with the lane enabled, a non-nil router, an open endpoint,
// and at most once per incarnation.
func TestInlineAdoptRouterContract(t *testing.T) {
	// Virtual clock: the lane never activates, golden traces depend on it.
	_, _, vmux := muxPair(t)
	vep, err := vmux.Open("i1", "T1")
	if err != nil {
		t.Fatal(err)
	}
	if inlineEP(t, vep).AdoptRouter(&stubRouter{}) {
		t.Error("AdoptRouter accepted under the virtual clock")
	}
	_ = vep.Close()

	// Real clock but lane disabled by option.
	clk := vclock.NewReal()
	nsim := NewSim(SimConfig{Clock: clk})
	nmux := NewMuxOpts(clk, nsim, MuxOptions{NoInline: true})
	nep, err := nmux.Open("i1", "T1")
	if err != nil {
		t.Fatal(err)
	}
	if inlineEP(t, nep).AdoptRouter(&stubRouter{}) {
		t.Error("AdoptRouter accepted with NoInline set")
	}
	_ = nep.Close()

	// Real clock, lane on: nil refused, first adopt wins, second refused.
	_, mux := inlineMux(t)
	ep, err := mux.Open("i1", "T1")
	if err != nil {
		t.Fatal(err)
	}
	ie := inlineEP(t, ep)
	if ie.AdoptRouter(nil) {
		t.Error("AdoptRouter accepted a nil router")
	}
	if !ie.AdoptRouter(&stubRouter{}) {
		t.Error("AdoptRouter refused a live real-clock endpoint")
	}
	if ie.AdoptRouter(&stubRouter{}) {
		t.Error("AdoptRouter accepted a second router")
	}
	_ = ep.Close()

	// A closed endpoint refuses adoption until recycled.
	ep2, err := mux.Open("i2", "T2")
	if err != nil {
		t.Fatal(err)
	}
	_ = ep2.Close()
	if inlineEP(t, ep2).AdoptRouter(&stubRouter{}) {
		t.Error("AdoptRouter accepted a closed endpoint")
	}
}

// TestInlineAdoptMigratesQueue checks the mode switch: deliveries buffered
// before a thread adopts the endpoint (queue mode) move to the inline inbox
// in arrival order, ahead of anything delivered afterwards.
func TestInlineAdoptMigratesQueue(t *testing.T) {
	_, mux := inlineMux(t)
	a, err := mux.Open("i1", "T1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := mux.Open("i1", "T2")
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(a, b)

	send := func(from string) {
		t.Helper()
		msg := protocol.Enter{Action: protocol.TagInstance("i1", "act#1"), From: from}
		if err := a.Send("T2", msg); err != nil {
			t.Fatalf("send %s: %v", from, err)
		}
	}
	// Pre-adoption: the sink path delivers synchronously into b's queue.
	send("first")
	send("second")
	if n := b.Pending(); n != 2 {
		t.Fatalf("pre-adoption queue holds %d deliveries, want 2", n)
	}

	ie := inlineEP(t, b)
	if !ie.AdoptRouter(&stubRouter{}) {
		t.Fatal("AdoptRouter refused")
	}
	send("third") // post-adoption, owner running: appended to the inbox

	for i, want := range []string{"first", "second", "third"} {
		d, ok := ie.PollInline()
		if !ok {
			t.Fatalf("delivery %d missing after migration", i)
		}
		if got := d.Msg.(protocol.Enter).From; got != want {
			t.Fatalf("delivery %d = %q, want %q (order broken across mode switch)", i, got, want)
		}
	}
	if _, ok := ie.PollInline(); ok {
		t.Error("inbox not empty after draining")
	}
}

// TestInlineParkedRouteAndWake is the heart of the lane: deliveries to a
// parked owner execute on the sender's goroutine, and the owner is woken
// only when the routed step completes its wait condition.
func TestInlineParkedRouteAndWake(t *testing.T) {
	_, mux := inlineMux(t)
	a, err := mux.Open("i1", "T1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := mux.Open("i1", "T2")
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(a, b)

	r := &stubRouter{} // ready=false: first step must not wake the owner
	ie := inlineEP(t, b)
	if !ie.AdoptRouter(r) {
		t.Fatal("AdoptRouter refused")
	}

	woke := make(chan InlineStatus, 1)
	go func() {
		_, st := ie.AwaitInline(30 * time.Second)
		woke <- st
	}()
	waitParked(t, b)

	send := func(from string) {
		t.Helper()
		msg := protocol.Enter{Action: protocol.TagInstance("i1", "act#1"), From: from}
		if err := a.Send("T2", msg); err != nil {
			t.Fatalf("send %s: %v", from, err)
		}
	}
	// The sink path is synchronous: by the time Send returns, the step ran
	// inline on this goroutine.
	send("step1")
	if froms := r.routedFroms(); len(froms) != 1 || froms[0] != "step1" {
		t.Fatalf("after first send routed = %v, want [step1]", froms)
	}
	select {
	case st := <-woke:
		t.Fatalf("owner woke (%v) though the park condition does not hold", st)
	default:
	}

	r.setReady(true)
	send("step2")
	select {
	case st := <-woke:
		if st != InlineWoken {
			t.Fatalf("owner woke with status %v, want InlineWoken", st)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("owner never woke after the condition became true")
	}
	if froms := r.routedFroms(); len(froms) != 2 || froms[1] != "step2" {
		t.Fatalf("routed = %v, want [step1 step2]", froms)
	}
}

// TestInlineBuffersWhileRunning checks the unparked case: deliveries to a
// running owner buffer in the inbox (never routed on the sender) and surface
// through Await/Poll.
func TestInlineBuffersWhileRunning(t *testing.T) {
	_, mux := inlineMux(t)
	a, err := mux.Open("i1", "T1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := mux.Open("i1", "T2")
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(a, b)

	r := &stubRouter{ready: true}
	ie := inlineEP(t, b)
	if !ie.AdoptRouter(r) {
		t.Fatal("AdoptRouter refused")
	}
	if err := a.Send("T2", enter("i1", "T1")); err != nil {
		t.Fatal(err)
	}
	if froms := r.routedFroms(); len(froms) != 0 {
		t.Fatalf("delivery to a running owner was inline-routed: %v", froms)
	}
	d, st := ie.AwaitInline(time.Second)
	if st != InlineDelivery {
		t.Fatalf("AwaitInline = %v, want InlineDelivery", st)
	}
	if inst := protocol.InstanceOf(protocol.ActionOf(d.Msg)); inst != "i1" {
		t.Fatalf("buffered delivery for %q, want i1", inst)
	}
}

// TestInlineDeferredSendsFlushBeforeWake pins the cross-endpoint handoff
// order: sends deferred by an inline-routed step are flushed — including
// error reporting for unreachable peers — strictly before the owner wakes,
// so the owner's subsequent sends can never overtake them.
func TestInlineDeferredSendsFlushBeforeWake(t *testing.T) {
	_, mux := inlineMux(t)
	a, err := mux.Open("i1", "T1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := mux.Open("i1", "T2")
	if err != nil {
		t.Fatal(err)
	}
	c, err := mux.Open("i1", "T3")
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(a, b, c)

	r := &stubRouter{
		ready: true,
		emit: []Outbound{
			{To: "T3", Msg: protocol.Enter{Action: protocol.TagInstance("i1", "act#1"), From: "deferred"}},
			{To: "NOWHERE", Msg: enter("i1", "T2")},
		},
	}
	ie := inlineEP(t, b)
	if !ie.AdoptRouter(r) {
		t.Fatal("AdoptRouter refused")
	}

	woke := make(chan InlineStatus, 1)
	go func() {
		_, st := ie.AwaitInline(30 * time.Second)
		woke <- st
	}()
	waitParked(t, b)
	if err := a.Send("T2", enter("i1", "T1")); err != nil {
		t.Fatal(err)
	}
	select {
	case st := <-woke:
		if st != InlineWoken {
			t.Fatalf("owner woke with %v, want InlineWoken", st)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("owner never woke")
	}
	// The wake happens-after the flush: the deferred send must already sit
	// in T3's queue, with no settling delay.
	if n := c.Pending(); n != 1 {
		t.Fatalf("deferred send not flushed before wake: T3 has %d pending, want 1", n)
	}
	d, ok := c.RecvTimeout(time.Second)
	if !ok {
		t.Fatal("T3 endpoint closed early")
	}
	if got := d.Msg.(protocol.Enter).From; got != "deferred" {
		t.Fatalf("T3 received %q, want the deferred step send", got)
	}
	r.mu.Lock()
	errs := append([]string(nil), r.sendErrs...)
	r.mu.Unlock()
	if len(errs) != 1 || !strings.HasPrefix(errs[0], "NOWHERE:") {
		t.Fatalf("failed deferred send not reported to the router: %v", errs)
	}
}

// TestInlineAwaitTimeoutSelfUnparks checks the timer path: an expired wait
// reports InlineTimeout and fully retracts the park, so later deliveries
// buffer instead of executing against a thread that is no longer waiting.
func TestInlineAwaitTimeoutSelfUnparks(t *testing.T) {
	_, mux := inlineMux(t)
	a, err := mux.Open("i1", "T1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := mux.Open("i1", "T2")
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll(a, b)

	r := &stubRouter{}
	ie := inlineEP(t, b)
	if !ie.AdoptRouter(r) {
		t.Fatal("AdoptRouter refused")
	}
	if _, st := ie.AwaitInline(10 * time.Millisecond); st != InlineTimeout {
		t.Fatalf("AwaitInline = %v, want InlineTimeout", st)
	}
	me := b.(*muxEndpoint)
	me.imu.Lock()
	parked := me.inl.parked
	me.imu.Unlock()
	if parked {
		t.Fatal("endpoint still parked after a timeout")
	}
	if err := a.Send("T2", enter("i1", "T1")); err != nil {
		t.Fatal(err)
	}
	if froms := r.routedFroms(); len(froms) != 0 {
		t.Fatalf("post-timeout delivery was inline-routed: %v", froms)
	}
	if _, st := ie.AwaitInline(time.Second); st != InlineDelivery {
		t.Fatalf("post-timeout AwaitInline = %v, want InlineDelivery", st)
	}
}

// TestInlineCloseWakesParkedOwner checks teardown of a parked thread (a
// cancellation watcher closing the endpoint out from under it): the owner
// wakes, and once the inbox is drained the lane reports InlineClosed.
func TestInlineCloseWakesParkedOwner(t *testing.T) {
	_, mux := inlineMux(t)
	b, err := mux.Open("i1", "T2")
	if err != nil {
		t.Fatal(err)
	}
	r := &stubRouter{}
	ie := inlineEP(t, b)
	if !ie.AdoptRouter(r) {
		t.Fatal("AdoptRouter refused")
	}
	woke := make(chan InlineStatus, 1)
	go func() {
		_, st := ie.AwaitInline(-1) // no deadline: only the close can end it
		woke <- st
	}()
	waitParked(t, b)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case st := <-woke:
		if st != InlineWoken {
			t.Fatalf("owner woke with %v, want InlineWoken", st)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("close did not wake the parked owner")
	}
	if _, st := ie.AwaitInline(time.Second); st != InlineClosed {
		t.Fatalf("AwaitInline after close = %v, want InlineClosed", st)
	}
}

// TestInlineCloseDrainsInbox checks the close ordering the Recv path also
// honours: buffered deliveries surface before the closed status does.
func TestInlineCloseDrainsInbox(t *testing.T) {
	_, mux := inlineMux(t)
	a, err := mux.Open("i1", "T1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := mux.Open("i1", "T2")
	if err != nil {
		t.Fatal(err)
	}
	ie := inlineEP(t, b)
	if !ie.AdoptRouter(&stubRouter{}) {
		t.Fatal("AdoptRouter refused")
	}
	for i := 0; i < 2; i++ {
		if err := a.Send("T2", enter("i1", "T1")); err != nil {
			t.Fatal(err)
		}
	}
	_ = b.Close()
	_ = a.Close()
	for i := 0; i < 2; i++ {
		if _, st := ie.AwaitInline(time.Second); st != InlineDelivery {
			t.Fatalf("delivery %d after close: status %v, want InlineDelivery", i, st)
		}
	}
	if _, st := ie.AwaitInline(time.Second); st != InlineClosed {
		t.Fatalf("drained endpoint reports %v, want InlineClosed", st)
	}
}

// TestInlineRecycleHygiene pins the lane half of the endpoint-recycle
// contract: after RecycleEndpoint the router is detached, the inbox is empty
// with its cursor reset, and the parked/closed markers are scrubbed — while
// the wake channel survives for the next incarnation. A still-open endpoint
// must keep its router.
func TestInlineRecycleHygiene(t *testing.T) {
	_, mux := inlineMux(t)
	a, err := mux.Open("i1", "T1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := mux.Open("i1", "T2")
	if err != nil {
		t.Fatal(err)
	}
	ie := inlineEP(t, b)
	if !ie.AdoptRouter(&stubRouter{}) {
		t.Fatal("AdoptRouter refused")
	}
	// Leave the inbox mid-drain: two buffered, one popped (head cursor set).
	for i := 0; i < 2; i++ {
		if err := a.Send("T2", enter("i1", "T1")); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := ie.PollInline(); !ok {
		t.Fatal("setup: no delivery to pop")
	}
	_ = b.Close()
	_ = a.Close()
	RecycleEndpoint(b)

	me := b.(*muxEndpoint)
	me.imu.Lock()
	inl := &me.inl
	if inl.router != nil {
		t.Error("recycled endpoint keeps its router")
	}
	if len(inl.inbox) != 0 || inl.head != 0 {
		t.Errorf("recycled inbox not scrubbed: len=%d head=%d", len(inl.inbox), inl.head)
	}
	if inl.parked || inl.closed {
		t.Errorf("recycled lane keeps state: parked=%v closed=%v", inl.parked, inl.closed)
	}
	if inl.wake == nil {
		t.Error("wake channel did not survive recycling")
	}
	me.imu.Unlock()

	// An endpoint still routed must never recycle — its router stays.
	c, err := mux.Open("i2", "T3")
	if err != nil {
		t.Fatal(err)
	}
	if !inlineEP(t, c).AdoptRouter(&stubRouter{}) {
		t.Fatal("AdoptRouter refused")
	}
	RecycleEndpoint(c)
	mc := c.(*muxEndpoint)
	mc.imu.Lock()
	kept := mc.inl.router != nil
	mc.imu.Unlock()
	if !kept {
		t.Error("RecycleEndpoint scrubbed a still-open endpoint's router")
	}
	_ = c.Close()
}

// TestInlineChurnRace hammers the full lane lifecycle the way a saturated
// runtime does: many goroutines cycling open/adopt/park/deliver/close/
// recycle across a spread of thread addresses, with short timed parks so the
// timer-versus-wake claimed-park race runs constantly. Run under -race (CI
// does) it is the regression test for the park/claim/wake handshake, the
// sender-side sink path's frame recycling, and inline state reuse across
// endpoint incarnations.
func TestInlineChurnRace(t *testing.T) {
	_, mux := inlineMux(t)

	const goroutines = 8
	const addrSpread = 2 * muxShardCount
	cycles := 3000
	if testing.Short() {
		cycles = 500
	}
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			for i := 0; i < cycles; i++ {
				inst := fmt.Sprintf("g%d-c%d", g, i)
				tx := fmt.Sprintf("S%d", (g*31+i)%addrSpread)
				rx := fmt.Sprintf("S%d", (g*31+i+1)%addrSpread)
				if tx == rx {
					rx += "x"
				}
				a, err := mux.Open(inst, tx)
				if err != nil {
					errs <- fmt.Errorf("g%d c%d open tx: %w", g, i, err)
					return
				}
				b, err := mux.Open(inst, rx)
				if err != nil {
					_ = a.Close()
					errs <- fmt.Errorf("g%d c%d open rx: %w", g, i, err)
					return
				}
				r := &stubRouter{ready: true}
				ie := b.(InlineEndpoint)
				if !ie.AdoptRouter(r) {
					errs <- fmt.Errorf("g%d c%d: AdoptRouter refused a fresh endpoint", g, i)
					return
				}
				sent := make(chan error, 1)
				go func() {
					sent <- a.Send(rx, protocol.Enter{Action: protocol.TagInstance(inst, "act#1"), From: tx})
				}()
				// Short timed parks: the sender races the timer, so both the
				// inline-route wakeup and the claimed-park timeout path run.
				var got string
				for deadline := time.Now().Add(30 * time.Second); got == ""; {
					if time.Now().After(deadline) {
						errs <- fmt.Errorf("g%d c%d: delivery lost", g, i)
						return
					}
					d, st := ie.AwaitInline(2 * time.Millisecond)
					switch st {
					case InlineDelivery:
						got = protocol.InstanceOf(protocol.ActionOf(d.Msg))
					case InlineWoken:
						r.mu.Lock()
						if len(r.routed) > 0 {
							got = protocol.InstanceOf(protocol.ActionOf(r.routed[0].Msg))
						}
						r.mu.Unlock()
					case InlineTimeout:
						// keep waiting
					case InlineClosed:
						errs <- fmt.Errorf("g%d c%d: endpoint closed mid-cycle", g, i)
						return
					}
				}
				if got != inst {
					errs <- fmt.Errorf("g%d c%d: cross-instance delivery %q", g, i, got)
					return
				}
				if err := <-sent; err != nil {
					errs <- fmt.Errorf("g%d c%d send: %w", g, i, err)
					return
				}
				_ = a.Close()
				_ = b.Close()
				RecycleEndpoint(a)
				RecycleEndpoint(b)
			}
			errs <- nil
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
