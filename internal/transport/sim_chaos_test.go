package transport

import (
	"sync"
	"testing"
	"time"

	"caaction/internal/protocol"
	"caaction/internal/vclock"
)

func TestSimPerturbDuplicate(t *testing.T) {
	clk := vclock.NewVirtual()
	net := NewSim(SimConfig{Clock: clk})
	a, _ := net.Endpoint("A")
	b, _ := net.Endpoint("B")
	net.SetPerturb(func(from, to string, msg protocol.Message) Verdict {
		return Verdict{Copies: 2}
	})
	var got int
	clk.Go(func() {
		for {
			if _, ok := b.RecvTimeout(time.Second); !ok {
				return
			}
			got++
		}
	})
	clk.Go(func() {
		if err := a.Send("B", ping(1)); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	clk.Wait()
	if got != 3 {
		t.Fatalf("received %d copies, want 3", got)
	}
	st := net.Stats()
	if st.Sent != 1 || st.Delivered != 3 || st.Duplicated != 2 {
		t.Fatalf("stats = %+v, want Sent=1 Delivered=3 Duplicated=2", st)
	}
}

func TestSimPerturbReorderBypassesFIFO(t *testing.T) {
	clk := vclock.NewVirtual()
	net := NewSim(SimConfig{Clock: clk, Latency: FixedLatency(10 * time.Millisecond)})
	a, _ := net.Endpoint("A")
	b, _ := net.Endpoint("B")
	// Delay the first message past the second; only the first is exempted
	// from the FIFO clamp, so the second overtakes it.
	first := true
	net.SetPerturb(func(from, to string, msg protocol.Message) Verdict {
		if first {
			first = false
			return Verdict{Reorder: true, Delay: 100 * time.Millisecond}
		}
		return Verdict{}
	})
	var order []int
	clk.Go(func() {
		for i := 0; i < 2; i++ {
			d, ok := b.Recv()
			if !ok {
				return
			}
			order = append(order, int(d.Msg.(protocol.Enter).Role[0]-'0'))
		}
	})
	clk.Go(func() {
		_ = a.Send("B", ping(1))
		_ = a.Send("B", ping(2))
	})
	clk.Wait()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("delivery order = %v, want [2 1]", order)
	}
	if st := net.Stats(); st.Reordered != 1 || st.Delayed != 1 {
		t.Fatalf("stats = %+v, want Reordered=1 Delayed=1", st)
	}
}

func TestSimPerturbDropAndCorrupt(t *testing.T) {
	clk := vclock.NewVirtual()
	net := NewSim(SimConfig{Clock: clk})
	a, _ := net.Endpoint("A")
	b, _ := net.Endpoint("B")
	n := 0
	net.SetPerturb(func(from, to string, msg protocol.Message) Verdict {
		n++
		switch n {
		case 1:
			return Verdict{Fault: Drop}
		case 2:
			return Verdict{Fault: Corrupt}
		default:
			return Verdict{}
		}
	})
	var deliveries []Delivery
	clk.Go(func() {
		for {
			d, ok := b.RecvTimeout(time.Second)
			if !ok {
				return
			}
			deliveries = append(deliveries, d)
		}
	})
	clk.Go(func() {
		for i := 0; i < 3; i++ {
			_ = a.Send("B", ping(i))
		}
	})
	clk.Wait()
	if len(deliveries) != 2 {
		t.Fatalf("got %d deliveries, want 2 (one dropped)", len(deliveries))
	}
	if !deliveries[0].Corrupt || deliveries[1].Corrupt {
		t.Fatalf("corrupt flags = %v %v, want true false", deliveries[0].Corrupt, deliveries[1].Corrupt)
	}
	st := net.Stats()
	if st.Sent != 3 || st.Dropped != 1 || st.Corrupted != 1 || st.Delivered != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSimCloseEndpointCrashStop(t *testing.T) {
	clk := vclock.NewVirtual()
	net := NewSim(SimConfig{Clock: clk})
	a, _ := net.Endpoint("A")
	b, err := net.Endpoint("B")
	if err != nil {
		t.Fatal(err)
	}
	// A delivery already buffered at B must be discarded by the crash: a
	// crashed process does not drain its inbox.
	clk.Go(func() {
		if err := a.Send("B", ping(1)); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	clk.Wait()
	if !net.CloseEndpoint("B") {
		t.Fatal("CloseEndpoint(B) = false, want true")
	}
	if net.CloseEndpoint("B") {
		t.Fatal("second CloseEndpoint(B) = true, want false")
	}
	var recvOK bool
	clk.Go(func() { _, recvOK = b.Recv() })
	clk.Wait()
	if recvOK {
		t.Fatal("crashed endpoint drained a buffered delivery, want ok=false")
	}
	if b.Pending() != 0 {
		t.Fatalf("crashed endpoint reports %d pending, want 0", b.Pending())
	}
	// The crashed thread's own sends are suppressed, not errors.
	if err := b.Send("A", ping(2)); err != nil {
		t.Fatalf("crashed sender got error %v, want silent suppression", err)
	}
	if st := net.Stats(); st.Sent != 1 {
		t.Fatalf("suppressed send counted: stats %+v", st)
	}
	if err := a.Send("B", ping(3)); err == nil {
		t.Fatal("send to crashed endpoint succeeded, want ErrUnknownAddr")
	}
}

// TestSimStatsConcurrentReaders samples Stats from an untracked goroutine
// while tracked senders are running — the reader/writer race the chaos
// harness exercises (run under -race).
func TestSimStatsConcurrentReaders(t *testing.T) {
	clk := vclock.NewVirtual()
	net := NewSim(SimConfig{Clock: clk, Latency: FixedLatency(time.Millisecond)})
	a, _ := net.Endpoint("A")
	b, _ := net.Endpoint("B")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = net.Stats()
			}
		}
	}()
	clk.Go(func() {
		for i := 0; i < 500; i++ {
			_ = a.Send("B", ping(i))
			clk.Sleep(time.Microsecond)
		}
	})
	clk.Go(func() {
		for i := 0; i < 500; i++ {
			if _, ok := b.Recv(); !ok {
				return
			}
		}
	})
	clk.Wait()
	close(stop)
	wg.Wait()
	if st := net.Stats(); st.Sent != 500 || st.Delivered != 500 {
		t.Fatalf("stats = %+v, want Sent=500 Delivered=500", st)
	}
}
