package transport

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"caaction/internal/protocol"
	"caaction/internal/vclock"
)

func muxPair(t *testing.T) (*vclock.Virtual, *Sim, *Mux) {
	t.Helper()
	clk := vclock.NewVirtual()
	sim := NewSim(SimConfig{Clock: clk})
	return clk, sim, NewMux(clk, sim)
}

// enter builds the simplest routable message for one instance.
func enter(instance, from string) protocol.Message {
	return protocol.Enter{Action: protocol.TagInstance(instance, "act#1"), From: from}
}

func closeAll(eps ...Endpoint) {
	for _, ep := range eps {
		_ = ep.Close()
	}
}

// TestMuxRoutesByInstance sends interleaved traffic for two instances over
// one shared endpoint pair and checks each virtual endpoint sees exactly its
// own instance's messages.
func TestMuxRoutesByInstance(t *testing.T) {
	clk, _, mux := muxPair(t)

	open := func(instance, thread string) Endpoint {
		ep, err := mux.Open(instance, thread)
		if err != nil {
			t.Fatalf("Open(%s, %s): %v", instance, thread, err)
		}
		return ep
	}
	a1, b1 := open("i1", "T1"), open("i1", "T2")
	a2, b2 := open("i2", "T1"), open("i2", "T2")
	if a1.Addr() != "T1" || a2.Addr() != "T1" {
		t.Fatalf("virtual endpoints report addrs %q/%q, want thread address", a1.Addr(), a2.Addr())
	}

	got := make(chan string, 2)
	recvOne := func(ep Endpoint, label string) {
		clk.Go(func() {
			d, ok := ep.Recv()
			if !ok {
				t.Errorf("%s: endpoint closed early", label)
				got <- label + ":closed"
				return
			}
			got <- label + ":" + protocol.InstanceOf(protocol.ActionOf(d.Msg))
		})
	}
	recvOne(b1, "b1")
	recvOne(b2, "b2")

	clk.Go(func() {
		if err := a1.Send("T2", enter("i1", "T1")); err != nil {
			t.Errorf("send i1: %v", err)
		}
		if err := a2.Send("T2", enter("i2", "T1")); err != nil {
			t.Errorf("send i2: %v", err)
		}
	})
	seen := map[string]bool{<-got: true, <-got: true}
	if !seen["b1:i1"] || !seen["b2:i2"] {
		t.Fatalf("routing wrong: %v", seen)
	}
	closeAll(a1, b1, a2, b2) // tears down both pumps, so Wait returns
	clk.Wait()
}

// TestMuxRetainsEarlyTraffic delivers a message for an instance before that
// instance opens locally; Open must flush it.
func TestMuxRetainsEarlyTraffic(t *testing.T) {
	clk, _, mux := muxPair(t)
	a, err := mux.Open("i1", "T1")
	if err != nil {
		t.Fatal(err)
	}
	// T2's shared endpoint exists (instance i1 open) but instance i9 has not
	// opened there yet.
	b, err := mux.Open("i1", "T2")
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	clk.Go(func() {
		defer close(done)
		if err := a.Send("T2", enter("i9", "T1")); err != nil {
			t.Errorf("send: %v", err)
			return
		}
		// Let the pump retain it, then open the instance and receive.
		clk.Sleep(time.Millisecond)
		late, err := mux.Open("i9", "T2")
		if err != nil {
			t.Errorf("late open: %v", err)
			return
		}
		defer closeAll(late)
		d, ok := late.RecvTimeout(time.Second)
		if !ok {
			t.Error("retained delivery not flushed to late-opened instance")
			return
		}
		if inst := protocol.InstanceOf(protocol.ActionOf(d.Msg)); inst != "i9" {
			t.Errorf("flushed delivery for %q, want i9", inst)
		}
	})
	<-done
	closeAll(a, b)
	clk.Wait()
}

// TestMuxGarbageCollection closes the last instance of an address and checks
// (a) the shared endpoint is torn down, (b) the address is released for
// re-binding.
func TestMuxGarbageCollection(t *testing.T) {
	clk, sim, mux := muxPair(t)
	a, err := mux.Open("i1", "T1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := mux.Open("i1", "T2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mux.Open("i1", "T2"); !errors.Is(err, ErrDuplicateAddr) {
		t.Fatalf("duplicate open = %v, want ErrDuplicateAddr", err)
	}

	if err := b.Close(); err != nil {
		t.Fatalf("close T2 instance: %v", err)
	}
	// T2's only instance completed: the shared endpoint is gone, so a send
	// to it now fails at the network layer.
	done := make(chan struct{})
	clk.Go(func() {
		defer close(done)
		if err := a.Send("T2", enter("i1", "T1")); !errors.Is(err, ErrUnknownAddr) {
			t.Errorf("send to GCed address = %v, want ErrUnknownAddr", err)
		}
	})
	<-done
	if err := a.Close(); err != nil {
		t.Fatalf("close T1 instance: %v", err)
	}
	clk.Wait() // both pumps exited

	// The addresses are free again: raw binds must succeed.
	for _, addr := range []string{"T1", "T2"} {
		if _, err := sim.Endpoint(addr); err != nil {
			t.Fatalf("address %s not released after GC: %v", addr, err)
		}
	}
}

// TestMuxDeadInstanceTrafficDropped checks a completed instance's late
// traffic is dropped while another instance keeps the shared endpoint alive.
func TestMuxDeadInstanceTrafficDropped(t *testing.T) {
	clk, _, mux := muxPair(t)
	a, _ := mux.Open("i1", "T1")
	dead, _ := mux.Open("i1", "T2")
	alive, _ := mux.Open("i2", "T2")
	_ = dead.Close()

	done := make(chan struct{})
	clk.Go(func() {
		defer close(done)
		_ = a.Send("T2", enter("i1", "T1")) // for the completed instance
		_ = a.Send("T2", enter("i2", "T1")) // for the live one
		d, ok := alive.Recv()
		if !ok {
			t.Error("live instance closed early")
			return
		}
		if inst := protocol.InstanceOf(protocol.ActionOf(d.Msg)); inst != "i2" {
			t.Errorf("live instance received %q's traffic", inst)
		}
		if alive.Pending() != 0 {
			t.Errorf("dead instance's traffic leaked: %d pending", alive.Pending())
		}
	})
	<-done
	closeAll(a, alive)
	clk.Wait()
}

// TestMuxCrashPropagates crash-stops a shared endpoint and checks every open
// instance on it observes the stop.
func TestMuxCrashPropagates(t *testing.T) {
	clk, sim, mux := muxPair(t)
	a, _ := mux.Open("i1", "T1")
	b1, _ := mux.Open("i1", "T2")
	b2, _ := mux.Open("i2", "T2")

	done := make(chan struct{})
	clk.Go(func() {
		defer close(done)
		sim.CloseEndpoint("T2")
		for _, ep := range []Endpoint{b1, b2} {
			if _, ok := ep.Recv(); ok {
				t.Error("instance endpoint survived a crash-stop of its address")
			}
		}
	})
	<-done
	closeAll(a, b1, b2)
	clk.Wait()
}

// TestMuxOpenCloseChurn hammers one thread address with concurrent
// open/close cycles from many goroutines. This is the regression test for a
// teardown-ordering race: the last Close of an address must fully release
// the underlying endpoint before the address book forgets it, or a racing
// Open re-binds against the still-bound endpoint and spuriously fails with
// ErrDuplicateAddr.
func TestMuxOpenCloseChurn(t *testing.T) {
	clk := vclock.NewReal() // real concurrency is the point here
	sim := NewSim(SimConfig{Clock: clk})
	mux := NewMux(clk, sim)

	const goroutines = 8
	cycles := 50000 // the broken ordering fails within ~10k cycles
	if testing.Short() {
		cycles = 5000
	}
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			for i := 0; i < cycles; i++ {
				ep, err := mux.Open(fmt.Sprintf("g%d-c%d", g, i), "T1")
				if err != nil {
					errs <- fmt.Errorf("goroutine %d cycle %d: %w", g, i, err)
					return
				}
				if err := ep.Close(); err != nil {
					errs <- fmt.Errorf("goroutine %d cycle %d close: %w", g, i, err)
					return
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestMuxOpenValidation(t *testing.T) {
	_, _, mux := muxPair(t)
	if _, err := mux.Open("", "T1"); err == nil {
		t.Error("empty instance tag accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("reserved character in instance tag did not panic")
			}
		}()
		_, _ = mux.Open("a!b", "T1")
	}()
	if err := mux.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := mux.Open("i1", "T1"); !errors.Is(err, ErrClosed) {
		t.Errorf("Open after Close = %v, want ErrClosed", err)
	}
}

// TestMuxShardedChurnRace exercises the lock-striped address table the way
// a saturated multi-action runtime does: many goroutines cycling
// open/route/close across a spread of thread addresses (hence shards), with
// endpoint recycling in the loop, plus a dedicated clique hammering ONE
// address so the Open-vs-last-Close teardown retry path runs constantly.
// Run under -race (CI does) it is the regression test for both the shard
// bookkeeping and the audited Open busy-spin.
func TestMuxShardedChurnRace(t *testing.T) {
	clk := vclock.NewReal() // real concurrency is the point here
	sim := NewSim(SimConfig{Clock: clk})
	mux := NewMux(clk, sim)

	const goroutines = 12
	const addrSpread = 2 * muxShardCount // several addresses per shard
	cycles := 20000
	if testing.Short() {
		cycles = 2000
	}
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			for i := 0; i < cycles; i++ {
				inst := fmt.Sprintf("g%d-c%d", g, i)
				// Goroutines 0-3 fight over one shared address (teardown
				// retry); the rest spread across the shards.
				var tx, rx string
				if g < 4 {
					tx, rx = "H0", "H1"
				} else {
					tx = fmt.Sprintf("S%d", (g*31+i)%addrSpread)
					rx = fmt.Sprintf("S%d", (g*31+i+1)%addrSpread)
				}
				if tx == rx {
					rx = rx + "x"
				}
				a, err := mux.Open(inst, tx)
				if err != nil {
					errs <- fmt.Errorf("g%d c%d open tx: %w", g, i, err)
					return
				}
				b, err := mux.Open(inst, rx)
				if err != nil {
					_ = a.Close()
					errs <- fmt.Errorf("g%d c%d open rx: %w", g, i, err)
					return
				}
				act := protocol.TagInstance(inst, "act#1")
				if err := a.Send(rx, protocol.Enter{Action: act, From: tx}); err != nil {
					errs <- fmt.Errorf("g%d c%d send: %w", g, i, err)
					return
				}
				if d, ok := b.RecvTimeout(5 * time.Second); !ok {
					errs <- fmt.Errorf("g%d c%d: delivery lost", g, i)
					return
				} else if got := protocol.InstanceOf(protocol.ActionOf(d.Msg)); got != inst {
					errs <- fmt.Errorf("g%d c%d: cross-instance delivery %q", g, i, got)
					return
				}
				_ = a.Close()
				_ = b.Close()
				RecycleEndpoint(a)
				RecycleEndpoint(b)
			}
			errs <- nil
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecycleEndpointHygiene pins the endpoint-recycle contract: after
// RecycleEndpoint, the object we still hold has been scrubbed (no shared
// attachment, no instance, an empty reopened queue) and any deliveries that
// were still buffered for the completed instance are gone.
func TestRecycleEndpointHygiene(t *testing.T) {
	clk, _, mux := muxPair(t)

	a, err := mux.Open("i1", "T1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := mux.Open("i1", "T2")
	if err != nil {
		t.Fatal(err)
	}
	// Park two deliveries in b's queue and close without consuming them.
	// (No clk.Wait here: the shared endpoints' pumps stay alive while the
	// instances are open, so we poll for the async routing instead.)
	clk.Go(func() {
		_ = a.Send("T2", enter("i1", "T1"))
		_ = a.Send("T2", enter("i1", "T1"))
	})
	for deadline := time.Now().Add(5 * time.Second); b.Pending() < 2; {
		if time.Now().After(deadline) {
			t.Fatalf("setup: %d pending deliveries, want 2", b.Pending())
		}
		time.Sleep(time.Millisecond)
	}
	_ = b.Close()
	RecycleEndpoint(b)

	me := b.(*muxEndpoint)
	if me.shared != nil || me.instance != "" {
		t.Errorf("recycled endpoint keeps attachment: shared=%v instance=%q", me.shared, me.instance)
	}
	if n := me.queue.Len(); n != 0 {
		t.Errorf("recycled endpoint queue holds %d stale deliveries", n)
	}
	// The reopened queue must accept and yield fresh elements (closed
	// state scrubbed).
	me.queue.Put("fresh")
	if x, ok := me.queue.TryGet(); !ok || x != "fresh" {
		t.Errorf("recycled queue did not reopen: got %v, %v", x, ok)
	}

	// An endpoint still routed must never recycle.
	c, err := mux.Open("i2", "T3")
	if err != nil {
		t.Fatal(err)
	}
	RecycleEndpoint(c)
	if mc := c.(*muxEndpoint); mc.shared == nil || mc.instance != "i2" {
		t.Error("RecycleEndpoint recycled a still-open endpoint")
	}
	_ = c.Close()
	_ = a.Close()
}
