package transport

import (
	"fmt"
	"sync"
	"time"

	"caaction/internal/protocol"
	"caaction/internal/vclock"
)

// Bounds on the per-shared-endpoint bookkeeping a Mux keeps for traffic that
// cannot be delivered right now. Both exist so a long-lived system's memory
// stays bounded no matter how many action instances pass through it.
const (
	// muxDeadCap bounds the completed-instance set remembered per shared
	// endpoint so that late traffic for a finished instance is dropped
	// instead of retained forever. Once exceeded, the oldest completions are
	// forgotten — a message for one of those would be re-retained (and then
	// evicted by muxRetainCap), never mis-delivered.
	muxDeadCap = 4096
	// muxRetainCap bounds the deliveries buffered for instances that have
	// not opened yet (a fast peer's message racing the local Open).
	muxRetainCap = 1024
)

// Mux multiplexes many concurrent action instances over one shared transport
// endpoint per thread address — the demultiplexing layer of the concurrent
// multi-action runtime.
//
// Open(instance, thread) hands out a virtual Endpoint for one (action
// instance, participating thread) pair. All virtual endpoints of a thread
// address share a single underlying Network endpoint bound to that address:
// sends go straight to the shared endpoint, and a per-address pump goroutine
// routes every inbound delivery to the virtual endpoint of the instance
// named by the message's action-identifier tag (protocol.InstanceOf).
// Messages for instances that have not opened yet are retained (bounded)
// until they open; messages for completed instances are dropped.
//
// Garbage collection: closing a virtual endpoint marks its instance
// complete, and closing the last instance of a thread address tears the
// shared endpoint and its pump down, releasing the address for re-binding.
// The pump is started with Clock.Go, so under the virtual clock it
// participates in time advancement like every other runtime goroutine and
// whole muxed simulations stay deterministic.
type Mux struct {
	clock vclock.Clock
	net   Network

	mu     sync.Mutex
	shared map[string]*muxShared
	closed bool
}

// NewMux returns a demultiplexer over the given network. The clock must be
// the same one driving the rest of the simulation or deployment.
func NewMux(clock vclock.Clock, net Network) *Mux {
	if clock == nil || net == nil {
		panic("transport: NewMux requires a clock and a network")
	}
	return &Mux{clock: clock, net: net, shared: make(map[string]*muxShared)}
}

// Open attaches the named action instance to a thread address, lazily
// binding the address's shared endpoint (and starting its pump) on first
// use. The returned Endpoint reports Addr() == thread, so runtime code is
// oblivious to the multiplexing. Opening the same (instance, thread) pair
// twice while the first is still open fails with ErrDuplicateAddr.
func (m *Mux) Open(instance, thread string) (Endpoint, error) {
	if instance == "" {
		return nil, fmt.Errorf("transport: mux: empty instance tag")
	}
	_ = protocol.TagInstance(instance, "") // panics on reserved characters
	for {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return nil, ErrClosed
		}
		sh, ok := m.shared[thread]
		if !ok {
			real, err := m.net.Endpoint(thread)
			if err != nil {
				m.mu.Unlock()
				return nil, fmt.Errorf("transport: mux: bind %q: %w", thread, err)
			}
			sh = &muxShared{
				mux:      m,
				addr:     thread,
				real:     real,
				open:     make(map[string]*muxEndpoint),
				dead:     make(map[string]struct{}),
				retained: make(map[string][]Delivery),
			}
			// The pump is infrastructure: its blocking receive must not count
			// toward the virtual clock's deadlock detection.
			if dm, ok := real.(interface{ MarkDaemon() }); ok {
				dm.MarkDaemon()
			}
			m.shared[thread] = sh
			m.clock.Go(sh.pump)
		}
		m.mu.Unlock()

		sh.mu.Lock()
		if sh.closed {
			// The shared endpoint was torn down between our lookup and this
			// lock (its last instance closed, or its address crashed); retry
			// so a fresh one is bound.
			sh.mu.Unlock()
			continue
		}
		if _, dup := sh.open[instance]; dup {
			sh.mu.Unlock()
			return nil, fmt.Errorf("%w: instance %q on %q", ErrDuplicateAddr, instance, thread)
		}
		ep := &muxEndpoint{shared: sh, instance: instance, queue: m.clock.NewQueue()}
		sh.open[instance] = ep
		// A reused tag may still sit in the dead set from its previous
		// incarnation; routing prefers the open table, so delivery is
		// unaffected while open, and the marker (kept, to keep deadOrder
		// duplicate-free) resumes dropping late traffic after the re-close.
		if pend := sh.retained[instance]; len(pend) > 0 {
			delete(sh.retained, instance)
			sh.retainedLen -= len(pend)
			for _, d := range pend {
				ep.queue.Put(borrowDelivery(d.From, d.Msg, d.Corrupt))
			}
		}
		sh.mu.Unlock()
		return ep, nil
	}
}

// Close tears every shared endpoint down. The underlying network is NOT
// closed — the Mux does not own it.
func (m *Mux) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	all := make([]*muxShared, 0, len(m.shared))
	for _, sh := range m.shared {
		all = append(all, sh)
	}
	m.shared = make(map[string]*muxShared)
	m.mu.Unlock()
	for _, sh := range all {
		sh.teardown()
	}
	return nil
}

// forget removes a torn-down shared endpoint from the address map so a later
// Open re-binds the address.
func (m *Mux) forget(sh *muxShared) {
	m.mu.Lock()
	if m.shared[sh.addr] == sh {
		delete(m.shared, sh.addr)
	}
	m.mu.Unlock()
}

// muxShared is one thread address's attachment: the real endpoint, its pump,
// and the instance routing table.
type muxShared struct {
	mux  *Mux
	addr string
	real Endpoint

	mu          sync.Mutex
	open        map[string]*muxEndpoint
	dead        map[string]struct{}
	deadOrder   []string
	retained    map[string][]Delivery
	retainedLen int
	closed      bool
}

// pump routes inbound deliveries to per-instance virtual endpoints until the
// real endpoint closes (teardown or crash-stop).
func (sh *muxShared) pump() {
	for {
		d, ok := sh.real.Recv()
		if !ok {
			sh.abandoned()
			return
		}
		sh.dispatch(d)
	}
}

func (sh *muxShared) dispatch(d Delivery) {
	inst := protocol.InstanceOf(protocol.ActionOf(d.Msg))
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ep, ok := sh.open[inst]; ok {
		ep.queue.Put(borrowDelivery(d.From, d.Msg, d.Corrupt))
		return
	}
	if _, done := sh.dead[inst]; done || inst == "" {
		return // late traffic for a completed instance, or an untagged stray
	}
	if sh.retainedLen >= muxRetainCap {
		return // bounded: a flood for never-opening instances is dropped
	}
	sh.retained[inst] = append(sh.retained[inst], d)
	sh.retainedLen++
}

// abandoned propagates a dead real endpoint (crash-stop, network close) to
// every open instance: their queues close, so blocked receivers observe the
// stop exactly as they would on an unmuxed endpoint.
func (sh *muxShared) abandoned() {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return
	}
	sh.closed = true
	open := make([]*muxEndpoint, 0, len(sh.open))
	for _, ep := range sh.open {
		open = append(open, ep)
	}
	sh.mu.Unlock()
	sh.mux.forget(sh)
	for _, ep := range open {
		ep.queue.Close()
	}
}

// teardown closes the real endpoint (stopping the pump) and every open
// instance queue; used by Mux.Close.
func (sh *muxShared) teardown() {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return
	}
	sh.closed = true
	open := make([]*muxEndpoint, 0, len(sh.open))
	for _, ep := range sh.open {
		open = append(open, ep)
	}
	sh.mu.Unlock()
	_ = sh.real.Close()
	for _, ep := range open {
		ep.queue.Close()
	}
}

// markDeadLocked records a completed instance, bounded by muxDeadCap. The
// dead set and deadOrder stay duplicate-free even under tag reuse, so
// eviction accounting never removes a marker out of turn.
func (sh *muxShared) markDeadLocked(instance string) {
	if _, dup := sh.dead[instance]; !dup {
		sh.dead[instance] = struct{}{}
		sh.deadOrder = append(sh.deadOrder, instance)
		if len(sh.deadOrder) > muxDeadCap {
			evict := sh.deadOrder[0]
			sh.deadOrder = sh.deadOrder[1:]
			delete(sh.dead, evict)
		}
	}
	if pend := sh.retained[instance]; pend != nil {
		delete(sh.retained, instance)
		sh.retainedLen -= len(pend)
	}
}

// muxEndpoint is one (action instance, thread) virtual endpoint.
type muxEndpoint struct {
	shared   *muxShared
	instance string
	queue    *vclock.Queue
}

var _ Endpoint = (*muxEndpoint)(nil)

// Addr returns the thread address, not the instance tag: runtime code
// addresses peers by thread, and the instance travels in the message's
// action identifier.
func (e *muxEndpoint) Addr() string { return e.shared.addr }

func (e *muxEndpoint) Send(to string, msg protocol.Message) error {
	return e.shared.real.Send(to, msg)
}

func (e *muxEndpoint) Recv() (Delivery, bool) {
	return unboxDelivery(e.queue.Get())
}

func (e *muxEndpoint) RecvTimeout(timeout time.Duration) (Delivery, bool) {
	return unboxDelivery(e.queue.GetTimeout(timeout))
}

func (e *muxEndpoint) Pending() int { return e.queue.Len() }

// Close completes this instance on this thread address: the instance is
// garbage-collected from the routing table (late traffic for it is dropped),
// and closing the address's last instance tears the shared endpoint down,
// stopping its pump and freeing the address.
func (e *muxEndpoint) Close() error {
	sh := e.shared
	sh.mu.Lock()
	if sh.open[e.instance] != e {
		sh.mu.Unlock()
		return nil // already closed, or superseded by a tag-reuse reopen
	}
	delete(sh.open, e.instance)
	sh.markDeadLocked(e.instance)
	e.queue.Close()
	last := len(sh.open) == 0 && !sh.closed
	if last {
		sh.closed = true
	}
	sh.mu.Unlock()
	if last {
		// Close the real endpoint BEFORE forgetting the shared entry: a
		// concurrent Open of this address then either still finds the entry
		// (sees sh.closed, retries until forget runs) or re-binds after the
		// address is genuinely free — never while the old endpoint is still
		// bound, which would fail the bind with ErrDuplicateAddr.
		err := sh.real.Close()
		sh.mux.forget(sh)
		return err
	}
	return nil
}
