package transport

import (
	"fmt"
	"hash/maphash"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"caaction/internal/protocol"
	"caaction/internal/vclock"
)

// Bounds on the per-shared-endpoint bookkeeping a Mux keeps for traffic that
// cannot be delivered right now. Both exist so a long-lived system's memory
// stays bounded no matter how many action instances pass through it.
const (
	// muxDeadCap bounds the completed-instance set remembered per shared
	// endpoint so that late traffic for a finished instance is dropped
	// instead of retained forever. Once exceeded, the oldest completions are
	// forgotten — a message for one of those would be re-retained (and then
	// evicted by muxRetainCap), never mis-delivered.
	muxDeadCap = 4096
	// muxRetainCap bounds the deliveries buffered for instances that have
	// not opened yet (a fast peer's message racing the local Open).
	muxRetainCap = 1024
)

// muxShardCount is the default stripe count for the address table:
// Open/Close/forget of unrelated thread addresses take unrelated locks, so
// thousands of concurrent instance lifecycles stop serialising on one mutex.
// Power of two so the hash folds with a mask; override with MuxOptions.Shards.
const muxShardCount = 32

// Mux multiplexes many concurrent action instances over one shared transport
// endpoint per thread address — the demultiplexing layer of the concurrent
// multi-action runtime.
//
// Open(instance, thread) hands out a virtual Endpoint for one (action
// instance, participating thread) pair. All virtual endpoints of a thread
// address share a single underlying Network endpoint bound to that address:
// sends go straight to the shared endpoint, and a per-address pump goroutine
// routes every inbound delivery to the virtual endpoint of the instance
// named by the message's action-identifier tag (protocol.InstanceOf).
// Messages for instances that have not opened yet are retained (bounded)
// until they open; messages for completed instances are dropped.
//
// The address table is lock-striped into muxShardCount shards keyed by
// thread address, and the retained/dead garbage collection is per shared
// endpoint (hence per shard): concurrent Open/route/Close traffic across
// addresses never contends on a global lock.
//
// Garbage collection: closing a virtual endpoint marks its instance
// complete, and closing the last instance of a thread address tears the
// shared endpoint and its pump down, releasing the address for re-binding.
// The pump is started with Clock.Go, so under the virtual clock it
// participates in time advancement like every other runtime goroutine and
// whole muxed simulations stay deterministic.
type Mux struct {
	clock vclock.Clock
	net   Network
	// inline gates the run-to-completion delivery lane (see inline.go):
	// true only on real-time clocks with the lane enabled, so virtual-clock
	// simulations keep their deterministic queue-and-pump scheduling.
	inline bool

	closed atomic.Bool
	shards []muxShard
	mask   uint64

	// epPool recycles virtual endpoints together with their receive queues
	// (see RecycleEndpoint). Per-Mux, never global: a pooled queue belongs
	// to this Mux's clock.
	epPool sync.Pool
}

type muxShard struct {
	mu     sync.Mutex
	shared map[string]*muxShared
}

// muxSeed keys the shard hash; process-wide is fine (all Muxes may share the
// same stripe layout).
var muxSeed = maphash.MakeSeed()

func (m *Mux) shardFor(thread string) *muxShard {
	return &m.shards[maphash.String(muxSeed, thread)&m.mask]
}

// MuxOptions tunes a demultiplexer; the zero value gives the defaults.
type MuxOptions struct {
	// Shards is the address-table stripe count, rounded up to a power of
	// two; 0 means the default (32). More shards reduce Open/Close
	// contention at very high concurrency; fewer save a little memory.
	Shards int
	// NoInline disables the run-to-completion delivery lane even on
	// real-time clocks, keeping every endpoint on the queue-and-pump path.
	NoInline bool
}

// NewMux returns a demultiplexer over the given network. The clock must be
// the same one driving the rest of the simulation or deployment.
func NewMux(clock vclock.Clock, net Network) *Mux {
	return NewMuxOpts(clock, net, MuxOptions{})
}

// NewMuxOpts is NewMux with explicit tuning options.
func NewMuxOpts(clock vclock.Clock, net Network, o MuxOptions) *Mux {
	if clock == nil || net == nil {
		panic("transport: NewMux requires a clock and a network")
	}
	n := o.Shards
	if n <= 0 {
		n = muxShardCount
	}
	shards := 1
	for shards < n {
		shards <<= 1
	}
	m := &Mux{
		clock:  clock,
		net:    net,
		inline: !o.NoInline && vclock.IsReal(clock),
		shards: make([]muxShard, shards),
		mask:   uint64(shards - 1),
	}
	for i := range m.shards {
		m.shards[i].shared = make(map[string]*muxShared)
	}
	return m
}

// Open attaches the named action instance to a thread address, lazily
// binding the address's shared endpoint (and starting its pump) on first
// use. The returned Endpoint reports Addr() == thread, so runtime code is
// oblivious to the multiplexing. Opening the same (instance, thread) pair
// twice while the first is still open fails with ErrDuplicateAddr.
func (m *Mux) Open(instance, thread string) (Endpoint, error) {
	if instance == "" {
		return nil, fmt.Errorf("transport: mux: empty instance tag")
	}
	_ = protocol.TagInstance(instance, "") // panics on reserved characters
	shard := m.shardFor(thread)
	for {
		shard.mu.Lock()
		if m.closed.Load() {
			// Checked under the shard lock, so an Open and a Close racing on
			// this shard serialise: either the bind below lands before the
			// closing sweep (which then tears it down) or the Open fails.
			shard.mu.Unlock()
			return nil, ErrClosed
		}
		sh, ok := shard.shared[thread]
		if !ok {
			real, err := m.net.Endpoint(thread)
			if err != nil {
				shard.mu.Unlock()
				return nil, fmt.Errorf("transport: mux: bind %q: %w", thread, err)
			}
			sh = &muxShared{
				mux:      m,
				addr:     thread,
				real:     real,
				open:     make(map[string]*muxEndpoint),
				dead:     make(map[string]struct{}),
				retained: make(map[string][]Delivery),
			}
			// The pump is infrastructure: its blocking receive must not count
			// toward the virtual clock's deadlock detection.
			if dm, ok := real.(interface{ MarkDaemon() }); ok {
				dm.MarkDaemon()
			}
			if m.inline {
				// Sender-side delivery: a transport that supports sinks (the
				// in-process sim) hands fast-path sends straight to dispatch
				// on the sender's goroutine, skipping the shared queue and
				// the pump wakeup. The pump keeps running for traffic that
				// takes the transport's locked path.
				if sk, ok := real.(interface{ SetSink(func(Delivery)) }); ok {
					sk.SetSink(sh.dispatch)
				}
			}
			shard.shared[thread] = sh
			m.clock.Go(sh.pump)
		}
		shard.mu.Unlock()

		sh.mu.Lock()
		if sh.closed {
			// The shared endpoint was torn down between our lookup and this
			// lock (its last instance closed, or its address crashed); retry
			// so a fresh one is bound. Yield first: the closer still has to
			// release the underlying endpoint and forget the table entry, and
			// on a busy (or single-core) scheduler a tight retry loop would
			// starve it — this was a measurable busy-spin against racing
			// shared-endpoint teardown at high instance churn.
			sh.mu.Unlock()
			runtime.Gosched()
			continue
		}
		if _, dup := sh.open[instance]; dup {
			sh.mu.Unlock()
			return nil, fmt.Errorf("%w: instance %q on %q", ErrDuplicateAddr, instance, thread)
		}
		ep, _ := m.epPool.Get().(*muxEndpoint)
		if ep == nil {
			ep = &muxEndpoint{mux: m, queue: m.clock.NewQueue()}
		}
		ep.shared = sh
		ep.instance = instance
		sh.open[instance] = ep
		// A reused tag may still sit in the dead set from its previous
		// incarnation; routing prefers the open table, so delivery is
		// unaffected while open, and the marker (kept, to keep deadOrder
		// duplicate-free) resumes dropping late traffic after the re-close.
		if pend := sh.retained[instance]; len(pend) > 0 {
			delete(sh.retained, instance)
			sh.retainedLen -= len(pend)
			for _, d := range pend {
				ep.queue.Put(borrowDelivery(d.From, d.Msg, d.Corrupt))
			}
		}
		sh.mu.Unlock()
		return ep, nil
	}
}

// Close tears every shared endpoint down. The underlying network is NOT
// closed — the Mux does not own it.
func (m *Mux) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	var all []*muxShared
	for i := range m.shards {
		shard := &m.shards[i]
		shard.mu.Lock()
		for _, sh := range shard.shared {
			all = append(all, sh)
		}
		shard.shared = make(map[string]*muxShared)
		shard.mu.Unlock()
	}
	for _, sh := range all {
		sh.teardown()
	}
	return nil
}

// forget removes a torn-down shared endpoint from its shard so a later Open
// re-binds the address.
func (m *Mux) forget(sh *muxShared) {
	shard := m.shardFor(sh.addr)
	shard.mu.Lock()
	if shard.shared[sh.addr] == sh {
		delete(shard.shared, sh.addr)
	}
	shard.mu.Unlock()
}

// RecycleEndpoint scrubs a virtual endpoint handed out by Mux.Open and
// returns it — together with its receive queue — to its Mux's pool, so the
// next Open reuses both allocations. Only the endpoint's exclusive owner
// may call it, after Close has completed on it, and must drop every
// reference: pool hygiene requires that a recycled endpoint has no
// remaining referent (no pump — Close deregistered it — and no other
// goroutine holding it, e.g. a StartAction cancellation watcher). Any
// deliveries still buffered for the completed instance are drained and
// their boxes released. A no-op for non-mux endpoints and for endpoints
// still routed (never closed).
func RecycleEndpoint(ep Endpoint) {
	me, ok := ep.(*muxEndpoint)
	if !ok {
		return
	}
	sh := me.shared
	sh.mu.Lock()
	stillOpen := sh.open[me.instance] == me
	sh.mu.Unlock()
	if stillOpen {
		return
	}
	for {
		x, ok := me.queue.TryGet()
		if !ok {
			break
		}
		releaseDelivery(x.(*Delivery))
	}
	me.recycleInline()
	mux := me.mux
	me.shared = nil
	me.instance = ""
	me.queue.Reset()
	mux.epPool.Put(me)
}

// muxShared is one thread address's attachment: the real endpoint, its pump,
// and the instance routing table.
type muxShared struct {
	mux  *Mux
	addr string
	real Endpoint

	mu          sync.Mutex
	open        map[string]*muxEndpoint
	dead        map[string]struct{}
	deadOrder   []string
	retained    map[string][]Delivery
	retainedLen int
	closed      bool
}

// pump routes inbound deliveries to per-instance virtual endpoints until the
// real endpoint closes (teardown or crash-stop).
func (sh *muxShared) pump() {
	for {
		d, ok := sh.real.Recv()
		if !ok {
			sh.abandoned()
			return
		}
		sh.dispatch(d)
	}
}

// dispatch routes one delivery to its instance's endpoint. Callers are the
// shared endpoint's pump goroutine and — when the sender-side sink is
// installed — any sending goroutine, so the whole body is serialised on
// sh.mu. Holding sh.mu across an inline-executed step also pins the
// endpoint open (Close removes it from sh.open under this lock), so the
// step can never race endpoint recycling; the step's deferred sends and the
// owner wakeup run after the lock is dropped.
func (sh *muxShared) dispatch(d Delivery) {
	inst := protocol.InstanceOf(protocol.ActionOf(d.Msg))
	sh.mu.Lock()
	if ep, ok := sh.open[inst]; ok {
		var post inlinePost
		delivered := ep.deliverLocked(d, &post)
		sh.mu.Unlock()
		if delivered && (post.wake || post.outs != nil) {
			ep.finishInline(sh, &post)
		}
		return
	}
	defer sh.mu.Unlock()
	if _, done := sh.dead[inst]; done || inst == "" {
		return // late traffic for a completed instance, or an untagged stray
	}
	if sh.closed {
		// The shard is dying (its last instance closed while this frame was
		// in flight): anything retained here would die with it. Hand the
		// frame back to the transport, which re-retains it for the
		// address's next bind — the next instance on this thread gets it
		// replayed at Open. Reinjecting under sh.mu keeps it ordered after
		// the retained set Close handed back and before later backlog.
		sh.reinject(d)
		return
	}
	if sh.retainedLen >= muxRetainCap {
		return // bounded: a flood for never-opening instances is dropped
	}
	sh.retained[inst] = append(sh.retained[inst], d)
	sh.retainedLen++
}

// reinject hands one delivery back to the transport when this shard can no
// longer retain it (see dispatch and muxEndpoint.Close). Callers hold
// sh.mu; a transport that supports re-injection takes its own network lock
// under it — shard lock before network lock is the sanctioned order, never
// the reverse. Transports without re-injection (the in-process sim, plain
// per-endpoint TCP) keep the old semantics: the frame is dropped.
func (sh *muxShared) reinject(d Delivery) {
	if rj, ok := sh.real.(interface{ Reinject(Delivery) bool }); ok {
		rj.Reinject(d)
	}
}

// abandoned propagates a dead real endpoint (crash-stop, network close) to
// every open instance: their queues close, so blocked receivers observe the
// stop exactly as they would on an unmuxed endpoint.
//
// The queues are closed while sh.mu is held (queue operations never take
// sh.mu, so the nesting is safe): a snapshot closed after dropping the lock
// could race a concurrent instance Close + RecycleEndpoint and land the
// stray Close on a queue already scrubbed into the endpoint pool — killing
// an unrelated later instance's mailbox.
func (sh *muxShared) abandoned() {
	sh.mu.Lock()
	if sh.closed {
		// Ordinary last-instance shutdown (muxEndpoint.Close marked the
		// shard closed and closed the real endpoint): the pump has now
		// drained every pre-close frame through dispatch, so releasing the
		// address is safe — and is deferred to here precisely so a
		// successor bind cannot race ahead of that backlog.
		sh.mu.Unlock()
		sh.mux.forget(sh)
		return
	}
	sh.closed = true
	var wake []*muxEndpoint
	for _, ep := range sh.open {
		ep.queue.Close()
		if ep.stopInline() {
			wake = append(wake, ep)
		}
	}
	sh.mu.Unlock()
	for _, ep := range wake {
		ep.inl.wake <- struct{}{}
	}
	sh.mux.forget(sh)
}

// stopInline closes an endpoint's inline lane, reporting whether the caller
// must wake a parked owner once sh.mu is released.
func (e *muxEndpoint) stopInline() bool {
	e.imu.Lock()
	wake := e.closeInlineLocked()
	e.imu.Unlock()
	return wake
}

// teardown closes the real endpoint (stopping the pump) and every open
// instance queue; used by Mux.Close. Instance queues close under sh.mu for
// the same recycle-race reason as abandoned.
func (sh *muxShared) teardown() {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return
	}
	sh.closed = true
	var wake []*muxEndpoint
	for _, ep := range sh.open {
		ep.queue.Close()
		if ep.stopInline() {
			wake = append(wake, ep)
		}
	}
	sh.mu.Unlock()
	for _, ep := range wake {
		ep.inl.wake <- struct{}{}
	}
	_ = sh.real.Close()
}

// markDeadLocked records a completed instance, bounded by muxDeadCap. The
// dead set and deadOrder stay duplicate-free even under tag reuse, so
// eviction accounting never removes a marker out of turn.
func (sh *muxShared) markDeadLocked(instance string) {
	if _, dup := sh.dead[instance]; !dup {
		sh.dead[instance] = struct{}{}
		sh.deadOrder = append(sh.deadOrder, instance)
		if len(sh.deadOrder) > muxDeadCap {
			evict := sh.deadOrder[0]
			sh.deadOrder = sh.deadOrder[1:]
			delete(sh.dead, evict)
		}
	}
	if pend := sh.retained[instance]; pend != nil {
		delete(sh.retained, instance)
		sh.retainedLen -= len(pend)
	}
}

// muxEndpoint is one (action instance, thread) virtual endpoint. Besides the
// receive queue (virtual clocks, and real-time endpoints before a thread
// adopts them), it carries the inline-lane state: imu guards inl, and is
// only ever taken after sh.mu (never the reverse — inline-routed steps
// defer their sends precisely so no send happens under imu).
type muxEndpoint struct {
	mux      *Mux
	shared   *muxShared
	instance string
	queue    *vclock.Queue

	imu sync.Mutex
	inl inlineState
}

var (
	_ Endpoint       = (*muxEndpoint)(nil)
	_ InlineEndpoint = (*muxEndpoint)(nil)
)

// Addr returns the thread address, not the instance tag: runtime code
// addresses peers by thread, and the instance travels in the message's
// action identifier.
func (e *muxEndpoint) Addr() string { return e.shared.addr }

func (e *muxEndpoint) Send(to string, msg protocol.Message) error {
	return e.shared.real.Send(to, msg)
}

func (e *muxEndpoint) Recv() (Delivery, bool) {
	return unboxDelivery(e.queue.Get())
}

func (e *muxEndpoint) RecvTimeout(timeout time.Duration) (Delivery, bool) {
	return unboxDelivery(e.queue.GetTimeout(timeout))
}

func (e *muxEndpoint) Pending() int { return e.queue.Len() }

// Close completes this instance on this thread address: the instance is
// garbage-collected from the routing table (late traffic for it is dropped),
// and closing the address's last instance tears the shared endpoint down,
// stopping its pump and freeing the address.
func (e *muxEndpoint) Close() error {
	sh := e.shared
	sh.mu.Lock()
	if sh.open[e.instance] != e {
		sh.mu.Unlock()
		return nil // already closed, or superseded by a tag-reuse reopen
	}
	delete(sh.open, e.instance)
	sh.markDeadLocked(e.instance)
	e.queue.Close()
	// Close the inline lane too. The owner closes its own endpoint only
	// while unparked, but a cancellation watcher may close it out from
	// under a parked thread — that thread must wake and observe the stop.
	wake := e.stopInline()
	last := len(sh.open) == 0 && !sh.closed
	if last {
		sh.closed = true
		// Frames retained for instances that never opened here must not die
		// with the shard: the usual reason they exist is a fast peer racing
		// this thread's next action start, and losing them wedges that
		// action's entry barrier until its deadline. Hand them back to the
		// transport (under sh.mu, so concurrent dispatches of younger
		// backlog frames order after them) for the address's next bind.
		for inst, pend := range sh.retained {
			delete(sh.retained, inst)
			sh.retainedLen -= len(pend)
			for _, d := range pend {
				sh.reinject(d)
			}
		}
	}
	sh.mu.Unlock()
	if wake {
		e.inl.wake <- struct{}{}
	}
	if last {
		// Close the real endpoint BEFORE the shared entry is forgotten: a
		// concurrent Open of this address then either still finds the entry
		// (sees sh.closed, retries until forget runs) or re-binds after the
		// address is genuinely free — never while the old endpoint is still
		// bound, which would fail the bind with ErrDuplicateAddr. The
		// forget itself is the pump's: closing the real endpoint stops its
		// receive loop once the pre-close backlog has drained through
		// dispatch (which reinjects it, the shard being closed), and only
		// then does abandoned release the address — so a successor can
		// never bind ahead of frames that arrived before it.
		return sh.real.Close()
	}
	return nil
}
