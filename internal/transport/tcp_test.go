package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"caaction/internal/except"
	"caaction/internal/protocol"
	"caaction/internal/trace"
	"caaction/internal/vclock"
)

func TestTCPRoundTrip(t *testing.T) {
	clk := vclock.NewReal()
	net := NewTCP(clk)
	defer func() { _ = net.Close() }()

	a, err := net.Endpoint("T1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("T2")
	if err != nil {
		t.Fatal(err)
	}

	want := protocol.Exception{
		Action: "act#1",
		From:   "T1",
		Exc:    except.Raised{ID: "vm_stop", Origin: "T1", Info: "motor stalled"},
	}
	if err := a.Send("T2", want); err != nil {
		t.Fatal(err)
	}
	d, ok := b.RecvTimeout(5 * time.Second)
	if !ok {
		t.Fatal("no delivery")
	}
	if d.From != "T1" {
		t.Fatalf("from = %q", d.From)
	}
	got, ok := d.Msg.(protocol.Exception)
	if !ok || got.Exc.ID != "vm_stop" || got.Exc.Info != "motor stalled" {
		t.Fatalf("got %#v", d.Msg)
	}
}

// TestTCPGobWireOption pins the legacy wire format behind SetGobWire: a
// network configured for gob still round-trips every message kind,
// including gob-registered App payloads.
func TestTCPGobWireOption(t *testing.T) {
	clk := vclock.NewReal()
	net := NewTCP(clk)
	net.SetGobWire(true)
	defer func() { _ = net.Close() }()

	a, err := net.Endpoint("T1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("T2")
	if err != nil {
		t.Fatal(err)
	}
	want := protocol.Commit{Action: "act#1", From: "T1", Round: 2, Resolved: "e1",
		Raised: []except.Raised{{ID: "e1", Origin: "T1", Info: "x"}}}
	if err := a.Send("T2", want); err != nil {
		t.Fatal(err)
	}
	d, ok := b.RecvTimeout(5 * time.Second)
	if !ok {
		t.Fatal("no delivery")
	}
	got, ok := d.Msg.(protocol.Commit)
	if !ok || got.Resolved != "e1" || len(got.Raised) != 1 || d.From != "T1" {
		t.Fatalf("gob wire round trip: %#v (from %q)", d.Msg, d.From)
	}
}

// TestTCPBinaryWireAppPayload: the binary codec's gob fallback carries
// arbitrary registered App payloads across real sockets.
func TestTCPBinaryWireAppPayload(t *testing.T) {
	clk := vclock.NewReal()
	net := NewTCP(clk)
	defer func() { _ = net.Close() }()
	a, err := net.Endpoint("T1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("T2")
	if err != nil {
		t.Fatal(err)
	}
	// string payloads ride the codec fast path; send one of each shape.
	msgs := []protocol.Message{
		protocol.App{Action: "a#1", From: "T1", ToRole: "r2", Payload: "fast-path"},
		protocol.App{Action: "a#1", From: "T1", ToRole: "r2", Payload: 42},
		protocol.App{Action: "a#1", From: "T1", ToRole: "r2", Payload: nil},
	}
	for _, m := range msgs {
		if err := a.Send("T2", m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		d, ok := b.RecvTimeout(5 * time.Second)
		if !ok {
			t.Fatalf("missing delivery %d", i)
		}
		got := d.Msg.(protocol.App)
		if got.Payload != want.(protocol.App).Payload {
			t.Fatalf("payload %d = %#v, want %#v", i, got.Payload, want)
		}
	}
}

// TestTCPCodecErrorKeepsConnection: a pre-I/O encode failure (foreign
// message type) must not tear down the healthy cached connection — nothing
// reached the wire, so subsequent sends keep working without a re-dial.
func TestTCPCodecErrorKeepsConnection(t *testing.T) {
	clk := vclock.NewReal()
	net := NewTCP(clk)
	defer func() { _ = net.Close() }()
	a, err := net.Endpoint("T1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("T2")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("T2", protocol.Ack{Action: "x", From: "T1"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.RecvTimeout(5 * time.Second); !ok {
		t.Fatal("no delivery")
	}
	ep := a.(*tcpEndpoint)
	ep.mu.Lock()
	before := ep.conns["T2"]
	ep.mu.Unlock()
	if before == nil {
		t.Fatal("no cached connection after first send")
	}

	if err := a.Send("T2", foreignKindMsg{}); err == nil {
		t.Fatal("foreign message encoded without error")
	}
	ep.mu.Lock()
	after := ep.conns["T2"]
	ep.mu.Unlock()
	if after != before {
		t.Fatal("codec error dropped the healthy cached connection")
	}
	if err := a.Send("T2", protocol.Ack{Action: "y", From: "T1"}); err != nil {
		t.Fatalf("send after codec error: %v", err)
	}
	if _, ok := b.RecvTimeout(5 * time.Second); !ok {
		t.Fatal("no delivery after codec error")
	}
}

type foreignKindMsg struct{}

func (foreignKindMsg) Kind() string { return "ForeignKind" }

func TestTCPFIFO(t *testing.T) {
	clk := vclock.NewReal()
	net := NewTCP(clk)
	defer func() { _ = net.Close() }()
	a, _ := net.Endpoint("A")
	b, _ := net.Endpoint("B")

	const n = 100
	for i := 0; i < n; i++ {
		if err := a.Send("B", protocol.Ack{Action: "x", From: string(rune(i))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		d, ok := b.RecvTimeout(5 * time.Second)
		if !ok {
			t.Fatalf("missing delivery %d", i)
		}
		if d.Msg.(protocol.Ack).From != string(rune(i)) {
			t.Fatalf("out of order at %d", i)
		}
	}
}

func TestTCPBidirectionalAndMultiplePeers(t *testing.T) {
	clk := vclock.NewReal()
	net := NewTCP(clk)
	defer func() { _ = net.Close() }()
	eps := make(map[string]Endpoint)
	names := []string{"T1", "T2", "T3"}
	for _, n := range names {
		ep, err := net.Endpoint(n)
		if err != nil {
			t.Fatal(err)
		}
		eps[n] = ep
	}
	// Everyone sends to everyone else.
	for _, from := range names {
		for _, to := range names {
			if to == from {
				continue
			}
			if err := eps[from].Send(to, protocol.Suspended{Action: "a", From: from}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, n := range names {
		seen := map[string]bool{}
		for i := 0; i < len(names)-1; i++ {
			d, ok := eps[n].RecvTimeout(5 * time.Second)
			if !ok {
				t.Fatalf("%s: missing delivery", n)
			}
			seen[d.From] = true
		}
		if len(seen) != len(names)-1 {
			t.Fatalf("%s: saw %v", n, seen)
		}
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	clk := vclock.NewReal()
	net := NewTCP(clk)
	defer func() { _ = net.Close() }()
	a, _ := net.Endpoint("A")
	if err := a.Send("ghost", protocol.Ack{}); err == nil {
		t.Fatal("send to unknown peer succeeded")
	}
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	clk := vclock.NewReal()
	net := NewTCP(clk)
	a, _ := net.Endpoint("A")
	done := make(chan bool, 1)
	entered := make(chan struct{})
	go func() {
		close(entered)
		_, ok := a.Recv()
		done <- ok
	}()
	// Close unblocks a Recv in progress and fails a Recv issued after it
	// alike, so no sleep is needed — just don't close before the goroutine
	// exists.
	<-entered
	if err := net.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Recv returned ok after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
}

// TestTCPRebindInvalidatesCachedConns closes an address and re-binds it on
// a fresh port (what the mux's GC does when an address's last instance
// completes and a later instance reopens it); a peer's cached connection to
// the old incarnation must be dropped and re-dialled, not silently written
// into the dead socket.
func TestTCPRebindInvalidatesCachedConns(t *testing.T) {
	clk := vclock.NewReal()
	net := NewTCP(clk)
	defer func() { _ = net.Close() }()

	a, _ := net.Endpoint("A")
	b1, _ := net.Endpoint("B")
	if err := a.Send("B", protocol.Ack{Action: "one", From: "A"}); err != nil {
		t.Fatal(err)
	}
	if d, ok := b1.RecvTimeout(5 * time.Second); !ok || d.Msg.(protocol.Ack).Action != "one" {
		t.Fatalf("first incarnation delivery failed: %+v %v", d, ok)
	}

	if err := b1.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := net.Endpoint("B") // fresh incarnation, fresh port
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("B", protocol.Ack{Action: "two", From: "A"}); err != nil {
		t.Fatalf("send after re-bind: %v", err)
	}
	d, ok := b2.RecvTimeout(5 * time.Second)
	if !ok || d.Msg.(protocol.Ack).Action != "two" {
		t.Fatalf("message went to the dead incarnation: %+v %v", d, ok)
	}
}

func TestTCPSetPeerAcrossNetworks(t *testing.T) {
	// Two separate TCP networks model two OS processes; the address book
	// introduces them to each other.
	clk := vclock.NewReal()
	n1 := NewTCP(clk)
	n2 := NewTCP(clk)
	defer func() { _ = n1.Close() }()
	defer func() { _ = n2.Close() }()

	a, _ := n1.Endpoint("A")
	b, _ := n2.Endpoint("B")
	bAddr, ok := n2.ListenAddr("B")
	if !ok {
		t.Fatal("no listen addr for B")
	}
	n1.SetPeer("B", bAddr)

	if err := a.Send("B", protocol.Ack{Action: "cross", From: "A"}); err != nil {
		t.Fatal(err)
	}
	d, ok := b.RecvTimeout(5 * time.Second)
	if !ok || d.Msg.(protocol.Ack).Action != "cross" {
		t.Fatalf("cross-process delivery failed: %+v %v", d, ok)
	}
}

// TestTCPCoalescedBurst drives a burst through the write coalescer: far
// more frames than one coalesceBytes batch, sent back-to-back, must all
// arrive in order — batches flush on the byte bound mid-burst and on the
// wall-clock deadline for the tail.
func TestTCPCoalescedBurst(t *testing.T) {
	clk := vclock.NewReal()
	net := NewTCP(clk)
	defer func() { _ = net.Close() }()
	if !net.coalesce {
		t.Fatal("real-clock TCP should enable write coalescing")
	}
	a, _ := net.Endpoint("A")
	b, _ := net.Endpoint("B")

	const n = 5000 // ~50 bytes per frame: several 64KiB batches plus a tail
	for i := 0; i < n; i++ {
		if err := a.Send("B", protocol.Commit{Action: "burst#1", From: "A", Round: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		d, ok := b.RecvTimeout(5 * time.Second)
		if !ok {
			t.Fatalf("missing delivery %d of %d", i, n)
		}
		if got := d.Msg.(protocol.Commit).Round; got != i {
			t.Fatalf("out of order: got round %d at position %d", got, i)
		}
	}
}

// TestTCPCloseFlushesCoalescedTail pins the Close contract: frames sent
// immediately before Close — too few and too fresh for a size- or
// deadline-driven flush to be guaranteed — still reach the peer, because
// Close flushes every connection's pending batch.
func TestTCPCloseFlushesCoalescedTail(t *testing.T) {
	clk := vclock.NewReal()
	net := NewTCP(clk)
	defer func() { _ = net.Close() }()
	a, _ := net.Endpoint("A")
	b, _ := net.Endpoint("B")

	const n = 7
	for i := 0; i < n; i++ {
		if err := a.Send("B", protocol.Commit{Action: "tail#1", From: "A", Round: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		d, ok := b.RecvTimeout(5 * time.Second)
		if !ok {
			t.Fatalf("delivery %d of %d lost across Close", i, n)
		}
		if got := d.Msg.(protocol.Commit).Round; got != i {
			t.Fatalf("out of order: got round %d at position %d", got, i)
		}
	}
}

// nodeNet builds a node-mode TCP network whose resolver consults a shared
// mutable routing table (thread address → node host:port), modelling the
// directory layer a cluster node wires in.
func nodeNet(t *testing.T, hosted map[string]bool, table *sync.Map) *TCP {
	t.Helper()
	clk := vclock.NewReal()
	n := NewTCP(clk)
	local := func(addr string) bool { return hosted[addr] }
	resolve := func(addr string) (string, bool) {
		v, ok := table.Load(addr)
		if !ok {
			return "", false
		}
		return v.(string), true
	}
	if _, err := n.ConfigureNode("127.0.0.1:0", local, resolve); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestTCPNodeModeRoundTrip models two OS processes in node mode: each hosts
// one thread behind a single shared listener, and cross-node sends route via
// the resolver while same-node sends bypass the wire entirely.
func TestTCPNodeModeRoundTrip(t *testing.T) {
	var table sync.Map
	n1 := nodeNet(t, map[string]bool{"A": true, "A2": true}, &table)
	n2 := nodeNet(t, map[string]bool{"B": true}, &table)
	defer func() { _ = n1.Close() }()
	defer func() { _ = n2.Close() }()
	table.Store("A", n1.NodeAddr())
	table.Store("A2", n1.NodeAddr())
	table.Store("B", n2.NodeAddr())

	a, _ := n1.Endpoint("A")
	a2, _ := n1.Endpoint("A2")
	b, _ := n2.Endpoint("B")

	// Cross-node: A → B over n2's node listener.
	if err := a.Send("B", protocol.Ack{Action: "x#1", From: "A"}); err != nil {
		t.Fatal(err)
	}
	if d, ok := b.RecvTimeout(5 * time.Second); !ok || d.From != "A" || d.Msg.(protocol.Ack).Action != "x#1" {
		t.Fatalf("cross-node delivery failed: %+v %v", d, ok)
	}
	// Reply path B → A reuses the resolver in the other direction.
	if err := b.Send("A", protocol.Ack{Action: "y#1", From: "B"}); err != nil {
		t.Fatal(err)
	}
	if d, ok := a.RecvTimeout(5 * time.Second); !ok || d.From != "B" {
		t.Fatalf("reply delivery failed: %+v %v", d, ok)
	}
	// Same-node: A → A2 must work without any resolver entry consultation
	// (local bypass), even if the table lied about A2's placement.
	if err := a.Send("A2", protocol.Ack{Action: "loc#1", From: "A"}); err != nil {
		t.Fatal(err)
	}
	if d, ok := a2.RecvTimeout(5 * time.Second); !ok || d.Msg.(protocol.Ack).Action != "loc#1" {
		t.Fatalf("local bypass delivery failed: %+v %v", d, ok)
	}
	// Unknown destination: typed error, not a hang.
	if err := a.Send("nowhere", protocol.Ack{Action: "z#1", From: "A"}); !errors.Is(err, ErrUnknownAddr) {
		t.Fatalf("send to unhosted thread: err = %v, want ErrUnknownAddr", err)
	}
}

// TestTCPNodeRetainsForUnboundLocal pins the entry-barrier race across
// process boundaries: a frame arriving for a locally-placed thread that has
// not bound its endpoint yet is retained and flushed, in order, when the
// endpoint appears.
func TestTCPNodeRetainsForUnboundLocal(t *testing.T) {
	var table sync.Map
	n1 := nodeNet(t, map[string]bool{"A": true}, &table)
	n2 := nodeNet(t, map[string]bool{"B": true}, &table)
	defer func() { _ = n1.Close() }()
	defer func() { _ = n2.Close() }()
	table.Store("B", n2.NodeAddr())

	a, _ := n1.Endpoint("A")
	// B has NOT bound yet. Sends must succeed (the frame crosses the wire
	// and is retained by n2 on behalf of its locally-placed thread).
	for i := 0; i < 3; i++ {
		if err := a.Send("B", protocol.Commit{Action: "early#1", From: "A", Round: i}); err != nil {
			t.Fatal(err)
		}
	}
	// Give the frames time to arrive and be retained before binding; the
	// flush-on-bind path must hand them over regardless.
	deadline := time.Now().Add(5 * time.Second)
	for {
		n2.mu.Lock()
		retained := len(n2.retained["B"])
		n2.mu.Unlock()
		if retained == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retained %d frames for unbound B, want 3", retained)
		}
		time.Sleep(time.Millisecond)
	}
	b, err := n2.Endpoint("B")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		d, ok := b.RecvTimeout(5 * time.Second)
		if !ok {
			t.Fatalf("retained frame %d lost across bind", i)
		}
		if got := d.Msg.(protocol.Commit).Round; got != i {
			t.Fatalf("retained frames out of order: got round %d at %d", got, i)
		}
	}
}

// TestTCPNodeRedialAfterRestart extends the PR 3 stale-connection fix across
// a real process kill/restart: node B dies (listener and all conns torn
// down), comes back as a NEW network on a NEW port, and once the routing
// table reflects the new address, A's sends flow again over a fresh
// connection — no reuse of the dead one, no manual invalidation.
func TestTCPNodeRedialAfterRestart(t *testing.T) {
	var table sync.Map
	n1 := nodeNet(t, map[string]bool{"A": true}, &table)
	defer func() { _ = n1.Close() }()
	n2 := nodeNet(t, map[string]bool{"B": true}, &table)
	table.Store("B", n2.NodeAddr())
	oldAddr := n2.NodeAddr()

	a, _ := n1.Endpoint("A")
	b1, _ := n2.Endpoint("B")
	if err := a.Send("B", protocol.Ack{Action: "pre#1", From: "A"}); err != nil {
		t.Fatal(err)
	}
	if d, ok := b1.RecvTimeout(5 * time.Second); !ok || d.Msg.(protocol.Ack).Action != "pre#1" {
		t.Fatalf("pre-restart delivery failed: %+v %v", d, ok)
	}

	// Kill the B process: its listener closes and every established conn dies.
	if err := n2.Close(); err != nil {
		t.Fatal(err)
	}
	// Restart: a brand-new network (fresh ephemeral port), same logical role.
	n3 := nodeNet(t, map[string]bool{"B": true}, &table)
	defer func() { _ = n3.Close() }()
	if n3.NodeAddr() == oldAddr {
		t.Skipf("restart reused port %s; cannot exercise new-port re-dial", oldAddr)
	}
	table.Store("B", n3.NodeAddr())

	b2, _ := n3.Endpoint("B")
	// The very next send must reach the new incarnation: the resolver now
	// reports the new host:port, and connections are keyed by host:port, so
	// the cached conn to the dead listener is simply not consulted.
	if err := a.Send("B", protocol.Ack{Action: "post#1", From: "A"}); err != nil {
		t.Fatalf("send after restart: %v", err)
	}
	if d, ok := b2.RecvTimeout(5 * time.Second); !ok || d.Msg.(protocol.Ack).Action != "post#1" {
		t.Fatalf("post-restart delivery failed: %+v %v", d, ok)
	}
}

// TestTCPNodeMetricsCount checks node-mode sends feed the interned per-kind
// message counters (the §3.3.3 bound checks in the testnet aggregate these
// across nodes).
func TestTCPNodeMetricsCount(t *testing.T) {
	var table sync.Map
	n1 := nodeNet(t, map[string]bool{"A": true}, &table)
	n2 := nodeNet(t, map[string]bool{"B": true}, &table)
	defer func() { _ = n1.Close() }()
	defer func() { _ = n2.Close() }()
	table.Store("B", n2.NodeAddr())
	m := new(trace.Metrics)
	n1.SetMetrics(m)

	a, _ := n1.Endpoint("A")
	b, _ := n2.Endpoint("B")
	for i := 0; i < 4; i++ {
		if err := a.Send("B", protocol.Ack{Action: "m#1", From: "A"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, ok := b.RecvTimeout(5 * time.Second); !ok {
			t.Fatal("delivery lost")
		}
	}
	snap := m.Snapshot()
	if snap["msg.Ack"] != 4 || snap["msg.total"] != 4 {
		t.Fatalf("metrics = %v, want msg.Ack=4 msg.total=4", snap)
	}
}
