package transport

import (
	"testing"
	"time"

	"caaction/internal/except"
	"caaction/internal/protocol"
	"caaction/internal/vclock"
)

func TestTCPRoundTrip(t *testing.T) {
	clk := vclock.NewReal()
	net := NewTCP(clk)
	defer func() { _ = net.Close() }()

	a, err := net.Endpoint("T1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("T2")
	if err != nil {
		t.Fatal(err)
	}

	want := protocol.Exception{
		Action: "act#1",
		From:   "T1",
		Exc:    except.Raised{ID: "vm_stop", Origin: "T1", Info: "motor stalled"},
	}
	if err := a.Send("T2", want); err != nil {
		t.Fatal(err)
	}
	d, ok := b.RecvTimeout(5 * time.Second)
	if !ok {
		t.Fatal("no delivery")
	}
	if d.From != "T1" {
		t.Fatalf("from = %q", d.From)
	}
	got, ok := d.Msg.(protocol.Exception)
	if !ok || got.Exc.ID != "vm_stop" || got.Exc.Info != "motor stalled" {
		t.Fatalf("got %#v", d.Msg)
	}
}

// TestTCPGobWireOption pins the legacy wire format behind SetGobWire: a
// network configured for gob still round-trips every message kind,
// including gob-registered App payloads.
func TestTCPGobWireOption(t *testing.T) {
	clk := vclock.NewReal()
	net := NewTCP(clk)
	net.SetGobWire(true)
	defer func() { _ = net.Close() }()

	a, err := net.Endpoint("T1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("T2")
	if err != nil {
		t.Fatal(err)
	}
	want := protocol.Commit{Action: "act#1", From: "T1", Round: 2, Resolved: "e1",
		Raised: []except.Raised{{ID: "e1", Origin: "T1", Info: "x"}}}
	if err := a.Send("T2", want); err != nil {
		t.Fatal(err)
	}
	d, ok := b.RecvTimeout(5 * time.Second)
	if !ok {
		t.Fatal("no delivery")
	}
	got, ok := d.Msg.(protocol.Commit)
	if !ok || got.Resolved != "e1" || len(got.Raised) != 1 || d.From != "T1" {
		t.Fatalf("gob wire round trip: %#v (from %q)", d.Msg, d.From)
	}
}

// TestTCPBinaryWireAppPayload: the binary codec's gob fallback carries
// arbitrary registered App payloads across real sockets.
func TestTCPBinaryWireAppPayload(t *testing.T) {
	clk := vclock.NewReal()
	net := NewTCP(clk)
	defer func() { _ = net.Close() }()
	a, err := net.Endpoint("T1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("T2")
	if err != nil {
		t.Fatal(err)
	}
	// string payloads ride the codec fast path; send one of each shape.
	msgs := []protocol.Message{
		protocol.App{Action: "a#1", From: "T1", ToRole: "r2", Payload: "fast-path"},
		protocol.App{Action: "a#1", From: "T1", ToRole: "r2", Payload: 42},
		protocol.App{Action: "a#1", From: "T1", ToRole: "r2", Payload: nil},
	}
	for _, m := range msgs {
		if err := a.Send("T2", m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		d, ok := b.RecvTimeout(5 * time.Second)
		if !ok {
			t.Fatalf("missing delivery %d", i)
		}
		got := d.Msg.(protocol.App)
		if got.Payload != want.(protocol.App).Payload {
			t.Fatalf("payload %d = %#v, want %#v", i, got.Payload, want)
		}
	}
}

// TestTCPCodecErrorKeepsConnection: a pre-I/O encode failure (foreign
// message type) must not tear down the healthy cached connection — nothing
// reached the wire, so subsequent sends keep working without a re-dial.
func TestTCPCodecErrorKeepsConnection(t *testing.T) {
	clk := vclock.NewReal()
	net := NewTCP(clk)
	defer func() { _ = net.Close() }()
	a, err := net.Endpoint("T1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("T2")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("T2", protocol.Ack{Action: "x", From: "T1"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.RecvTimeout(5 * time.Second); !ok {
		t.Fatal("no delivery")
	}
	ep := a.(*tcpEndpoint)
	ep.mu.Lock()
	before := ep.conns["T2"]
	ep.mu.Unlock()
	if before == nil {
		t.Fatal("no cached connection after first send")
	}

	if err := a.Send("T2", foreignKindMsg{}); err == nil {
		t.Fatal("foreign message encoded without error")
	}
	ep.mu.Lock()
	after := ep.conns["T2"]
	ep.mu.Unlock()
	if after != before {
		t.Fatal("codec error dropped the healthy cached connection")
	}
	if err := a.Send("T2", protocol.Ack{Action: "y", From: "T1"}); err != nil {
		t.Fatalf("send after codec error: %v", err)
	}
	if _, ok := b.RecvTimeout(5 * time.Second); !ok {
		t.Fatal("no delivery after codec error")
	}
}

type foreignKindMsg struct{}

func (foreignKindMsg) Kind() string { return "ForeignKind" }

func TestTCPFIFO(t *testing.T) {
	clk := vclock.NewReal()
	net := NewTCP(clk)
	defer func() { _ = net.Close() }()
	a, _ := net.Endpoint("A")
	b, _ := net.Endpoint("B")

	const n = 100
	for i := 0; i < n; i++ {
		if err := a.Send("B", protocol.Ack{Action: "x", From: string(rune(i))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		d, ok := b.RecvTimeout(5 * time.Second)
		if !ok {
			t.Fatalf("missing delivery %d", i)
		}
		if d.Msg.(protocol.Ack).From != string(rune(i)) {
			t.Fatalf("out of order at %d", i)
		}
	}
}

func TestTCPBidirectionalAndMultiplePeers(t *testing.T) {
	clk := vclock.NewReal()
	net := NewTCP(clk)
	defer func() { _ = net.Close() }()
	eps := make(map[string]Endpoint)
	names := []string{"T1", "T2", "T3"}
	for _, n := range names {
		ep, err := net.Endpoint(n)
		if err != nil {
			t.Fatal(err)
		}
		eps[n] = ep
	}
	// Everyone sends to everyone else.
	for _, from := range names {
		for _, to := range names {
			if to == from {
				continue
			}
			if err := eps[from].Send(to, protocol.Suspended{Action: "a", From: from}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, n := range names {
		seen := map[string]bool{}
		for i := 0; i < len(names)-1; i++ {
			d, ok := eps[n].RecvTimeout(5 * time.Second)
			if !ok {
				t.Fatalf("%s: missing delivery", n)
			}
			seen[d.From] = true
		}
		if len(seen) != len(names)-1 {
			t.Fatalf("%s: saw %v", n, seen)
		}
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	clk := vclock.NewReal()
	net := NewTCP(clk)
	defer func() { _ = net.Close() }()
	a, _ := net.Endpoint("A")
	if err := a.Send("ghost", protocol.Ack{}); err == nil {
		t.Fatal("send to unknown peer succeeded")
	}
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	clk := vclock.NewReal()
	net := NewTCP(clk)
	a, _ := net.Endpoint("A")
	done := make(chan bool, 1)
	entered := make(chan struct{})
	go func() {
		close(entered)
		_, ok := a.Recv()
		done <- ok
	}()
	// Close unblocks a Recv in progress and fails a Recv issued after it
	// alike, so no sleep is needed — just don't close before the goroutine
	// exists.
	<-entered
	if err := net.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Recv returned ok after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
}

// TestTCPRebindInvalidatesCachedConns closes an address and re-binds it on
// a fresh port (what the mux's GC does when an address's last instance
// completes and a later instance reopens it); a peer's cached connection to
// the old incarnation must be dropped and re-dialled, not silently written
// into the dead socket.
func TestTCPRebindInvalidatesCachedConns(t *testing.T) {
	clk := vclock.NewReal()
	net := NewTCP(clk)
	defer func() { _ = net.Close() }()

	a, _ := net.Endpoint("A")
	b1, _ := net.Endpoint("B")
	if err := a.Send("B", protocol.Ack{Action: "one", From: "A"}); err != nil {
		t.Fatal(err)
	}
	if d, ok := b1.RecvTimeout(5 * time.Second); !ok || d.Msg.(protocol.Ack).Action != "one" {
		t.Fatalf("first incarnation delivery failed: %+v %v", d, ok)
	}

	if err := b1.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := net.Endpoint("B") // fresh incarnation, fresh port
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("B", protocol.Ack{Action: "two", From: "A"}); err != nil {
		t.Fatalf("send after re-bind: %v", err)
	}
	d, ok := b2.RecvTimeout(5 * time.Second)
	if !ok || d.Msg.(protocol.Ack).Action != "two" {
		t.Fatalf("message went to the dead incarnation: %+v %v", d, ok)
	}
}

func TestTCPSetPeerAcrossNetworks(t *testing.T) {
	// Two separate TCP networks model two OS processes; the address book
	// introduces them to each other.
	clk := vclock.NewReal()
	n1 := NewTCP(clk)
	n2 := NewTCP(clk)
	defer func() { _ = n1.Close() }()
	defer func() { _ = n2.Close() }()

	a, _ := n1.Endpoint("A")
	b, _ := n2.Endpoint("B")
	bAddr, ok := n2.ListenAddr("B")
	if !ok {
		t.Fatal("no listen addr for B")
	}
	n1.SetPeer("B", bAddr)

	if err := a.Send("B", protocol.Ack{Action: "cross", From: "A"}); err != nil {
		t.Fatal(err)
	}
	d, ok := b.RecvTimeout(5 * time.Second)
	if !ok || d.Msg.(protocol.Ack).Action != "cross" {
		t.Fatalf("cross-process delivery failed: %+v %v", d, ok)
	}
}

// TestTCPCoalescedBurst drives a burst through the write coalescer: far
// more frames than one coalesceBytes batch, sent back-to-back, must all
// arrive in order — batches flush on the byte bound mid-burst and on the
// wall-clock deadline for the tail.
func TestTCPCoalescedBurst(t *testing.T) {
	clk := vclock.NewReal()
	net := NewTCP(clk)
	defer func() { _ = net.Close() }()
	if !net.coalesce {
		t.Fatal("real-clock TCP should enable write coalescing")
	}
	a, _ := net.Endpoint("A")
	b, _ := net.Endpoint("B")

	const n = 5000 // ~50 bytes per frame: several 64KiB batches plus a tail
	for i := 0; i < n; i++ {
		if err := a.Send("B", protocol.Commit{Action: "burst#1", From: "A", Round: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		d, ok := b.RecvTimeout(5 * time.Second)
		if !ok {
			t.Fatalf("missing delivery %d of %d", i, n)
		}
		if got := d.Msg.(protocol.Commit).Round; got != i {
			t.Fatalf("out of order: got round %d at position %d", got, i)
		}
	}
}

// TestTCPCloseFlushesCoalescedTail pins the Close contract: frames sent
// immediately before Close — too few and too fresh for a size- or
// deadline-driven flush to be guaranteed — still reach the peer, because
// Close flushes every connection's pending batch.
func TestTCPCloseFlushesCoalescedTail(t *testing.T) {
	clk := vclock.NewReal()
	net := NewTCP(clk)
	defer func() { _ = net.Close() }()
	a, _ := net.Endpoint("A")
	b, _ := net.Endpoint("B")

	const n = 7
	for i := 0; i < n; i++ {
		if err := a.Send("B", protocol.Commit{Action: "tail#1", From: "A", Round: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		d, ok := b.RecvTimeout(5 * time.Second)
		if !ok {
			t.Fatalf("delivery %d of %d lost across Close", i, n)
		}
		if got := d.Msg.(protocol.Commit).Round; got != i {
			t.Fatalf("out of order: got round %d at position %d", got, i)
		}
	}
}
