// Package transport provides the message-passing substrate beneath the
// CA-action runtime, mirroring the paper's prototype architecture (Fig. 8):
// every participating thread owns an endpoint with a receive buffer, sends
// are asynchronous (remote procedure calls without out parameters), and the
// network guarantees reliable FIFO delivery per sender/receiver pair —
// exactly Assumptions 1 and 2 of §3.3.3.
//
// Two implementations are provided: Sim, an in-process network with a
// configurable latency model, fault injection and per-kind message counters
// (driven by any vclock.Clock, so whole experiments run in deterministic
// virtual time), and TCP, a gob-over-TCP network for genuinely distributed
// deployments.
package transport

import (
	"errors"
	"sync"
	"time"

	"caaction/internal/protocol"
)

// Delivery is one received message.
type Delivery struct {
	From string
	Msg  protocol.Message
	// Corrupt marks a message damaged in transit by fault injection; the
	// §3.4 extension treats such messages as a failure exception.
	Corrupt bool
}

// deliveryPool recycles the *Delivery boxes that travel through receive
// queues. Queues store `any`, so putting a Delivery by value would box it
// (one heap allocation per message); every transport instead enqueues a
// pooled pointer and the receive side copies the value out and returns the
// box. This is what makes a steady-state sim send allocation-free.
var deliveryPool = sync.Pool{New: func() any { return new(Delivery) }}

// borrowDelivery fills a pooled delivery box.
func borrowDelivery(from string, msg protocol.Message, corrupt bool) *Delivery {
	d := deliveryPool.Get().(*Delivery)
	d.From, d.Msg, d.Corrupt = from, msg, corrupt
	return d
}

// releaseDelivery clears and returns a delivery box to the pool. Callers
// must have copied the value out first and must not touch the box again.
func releaseDelivery(d *Delivery) {
	*d = Delivery{}
	deliveryPool.Put(d)
}

// unboxDelivery adapts a queue pop into the value-typed Endpoint.Recv
// contract, recycling the box.
func unboxDelivery(x any, ok bool) (Delivery, bool) {
	if !ok {
		return Delivery{}, false
	}
	dp := x.(*Delivery)
	d := *dp
	releaseDelivery(dp)
	return d, true
}

// Endpoint is one thread's attachment to the network.
type Endpoint interface {
	// Addr returns the endpoint's logical address.
	Addr() string

	// Send asynchronously transmits msg to the named endpoint. Delivery is
	// reliable and FIFO with respect to other sends to the same
	// destination, unless a fault injector says otherwise.
	Send(to string, msg protocol.Message) error

	// Recv blocks until a message arrives; ok is false once the endpoint
	// is closed and drained.
	Recv() (d Delivery, ok bool)

	// RecvTimeout is Recv with a deadline; ok is false on timeout or
	// close.
	RecvTimeout(timeout time.Duration) (d Delivery, ok bool)

	// Pending reports the number of buffered deliveries.
	Pending() int

	// Close detaches the endpoint.
	Close() error
}

// Network creates endpoints bound to logical addresses.
type Network interface {
	// Endpoint binds a new endpoint to addr.
	Endpoint(addr string) (Endpoint, error)

	// Close shuts the network down.
	Close() error
}

// Errors returned by transports.
var (
	ErrClosed        = errors.New("transport: closed")
	ErrDuplicateAddr = errors.New("transport: address already bound")
	ErrUnknownAddr   = errors.New("transport: unknown address")
)
