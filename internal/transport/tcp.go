package transport

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"caaction/internal/protocol"
	"caaction/internal/trace"
	"caaction/internal/vclock"
)

// TCP is a Network carrying protocol messages over TCP connections, for
// genuinely distributed deployments of the runtime (the paper's Ada 95
// partitions become processes). TCP's byte-stream ordering provides the
// per-pair FIFO guarantee of Assumption 2; reliability within a session
// provides Assumption 1.
//
// Messages travel in the hand-rolled length-prefixed binary codec
// (internal/protocol's AppendFrame/DecodeFrame) by default, with encode
// buffers pooled so a steady-state send performs no codec allocations. The
// legacy gob wire remains available behind SetGobWire for compatibility
// with peers that have not upgraded; both ends of a deployment must agree.
//
// On a real clock, outbound binary frames are write-coalesced per peer
// connection: a frame is appended to the connection's pending batch and the
// batch is flushed either once it reaches coalesceBytes or when the
// coalesceDelay flush deadline (a wall-clock timer armed when the batch
// opens) fires — so a burst of protocol messages to one peer costs one
// syscall instead of one per frame, at a bounded worst-case added latency
// of coalesceDelay. Frame order per connection is preserved (FIFO batches),
// write errors are sticky and surface on the next Send to that peer (which
// then re-dials), and Close flushes. The gob wire and virtual-clock
// deployments keep the write-through path: a wall-clock flush timer under a
// virtual clock could fire outside the deterministic schedule.
//
// Endpoints created in this process listen on loopback by default; peers in
// other processes are introduced with SetPeer. Construct with NewTCP.
//
// # Node mode
//
// ConfigureNode switches the network into cluster node mode: instead of one
// listener per logical endpoint, the whole process listens once and every
// frame carries its destination thread address on the wire (the protocol
// package's node-qualified frames). A thread address then resolves
// node-first: outbound sends ask the configured resolver which node
// (host:port) currently hosts the destination thread and share one
// connection per destination node across all local endpoints, and the
// node listener routes inbound frames to the local endpoint bound to the
// frame's destination address. Frames for locally-placed threads whose
// endpoint has not bound yet (a fast peer racing the local action start)
// are retained — bounded — and flushed when the endpoint binds; frames for
// unknown addresses are dropped. Sends between two locally-hosted threads
// bypass the wire and go straight to the destination receive queue.
type TCP struct {
	clock vclock.Clock

	// gobWire selects the legacy gob encoding instead of the binary codec.
	// It must be configured before endpoints are created.
	gobWire bool
	// coalesce enables per-connection write batching; set when the clock is
	// wall-clock-backed (vclock.Real's RealTime marker).
	coalesce bool

	// metrics, when non-nil, counts sends as "msg.<Kind>" plus "msg.total"
	// through interned counters (see SetMetrics); counters are resolved
	// lazily so a steady-state send costs two atomic adds.
	metrics  *trace.Metrics
	counters [protocol.NumKinds]atomic.Pointer[trace.Counter]
	total    atomic.Pointer[trace.Counter]

	// mu is read-mostly on the send hot path (every dial consults the book
	// to detect address re-binds), so readers take the shared lock.
	mu     sync.RWMutex
	listen string            // host:port listeners bind to; loopback default
	book   map[string]string // logical address -> host:port
	eps    map[string]*tcpEndpoint
	closed bool

	// Node-mode state (ConfigureNode).
	node        bool
	nodeLn      net.Listener
	local       func(addr string) bool           // thread placed on this node?
	resolver    func(addr string) (string, bool) // thread -> hosting node's host:port
	nodeConns   map[string]*tcpConn              // outbound, keyed by node host:port
	nodeIn      map[net.Conn]struct{}            // accepted inbound node conns
	retained    map[string][]Delivery            // local threads not yet bound
	retainedLen int

	// Cross-node fast path (see DESIGN.md "Cross-node fast path"). batch
	// gates all of it as one switch: batched node frames and credit grants
	// on the wire, the per-flush route cache, and sink (inline) receive
	// delivery — so SetPeerBatch(false) restores the legacy
	// frame-per-message path end to end. window is the per-peer credit
	// window in messages. Both follow the same write-before-traffic
	// discipline as node/gobWire.
	batch  bool
	window int

	// routes caches thread→placement lookups (local + hosting node) so a
	// burst of sends within one coalesce window consults the resolver once
	// per destination instead of once per message. Entries are keyed by
	// thread address (a bounded set: the deployment's placements) and expire
	// when routeGen moves — bumped on every batch flush and on connection
	// drops, so a restarted peer is re-resolved within one flush window.
	routes   sync.Map // thread addr -> *nodeRoute
	routeGen atomic.Uint64

	// Interned fast-path counters ("tcp.batch_frames", "tcp.credit_stalls",
	// "tcp.reinjected").
	batchFrames  atomic.Pointer[trace.Counter]
	creditStalls atomic.Pointer[trace.Counter]
	reinjected   atomic.Pointer[trace.Counter]
}

// nodeRoute is one cached placement lookup; valid while gen matches the
// network's routeGen.
type nodeRoute struct {
	local    bool
	hostport string
	gen      uint64
}

// ErrPeerStalled reports that a destination node's credit window and the
// bounded pending buffer behind it are both exhausted: the peer granted
// credits once but has stopped consuming, so accepting more traffic for it
// would buffer without bound. The connection stays healthy — sends resume
// as soon as the peer drains and grants again.
var ErrPeerStalled = fmt.Errorf("transport: peer stalled (credit window exhausted)")

var _ Network = (*TCP)(nil)

// maxFrame bounds one binary frame (1 MiB): a length prefix beyond it marks
// a corrupt or hostile stream and closes the connection instead of
// attempting the allocation.
const maxFrame = 1 << 20

// Write-coalescing bounds: a batch flushes as soon as it holds
// coalesceBytes, and a partial batch flushes when the coalesceDelay
// deadline fires. The delay bounds the latency a coalesced frame can gain;
// the byte bound caps batch memory and keeps a sustained stream flowing.
const (
	coalesceBytes = 64 << 10
	coalesceDelay = 100 * time.Microsecond
	// coalesceMaxRetain bounds the batch capacity a quiet connection keeps
	// pinned after a burst.
	coalesceMaxRetain = 256 << 10
)

// Cross-node fast-path bounds.
const (
	// defaultPeerWindow is the per-peer credit window in messages: the most
	// a sender may have on the wire past the peer's last grant. The pending
	// buffer behind an exhausted window holds the same again, so a stalled
	// peer pins at most 2×window encoded messages per connection.
	defaultPeerWindow = 4096
	// maxNodeBatch bounds one batched node frame on the wire: at most one
	// coalesce window of accumulated entries plus one maximum-size frame
	// appended just before the size-driven flush (plus headers).
	maxNodeBatch = maxFrame + coalesceBytes + 64
	// grantWriteTimeout bounds a credit-grant write on an inbound node
	// connection. A peer that never reads grants (an older sender) absorbs
	// them into its socket buffer; if even that backs up, granting stops for
	// that connection while reading continues — credits degrade to the
	// legacy unbounded path instead of stalling the read loop.
	grantWriteTimeout = time.Second
)

// frameBufPool recycles binary-codec encode/decode buffers.
var frameBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// NewTCP returns a TCP network speaking the binary wire codec. The clock is
// used only for receive queues and timeouts; it should be a real clock in
// production.
func NewTCP(clock vclock.Clock) *TCP {
	protocol.RegisterGob() // App payload fallbacks still ride gob
	_, real := clock.(interface{ RealTime() })
	return &TCP{
		clock:    clock,
		coalesce: real,
		batch:    true,
		window:   defaultPeerWindow,
		book:     make(map[string]string),
		eps:      make(map[string]*tcpEndpoint),
	}
}

// SetPeerBatch enables (the default) or disables the cross-node fast path:
// batched node frames and credit grants on the wire, the per-flush route
// cache, and sink (inline) receive delivery. Disabling restores the legacy
// frame-per-message path end to end — every node-qualified frame is
// encoded and written through on its own — the cluster benchmark's
// baseline mode, and an escape hatch against peers predating the batch
// wire. Per-endpoint (single-process) sockets keep write coalescing
// either way.
// Receivers always decode both formats, so processes may choose
// independently. Must be called before endpoints are created.
func (t *TCP) SetPeerBatch(on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.batch = on
}

// SetPeerWindow sets the per-peer credit window in messages (default 4096).
// The window is advertised to each dialling peer on the wire; a sender that
// exhausts it buffers up to one more window and then fails sends with
// ErrPeerStalled until the peer drains. Non-positive values are ignored.
// Must be called before endpoints are created.
func (t *TCP) SetPeerWindow(n int) {
	if n <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.window = n
}

// countBatchFrame records one flushed batched node frame.
func (t *TCP) countBatchFrame() {
	m := t.metrics
	if m == nil {
		return
	}
	c := t.batchFrames.Load()
	if c == nil {
		c = m.Counter("tcp.batch_frames")
		t.batchFrames.Store(c)
	}
	c.Add(1)
}

// countCreditStall records one send rejected by an exhausted credit window.
func (t *TCP) countCreditStall() {
	m := t.metrics
	if m == nil {
		return
	}
	c := t.creditStalls.Load()
	if c == nil {
		c = m.Counter("tcp.credit_stalls")
		t.creditStalls.Store(c)
	}
	c.Add(1)
}

// countReinject records one delivery handed back by a dying mux shard and
// re-retained for its address's next bind.
func (t *TCP) countReinject() {
	m := t.metrics
	if m == nil {
		return
	}
	c := t.reinjected.Load()
	if c == nil {
		c = m.Counter("tcp.reinjected")
		t.reinjected.Store(c)
	}
	c.Add(1)
}

// SetGobWire selects the legacy gob wire format instead of the binary
// codec, for wire compatibility with older peers. It must be called before
// any Endpoint is created, and every process of a deployment must agree.
// Incompatible with node mode, whose frames are binary-only.
func (t *TCP) SetGobWire(on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gobWire = on
}

// SetMetrics attaches a counter set recording per-kind send counts
// ("msg.<Kind>" and "msg.total"), matching the sim transport's counters so
// cluster deployments can check the paper's §3.3.3 message bounds across
// real processes. Call before traffic flows.
func (t *TCP) SetMetrics(m *trace.Metrics) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.metrics = m
}

// count records one sent message of the given dense kind index through the
// interned counters; a nil metrics set costs one predictable branch.
func (t *TCP) count(kind int) {
	m := t.metrics
	if m == nil {
		return
	}
	if kind >= 0 && kind < protocol.NumKinds {
		c := t.counters[kind].Load()
		if c == nil {
			c = m.Counter(protocol.MetricNames[kind])
			t.counters[kind].Store(c)
		}
		c.Add(1)
	}
	tc := t.total.Load()
	if tc == nil {
		tc = m.Counter("msg.total")
		t.total.Store(tc)
	}
	tc.Add(1)
}

// nodeRetainCap bounds the deliveries a node retains for locally-placed
// threads whose endpoints have not bound yet (a fast peer's frame racing the
// local action start). Once full, further early frames are dropped — the
// same bounded-buffer stance as the Mux's retained set.
const nodeRetainCap = 4096

// ConfigureNode switches the network into cluster node mode (see the type
// docs): one shared listener for the whole process, node-qualified frames,
// resolver-based thread→node routing, and bounded retention for early
// frames to locally-placed threads. local reports whether a thread address
// is placed on this node; resolve maps a thread address to the host:port of
// the node currently hosting it (consulted per send, so a peer that
// restarts on a new port is re-dialled as soon as the resolver learns the
// new address). Must be called before any Endpoint is created; returns the
// bound listen address for exchange with peers.
func (t *TCP) ConfigureNode(listen string, local func(string) bool, resolve func(string) (string, bool)) (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return "", ErrClosed
	}
	if t.node {
		return "", fmt.Errorf("transport: node mode already configured")
	}
	if t.gobWire {
		return "", fmt.Errorf("transport: node mode requires the binary wire codec")
	}
	if len(t.eps) > 0 {
		return "", fmt.Errorf("transport: node mode must be configured before endpoints are created")
	}
	if local == nil || resolve == nil {
		return "", fmt.Errorf("transport: node mode requires local and resolve functions")
	}
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return "", fmt.Errorf("transport: node listen: %w", err)
	}
	t.node = true
	t.nodeLn = ln
	t.local = local
	t.resolver = resolve
	t.nodeConns = make(map[string]*tcpConn)
	t.nodeIn = make(map[net.Conn]struct{})
	t.retained = make(map[string][]Delivery)
	go t.nodeAcceptLoop(ln)
	return ln.Addr().String(), nil
}

// NodeAddr reports the node listener's bound host:port ("" outside node
// mode), for announcement to peers.
func (t *TCP) NodeAddr() string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.nodeLn == nil {
		return ""
	}
	return t.nodeLn.Addr().String()
}

// SetListenAddr changes the host:port future endpoints listen on (e.g.
// "0.0.0.0:0" to accept non-loopback peers). The default is "127.0.0.1:0".
func (t *TCP) SetListenAddr(hostport string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.listen = hostport
}

// SetPeer records the host:port of a logical address served by another
// process.
func (t *TCP) SetPeer(addr, hostport string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.book[addr] = hostport
}

// ListenAddr reports the host:port a local endpoint is listening on, for
// exchange with other processes.
func (t *TCP) ListenAddr(addr string) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	hp, ok := t.book[addr]
	return hp, ok
}

// Endpoint implements Network. In node mode the endpoint shares the node
// listener (no per-endpoint socket) and any frames retained for its address
// are flushed into its receive queue before the bind is visible.
func (t *TCP) Endpoint(addr string) (Endpoint, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if _, ok := t.eps[addr]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateAddr, addr)
	}
	if t.node {
		ep := &tcpEndpoint{
			net:   t,
			addr:  addr,
			queue: t.clock.NewQueue(),
		}
		t.eps[addr] = ep
		if pend := t.retained[addr]; len(pend) > 0 {
			delete(t.retained, addr)
			t.retainedLen -= len(pend)
			for _, d := range pend {
				ep.queue.Put(borrowDelivery(d.From, d.Msg, d.Corrupt))
			}
		}
		return ep, nil
	}
	listen := t.listen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	ep := &tcpEndpoint{
		net:   t,
		addr:  addr,
		ln:    ln,
		queue: t.clock.NewQueue(),
		conns: make(map[string]*tcpConn),
	}
	t.eps[addr] = ep
	t.book[addr] = ln.Addr().String()
	go ep.acceptLoop()
	return ep, nil
}

// Close implements Network.
func (t *TCP) Close() error {
	t.mu.Lock()
	eps := make([]*tcpEndpoint, 0, len(t.eps))
	for _, ep := range t.eps {
		eps = append(eps, ep)
	}
	nodeLn := t.nodeLn
	conns := make([]*tcpConn, 0, len(t.nodeConns))
	for _, c := range t.nodeConns {
		conns = append(conns, c)
	}
	t.nodeConns = nil
	inbound := make([]net.Conn, 0, len(t.nodeIn))
	for conn := range t.nodeIn {
		inbound = append(inbound, conn)
	}
	t.nodeIn = nil
	t.closed = true
	t.mu.Unlock()
	if nodeLn != nil {
		_ = nodeLn.Close()
	}
	for _, c := range conns {
		closeConn(c)
	}
	for _, conn := range inbound {
		_ = conn.Close()
	}
	for _, ep := range eps {
		_ = ep.Close()
	}
	return nil
}

// closeConn flushes any coalesced tail, stops the flush timer and closes the
// socket.
func closeConn(c *tcpConn) {
	c.mu.Lock()
	_ = c.flushLocked()
	if c.timer != nil {
		c.timer.Stop()
	}
	c.mu.Unlock()
	_ = c.conn.Close()
}

// dropConn abandons a broken or stale connection: the flush timer is stopped
// (nothing may fire on a dead socket after the owner forgot it) and the
// socket closed, with no flush attempt — the stream is already poisoned or
// belongs to a stale incarnation. Every teardown path must stop the timer:
// closeConn for healthy closes, dropConn here for the re-dial paths, or a
// batch-open timer on a forgotten connection outlives it.
func dropConn(c *tcpConn) {
	c.mu.Lock()
	if c.timer != nil {
		c.timer.Stop()
	}
	c.mu.Unlock()
	_ = c.conn.Close()
}

// wire is the gob wire's on-the-wire frame (legacy format).
type wire struct {
	From string
	Msg  protocol.Message
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder // gob wire only; nil on the binary codec
	// hostport is the physical address this connection was dialled to; a
	// cached connection is only reused while the logical address still
	// resolves there (re-binding an address — e.g. the mux tearing a thread
	// address down and a later instance reopening it on a fresh port —
	// would otherwise leave peers sending into the dead incarnation).
	hostport string
	// owner backs the fast-path hooks a flush needs (batch-frame counting,
	// route-cache expiry); nil on per-endpoint (non-node) connections.
	owner *TCP

	// Write-coalescing state (binary codec on a real clock only; see the
	// TCP type docs). wbuf accumulates encoded frames; timer is the reused
	// flush-deadline timer, armed whenever a batch opens; werr is the
	// sticky error of a failed (possibly timer-driven) flush, surfaced on
	// the next Send so the caller drops and re-dials the connection.
	// batching marks wbuf as one open batched node frame (outer length
	// placeholder + batch header + entries) rather than a run of
	// self-prefixed frames; the flush backfills the outer length.
	wbuf     []byte
	timer    *time.Timer
	werr     error
	batching bool

	// Credit flow control (node batch path). creditLive latches at the
	// peer's first grant — a peer that never grants (an older binary, or
	// batching disabled there) keeps the legacy unlimited behaviour.
	// credits is the remaining grant balance; once exhausted, encoded
	// entries accumulate in pend (bounded to pendMax messages, FIFO ahead
	// of new sends) until the next grant splices them into the batch.
	creditLive bool
	credits    int
	pend       []byte
	pendCnt    int
	pendMax    int
}

// flushLocked writes the pending batch in one syscall, closing and
// backfilling the open batched frame first when one is open. c.mu must be
// held.
func (c *tcpConn) flushLocked() error {
	if c.werr != nil {
		return c.werr
	}
	if len(c.wbuf) == 0 {
		return nil
	}
	if c.batching {
		binary.BigEndian.PutUint32(c.wbuf[:4], uint32(len(c.wbuf)-4))
		c.batching = false
		if c.owner != nil {
			c.owner.countBatchFrame()
			// One batch flushed: expire the route cache so the next batch
			// re-resolves its destinations (the "once per flush" contract).
			c.owner.routeGen.Add(1)
		}
	}
	_, err := c.conn.Write(c.wbuf)
	if cap(c.wbuf) > coalesceMaxRetain {
		c.wbuf = nil
	} else {
		c.wbuf = c.wbuf[:0]
	}
	c.werr = err
	return err
}

// armTimerLocked arms (or re-arms) the flush-deadline timer. The timer is
// created once per connection and reused; a size-driven flush may let it
// fire on an empty (or younger) batch, which is a harmless early flush.
// c.mu must be held.
func (c *tcpConn) armTimerLocked() {
	if c.timer == nil {
		c.timer = time.AfterFunc(coalesceDelay, func() {
			c.mu.Lock()
			_ = c.flushLocked() // failure is sticky; the next Send re-dials
			c.mu.Unlock()
		})
	} else {
		c.timer.Reset(coalesceDelay)
	}
}

// nodeAcceptLoop accepts peer-node connections on the shared node listener.
// Accepted connections are tracked in nodeIn so Close can sever inbound
// streams too — peers then observe a node shutdown as a broken connection
// rather than a silent black hole.
func (t *TCP) nodeAcceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed || t.nodeIn == nil {
			t.mu.Unlock()
			_ = conn.Close()
			continue
		}
		t.nodeIn[conn] = struct{}{}
		t.mu.Unlock()
		go t.nodeReadLoop(conn)
	}
}

// nodeReadLoop decodes node-qualified frames off one inbound connection and
// routes each to the local endpoint bound to its destination address.
// Batched frames (the 0x00 control escape) and legacy single frames are
// both accepted regardless of the local batch knob, so mixed deployments
// interoperate. With batching enabled, the loop also runs the receiver half
// of the credit protocol: it advertises the window up front and grants
// again each time half a window has been consumed, writing grants back on
// the inbound connection (the only writer on it, so no lock is needed).
func (t *TCP) nodeReadLoop(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		t.mu.Lock()
		delete(t.nodeIn, conn)
		t.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	var hdr [4]byte
	bp := frameBufPool.Get().(*[]byte)
	defer frameBufPool.Put(bp)
	t.mu.RLock()
	granting := t.batch
	window := t.window
	t.mu.RUnlock()
	if granting {
		granting = sendGrant(conn, window)
	}
	threshold := window / 2
	if threshold < 1 {
		threshold = 1
	}
	consumed := 0
	deliver := func(to, from string, msg protocol.Message) error {
		t.deliverNode(to, from, msg)
		consumed++
		return nil
	}
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > maxNodeBatch {
			return // corrupt or hostile stream
		}
		if cap(*bp) < int(n) {
			*bp = make([]byte, 0, n)
		}
		buf := (*bp)[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			return
		}
		if protocol.IsNodeControl(buf) {
			if protocol.IsNodeBatch(buf) {
				if err := protocol.DecodeNodeBatch(buf, deliver); err != nil {
					return // a framing error poisons the stream
				}
			}
			// Other control kinds are ignored: data connections only carry
			// batches, and dropping unknowns keeps the wire extensible.
		} else {
			to, from, msg, err := protocol.DecodeNodeFrame(buf)
			if err != nil {
				return // a framing error poisons the stream; drop the connection
			}
			_ = deliver(to, from, msg)
		}
		if granting && consumed >= threshold {
			granting = sendGrant(conn, consumed)
			consumed = 0
		}
	}
}

// sendGrant writes one credit grant on an inbound node connection under a
// short write deadline; false means granting should stop for this
// connection (the peer is not draining its grant stream) while reading
// continues.
func sendGrant(conn net.Conn, grant int) bool {
	var scratch [24]byte
	buf := protocol.AppendNodeCredit(scratch[:4], grant)
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	_ = conn.SetWriteDeadline(time.Now().Add(grantWriteTimeout))
	_, err := conn.Write(buf)
	_ = conn.SetWriteDeadline(time.Time{})
	return err == nil
}

// creditReadLoop runs on the dialling side of an outbound node connection,
// consuming the grant stream the accepting peer writes back. It exits when
// the connection closes.
func (t *TCP) creditReadLoop(c *tcpConn) {
	br := bufio.NewReader(c.conn)
	var hdr [4]byte
	var buf [64]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > uint32(len(buf)) {
			return // grants are tiny; anything else is corrupt
		}
		if _, err := io.ReadFull(br, buf[:n]); err != nil {
			return
		}
		grant, err := protocol.DecodeNodeCredit(buf[:n])
		if err != nil {
			return
		}
		t.handleGrant(c, grant)
	}
}

// handleGrant credits one grant to an outbound connection and splices as
// many pending entries as the new balance allows into the open batch,
// flushing at the byte bound so a large backlog drains in wire-legal
// frames.
func (t *TCP) handleGrant(c *tcpConn, grant int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.creditLive {
		c.creditLive = true
		// The first grant is the peer's window advertisement; size the
		// pending buffer to one window, so a stalled peer pins at most
		// 2×window messages here (window on the wire + window pending).
		if grant > 0 {
			c.pendMax = grant
		}
	}
	c.credits += grant
	if c.pendCnt == 0 || c.werr != nil {
		return
	}
	off, moved := 0, 0
	for moved < c.pendCnt && c.credits > 0 {
		e := nodeBatchEntrySize + int(binary.BigEndian.Uint32(c.pend[off:]))
		if len(c.wbuf) == 0 {
			c.wbuf = protocol.AppendNodeBatchHeader(append(c.wbuf, 0, 0, 0, 0))
			c.batching = true
		}
		c.wbuf = append(c.wbuf, c.pend[off:off+e]...)
		off += e
		moved++
		c.credits--
		if len(c.wbuf) >= coalesceBytes {
			if c.flushLocked() != nil {
				break // sticky; surfaced on the next send
			}
		}
	}
	c.pendCnt -= moved
	rest := copy(c.pend, c.pend[off:])
	c.pend = c.pend[:rest]
	if c.pendCnt == 0 && cap(c.pend) > coalesceMaxRetain {
		c.pend = nil
	}
	if len(c.wbuf) > 0 && c.werr == nil {
		c.armTimerLocked()
	}
}

// nodeBatchEntrySize is the fixed per-entry length-slot size of the batch
// wire format (see protocol.AppendNodeBatchEntry).
const nodeBatchEntrySize = 4

// deliverNode hands one frame to the local endpoint bound to the destination
// address, retaining it (bounded) when the destination is a locally-placed
// thread that has not bound yet. Frames for addresses this node does not
// host are dropped — a stale peer routing to the wrong node must not crash
// the right one. Reports whether the frame was delivered or retained.
func (t *TCP) deliverNode(to, from string, msg protocol.Message) bool {
	t.mu.RLock()
	ep := t.eps[to]
	t.mu.RUnlock()
	if ep != nil {
		ep.deliver(from, msg)
		return true
	}
	t.mu.Lock()
	if ep = t.eps[to]; ep != nil {
		// The endpoint bound between the fast-path check and this lock; its
		// retained frames (if any) were flushed under the same lock, so
		// delivering now preserves arrival order.
		t.mu.Unlock()
		ep.deliver(from, msg)
		return true
	}
	defer t.mu.Unlock()
	if t.closed || t.local == nil || !t.local(to) || t.retainedLen >= nodeRetainCap {
		return false
	}
	t.retained[to] = append(t.retained[to], Delivery{From: from, Msg: msg})
	t.retainedLen++
	return true
}

// nodeSend routes one outbound message in node mode: straight into the
// destination queue for locally-hosted threads, otherwise over the shared
// per-node connection of whichever node the resolver says currently hosts
// the destination thread.
func (t *TCP) nodeSend(from, to string, msg protocol.Message) error {
	r, err := t.routeFor(to)
	if err != nil {
		return err
	}
	kind := protocol.KindIndexOf(msg)
	if r.local {
		if !t.deliverNode(to, from, msg) {
			return fmt.Errorf("transport: send to %q: local retention full", to)
		}
		t.count(kind)
		return nil
	}
	c, err := t.dialNode(r.hostport)
	if err != nil {
		t.routes.Delete(to) // the cached placement may be the stale part
		return fmt.Errorf("transport: send to %q: %w", to, err)
	}
	err, broken := t.write(c, to, from, msg)
	if err != nil {
		t.routes.Delete(to)
		if broken {
			t.mu.Lock()
			if t.nodeConns[r.hostport] == c {
				delete(t.nodeConns, r.hostport)
			}
			t.mu.Unlock()
			dropConn(c)
			// A dropped connection invalidates every destination routed
			// through it; the next sends re-resolve (and re-dial wherever
			// the resolver now points), which is how a restarted peer heals.
			t.routeGen.Add(1)
		}
		return fmt.Errorf("transport: send to %q via %s: %w", to, r.hostport, err)
	}
	t.count(kind)
	return nil
}

// routeFor resolves a destination thread's placement — local, or the
// hosting node's host:port — consulting the per-flush route cache first on
// the fast path. A cache entry is valid while routeGen stands still, i.e.
// within the current coalesce window of every peer connection: a burst of
// sends to one destination inside a 100µs flush window resolves once. A
// placement change (thread migration, peer restart) is picked up at the
// next flush or connection drop, whichever comes first.
func (t *TCP) routeFor(to string) (nodeRoute, error) {
	cache := t.batch && t.coalesce
	var gen uint64
	if cache {
		gen = t.routeGen.Load()
		if v, ok := t.routes.Load(to); ok {
			if r := v.(*nodeRoute); r.gen == gen {
				return *r, nil
			}
		}
	}
	t.mu.RLock()
	closed := t.closed
	local := t.local(to)
	t.mu.RUnlock()
	if closed {
		return nodeRoute{}, ErrClosed
	}
	r := nodeRoute{local: local, gen: gen}
	if !local {
		hostport, ok := t.resolver(to)
		if !ok {
			// Not cached: an unplaced thread must heal the moment the
			// resolver learns it, not a flush later.
			return nodeRoute{}, fmt.Errorf("%w: %q (no live node hosts it)", ErrUnknownAddr, to)
		}
		r.hostport = hostport
	}
	if cache {
		t.routes.Store(to, &r)
	}
	return r, nil
}

// dialNode returns the shared connection to a peer node, dialling on first
// use. Connections are keyed by the node's host:port, so a peer that
// restarts on a new port naturally gets a fresh connection as soon as the
// resolver reports the new address (the stale one is dropped by the next
// failed write).
func (t *TCP) dialNode(hostport string) (*tcpConn, error) {
	t.mu.RLock()
	if t.closed {
		t.mu.RUnlock()
		return nil, ErrClosed
	}
	c := t.nodeConns[hostport]
	t.mu.RUnlock()
	if c != nil {
		return c, nil
	}
	conn, err := net.DialTimeout("tcp", hostport, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("transport: dial node %s: %w", hostport, err)
	}
	c = &tcpConn{conn: conn, hostport: hostport, owner: t}
	t.mu.Lock()
	batch := t.batch
	c.pendMax = t.window
	if t.closed {
		t.mu.Unlock()
		_ = conn.Close()
		return nil, ErrClosed
	}
	if prev, ok := t.nodeConns[hostport]; ok {
		t.mu.Unlock()
		_ = conn.Close() // lost the race; reuse the established one
		return prev, nil
	}
	t.nodeConns[hostport] = c
	t.mu.Unlock()
	if batch && t.coalesce {
		// The accepting side writes credit grants back on this connection;
		// consume them. The loop exits when the connection closes.
		go t.creditReadLoop(c)
	}
	return c, nil
}

type tcpEndpoint struct {
	net   *TCP
	addr  string
	ln    net.Listener // nil in node mode (the node listener is shared)
	queue *vclock.Queue

	// sink, when installed (see SetSink), receives inbound deliveries
	// synchronously on the read-loop goroutine — the mux's inline lane —
	// instead of through the queue and its pump goroutine. dmu serialises
	// installation against in-flight deliveries so nothing can overtake a
	// delivery queued just before the switch.
	sink atomic.Pointer[func(Delivery)]
	dmu  sync.Mutex

	mu     sync.Mutex
	conns  map[string]*tcpConn // outbound, keyed by destination logical addr
	closed bool
}

var _ Endpoint = (*tcpEndpoint)(nil)

func (e *tcpEndpoint) Addr() string { return e.addr }

// MarkDaemon marks receives on this endpoint as virtual-clock daemon waits;
// see vclock.Queue.SetDaemon.
func (e *tcpEndpoint) MarkDaemon() { e.queue.SetDaemon() }

// SetSink installs the synchronous delivery sink the Mux probes for (see
// Mux.Open): with one installed, read loops hand deliveries straight to the
// mux dispatch — and from there into the inline lane — skipping the shared
// queue and the pump wakeup. Deliveries that arrived before the switch are
// drained through the sink first, in order, under the same lock that gates
// new deliveries into the queue, so the per-pair FIFO guarantee holds
// across the installation: a delivery can only take the sink shortcut once
// nothing older is queued ahead of it. Gated on the cross-node fast-path
// knob; a nil fn removes the sink.
func (e *tcpEndpoint) SetSink(fn func(Delivery)) {
	e.net.mu.RLock()
	on := e.net.batch
	e.net.mu.RUnlock()
	if !on {
		return
	}
	if fn == nil {
		e.sink.Store(nil)
		return
	}
	for {
		e.dmu.Lock()
		x, ok := e.queue.TryGet()
		if !ok {
			// Queue verified empty with deliverers excluded: install. A
			// deliverer blocked on dmu re-checks the sink and uses it.
			e.sink.Store(&fn)
			e.dmu.Unlock()
			return
		}
		e.dmu.Unlock()
		if d, ok := unboxDelivery(x, ok); ok {
			fn(d) // outside dmu: the dispatch chain may deliver elsewhere
		}
	}
}

// deliver routes one inbound delivery: through the sink when installed,
// into the receive queue otherwise. The double-checked dmu path closes the
// installation race (see SetSink).
func (e *tcpEndpoint) deliver(from string, msg protocol.Message) {
	if sp := e.sink.Load(); sp != nil {
		(*sp)(Delivery{From: from, Msg: msg})
		return
	}
	e.dmu.Lock()
	if sp := e.sink.Load(); sp != nil {
		e.dmu.Unlock()
		(*sp)(Delivery{From: from, Msg: msg})
		return
	}
	box := borrowDelivery(from, msg, false)
	ok := e.queue.PutOpen(box)
	e.dmu.Unlock()
	if !ok {
		// The endpoint closed under a deliverer still holding a stale
		// reference; a closed queue drops new arrivals, so hand the frame
		// back to the retention path instead of losing it.
		releaseDelivery(box)
		e.Reinject(Delivery{From: from, Msg: msg})
	}
}

// Reinject hands a delivery back to the transport after its original
// destination endpoint closed — the mux calls it (via interface probe) when
// a shard dies with early frames still retained for instances that never
// opened, and deliver falls back to it when a stale reference races Close.
// In node mode the frame is re-retained for the address's next bind (or
// delivered straight to an already-bound successor); outside node mode
// there is no retention and the frame is dropped, the pre-existing
// semantics for traffic to a closed endpoint. Reports whether the frame
// survived.
//
// Lock order: callers may hold a mux shard lock; Reinject takes the
// network lock under it. The reverse order (network lock, then shard lock)
// must never occur — deliverNode releases t.mu before ep.deliver for this
// reason.
func (e *tcpEndpoint) Reinject(d Delivery) bool {
	t := e.net
	if !t.node {
		return false
	}
	t.mu.Lock()
	if ep := t.eps[e.addr]; ep != nil && ep != e {
		// A successor already bound (it replayed the retained set before
		// becoming visible); deliver straight to it.
		t.mu.Unlock()
		ep.deliver(d.From, d.Msg)
		return true
	}
	defer t.mu.Unlock()
	if t.closed || t.local == nil || !t.local(e.addr) || t.retainedLen >= nodeRetainCap {
		return false
	}
	t.retained[e.addr] = append(t.retained[e.addr], Delivery{From: d.From, Msg: d.Msg, Corrupt: d.Corrupt})
	t.retainedLen++
	t.countReinject()
	return true
}

func (e *tcpEndpoint) acceptLoop() {
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go e.readLoop(conn)
	}
}

func (e *tcpEndpoint) readLoop(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	e.net.mu.RLock()
	gobWire := e.net.gobWire
	e.net.mu.RUnlock()
	if gobWire {
		dec := gob.NewDecoder(conn)
		for {
			var w wire
			if err := dec.Decode(&w); err != nil {
				return
			}
			e.queue.Put(borrowDelivery(w.From, w.Msg, false))
		}
	}
	br := bufio.NewReader(conn)
	var hdr [4]byte
	bp := frameBufPool.Get().(*[]byte)
	defer frameBufPool.Put(bp)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > maxFrame {
			return // corrupt or hostile stream
		}
		if cap(*bp) < int(n) {
			*bp = make([]byte, 0, n)
		}
		buf := (*bp)[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			return
		}
		from, msg, err := protocol.DecodeFrame(buf)
		if err != nil {
			return // a framing error poisons the stream; drop the connection
		}
		e.deliver(from, msg)
	}
}

func (e *tcpEndpoint) Send(to string, msg protocol.Message) error {
	if e.net.node {
		return e.net.nodeSend(e.addr, to, msg)
	}
	c, err := e.dial(to)
	if err != nil {
		return err
	}
	err, broken := e.net.write(c, "", e.addr, msg)
	if err != nil {
		if broken {
			// Connection broke mid-stream: forget it so a later send
			// re-dials. Pre-I/O codec errors (a foreign message type, an
			// oversize frame) leave the healthy connection cached — nothing
			// reached the wire, so the stream is not poisoned.
			e.mu.Lock()
			if e.conns[to] == c {
				delete(e.conns, to)
			}
			e.mu.Unlock()
			dropConn(c)
		}
		return fmt.Errorf("transport: send to %q: %w", to, err)
	}
	e.net.count(protocol.KindIndexOf(msg))
	return nil
}

// appendWireFrame encodes one frame: plain when nodeTo is empty (the
// destination is implied by the per-endpoint socket), node-qualified
// otherwise.
func appendWireFrame(buf []byte, nodeTo, from string, msg protocol.Message) ([]byte, error) {
	if nodeTo == "" {
		return protocol.AppendFrame(buf, from, msg)
	}
	return protocol.AppendNodeFrame(buf, nodeTo, from, msg)
}

// write encodes and transmits one message on an established connection.
// broken reports whether the error (if any) poisoned the connection's byte
// stream, requiring a re-dial. On the coalescing path a nil return means
// the frame was accepted into the batch; a transmission failure (including
// one from a deadline-driven flush) surfaces as the sticky connection error
// on a later write.
func (t *TCP) write(c *tcpConn, nodeTo, from string, msg protocol.Message) (err error, broken bool) {
	if c.enc != nil { // gob wire: the encoder writes directly to the stream
		c.mu.Lock()
		defer c.mu.Unlock()
		err := c.enc.Encode(wire{From: from, Msg: msg})
		return err, err != nil
	}
	if t.coalesce {
		if nodeTo == "" {
			return t.writeCoalesced(c, nodeTo, from, msg)
		}
		if t.batch {
			return t.writeNodeBatched(c, nodeTo, from, msg)
		}
		// Fast path off: node traffic goes write-through below, one frame
		// per write — the pre-batching wire the cluster benchmark's
		// unbatched baseline measures. Byte coalescing stays on for
		// per-endpoint sockets, whose single-process anchors predate the
		// node wire.
	}
	bp := frameBufPool.Get().(*[]byte)
	defer frameBufPool.Put(bp)
	buf := append((*bp)[:0], 0, 0, 0, 0) // length prefix placeholder
	buf, err = appendWireFrame(buf, nodeTo, from, msg)
	if err != nil {
		return err, false
	}
	if len(buf)-4 > maxFrame {
		return fmt.Errorf("%w: frame of %d bytes exceeds the %d-byte bound", protocol.ErrCodec, len(buf)-4, maxFrame), false
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	*bp = buf[:0] // keep any growth for the next send
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err = c.conn.Write(buf)
	return err, err != nil
}

// writeCoalesced appends one encoded frame to the connection's batch,
// flushing on the byte bound and otherwise arming the flush-deadline timer
// when the batch opens. Codec errors leave the batch (and the stream)
// intact: nothing of the failed frame remains buffered.
func (t *TCP) writeCoalesced(c *tcpConn, nodeTo, from string, msg protocol.Message) (err error, broken bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.werr != nil {
		return c.werr, true // a previous (possibly timer-driven) flush failed
	}
	n0 := len(c.wbuf)
	buf := append(c.wbuf, 0, 0, 0, 0) // length prefix placeholder
	buf, err = appendWireFrame(buf, nodeTo, from, msg)
	if err != nil {
		c.wbuf = buf[:n0] // keep any growth; drop the partial frame
		return err, false
	}
	if len(buf)-n0-4 > maxFrame {
		c.wbuf = buf[:n0]
		return fmt.Errorf("%w: frame of %d bytes exceeds the %d-byte bound", protocol.ErrCodec, len(buf)-n0-4, maxFrame), false
	}
	binary.BigEndian.PutUint32(buf[n0:n0+4], uint32(len(buf)-n0-4))
	c.wbuf = buf
	if len(c.wbuf) >= coalesceBytes {
		err := c.flushLocked()
		return err, err != nil
	}
	if n0 == 0 {
		// The batch just opened: arm the flush deadline.
		c.armTimerLocked()
	}
	return nil, false
}

// writeNodeBatched appends one node-qualified message to the connection's
// open batched frame (opening one as needed), subject to the peer's credit
// window: out of credits, the encoded entry is parked in the bounded
// pending buffer instead, and with that full the send fails with
// ErrPeerStalled — the typed bounded-backpressure surface for a stalled
// peer. Codec errors leave the batch and the stream intact.
func (t *TCP) writeNodeBatched(c *tcpConn, nodeTo, from string, msg protocol.Message) (err error, broken bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.werr != nil {
		return c.werr, true // a previous (possibly timer-driven) flush failed
	}
	if c.pendCnt > 0 || (c.creditLive && c.credits <= 0) {
		// Credit-limited: park the encoded entry behind everything already
		// pending (FIFO), bounded to one window of messages.
		if c.pendCnt >= c.pendMax {
			t.countCreditStall()
			return ErrPeerStalled, false
		}
		p0 := len(c.pend)
		c.pend, err = protocol.AppendNodeBatchEntry(c.pend, nodeTo, from, msg)
		if err != nil {
			return err, false
		}
		if sz := len(c.pend) - p0 - nodeBatchEntrySize; sz > maxFrame {
			c.pend = c.pend[:p0]
			return fmt.Errorf("%w: frame of %d bytes exceeds the %d-byte bound", protocol.ErrCodec, sz, maxFrame), false
		}
		c.pendCnt++
		return nil, false
	}
	opened := len(c.wbuf) == 0
	if opened {
		c.wbuf = protocol.AppendNodeBatchHeader(append(c.wbuf, 0, 0, 0, 0))
		c.batching = true
	}
	n0 := len(c.wbuf)
	c.wbuf, err = protocol.AppendNodeBatchEntry(c.wbuf, nodeTo, from, msg)
	if err != nil {
		if opened {
			c.wbuf = c.wbuf[:0] // nothing else buffered; close the empty batch
			c.batching = false
		}
		return err, false
	}
	if len(c.wbuf)-n0-nodeBatchEntrySize > maxFrame {
		sz := len(c.wbuf) - n0 - nodeBatchEntrySize
		c.wbuf = c.wbuf[:n0]
		if opened {
			c.wbuf = c.wbuf[:0]
			c.batching = false
		}
		return fmt.Errorf("%w: frame of %d bytes exceeds the %d-byte bound", protocol.ErrCodec, sz, maxFrame), false
	}
	if c.creditLive {
		c.credits--
	}
	if len(c.wbuf) >= coalesceBytes {
		err := c.flushLocked()
		return err, err != nil
	}
	if opened {
		c.armTimerLocked()
	}
	return nil, false
}

func (e *tcpEndpoint) dial(to string) (*tcpConn, error) {
	e.net.mu.RLock()
	hostport, ok := e.net.book[to]
	gobWire := e.net.gobWire
	e.net.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAddr, to)
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := e.conns[to]; ok {
		if c.hostport == hostport {
			e.mu.Unlock()
			return c, nil
		}
		// The logical address re-bound to a new physical address since this
		// connection was dialled: drop the stale connection and re-dial.
		delete(e.conns, to)
		dropConn(c)
	}
	e.mu.Unlock()

	conn, err := net.DialTimeout("tcp", hostport, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %q: %w", to, err)
	}
	c := &tcpConn{conn: conn, hostport: hostport}
	if gobWire {
		c.enc = gob.NewEncoder(conn)
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if prev, ok := e.conns[to]; ok && prev.hostport == hostport {
		_ = conn.Close() // lost the race; reuse the established one
		return prev, nil
	} else if ok {
		dropConn(prev) // racing dial to a stale incarnation
	}
	e.conns[to] = c
	return c, nil
}

func (e *tcpEndpoint) Recv() (Delivery, bool) {
	return unboxDelivery(e.queue.Get())
}

func (e *tcpEndpoint) RecvTimeout(timeout time.Duration) (Delivery, bool) {
	return unboxDelivery(e.queue.GetTimeout(timeout))
}

func (e *tcpEndpoint) Pending() int { return e.queue.Len() }

func (e *tcpEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := make([]*tcpConn, 0, len(e.conns))
	for _, c := range e.conns {
		conns = append(conns, c)
	}
	e.mu.Unlock()

	var err error
	if e.ln != nil { // node-mode endpoints share the node listener
		err = e.ln.Close()
	}
	for _, c := range conns {
		// Flush any coalesced tail so frames sent just before Close still
		// reach the peer, then stop the flush timer and the connection.
		closeConn(c)
	}
	e.queue.Close()

	e.net.mu.Lock()
	if e.net.eps[e.addr] == e {
		delete(e.net.eps, e.addr)
	}
	e.net.mu.Unlock()
	return err
}
