package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"caaction/internal/protocol"
	"caaction/internal/vclock"
)

// TCP is a Network carrying gob-encoded messages over TCP connections, for
// genuinely distributed deployments of the runtime (the paper's Ada 95
// partitions become processes). TCP's byte-stream ordering provides the
// per-pair FIFO guarantee of Assumption 2; reliability within a session
// provides Assumption 1.
//
// Endpoints created in this process listen on loopback by default; peers in
// other processes are introduced with SetPeer. Construct with NewTCP.
type TCP struct {
	clock vclock.Clock

	// mu is read-mostly on the send hot path (every dial consults the book
	// to detect address re-binds), so readers take the shared lock.
	mu     sync.RWMutex
	listen string            // host:port listeners bind to; loopback default
	book   map[string]string // logical address -> host:port
	eps    map[string]*tcpEndpoint
	closed bool
}

var _ Network = (*TCP)(nil)

// NewTCP returns a TCP network. The clock is used only for receive queues
// and timeouts; it should be a real clock in production.
func NewTCP(clock vclock.Clock) *TCP {
	protocol.RegisterGob()
	return &TCP{
		clock: clock,
		book:  make(map[string]string),
		eps:   make(map[string]*tcpEndpoint),
	}
}

// SetListenAddr changes the host:port future endpoints listen on (e.g.
// "0.0.0.0:0" to accept non-loopback peers). The default is "127.0.0.1:0".
func (t *TCP) SetListenAddr(hostport string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.listen = hostport
}

// SetPeer records the host:port of a logical address served by another
// process.
func (t *TCP) SetPeer(addr, hostport string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.book[addr] = hostport
}

// ListenAddr reports the host:port a local endpoint is listening on, for
// exchange with other processes.
func (t *TCP) ListenAddr(addr string) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	hp, ok := t.book[addr]
	return hp, ok
}

// Endpoint implements Network.
func (t *TCP) Endpoint(addr string) (Endpoint, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if _, ok := t.eps[addr]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateAddr, addr)
	}
	listen := t.listen
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	ep := &tcpEndpoint{
		net:   t,
		addr:  addr,
		ln:    ln,
		queue: t.clock.NewQueue(),
		conns: make(map[string]*tcpConn),
	}
	t.eps[addr] = ep
	t.book[addr] = ln.Addr().String()
	go ep.acceptLoop()
	return ep, nil
}

// Close implements Network.
func (t *TCP) Close() error {
	t.mu.Lock()
	eps := make([]*tcpEndpoint, 0, len(t.eps))
	for _, ep := range t.eps {
		eps = append(eps, ep)
	}
	t.closed = true
	t.mu.Unlock()
	for _, ep := range eps {
		_ = ep.Close()
	}
	return nil
}

// wire is the on-the-wire frame.
type wire struct {
	From string
	Msg  protocol.Message
}

type tcpConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	// hostport is the physical address this connection was dialled to; a
	// cached connection is only reused while the logical address still
	// resolves there (re-binding an address — e.g. the mux tearing a thread
	// address down and a later instance reopening it on a fresh port —
	// would otherwise leave peers sending into the dead incarnation).
	hostport string
}

type tcpEndpoint struct {
	net   *TCP
	addr  string
	ln    net.Listener
	queue *vclock.Queue

	mu     sync.Mutex
	conns  map[string]*tcpConn // outbound, keyed by destination logical addr
	closed bool
}

var _ Endpoint = (*tcpEndpoint)(nil)

func (e *tcpEndpoint) Addr() string { return e.addr }

// MarkDaemon marks receives on this endpoint as virtual-clock daemon waits;
// see vclock.Queue.SetDaemon.
func (e *tcpEndpoint) MarkDaemon() { e.queue.SetDaemon() }

func (e *tcpEndpoint) acceptLoop() {
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go e.readLoop(conn)
	}
}

func (e *tcpEndpoint) readLoop(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	dec := gob.NewDecoder(conn)
	for {
		var w wire
		if err := dec.Decode(&w); err != nil {
			return
		}
		e.queue.Put(Delivery{From: w.From, Msg: w.Msg})
	}
}

func (e *tcpEndpoint) Send(to string, msg protocol.Message) error {
	c, err := e.dial(to)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(wire{From: e.addr, Msg: msg}); err != nil {
		// Connection broke: forget it so a later send re-dials.
		e.mu.Lock()
		if e.conns[to] == c {
			delete(e.conns, to)
		}
		e.mu.Unlock()
		_ = c.conn.Close()
		return fmt.Errorf("transport: send to %q: %w", to, err)
	}
	return nil
}

func (e *tcpEndpoint) dial(to string) (*tcpConn, error) {
	e.net.mu.RLock()
	hostport, ok := e.net.book[to]
	e.net.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownAddr, to)
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := e.conns[to]; ok {
		if c.hostport == hostport {
			e.mu.Unlock()
			return c, nil
		}
		// The logical address re-bound to a new physical address since this
		// connection was dialled: drop the stale connection and re-dial.
		delete(e.conns, to)
		_ = c.conn.Close()
	}
	e.mu.Unlock()

	conn, err := net.DialTimeout("tcp", hostport, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %q: %w", to, err)
	}
	c := &tcpConn{conn: conn, enc: gob.NewEncoder(conn), hostport: hostport}

	e.mu.Lock()
	defer e.mu.Unlock()
	if prev, ok := e.conns[to]; ok && prev.hostport == hostport {
		_ = conn.Close() // lost the race; reuse the established one
		return prev, nil
	} else if ok {
		_ = prev.conn.Close() // racing dial to a stale incarnation
	}
	e.conns[to] = c
	return c, nil
}

func (e *tcpEndpoint) Recv() (Delivery, bool) {
	x, ok := e.queue.Get()
	if !ok {
		return Delivery{}, false
	}
	return x.(Delivery), true
}

func (e *tcpEndpoint) RecvTimeout(timeout time.Duration) (Delivery, bool) {
	x, ok := e.queue.GetTimeout(timeout)
	if !ok {
		return Delivery{}, false
	}
	return x.(Delivery), true
}

func (e *tcpEndpoint) Pending() int { return e.queue.Len() }

func (e *tcpEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := make([]*tcpConn, 0, len(e.conns))
	for _, c := range e.conns {
		conns = append(conns, c)
	}
	e.mu.Unlock()

	err := e.ln.Close()
	for _, c := range conns {
		_ = c.conn.Close()
	}
	e.queue.Close()

	e.net.mu.Lock()
	if e.net.eps[e.addr] == e {
		delete(e.net.eps, e.addr)
	}
	e.net.mu.Unlock()
	return err
}
