package transport

import (
	"net"
	"runtime"
	"testing"
	"time"

	"caaction/internal/protocol"
	"caaction/internal/vclock"
)

// countingConn is a net.Conn stub that counts writes, so a test can prove a
// flush timer did (or did not) fire against a connection after teardown.
type countingConn struct {
	writes chan struct{}
}

func newCountingConn() *countingConn {
	return &countingConn{writes: make(chan struct{}, 64)}
}

func (c *countingConn) Read(b []byte) (int, error)  { return 0, net.ErrClosed }
func (c *countingConn) Write(b []byte) (int, error) { c.writes <- struct{}{}; return len(b), nil }
func (c *countingConn) Close() error                { return nil }
func (c *countingConn) LocalAddr() net.Addr         { return &net.TCPAddr{} }
func (c *countingConn) RemoteAddr() net.Addr        { return &net.TCPAddr{} }
func (c *countingConn) SetDeadline(time.Time) error { return nil }

func (c *countingConn) SetReadDeadline(time.Time) error  { return nil }
func (c *countingConn) SetWriteDeadline(time.Time) error { return nil }

// TestTCPDropConnStopsFlushTimer pins the teardown contract of the re-dial
// path: dropping a connection with a freshly armed coalescing batch must
// stop the flush-deadline timer, so nothing fires against (and nothing is
// written to) the abandoned socket. Before dropConn existed, the sticky-
// write-error → re-dial paths closed the socket but left the armed timer
// running — this test fails against that code.
func TestTCPDropConnStopsFlushTimer(t *testing.T) {
	clk := vclock.NewReal()
	tn := NewTCP(clk)
	defer func() { _ = tn.Close() }()
	if !tn.coalesce {
		t.Fatal("real-clock TCP should enable write coalescing")
	}

	fake := newCountingConn()
	c := &tcpConn{conn: fake, hostport: "127.0.0.1:1"}
	// One small frame: accepted into the batch, batch opens, timer armed.
	if err, broken := tn.write(c, "", "A", protocol.Ack{Action: "x#1", From: "A"}); err != nil || broken {
		t.Fatalf("write into fresh batch: err=%v broken=%v", err, broken)
	}
	c.mu.Lock()
	armed := c.timer != nil && len(c.wbuf) > 0
	c.mu.Unlock()
	if !armed {
		t.Fatal("expected an open batch with an armed flush timer")
	}

	dropConn(c)

	// Give a leaked timer ample opportunity (coalesceDelay is 100µs).
	select {
	case <-fake.writes:
		t.Fatal("flush timer fired against a dropped connection")
	case <-time.After(50 * coalesceDelay):
	}
	c.mu.Lock()
	werr := c.werr
	c.mu.Unlock()
	if werr != nil {
		t.Fatalf("dropped connection accumulated a flush error: %v", werr)
	}
}

// TestTCPRedialCycleNoGoroutineLeak cycles send → peer death → sticky write
// error → re-dial, the path that once leaked armed flush timers, and asserts
// the process-wide goroutine high-water stays bounded (the same measure the
// load harness's sampler gates): each cycle's network goroutines and timers
// must be fully torn down by the next.
func TestTCPRedialCycleNoGoroutineLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("re-dial cycles wait on real sockets")
	}
	clk := vclock.NewReal()
	n1 := NewTCP(clk)
	defer func() { _ = n1.Close() }()
	a, err := n1.Endpoint("A")
	if err != nil {
		t.Fatal(err)
	}

	baseline := runtime.NumGoroutine()
	high := baseline
	const cycles = 25
	for i := 0; i < cycles; i++ {
		n2 := NewTCP(clk)
		b, err := n2.Endpoint("B")
		if err != nil {
			t.Fatal(err)
		}
		bAddr, ok := n2.ListenAddr("B")
		if !ok {
			t.Fatal("no listen addr for B")
		}
		n1.SetPeer("B", bAddr)

		if err := a.Send("B", protocol.Ack{Action: "cycle#1", From: "A", Round: i}); err != nil {
			t.Fatalf("cycle %d: healthy send: %v", i, err)
		}
		if _, ok := b.RecvTimeout(5 * time.Second); !ok {
			t.Fatalf("cycle %d: no delivery", i)
		}

		// Kill the socket out from under the cached connection — what a
		// peer crash looks like from the sender — WITHOUT touching the
		// coalescing state, then send until the sticky write error
		// surfaces: the first sends are batched (and their deadline-driven
		// flush fails against the dead socket), the send that observes the
		// sticky error drops and forgets the connection.
		ae := a.(*tcpEndpoint)
		ae.mu.Lock()
		c := ae.conns["B"]
		ae.mu.Unlock()
		if c == nil {
			t.Fatalf("cycle %d: no cached connection to B", i)
		}
		_ = c.conn.Close()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if err := a.Send("B", protocol.Ack{Action: "cycle#1", From: "A", Round: i}); err != nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("cycle %d: send to dead peer never errored", i)
			}
			time.Sleep(time.Millisecond)
		}
		_ = n2.Close()
		if g := runtime.NumGoroutine(); g > high {
			high = g
		}
	}

	// Settle: transient readLoop/timer goroutines from the last cycle end.
	var final int
	for wait := 0; wait < 100; wait++ {
		final = runtime.NumGoroutine()
		if final <= baseline+4 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final > baseline+4 {
		t.Fatalf("goroutines leaked across re-dial cycles: baseline %d, final %d (high-water %d)", baseline, final, high)
	}
	// Each cycle runs one short-lived network (~4 goroutines); a leak grows
	// the high-water linearly with cycles.
	if high > baseline+cycles {
		t.Fatalf("goroutine high-water %d suggests per-cycle leakage (baseline %d, %d cycles)", high, baseline, cycles)
	}
}
