package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"caaction/internal/protocol"
	"caaction/internal/trace"
	"caaction/internal/vclock"
)

// Fault is a fault injector's verdict on one message.
type Fault int

// Fault verdicts.
const (
	// Deliver passes the message through unharmed.
	Deliver Fault = iota + 1
	// Drop loses the message (hardware fault / lost message, the paper's
	// l_mes).
	Drop
	// Corrupt delivers the message flagged as damaged; receivers treat it
	// as a failure exception per the §3.4 extension.
	Corrupt
)

// FaultFunc decides the fate of one message from one sender to one receiver.
type FaultFunc func(from, to string, msg protocol.Message) Fault

// LatencyFunc models one-way message latency; it is invoked under the
// network lock, so stateful models (jitter) stay deterministic.
type LatencyFunc func(from, to string) time.Duration

// FixedLatency returns a latency model with constant delay d — the paper's
// Tmmax parameter.
func FixedLatency(d time.Duration) LatencyFunc {
	return func(_, _ string) time.Duration { return d }
}

// JitterLatency returns base±jitter latency drawn from a deterministic
// seeded source. FIFO per pair is still enforced by the network.
func JitterLatency(base, jitter time.Duration, seed int64) LatencyFunc {
	rng := rand.New(rand.NewSource(seed))
	return func(_, _ string) time.Duration {
		if jitter <= 0 {
			return base
		}
		d := base + time.Duration(rng.Int63n(int64(2*jitter))) - jitter
		if d < 0 {
			d = 0
		}
		return d
	}
}

// SimConfig configures a simulated network.
type SimConfig struct {
	// Clock drives delivery timing; required.
	Clock vclock.Clock
	// Latency models one-way delay; nil means zero latency.
	Latency LatencyFunc
	// Metrics, when non-nil, counts sends as "msg.<Kind>" plus "msg.total".
	Metrics *trace.Metrics
	// Log, when non-nil, records send/deliver events.
	Log *trace.Log
}

// Sim is an in-process simulated network. It guarantees reliable delivery
// and per-(sender,receiver) FIFO order even under jittered latency, by
// clamping each delivery to occur no earlier than the previous delivery on
// the same pair.
type Sim struct {
	cfg SimConfig

	mu        sync.Mutex
	endpoints map[string]*simEndpoint
	lastAt    map[[2]string]time.Duration
	fault     FaultFunc
	closed    bool
}

var _ Network = (*Sim)(nil)

// NewSim returns a simulated network.
func NewSim(cfg SimConfig) *Sim {
	if cfg.Clock == nil {
		panic("transport: SimConfig.Clock is required")
	}
	if cfg.Latency == nil {
		cfg.Latency = FixedLatency(0)
	}
	return &Sim{
		cfg:       cfg,
		endpoints: make(map[string]*simEndpoint),
		lastAt:    make(map[[2]string]time.Duration),
	}
}

// SetFault installs a fault injector applied to every subsequent send; nil
// restores fault-free operation.
func (s *Sim) SetFault(f FaultFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fault = f
}

// Endpoint implements Network.
func (s *Sim) Endpoint(addr string) (Endpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if _, ok := s.endpoints[addr]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateAddr, addr)
	}
	ep := &simEndpoint{net: s, addr: addr, queue: s.cfg.Clock.NewQueue()}
	s.endpoints[addr] = ep
	return ep, nil
}

// Close implements Network.
func (s *Sim) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	for _, ep := range s.endpoints {
		ep.queue.Close()
	}
	return nil
}

func (s *Sim) send(from, to string, msg protocol.Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	dst, ok := s.endpoints[to]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAddr, to)
	}

	if m := s.cfg.Metrics; m != nil {
		m.Add("msg."+msg.Kind(), 1)
		m.Add("msg.total", 1)
	}
	now := s.cfg.Clock.Now()
	s.cfg.Log.Add(now, from, "send."+msg.Kind(), fmt.Sprintf("to %s: %v", to, msg))

	verdict := Deliver
	if s.fault != nil {
		verdict = s.fault(from, to, msg)
	}
	if verdict == Drop {
		s.cfg.Log.Add(now, from, "drop."+msg.Kind(), "to "+to)
		return nil
	}

	at := now + s.cfg.Latency(from, to)
	pair := [2]string{from, to}
	if prev := s.lastAt[pair]; at < prev {
		at = prev // preserve per-pair FIFO under jitter
	}
	s.lastAt[pair] = at
	dst.queue.PutAfter(at-now, Delivery{
		From:    from,
		Msg:     msg,
		Corrupt: verdict == Corrupt,
	})
	return nil
}

type simEndpoint struct {
	net   *Sim
	addr  string
	queue *vclock.Queue
}

var _ Endpoint = (*simEndpoint)(nil)

func (e *simEndpoint) Addr() string { return e.addr }

func (e *simEndpoint) Send(to string, msg protocol.Message) error {
	return e.net.send(e.addr, to, msg)
}

func (e *simEndpoint) Recv() (Delivery, bool) {
	x, ok := e.queue.Get()
	if !ok {
		return Delivery{}, false
	}
	return x.(Delivery), true
}

func (e *simEndpoint) RecvTimeout(timeout time.Duration) (Delivery, bool) {
	x, ok := e.queue.GetTimeout(timeout)
	if !ok {
		return Delivery{}, false
	}
	return x.(Delivery), true
}

func (e *simEndpoint) Pending() int { return e.queue.Len() }

func (e *simEndpoint) Close() error {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	if e.net.endpoints[e.addr] == e {
		delete(e.net.endpoints, e.addr)
	}
	e.queue.Close()
	return nil
}
