package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"caaction/internal/protocol"
	"caaction/internal/trace"
	"caaction/internal/vclock"
)

// Fault is a fault injector's verdict on one message.
type Fault int

// Fault verdicts.
const (
	// Deliver passes the message through unharmed.
	Deliver Fault = iota + 1
	// Drop loses the message (hardware fault / lost message, the paper's
	// l_mes).
	Drop
	// Corrupt delivers the message flagged as damaged; receivers treat it
	// as a failure exception per the §3.4 extension.
	Corrupt
)

// FaultFunc decides the fate of one message from one sender to one receiver.
type FaultFunc func(from, to string, msg protocol.Message) Fault

// Verdict is a perturbation applied to one message by a PerturbFunc — the
// richer fault model the chaos engine drives. The zero Verdict delivers the
// message unharmed.
type Verdict struct {
	// Fault is the base outcome; zero means Deliver.
	Fault Fault
	// Delay adds one-way delay on top of the latency model.
	Delay time.Duration
	// Copies delivers this many extra duplicates of the message (a retried
	// send observed twice). All copies arrive at the same instant.
	Copies int
	// Reorder exempts this message from the per-pair FIFO clamp, so a later
	// send on the same pair may overtake it (combine with Delay).
	Reorder bool
}

// PerturbFunc decides the perturbation for one message. It is invoked under
// the network lock in send order, so a stateful (seeded) injector observes a
// deterministic call sequence whenever the clock serializes execution.
type PerturbFunc func(from, to string, msg protocol.Message) Verdict

// Stats are the simulated network's traffic counters. Fields are written
// under the network lock but read with atomic loads, so harnesses may sample
// them while a scenario is running.
type Stats struct {
	Sent       int64 // messages accepted onto the wire (crash-suppressed sends excluded)
	Delivered  int64 // deliveries enqueued (duplicates counted)
	Dropped    int64
	Corrupted  int64
	Duplicated int64 // extra copies enqueued
	Reordered  int64 // messages exempted from the FIFO clamp
	Delayed    int64 // messages given perturbation delay
}

// LatencyFunc models one-way message latency; it is invoked under the
// network lock, so stateful models (jitter) stay deterministic.
type LatencyFunc func(from, to string) time.Duration

// FixedLatency returns a latency model with constant delay d — the paper's
// Tmmax parameter.
func FixedLatency(d time.Duration) LatencyFunc {
	return func(_, _ string) time.Duration { return d }
}

// JitterLatency returns base±jitter latency drawn from a deterministic
// seeded source. FIFO per pair is still enforced by the network.
func JitterLatency(base, jitter time.Duration, seed int64) LatencyFunc {
	rng := rand.New(rand.NewSource(seed))
	return func(_, _ string) time.Duration {
		if jitter <= 0 {
			return base
		}
		d := base + time.Duration(rng.Int63n(int64(2*jitter))) - jitter
		if d < 0 {
			d = 0
		}
		return d
	}
}

// SimConfig configures a simulated network.
type SimConfig struct {
	// Clock drives delivery timing; required.
	Clock vclock.Clock
	// Latency models one-way delay; nil means zero latency (and, on a real
	// clock with no fault injectors and no log, enables the lock-free send
	// fast path — pass FixedLatency(0) instead to model zero latency while
	// keeping every send on the locked path).
	Latency LatencyFunc
	// Metrics, when non-nil, counts sends as "msg.<Kind>" plus "msg.total".
	Metrics *trace.Metrics
	// Log, when non-nil, records send/deliver events.
	Log *trace.Log
}

// Per-kind event labels, precomputed so an enabled log never concatenates
// them per send (and a disabled one never touches them at all).
var (
	simSendLabels    = protocol.KindLabels("send.")
	simDropLabels    = protocol.KindLabels("drop.")
	simDupLabels     = protocol.KindLabels("dup.")
	simCrashedLabels = protocol.KindLabels("crashed.")
)

// simLabel returns the precomputed per-kind label, falling back to a
// concatenation for foreign message types (only ever paid with an enabled
// log).
func simLabel(table *[protocol.NumKinds]string, kind int, prefix string, msg protocol.Message) string {
	if kind >= 0 {
		return table[kind]
	}
	return prefix + msg.Kind()
}

// Sim is an in-process simulated network. It guarantees reliable delivery
// and per-(sender,receiver) FIFO order even under jittered latency, by
// clamping each delivery to occur no earlier than the previous delivery on
// the same pair.
//
// Sends normally serialize on one network lock (which is what makes
// injected faults and the FIFO clamp deterministic under the virtual
// clock). A pristine real-time network — wall clock, zero latency, no
// fault injector ever installed, no log — routes sends over a lock-free
// fast path instead: per-(sender,receiver) FIFO is preserved by each
// receive queue's own ordering, and nothing else in that configuration
// observes cross-pair send order. This is the load harness's
// configuration, where the global lock would otherwise serialize every
// message of thousands of concurrent actions.
type Sim struct {
	cfg SimConfig
	// zeroLat and realtime gate the fast path; fixed at construction.
	zeroLat  bool
	realtime bool
	// pristine is true until a fault or perturbation injector is first
	// installed; it then latches false forever (in-flight clamp history
	// could otherwise be bypassed when an injector is removed again).
	pristine atomic.Bool
	closed   atomic.Bool

	// endpoints is keyed by address; sync.Map so fast-path sends resolve
	// destinations without the network lock.
	endpoints sync.Map // string -> *simEndpoint

	mu      sync.Mutex
	lastAt  map[[2]string]time.Duration
	fault   FaultFunc
	perturb PerturbFunc

	// counters are the interned per-kind "msg.<Kind>" counters plus
	// "msg.total", filled lazily (so only kinds actually sent appear in
	// metric snapshots) when cfg.Metrics is set. A send then costs one
	// atomic add per counter — no lock, no map, no string concat.
	counters [protocol.NumKinds]atomic.Pointer[trace.Counter]
	total    atomic.Pointer[trace.Counter]

	// stats fields are atomics: senders on the fast path bump them without
	// the network lock, and readers (a chaos harness sampling mid-scenario)
	// never race with senders.
	stats struct {
		sent, delivered, dropped, corrupted atomic.Int64
		duplicated, reordered, delayed      atomic.Int64
	}
}

var _ Network = (*Sim)(nil)

// NewSim returns a simulated network.
func NewSim(cfg SimConfig) *Sim {
	if cfg.Clock == nil {
		panic("transport: SimConfig.Clock is required")
	}
	s := &Sim{
		cfg:    cfg,
		lastAt: make(map[[2]string]time.Duration),
	}
	s.zeroLat = cfg.Latency == nil
	if cfg.Latency == nil {
		s.cfg.Latency = FixedLatency(0)
	}
	s.realtime = vclock.IsReal(cfg.Clock)
	s.pristine.Store(true)
	return s
}

// SetFault installs a fault injector applied to every send that begins
// after SetFault returns; nil restores fault-free operation (but the
// lock-free fast path stays off once any injector has been seen). On a
// pristine real-time network, sends already in flight inside the fast path
// when the first injector is installed may still deliver uninspected —
// install injectors before traffic starts when every message must be
// subject to them (the chaos engine does; its virtual-clock networks never
// use the fast path at all).
func (s *Sim) SetFault(f FaultFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f != nil {
		s.pristine.Store(false)
	}
	s.fault = f
}

// SetPerturb installs a perturbation injector applied to every send that
// begins after SetPerturb returns, after any SetFault injector has passed
// the message; nil removes it (but the lock-free fast path stays off once
// any injector has been seen). The first-installation visibility caveat on
// SetFault applies here too.
func (s *Sim) SetPerturb(f PerturbFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f != nil {
		s.pristine.Store(false)
	}
	s.perturb = f
}

// Stats returns a snapshot of the network's traffic counters. Safe to call
// at any time, including while a scenario is running.
func (s *Sim) Stats() Stats {
	return Stats{
		Sent:       s.stats.sent.Load(),
		Delivered:  s.stats.delivered.Load(),
		Dropped:    s.stats.dropped.Load(),
		Corrupted:  s.stats.corrupted.Load(),
		Duplicated: s.stats.duplicated.Load(),
		Reordered:  s.stats.reordered.Load(),
		Delayed:    s.stats.delayed.Load(),
	}
}

// CloseEndpoint crash-stops the endpoint bound to addr: the owning thread's
// pending and future receives observe ok=false (already-buffered deliveries
// are discarded, a crashed process does not drain its inbox), its subsequent
// sends are silently dropped, and peers' sends to addr fail with
// ErrUnknownAddr. It reports whether an endpoint was bound. This is the
// chaos engine's thread crash primitive; for a graceful detach use
// Endpoint.Close. The crash marker belongs to the endpoint incarnation, so
// re-binding the address with Endpoint starts a fresh, healthy endpoint.
func (s *Sim) CloseEndpoint(addr string) bool {
	x, ok := s.endpoints.Load(addr)
	if !ok {
		return false
	}
	ep := x.(*simEndpoint)
	ep.dead.Store(true)
	_ = ep.Close()
	return true
}

// Endpoint implements Network.
func (s *Sim) Endpoint(addr string) (Endpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	ep := &simEndpoint{net: s, addr: addr, queue: s.cfg.Clock.NewQueue()}
	if _, dup := s.endpoints.LoadOrStore(addr, ep); dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateAddr, addr)
	}
	return ep, nil
}

// Close implements Network.
func (s *Sim) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Swap(true) {
		return nil
	}
	s.endpoints.Range(func(_, x any) bool {
		x.(*simEndpoint).queue.Close()
		return true
	})
	return nil
}

// countSend bumps the interned per-kind and total counters; no-op without a
// Metrics. Interning is idempotent (Metrics.Counter returns the same
// pointer), so concurrent first sends of a kind race benignly.
func (s *Sim) countSend(kind int, msg protocol.Message) {
	m := s.cfg.Metrics
	if m == nil {
		return
	}
	if kind >= 0 {
		c := s.counters[kind].Load()
		if c == nil {
			c = m.Counter(protocol.MetricNames[kind])
			s.counters[kind].Store(c)
		}
		c.Add(1)
	} else {
		m.Add("msg."+msg.Kind(), 1)
	}
	t := s.total.Load()
	if t == nil {
		t = m.Counter("msg.total")
		s.total.Store(t)
	}
	t.Add(1)
}

// fastSend is the lock-free hot path: real clock, zero latency, no fault
// injector ever installed, no log, one of the nine protocol messages.
// Per-pair FIFO holds because the destination queue orders this sender's
// (sequential) puts; nothing else in this configuration reads send order.
func (s *Sim) fastSend(src *simEndpoint, to string, msg protocol.Message, kind int) error {
	if src.dead.Load() {
		return nil // crash-stopped sends never reach the wire
	}
	x, ok := s.endpoints.Load(to)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAddr, to)
	}
	dst := x.(*simEndpoint)
	s.countSend(kind, msg)
	s.stats.sent.Add(1)
	s.stats.delivered.Add(1)
	if sp := dst.sink.Load(); sp != nil && !dst.dead.Load() {
		// Sink lane: hand the delivery to the destination's dispatcher on
		// this goroutine instead of waking its pump. Only installed on the
		// same pristine real-time configuration that enables fastSend, so
		// the pump's queue is bypassed uniformly per endpoint.
		(*sp)(Delivery{From: src.addr, Msg: msg})
		return nil
	}
	dst.queue.Put(borrowDelivery(src.addr, msg, false))
	return nil
}

func (s *Sim) send(src *simEndpoint, to string, msg protocol.Message) error {
	from := src.addr
	kind := protocol.KindIndexOf(msg)
	lg := s.cfg.Log
	if s.closed.Load() {
		return ErrClosed
	}
	if kind >= 0 && lg == nil && s.realtime && s.zeroLat && s.pristine.Load() {
		return s.fastSend(src, to, msg, kind)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	if src.dead.Load() {
		// A crash-stopped thread's sends never reach the wire.
		if lg.Enabled() {
			lg.Add(s.cfg.Clock.Now(), from, simLabel(&simCrashedLabels, kind, "crashed.", msg), "send suppressed")
		}
		return nil
	}
	x, ok := s.endpoints.Load(to)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAddr, to)
	}
	dst := x.(*simEndpoint)

	s.countSend(kind, msg)
	s.stats.sent.Add(1)
	now := s.cfg.Clock.Now()
	if lg.Enabled() {
		lg.Add(now, from, simLabel(&simSendLabels, kind, "send.", msg), fmt.Sprintf("to %s: %v", to, msg))
	}

	fault := Deliver
	if s.fault != nil {
		fault = s.fault(from, to, msg)
	}
	if fault == Drop {
		// The perturbation hook is not consulted for messages the legacy
		// fault injector already lost, per the SetPerturb contract.
		s.stats.dropped.Add(1)
		if lg.Enabled() {
			lg.Add(now, from, simLabel(&simDropLabels, kind, "drop.", msg), "to "+to)
		}
		return nil
	}
	var v Verdict
	if s.perturb != nil {
		v = s.perturb(from, to, msg)
	}
	if v.Fault == Drop {
		s.stats.dropped.Add(1)
		if lg.Enabled() {
			lg.Add(now, from, simLabel(&simDropLabels, kind, "drop.", msg), "to "+to)
		}
		return nil
	}
	corrupt := fault == Corrupt || v.Fault == Corrupt
	if corrupt {
		s.stats.corrupted.Add(1)
	}

	at := now + s.cfg.Latency(from, to) + v.Delay
	if v.Delay > 0 {
		s.stats.delayed.Add(1)
	}
	pair := [2]string{from, to}
	if prev := s.lastAt[pair]; at < prev && !v.Reorder {
		at = prev // preserve per-pair FIFO under jitter and perturbation
	}
	if v.Reorder {
		// Leave lastAt untouched so later sends may overtake this one.
		s.stats.reordered.Add(1)
	} else {
		s.lastAt[pair] = at
	}
	copies := 1 + v.Copies
	if v.Copies > 0 {
		s.stats.duplicated.Add(int64(v.Copies))
		if lg.Enabled() {
			lg.Add(now, from, simLabel(&simDupLabels, kind, "dup.", msg), fmt.Sprintf("to %s ×%d", to, copies))
		}
	}
	for i := 0; i < copies; i++ {
		s.stats.delivered.Add(1)
		dst.queue.PutAfter(at-now, borrowDelivery(from, msg, corrupt))
	}
	return nil
}

type simEndpoint struct {
	net   *Sim
	addr  string
	queue *vclock.Queue
	// dead marks a crash-stop: buffered deliveries are discarded instead of
	// drained, unlike a graceful Close.
	dead atomic.Bool
	// sink, when set, receives fast-path deliveries synchronously on the
	// sender's goroutine instead of through queue. Installed by the mux for
	// its shared endpoints so sends skip the pump entirely; the callee must
	// be safe to invoke from arbitrary sender goroutines.
	sink atomic.Pointer[func(Delivery)]
}

var _ Endpoint = (*simEndpoint)(nil)

func (e *simEndpoint) Addr() string { return e.addr }

// SetSink installs (or, with nil, removes) the synchronous delivery sink for
// the fast path; see simEndpoint.sink.
func (e *simEndpoint) SetSink(fn func(Delivery)) {
	if fn == nil {
		e.sink.Store(nil)
		return
	}
	e.sink.Store(&fn)
}

// MarkDaemon marks receives on this endpoint as virtual-clock daemon waits;
// see vclock.Queue.SetDaemon. The Mux marks the shared endpoints its pumps
// read from.
func (e *simEndpoint) MarkDaemon() { e.queue.SetDaemon() }

func (e *simEndpoint) Send(to string, msg protocol.Message) error {
	return e.net.send(e, to, msg)
}

// unbox copies a pooled delivery out of its box and recycles it.
func (e *simEndpoint) unbox(x any, ok bool) (Delivery, bool) {
	d, ok := unboxDelivery(x, ok)
	if !ok || e.dead.Load() {
		return Delivery{}, false // crash-stop: buffered deliveries are lost
	}
	return d, true
}

func (e *simEndpoint) Recv() (Delivery, bool) {
	return e.unbox(e.queue.Get())
}

func (e *simEndpoint) RecvTimeout(timeout time.Duration) (Delivery, bool) {
	return e.unbox(e.queue.GetTimeout(timeout))
}

func (e *simEndpoint) Pending() int {
	if e.dead.Load() {
		return 0
	}
	return e.queue.Len()
}

func (e *simEndpoint) Close() error {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	if e.net.endpoints.CompareAndDelete(e.addr, e) {
		// Forget the per-pair FIFO history involving this address: the
		// endpoint incarnation is gone (graceful close or crash-stop), so
		// retaining its entries would both leak — a long-lived system churns
		// through unboundedly many addresses — and clamp an unrelated future
		// incarnation's deliveries behind the dead one's schedule.
		for pair := range e.net.lastAt {
			if pair[0] == e.addr || pair[1] == e.addr {
				delete(e.net.lastAt, pair)
			}
		}
	}
	e.queue.Close()
	return nil
}
