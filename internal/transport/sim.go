package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"caaction/internal/protocol"
	"caaction/internal/trace"
	"caaction/internal/vclock"
)

// Fault is a fault injector's verdict on one message.
type Fault int

// Fault verdicts.
const (
	// Deliver passes the message through unharmed.
	Deliver Fault = iota + 1
	// Drop loses the message (hardware fault / lost message, the paper's
	// l_mes).
	Drop
	// Corrupt delivers the message flagged as damaged; receivers treat it
	// as a failure exception per the §3.4 extension.
	Corrupt
)

// FaultFunc decides the fate of one message from one sender to one receiver.
type FaultFunc func(from, to string, msg protocol.Message) Fault

// Verdict is a perturbation applied to one message by a PerturbFunc — the
// richer fault model the chaos engine drives. The zero Verdict delivers the
// message unharmed.
type Verdict struct {
	// Fault is the base outcome; zero means Deliver.
	Fault Fault
	// Delay adds one-way delay on top of the latency model.
	Delay time.Duration
	// Copies delivers this many extra duplicates of the message (a retried
	// send observed twice). All copies arrive at the same instant.
	Copies int
	// Reorder exempts this message from the per-pair FIFO clamp, so a later
	// send on the same pair may overtake it (combine with Delay).
	Reorder bool
}

// PerturbFunc decides the perturbation for one message. It is invoked under
// the network lock in send order, so a stateful (seeded) injector observes a
// deterministic call sequence whenever the clock serializes execution.
type PerturbFunc func(from, to string, msg protocol.Message) Verdict

// Stats are the simulated network's traffic counters. Fields are written
// under the network lock but read with atomic loads, so harnesses may sample
// them while a scenario is running.
type Stats struct {
	Sent       int64 // messages accepted onto the wire (crash-suppressed sends excluded)
	Delivered  int64 // deliveries enqueued (duplicates counted)
	Dropped    int64
	Corrupted  int64
	Duplicated int64 // extra copies enqueued
	Reordered  int64 // messages exempted from the FIFO clamp
	Delayed    int64 // messages given perturbation delay
}

// LatencyFunc models one-way message latency; it is invoked under the
// network lock, so stateful models (jitter) stay deterministic.
type LatencyFunc func(from, to string) time.Duration

// FixedLatency returns a latency model with constant delay d — the paper's
// Tmmax parameter.
func FixedLatency(d time.Duration) LatencyFunc {
	return func(_, _ string) time.Duration { return d }
}

// JitterLatency returns base±jitter latency drawn from a deterministic
// seeded source. FIFO per pair is still enforced by the network.
func JitterLatency(base, jitter time.Duration, seed int64) LatencyFunc {
	rng := rand.New(rand.NewSource(seed))
	return func(_, _ string) time.Duration {
		if jitter <= 0 {
			return base
		}
		d := base + time.Duration(rng.Int63n(int64(2*jitter))) - jitter
		if d < 0 {
			d = 0
		}
		return d
	}
}

// SimConfig configures a simulated network.
type SimConfig struct {
	// Clock drives delivery timing; required.
	Clock vclock.Clock
	// Latency models one-way delay; nil means zero latency.
	Latency LatencyFunc
	// Metrics, when non-nil, counts sends as "msg.<Kind>" plus "msg.total".
	Metrics *trace.Metrics
	// Log, when non-nil, records send/deliver events.
	Log *trace.Log
}

// Sim is an in-process simulated network. It guarantees reliable delivery
// and per-(sender,receiver) FIFO order even under jittered latency, by
// clamping each delivery to occur no earlier than the previous delivery on
// the same pair.
type Sim struct {
	cfg SimConfig

	mu        sync.Mutex
	endpoints map[string]*simEndpoint
	lastAt    map[[2]string]time.Duration
	fault     FaultFunc
	perturb   PerturbFunc
	closed    bool

	// stats fields are written under mu and read atomically by Stats, so
	// concurrent readers (a chaos harness sampling mid-scenario) never race
	// with senders.
	stats struct {
		sent, delivered, dropped, corrupted atomic.Int64
		duplicated, reordered, delayed      atomic.Int64
	}
}

var _ Network = (*Sim)(nil)

// NewSim returns a simulated network.
func NewSim(cfg SimConfig) *Sim {
	if cfg.Clock == nil {
		panic("transport: SimConfig.Clock is required")
	}
	if cfg.Latency == nil {
		cfg.Latency = FixedLatency(0)
	}
	return &Sim{
		cfg:       cfg,
		endpoints: make(map[string]*simEndpoint),
		lastAt:    make(map[[2]string]time.Duration),
	}
}

// SetFault installs a fault injector applied to every subsequent send; nil
// restores fault-free operation.
func (s *Sim) SetFault(f FaultFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fault = f
}

// SetPerturb installs a perturbation injector applied to every subsequent
// send, after any SetFault injector has passed the message; nil removes it.
func (s *Sim) SetPerturb(f PerturbFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.perturb = f
}

// Stats returns a snapshot of the network's traffic counters. Safe to call
// at any time, including while a scenario is running.
func (s *Sim) Stats() Stats {
	return Stats{
		Sent:       s.stats.sent.Load(),
		Delivered:  s.stats.delivered.Load(),
		Dropped:    s.stats.dropped.Load(),
		Corrupted:  s.stats.corrupted.Load(),
		Duplicated: s.stats.duplicated.Load(),
		Reordered:  s.stats.reordered.Load(),
		Delayed:    s.stats.delayed.Load(),
	}
}

// CloseEndpoint crash-stops the endpoint bound to addr: the owning thread's
// pending and future receives observe ok=false (already-buffered deliveries
// are discarded, a crashed process does not drain its inbox), its subsequent
// sends are silently dropped, and peers' sends to addr fail with
// ErrUnknownAddr. It reports whether an endpoint was bound. This is the
// chaos engine's thread crash primitive; for a graceful detach use
// Endpoint.Close. The crash marker belongs to the endpoint incarnation, so
// re-binding the address with Endpoint starts a fresh, healthy endpoint.
func (s *Sim) CloseEndpoint(addr string) bool {
	s.mu.Lock()
	ep, ok := s.endpoints[addr]
	s.mu.Unlock()
	if !ok {
		return false
	}
	ep.dead.Store(true)
	_ = ep.Close()
	return true
}

// Endpoint implements Network.
func (s *Sim) Endpoint(addr string) (Endpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if _, ok := s.endpoints[addr]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateAddr, addr)
	}
	ep := &simEndpoint{net: s, addr: addr, queue: s.cfg.Clock.NewQueue()}
	s.endpoints[addr] = ep
	return ep, nil
}

// Close implements Network.
func (s *Sim) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	for _, ep := range s.endpoints {
		ep.queue.Close()
	}
	return nil
}

func (s *Sim) send(src *simEndpoint, to string, msg protocol.Message) error {
	from := src.addr
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if src.dead.Load() {
		// A crash-stopped thread's sends never reach the wire.
		s.cfg.Log.Add(s.cfg.Clock.Now(), from, "crashed."+msg.Kind(), "send suppressed")
		return nil
	}
	dst, ok := s.endpoints[to]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAddr, to)
	}

	if m := s.cfg.Metrics; m != nil {
		m.Add("msg."+msg.Kind(), 1)
		m.Add("msg.total", 1)
	}
	s.stats.sent.Add(1)
	now := s.cfg.Clock.Now()
	s.cfg.Log.Add(now, from, "send."+msg.Kind(), fmt.Sprintf("to %s: %v", to, msg))

	fault := Deliver
	if s.fault != nil {
		fault = s.fault(from, to, msg)
	}
	if fault == Drop {
		// The perturbation hook is not consulted for messages the legacy
		// fault injector already lost, per the SetPerturb contract.
		s.stats.dropped.Add(1)
		s.cfg.Log.Add(now, from, "drop."+msg.Kind(), "to "+to)
		return nil
	}
	var v Verdict
	if s.perturb != nil {
		v = s.perturb(from, to, msg)
	}
	if v.Fault == Drop {
		s.stats.dropped.Add(1)
		s.cfg.Log.Add(now, from, "drop."+msg.Kind(), "to "+to)
		return nil
	}
	corrupt := fault == Corrupt || v.Fault == Corrupt
	if corrupt {
		s.stats.corrupted.Add(1)
	}

	at := now + s.cfg.Latency(from, to) + v.Delay
	if v.Delay > 0 {
		s.stats.delayed.Add(1)
	}
	pair := [2]string{from, to}
	if prev := s.lastAt[pair]; at < prev && !v.Reorder {
		at = prev // preserve per-pair FIFO under jitter and perturbation
	}
	if v.Reorder {
		// Leave lastAt untouched so later sends may overtake this one.
		s.stats.reordered.Add(1)
	} else {
		s.lastAt[pair] = at
	}
	copies := 1 + v.Copies
	if v.Copies > 0 {
		s.stats.duplicated.Add(int64(v.Copies))
		s.cfg.Log.Add(now, from, "dup."+msg.Kind(), fmt.Sprintf("to %s ×%d", to, copies))
	}
	for i := 0; i < copies; i++ {
		s.stats.delivered.Add(1)
		dst.queue.PutAfter(at-now, Delivery{
			From:    from,
			Msg:     msg,
			Corrupt: corrupt,
		})
	}
	return nil
}

type simEndpoint struct {
	net   *Sim
	addr  string
	queue *vclock.Queue
	// dead marks a crash-stop: buffered deliveries are discarded instead of
	// drained, unlike a graceful Close.
	dead atomic.Bool
}

var _ Endpoint = (*simEndpoint)(nil)

func (e *simEndpoint) Addr() string { return e.addr }

// MarkDaemon marks receives on this endpoint as virtual-clock daemon waits;
// see vclock.Queue.SetDaemon. The Mux marks the shared endpoints its pumps
// read from.
func (e *simEndpoint) MarkDaemon() { e.queue.SetDaemon() }

func (e *simEndpoint) Send(to string, msg protocol.Message) error {
	return e.net.send(e, to, msg)
}

func (e *simEndpoint) Recv() (Delivery, bool) {
	x, ok := e.queue.Get()
	if !ok || e.dead.Load() {
		return Delivery{}, false
	}
	return x.(Delivery), true
}

func (e *simEndpoint) RecvTimeout(timeout time.Duration) (Delivery, bool) {
	x, ok := e.queue.GetTimeout(timeout)
	if !ok || e.dead.Load() {
		return Delivery{}, false
	}
	return x.(Delivery), true
}

func (e *simEndpoint) Pending() int {
	if e.dead.Load() {
		return 0
	}
	return e.queue.Len()
}

func (e *simEndpoint) Close() error {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	if e.net.endpoints[e.addr] == e {
		delete(e.net.endpoints, e.addr)
	}
	e.queue.Close()
	return nil
}
