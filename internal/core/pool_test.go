package core

// Pool-hygiene tests: the lifecycle pools (Thread.Recycle, releaseFrame,
// signal's instance pool) must hand back objects indistinguishable from
// fresh ones — no counters, pending buffers, parsed identifiers or stack
// state may survive a recycle. These are deterministic virtual-clock tests;
// they live in the core package (not core_test) so they can assert on the
// scrubbed fields directly rather than only on behaviour.

import (
	"testing"
	"time"

	"caaction/internal/except"
	"caaction/internal/trace"
	"caaction/internal/transport"
	"caaction/internal/vclock"
)

func poolEnv(t *testing.T) (*vclock.Virtual, *Runtime) {
	t.Helper()
	clk := vclock.NewVirtual()
	net := transport.NewSim(transport.SimConfig{Clock: clk})
	rt, err := New(Config{Clock: clk, Network: net, Metrics: &trace.Metrics{}})
	if err != nil {
		t.Fatal(err)
	}
	return clk, rt
}

func poolSpec(t *testing.T, name string) *Spec {
	t.Helper()
	return &Spec{
		Name:  name,
		Roles: []Role{{Name: "a", Thread: "T1"}, {Name: "b", Thread: "T2"}},
		Graph: poolGraph(t),
	}
}

func poolGraph(t *testing.T) *except.Graph {
	t.Helper()
	g, err := except.GenerateFull("g", []except.ID{"e1"})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestThreadRecycleScrubsState performs an action that populates every piece
// of per-incarnation thread state (instance sequence numbers, the dead set,
// an identifier build), recycles the threads, and asserts the recycle
// contract field by field: empty stack, cleared maps, detached endpoint.
func TestThreadRecycleScrubsState(t *testing.T) {
	clk, rt := poolEnv(t)
	spec := poolSpec(t, "hyg")
	t1, err := rt.NewThread("T1")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := rt.NewThread("T2")
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range []struct {
		th   *Thread
		role string
	}{{t1, "a"}, {t2, "b"}} {
		pair := pair
		clk.Go(func() {
			if err := pair.th.Perform(spec, pair.role, RoleProgram{Body: func(ctx *Context) error {
				return ctx.Compute(time.Millisecond)
			}}); err != nil {
				t.Errorf("%s: %v", pair.role, err)
			}
		})
	}
	clk.Wait()

	if got := len(t1.seq); got == 0 {
		t.Fatalf("expected a populated seq map before recycle")
	}
	if got := len(t1.dead); got == 0 {
		t.Fatalf("expected a populated dead set before recycle")
	}
	_ = t1.Close()
	_ = t2.Close()
	// Plant inline-lane residue by hand (the virtual clock never runs the
	// lane) so the recycle contract for the event-loop fields is pinned too.
	t1.inline = true
	t1.inRoute = true
	t1.deferred = []transport.Outbound{{To: "T2"}}
	t1.park = parkState{kind: parkCompute}
	t1.Recycle()
	if t1.id != "" || t1.prefix != "" || t1.tag != "" || t1.ep != nil {
		t.Errorf("recycled thread keeps identity: id=%q prefix=%q tag=%q ep=%v", t1.id, t1.prefix, t1.tag, t1.ep)
	}
	if len(t1.stack) != 0 || len(t1.retained) != 0 || len(t1.dead) != 0 || len(t1.seq) != 0 {
		t.Errorf("recycled thread keeps state: stack=%d retained=%d dead=%d seq=%d",
			len(t1.stack), len(t1.retained), len(t1.dead), len(t1.seq))
	}
	if t1.inline || t1.iep != nil || t1.inRoute || t1.deferred != nil || t1.park != (parkState{}) {
		t.Errorf("recycled thread keeps inline-lane state: inline=%v iep=%v inRoute=%v deferred=%d park=%+v",
			t1.inline, t1.iep, t1.inRoute, len(t1.deferred), t1.park)
	}
}

// TestRecycledThreadRestartsInstanceSequence pins the observable half of the
// contract: a recycled thread's first action is instance "#1" again — the
// property StartAction's wire identifiers rely on (the mux tag, not the
// sequence number, is what keeps concurrent instances apart).
func TestRecycledThreadRestartsInstanceSequence(t *testing.T) {
	clk, rt := poolEnv(t)
	spec := poolSpec(t, "seq")

	run := func() (id1, id2 string) {
		t1, err := rt.NewThread("T1")
		if err != nil {
			t.Fatal(err)
		}
		t2, err := rt.NewThread("T2")
		if err != nil {
			t.Fatal(err)
		}
		ids := make(chan string, 2)
		body := func(ctx *Context) error {
			ids <- ctx.ActionID()
			return nil
		}
		clk.Go(func() {
			if err := t1.Perform(spec, "a", RoleProgram{Body: body}); err != nil {
				t.Errorf("a: %v", err)
			}
		})
		clk.Go(func() {
			if err := t2.Perform(spec, "b", RoleProgram{Body: body}); err != nil {
				t.Errorf("b: %v", err)
			}
		})
		clk.Wait()
		_ = t1.Close()
		_ = t2.Close()
		t1.Recycle()
		t2.Recycle()
		return <-ids, <-ids
	}
	id1, id2 := run()
	if id1 != "seq#1" || id2 != "seq#1" {
		t.Fatalf("first incarnation ids = %q/%q, want seq#1", id1, id2)
	}
	// The recycled threads must restart at #1, not resume at #2.
	id1, id2 = run()
	if id1 != "seq#1" || id2 != "seq#1" {
		t.Fatalf("recycled incarnation ids = %q/%q, want seq#1 (sequence state leaked)", id1, id2)
	}
}

// TestRecycleMidActionIsNoop: a thread still holding frames is mid-protocol
// and must never enter the pool.
func TestRecycleMidActionIsNoop(t *testing.T) {
	_, rt := poolEnv(t)
	th, err := rt.NewThread("T1")
	if err != nil {
		t.Fatal(err)
	}
	spec := &Spec{Name: "mid", Roles: []Role{{Name: "a", Thread: "T1"}}, Graph: poolGraph(t)}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	th.pushFrame(nil, spec, "a", RoleProgram{Body: func(*Context) error { return nil }})
	th.Recycle()
	if th.id != "T1" || len(th.stack) != 1 {
		t.Fatalf("mid-action Recycle mutated the thread: id=%q stack=%d", th.id, len(th.stack))
	}
}

// TestFrameReleaseScrubsEverything pops a frame through releaseFrame and
// checks the pooled object is zero apart from the entered slice's capacity
// and the bumped generation.
func TestFrameReleaseScrubsEverything(t *testing.T) {
	_, rt := poolEnv(t)
	th, err := rt.NewThread("T1")
	if err != nil {
		t.Fatal(err)
	}
	spec := &Spec{Name: "fr", Roles: []Role{{Name: "a", Thread: "T1"}}, Graph: poolGraph(t)}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	f := th.pushFrame(nil, spec, "a", RoleProgram{Body: func(*Context) error { return nil }})
	f.round = 3
	f.informed = true
	f.epsilon = "e1"
	f.votes = append(f.votes, transport.Delivery{From: "T9"})
	f.future = append(f.future, transport.Delivery{From: "T9"})
	f.pendingAbort = append(f.pendingAbort, transport.Delivery{From: "T9"})
	f.addApp("T9", "payload")
	gen := f.gen
	th.popFrame(f)

	if f.gen != gen+1 {
		t.Errorf("generation not bumped: %d -> %d", gen, f.gen)
	}
	zero := frame{entered: f.entered, gen: f.gen}
	if f.th != nil || f.spec != nil || f.id != "" || f.pid.Raw != "" || f.role != "" ||
		f.prog.Body != nil || f.peers != nil || f.round != 0 || f.inst != nil ||
		f.hasDecided || f.informed || f.sig != nil || f.hasSigDec ||
		f.votes != nil || f.epsilon != zero.epsilon || f.future != nil ||
		f.enteredN != 0 || f.apps != nil || f.pendingAbort != nil || f.aborting || f.tx != nil {
		t.Errorf("released frame keeps state: %+v", f)
	}
	if len(f.entered) != 0 {
		t.Errorf("released frame's entered slice has length %d, want 0", len(f.entered))
	}
}
