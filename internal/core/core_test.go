package core_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"caaction/internal/core"
	"caaction/internal/except"
	"caaction/internal/protocol"
	"caaction/internal/trace"
	"caaction/internal/transport"
	"caaction/internal/vclock"
)

// env wires a virtual-clock simulation with a runtime and N threads.
type env struct {
	t       *testing.T
	clk     *vclock.Virtual
	net     *transport.Sim
	rt      *core.Runtime
	metrics *trace.Metrics
	threads map[string]*core.Thread
}

func newEnv(t *testing.T, latency time.Duration, n int) *env {
	t.Helper()
	clk := vclock.NewVirtual()
	metrics := &trace.Metrics{}
	net := transport.NewSim(transport.SimConfig{
		Clock:   clk,
		Latency: transport.FixedLatency(latency),
		Metrics: metrics,
	})
	rt, err := core.New(core.Config{Clock: clk, Network: net, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	e := &env{t: t, clk: clk, net: net, rt: rt, metrics: metrics,
		threads: make(map[string]*core.Thread)}
	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("T%d", i)
		th, err := rt.NewThread(id)
		if err != nil {
			t.Fatal(err)
		}
		e.threads[id] = th
	}
	return e
}

// run performs the same spec on every bound thread and returns per-thread
// outcomes.
func (e *env) run(spec *core.Spec, progs map[string]core.RoleProgram) map[string]error {
	e.t.Helper()
	var mu sync.Mutex
	results := make(map[string]error)
	for _, r := range spec.Roles {
		role := r
		prog, ok := progs[role.Name]
		if !ok {
			e.t.Fatalf("no program for role %q", role.Name)
		}
		th := e.threads[role.Thread]
		if th == nil {
			e.t.Fatalf("no thread %q", role.Thread)
		}
		e.clk.Go(func() {
			err := th.Perform(spec, role.Name, prog)
			mu.Lock()
			results[role.Thread] = err
			mu.Unlock()
		})
	}
	e.clk.Wait()
	return results
}

func graph3(t *testing.T) *except.Graph {
	t.Helper()
	g, err := except.GenerateFull("g", []except.ID{"e1", "e2", "e3"})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func spec2(t *testing.T, name string, g *except.Graph, signals ...except.ID) *core.Spec {
	t.Helper()
	return &core.Spec{
		Name:    name,
		Roles:   []core.Role{{Name: "a", Thread: "T1"}, {Name: "b", Thread: "T2"}},
		Graph:   g,
		Signals: signals,
	}
}

func noopBody(ctx *core.Context) error { return nil }

func handlerRecorder(rec *sync.Map, key string) core.Handler {
	return func(ctx *core.Context, resolved except.ID, raised []except.Raised) error {
		rec.Store(key, resolved)
		return nil
	}
}

func TestSuccessfulActionNoExceptions(t *testing.T) {
	e := newEnv(t, time.Millisecond, 2)
	spec := spec2(t, "ok", graph3(t))
	res := e.run(spec, map[string]core.RoleProgram{
		"a": {Body: noopBody},
		"b": {Body: noopBody},
	})
	for id, err := range res {
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	if e.metrics.Get("action.completions") != 2 {
		t.Fatalf("completions = %d", e.metrics.Get("action.completions"))
	}
	// Exit costs one round of toBeSignalled votes: N(N−1) = 2.
	if e.metrics.Get("msg.ToBeSignalled") != 2 {
		t.Fatalf("votes = %d\n%s", e.metrics.Get("msg.ToBeSignalled"), e.metrics)
	}
}

func TestCooperationSendRecv(t *testing.T) {
	e := newEnv(t, time.Millisecond, 2)
	spec := spec2(t, "coop", graph3(t))
	var got any
	res := e.run(spec, map[string]core.RoleProgram{
		"a": {Body: func(ctx *core.Context) error {
			return ctx.Send("b", 42)
		}},
		"b": {Body: func(ctx *core.Context) error {
			v, err := ctx.Recv("a")
			if err != nil {
				return err
			}
			got = v
			return nil
		}},
	})
	for id, err := range res {
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	if got != 42 {
		t.Fatalf("payload = %v", got)
	}
}

func TestSingleRaiseBothHandle(t *testing.T) {
	e := newEnv(t, time.Millisecond, 2)
	spec := spec2(t, "raise1", graph3(t))
	var rec sync.Map
	res := e.run(spec, map[string]core.RoleProgram{
		"a": {
			Body: func(ctx *core.Context) error {
				return ctx.Raise("e1", "detected by a")
			},
			Handlers: map[except.ID]core.Handler{"e1": handlerRecorder(&rec, "a")},
		},
		"b": {
			Body: func(ctx *core.Context) error {
				return ctx.Compute(time.Second) // interrupted by a's exception
			},
			Handlers: map[except.ID]core.Handler{"e1": handlerRecorder(&rec, "b")},
		},
	})
	for id, err := range res {
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	for _, k := range []string{"a", "b"} {
		v, ok := rec.Load(k)
		if !ok || v.(except.ID) != "e1" {
			t.Fatalf("handler %s saw %v", k, v)
		}
	}
	if e.metrics.Get("action.handler_runs") != 2 {
		t.Fatalf("handler runs = %d", e.metrics.Get("action.handler_runs"))
	}
	// The informed role must have been interrupted well before 1s of
	// virtual compute.
	if now := e.clk.Now(); now >= time.Second {
		t.Fatalf("virtual time %v suggests no interruption", now)
	}
}

func TestConcurrentRaisesResolveToCover(t *testing.T) {
	e := newEnv(t, 10*time.Millisecond, 2)
	spec := spec2(t, "raise2", graph3(t))
	var rec sync.Map
	res := e.run(spec, map[string]core.RoleProgram{
		"a": {
			Body: func(ctx *core.Context) error {
				return ctx.Raise("e1", "")
			},
			Handlers: map[except.ID]core.Handler{"e1+e2": handlerRecorder(&rec, "a")},
		},
		"b": {
			Body: func(ctx *core.Context) error {
				return ctx.Raise("e2", "")
			},
			Handlers: map[except.ID]core.Handler{"e1+e2": handlerRecorder(&rec, "b")},
		},
	})
	for id, err := range res {
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	for _, k := range []string{"a", "b"} {
		v, _ := rec.Load(k)
		if v != except.ID("e1+e2") {
			t.Fatalf("handler %s saw %v, want e1+e2", k, v)
		}
	}
}

func TestUnhandledDeclaredExceptionIsSignalled(t *testing.T) {
	e := newEnv(t, time.Millisecond, 2)
	spec := spec2(t, "sig", graph3(t), "e3")
	res := e.run(spec, map[string]core.RoleProgram{
		"a": {Body: func(ctx *core.Context) error { return ctx.Raise("e3", "") }},
		"b": {Body: func(ctx *core.Context) error { return ctx.Compute(time.Second) }},
	})
	for id, err := range res {
		se, ok := core.Signalled(err)
		if !ok || se.Exc != "e3" {
			t.Fatalf("%s: %v", id, err)
		}
	}
}

func TestUnhandledUndeclaredExceptionUndoes(t *testing.T) {
	e := newEnv(t, time.Millisecond, 2)
	obj, err := e.rt.Objects().Define("acc", 100)
	if err != nil {
		t.Fatal(err)
	}
	spec := spec2(t, "undo", graph3(t))
	res := e.run(spec, map[string]core.RoleProgram{
		"a": {Body: func(ctx *core.Context) error {
			if err := ctx.Tx().Write("acc", 55); err != nil {
				return err
			}
			return ctx.Raise("e2", "")
		}},
		"b": {Body: func(ctx *core.Context) error { return ctx.Compute(time.Second) }},
	})
	for id, err := range res {
		if !core.IsUndone(err) {
			t.Fatalf("%s: %v, want µ", id, err)
		}
	}
	if obj.Peek() != 100 {
		t.Fatalf("object not restored: %v", obj.Peek())
	}
	if e.metrics.Get("action.undone") != 2 {
		t.Fatalf("undone = %d", e.metrics.Get("action.undone"))
	}
}

func TestHandlerRepairsExternalObject(t *testing.T) {
	e := newEnv(t, time.Millisecond, 2)
	obj, err := e.rt.Objects().Define("acc", 100)
	if err != nil {
		t.Fatal(err)
	}
	spec := spec2(t, "repair", graph3(t))
	repair := func(ctx *core.Context, resolved except.ID, raised []except.Raised) error {
		if ctx.Role() == "a" {
			return ctx.Tx().Write("acc", 777) // forward recovery to a new valid state
		}
		return nil
	}
	res := e.run(spec, map[string]core.RoleProgram{
		"a": {
			Body: func(ctx *core.Context) error {
				if err := ctx.Tx().Write("acc", -1); err != nil {
					return err
				}
				return ctx.Raise("e1", "bad write")
			},
			Handlers: map[except.ID]core.Handler{"e1": repair},
		},
		"b": {
			Body:     func(ctx *core.Context) error { return ctx.Compute(time.Second) },
			Handlers: map[except.ID]core.Handler{"e1": repair},
		},
	})
	for id, err := range res {
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	if obj.Peek() != 777 {
		t.Fatalf("repaired state lost: %v", obj.Peek())
	}
}

func TestDamagedObjectForcesFailure(t *testing.T) {
	e := newEnv(t, time.Millisecond, 2)
	obj, err := e.rt.Objects().Define("acc", 100)
	if err != nil {
		t.Fatal(err)
	}
	spec := spec2(t, "dmg", graph3(t))
	res := e.run(spec, map[string]core.RoleProgram{
		"a": {Body: func(ctx *core.Context) error {
			if err := ctx.Tx().Write("acc", -1); err != nil {
				return err
			}
			if err := ctx.Tx().MarkDamaged("acc"); err != nil {
				return err
			}
			return ctx.Raise("e2", "")
		}},
		"b": {Body: func(ctx *core.Context) error { return ctx.Compute(time.Second) }},
	})
	for id, err := range res {
		if !core.IsFailed(err) {
			t.Fatalf("%s: %v, want ƒ", id, err)
		}
	}
	if obj.Peek() != -1 {
		t.Fatalf("damaged object unexpectedly restored: %v", obj.Peek())
	}
}

func TestHandlerRaisesNewRound(t *testing.T) {
	e := newEnv(t, time.Millisecond, 2)
	spec := spec2(t, "rounds", graph3(t))
	var rec sync.Map
	h1 := func(ctx *core.Context, resolved except.ID, raised []except.Raised) error {
		if ctx.Role() == "a" {
			return ctx.Raise("e2", "secondary fault in handler")
		}
		return ctx.Compute(time.Second)
	}
	res := e.run(spec, map[string]core.RoleProgram{
		"a": {
			Body: func(ctx *core.Context) error { return ctx.Raise("e1", "") },
			Handlers: map[except.ID]core.Handler{
				"e1": h1, "e2": handlerRecorder(&rec, "a2"),
			},
		},
		"b": {
			Body: func(ctx *core.Context) error { return ctx.Compute(time.Second) },
			Handlers: map[except.ID]core.Handler{
				"e1": h1, "e2": handlerRecorder(&rec, "b2"),
			},
		},
	})
	for id, err := range res {
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	if v, _ := rec.Load("a2"); v != except.ID("e2") {
		t.Fatalf("round-2 handler at a saw %v", v)
	}
	if v, _ := rec.Load("b2"); v != except.ID("e2") {
		t.Fatalf("round-2 handler at b saw %v", v)
	}
	if e.metrics.Get("action.rounds") != 4 { // 2 rounds × 2 threads
		t.Fatalf("rounds = %d", e.metrics.Get("action.rounds"))
	}
}

func TestBodyPlainErrorRaisesUniversal(t *testing.T) {
	e := newEnv(t, time.Millisecond, 2)
	spec := spec2(t, "plain", graph3(t))
	var rec sync.Map
	uh := func(key string) core.Handler { return handlerRecorder(&rec, key) }
	res := e.run(spec, map[string]core.RoleProgram{
		"a": {
			Body:     func(ctx *core.Context) error { return errors.New("unexpected fault") },
			Handlers: map[except.ID]core.Handler{except.Universal: uh("a")},
		},
		"b": {
			Body:     func(ctx *core.Context) error { return ctx.Compute(time.Second) },
			Handlers: map[except.ID]core.Handler{except.Universal: uh("b")},
		},
	})
	for id, err := range res {
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	if v, _ := rec.Load("b"); v != except.Universal {
		t.Fatalf("b handler saw %v", v)
	}
}

func TestNestedActionSuccess(t *testing.T) {
	e := newEnv(t, time.Millisecond, 3)
	g := graph3(t)
	outer := &core.Spec{
		Name: "outer",
		Roles: []core.Role{
			{Name: "a", Thread: "T1"}, {Name: "b", Thread: "T2"}, {Name: "c", Thread: "T3"},
		},
		Graph: g,
	}
	inner := spec2(t, "inner", g)
	var order []string
	var mu sync.Mutex
	mark := func(s string) {
		mu.Lock()
		defer mu.Unlock()
		order = append(order, s)
	}
	nestedBody := func(ctx *core.Context) error {
		mark("nested:" + ctx.Role())
		return nil
	}
	res := e.run(outer, map[string]core.RoleProgram{
		"a": {Body: func(ctx *core.Context) error {
			if err := ctx.Enter(inner, "a", core.RoleProgram{Body: nestedBody}); err != nil {
				return err
			}
			mark("after:a")
			return nil
		}},
		"b": {Body: func(ctx *core.Context) error {
			if err := ctx.Enter(inner, "b", core.RoleProgram{Body: nestedBody}); err != nil {
				return err
			}
			mark("after:b")
			return nil
		}},
		"c": {Body: func(ctx *core.Context) error {
			return ctx.Compute(5 * time.Millisecond)
		}},
	})
	for id, err := range res {
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
}

func TestNestedSignalRaisedInEnclosing(t *testing.T) {
	e := newEnv(t, time.Millisecond, 3)
	inner := spec2(t, "inner", graph3(t), "eps")
	gOuter, err := except.NewBuilder("gouter").
		Node("eps").
		WithUniversal().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	outer := &core.Spec{
		Name: "outer",
		Roles: []core.Role{
			{Name: "a", Thread: "T1"}, {Name: "b", Thread: "T2"}, {Name: "c", Thread: "T3"},
		},
		Graph: gOuter,
	}
	var rec sync.Map
	h := func(key string) core.Handler { return handlerRecorder(&rec, key) }
	enterInner := func(role string) core.Body {
		return func(ctx *core.Context) error {
			return ctx.Enter(inner, role, core.RoleProgram{
				Body: func(c2 *core.Context) error {
					if c2.Role() == "a" {
						return c2.Raise("e1", "nested fault")
					}
					return c2.Compute(time.Second)
				},
				// No handler for e1 in the nested action; e1 is not
				// declared as a nested signal, so the nested action
				// undoes... unless declared. Here we give a handler that
				// converts it to the declared ε.
				Handlers: map[except.ID]core.Handler{
					"e1": func(c2 *core.Context, _ except.ID, _ []except.Raised) error {
						return c2.Signal("eps")
					},
				},
			})
		}
	}
	res := e.run(outer, map[string]core.RoleProgram{
		"a": {Body: enterInner("a"), Handlers: map[except.ID]core.Handler{"eps": h("a")}},
		"b": {Body: enterInner("b"), Handlers: map[except.ID]core.Handler{"eps": h("b")}},
		"c": {
			Body:     func(ctx *core.Context) error { return ctx.Compute(time.Second) },
			Handlers: map[except.ID]core.Handler{"eps": h("c")},
		},
	})
	for id, err := range res {
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	// All three enclosing roles (including T3, which never entered the
	// nested action) must have handled eps.
	for _, k := range []string{"a", "b", "c"} {
		if v, ok := rec.Load(k); !ok || v != except.ID("eps") {
			t.Fatalf("enclosing handler %s saw %v", k, v)
		}
	}
}

// TestFig4AbortCascade reproduces the paper's Figure 4 / §5.2 scenario: an
// exception in the containing action aborts the nested action; the abortion
// handler raises a further exception; the resolving exception covers both
// and is handled by all participants.
func TestFig4AbortCascade(t *testing.T) {
	e := newEnv(t, time.Millisecond, 3)
	gInner := graph3(t)
	gOuter, err := except.NewBuilder("gouter").
		Cover("outer_exc+abort_exc", "outer_exc", "abort_exc").
		WithUniversal().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	outer := &core.Spec{
		Name: "outer",
		Roles: []core.Role{
			{Name: "a", Thread: "T1"}, {Name: "b", Thread: "T2"}, {Name: "c", Thread: "T3"},
		},
		Graph: gOuter,
	}
	inner := spec2(t, "inner", gInner)

	var rec sync.Map
	h := func(key string) core.Handler { return handlerRecorder(&rec, key) }
	nested := func(role string, onAbort core.AbortHandler) core.Body {
		return func(ctx *core.Context) error {
			return ctx.Enter(inner, role, core.RoleProgram{
				Body: func(c2 *core.Context) error {
					return c2.Compute(10 * time.Second) // aborted long before
				},
				OnAbort: onAbort,
			})
		}
	}
	res := e.run(outer, map[string]core.RoleProgram{
		"a": {
			Body: nested("a", func(ctx *core.Context) except.ID {
				return "abort_exc" // Eab raised in the containing action
			}),
			Handlers: map[except.ID]core.Handler{"outer_exc+abort_exc": h("a")},
		},
		"b": {
			Body:     nested("b", nil),
			Handlers: map[except.ID]core.Handler{"outer_exc+abort_exc": h("b")},
		},
		"c": {
			Body: func(ctx *core.Context) error {
				if err := ctx.Compute(20 * time.Millisecond); err != nil {
					return err
				}
				return ctx.Raise("outer_exc", "raised while a,b nested")
			},
			Handlers: map[except.ID]core.Handler{"outer_exc+abort_exc": h("c")},
		},
	})
	for id, err := range res {
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	for _, k := range []string{"a", "b", "c"} {
		v, ok := rec.Load(k)
		if !ok || v != except.ID("outer_exc+abort_exc") {
			t.Fatalf("handler %s saw %v, want outer_exc+abort_exc", k, v)
		}
	}
	if e.metrics.Get("action.aborted") != 2 {
		t.Fatalf("aborted = %d, want 2 (both nested roles)", e.metrics.Get("action.aborted"))
	}
}

func TestExitAbandonedByLateRaise(t *testing.T) {
	e := newEnv(t, 5*time.Millisecond, 2)
	spec := spec2(t, "late", graph3(t))
	var rec sync.Map
	res := e.run(spec, map[string]core.RoleProgram{
		"a": {
			Body:     noopBody, // votes to exit immediately
			Handlers: map[except.ID]core.Handler{"e2": handlerRecorder(&rec, "a")},
		},
		"b": {
			Body: func(ctx *core.Context) error {
				if err := ctx.Compute(20 * time.Millisecond); err != nil {
					return err
				}
				return ctx.Raise("e2", "raised after a voted to exit")
			},
			Handlers: map[except.ID]core.Handler{"e2": handlerRecorder(&rec, "b")},
		},
	})
	for id, err := range res {
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	for _, k := range []string{"a", "b"} {
		if v, _ := rec.Load(k); v != except.ID("e2") {
			t.Fatalf("handler %s saw %v", k, v)
		}
	}
}

func TestLostVoteDegradesToFailure(t *testing.T) {
	clk := vclock.NewVirtual()
	metrics := &trace.Metrics{}
	net := transport.NewSim(transport.SimConfig{
		Clock:   clk,
		Latency: transport.FixedLatency(time.Millisecond),
		Metrics: metrics,
	})
	rt, err := core.New(core.Config{
		Clock: clk, Network: net, Metrics: metrics,
		SignalTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := rt.NewThread("T1")
	t2, _ := rt.NewThread("T2")
	// Drop T2's votes to T1 (the paper's l_mes fault).
	net.SetFault(func(from, to string, msg protocol.Message) transport.Fault {
		if _, ok := msg.(protocol.ToBeSignalled); ok && from == "T2" {
			return transport.Drop
		}
		return transport.Deliver
	})
	spec := spec2(t, "lmes", graph3(t))
	var e1, e2 error
	clk.Go(func() { e1 = t1.Perform(spec, "a", core.RoleProgram{Body: noopBody}) })
	clk.Go(func() { e2 = t2.Perform(spec, "b", core.RoleProgram{Body: noopBody}) })
	clk.Wait()
	if !core.IsFailed(e1) {
		t.Fatalf("T1 outcome %v, want ƒ", e1)
	}
	// T2 received T1's vote normally and exits cleanly — only the thread
	// behind the faulty link degrades, per the §3.4 extension.
	if e2 != nil && !core.IsFailed(e2) {
		t.Fatalf("T2 outcome %v", e2)
	}
}

func TestRepeatedActionsInLoop(t *testing.T) {
	// The paper's experiments execute the application in a loop (20
	// times); instance identifiers must stay agreed across iterations.
	e := newEnv(t, time.Millisecond, 2)
	spec := spec2(t, "loop", graph3(t))
	var mu sync.Mutex
	count := 0
	var errs []error
	body := func(ctx *core.Context) error { return ctx.Compute(time.Millisecond) }
	for _, r := range spec.Roles {
		role := r
		th := e.threads[role.Thread]
		e.clk.Go(func() {
			for i := 0; i < 20; i++ {
				if err := th.Perform(spec, role.Name, core.RoleProgram{Body: body}); err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
					return
				}
				mu.Lock()
				count++
				mu.Unlock()
			}
		})
	}
	e.clk.Wait()
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	if count != 40 {
		t.Fatalf("completed %d role-iterations, want 40", count)
	}
}

func TestSpecValidation(t *testing.T) {
	g := graph3(t)
	cases := []struct {
		name string
		spec *core.Spec
	}{
		{"empty name", &core.Spec{Roles: []core.Role{{Name: "a", Thread: "T1"}}, Graph: g}},
		{"no roles", &core.Spec{Name: "x", Graph: g}},
		{"no graph", &core.Spec{Name: "x", Roles: []core.Role{{Name: "a", Thread: "T1"}}}},
		{"dup role", &core.Spec{Name: "x", Graph: g,
			Roles: []core.Role{{Name: "a", Thread: "T1"}, {Name: "a", Thread: "T2"}}}},
		{"dup thread", &core.Spec{Name: "x", Graph: g,
			Roles: []core.Role{{Name: "a", Thread: "T1"}, {Name: "b", Thread: "T1"}}}},
		{"unbound", &core.Spec{Name: "x", Graph: g, Roles: []core.Role{{Name: "a"}}}},
	}
	for _, tc := range cases {
		if err := tc.spec.Validate(); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
}

func TestPerformErrors(t *testing.T) {
	e := newEnv(t, time.Millisecond, 2)
	spec := spec2(t, "cfg", graph3(t))
	th := e.threads["T1"]
	var err1, err2, err3 error
	e.clk.Go(func() {
		err1 = th.Perform(spec, "nope", core.RoleProgram{Body: noopBody})
		err2 = th.Perform(spec, "b", core.RoleProgram{Body: noopBody}) // bound to T2
		err3 = th.Perform(spec, "a", core.RoleProgram{})               // no body
	})
	e.clk.Wait()
	if !errors.Is(err1, core.ErrUnknownRole) {
		t.Fatalf("err1 = %v", err1)
	}
	if !errors.Is(err2, core.ErrNotYourRole) {
		t.Fatalf("err2 = %v", err2)
	}
	if !errors.Is(err3, core.ErrBodyRequired) {
		t.Fatalf("err3 = %v", err3)
	}
}

func TestSignalValidation(t *testing.T) {
	e := newEnv(t, time.Millisecond, 2)
	spec := spec2(t, "sv", graph3(t), "eps")
	var sigErr, undeclErr error
	res := e.run(spec, map[string]core.RoleProgram{
		"a": {Body: func(ctx *core.Context) error {
			undeclErr = ctx.Signal("ghost")
			sigErr = ctx.Signal("eps")
			return nil
		}},
		"b": {Body: noopBody},
	})
	if undeclErr == nil {
		t.Fatal("undeclared signal accepted")
	}
	if sigErr != nil {
		t.Fatalf("declared signal rejected: %v", sigErr)
	}
	se, ok := core.Signalled(res["T1"])
	if !ok || se.Exc != "eps" {
		t.Fatalf("T1 outcome %v", res["T1"])
	}
	if res["T2"] != nil {
		t.Fatalf("T2 outcome %v", res["T2"])
	}
}

// TestContextDepthAndInstanceTag pins the parsed-identifier cache on the
// frame: depth and mux tag are read straight from the cached form, for
// top-level and nested frames, with and without an instance tag.
func TestContextDepthAndInstanceTag(t *testing.T) {
	e := newEnv(t, time.Millisecond, 2)
	nested := spec2(t, "inner", graph3(t))
	outer := spec2(t, "outer", graph3(t))

	type seen struct {
		id   string
		d    int
		tag  string
		nid  string
		nd   int
		ntag string
	}
	var got seen
	progs := map[string]core.RoleProgram{
		"a": {Body: func(ctx *core.Context) error {
			got.id, got.d, got.tag = ctx.ActionID(), ctx.Depth(), ctx.InstanceTag()
			return ctx.Enter(nested, "a", core.RoleProgram{Body: func(c2 *core.Context) error {
				got.nid, got.nd, got.ntag = c2.ActionID(), c2.Depth(), c2.InstanceTag()
				return nil
			}})
		}},
		"b": {Body: func(ctx *core.Context) error {
			return ctx.Enter(nested, "b", core.RoleProgram{Body: noopBody})
		}},
	}
	for _, err := range e.run(outer, progs) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got.id != "outer#1" || got.d != 0 || got.tag != "" {
		t.Fatalf("outer frame: id=%q depth=%d tag=%q", got.id, got.d, got.tag)
	}
	if got.nid != "outer#1/inner#1" || got.nd != 1 || got.ntag != "" {
		t.Fatalf("nested frame: id=%q depth=%d tag=%q", got.nid, got.nd, got.ntag)
	}
}

// TestInstanceTagOnMuxedThread: a thread created with an instance tag
// (NewThreadOn) derives tagged identifiers whose cached parsed form carries
// the tag at every nesting level.
func TestInstanceTagOnMuxedThread(t *testing.T) {
	clk := vclock.NewVirtual()
	net := transport.NewSim(transport.SimConfig{Clock: clk})
	rt, err := core.New(core.Config{Clock: clk, Network: net})
	if err != nil {
		t.Fatal(err)
	}
	spec := &core.Spec{
		Name:  "solo",
		Roles: []core.Role{{Name: "a", Thread: "T1"}},
		Graph: graph3(t),
	}
	ep, err := net.Endpoint("T1")
	if err != nil {
		t.Fatal(err)
	}
	th := rt.NewThreadOn("T1", ep, "a7")
	var id, tag string
	var depth int
	clk.Go(func() {
		_ = th.Perform(spec, "a", core.RoleProgram{Body: func(ctx *core.Context) error {
			id, tag, depth = ctx.ActionID(), ctx.InstanceTag(), ctx.Depth()
			return nil
		}})
	})
	clk.Wait()
	if id != "a7!solo#1" || tag != "a7" || depth != 0 {
		t.Fatalf("muxed frame: id=%q tag=%q depth=%d", id, tag, depth)
	}
}

// TestValidateFailureIsNotCached: an invalid spec can be fixed and
// retried — only the first SUCCESSFUL Validate latches.
func TestValidateFailureIsNotCached(t *testing.T) {
	s := &core.Spec{ // no name yet
		Roles: []core.Role{{Name: "a", Thread: "T1"}},
		Graph: graph3(t),
	}
	if err := s.Validate(); err == nil {
		t.Fatal("empty name validated")
	}
	s.Name = "fixed"
	if err := s.Validate(); err != nil {
		t.Fatalf("corrected spec still rejected: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("cached success lost: %v", err)
	}
}
