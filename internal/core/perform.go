package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"caaction/internal/except"
	"caaction/internal/protocol"
	"caaction/internal/resolve"
	"caaction/internal/signal"
	"caaction/internal/transport"
)

// errSignalTimeout marks an expired wait for toBeSignalled votes.
var errSignalTimeout = errors.New("core: signalling vote timed out")

// ErrDeadline reports that the thread's action deadline (SetDeadline,
// propagated from the caller's context) expired mid-protocol: the doomed
// action stops consuming runtime budget, undoes its local effects
// best-effort and unwinds. It matches context.DeadlineExceeded under
// errors.Is so callers can treat propagated deadlines uniformly.
var ErrDeadline = fmt.Errorf("core: action deadline exceeded: %w", context.DeadlineExceeded)

// Perform executes a top-level CA action: this thread plays the given role
// of spec. It returns nil when the action exits successfully, or a
// *SignalledError carrying the exception this role signalled (an application
// ε, except.Undo, or except.Failure).
func (th *Thread) Perform(spec *Spec, role string, prog RoleProgram) error {
	err := th.perform(nil, spec, role, prog)
	if ae, ok := err.(*abortError); ok {
		// Unreachable for top-level actions (there is no enclosing action
		// to abort them); report rather than leak internals.
		return fmt.Errorf("core: internal: top-level abort to %q", ae.target)
	}
	return err
}

// perform runs one action frame to completion under the given parent frame
// (nil for a top-level action). It returns nil, a *SignalledError, an
// *abortError (for Enter to continue a cascade), or a configuration error.
func (th *Thread) perform(parent *frame, spec *Spec, role string, prog RoleProgram) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if prog.Body == nil {
		return fmt.Errorf("%w: %s/%s", ErrBodyRequired, spec.Name, role)
	}
	bound, ok := spec.ThreadFor(role)
	if !ok {
		return fmt.Errorf("%w: %q in %s", ErrUnknownRole, role, spec.Name)
	}
	if bound != th.id {
		return fmt.Errorf("%w: role %q of %s is bound to %q, not %q",
			ErrNotYourRole, role, spec.Name, bound, th.id)
	}

	f := th.pushFrame(parent, spec, role, prog)
	id := f.id
	ctx := &Context{th: th, f: f, id: f.id, gen: f.gen}
	th.rt.counters.entries.Add(1)
	if th.logOn {
		th.logf("enter", "%s as %s", id, role)
	}

	err := th.entryBarrier(f)
	if err == nil && !f.hasPendingWork() {
		err = th.runBody(ctx, prog.Body)
	}
	return th.conclude(ctx, err)
}

func (f *frame) hasPendingWork() bool {
	return f.informed || f.inst != nil || f.hasDecided
}

// runBody executes the role body, mapping foreign errors onto the model: an
// error that is not a control error is an undetected fault, raised as the
// action's universal exception (§3.2: undefined exceptions resolve to the
// universal exception).
func (th *Thread) runBody(ctx *Context, body Body) error {
	err := body(ctx)
	return th.mapUserErr(ctx, err)
}

func (th *Thread) mapUserErr(ctx *Context, err error) error {
	if err == nil {
		return nil
	}
	var pe *pendingError
	if errors.As(err, &pe) {
		return pe
	}
	if errors.Is(err, ErrThreadStopped) {
		// The endpoint was closed under the body (thread shutdown or an
		// external cancellation): surface the stop instead of raising.
		return err
	}
	if errors.Is(err, ErrDeadline) {
		// The propagated action deadline expired under the body: the action
		// is doomed, so unwind instead of raising a fresh exception that
		// would start a resolution round it has no budget left to run.
		return err
	}
	if ctx.f.hasPendingWork() {
		// The body swallowed a control error but state tells the truth.
		return &pendingError{kind: kindInterrupt, frame: ctx.f}
	}
	return ctx.Raise(ctx.f.spec.Graph.Root(), err.Error())
}

// conclude drives the frame's state machine after the body (or entry
// barrier) finished: resolution rounds, handler dispatch, abort cascades and
// the synchronous exit protocol.
func (th *Thread) conclude(ctx *Context, err error) error {
	f := ctx.f
	for {
		if pe, ok := err.(*pendingError); ok && pe.kind == kindAbort {
			eab := th.runAbortion(ctx)
			th.rt.counters.aborted.Add(1)
			th.recordOutcome(f, "aborted")
			// Log before popFrame: the pop recycles the frame, so f.id must
			// not be read afterwards.
			th.logf("aborted", "%s (target %s, Eab=%q)", f.id, pe.target, eab)
			th.popFrame(f)
			return &abortError{target: pe.target, eab: eab}
		}
		if err != nil {
			if _, ok := err.(*pendingError); !ok {
				if errors.Is(err, ErrDeadline) {
					// Deadline-doomed action: undo local effects best-effort
					// and unwind. Peers are not messaged — they unwind on the
					// same propagated deadline (or their signal timeout), and
					// sending into an already-missed exchange would only
					// start protocol work the action has no budget for.
					_ = f.tx.Undo()
					th.rt.counters.deadlined.Add(1)
					th.recordOutcome(f, "deadline")
					th.logf("deadline", "%s: abandoned at propagated deadline", f.id)
				} else if !errors.Is(err, ErrThreadStopped) {
					// A crash-stop (ErrThreadStopped) records nothing: its
					// absence from the WAL is what marks the action in
					// flight for replay. Other errors conclude the action.
					th.recordOutcome(f, "error")
				}
				// Configuration errors surface immediately.
				th.popFrame(f)
				return err
			}
		}

		// Resolution in progress?
		if f.inst != nil && !f.hasDecided {
			if werr := th.awaitDecision(f); werr != nil {
				err = werr
				continue
			}
		}
		if f.hasDecided {
			out := f.decided
			f.decided, f.hasDecided = resolve.Outcome{}, false
			f.inst = nil
			f.informed = false
			f.round++
			th.rt.counters.rounds.Add(1)
			if th.logOn {
				th.logf("resolved", "%s round %d: %s covering %d", f.id, f.round-1,
					out.Resolved, len(out.Raised))
			}
			v := th.drainFuture(f)
			if v.abortTarget != "" {
				err = &pendingError{kind: kindAbort, frame: f, target: v.abortTarget}
				continue
			}
			err = th.dispatchHandler(ctx, out)
			continue
		}

		// Nothing pending: attempt the synchronous exit.
		dec, decided, werr := th.exitAction(f)
		if werr != nil {
			err = werr
			continue
		}
		if !decided {
			// Exit abandoned: a peer raised; resolution is pending.
			err = nil
			continue
		}
		return th.finalize(f, dec)
	}
}

// dispatchHandler invokes the role's handler for the resolved exception, or
// applies the termination model's propagation rule when no handler exists:
// signal the exception itself when the interface declares it, otherwise
// abort the action with undo (a raised universal exception "usually leads to
// the signalling of an undo or failure exception").
func (th *Thread) dispatchHandler(ctx *Context, out resolve.Outcome) error {
	f := ctx.f
	if h, ok := f.prog.Handlers[out.Resolved]; ok && h != nil {
		th.rt.counters.handlerRuns.Add(1)
		return th.mapUserErr(ctx, h(ctx, out.Resolved, out.Raised))
	}
	if out.Resolved != f.spec.Graph.Root() && f.spec.CanSignal(out.Resolved) {
		f.epsilon = out.Resolved
	} else {
		f.epsilon = except.Undo
	}
	return nil
}

// entryBarrier announces this thread at the action's entry point and waits
// until every participant has arrived. Exceptions raised by fast peers
// before the barrier completes leave the frame informed; the body is then
// skipped entirely.
func (th *Thread) entryBarrier(f *frame) error {
	if th.rt.rec != nil {
		// Write-ahead: the join is durable before any peer can learn of it.
		th.rt.rec.RecordJoin(th.id, f.id, f.role)
	}
	for _, p := range f.peers {
		if p != th.id {
			th.send(p, protocol.Enter{Action: f.id, From: th.id, Role: f.role})
		}
	}
	return th.pump(f, untilEntered, 0)
}

// awaitDecision pumps messages until the current round's resolving exception
// is known locally.
func (th *Thread) awaitDecision(f *frame) error {
	return th.pump(f, untilDecided, 0)
}

// exitAction runs the §3.4 signalling exchange as the synchronous exit
// protocol. decided is false when the exit was abandoned because a peer
// raised a same-round exception instead of voting.
func (th *Thread) exitAction(f *frame) (dec signal.Decision, decided bool, err error) {
	f.sigDec, f.hasSigDec = signal.Decision{}, false
	f.sig = signal.New(signal.Config{
		Action: f.id,
		Self:   th.id,
		Peers:  f.peers,
		Round:  f.round,
		Send:   th.sendFn,
		Undo: func() error {
			th.rt.counters.undos.Add(1)
			return f.tx.Undo()
		},
	})
	// Replay same-round votes that arrived before the local vote was cast.
	pending := f.votes
	f.votes = nil
	if th.rt.rec != nil {
		// Write-ahead: the exit vote is durable before it is cast.
		th.rt.rec.RecordVote(th.id, f.id, f.round, string(f.epsilon))
	}
	if d0 := f.sig.Start(f.epsilon); d0.Done {
		f.sigDec, f.hasSigDec = d0, true
	}
	for _, d := range pending {
		m, ok := d.Msg.(protocol.ToBeSignalled)
		if !ok || m.Round != f.round || f.sig == nil {
			continue
		}
		dd, derr := f.sig.Deliver(m.From, m)
		if derr != nil {
			th.logf("vote.error", "%v", derr)
			continue
		}
		if dd.Done {
			f.sigDec, f.hasSigDec = dd, true
		}
	}

	timeout := f.spec.Timing.SignalTimeout
	if timeout == 0 {
		timeout = th.rt.sigTO
	}
	deadline := time.Duration(0)
	if timeout > 0 {
		deadline = th.rt.clock.Now() + timeout
	}
	err = th.pump(f, untilExitDecision, deadline)
	if (errors.Is(err, errSignalTimeout) || errors.Is(err, ErrDeadline)) && f.sig != nil {
		// §3.4 extension: missing votes — lost messages, or votes a
		// deadline-doomed action can no longer afford to wait for — count
		// as ƒ, so the exit still concludes coordinately.
		th.logf("exit.timeout", "%s: treating missing votes as ƒ", f.id)
		dm := f.sig.MarkFailed(f.sig.Missing()...)
		if dm.Done {
			f.sigDec, f.hasSigDec = dm, true
		} else if err = th.pump(f, untilExitDecision, 0); err != nil {
			return signal.Decision{}, false, err
		}
	} else if err != nil {
		return signal.Decision{}, false, err
	}
	if f.sig == nil {
		return signal.Decision{}, false, nil // abandoned: resolution round begins
	}
	res, ok := f.sigDec, f.hasSigDec
	f.sig.Release()
	f.sig = nil
	f.sigDec, f.hasSigDec = signal.Decision{}, false
	return res, ok, nil
}

// finalize commits or rolls back external effects per the coordinated signal
// and reports the per-thread outcome.
func (th *Thread) finalize(f *frame, dec signal.Decision) error {
	defer th.popFrame(f)
	switch dec.Signal {
	case except.None:
		if err := f.tx.Commit(); err != nil {
			th.logf("commit.error", "%s: %v", f.id, err)
		}
		th.rt.counters.completions.Add(1)
		th.recordOutcome(f, "ok")
		if th.logOn {
			th.logf("exit", "%s: success", f.id)
		}
		return nil
	case except.Undo:
		th.rt.counters.undone.Add(1)
		th.recordOutcome(f, "undone")
		th.logf("exit", "%s: undone (µ)", f.id)
		return &SignalledError{Action: f.id, Spec: f.spec.Name, Exc: except.Undo}
	case except.Failure:
		if !dec.UndoDone {
			_ = f.tx.Undo() // best effort; failure already coordinated
		}
		th.rt.counters.failed.Add(1)
		th.recordOutcome(f, "failed")
		th.logf("exit", "%s: failed (ƒ)", f.id)
		return &SignalledError{Action: f.id, Spec: f.spec.Name, Exc: except.Failure}
	default:
		if err := f.tx.Commit(); err != nil {
			th.logf("commit.error", "%s: %v", f.id, err)
		}
		th.rt.counters.signalled.Add(1)
		th.recordOutcome(f, "signalled:"+string(dec.Signal))
		th.logf("exit", "%s: signalling %s", f.id, dec.Signal)
		return &SignalledError{Action: f.id, Spec: f.spec.Name, Exc: dec.Signal}
	}
}

// recordOutcome writes the action's final local outcome ahead of the pop;
// a nil recorder costs one comparison.
func (th *Thread) recordOutcome(f *frame, outcome string) {
	if th.rt.rec != nil {
		th.rt.rec.RecordOutcome(th.id, f.id, outcome)
	}
}

// runAbortion executes the abortion of this frame as part of a cascade to an
// enclosing action: the abortion handler runs to completion (modelled cost
// Tabo), then the role's external-object effects are undone best-effort.
func (th *Thread) runAbortion(ctx *Context) except.ID {
	f := ctx.f
	f.aborting = true
	th.rt.clock.Sleep(f.spec.Timing.Abortion)
	eab := except.None
	if f.prog.OnAbort != nil {
		eab = f.prog.OnAbort(ctx)
	}
	_ = f.tx.Undo()
	return eab
}

// absorbAbort finishes an abort cascade at its target frame: the abortion
// handler's exception Eab (if any) is raised here, then the enclosing-action
// message that triggered the cascade is processed, leaving the frame
// suspended or exceptional pending resolution (§3.3.2's post-abortion
// branch).
func (th *Thread) absorbAbort(f *frame, ae *abortError) error {
	th.ensureInstance(f)
	kind := kindInterrupt
	if ae.eab != except.None {
		exc := except.Raised{ID: ae.eab, Origin: th.id, Info: "abortion handler", At: th.rt.clock.Now()}
		th.rt.counters.raises.Add(1)
		if th.rt.rec != nil {
			th.rt.rec.RecordRaise(th.id, f.id, f.round, string(ae.eab))
		}
		out := f.inst.Raise(exc)
		f.tx.Inform(exc)
		if out.Decided && !f.hasDecided {
			f.decided, f.hasDecided = out, true
		}
		kind = kindRaise
	}
	pending := f.pendingAbort
	f.pendingAbort = nil
	for _, d := range pending {
		out, err := f.inst.Deliver(d.From, d.Msg)
		if err != nil {
			th.logf("resolve.error", "absorb: %v", err)
			continue
		}
		th.applyOutcome(f, d, out)
	}
	f.informed = true
	return &pendingError{kind: kind, frame: f}
}

// enclosingAbortTarget reports the innermost enclosing frame (strictly above
// f) holding an unprocessed abort trigger.
func (th *Thread) enclosingAbortTarget(f *frame) string {
	for i := len(th.stack) - 1; i >= 0; i-- {
		if th.stack[i] == f {
			for j := i - 1; j >= 0; j-- {
				if len(th.stack[j].pendingAbort) > 0 {
					return th.stack[j].id
				}
			}
			return ""
		}
	}
	return ""
}

// pumpCond selects what a pump waits for. An enum (instead of a stop
// closure) keeps the protocol wait loops allocation-free — pumps run per
// barrier, per round and per exit on every action.
type pumpCond int

const (
	// untilEntered: every participant has arrived at the entry barrier.
	untilEntered pumpCond = iota
	// untilDecided: the current round's resolving exception is known.
	untilDecided
	// untilExitDecision: the exit exchange concluded, or was abandoned.
	untilExitDecision
)

func (f *frame) condMet(cond pumpCond) bool {
	switch cond {
	case untilEntered:
		return f.enteredN == len(f.peers)
	case untilDecided:
		return f.hasDecided
	default:
		return f.hasSigDec || f.sig == nil
	}
}

// pump processes incoming deliveries until cond holds. Information verdicts
// (thread informed of concurrent exceptions) are left for cond to observe;
// abort verdicts always unwind. A non-zero deadline bounds the wait with
// errSignalTimeout. The thread's action deadline (SetDeadline) clamps every
// pump — a doomed action must unwind with ErrDeadline instead of waiting on
// peers past its budget.
func (th *Thread) pump(f *frame, cond pumpCond, deadline time.Duration) error {
	if th.deadline > 0 && (deadline == 0 || th.deadline < deadline) {
		deadline = th.deadline
	}
	if th.inline {
		return th.pumpInline(f, cond, deadline)
	}
	for {
		if t := th.enclosingAbortTarget(f); t != "" && !f.aborting {
			return &pendingError{kind: kindAbort, frame: f, target: t}
		}
		if f.condMet(cond) {
			return nil
		}
		var d transport.Delivery
		var ok bool
		if deadline > 0 {
			now := th.rt.clock.Now()
			if now >= deadline {
				return th.deadlineErr(now)
			}
			d, ok = th.ep.RecvTimeout(deadline - now)
			if !ok {
				if now = th.rt.clock.Now(); now >= deadline {
					return th.deadlineErr(now)
				}
				return ErrThreadStopped
			}
		} else {
			d, ok = th.ep.Recv()
			if !ok {
				return ErrThreadStopped
			}
		}
		v := th.route(d)
		if v.abortTarget != "" && !f.aborting {
			return &pendingError{kind: kindAbort, frame: f, target: v.abortTarget}
		}
	}
}

// deadlineErr picks the error for an expired pump wait: ErrDeadline when the
// thread's propagated action deadline is the (or a) constraint that expired,
// errSignalTimeout when only the protocol wait's own deadline did.
func (th *Thread) deadlineErr(now time.Duration) error {
	if th.deadline > 0 && now >= th.deadline {
		return ErrDeadline
	}
	return errSignalTimeout
}
